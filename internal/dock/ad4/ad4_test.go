package ad4

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/grid"
	"repro/internal/prep"
)

func setupPair(t testing.TB, recCode, ligCode string) (*grid.Maps, *dock.Ligand, dock.Box) {
	t.Helper()
	var rec, raw *chem.Molecule
	if recCode == data.LargeReceptorCode {
		rec, _ = data.GenerateLargeReceptor()
	} else {
		rec, _ = data.GenerateReceptor(recCode)
	}
	if ligCode == data.LargeLigandCode {
		raw, _ = data.GenerateLargeLigand()
	} else {
		raw, _ = data.GenerateLigand(ligCode)
	}
	prec, err := prep.PrepareReceptor(rec)
	if err != nil {
		t.Fatal(err)
	}
	mol2, err := prep.ConvertSDFToMol2(raw)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := prep.PrepareLigand(mol2)
	if err != nil {
		t.Fatal(err)
	}
	lig, err := dock.NewLigand(pl.Mol, pl.Tree)
	if err != nil {
		t.Fatal(err)
	}
	spec := grid.Spec{Center: chem.Vec3{}, NPts: [3]int{20, 20, 20}, Spacing: 1.4}
	maps, err := grid.Generate(prec, spec, pl.Mol.AtomTypes())
	if err != nil {
		t.Fatal(err)
	}
	box := dock.Box{
		Center: spec.Center,
		Size: chem.V(
			float64(spec.NPts[0]-1)*spec.Spacing,
			float64(spec.NPts[1]-1)*spec.Spacing,
			float64(spec.NPts[2]-1)*spec.Spacing),
	}
	return maps, lig, box
}

func TestNewScorerValidation(t *testing.T) {
	maps, lig, _ := setupPair(t, "2HHN", "0E6")
	if _, err := NewScorer(maps, lig); err != nil {
		t.Fatal(err)
	}
	// Ligand with a type lacking a map is rejected.
	bad := lig.Mol.Clone()
	bad.Atoms[0].Type = chem.TypeZn
	tree, _ := chem.BuildTorsionTree(bad)
	badLig, _ := dock.NewLigand(bad, tree)
	if _, err := NewScorer(maps, badLig); err == nil {
		t.Error("ligand type without map accepted")
	}
	// Untyped ligand rejected.
	untyped := lig.Mol.Clone()
	untyped.Atoms[0].Type = ""
	utree, _ := chem.BuildTorsionTree(untyped)
	uLig, _ := dock.NewLigand(untyped, utree)
	if _, err := NewScorer(maps, uLig); err == nil {
		t.Error("untyped ligand accepted")
	}
}

func TestScoreFiniteAndPenalizesEscape(t *testing.T) {
	maps, lig, box := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(maps, lig)
	if err != nil {
		t.Fatal(err)
	}
	inPose := dock.Pose{Translation: box.Center, Orientation: chem.QuatIdentity,
		Torsions: make([]float64, lig.NumTorsions())}
	in := s.Score(lig.Coords(inPose))
	if math.IsNaN(in) || math.IsInf(in, 0) {
		t.Fatalf("score = %v", in)
	}
	outPose := inPose.Clone()
	outPose.Translation = chem.V(500, 500, 500)
	out := s.Score(lig.Coords(outPose))
	if out <= in {
		t.Errorf("escaped pose (%v) not worse than pocket pose (%v)", out, in)
	}
}

func TestTorsionPenaltyMonotone(t *testing.T) {
	// More rotatable bonds → larger torsional entropy term.
	maps, lig, _ := setupPair(t, "1HUC", "0D6")
	s, _ := NewScorer(maps, lig)
	if lig.NumTorsions() == 0 {
		t.Skip("ligand drew no torsions")
	}
	if s.torsTerm <= 0 {
		t.Errorf("torsion penalty %v not positive", s.torsTerm)
	}
	if math.Abs(s.torsTerm-weightTors*float64(lig.NumTorsions())) > 1e-12 {
		t.Errorf("penalty %v inconsistent", s.torsTerm)
	}
}

func TestIntraPairsExclude12And13(t *testing.T) {
	m := &chem.Molecule{Name: "CH"}
	// Linear chain 0-1-2-3-4.
	for i := 0; i < 5; i++ {
		m.Atoms = append(m.Atoms, chem.Atom{Element: chem.Carbon, Pos: chem.V(float64(i)*1.5, 0, 0)})
	}
	for i := 0; i < 4; i++ {
		m.Bonds = append(m.Bonds, chem.Bond{A: i, B: i + 1, Order: chem.Single})
	}
	pairs := intraPairs(m)
	has := func(a, b int) bool {
		for _, p := range pairs {
			if (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a) {
				return true
			}
		}
		return false
	}
	if has(0, 1) || has(0, 2) {
		t.Error("1-2 or 1-3 pair included")
	}
	if !has(0, 3) || !has(0, 4) || !has(1, 4) {
		t.Error("1-4/1-5 pairs missing")
	}
}

func TestDockProducesRuns(t *testing.T) {
	maps, lig, box := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(maps, lig)
	if err != nil {
		t.Fatal(err)
	}
	params := prep.DefaultDPF(lig.Mol.Name+".pdbqt", maps.Receptor+".maps.fld", 1234)
	params.Runs = 3
	params.PopSize = 20
	params.Gens = 8
	params.Evals = 4000
	eng := &Engine{Params: params, Box: box}
	res, err := eng.Dock(s, lig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	if res.Program != ProgramName || res.Receptor != "2HHN" || res.Ligand != lig.Mol.Name {
		t.Errorf("metadata: %+v", res)
	}
	for _, run := range res.Runs {
		if math.IsNaN(run.FEB) || math.IsNaN(run.RMSD) || run.RMSD < 0 {
			t.Errorf("run %d: feb=%v rmsd=%v", run.Run, run.FEB, run.RMSD)
		}
		if !box.Contains(run.Pose.Translation) {
			t.Errorf("run %d pose escaped the box", run.Run)
		}
	}
}

func TestDockDeterministicPerSeed(t *testing.T) {
	maps, lig, box := setupPair(t, "1S4V", "042")
	s, _ := NewScorer(maps, lig)
	params := prep.DefaultDPF("l", "f", 777)
	params.Runs, params.PopSize, params.Gens, params.Evals = 2, 12, 5, 1500
	eng := &Engine{Params: params, Box: box}
	a, err := eng.Dock(s, lig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Dock(s, lig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i].FEB != b.Runs[i].FEB {
			t.Fatalf("run %d FEB differs between identical seeds", i)
		}
	}
}

func TestDockImprovesOverRandom(t *testing.T) {
	// The GA champion must beat the average random pose by a wide
	// margin — the core search property.
	maps, lig, box := setupPair(t, "1HUC", "0D6")
	s, _ := NewScorer(maps, lig)
	params := prep.DefaultDPF("l", "f", 99)
	params.Runs, params.PopSize, params.Gens, params.Evals = 2, 30, 15, 10000
	eng := &Engine{Params: params, Box: box}
	res, err := eng.Dock(s, lig)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	// Average of random poses.
	var avg float64
	n := 50
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		p := dock.RandomPose(rng, box, lig.NumTorsions())
		avg += s.Score(lig.Coords(p))
	}
	avg /= float64(n)
	if best.FEB >= avg {
		t.Errorf("GA best %v not better than random average %v", best.FEB, avg)
	}
}

func TestInvalidParams(t *testing.T) {
	maps, lig, box := setupPair(t, "1AIM", "074")
	s, _ := NewScorer(maps, lig)
	eng := &Engine{Params: prep.DPF{Runs: 0, PopSize: 10}, Box: box}
	if _, err := eng.Dock(s, lig); err == nil {
		t.Error("zero runs accepted")
	}
	eng = &Engine{Params: prep.DPF{Runs: 1, PopSize: 1}, Box: box}
	if _, err := eng.Dock(s, lig); err == nil {
		t.Error("pop size 1 accepted")
	}
}
