package vina

import (
	"repro/internal/chem"
	"repro/internal/dock"
	"repro/internal/dock/tables"
)

// ScoreBatch scores every pose of the batch, writing the affinity of
// slot p into out[p]. Results are bit-identical to calling Score on
// each pose's coordinates: per pose, every pair term is accumulated in
// exactly the sequential order (ligand atoms ascending, CSR spans in
// span order; intramolecular pairs in table order), so the float64
// rounding sequence is unchanged — only the loop nest is inverted.
//
// The speed comes from layout, not from skipping work. The outer loop
// walks ligand atoms, so one atom's radial-table row and its touched
// table segments stay hot across every pose of the batch instead of
// being evicted once per pose. The receptor side runs each
// (atom, pose) query in two branch-free passes over the scorer's
// PackedNeighbors: gather the in-cutoff hits — heavy atoms only,
// position and table column packed in span order, whole cells dropped
// early by their prune spheres, no mispredicted branch on the ~75% of
// candidates beyond the cutoff — then evaluate the radial tables over
// the compact hit list, adding terms in exactly the sequential order.
//
// When the batch carries an active window (Batch.SetWindow +
// SetWindowBound), the receptor gather is shared: the candidate CSR is
// gathered once per ligand atom at the window anchor with the cutoff
// inflated by the bound, and every pose that WindowValid admits filters
// that span with dock.FilterSpan instead of running its own cell walk —
// same hit sequence, same accumulation, bit-identical result (the
// superset argument is on the ACTUAL pose coordinates, so it holds no
// matter how the bound was estimated). Poses that escape the bound,
// and all intramolecular terms of such poses, take the per-pose path
// unchanged. Intramolecular pairs whose anchor separation exceeds
// cutoff + 2·bound are skipped for the valid poses — they cannot enter
// the cutoff, so the skipped iterations never contributed a term.
//
// Safe for concurrent use: the scorer is read-only here, all mutable
// state lives in the caller-owned batch and out.
//
//unit: out=kcal/mol
//exact: bit-identical to per-pose Score; float32 belongs in ScoreBatchFast
func (s *Scorer) ScoreBatch(b *dock.Batch, out []float64) {
	n := b.Len()
	if n == 0 {
		return
	}
	out = out[:n]
	xs, ys, zs := b.SoA()
	stride := b.Stride()
	inter := b.Scratch(n)
	hits := b.Hits(len(s.packed.Atoms()))
	const cut2 = cutoff * cutoff

	anchor, bound, win := b.Window()
	var valid []bool
	var cands []dock.PackedAtom
	var coffs []int32
	if win {
		valid = b.WindowValid()
		cands, coffs = s.windowGather(b, anchor, bound)
	}

	for i := 0; i < stride; i++ {
		if s.ligIsH[i] {
			continue
		}
		row := s.interNodes[i]
		var span []dock.PackedAtom
		if win {
			span = cands[coffs[i]:coffs[i+1]]
		}
		for p := 0; p < n; p++ {
			a := p*stride + i
			var m int
			if win && valid[p] {
				m = dock.FilterSpan(span, xs[a], ys[a], zs[a], cut2, hits)
			} else {
				m = s.packed.Gather(chem.V(xs[a], ys[a], zs[a]), cut2, hits)
			}
			acc := inter[p]
			for k := 0; k < m; k++ {
				h := &hits[k]
				va := row[h.Cls]
				x := tables.Coord2(h.R2)
				ix := int(x)
				if ix >= tables.NNodes-1 {
					acc += va[tables.NNodes-1]
					continue
				}
				v := va[ix]
				acc += v + (x-float64(ix))*(va[ix+1]-v)
			}
			inter[p] = acc
		}
	}

	// Intramolecular terms: pair-major, poses inner, accumulated into
	// out in table order (identical per-pose addition sequence).
	for p := range out {
		out[p] = 0
	}
	if win {
		live := s.windowIntraLive(b, anchor, bound)
		for _, kk := range live {
			pr := &s.intraTbl[kk]
			i, j := int(pr.i), int(pr.j)
			va := pr.nodes
			for p := 0; p < n; p++ {
				if !valid[p] {
					continue
				}
				base := p * stride
				pi := chem.V(xs[base+i], ys[base+i], zs[base+i])
				pj := chem.V(xs[base+j], ys[base+j], zs[base+j])
				if r2 := pi.Dist2(pj); r2 <= cut2 {
					x := tables.Coord2(r2)
					ix := int(x)
					if ix >= tables.NNodes-1 {
						out[p] += va[tables.NNodes-1]
						continue
					}
					v := va[ix]
					out[p] += v + (x-float64(ix))*(va[ix+1]-v)
				}
			}
		}
		// Escaped poses rescore every pair in table order — the same
		// per-pose sequence as the windowless path (per-pose
		// accumulators are independent, so pose-major order here cannot
		// mix lanes).
		for p := 0; p < n; p++ {
			if valid[p] {
				continue
			}
			base := p * stride
			for t := range s.intraTbl {
				pr := &s.intraTbl[t]
				i, j := int(pr.i), int(pr.j)
				pi := chem.V(xs[base+i], ys[base+i], zs[base+i])
				pj := chem.V(xs[base+j], ys[base+j], zs[base+j])
				if r2 := pi.Dist2(pj); r2 <= cut2 {
					va := pr.nodes
					x := tables.Coord2(r2)
					ix := int(x)
					if ix >= tables.NNodes-1 {
						out[p] += va[tables.NNodes-1]
						continue
					}
					v := va[ix]
					out[p] += v + (x-float64(ix))*(va[ix+1]-v)
				}
			}
		}
	} else {
		for _, pr := range s.intraTbl {
			i, j := int(pr.i), int(pr.j)
			va := pr.nodes
			for p := 0; p < n; p++ {
				base := p * stride
				pi := chem.V(xs[base+i], ys[base+i], zs[base+i])
				pj := chem.V(xs[base+j], ys[base+j], zs[base+j])
				if r2 := pi.Dist2(pj); r2 <= cut2 {
					x := tables.Coord2(r2)
					ix := int(x)
					if ix >= tables.NNodes-1 {
						out[p] += va[tables.NNodes-1]
						continue
					}
					v := va[ix]
					out[p] += v + (x-float64(ix))*(va[ix+1]-v)
				}
			}
		}
	}

	for p := 0; p < n; p++ {
		out[p] = inter[p]/s.rotFactor + intraWeight*(out[p]-s.intraRef)
	}
}
