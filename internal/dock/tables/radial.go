// Package tables precomputes every radial interaction used by the
// docking kernels on r²-indexed lookup tables, the same trick the
// real AutoGrid and Vina use: the analytic pair potentials are
// exp/sqrt-heavy, far too slow to evaluate once per lattice point ×
// receptor atom (activity 5) or per Monte-Carlo step × atom pair
// (activity 8). Tabulating them keyed by squared distance removes both
// the transcendental calls and the unconditional sqrt from the inner
// loops, because cell lists and neighbour queries already produce r².
//
// The package owns the analytic forms (moved here from the grid and
// vina packages so both can share one source of truth without an
// import cycle) and a process-global cache of built tables, keyed by
// (kind, type pair). Tables are deterministic functions of the force
// field alone, so sharing them across scorers and goroutines is safe
// and keeps per-pair docking setup allocation-free after warm-up.
package tables

import "math"

// Table geometry. Each table has two uniform-in-r² segments: a fine
// core over [0, SplitR2) where the Lennard-Jones repulsive wall makes
// the potentials violently curved, and a coarse tail over
// [SplitR2, Cutoff²] where every potential is smooth. The split keeps
// interpolation within 1e-3 kcal/mol over the scored range (see
// DESIGN.md "Kernel architecture") while shrinking each table ~4× so
// the working set of a multi-table inner loop stays cache-resident —
// with a single uniform segment at core resolution the lookups are
// cache-miss bound and most of the table-path speedup evaporates.
//
// RMin²·invCore = 256 exactly, so the r ≥ RMin clamp baked into the
// AD4/electrostatic/desolvation tables lands on a table node and never
// puts a derivative kink inside an interpolation bin; SplitR2 itself
// is the shared boundary node of the two segments.
const (
	// Cutoff is the non-bonded interaction cutoff in Å shared by
	// AutoGrid map generation and both scoring functions.
	//unit: Å
	Cutoff = 8.0
	// SplitR2 is the r² boundary (Ų) between the fine core segment
	// and the coarse tail segment.
	//unit: Å2
	SplitR2 = 16.0
	// BinsCore is the number of r² bins covering [0, SplitR2):
	// Δr² = 2⁻¹⁰ Ų, fine enough for the r≈RMin repulsive core.
	BinsCore = 1 << 14
	// BinsTail is the number of r² bins covering [SplitR2, Cutoff²]:
	// Δr² ≈ 1.2e-2 Ų, ample for the smooth attractive tail.
	BinsTail = 1 << 12
	// RMin is AutoGrid's minimum interaction distance: pair terms are
	// evaluated at max(r, RMin), capping the singular repulsive core.
	//unit: Å
	RMin = 0.5
	// RMin2 is RMin² for callers that clamp in r² space.
	//unit: Å2
	RMin2 = RMin * RMin

	// NNodes is the total node count of every Radial: BinsCore core
	// nodes plus BinsTail+1 tail nodes (the boundary node is shared).
	NNodes = BinsCore + BinsTail + 1

	invCore = BinsCore / SplitR2                  // core bins per Ų
	invTail = BinsTail / (Cutoff*Cutoff - SplitR2) // tail bins per Ų
)

// Radial is one radial interaction tabulated on the two-segment
// r²-indexed grid over [0, Cutoff²], evaluated by linear interpolation
// in r². Queries at or beyond the cutoff return the last node (callers
// cutoff-check first; every tabulated potential is ~0 there).
type Radial struct {
	// vals holds BinsCore core nodes (vals[i] = f(√(i/invCore)) for
	// i < BinsCore), then the BinsTail+1 tail nodes starting with the
	// shared boundary node at r² = SplitR2.
	vals []float64
}

// Nodes returns the table's nodes as a fixed-size array pointer (every
// Radial has exactly NNodes nodes). Batched scorers index it directly:
// the constant length drops the slice-header load and one bounds check
// per hit relative to going through At2/AtCoord. Read-only; aliases
// the table's storage.
func (t *Radial) Nodes() *[NNodes]float64 { return (*[NNodes]float64)(t.vals) }

// NewRadial tabulates f — a function of the distance r in Å — on the
// package's two-segment r² grid.
func NewRadial(f func(r float64) float64) *Radial {
	t := &Radial{vals: make([]float64, BinsCore+BinsTail+1)}
	for i := 0; i < BinsCore; i++ {
		t.vals[i] = f(math.Sqrt(float64(i) / invCore))
	}
	for j := 0; j <= BinsTail; j++ {
		t.vals[BinsCore+j] = f(math.Sqrt(SplitR2 + float64(j)/invTail))
	}
	return t
}

// At2 returns the interpolated value at squared distance r2 ≥ 0.
//
//unit: r2=Å2
func (t *Radial) At2(r2 float64) float64 {
	x := r2 * invCore
	if r2 >= SplitR2 {
		x = BinsCore + (r2-SplitR2)*invTail
	}
	i := int(x)
	if i >= len(t.vals)-1 {
		return t.vals[len(t.vals)-1]
	}
	v := t.vals[i]
	return v + (x-float64(i))*(t.vals[i+1]-v)
}

// Coord2 returns the fractional two-segment table coordinate of the
// squared distance r2 — the value At2 interpolates at — selected
// without a data-dependent branch: both segment coordinates are
// computed and the bit pattern of the right one is picked with a
// conditional move, so a batch of mixed core/tail distances evaluates
// with no branch mispredictions. The selected value is bit-identical
// to At2's internal coordinate.
//
//unit: r2=Å2
func Coord2(r2 float64) float64 {
	xc := r2 * invCore
	xt := BinsCore + (r2-SplitR2)*invTail
	xb := math.Float64bits(xc)
	if r2 >= SplitR2 {
		xb = math.Float64bits(xt)
	}
	return math.Float64frombits(xb)
}

// AtCoord evaluates the table at a Coord2 coordinate:
// t.AtCoord(Coord2(r2)) == t.At2(r2) bit-for-bit. Splitting the
// coordinate computation from the node lookup lets batched scorers
// pipeline the table reads of a whole hit list.
func (t *Radial) AtCoord(x float64) float64 {
	i := int(x)
	if i >= len(t.vals)-1 {
		return t.vals[len(t.vals)-1]
	}
	v := t.vals[i]
	return v + (x-float64(i))*(t.vals[i+1]-v)
}

// Radial32 is Radial with float32 node storage: the same two-segment
// r²-indexed geometry at half the memory footprint, for the float32
// grid-map representation where lattice values are stored single
// precision anyway. Nodes are quantized once at build time; At2 still
// interpolates in float64, so the only extra error versus Radial is
// the one-time node rounding (≤ |f|·2⁻²⁴ per node, pinned by the
// equivalence tests alongside the float64 bound).
type Radial32 struct {
	vals []float32
}

// NewRadial32 tabulates f — a function of the distance r in Å — on the
// package's two-segment r² grid with float32 nodes.
func NewRadial32(f func(r float64) float64) *Radial32 {
	t := &Radial32{vals: make([]float32, BinsCore+BinsTail+1)}
	for i := 0; i < BinsCore; i++ {
		t.vals[i] = float32(f(math.Sqrt(float64(i) / invCore)))
	}
	for j := 0; j <= BinsTail; j++ {
		t.vals[BinsCore+j] = float32(f(math.Sqrt(SplitR2 + float64(j)/invTail)))
	}
	return t
}

// At2 returns the interpolated value at squared distance r2 ≥ 0.
//
//unit: r2=Å2
func (t *Radial32) At2(r2 float64) float64 {
	x := r2 * invCore
	if r2 >= SplitR2 {
		x = BinsCore + (r2-SplitR2)*invTail
	}
	i := int(x)
	if i >= len(t.vals)-1 {
		return float64(t.vals[len(t.vals)-1])
	}
	v := float64(t.vals[i])
	return v + (x-float64(i))*(float64(t.vals[i+1])-v)
}
