package dock

import (
	"math/rand"
	"testing"

	"repro/internal/chem"
)

// TestBatchAppendMatchesCoords pins the SoA contract: every component
// of every slot is bit-identical to the AoS CoordsInto path.
func TestBatchAppendMatchesCoords(t *testing.T) {
	lig := testLigand(t, "0E6")
	box := Box{Center: chem.V(1, -2, 3), Size: chem.V(12, 12, 12)}
	r := rand.New(rand.NewSource(11))
	b := NewBatch(lig, 4) // deliberately smaller than the pose count: exercises growth
	var poses []Pose
	for k := 0; k < 33; k++ {
		p := RandomPose(r, box, lig.NumTorsions())
		poses = append(poses, p)
		if slot := b.Append(p); slot != k {
			t.Fatalf("slot %d, want %d", slot, k)
		}
	}
	if b.Len() != len(poses) || b.Stride() != lig.Mol.NumAtoms() {
		t.Fatalf("len=%d stride=%d, want %d/%d", b.Len(), b.Stride(), len(poses), lig.Mol.NumAtoms())
	}
	xs, ys, zs := b.SoA()
	for k, p := range poses {
		want := lig.Coords(p)
		for i, w := range want {
			at := k*b.Stride() + i
			if xs[at] != w.X || ys[at] != w.Y || zs[at] != w.Z {
				t.Fatalf("pose %d atom %d: batch (%v,%v,%v) != coords %v",
					k, i, xs[at], ys[at], zs[at], w)
			}
			if got := b.At(k, i); got != w {
				t.Fatalf("At(%d,%d) = %v, want %v", k, i, got, w)
			}
		}
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
}

// TestBatchSizesMatchCoords sweeps the engine batch sizes, pinning the
// 0-ULP contract of the deferred batched-kinematics materialization at
// every size including the empty batch.
func TestBatchSizesMatchCoords(t *testing.T) {
	lig := testLigand(t, "0E6")
	box := Box{Center: chem.V(0, 1, -1), Size: chem.V(14, 14, 14)}
	r := rand.New(rand.NewSource(23))
	b := NewBatch(lig, 8)
	for _, n := range []int{0, 1, 7, 64} {
		b.Reset()
		poses := make([]Pose, n)
		for k := range poses {
			poses[k] = RandomPose(r, box, lig.NumTorsions())
			b.Append(poses[k])
		}
		xs, ys, zs := b.SoA()
		if len(xs) != n*b.Stride() {
			t.Fatalf("n=%d: SoA len %d, want %d", n, len(xs), n*b.Stride())
		}
		for k, p := range poses {
			want := lig.Coords(p)
			for i, w := range want {
				at := k*b.Stride() + i
				if xs[at] != w.X || ys[at] != w.Y || zs[at] != w.Z {
					t.Fatalf("n=%d pose %d atom %d mismatch", n, k, i)
				}
			}
		}
	}
}

// TestBatchIncrementalMaterialize pins the growth edge cases of the
// deferred materialization: materialize, append past capacity,
// materialize again — earlier slots must survive the lane growth — and
// Reset-then-Append storage reuse.
func TestBatchIncrementalMaterialize(t *testing.T) {
	lig := testLigand(t, "0E6")
	box := Box{Center: chem.V(0, 0, 0), Size: chem.V(12, 12, 12)}
	r := rand.New(rand.NewSource(31))
	b := NewBatch(lig, 2) // tiny: every phase below grows the lanes
	var poses []Pose
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			p := RandomPose(r, box, lig.NumTorsions())
			poses = append(poses, p)
			b.Append(p)
		}
	}
	check := func(phase string) {
		t.Helper()
		xs, ys, zs := b.SoA()
		for k, p := range poses {
			want := lig.Coords(p)
			for i, w := range want {
				at := k*b.Stride() + i
				if xs[at] != w.X || ys[at] != w.Y || zs[at] != w.Z {
					t.Fatalf("%s: pose %d atom %d mismatch", phase, k, i)
				}
			}
		}
	}
	appendN(3)
	check("first window")
	// Appending after a materialization must only materialize the tail
	// while preserving the already-written slots across lane growth.
	appendN(14)
	check("grown window")
	appendN(1)
	check("single-pose tail")
	// Reset-then-Append reuses the high-water storage.
	b.Reset()
	poses = poses[:0]
	appendN(5)
	check("after reset")
}

// TestBatchZeroTorsionLigand covers the rigid-ligand path: CoordsInto
// skips the centroid re-centre, and the batched kernel must too.
func TestBatchZeroTorsionLigand(t *testing.T) {
	m := &chem.Molecule{Name: "RIGID"}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 7; i++ {
		m.Atoms = append(m.Atoms, chem.Atom{Element: chem.Carbon,
			Pos: chem.V(r.Float64()*4, r.Float64()*4, r.Float64()*4)})
	}
	lig, err := NewLigand(m, &chem.TorsionTree{})
	if err != nil {
		t.Fatal(err)
	}
	box := Box{Center: chem.V(2, -1, 0), Size: chem.V(10, 10, 10)}
	b := NewBatch(lig, 2)
	var poses []Pose
	for k := 0; k < 9; k++ {
		p := RandomPose(r, box, 0)
		poses = append(poses, p)
		b.Append(p)
	}
	xs, ys, zs := b.SoA()
	for k, p := range poses {
		want := lig.Coords(p)
		for i, w := range want {
			at := k*b.Stride() + i
			if xs[at] != w.X || ys[at] != w.Y || zs[at] != w.Z {
				t.Fatalf("pose %d atom %d mismatch", k, i)
			}
		}
	}
}

// TestBatchAppendCopiesPose pins the aliasing contract: mutating a
// pose (or its torsion slice) after Append, before materialization,
// must not affect the staged slot.
func TestBatchAppendCopiesPose(t *testing.T) {
	lig := testLigand(t, "0E6")
	box := Box{Center: chem.V(0, 0, 0), Size: chem.V(12, 12, 12)}
	r := rand.New(rand.NewSource(13))
	b := NewBatch(lig, 4)
	p := RandomPose(r, box, lig.NumTorsions())
	snapshot := p.Clone()
	b.Append(p)
	// Mutate every field of the appended pose before SoA materializes.
	p.Translation = chem.V(99, 99, 99)
	p.Orientation = chem.RandomQuat(0.1, 0.2, 0.3)
	for i := range p.Torsions {
		p.Torsions[i] = 1.234
	}
	want := lig.Coords(snapshot)
	xs, ys, zs := b.SoA()
	for i, w := range want {
		if xs[i] != w.X || ys[i] != w.Y || zs[i] != w.Z {
			t.Fatalf("atom %d: staged slot aliased the caller's pose", i)
		}
	}
}

// TestBatchAppendPanicsOnTorsionMismatch mirrors CoordsInto's
// validation at the staging boundary.
func TestBatchAppendPanicsOnTorsionMismatch(t *testing.T) {
	lig := testLigand(t, "0E6")
	b := NewBatch(lig, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong torsion count")
		}
	}()
	b.Append(Pose{Orientation: chem.QuatIdentity,
		Torsions: make([]float64, lig.NumTorsions()+1)})
}

// TestBatchSteadyStateAllocs pins the zero-alloc contract of the warm
// Reset/Append cycle.
func TestBatchSteadyStateAllocs(t *testing.T) {
	lig := testLigand(t, "0E6")
	box := Box{Center: chem.V(0, 0, 0), Size: chem.V(10, 10, 10)}
	r := rand.New(rand.NewSource(5))
	ws := NewWorkspace(lig)
	b := ws.Batch()
	poses := make([]Pose, 50)
	for i := range poses {
		poses[i] = RandomPose(r, box, lig.NumTorsions())
	}
	// Warm: reach the high-water mark and the scratch buffers once.
	b.Reset()
	for _, p := range poses {
		b.Append(p)
	}
	_, _, _ = b.SoA()
	_ = b.Scratch(len(poses))
	_ = b.Scratch32(2 * len(poses))
	_ = b.Hits(256)
	_ = ws.Floats(len(poses))
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for _, p := range poses {
			b.Append(p)
		}
		_, _, _ = b.SoA()
		_ = b.Scratch(len(poses))
		_ = b.Scratch32(2 * len(poses))
		_ = b.Hits(256)
		_ = ws.Floats(len(poses))
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch loop allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkBatchAppend50(b *testing.B) {
	lig := testLigand(b, "0E6")
	box := Box{Center: chem.V(0, 0, 0), Size: chem.V(10, 10, 10)}
	r := rand.New(rand.NewSource(5))
	poses := make([]Pose, 50)
	for i := range poses {
		poses[i] = RandomPose(r, box, lig.NumTorsions())
	}
	batch := NewBatch(lig, len(poses))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for _, p := range poses {
			batch.Append(p)
		}
		_, _, _ = batch.SoA()
	}
}
