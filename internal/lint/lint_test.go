package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"regexp"
	"strings"
	"testing"
)

// checkFixture type-checks one in-memory fixture file as package
// `path` (which controls path-sensitive analyzers like wildrand).
// Loaders are shared per go version so the standard-library closure is
// type-checked once per test binary, not once per case.
var testLoaders = map[string]*loader{}

func checkFixture(t *testing.T, path, goVersion, filename, src string) *Package {
	t.Helper()
	ld := testLoaders[goVersion]
	if ld == nil {
		modDir, modPath, modGo, err := findModule(".")
		if err != nil {
			t.Fatalf("findModule: %v", err)
		}
		if goVersion == "" {
			goVersion = modGo
		}
		ld = newLoader(modDir, modPath, goVersion)
		testLoaders[goVersion] = ld
		testLoaders[""] = ld // default alias on first use
	}
	f, err := parser.ParseFile(ld.fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	pkg, err := ld.check(path, []*ast.File{f})
	if err != nil && pkg == nil {
		t.Fatalf("check fixture: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}
	return pkg
}

// wantRE extracts `// want "regexp"` markers: line number -> pattern.
var wantMarkerRE = regexp.MustCompile(`// want "([^"]+)"`)

func wantMarkers(t *testing.T, src string) map[int]*regexp.Regexp {
	t.Helper()
	out := map[int]*regexp.Regexp{}
	for i, line := range strings.Split(src, "\n") {
		m := wantMarkerRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("line %d: bad want pattern %q: %v", i+1, m[1], err)
		}
		out[i+1] = re
	}
	return out
}

// runCase runs one analyzer over one fixture (through the full Run
// pipeline, so //lint:ignore filtering applies) and asserts that the
// diagnostics exactly match the `// want` markers by line.
func runCase(t *testing.T, an *Analyzer, path, goVersion, filename, src string) {
	t.Helper()
	pkg := checkFixture(t, path, goVersion, filename, src)
	diags := Run([]*Package{pkg}, []*Analyzer{an})

	want := wantMarkers(t, src)
	got := map[int][]string{}
	for _, d := range diags {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
	}
	for line, re := range want {
		msgs, ok := got[line]
		if !ok {
			t.Errorf("line %d: expected diagnostic matching %q, got none", line, re)
			continue
		}
		matched := false
		for _, m := range msgs {
			if re.MatchString(m) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("line %d: diagnostics %q do not match %q", line, msgs, re)
		}
	}
	for line, msgs := range got {
		if _, ok := want[line]; !ok {
			t.Errorf("line %d: unexpected diagnostic(s): %q", line, msgs)
		}
	}
}

func TestFloatCmp(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"flags_equality", `package p

func same(a, b float64) bool {
	return a == b // want "exact floating-point == comparison"
}

func diff(a, b float32) bool {
	return a != b // want "exact floating-point != comparison"
}
`},
		{"zero_guard_and_nan_exempt", `package p

func guards(a float64) bool {
	if a == 0 { // zero guard: exempt
		return false
	}
	return a != a // NaN idiom: exempt
}

const eps = 1e-9

func constFold() bool {
	return eps == 0.0 // both constant: exempt
}
`},
		{"epsilon_helper_exempt", `package p

import "math"

func almostEqual(a, b, tol float64) bool {
	if a == b { // inside approved helper: exempt
		return true
	}
	return math.Abs(a-b) <= tol
}

func ints(a, b int) bool { return a == b } // not float: exempt
`},
		{"suppression", `package p

func tieBreak(a, b float64) bool {
	//lint:ignore floatcmp exact tie detection is intentional here
	return a == b
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCase(t, FloatCmp, "fixture/floatcmp", "", "fixture.go", tc.src)
		})
	}
}

func TestExactFlow(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"flags_narrowing_and_arithmetic", `package p

//exact: bit-identical to the reference path
func scoreExact(xs []float64, acc []float32) float64 {
	v := float32(xs[0]) // want "float32 conversion inside //exact: function"
	w := acc[0] * acc[1] // want "float32 \* arithmetic inside //exact: function"
	acc[0] += w // want "float32 \+= inside //exact: function"
	return float64(v)
}
`},
		{"widening_and_plain_float64_exempt", `package p

//exact: bit-identical to the reference path
func scoreExact(xs []float32) float64 {
	s := 0.0
	for _, x := range xs {
		s += float64(x) // widening: exempt
	}
	return s * 0.5
}

func scoreFast(xs []float64) float32 { // no directive: exempt
	return float32(xs[0]) * 0.5
}
`},
		{"float32_to_float32_exempt", `package p

type affinity float32

//exact: node passthrough
func reslot(v float32) affinity {
	return affinity(v) // float32-based to float32-based: no narrowing
}
`},
		{"suppression", `package p

//exact: bit-identical modulo the documented seed fold
func fold(v float64) float32 {
	//lint:ignore exactflow the fold is part of the pinned contract
	return float32(v)
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCase(t, ExactFlow, "fixture/exactflow", "", "fixture.go", tc.src)
		})
	}
}

func TestDiscardErr(t *testing.T) {
	cases := []struct {
		name, file, src string
	}{
		{"flags_discards", "fixture.go", `package p

import "strconv"

func f() error { return nil }

func g() {
	_ = f() // want "error value discarded"
	n, _ := strconv.Atoi("7") // want "error value discarded"
	_ = n
}
`},
		{"negatives", "fixture.go", `package p

import "errors"

type myErr struct{}

func (myErr) Error() string { return "x" }

func keep(m map[string]int, v any) (int, bool, error) {
	_, ok := v.(myErr)       // type assertion: exempt
	n, present := m["k"]     // comma-ok map read: no error involved
	err := errors.New("kept")
	return n, ok && present, err
}
`},
		{"test_files_exempt", "fixture_test.go", `package p

import "strconv"

func h() {
	n, _ := strconv.Atoi("7") // test file: exempt
	_ = n
}
`},
		{"suppression", "fixture.go", `package p

import "strconv"

func h() int {
	//lint:ignore discarderr input validated upstream, parse cannot fail
	n, _ := strconv.Atoi("7")
	return n
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCase(t, DiscardErr, "fixture/discarderr", "", tc.file, tc.src)
		})
	}
}

func TestMutexHeld(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"copy_by_value", `package p

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(mu sync.Mutex) { mu.Lock() } // want "passes lock by value"

func (g guarded) byValRecv() int { return g.n } // want "passes lock by value"

func copies(g *guarded) {
	cp := *g // want "assignment copies lock value"
	_ = cp
}

func ranges(gs []guarded) {
	for _, g := range gs { // want "range copies lock"
		_ = g.n
	}
}
`},
		{"lock_without_unlock", `package p

import "sync"

var mu sync.Mutex

func leaks() {
	mu.Lock() // want "no matching unlock"
}

func ok() {
	mu.Lock()
	defer mu.Unlock()
}

func okInline() {
	mu.Lock()
	mu.Unlock()
}
`},
		{"blocking_while_held", `package p

import (
	"sync"
	"time"
)

var (
	mu sync.Mutex
	ch = make(chan int)
	wg sync.WaitGroup
)

func sends() {
	mu.Lock()
	ch <- 1 // want "channel send while mu is held"
	mu.Unlock()
}

func sleeps() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while mu is held"
}

func waits() {
	mu.Lock()
	wg.Wait() // want "WaitGroup.Wait while mu is held"
	mu.Unlock()
}

func relocks() {
	mu.Lock()
	mu.Lock() // want "re-locked while already held"
	mu.Unlock()
}
`},
		{"cond_wait_exempt", `package p

import "sync"

type box struct {
	mu   sync.Mutex
	cond *sync.Cond
	full bool
}

func (b *box) waitFull() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.full {
		b.cond.Wait() // sync.Cond.Wait: exempt by design
	}
}

func (b *box) signalAfter() {
	b.mu.Lock()
	b.full = true
	b.cond.Broadcast()
	b.mu.Unlock()
	b.cond.Signal()
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCase(t, MutexHeld, "fixture/mutexheld", "", "fixture.go", tc.src)
		})
	}
}

func TestWildRand(t *testing.T) {
	hotSrc := `package p

import (
	"math/rand"
	"time"
)

func roll() int {
	return rand.Intn(6) // want "math/rand global source call rand.Intn"
}

func stamp() time.Time {
	return time.Now() // want "in deterministic hot path"
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors: exempt
	return r.Float64()                  // method on injected source: exempt
}

func elapsed(d time.Duration) time.Duration { return d * 2 }
`
	t.Run("hot_path_flags", func(t *testing.T) {
		runCase(t, WildRand, "repro/internal/dock/fixture", "", "fixture.go", hotSrc)
	})
	t.Run("cold_path_exempt", func(t *testing.T) {
		cold := strings.ReplaceAll(hotSrc, `// want "math/rand global source call rand.Intn"`, "")
		cold = strings.ReplaceAll(cold, `// want "in deterministic hot path"`, "")
		runCase(t, WildRand, "repro/internal/analysis/fixture", "", "fixture.go", cold)
	})
	// Regression guard for the parallel search pools: per-worker seeded
	// sources must stay clean, while a global draw inside a pooled
	// goroutine is flagged.
	poolSrc := `package p

import (
	"math/rand"
	"sync"
)

func searchChains(seed int64, chains, workers int) []float64 {
	out := make([]float64, chains)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < chains; c += workers {
				r := rand.New(rand.NewSource(seed + int64(c)*104729)) // per-chain source: exempt
				out[c] = r.Float64()
			}
		}(w)
	}
	wg.Wait()
	return out
}

func jitteredChains(chains int) []float64 {
	out := make([]float64, chains)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < chains; c += 2 {
				out[c] = rand.Float64() // want "math/rand global source call rand.Float64"
			}
		}(w)
	}
	wg.Wait()
	return out
}
`
	t.Run("worker_pool", func(t *testing.T) {
		runCase(t, WildRand, "repro/internal/dock/fixture", "", "fixture.go", poolSrc)
	})
	// The engine's dataflow dispatcher is a hot path: its virtual
	// clocks come from placements, never the wall clock, and any
	// per-activation randomness must flow through a seeded source
	// keyed on the tuple. Both wall-clock reads and global draws
	// inside the dispatch loop are flagged.
	dispatcherSrc := `package p

import (
	"math/rand"
	"time"
)

type node struct{ readyAt, planCost float64 }

func dispatch(ready []*node, seed int64) float64 {
	frontier := 0.0
	for _, n := range ready {
		r := rand.New(rand.NewSource(seed ^ int64(len(ready)))) // injected source: exempt
		jitter := r.Float64() * 0

		end := n.readyAt + n.planCost + jitter
		if end > frontier {
			frontier = end
		}
	}
	return frontier
}

func dispatchWall(ready []*node) float64 {
	frontier := 0.0
	for _, n := range ready {
		now := float64(time.Now().UnixNano()) // want "in deterministic hot path"
		tie := rand.Float64()                 // want "math/rand global source call rand.Float64"
		end := now + n.planCost + tie
		if end > frontier {
			frontier = end
		}
	}
	return frontier
}
`
	t.Run("engine_dispatcher", func(t *testing.T) {
		runCase(t, WildRand, "repro/internal/engine/fixture", "", "fixture.go", dispatcherSrc)
	})
}

func TestProvPair(t *testing.T) {
	const header = `package p

import (
	"time"

	"repro/internal/prov"
)
`
	cases := []struct {
		name, body string
	}{
		{"never_closed", `
func leak(db *prov.DB, now time.Time) {
	db.BeginActivation(1, 1, 1, now, "vm", "cmd") // want "not closed on every path"
}
`},
		{"early_return_leaks", `
func leakOnPath(db *prov.DB, now time.Time, bad bool) error {
	if err := db.BeginActivation(1, 1, 1, now, "vm", "cmd"); err != nil {
		return err // start failed: no activation to close
	}
	if bad {
		return nil // want "return leaves provenance activation open"
	}
	return db.CloseActivation(1, prov.StatusFinished, now, 0)
}
`},
		{"running_insert_is_a_start", `
func viaInsert(db *prov.DB, now time.Time) {
	db.InsertActivation(1, 1, 1, prov.StatusRunning, now, now, "vm", 0, "cmd") // want "not closed on every path"
}
`},
		{"deferred_close_ok", `
func deferred(db *prov.DB, now time.Time) error {
	if err := db.BeginActivation(1, 1, 1, now, "vm", "cmd"); err != nil {
		return err
	}
	defer db.CloseActivation(1, prov.StatusFinished, now, 0)
	return nil
}
`},
		{"all_paths_close_ok", `
func branches(db *prov.DB, now time.Time, failed bool) error {
	if err := db.BeginActivation(1, 1, 1, now, "vm", "cmd"); err != nil {
		return err
	}
	if failed {
		return db.CloseActivation(1, prov.StatusFailed, now, 1)
	}
	return db.CloseActivation(1, prov.StatusFinished, now, 0)
}
`},
		{"terminal_insert_not_a_start", `
func terminal(db *prov.DB, now time.Time) error {
	return db.InsertActivation(1, 1, 1, prov.StatusAborted, now, now, "-", 0, "cmd")
}
`},
		// The dataflow dispatcher's place() shape: one switch clause
		// begins and closes its own activation and returns; the code
		// after the switch has error returns before its own begin.
		// Neither must be flagged — a clause that closed (or reported
		// at its own return) cannot leak past the switch.
		{"switch_clause_closes_then_fallthrough", `
func outcome(db *prov.DB, now time.Time, kind int, stage func() error) error {
	switch {
	case kind == 1:
		if err := db.BeginActivation(1, 1, 1, now, "vm", "cmd"); err != nil {
			return err
		}
		return db.CloseActivation(1, prov.StatusAborted, now, 0)
	case kind == 2:
		return db.InsertActivation(1, 1, 1, prov.StatusFailed, now, now, "-", 0, "cmd")
	}
	if err := stage(); err != nil {
		return err // pre-begin error path: nothing open yet
	}
	if err := db.BeginActivation(2, 1, 1, now, "vm", "cmd"); err != nil {
		return err
	}
	return db.CloseActivation(2, prov.StatusFinished, now, 0)
}
`},
		{"switch_clause_leaks_to_fallthrough", `
func leakySwitch(db *prov.DB, now time.Time, kind int) error {
	switch {
	case kind == 1:
		if err := db.BeginActivation(1, 1, 1, now, "vm", "cmd"); err != nil {
			return err
		}
	}
	return nil // want "return leaves provenance activation open"
}
`},
		{"err_var_guard_exempt", `
func assigned(db *prov.DB, now time.Time) error {
	err := db.BeginActivation(1, 1, 1, now, "vm", "cmd")
	if err != nil {
		return err // start failed: exempt path
	}
	return db.CloseActivation(1, prov.StatusFinished, now, 0)
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCase(t, ProvPair, "fixture/provpair", "", "fixture.go", header+tc.body)
		})
	}
}

func TestCtxLeak(t *testing.T) {
	cases := []struct {
		name, goVersion, src string
	}{
		{"unstoppable_loop", "", `package p

func work() {}

func spawn() {
	go func() {
		for { // want "infinite worker loop with no shutdown path"
			work()
		}
	}()
}
`},
		{"shutdown_paths_ok", "", `package p

func work() {}

func spawnSelect(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

func spawnRecv(jobs chan int) {
	go func() {
		for {
			j, ok := <-jobs
			if !ok {
				return
			}
			_ = j
		}
	}()
}

func spawnRange(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}
`},
		// The dataflow dispatcher's worker shape: a cond-wait loop that
		// re-checks a shutdown flag and returns. The outer for {} is
		// clean (return path); the inner cond-guarded for has a
		// condition and is never a worker loop. A cond.Wait spin with
		// no shutdown check stays flagged — sync.Cond.Wait alone is
		// not an exit.
		{"dispatcher_worker", "", `package p

import "sync"

type dispatcher struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []int
	shutdown bool
}

func runJob(int) {}

func (d *dispatcher) pool(n int) {
	for i := 0; i < n; i++ {
		go func() {
			d.mu.Lock()
			defer d.mu.Unlock()
			for {
				for len(d.queue) == 0 && !d.shutdown {
					d.cond.Wait()
				}
				if d.shutdown {
					return
				}
				job := d.queue[0]
				d.queue = d.queue[1:]
				d.mu.Unlock()
				runJob(job)
				d.mu.Lock()
			}
		}()
	}
}

func (d *dispatcher) spin() {
	go func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		for { // want "infinite worker loop with no shutdown path"
			d.cond.Wait()
		}
	}()
}
`},
		{"loopvar_pre122", "go1.21", `package p

func use(int) {}

func fan(xs []int) {
	for _, x := range xs {
		go func() {
			use(x) // want "goroutine captures loop variable x"
		}()
	}
}

func byArg(xs []int) {
	for _, x := range xs {
		go func(x int) {
			use(x) // passed as argument: exempt
		}(x)
	}
}
`},
		{"loopvar_go122_exempt", "go1.22", `package p

func use(int) {}

func fan(xs []int) {
	for _, x := range xs {
		go func() {
			use(x) // per-iteration variable since 1.22: exempt
		}()
	}
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCase(t, CtxLeak, "fixture/ctxleak", tc.goVersion, "fixture.go", tc.src)
		})
	}
}

func TestIgnoreDirectiveParsing(t *testing.T) {
	if d := parseIgnore("//lint:ignore floatcmp reason here"); d == nil || !d.analyzers["floatcmp"] {
		t.Fatalf("well-formed directive not parsed: %+v", d)
	}
	if d := parseIgnore("//lint:ignore floatcmp,discarderr shared reason"); d == nil ||
		!d.analyzers["floatcmp"] || !d.analyzers["discarderr"] {
		t.Fatalf("multi-analyzer directive not parsed: %+v", d)
	}
	if d := parseIgnore("//lint:ignore floatcmp"); d != nil {
		t.Fatal("directive without reason must be rejected")
	}
	if d := parseIgnore("// plain comment"); d != nil {
		t.Fatal("non-directive comment must not parse")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ctxleak", "detflow", "dimcheck", "discarderr", "exactflow", "floatcmp", "lockflow", "mutexheld", "provpair", "wildrand"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown analyzer must be nil")
	}
}

// TestFixturePackages loads the on-disk fixture packages end-to-end
// through Load (the same path cmd/scilint uses) and checks the seeded
// findings surface and the clean package stays clean.
func TestFixturePackages(t *testing.T) {
	pkgs, err := Load(LoadConfig{IncludeTests: true},
		"testdata/src/sick", "testdata/src/internal/dock",
		"testdata/src/noise", "testdata/src/clean")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("%s: fixture must type-check, got %v", p.Path, p.TypeErrors[0])
		}
	}
	diags := Run(pkgs, Analyzers())

	perPkg := map[string]map[string]int{}
	for _, d := range diags {
		key := "other"
		switch {
		case strings.Contains(d.Pos.Filename, "src/sick"):
			key = "sick"
		case strings.Contains(d.Pos.Filename, "src/internal/dock"):
			key = "dock"
		case strings.Contains(d.Pos.Filename, "src/noise"):
			key = "noise"
		case strings.Contains(d.Pos.Filename, "src/clean"):
			key = "clean"
		}
		if perPkg[key] == nil {
			perPkg[key] = map[string]int{}
		}
		perPkg[key][d.Analyzer]++
	}
	if len(perPkg["clean"]) != 0 {
		t.Errorf("clean fixture produced findings: %v", perPkg["clean"])
	}
	// The cold helper package's direct draw is deliberately below every
	// analyzer's radar; the taint surfaces in the dock fixture instead.
	if len(perPkg["noise"]) != 0 {
		t.Errorf("noise fixture produced findings: %v", perPkg["noise"])
	}
	for _, an := range []string{"floatcmp", "exactflow", "discarderr", "mutexheld", "provpair", "ctxleak", "lockflow", "dimcheck"} {
		if perPkg["sick"][an] == 0 {
			t.Errorf("sick fixture produced no %s finding; got %v", an, perPkg["sick"])
		}
	}
	for _, an := range []string{"wildrand", "detflow"} {
		if perPkg["dock"][an] == 0 {
			t.Errorf("dock fixture produced no %s finding; got %v", an, perPkg["dock"])
		}
	}
	// Diagnostics must carry exact positions into the fixture files.
	for _, d := range diags {
		if d.Pos.Line == 0 || d.Pos.Filename == "" {
			t.Errorf("diagnostic without position: %+v", d)
		}
	}
	_ = fmt.Sprintf // keep fmt for future debugging tweaks
}
