package dock

import (
	"fmt"
	"math/rand"
)

// RefineResult is the outcome of a local pose refinement.
type RefineResult struct {
	Pose     Pose
	FEB      float64
	Improved float64 // energy gained vs the starting pose (≥ 0)
	Evals    int
}

// Refine performs the "redocking" refinement §V.D recommends for
// promising interactions: a Solis-Wets-style adaptive local search
// around an existing pose, without the global exploration phase. The
// returned pose is never worse than the input.
func Refine(s Scorer, lig *Ligand, box Box, start Pose, iterations int, seed int64) (RefineResult, error) {
	if iterations < 1 {
		return RefineResult{}, fmt.Errorf("dock: refinement needs ≥ 1 iteration")
	}
	if len(start.Torsions) != lig.NumTorsions() {
		return RefineResult{}, fmt.Errorf("dock: pose has %d torsions, ligand %d",
			len(start.Torsions), lig.NumTorsions())
	}
	r := rand.New(rand.NewSource(seed))
	cur := start.Clone()
	curFeb := s.Score(lig.Coords(cur))
	startFeb := curFeb
	evals := 1
	rho := 0.6
	const rhoMin = 0.005
	succ, fail := 0, 0
	for it := 0; it < iterations && rho > rhoMin; it++ {
		cand := Perturb(r, cur, rho, rho*0.3)
		ClampToBox(&cand, box)
		feb := s.Score(lig.Coords(cand))
		evals++
		if feb < curFeb {
			cur, curFeb = cand, feb
			succ++
			fail = 0
		} else {
			fail++
			succ = 0
		}
		if succ >= 3 {
			rho *= 1.8
			succ = 0
		}
		if fail >= 3 {
			rho *= 0.55
			fail = 0
		}
	}
	return RefineResult{
		Pose:     cur,
		FEB:      curFeb,
		Improved: startFeb - curFeb,
		Evals:    evals,
	}, nil
}
