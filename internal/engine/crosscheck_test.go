package engine

import (
	"os"
	"testing"

	"repro/internal/prov"
)

// TestMain turns on the prov query cross-check: the engine tests'
// row-level goldens (barrier vs dataflow, failure injection, runtime
// steering queries) all read provenance through Query, so with the
// oracle on they also pin the indexed planner against the reference
// executor on live engine-shaped data.
func TestMain(m *testing.M) {
	prov.CrossCheck = true
	os.Exit(m.Run())
}
