// Command dockbench regenerates the paper's evaluation artifacts:
// Tables 1-3 and Figures 5-11 of "Exploring Large Scale
// Receptor-Ligand Pairs in Molecular Docking Workflows in HPC Clouds"
// (IPPS 2014).
//
//	dockbench -exp all          # every table and figure (minutes)
//	dockbench -exp f7           # the TET scalability curve
//	dockbench -exp t3 -quick    # reduced workload (seconds)
//	dockbench -exp kernels      # docking kernel microbenchmarks,
//	                            # also written to -benchout as JSON
//	dockbench -exp search       # conformational-search benchmarks
//	                            # (workspace + parallel chains), also
//	                            # written to -benchout as JSON
//	dockbench -exp pipeline     # stage-barrier vs pipelined dataflow
//	                            # runtime (virtual TET), also written
//	                            # to -benchout as JSON
//	dockbench -exp prov         # provenance-store ingest/close/query
//	                            # benchmarks, also written to
//	                            # -benchout as JSON
//	dockbench -exp campaigns    # 1 vs 4 concurrent campaigns through
//	                            # the resident Manager (wall-clock +
//	                            # fairness), also -benchout as JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

// jsonReport is the common surface of the benchmark experiments that
// emit a machine-readable artifact next to their printed table.
type jsonReport interface {
	String() string
	JSON() ([]byte, error)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: t1, t2, t3, f5..f11, kernels, search, pipeline, prov, campaigns or all")
		quick    = flag.Bool("quick", false, "reduced workloads (for smoke runs)")
		benchout = flag.String("benchout", "auto",
			"JSON output path for -exp kernels/search/pipeline/prov/campaigns; \"auto\" picks BENCH_<exp>.json, empty skips")
	)
	flag.Parse()
	s := &experiments.Suite{Quick: *quick}

	var rep jsonReport
	var err error
	switch *exp {
	case "kernels":
		rep, err = s.Kernels()
	case "search":
		rep, err = s.Search()
	case "pipeline":
		rep, err = s.Pipeline()
	case "prov":
		rep, err = s.Prov()
	case "campaigns":
		rep, err = s.Campaigns()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dockbench:", err)
		os.Exit(1)
	}
	if rep != nil {
		fmt.Print(rep.String())
		out := *benchout
		if out == "auto" {
			out = "BENCH_" + *exp + ".json"
		}
		if out != "" {
			js, err := rep.JSON()
			if err == nil {
				err = os.WriteFile(out, append(js, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "dockbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", out)
		}
		return
	}
	out, err := s.ByName(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dockbench:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
