package grid

import (
	"fmt"
	"math"

	"repro/internal/chem"
)

// InBox reports whether p lies inside the grid volume.
func (m *Maps) InBox(p chem.Vec3) bool {
	o := m.Spec.Origin()
	d := p.Sub(o)
	return d.X >= 0 && d.Y >= 0 && d.Z >= 0 &&
		d.X <= float64(m.Spec.NPts[0]-1)*m.Spec.Spacing &&
		d.Y <= float64(m.Spec.NPts[1]-1)*m.Spec.Spacing &&
		d.Z <= float64(m.Spec.NPts[2]-1)*m.Spec.Spacing
}

// AffinityAt returns the trilinearly interpolated affinity of the
// probe type at p, or OutOfBoxPenalty outside the grid. Requesting a
// type without a map returns an error (a workflow wiring bug).
func (m *Maps) AffinityAt(t chem.AtomType, p chem.Vec3) (float64, error) {
	sl, ok := m.affinity[t]
	if !ok {
		return 0, fmt.Errorf("grid: no %s map for receptor %s", t, m.Receptor)
	}
	return m.interpolate(sl, p), nil
}

// ElectrostaticAt returns the interpolated electrostatic potential
// (per unit charge) at p.
func (m *Maps) ElectrostaticAt(p chem.Vec3) float64 {
	return m.interpolate(m.elec, p)
}

// DesolvationAt returns the interpolated desolvation energy at p.
func (m *Maps) DesolvationAt(p chem.Vec3) float64 {
	return m.interpolate(m.desolv, p)
}

// interpolate performs trilinear interpolation on one map slice.
func (m *Maps) interpolate(sl []float64, p chem.Vec3) float64 {
	o := m.Spec.Origin()
	fx := (p.X - o.X) / m.Spec.Spacing
	fy := (p.Y - o.Y) / m.Spec.Spacing
	fz := (p.Z - o.Z) / m.Spec.Spacing
	nx, ny, nz := m.Spec.NPts[0], m.Spec.NPts[1], m.Spec.NPts[2]
	if fx < 0 || fy < 0 || fz < 0 ||
		fx > float64(nx-1) || fy > float64(ny-1) || fz > float64(nz-1) {
		return OutOfBoxPenalty
	}
	ix := int(math.Floor(fx))
	iy := int(math.Floor(fy))
	iz := int(math.Floor(fz))
	if ix >= nx-1 {
		ix = nx - 2
	}
	if iy >= ny-1 {
		iy = ny - 2
	}
	if iz >= nz-1 {
		iz = nz - 2
	}
	tx := fx - float64(ix)
	ty := fy - float64(iy)
	tz := fz - float64(iz)
	at := func(i, j, k int) float64 {
		return sl[(k*ny+j)*nx+i]
	}
	c00 := at(ix, iy, iz)*(1-tx) + at(ix+1, iy, iz)*tx
	c10 := at(ix, iy+1, iz)*(1-tx) + at(ix+1, iy+1, iz)*tx
	c01 := at(ix, iy, iz+1)*(1-tx) + at(ix+1, iy, iz+1)*tx
	c11 := at(ix, iy+1, iz+1)*(1-tx) + at(ix+1, iy+1, iz+1)*tx
	c0 := c00*(1-ty) + c10*ty
	c1 := c01*(1-ty) + c11*ty
	return c0*(1-tz) + c1*tz
}
