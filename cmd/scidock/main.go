// Command scidock runs the SciDock molecular-docking virtual
// screening workflow end-to-end on the simulated HPC cloud and
// reports the execution summary, Table-3-style docking statistics and
// optional provenance queries.
//
// Examples:
//
//	scidock -mode ad4 -receptors 20 -ligands 4 -cores 32
//	scidock -mode adaptive -receptors 50 -ligands 8 -cores 64 -effort campaign
//	scidock -mode vina -receptors 10 -ligands 2 -query "SELECT count(*) FROM ddocking"
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/engine"
	"repro/internal/stats"
)

func main() {
	var (
		mode      = flag.String("mode", "ad4", "docking mode: ad4, vina or adaptive")
		receptors = flag.Int("receptors", 10, "number of receptors from Table 2 (1-238)")
		ligands   = flag.Int("ligands", 2, "number of ligands from Table 2 (1-42)")
		cores     = flag.Int("cores", 16, "virtual worker cores (the paper used 2-128)")
		effort    = flag.String("effort", "campaign", "docking effort preset: smoke, campaign or quick")
		seed      = flag.Int64("seed", 2014, "campaign seed")
		hgGuard   = flag.Bool("hgguard", true, "enable the Hg steering guard of §V.C")
		failures  = flag.Bool("failures", true, "inject ~10% transient activation failures")
		monitor   = flag.Bool("monitor", false, "print runtime-steering snapshots after each stage")
		query     = flag.String("query", "", "SQL to run against the provenance database afterwards")
		precision = flag.String("precision", "exact", "candidate scoring: exact, or tolerance (fast screens with exact confirmation; identical output, fewer cycles)")
	)
	flag.Parse()

	if err := run(*mode, *receptors, *ligands, *cores, *effort, *seed, *hgGuard, *failures, *monitor, *query, *precision); err != nil {
		fmt.Fprintln(os.Stderr, "scidock:", err)
		os.Exit(1)
	}
}

func run(mode string, receptors, ligands, cores int, effort string, seed int64, hgGuard, failures, monitor bool, query, precision string) error {
	ds, err := data.Small(receptors, ligands)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Dataset: ds, Cores: cores, Seed: seed,
		HgGuard: hgGuard, DisableFailures: !failures,
	}
	if monitor {
		// Runtime steering (§IV.B): after each stage, query the live
		// provenance database for failures so the scientist can react
		// before the workflow ends.
		cfg.OnStageComplete = func(ev engine.StageEvent) {
			res, err := ev.Engine.DB.Query(
				"SELECT count(*) FROM hactivation WHERE status = 'ABORTED' OR status = 'FAILED'")
			problems := "?"
			if err == nil {
				problems = fmt.Sprintf("%v", res.Rows[0][0])
			}
			fmt.Printf("  [steering] stage %-14s done at +%s: %d activations, %d retries, problem activations so far: %s\n",
				ev.Activity, stats.FormatDuration(ev.Clock), ev.Stats.Activations,
				ev.Stats.Failures, problems)
		}
	}
	switch mode {
	case "ad4":
		cfg.Mode = core.ModeAD4
	case "vina":
		cfg.Mode = core.ModeVina
	case "adaptive":
		cfg.Mode = core.ModeAdaptive
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	switch effort {
	case "smoke":
		cfg.Effort = core.SmokeEffort()
	case "campaign":
		cfg.Effort = core.CampaignEffort()
	case "quick":
		cfg.Effort = core.QuickEffort()
	default:
		return fmt.Errorf("unknown effort %q", effort)
	}
	switch precision {
	case "exact":
		cfg.ScorePrecision = dock.PrecisionExact
	case "tolerance":
		cfg.ScorePrecision = dock.PrecisionTolerance
	default:
		return fmt.Errorf("unknown precision %q", precision)
	}

	fmt.Printf("SciDock %s: %d receptors × %d ligands = %d pairs on %d cores\n",
		cfg.Mode, receptors, ligands, ds.NumPairs(), cores)
	camp, err := core.Run(cfg)
	if err != nil {
		return err
	}

	for _, rep := range camp.Reports {
		fmt.Printf("\nworkflow %d: TET %s, %d activations, %d transient failures recovered, %d aborted\n",
			rep.WorkflowID, stats.FormatDuration(rep.TET), rep.Activations, rep.Failures, rep.Aborted)
		for _, a := range rep.PerActivity {
			fmt.Printf("  %-14s n=%-5d failures=%-3d stage=%s\n",
				a.Tag, a.Activations, a.Failures, stats.FormatDuration(a.StageSecs))
		}
	}
	fmt.Printf("\ncampaign TET: %s   simulated EC2 bill: $%.2f   shared FS: %d bytes\n",
		stats.FormatDuration(camp.TET()), camp.Engine.Cluster.Cost(), camp.Engine.FS.TotalBytes())

	rows, err := core.Table3(camp.Engine.DB, ds.Ligands)
	if err != nil {
		return err
	}
	fmt.Println("\nDocking statistics (Table 3 layout):")
	fmt.Print(core.FormatTable3(rows))
	top, err := core.TopInteractions(camp.Engine.DB, 3)
	if err != nil {
		return err
	}
	if len(top) > 0 {
		fmt.Println("best interactions:")
		for _, t := range top {
			fmt.Println("  " + t)
		}
	}

	if query != "" {
		res, err := camp.Engine.DB.Query(query)
		if err != nil {
			return err
		}
		fmt.Println("\n" + res.Format())
	}
	return nil
}
