// Package loading: a self-contained, source-based loader so scilint
// needs no external driver (golang.org/x/tools is off-limits per repo
// policy). Module-local packages resolve against go.mod; standard
// library packages type-check straight from GOROOT/src. Cgo is
// disabled so every package in the closure is pure Go.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset maps positions; shared across all packages of a load.
	Fset *token.FileSet
	// Files are the parsed sources (with comments), tests included
	// when the load requested them.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds expression types, uses and definitions.
	Info *types.Info
	// TypeErrors collects type-checker complaints (the load keeps
	// going; callers decide whether they are fatal).
	TypeErrors []error
	// GoVersion is the module's go directive (e.g. "go1.22").
	GoVersion string

	insp *inspector
}

// LoadConfig controls a load.
type LoadConfig struct {
	// Dir anchors pattern resolution; it must lie inside the module.
	// Empty means the current directory.
	Dir string
	// IncludeTests adds in-package _test.go files to target packages.
	IncludeTests bool
}

// Load resolves patterns ("./...", "dir/...", relative directories or
// module import paths) to module packages and type-checks each one
// along with its full dependency closure.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.Getwd(); err != nil {
			return nil, err
		}
	}
	modDir, modPath, goVersion, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(modDir, modPath, goVersion)
	ld.includeTests = cfg.IncludeTests

	dirs, err := expandPatterns(dir, modDir, modPath, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := ld.loadDir(d)
		if err != nil {
			if isNoGoError(err) {
				continue
			}
			return nil, fmt.Errorf("lint: %s: %w", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}
	return pkgs, nil
}

func isNoGoError(err error) bool {
	_, ok := err.(*build.NoGoError)
	if ok {
		return true
	}
	return strings.Contains(err.Error(), "no buildable Go source files")
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root, module path and go directive.
func findModule(dir string) (modDir, modPath, goVersion string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			modPath, goVersion = parseGoMod(string(data))
			if modPath == "" {
				return "", "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, modPath, goVersion, nil
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

func parseGoMod(src string) (modPath, goVersion string) {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
		} else if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	return modPath, goVersion
}

// expandPatterns maps CLI patterns to package directories.
func expandPatterns(base, modDir, modPath string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walkGoDirs(modDir, add)
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			if !filepath.IsAbs(root) {
				if strings.HasPrefix(root, modPath) {
					root = filepath.Join(modDir, strings.TrimPrefix(root, modPath))
				} else {
					root = filepath.Join(base, root)
				}
			}
			walkGoDirs(root, add)
		case strings.HasPrefix(pat, modPath+"/") || pat == modPath:
			add(filepath.Join(modDir, strings.TrimPrefix(pat, modPath)))
		case filepath.IsAbs(pat):
			add(filepath.Clean(pat))
		default:
			add(filepath.Join(base, pat))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// walkGoDirs visits every directory under root containing Go files,
// skipping testdata, vendor and hidden/underscore directories exactly
// as the go tool's "..." wildcard does.
func walkGoDirs(root string, add func(string)) {
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			add(filepath.Dir(path))
		}
		return nil
	})
}

// --- loader ----------------------------------------------------------

// loader type-checks packages from source, caching completed packages
// so each import path is checked once per load.
type loader struct {
	fset         *token.FileSet
	ctxt         build.Context
	modDir       string
	modPath      string
	goVersion    string
	includeTests bool

	cache   map[string]*types.Package // completed dependency packages
	loading map[string]bool           // cycle detection
}

func newLoader(modDir, modPath, goVersion string) *loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false // pure-Go closure: cgo files excluded by tags
	return &loader{
		fset:      token.NewFileSet(),
		ctxt:      ctxt,
		modDir:    modDir,
		modPath:   modPath,
		goVersion: goVersion,
		cache:     map[string]*types.Package{},
		loading:   map[string]bool{},
	}
}

// Import implements types.Importer for dependency resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	dir, local, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	if local {
		conf.GoVersion = l.goVersion
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		return nil, err
	}
	// Keep incomplete packages out of the cache so a retry surfaces
	// the same error instead of a confusing downstream one.
	if !pkg.Complete() {
		return pkg, fmt.Errorf("package %q did not type-check cleanly: %v", path, err)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// resolve maps an import path to the directory holding its sources.
func (l *loader) resolve(path string) (dir string, local bool, err error) {
	if path == l.modPath {
		return l.modDir, true, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modDir, rest), true, nil
	}
	// Standard library: first path element has no dot.
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	if !strings.Contains(first, ".") {
		return filepath.Join(l.ctxt.GOROOT, "src", path), false, nil
	}
	return "", false, fmt.Errorf("external dependency %q not supported (module is dependency-free by policy)", path)
}

// parseDir parses a package directory's buildable files. Target
// packages keep comments (for ignore directives) and optionally
// include in-package test files.
func (l *loader) parseDir(dir string, target bool) ([]*ast.File, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	if target && l.includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	mode := parser.SkipObjectResolution
	if target {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importPathFor maps a module directory back to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.modDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, l.modDir)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir type-checks one target package with full syntax and Info.
func (l *loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	return l.check(path, files)
}

// check type-checks already-parsed target files.
func (l *loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg := &Package{
		Path:      path,
		Fset:      l.fset,
		Files:     files,
		Info:      info,
		GoVersion: l.goVersion,
	}
	conf := types.Config{
		Importer:  l,
		GoVersion: l.goVersion,
		Error:     func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	return pkg, nil
}

