// Package sched reproduces SciCumulus' scheduling layer: the weighted
// cost model built from provenance history, the greedy scheduling
// algorithm whose planning overhead grows with the VM count (the
// efficiency-degradation mechanism of Figure 9), and the adaptive
// VM-scaling policy enabled by cloud elasticity.
package sched

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Activity tags of the SciDock workflow, shared between the cost
// model, the engine and the provenance figures. The names match the
// tags visible in Figure 10 of the paper (with the "1k" suffix
// dropped).
const (
	TagBabel    = "babel"
	TagLigPrep  = "autoligand4"
	TagRecPrep  = "autoreceptor4"
	TagGPF      = "autogpf4"
	TagAutoGrid = "autogrid4"
	TagFilter   = "dockfilter"
	TagDockPrep = "configprep"
	TagDockAD4  = "autodock4"
	TagDockVina = "autodockvina"
)

// costEntry calibrates one activity: mean seconds on a reference core
// plus the clamp range, taken from the per-activity statistics the
// paper reports in Figure 10 (the docking means are inferred from the
// total execution times of Figure 7; see EXPERIMENTS.md).
type costEntry struct {
	mean  float64
	sigma float64 // lognormal shape
	min   float64
	max   float64
}

var costTable = map[string]costEntry{
	TagBabel:    {mean: 2.42, sigma: 0.55, min: 0.88, max: 12.6},
	TagLigPrep:  {mean: 27.45, sigma: 0.80, min: 2.0, max: 457.5},
	TagRecPrep:  {mean: 23.12, sigma: 0.75, min: 1.2, max: 122.6},
	TagGPF:      {mean: 19.99, sigma: 0.45, min: 1.5, max: 53.3},
	TagAutoGrid: {mean: 18.48, sigma: 0.60, min: 1.5, max: 163.4},
	TagFilter:   {mean: 1.10, sigma: 0.30, min: 0.2, max: 4.0},
	TagDockPrep: {mean: 42.95, sigma: 0.30, min: 18.7, max: 66.6},
	TagDockAD4:  {mean: 81.60, sigma: 0.70, min: 6.0, max: 640.0},
	TagDockVina: {mean: 27.81, sigma: 0.65, min: 1.9, max: 561.9},
}

// LoopTimeout is the virtual-time budget after which SciCumulus'
// steering aborts an activation stuck in the looping state (§V.C).
const LoopTimeout = 1800.0

// CostModel samples per-activation base costs (seconds on a reference
// core). Deterministic: the same (activity, key) pair always samples
// the same cost, so repeated simulations agree.
type CostModel struct {
	// Scale multiplies every mean; 1.0 reproduces the paper's 10k-pair
	// calibration. Tests use smaller scales.
	Scale float64
}

// NewCostModel returns the paper-calibrated model.
func NewCostModel() *CostModel { return &CostModel{Scale: 1.0} }

// Known reports whether the tag has a calibration entry.
func (c *CostModel) Known(tag string) bool {
	_, ok := costTable[tag]
	return ok
}

// Mean returns the calibrated mean cost of an activity tag (0 for
// unknown tags).
func (c *CostModel) Mean(tag string) float64 {
	e, ok := costTable[tag]
	if !ok {
		return 0
	}
	return e.mean * c.scale()
}

func (c *CostModel) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// Sample draws the base cost of one activation, keyed by a stable
// string (e.g. "autodock4|0E6_2HHN"). The draw is lognormal with the
// calibrated shape, clamped to the observed range.
func (c *CostModel) Sample(tag, key string) float64 {
	e, ok := costTable[tag]
	if !ok {
		return 1.0 * c.scale()
	}
	r := rand.New(rand.NewSource(seedOf(tag + "|" + key)))
	// Lognormal with E[X] = mean: X = mean * exp(σZ - σ²/2).
	z := r.NormFloat64()
	x := e.mean * math.Exp(e.sigma*z-e.sigma*e.sigma/2)
	if x < e.min {
		x = e.min
	}
	if x > e.max {
		x = e.max
	}
	return x * c.scale()
}

// FailureRate is the transient activation failure probability the
// paper observed ("about 10% of activity execution failures").
const FailureRate = 0.10

// Attempts returns the simulated execution attempts of an activation:
// zero or more failed attempts (each consuming a fraction of the base
// cost before the failure is detected) followed by one full-cost
// success. Deterministic per key.
func (c *CostModel) Attempts(tag, key string, cost float64) []float64 {
	r := rand.New(rand.NewSource(seedOf("fail|" + tag + "|" + key)))
	var out []float64
	for r.Float64() < FailureRate {
		// The failure surfaces partway through the execution.
		out = append(out, cost*(0.1+0.8*r.Float64()))
		if len(out) >= 5 { // re-execution cap, as SciCumulus enforces
			break
		}
	}
	return append(out, cost)
}

func seedOf(s string) int64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
