package formats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/chem"
)

// ParseSDF reads the first structure of an SD file (MDL V2000
// connection table), the input format of SciDock's ligands.
func ParseSDF(r io.Reader, name string) (*chem.Molecule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("formats: sdf %q: %w", name, err)
	}
	if len(lines) < 4 {
		return nil, fmt.Errorf("formats: sdf %q: truncated header (%d lines)", name, len(lines))
	}
	title := strings.TrimSpace(lines[0])
	counts := lines[3]
	if len(counts) < 6 {
		return nil, fmt.Errorf("formats: sdf %q: bad counts line %q", name, counts)
	}
	nAtoms, err := strconv.Atoi(strings.TrimSpace(counts[0:3]))
	if err != nil {
		return nil, fmt.Errorf("formats: sdf %q: bad atom count: %w", name, err)
	}
	nBonds, err := strconv.Atoi(strings.TrimSpace(counts[3:6]))
	if err != nil {
		return nil, fmt.Errorf("formats: sdf %q: bad bond count: %w", name, err)
	}
	if len(lines) < 4+nAtoms+nBonds {
		return nil, fmt.Errorf("formats: sdf %q: expected %d atom + %d bond lines, file has %d lines",
			name, nAtoms, nBonds, len(lines))
	}
	m := &chem.Molecule{Name: name}
	if m.Name == "" {
		m.Name = title
	}
	for i := 0; i < nAtoms; i++ {
		ln := lines[4+i]
		if len(ln) < 34 {
			return nil, fmt.Errorf("formats: sdf %q: atom line %d too short", name, i+1)
		}
		x, err1 := strconv.ParseFloat(strings.TrimSpace(ln[0:10]), 64)
		y, err2 := strconv.ParseFloat(strings.TrimSpace(ln[10:20]), 64)
		z, err3 := strconv.ParseFloat(strings.TrimSpace(ln[20:30]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("formats: sdf %q: bad coordinates on atom line %d", name, i+1)
		}
		sym := strings.TrimSpace(ln[31:34])
		m.Atoms = append(m.Atoms, chem.Atom{
			Serial:  i + 1,
			Name:    fmt.Sprintf("%s%d", sym, i+1),
			Element: chem.Element(sym).Normalize(),
			Pos:     chem.V(x, y, z),
			HetAtm:  true,
		})
	}
	for i := 0; i < nBonds; i++ {
		ln := lines[4+nAtoms+i]
		if len(ln) < 9 {
			return nil, fmt.Errorf("formats: sdf %q: bond line %d too short", name, i+1)
		}
		a, err1 := strconv.Atoi(strings.TrimSpace(ln[0:3]))
		b, err2 := strconv.Atoi(strings.TrimSpace(ln[3:6]))
		o, err3 := strconv.Atoi(strings.TrimSpace(ln[6:9]))
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("formats: sdf %q: bad bond line %d", name, i+1)
		}
		if a < 1 || a > nAtoms || b < 1 || b > nAtoms {
			return nil, fmt.Errorf("formats: sdf %q: bond line %d references atom out of range", name, i+1)
		}
		m.Bonds = append(m.Bonds, chem.Bond{A: a - 1, B: b - 1, Order: chem.BondOrder(o)})
	}
	return m, m.Validate()
}

// WriteSDF emits a V2000 SD file for the molecule, ending with $$$$.
func WriteSDF(w io.Writer, m *chem.Molecule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", m.Name)
	fmt.Fprintln(bw, "  SciDock-Go  3D")
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "%3d%3d  0  0  0  0  0  0  0  0999 V2000\n", len(m.Atoms), len(m.Bonds))
	for _, a := range m.Atoms {
		fmt.Fprintf(bw, "%10.4f%10.4f%10.4f %-3s 0  0  0  0  0  0  0  0  0  0  0  0\n",
			a.Pos.X, a.Pos.Y, a.Pos.Z, string(a.Element))
	}
	for _, b := range m.Bonds {
		fmt.Fprintf(bw, "%3d%3d%3d  0  0  0  0\n", b.A+1, b.B+1, int(b.Order))
	}
	fmt.Fprintln(bw, "M  END")
	fmt.Fprintln(bw, "$$$$")
	return bw.Flush()
}
