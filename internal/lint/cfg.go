// Control-flow graphs for the flow-sensitive analyzers. BuildCFG
// lowers one function body to basic blocks connected by branch, loop,
// switch, select, goto and panic edges; the dataflow engine
// (dataflow.go) then runs fixpoint analyses over the graph. The
// builder is purely syntactic — a caller-supplied predicate classifies
// terminating calls (os.Exit, log.Fatal, ...) so the builder itself
// needs no type information.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks in creation order; Blocks[0] is Entry.
	Blocks []*Block
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the synthetic block every return, terminating call and
	// fall-off-the-end path flows into. It holds no nodes.
	Exit *Block
	// FallsOff is the block that flows off the closing brace without a
	// return (nil when the body ends in return/panic on every path).
	FallsOff *Block
	// Defers lists every defer statement in the body in syntactic
	// order, function literals included at their defer site.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal run of straight-line nodes.
// Nodes holds simple statements (assignments, calls, returns, ...) and
// the control expressions evaluated in this block (if/for conditions,
// switch tags, range operands) in execution order.
type Block struct {
	Index int
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// cfgLabel tracks one declared label and the branch targets of the
// statement it labels.
type cfgLabel struct {
	start     *Block // goto target
	breakB    *Block // break <label> target (loops, switch, select)
	continueB *Block // continue <label> target (loops only)
}

type cfgBuilder struct {
	g        *CFG
	cur      *Block // nil after a terminator until the next block opens
	breakTo  *Block
	contTo   *Block
	fallTo   *Block // next case-clause body, inside a switch clause
	labels   map[string]*cfgLabel
	gotos    []pendingGoto
	curLabel *cfgLabel // label awaiting its loop/switch targets
	term     func(*ast.CallExpr) bool
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG lowers body to a CFG. termCall, when non-nil, reports
// whether a call expression never returns; the builtin panic is always
// recognized.
func BuildCFG(body *ast.BlockStmt, termCall func(*ast.CallExpr) bool) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: map[string]*cfgLabel{},
		term:   termCall,
	}
	entry := b.block("entry")
	exit := &Block{Kind: "exit"}
	b.g.Entry, b.g.Exit = entry, exit
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.g.FallsOff = b.cur
		b.edge(b.cur, exit)
	}
	// Patch forward gotos to labels declared later in the body.
	for _, pg := range b.gotos {
		if l := b.labels[pg.label]; l != nil && l.start != nil {
			b.edge(pg.from, l.start)
		}
	}
	exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, exit)
	return b.g
}

func (b *cfgBuilder) block(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, opening an unreachable
// block when control cannot reach here (code after return/panic).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.block("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to)
	}
	b.cur = nil
}

// open starts a new block reachable from the current one.
func (b *cfgBuilder) open(kind string) *Block {
	blk := b.block(kind)
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label (set by LabeledStmt) so the
// labeled loop/switch can register its break/continue targets.
func (b *cfgBuilder) takeLabel() *cfgLabel {
	l := b.curLabel
	b.curLabel = nil
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.block("if.join")
		then := b.block("if.then")
		b.edge(cond, then)
		var elseB *Block
		if s.Else != nil {
			elseB = b.block("if.else")
			b.edge(cond, elseB)
		} else {
			b.edge(cond, join)
		}
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(join)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.jump(join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.open("for.head")
		if s.Cond != nil {
			b.add(s.Cond)
		}
		exit := b.block("for.exit")
		body := b.block("for.body")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit)
		}
		contTarget := head
		var post *Block
		if s.Post != nil {
			post = b.block("for.post")
			contTarget = post
		}
		if label != nil {
			label.breakB, label.continueB = exit, contTarget
		}
		savedB, savedC := b.breakTo, b.contTo
		b.breakTo, b.contTo = exit, contTarget
		b.cur = body
		b.stmtList(s.Body.List)
		b.breakTo, b.contTo = savedB, savedC
		if post != nil {
			b.jump(post)
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.open("range.head")
		b.add(s.X)
		exit := b.block("range.exit")
		body := b.block("range.body")
		b.edge(head, body)
		b.edge(head, exit)
		if label != nil {
			label.breakB, label.continueB = exit, head
		}
		savedB, savedC := b.breakTo, b.contTo
		b.breakTo, b.contTo = exit, head
		b.cur = body
		b.stmtList(s.Body.List)
		b.breakTo, b.contTo = savedB, savedC
		b.jump(head)
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, "case")

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, "typecase")

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.open("select.head")
		exit := b.block("select.exit")
		if label != nil {
			label.breakB = exit
		}
		savedB := b.breakTo
		b.breakTo = exit
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.block(kind)
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(exit)
		}
		b.breakTo = savedB
		// select{} with no clauses blocks forever: exit unreachable.
		b.cur = exit

	case *ast.LabeledStmt:
		start := b.open("label." + s.Label.Name)
		l := &cfgLabel{start: start}
		b.labels[s.Label.Name] = l
		b.curLabel = l
		b.stmt(s.Stmt)
		b.curLabel = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			target := b.breakTo
			if s.Label != nil {
				if l := b.labels[s.Label.Name]; l != nil {
					target = l.breakB
				}
			}
			b.jump(target)
		case token.CONTINUE:
			target := b.contTo
			if s.Label != nil {
				if l := b.labels[s.Label.Name]; l != nil {
					target = l.continueB
				}
			}
			b.jump(target)
		case token.GOTO:
			if s.Label != nil {
				if l := b.labels[s.Label.Name]; l != nil && l.start != nil {
					b.jump(l.start)
				} else {
					from := b.cur
					if from != nil {
						b.gotos = append(b.gotos, pendingGoto{from: from, label: s.Label.Name})
					}
					b.cur = nil
				}
			}
		case token.FALLTHROUGH:
			b.jump(b.fallTo)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.terminating(call) {
			b.jump(b.g.Exit)
		}

	case *ast.EmptyStmt:
		// no node

	default:
		// AssignStmt, IncDecStmt, SendStmt, GoStmt, DeclStmt, ...
		b.add(s)
	}
}

// switchClauses lowers the shared clause structure of expression and
// type switches: every clause body is a successor of the head block,
// fallthrough chains to the next body, and a missing default adds a
// head->exit edge.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label *cfgLabel, kind string) {
	head := b.cur
	if head == nil {
		head = b.block("unreachable")
		b.cur = head
	}
	exit := b.block("switch.exit")
	if label != nil {
		label.breakB = exit
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		k := kind
		if cc.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		bodies[i] = b.block(k)
		b.edge(head, bodies[i])
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	savedB, savedF := b.breakTo, b.fallTo
	b.breakTo = exit
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.fallTo = nil
		if i+1 < len(bodies) {
			b.fallTo = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.jump(exit)
	}
	b.breakTo, b.fallTo = savedB, savedF
	b.cur = exit
}

func (b *cfgBuilder) terminating(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.term != nil && b.term(call)
}

// --- traversal helpers ------------------------------------------------

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the canonical iteration order for forward dataflow.
func (g *CFG) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks)+1)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dump renders the graph as one line per block for golden tests:
//
//	b0 entry: [x := 0; x < n] -> b1 b2
func (g *CFG) Dump() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", b.Index, b.Kind)
		if len(b.Nodes) > 0 {
			parts := make([]string, len(b.Nodes))
			for i, n := range b.Nodes {
				parts[i] = nodeString(n)
			}
			fmt.Fprintf(&sb, " [%s]", strings.Join(parts, "; "))
		}
		if len(b.Succs) > 0 {
			succs := make([]int, len(b.Succs))
			for i, s := range b.Succs {
				succs[i] = s.Index
			}
			sort.Ints(succs)
			sb.WriteString(" ->")
			for _, s := range succs {
				fmt.Fprintf(&sb, " b%d", s)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nodeString renders one node compactly on a single line.
func nodeString(n ast.Node) string {
	var buf strings.Builder
	printer.Fprint(&buf, token.NewFileSet(), n)
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
