package dock

import "repro/internal/chem"

// Batch is a structure-of-arrays pose coordinate buffer: the
// materialized coordinates of up to capPoses candidate poses stored as
// three contiguous component slices (xs/ys/zs) with one ligand-sized
// stride per pose. Scoring a batch walks the receptor side of the loop
// nest once — each CSR neighbor span and each radial-table segment is
// loaded once per batch instead of once per pose — which is where the
// batched engines get their cache locality (DESIGN.md §4 "Batched
// scoring and SoA layout").
//
// A Batch is NOT safe for concurrent use; like Workspace, each search
// worker owns its own. Appending beyond the high-water mark grows the
// component slices; once warm, Reset/Append cycles allocate nothing.
type Batch struct {
	lig        *Ligand
	stride     int
	n          int
	xs, ys, zs []float64
	scratch    []chem.Vec3 // per-pose AoS staging for CoordsIntoBatch
	acc        []float64   // scorer per-pose accumulator scratch
	hits       []Hit       // scorer hit gather scratch
}

// Hit is one in-cutoff candidate of a batched scoring query: its
// squared distance and its radial-table class, packed to 16 bytes so
// the gather loop's two stores land on one cache line slot and the
// evaluation loop's reload is a single indexed access.
type Hit struct {
	R2  float64
	Cls int32
	_   int32
}

// NewBatch builds a batch for the ligand with initial capacity for
// capPoses poses (it grows beyond that on demand).
func NewBatch(lig *Ligand, capPoses int) *Batch {
	if capPoses < 0 {
		capPoses = 0
	}
	stride := lig.Mol.NumAtoms()
	return &Batch{
		lig:     lig,
		stride:  stride,
		xs:      make([]float64, 0, capPoses*stride),
		ys:      make([]float64, 0, capPoses*stride),
		zs:      make([]float64, 0, capPoses*stride),
		scratch: make([]chem.Vec3, 0, stride),
	}
}

// Ligand returns the conformational model the batch serves.
func (b *Batch) Ligand() *Ligand { return b.lig }

// Len returns the number of poses currently in the batch.
func (b *Batch) Len() int { return b.n }

// Stride returns the per-pose atom stride: pose p's atom i lives at
// index p*Stride()+i of each component slice.
func (b *Batch) Stride() int { return b.stride }

// Reset empties the batch, keeping its storage.
func (b *Batch) Reset() { b.n = 0 }

// SoA returns the three component slices, each Len()*Stride() long.
// They alias the batch storage and are overwritten by Reset/Append.
func (b *Batch) SoA() (xs, ys, zs []float64) {
	n := b.n * b.stride
	return b.xs[:n], b.ys[:n], b.zs[:n]
}

// At returns pose p's atom i coordinates (test and debugging helper;
// the scoring kernels read the component slices directly).
func (b *Batch) At(p, i int) chem.Vec3 {
	at := p*b.stride + i
	return chem.V(b.xs[at], b.ys[at], b.zs[at])
}

// Append materializes the pose's coordinates into the next batch slot
// and returns the slot index. The floating-point operation sequence is
// exactly Ligand.CoordsInto's, so a batched score of slot p is
// bit-identical to scoring ws.Coords(pose) for the same pose.
func (b *Batch) Append(p Pose) int {
	slot := b.n
	at := slot * b.stride
	need := at + b.stride
	if cap(b.xs) >= need {
		b.xs, b.ys, b.zs = b.xs[:need], b.ys[:need], b.zs[:need]
	} else {
		b.xs = append(b.xs[:cap(b.xs)], make([]float64, need-cap(b.xs))...)
		b.ys = append(b.ys[:cap(b.ys)], make([]float64, need-cap(b.ys))...)
		b.zs = append(b.zs[:cap(b.zs)], make([]float64, need-cap(b.zs))...)
	}
	b.scratch = b.lig.CoordsIntoBatch(p, b.xs[at:need:need], b.ys[at:need:need], b.zs[at:need:need], b.scratch)
	b.n++
	return slot
}

// Scratch returns a zeroed float64 accumulator of length n, reused
// across calls. It is scorer scratch: ScoreBatch implementations use
// it for per-pose partial sums, so callers must not pass a slice that
// aliases it as the output buffer.
func (b *Batch) Scratch(n int) []float64 {
	if cap(b.acc) < n {
		b.acc = make([]float64, n)
	}
	b.acc = b.acc[:n]
	for i := range b.acc {
		b.acc[i] = 0
	}
	return b.acc
}

// Hits returns a gather buffer of power-of-two length ≥ n, reused
// across calls — scratch for scorers that collect the in-cutoff hits
// of one query with unconditional stores and a conditionally advanced
// cursor, then evaluate the radial tables over the compact hit list in
// order. The power-of-two length lets the store loop index with
// cursor&(len-1), which the compiler proves in-bounds, removing the
// bounds check from the hot store. Contents are not zeroed.
func (b *Batch) Hits(n int) []Hit {
	if cap(b.hits) < n {
		p2 := 1
		for p2 < n {
			p2 <<= 1
		}
		b.hits = make([]Hit, p2)
	}
	return b.hits[:cap(b.hits)]
}

// CoordsIntoBatch is CoordsInto writing the materialized coordinates
// component-wise into xs/ys/zs (each len l.Mol.NumAtoms()), staging
// the torsion application in scratch (grown as needed and returned for
// reuse). Every floating-point operation matches CoordsInto exactly —
// the SoA store happens after the final rotate-and-translate — so the
// component values are bit-identical to the AoS path.
func (l *Ligand) CoordsIntoBatch(p Pose, xs, ys, zs []float64, scratch []chem.Vec3) []chem.Vec3 {
	coords := l.CoordsInto(p, scratch)
	for i, v := range coords {
		xs[i] = v.X
		ys[i] = v.Y
		zs[i] = v.Z
	}
	return coords
}
