package chem

import (
	"math"
	"math/rand"
	"testing"
)

// butaneLike: C0-C1-C2-C3 chain with one central rotatable bond
// (terminal C-C bonds have a terminal heavy side but carry only the
// end carbon; the central bond C1-C2 is the classic rotor).
func butaneLike() *Molecule {
	m := &Molecule{Name: "BUT"}
	m.Atoms = []Atom{
		{Name: "C0", Element: Carbon, Pos: V(0, 1, 0)},
		{Name: "C1", Element: Carbon, Pos: V(0, 0, 0)},
		{Name: "C2", Element: Carbon, Pos: V(1.5, 0, 0)},
		{Name: "C3", Element: Carbon, Pos: V(1.5, -1, 0)},
	}
	m.Bonds = []Bond{
		{A: 0, B: 1, Order: Single},
		{A: 1, B: 2, Order: Single},
		{A: 2, B: 3, Order: Single},
	}
	return m
}

func TestTorsionTreeButane(t *testing.T) {
	m := butaneLike()
	tree, err := BuildTorsionTree(m)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumTorsions() != 1 {
		t.Fatalf("butane torsions = %d, want 1", tree.NumTorsions())
	}
	tor := tree.Torsions[0]
	if bondKey(tor.Axis1, tor.Axis2) != bondKey(1, 2) {
		t.Errorf("rotatable bond = %d-%d, want 1-2", tor.Axis1, tor.Axis2)
	}
}

func TestTorsionApplicationChangesDihedral(t *testing.T) {
	m := butaneLike()
	tree, err := BuildTorsionTree(m)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Positions()
	before := Dihedral(base[0], base[1], base[2], base[3])
	rot := tree.ApplyTorsions(base, []float64{math.Pi / 3})
	after := Dihedral(rot[0], rot[1], rot[2], rot[3])
	delta := math.Abs(after - before)
	if delta > math.Pi {
		delta = 2*math.Pi - delta
	}
	if !approx(delta, math.Pi/3, 1e-9) {
		t.Errorf("dihedral change = %v, want pi/3", delta)
	}
	// Bond lengths are preserved.
	for _, b := range m.Bonds {
		d0 := base[b.A].Dist(base[b.B])
		d1 := rot[b.A].Dist(rot[b.B])
		if !approx(d0, d1, 1e-9) {
			t.Errorf("bond %d-%d length changed %v -> %v", b.A, b.B, d0, d1)
		}
	}
}

func TestTorsionZeroAngleIsIdentity(t *testing.T) {
	m := butaneLike()
	tree, _ := BuildTorsionTree(m)
	base := m.Positions()
	out := tree.ApplyTorsions(base, []float64{0})
	for i := range base {
		if !vecApprox(out[i], base[i], eps) {
			t.Fatalf("atom %d moved under zero torsion", i)
		}
	}
}

// Property: applying θ then -θ restores coordinates.
func TestTorsionReversibilityProperty(t *testing.T) {
	m := butaneLike()
	tree, _ := BuildTorsionTree(m)
	base := m.Positions()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		theta := r.Float64()*2*math.Pi - math.Pi
		fwd := tree.ApplyTorsions(base, []float64{theta})
		back := tree.ApplyTorsions(fwd, []float64{-theta})
		for j := range base {
			if !vecApprox(back[j], base[j], 1e-9) {
				t.Fatalf("iteration %d: atom %d not restored (θ=%v)", i, j, theta)
			}
		}
	}
}

func TestAromaticRingNotRotatable(t *testing.T) {
	// Phenol-like: benzene ring + OH; the C-O bond has only H beyond
	// O, so even that is frozen; ring bonds are never rotatable.
	m := &Molecule{Name: "PHE"}
	for i := 0; i < 6; i++ {
		ang := float64(i) * math.Pi / 3
		m.Atoms = append(m.Atoms, Atom{Element: Carbon, Pos: V(math.Cos(ang)*1.4, math.Sin(ang)*1.4, 0)})
	}
	m.Atoms = append(m.Atoms, Atom{Element: Oxygen, Pos: V(2.8, 0, 0)})
	m.Atoms = append(m.Atoms, Atom{Element: Hydrogen, Pos: V(3.3, 0.8, 0)})
	for i := 0; i < 6; i++ {
		m.Bonds = append(m.Bonds, Bond{A: i, B: (i + 1) % 6, Order: Aromatic})
	}
	m.Bonds = append(m.Bonds, Bond{A: 0, B: 6, Order: Single})
	m.Bonds = append(m.Bonds, Bond{A: 6, B: 7, Order: Single})
	tree, err := BuildTorsionTree(m)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumTorsions() != 0 {
		t.Errorf("phenol torsions = %d, want 0", tree.NumTorsions())
	}
}

func TestAmideNotRotatable(t *testing.T) {
	// N-methylacetamide backbone: C0-C1(=O2)-N3-C4
	m := &Molecule{Name: "NMA"}
	m.Atoms = []Atom{
		{Element: Carbon, Pos: V(-1.5, 0, 0)},
		{Element: Carbon, Pos: V(0, 0, 0)},
		{Element: Oxygen, Pos: V(0.6, 1.1, 0)},
		{Element: Nitrogen, Pos: V(0.7, -1.2, 0)},
		{Element: Carbon, Pos: V(2.1, -1.3, 0)},
	}
	m.Bonds = []Bond{
		{A: 0, B: 1, Order: Single},
		{A: 1, B: 2, Order: Double},
		{A: 1, B: 3, Order: Single}, // the amide bond
		{A: 3, B: 4, Order: Single},
	}
	tree, err := BuildTorsionTree(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, tor := range tree.Torsions {
		if bondKey(tor.Axis1, tor.Axis2) == bondKey(1, 3) {
			t.Error("amide C-N bond must not be rotatable")
		}
	}
}

func TestTorsionTreeDeterministic(t *testing.T) {
	m := butaneLike()
	t1, _ := BuildTorsionTree(m)
	t2, _ := BuildTorsionTree(m)
	if t1.Root != t2.Root || len(t1.Torsions) != len(t2.Torsions) {
		t.Fatal("torsion tree not deterministic")
	}
	for i := range t1.Torsions {
		if t1.Torsions[i].Axis1 != t2.Torsions[i].Axis1 ||
			t1.Torsions[i].Axis2 != t2.Torsions[i].Axis2 {
			t.Fatal("torsion order not deterministic")
		}
	}
}

func TestBuildTorsionTreeEmpty(t *testing.T) {
	if _, err := BuildTorsionTree(&Molecule{Name: "E"}); err == nil {
		t.Error("empty molecule should error")
	}
}

func TestApplyTorsionsPanicsOnBadAngles(t *testing.T) {
	m := butaneLike()
	tree, _ := BuildTorsionTree(m)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong angle count")
		}
	}()
	tree.ApplyTorsions(m.Positions(), []float64{0, 0, 0})
}
