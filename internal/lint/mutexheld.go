package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexHeld guards the engine's critical sections. The engine, mpj
// and prov layers all serialize on small mutexes while thousands of
// goroutine activations run; a blocking operation inside a held
// region turns a nanosecond critical section into a convoy (or a
// deadlock when the blocked operation needs the same lock), and a
// lock value copied by value silently forks the lock. Findings:
//
//   - error: a sync.Mutex/RWMutex received, copied or ranged by value;
//   - error: a Lock()/RLock() with no matching Unlock on any path in
//     the function (and no deferred unlock);
//   - warn: a blocking operation — channel send/receive, select
//     without default, range over a channel, time.Sleep,
//     sync.WaitGroup.Wait, or re-locking the same mutex — while the
//     lock is held. sync.Cond.Wait is exempt: it unlocks atomically
//     and must be called with the lock held.
var MutexHeld = &Analyzer{
	Name:     "mutexheld",
	Doc:      "flags locks copied by value, Lock without Unlock, and blocking calls in held critical sections",
	Severity: Warn,
	Run:      runMutexHeld,
}

func runMutexHeld(pass *Pass) {
	pass.Inspect(func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, f := range n.Recv.List {
					checkByValue(pass, f, "receiver")
				}
			}
			checkParamsByValue(pass, n.Type)
		case *ast.FuncLit:
			checkParamsByValue(pass, n.Type)
		case *ast.RangeStmt:
			if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" {
				if t := pass.TypeOf(v); t != nil && !isPointer(t) && containsLocker(t) {
					pass.ReportSevf(Error, v.Pos(),
						"range copies lock: %s contains a sync mutex; range over indices or pointers instead", t)
				}
			}
		case *ast.AssignStmt:
			checkAssignCopiesLock(pass, n)
		case *ast.BlockStmt:
			checkLockRegions(pass, n.List, enclosingFunc(stack))
		case *ast.CaseClause:
			checkLockRegions(pass, n.Body, enclosingFunc(stack))
		case *ast.CommClause:
			checkLockRegions(pass, n.Body, enclosingFunc(stack))
		}
	})
}

func isPointer(t types.Type) bool {
	_, ok := t.(*types.Pointer)
	return ok
}

func checkParamsByValue(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, f := range ft.Params.List {
		checkByValue(pass, f, "parameter")
	}
}

func checkByValue(pass *Pass, field *ast.Field, what string) {
	t := pass.TypeOf(field.Type)
	if t == nil || isPointer(t) || !containsLocker(t) {
		return
	}
	pass.ReportSevf(Error, field.Pos(),
		"%s passes lock by value: %s contains a sync mutex; use a pointer", what, t)
}

// checkAssignCopiesLock flags x := y / x = *p where the copied value
// carries a mutex. Composite literals and calls construct fresh
// values and are fine.
func checkAssignCopiesLock(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		t := pass.TypeOf(rhs)
		if t == nil || isPointer(t) || !containsLocker(t) {
			continue
		}
		pass.ReportSevf(Error, as.Pos(),
			"assignment copies lock value: %s contains a sync mutex", t)
	}
}

func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// lockOp describes one mutex method call site.
type lockOp struct {
	key     string // receiver expression, e.g. "e.mu"
	read    bool   // RLock/RUnlock
	acquire bool   // Lock/RLock vs Unlock/RUnlock
}

// mutexCall decodes a call expression into a lockOp when it is a
// sync.Mutex/RWMutex (un)lock.
func mutexCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = lockOp{acquire: true}
	case "RLock":
		op = lockOp{acquire: true, read: true}
	case "Unlock":
		op = lockOp{}
	case "RUnlock":
		op = lockOp{read: true}
	default:
		return lockOp{}, false
	}
	if !isSyncLocker(pass.TypeOf(sel.X)) {
		return lockOp{}, false
	}
	op.key = types.ExprString(sel.X)
	return op, true
}

// stmtMutexCall matches `x.Lock()`-shaped expression statements.
func stmtMutexCall(pass *Pass, s ast.Stmt) (lockOp, *ast.CallExpr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return lockOp{}, nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return lockOp{}, nil, false
	}
	op, ok := mutexCall(pass, call)
	return op, call, ok
}

// checkLockRegions scans one statement list for Lock...Unlock pairs
// and inspects the held region between them.
func checkLockRegions(pass *Pass, list []ast.Stmt, fn ast.Node) {
	for i, s := range list {
		op, call, ok := stmtMutexCall(pass, s)
		if !ok || !op.acquire {
			continue
		}
		deferred := false
		if i+1 < len(list) {
			if ds, ok := list[i+1].(*ast.DeferStmt); ok {
				if dop, ok := mutexCall(pass, ds.Call); ok && !dop.acquire &&
					dop.key == op.key && dop.read == op.read {
					deferred = true
				}
			}
		}
		region := list[i+1:]
		if !deferred {
			end := -1
			for j := i + 1; j < len(list); j++ {
				if uop, _, ok := stmtMutexCall(pass, list[j]); ok && !uop.acquire &&
					uop.key == op.key && uop.read == op.read {
					end = j
					break
				}
			}
			if end >= 0 {
				region = list[i+1 : end]
			} else if !unlocksSomewhere(pass, fn, op) {
				pass.ReportSevf(Error, call.Pos(),
					"%s.%s with no matching unlock on any path in this function", op.key, lockName(op))
				continue
			}
		}
		checkHeldRegion(pass, region, op)
	}
}

func lockName(op lockOp) string {
	if op.read {
		return "RLock()"
	}
	return "Lock()"
}

// unlocksSomewhere reports whether the function releases op anywhere
// (deferred or conditional); used to avoid false "no unlock" reports
// when the release lives on another path.
func unlocksSomewhere(pass *Pass, fn ast.Node, op lockOp) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if uop, ok := mutexCall(pass, call); ok && !uop.acquire &&
				uop.key == op.key && uop.read == op.read {
				found = true
			}
		}
		return true
	})
	return found
}

// checkHeldRegion flags blocking operations between a lock and its
// release. Function literals inside the region run later (or on other
// goroutines) and are skipped.
func checkHeldRegion(pass *Pass, region []ast.Stmt, op lockOp) {
	for _, s := range region {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send while %s is held; shrink the critical section", op.key)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive while %s is held; shrink the critical section", op.key)
				}
			case *ast.SelectStmt:
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						return true // has default: non-blocking
					}
				}
				pass.Reportf(n.Pos(), "blocking select while %s is held; shrink the critical section", op.key)
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel while %s is held; shrink the critical section", op.key)
					}
				}
			case *ast.CallExpr:
				checkBlockingCall(pass, n, op)
			}
			return true
		})
	}
}

func checkBlockingCall(pass *Pass, call *ast.CallExpr, op lockOp) {
	if cop, ok := mutexCall(pass, call); ok && cop.acquire && cop.key == op.key {
		pass.Reportf(call.Pos(), "%s re-locked while already held: self-deadlock", op.key)
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok &&
			pn.Imported().Path() == "time" && sel.Sel.Name == "Sleep" {
			pass.Reportf(call.Pos(), "time.Sleep while %s is held; sleep outside the critical section", op.key)
			return
		}
	}
	if sel.Sel.Name == "Wait" {
		if path, name, ok := namedFrom(pass.TypeOf(sel.X)); ok &&
			path == "sync" && name == "WaitGroup" {
			pass.Reportf(call.Pos(), "WaitGroup.Wait while %s is held; waiters that need the lock deadlock", op.key)
		}
	}
}
