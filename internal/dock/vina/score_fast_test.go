package vina

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/dock"
)

// TestVinaFastPathBound pins the published envelope of the fast path
// at 2× headroom: over randomized poses (including clashed ones) on
// two receptor/ligand pairs, |ScoreBatchFast − Score| stays within
// HALF of FastAbsTol + FastRelTol·|Score|. The tolerance screens in
// the search assume the full envelope; measuring at half keeps an
// excursion margin between what we observe and what we rely on.
func TestVinaFastPathBound(t *testing.T) {
	for _, pair := range [][2]string{{"2HHN", "0E6"}, {"1S4V", "042"}} {
		rec, lig := setupPair(t, pair[0], pair[1])
		s, err := NewScorer(rec, lig)
		if err != nil {
			t.Fatal(err)
		}
		ws := dock.NewWorkspace(lig)
		poses := randomPoses(lig, 200, 23)
		b := ws.Batch()
		b.Reset()
		for _, p := range poses {
			b.Append(p)
		}
		fast := ws.Floats(len(poses))
		s.ScoreBatchFast(b, fast)
		worst := 0.0
		for k, p := range poses {
			exact := s.Score(ws.Coords(p))
			envelope := 0.5 * FastMargin(exact)
			err := math.Abs(fast[k] - exact)
			if r := err / envelope; r > worst {
				worst = r
			}
			if err > envelope {
				t.Errorf("%s/%s pose %d: |fast-exact| = |%.9g - %.9g| = %.3g beyond half-envelope %.3g",
					pair[0], pair[1], k, fast[k], exact, err, envelope)
			}
		}
		t.Logf("%s/%s: worst |fast-exact| at %.2f%% of the half-envelope", pair[0], pair[1], worst*100)
	}
}

// TestVinaFastPathBatchInvariant pins that a pose's fast value is a
// pure function of the pose: scoring the same poses through batch
// windows of different sizes, and through the single-pose ScoreFast1,
// yields bit-identical values (==, no epsilon). The search depends on
// this — its batched screens and its per-pose fallback screens must
// agree exactly for trajectories to be reproducible across MaxBatch.
func TestVinaFastPathBatchInvariant(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	ws := dock.NewWorkspace(lig)
	poses := randomPoses(lig, 64, 41)
	ref := make([]float64, len(poses))
	b := ws.Batch()
	for k, p := range poses {
		ref[k] = s.ScoreFast1(b, p)
	}
	for _, window := range []int{1, 7, 64} {
		for base := 0; base < len(poses); base += window {
			end := base + window
			if end > len(poses) {
				end = len(poses)
			}
			b.Reset()
			for _, p := range poses[base:end] {
				b.Append(p)
			}
			out := ws.Floats(end - base)
			s.ScoreBatchFast(b, out)
			for k, v := range out {
				if v != ref[base+k] {
					t.Fatalf("window %d slot %d: %.17g != ScoreFast1 %.17g",
						window, base+k, v, ref[base+k])
				}
			}
		}
	}
}

// TestVinaFastPathZeroAllocs pins the steady-state allocation contract
// of the fast loop, including the single-pose screen: once warm,
// refill + ScoreBatchFast + a ScoreFast1 call allocate nothing. This
// also pins that ScoreFast1's one-element output array stays on the
// stack.
func TestVinaFastPathZeroAllocs(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	ws := dock.NewWorkspace(lig)
	poses := randomPoses(lig, 50, 7)
	b := ws.Batch()
	out := ws.Floats(len(poses))
	run := func() {
		b.Reset()
		for _, p := range poses {
			b.Append(p)
		}
		s.ScoreBatchFast(b, out)
		s.ScoreFast1(b, poses[0])
	}
	run() // warm the buffers (and the lazy fast state) to the high-water mark
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("steady-state fast loop allocates %.1f/op, want 0", allocs)
	}
}

// TestVinaFastPathConcurrent exercises the lazy sync.Once build under
// -race: many goroutines make their FIRST fast calls on a shared
// scorer concurrently, each with its own workspace, and all must see
// the same values.
func TestVinaFastPathConcurrent(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	poses := randomPoses(lig, 16, 5)
	want := make([]float64, len(poses))
	{
		probe, _ := NewScorer(rec, lig)
		ws := dock.NewWorkspace(lig)
		b := ws.Batch()
		for k, p := range poses {
			want[k] = probe.ScoreFast1(b, p)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := dock.NewWorkspace(lig)
			b := ws.Batch()
			b.Reset()
			for _, p := range poses {
				b.Append(p)
			}
			out := ws.Floats(len(poses))
			s.ScoreBatchFast(b, out)
			for k, v := range out {
				if v != want[k] {
					t.Errorf("slot %d: concurrent %.17g != sequential %.17g", k, v, want[k])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkScoreBatchFast50 measures the fast path at the search's
// window size; compare with BenchmarkScoreBatch50 for the per-pose
// speedup the tolerance mode buys.
func BenchmarkScoreBatchFast50(bm *testing.B) {
	rec, lig := setupPair(bm, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		bm.Fatal(err)
	}
	ws := dock.NewWorkspace(lig)
	poses := randomPoses(lig, 50, 7)
	b := ws.Batch()
	out := ws.Floats(len(poses))
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		b.Reset()
		for _, p := range poses {
			b.Append(p)
		}
		s.ScoreBatchFast(b, out)
	}
}

// TestDockPrecisionTolerance is the golden pin of tolerance mode: the
// full Dock output under dock.PrecisionTolerance is byte-identical to
// exact mode at EVERY MaxBatch value, including the per-pose reference
// path. The fast screen only rejects candidates that provably cannot
// beat the incumbent, and every survivor is re-scored exactly, so the
// Metropolis trajectory — and therefore every pose, energy and mode
// ordering in the result — is the same; tolerance mode differs only
// in how many cycles the rejected candidates cost.
func TestDockPrecisionTolerance(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(19)
	cfg.Exhaustiveness = 4
	var want string
	for _, maxBatch := range []int{-1, 0, 1, 2, 7, 64} {
		exact := &Engine{Config: cfg, StepsPerRestart: 6, Workers: 1, MaxBatch: maxBatch}
		res, err := exact.Dock(s, lig)
		if err != nil {
			t.Fatalf("exact maxBatch=%d: %v", maxBatch, err)
		}
		got := fmt.Sprintf("%+v", res)
		if maxBatch == -1 {
			want = got
		} else if got != want {
			t.Fatalf("exact maxBatch=%d differs from sequential reference", maxBatch)
		}
		tol := &Engine{Config: cfg, StepsPerRestart: 6, Workers: 1, MaxBatch: maxBatch,
			Precision: dock.PrecisionTolerance}
		tres, err := tol.Dock(s, lig)
		if err != nil {
			t.Fatalf("tolerance maxBatch=%d: %v", maxBatch, err)
		}
		if tgot := fmt.Sprintf("%+v", tres); tgot != want {
			t.Fatalf("tolerance maxBatch=%d result differs from exact:\n%s\nvs\n%s",
				maxBatch, tgot, want)
		}
	}
}
