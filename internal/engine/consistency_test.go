package engine

import (
	"sort"
	"testing"

	"repro/internal/prov"
	"repro/internal/sched"
)

// TestReportMatchesProvenance cross-checks the engine's in-memory
// report against what an analyst would compute from SQL — the two
// views must agree, or provenance is lying.
func TestReportMatchesProvenance(t *testing.T) {
	e, err := New(Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(toyWorkflow(), inputRelation(40))
	if err != nil {
		t.Fatal(err)
	}

	// Activation count.
	res, err := e.DB.Query("SELECT count(*) FROM hactivation")
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Rows[0][0].(int64)); got != rep.Activations {
		t.Errorf("hactivation rows %d != report activations %d", got, rep.Activations)
	}

	// Transient failure count.
	res, err = e.DB.Query("SELECT sum(failures) FROM hactivation")
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Rows[0][0].(float64)); got != rep.Failures {
		t.Errorf("sum(failures) %d != report failures %d", got, rep.Failures)
	}

	// Every finished activation has endtime >= starttime.
	res, err = e.DB.Query(
		"SELECT count(*) FROM hactivation WHERE endtime < starttime")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 0 {
		t.Error("activation with endtime before starttime")
	}

	// TET equals the maximum virtual end time (plus initial boot,
	// which both views include).
	res, err = e.DB.Query("SELECT max(extract('epoch' from endtime)) FROM hactivation")
	if err != nil {
		t.Fatal(err)
	}
	maxEnd := res.Rows[0][0].(float64)
	base := float64(e.opts.BaseTime.Unix())
	if got := maxEnd - base; got > rep.TET+1 {
		t.Errorf("provenance max end %.1f exceeds reported TET %.1f", got, rep.TET)
	}

	// File registrations point at files that exist on the shared FS.
	res, err = e.DB.Query("SELECT fdir, fname, fsize FROM hfile")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no hfile rows")
	}
	for _, row := range res.Rows {
		path := row[0].(string) + row[1].(string)
		size, err := e.FS.Stat(path)
		if err != nil {
			t.Errorf("registered file missing from FS: %s", path)
			continue
		}
		if size != row[2].(int64) {
			t.Errorf("file %s size mismatch: fs=%d prov=%d", path, size, row[2])
		}
	}

	// Status vocabulary is closed.
	res, err = e.DB.Query("SELECT status, count(*) FROM hactivation GROUP BY status")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		switch row[0].(string) {
		case prov.StatusFinished, prov.StatusFailed, prov.StatusAborted, prov.StatusRunning:
		default:
			t.Errorf("unknown activation status %q", row[0])
		}
	}
}

// TestVirtualTimelinePerCore checks the scheduler invariant end to
// end: no two activations overlap on the same (vm, core) in the
// provenance timeline.
func TestVirtualTimelinePerCore(t *testing.T) {
	e, _ := New(Options{Cores: 4})
	if _, err := e.Run(toyWorkflow(), inputRelation(60)); err != nil {
		t.Fatal(err)
	}
	res, err := e.DB.Query(`SELECT vmid,
extract('epoch' from starttime),
extract('epoch' from endtime)
FROM hactivation WHERE status = 'FINISHED' ORDER BY vmid, starttime`)
	if err != nil {
		t.Fatal(err)
	}
	// The provenance schema records the VM but not the core; sweep
	// the per-VM timeline and check concurrency never exceeds the
	// engine's worker cap (4 cores here).
	type event struct {
		t float64
		d int
	}
	perVM := map[string][]event{}
	for _, row := range res.Rows {
		vm := row[0].(string)
		perVM[vm] = append(perVM[vm],
			event{row[1].(float64), +1}, event{row[2].(float64), -1})
	}
	for vm, evs := range perVM {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].d < evs[j].d // close before open at the same instant
		})
		cur, max := 0, 0
		for _, ev := range evs {
			cur += ev.d
			if cur > max {
				max = cur
			}
		}
		if max > 4 {
			t.Fatalf("vm %s: %d concurrent activations exceed the 4-core cap", vm, max)
		}
	}
}

// TestAdaptiveReleasesReduceCost checks the elasticity economics: an
// adaptive fleet that shrinks between light stages accrues a bill no
// larger than holding the peak fleet for the whole run.
func TestAdaptiveReleasesReduceCost(t *testing.T) {
	pol := sched.NewAdaptivePolicy()
	pol.MinCores = 4
	pol.MaxCores = 32
	pol.TargetStageSeconds = 30
	ad, _ := New(Options{Cores: 4, Adaptive: pol, DisableFailures: true})
	if _, err := ad.Run(toyWorkflow(), inputRelation(100)); err != nil {
		t.Fatal(err)
	}
	vms := ad.Cluster.VMs()
	if len(vms) < 2 {
		t.Skip("policy never scaled; nothing to compare")
	}
	released := 0
	for _, vm := range vms {
		if !vm.Running() {
			released++
		}
	}
	if released == 0 {
		t.Error("adaptive policy never released a VM")
	}
}

func TestRelationRowsRecorded(t *testing.T) {
	e, _ := New(Options{Cores: 2, DisableFailures: true})
	if _, err := e.Run(toyWorkflow(), inputRelation(2)); err != nil {
		t.Fatal(err)
	}
	res, err := e.DB.Query(`SELECT r.reltype, count(*)
FROM hrelation r GROUP BY r.reltype ORDER BY r.reltype`)
	if err != nil {
		t.Fatal(err)
	}
	// 3 activities × (1 input + 1 output).
	if len(res.Rows) != 2 ||
		res.Rows[0][1].(int64) != 3 || res.Rows[1][1].(int64) != 3 {
		t.Errorf("relation rows = %v", res.Rows)
	}
	// Relations join back to their activities.
	join, err := e.DB.Query(`SELECT a.tag, r.relname
FROM hactivity a, hrelation r
WHERE a.actid = r.actid AND r.reltype = 'Input'
ORDER BY a.actid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(join.Rows) != 3 || join.Rows[0][1].(string) != "rel_in_babel" {
		t.Errorf("relation join = %v", join.Rows)
	}
}

func TestProvenanceEstimatesMode(t *testing.T) {
	// With estimates on, runs still complete and the history
	// accumulates per activity tag.
	e, _ := New(Options{Cores: 4, ProvenanceEstimates: true, DisableFailures: true})
	rep, err := e.Run(toyWorkflow(), inputRelation(20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Activations == 0 {
		t.Fatal("no activations")
	}
	if got := e.estimateFor("babel"); got == 1.0 {
		t.Error("babel history not recorded (estimate still neutral)")
	}
	if got := e.estimateFor("never-ran"); got != 1.0 {
		t.Errorf("unknown tag estimate = %v, want neutral 1.0", got)
	}
	// Results identical to oracle mode in totals (ordering differs,
	// outcomes don't).
	e2, _ := New(Options{Cores: 4, DisableFailures: true})
	rep2, err := e2.Run(toyWorkflow(), inputRelation(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != len(rep2.Outputs) {
		t.Errorf("outputs differ between estimate modes: %d vs %d",
			len(rep.Outputs), len(rep2.Outputs))
	}
}

func TestMidRunAcquisitionPaysBootLatency(t *testing.T) {
	pol := sched.NewAdaptivePolicy()
	pol.MinCores = 4
	pol.MaxCores = 64
	pol.TargetStageSeconds = 10 // force aggressive scale-up
	e, _ := New(Options{Cores: 4, Adaptive: pol, DisableFailures: true})
	if _, err := e.Run(toyWorkflow(), inputRelation(120)); err != nil {
		t.Fatal(err)
	}
	// Some VM must have been acquired after t=0 (mid-run), with its
	// boot window starting at acquisition time.
	later := false
	for _, vm := range e.Cluster.VMs() {
		if vm.BootAt > 0 {
			later = true
			if vm.ReadyAt <= vm.BootAt {
				t.Errorf("vm %s has no boot latency", vm.ID)
			}
		}
	}
	if !later {
		t.Skip("policy acquired everything up front; nothing to check")
	}
}
