package prov

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// CrossCheck, when true, makes every Query run twice — once through
// the indexed planner and once through executeReference — on the same
// snapshot, and fail loudly on any divergence. Tests turn it on so
// every corpus query doubles as a planner-equivalence check; it is off
// in production (it defeats the planner's purpose).
var CrossCheck = false

// Query parses and executes a SQL statement against the database,
// taking a consistent snapshot so it can run while the workflow is
// still executing (runtime provenance queries, §IV.B).
func (db *DB) Query(sql string) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	tables, err := db.snapshot(q)
	if err != nil {
		return nil, err
	}
	res, err := executePlanned(tables, q)
	if CrossCheck {
		ref, rerr := executeReference(tables, q)
		if cerr := compareResults(res, err, ref, rerr); cerr != nil {
			return nil, cerr
		}
	}
	return res, err
}

// compareResults reports a divergence between the planner and the
// reference executor. Both failing counts as agreement: the planner
// folds aggregates incrementally and stops at LIMIT, so when a query
// errors, which of several errors surfaces first may differ. Empty and
// nil row sets also count as equal (the executors reach length zero by
// different paths).
func compareResults(p *Result, perr error, r *Result, rerr error) error {
	if (perr != nil) != (rerr != nil) {
		return fmt.Errorf("prov: planner/reference divergence: planner err=%v, reference err=%v", perr, rerr)
	}
	if perr != nil {
		return nil
	}
	if !reflect.DeepEqual(p.Columns, r.Columns) {
		return fmt.Errorf("prov: planner/reference divergence: columns %v vs %v", p.Columns, r.Columns)
	}
	if len(p.Rows) != len(r.Rows) {
		return fmt.Errorf("prov: planner/reference divergence: %d rows vs %d rows", len(p.Rows), len(r.Rows))
	}
	for i := range p.Rows {
		if !reflect.DeepEqual(p.Rows[i], r.Rows[i]) {
			return fmt.Errorf("prov: planner/reference divergence at row %d: %v vs %v", i, p.Rows[i], r.Rows[i])
		}
	}
	return nil
}

// boundTable is a zero-copy snapshot of one FROM entry.
type boundTable struct {
	alias string
	table *Table
	snap  tableSnap
}

// snapshot captures a consistent zero-copy view of every table the
// query references. A self-join binds both aliases to one capture.
func (db *DB) snapshot(q *query) ([]boundTable, error) {
	db.mu.RLock()
	tabs := make([]*Table, 0, len(q.From))
	for _, tr := range q.From {
		t, err := db.table(tr.Name)
		if err != nil {
			db.mu.RUnlock()
			return nil, err
		}
		tabs = append(tabs, t)
	}
	db.mu.RUnlock()
	snaps := captureTables(tabs)
	out := make([]boundTable, len(tabs))
	for i, t := range tabs {
		out[i] = boundTable{alias: strings.ToLower(q.From[i].Alias), table: t, snap: snaps[t]}
	}
	return out, nil
}

// env binds aliases to current rows during evaluation.
type env struct {
	tables []boundTable
	rows   []int // row id in tables[i].snap; -1 = unbound
}

func (e *env) lookup(ref colRef) (Value, error) {
	if ref.Table != "" {
		at := strings.ToLower(ref.Table)
		for i := range e.tables {
			bt := &e.tables[i]
			if bt.alias == at {
				if e.rows[i] < 0 {
					return nil, fmt.Errorf("prov: alias %q not bound", ref.Table)
				}
				ci := bt.table.ColumnIndex(ref.Col)
				if ci < 0 {
					return nil, fmt.Errorf("prov: column %q not in table %q", ref.Col, bt.table.Name)
				}
				return bt.snap.row(e.rows[i])[ci], nil
			}
		}
		return nil, fmt.Errorf("prov: unknown table alias %q", ref.Table)
	}
	found := -1
	var v Value
	for i := range e.tables {
		bt := &e.tables[i]
		ci := bt.table.ColumnIndex(ref.Col)
		if ci < 0 {
			continue
		}
		if found >= 0 {
			return nil, fmt.Errorf("prov: column %q is ambiguous", ref.Col)
		}
		found = i
		if e.rows[i] < 0 {
			return nil, fmt.Errorf("prov: column %q referenced before its table is bound", ref.Col)
		}
		v = bt.snap.row(e.rows[i])[ci]
	}
	if found < 0 {
		return nil, fmt.Errorf("prov: unknown column %q", ref.Col)
	}
	return v, nil
}

// aliasesOf returns the set of table aliases an expression references
// (empty string marks bare columns, resolvable once all tables bind).
func aliasesOf(e expr, out map[string]bool) {
	switch x := e.(type) {
	case colRef:
		out[strings.ToLower(x.Table)] = true
	case binExpr:
		aliasesOf(x.L, out)
		aliasesOf(x.R, out)
	case funcCall:
		for _, a := range x.Args {
			aliasesOf(a, out)
		}
	}
}

func boolAliases(b boolExpr, m map[string]bool) {
	switch x := b.(type) {
	case boolCond:
		aliasesOf(x.C.L, m)
		if x.C.R != nil {
			aliasesOf(x.C.R, m)
		}
		for _, e := range x.C.In {
			aliasesOf(e, m)
		}
	case boolAnd:
		boolAliases(x.L, m)
		boolAliases(x.R, m)
	case boolOr:
		boolAliases(x.L, m)
		boolAliases(x.R, m)
	case boolNot:
		boolAliases(x.E, m)
	}
}

// conjuncts flattens top-level ANDs so each conjunct can be pushed
// independently to the join depth where its aliases bind.
func conjuncts(b boolExpr) []boolExpr {
	if b == nil {
		return nil
	}
	if a, ok := b.(boolAnd); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []boolExpr{b}
}

// assignConjuncts performs predicate pushdown: a conjunct fires at the
// first join depth where all its aliases are bound. Planner and
// reference share this so they prune identically.
func assignConjuncts(tables []boundTable, q *query) [][]boolExpr {
	condAt := make([][]boolExpr, len(tables))
	for _, c := range conjuncts(q.Where) {
		need := map[string]bool{}
		boolAliases(c, need)
		depth := len(tables) - 1
		if !need[""] { // bare columns need everything bound
			depth = 0
			for d := range tables {
				if need[tables[d].alias] && d > depth {
					depth = d
				}
			}
		}
		condAt[depth] = append(condAt[depth], c)
	}
	return condAt
}

// resolveRef resolves a column reference to (table index, column
// index) using the same alias/bare-column rules as env.lookup, minus
// the binding checks. Ambiguous or unknown references report !ok — the
// planner then simply doesn't use the reference as an index probe and
// the runtime evaluation surfaces the error exactly as the reference
// executor would.
func resolveRef(tables []boundTable, ref colRef) (ti, ci int, ok bool) {
	if ref.Table != "" {
		at := strings.ToLower(ref.Table)
		for i := range tables {
			if tables[i].alias != at {
				continue
			}
			c := tables[i].table.ColumnIndex(ref.Col)
			if c < 0 {
				return 0, 0, false
			}
			return i, c, true
		}
		return 0, 0, false
	}
	found, fc := -1, -1
	for i := range tables {
		c := tables[i].table.ColumnIndex(ref.Col)
		if c < 0 {
			continue
		}
		if found >= 0 {
			return 0, 0, false
		}
		found, fc = i, c
	}
	if found < 0 {
		return 0, 0, false
	}
	return found, fc, true
}

// planSeed is an index probe for one join depth: instead of scanning
// the whole table, enumerate only the rows whose indexed column ci
// equals the probe value (a literal, or a column of an earlier-bound
// table — a hash equi-join).
type planSeed struct {
	ok    bool
	ci    int
	lit   Value // literal probe (litOK)
	litOK bool
	srcT  int // earlier-bound table supplying the probe value (!litOK)
	srcC  int
}

// planSeeds picks at most one index seed per depth. Only the FIRST
// conjunct at a depth is eligible: for a row the index filters out,
// the reference executor would have evaluated nothing but that one
// equality (which cannot error) before rejecting the row, so skipping
// it can never change error behavior. All conjuncts — including the
// seed — remain as residual filters, so a seed can only ever shrink
// the scan, never change the result.
func planSeeds(tables []boundTable, condAt [][]boolExpr) []planSeed {
	seeds := make([]planSeed, len(tables))
	for d := range tables {
		if len(condAt[d]) == 0 {
			continue
		}
		bc, ok := condAt[d][0].(boolCond)
		if !ok || bc.C.Op != "=" || bc.C.Neg {
			continue
		}
		if s, ok := trySeed(tables, d, bc.C.L, bc.C.R); ok {
			seeds[d] = s
			continue
		}
		if s, ok := trySeed(tables, d, bc.C.R, bc.C.L); ok {
			seeds[d] = s
		}
	}
	return seeds
}

// trySeed checks one orientation of an equality conjunct: probe must
// be an indexed column of depth-d's table, val a literal or a column
// bound strictly earlier.
func trySeed(tables []boundTable, d int, probe, val expr) (planSeed, bool) {
	ref, ok := probe.(colRef)
	if !ok {
		return planSeed{}, false
	}
	ti, ci, ok := resolveRef(tables, ref)
	if !ok || ti != d || !tables[d].snap.hasIndex(ci) {
		return planSeed{}, false
	}
	switch v := val.(type) {
	case litNum:
		return planSeed{ok: true, ci: ci, lit: v.V, litOK: true}, true
	case litStr:
		return planSeed{ok: true, ci: ci, lit: v.V, litOK: true}, true
	case colRef:
		sti, sci, ok := resolveRef(tables, v)
		if !ok || sti >= d {
			return planSeed{}, false
		}
		return planSeed{ok: true, ci: ci, srcT: sti, srcC: sci}, true
	}
	return planSeed{}, false
}

// executePlanned is the indexed executor: same join order and residual
// predicates as executeReference, but each depth may enumerate index
// candidates instead of the full table, results stream into a sink
// instead of materializing the joined combinations, and LIMIT without
// ORDER BY stops the enumeration early. Candidates are sorted
// ascending, so output row order matches the reference exactly.
func executePlanned(tables []boundTable, q *query) (*Result, error) {
	e := &env{tables: tables, rows: make([]int, len(tables))}
	for i := range e.rows {
		e.rows[i] = -1
	}
	condAt := assignConjuncts(tables, q)
	seeds := planSeeds(tables, condAt)

	grouped := len(q.GroupBy) > 0
	if !grouped {
		for _, it := range q.Select {
			if hasAggregate(it.Expr) {
				grouped = true
				break
			}
		}
	}

	res := &Result{}
	for _, it := range q.Select {
		res.Columns = append(res.Columns, it.Alias)
	}

	// sink consumes one fully-bound combination (true = stop early);
	// finish runs after enumeration to emit buffered output.
	var sink func() (bool, error)
	var finish func() error

	switch {
	case grouped:
		sink, finish = groupedSink(e, q, res)
	case len(q.OrderBy) > 0:
		sink, finish = sortedSink(e, q, res)
	default:
		sink = func() (bool, error) {
			if q.Limit >= 0 && len(res.Rows) >= q.Limit {
				return true, nil
			}
			vals := make([]Value, 0, len(q.Select))
			for _, it := range q.Select {
				v, err := evalExpr(e, it.Expr)
				if err != nil {
					return false, err
				}
				vals = append(vals, v)
			}
			res.Rows = append(res.Rows, vals)
			return q.Limit >= 0 && len(res.Rows) >= q.Limit, nil
		}
		finish = func() error { return nil }
	}

	bufs := make([][]int, len(tables))
	var recurse func(depth int) (bool, error)
	recurse = func(depth int) (bool, error) {
		if depth == len(tables) {
			return sink()
		}
		// Candidate rows for this depth: index probe when a seed
		// applies and the index is still snapshot-valid, full scan
		// otherwise.
		var cand []int
		useIdx := false
		if s := seeds[depth]; s.ok {
			key := s.lit
			if !s.litOK {
				key = tables[s.srcT].snap.row(e.rows[s.srcT])[s.srcC]
			}
			if ids, ok := tables[depth].snap.lookupAppend(bufs[depth][:0], s.ci, key); ok {
				sort.Ints(ids)
				bufs[depth] = ids
				cand, useIdx = ids, true
			}
		}
		total := tables[depth].snap.n
		if useIdx {
			total = len(cand)
		}
		for k := 0; k < total; k++ {
			ri := k
			if useIdx {
				ri = cand[k]
			}
			e.rows[depth] = ri
			ok := true
			for _, c := range condAt[depth] {
				pass, err := evalBool(e, c)
				if err != nil {
					return false, err
				}
				if !pass {
					ok = false
					break
				}
			}
			if ok {
				if stop, err := recurse(depth + 1); err != nil || stop {
					return stop, err
				}
			}
		}
		e.rows[depth] = -1
		return false, nil
	}
	if _, err := recurse(0); err != nil {
		return nil, err
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return res, nil
}

// sortedSink buffers projected rows plus their ORDER BY keys, sorting
// and applying LIMIT once enumeration completes.
func sortedSink(e *env, q *query, res *Result) (func() (bool, error), func() error) {
	type outRow struct {
		vals []Value
		keys []Value
	}
	var rows []outRow
	sink := func() (bool, error) {
		vals := make([]Value, 0, len(q.Select))
		for _, it := range q.Select {
			v, err := evalExpr(e, it.Expr)
			if err != nil {
				return false, err
			}
			vals = append(vals, v)
		}
		keys := make([]Value, 0, len(q.OrderBy))
		for _, ob := range q.OrderBy {
			v, err := evalExpr(e, ob.Expr)
			if err != nil {
				return false, err
			}
			keys = append(keys, v)
		}
		rows = append(rows, outRow{vals, keys})
		return false, nil
	}
	finish := func() error {
		sort.SliceStable(rows, func(i, j int) bool {
			return orderLess(q.OrderBy, rows[i].keys, rows[j].keys)
		})
		for _, r := range rows {
			res.Rows = append(res.Rows, r.vals)
		}
		if q.Limit >= 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
		return nil
	}
	return sink, finish
}

// gexpr is a grouped select/order expression compiled for streaming
// aggregation: aggregate calls become slots in a per-group aggState
// array, arithmetic over aggregates stays a tree, and everything else
// (including non-aggregate functions whose arguments contain
// aggregates, which the reference evaluates — and faults — on the
// group's first row) is a leaf evaluated on the first row.
type gexpr interface{}

type gAgg struct{ i int }

type gBin struct {
	op   string
	l, r gexpr
}

type gLeaf struct{ ex expr }

func compileG(ex expr, aggs *[]funcCall) gexpr {
	switch x := ex.(type) {
	case funcCall:
		switch x.Name {
		case "min", "max", "sum", "avg", "count":
			*aggs = append(*aggs, x)
			return gAgg{i: len(*aggs) - 1}
		}
	case binExpr:
		if hasAggregate(x) {
			return gBin{op: x.Op, l: compileG(x.L, aggs), r: compileG(x.R, aggs)}
		}
	}
	return gLeaf{ex: ex}
}

// aggState folds one aggregate incrementally; its fold/final split
// replicates foldAggregate exactly (nil skipping, DISTINCT via the
// formatted value, sum/avg numeric check, empty-set results).
type aggState struct {
	f     funcCall
	seen  map[string]bool
	acc   float64
	n     int
	first bool
	best  Value
}

func (a *aggState) fold(e *env) error {
	if a.f.Star || len(a.f.Args) != 1 {
		// COUNT(*) needs no per-row work; wrong arity is reported by
		// final(), like the reference (which only faults for groups
		// that are actually emitted).
		return nil
	}
	v, err := evalExpr(e, a.f.Args[0])
	if err != nil {
		return err
	}
	if a.f.Name == "count" && a.f.Distinct {
		if v != nil {
			if a.seen == nil {
				a.seen = map[string]bool{}
			}
			a.seen[formatValue(v)] = true
		}
		return nil
	}
	if v == nil {
		return nil
	}
	a.n++
	switch a.f.Name {
	case "min":
		if a.first || compareValues(v, a.best) < 0 {
			a.best = v
		}
	case "max":
		if a.first || compareValues(v, a.best) > 0 {
			a.best = v
		}
	case "sum", "avg":
		fv, ok := numeric(v)
		if !ok {
			return fmt.Errorf("prov: %s over non-numeric value %v", a.f.Name, v)
		}
		a.acc += fv
	}
	a.first = false
	return nil
}

func (a *aggState) final(combos int) (Value, error) {
	if a.f.Name == "count" && a.f.Star {
		return int64(combos), nil
	}
	if len(a.f.Args) != 1 {
		return nil, fmt.Errorf("prov: %s needs exactly one argument", a.f.Name)
	}
	if a.f.Name == "count" && a.f.Distinct {
		return int64(len(a.seen)), nil
	}
	switch a.f.Name {
	case "count":
		return int64(a.n), nil
	case "min", "max":
		return a.best, nil
	case "sum":
		if a.n == 0 {
			return nil, nil
		}
		return a.acc, nil
	case "avg":
		if a.n == 0 {
			return nil, nil
		}
		return a.acc / float64(a.n), nil
	}
	return nil, fmt.Errorf("prov: unreachable aggregate %q", a.f.Name)
}

// groupState is one output group: its first joined combination (for
// non-aggregate expressions), the combination count (for COUNT(*)) and
// the incremental aggregate folds.
type groupState struct {
	firstRows []int
	combos    int
	aggs      []aggState
}

func evalG(e *env, g gexpr, gs *groupState) (Value, error) {
	switch x := g.(type) {
	case gAgg:
		return gs.aggs[x.i].final(gs.combos)
	case gBin:
		l, err := evalG(e, x.l, gs)
		if err != nil {
			return nil, err
		}
		r, err := evalG(e, x.r, gs)
		if err != nil {
			return nil, err
		}
		return evalBin(&env{}, binExpr{Op: x.op, L: litVal(l), R: litVal(r)})
	case gLeaf:
		if gs.combos == 0 {
			return nil, nil
		}
		e.rows = gs.firstRows
		return evalExpr(e, x.ex)
	}
	return nil, fmt.Errorf("prov: unreachable grouped expression %T", g)
}

// groupedSink streams joined combinations into groups — one map probe
// and one incremental fold per combination — instead of materializing
// the whole join and re-scanning it per group like the reference.
// Group keys replicate the reference's formatValue-plus-NUL encoding
// byte for byte, built in a reused buffer.
func groupedSink(e *env, q *query, res *Result) (func() (bool, error), func() error) {
	var aggTmpl []funcCall
	selG := make([]gexpr, len(q.Select))
	for i, it := range q.Select {
		selG[i] = compileG(it.Expr, &aggTmpl)
	}
	ordG := make([]gexpr, len(q.OrderBy))
	for i, ob := range q.OrderBy {
		ordG[i] = compileG(ob.Expr, &aggTmpl)
	}

	groups := map[string]*groupState{}
	var order []*groupState
	var keyBuf []byte

	newGroup := func() *groupState {
		gs := &groupState{firstRows: append([]int(nil), e.rows...)}
		gs.aggs = make([]aggState, len(aggTmpl))
		for i, f := range aggTmpl {
			gs.aggs[i] = aggState{f: f, first: true}
		}
		return gs
	}

	sink := func() (bool, error) {
		var gs *groupState
		if len(q.GroupBy) == 0 {
			if len(order) == 0 {
				order = append(order, newGroup())
			}
			gs = order[0]
		} else {
			keyBuf = keyBuf[:0]
			for _, g := range q.GroupBy {
				v, err := e.lookup(g)
				if err != nil {
					return false, err
				}
				keyBuf = appendKeyValue(keyBuf, v)
				keyBuf = append(keyBuf, 0)
			}
			gs = groups[string(keyBuf)]
			if gs == nil {
				gs = newGroup()
				groups[string(keyBuf)] = gs
				order = append(order, gs)
			}
		}
		gs.combos++
		for i := range gs.aggs {
			if err := gs.aggs[i].fold(e); err != nil {
				return false, err
			}
		}
		return false, nil
	}

	finish := func() error {
		if len(q.GroupBy) == 0 && len(order) == 0 {
			// Aggregates over an empty set still yield one row.
			order = append(order, newGroup())
		}
		type outRow struct {
			vals []Value
			keys []Value
		}
		rows := make([]outRow, 0, len(order))
		for _, gs := range order {
			vals := make([]Value, 0, len(q.Select))
			for _, g := range selG {
				v, err := evalG(e, g, gs)
				if err != nil {
					return err
				}
				vals = append(vals, v)
			}
			keys := make([]Value, 0, len(q.OrderBy))
			for _, g := range ordG {
				v, err := evalG(e, g, gs)
				if err != nil {
					return err
				}
				keys = append(keys, v)
			}
			rows = append(rows, outRow{vals, keys})
		}
		if len(q.OrderBy) > 0 {
			sort.SliceStable(rows, func(i, j int) bool {
				return orderLess(q.OrderBy, rows[i].keys, rows[j].keys)
			})
		}
		for _, r := range rows {
			res.Rows = append(res.Rows, r.vals)
		}
		if q.Limit >= 0 && len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
		return nil
	}
	return sink, finish
}

// appendKeyValue appends formatValue(v) to b without allocating.
// It must stay byte-identical to formatValue: group keys built here
// feed the same map semantics the reference gets from the string form.
func appendKeyValue(b []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return b
	case string:
		return append(b, x...)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case float64:
		start := len(b)
		b = strconv.AppendFloat(b, x, 'f', 6, 64)
		for len(b) > start && b[len(b)-1] == '0' {
			b = b[:len(b)-1]
		}
		if len(b) > start && b[len(b)-1] == '.' {
			b = b[:len(b)-1]
		}
		if len(b) == start || (len(b) == start+1 && b[start] == '-') {
			b = append(b[:start], '0')
		}
		return b
	case time.Time:
		return x.AppendFormat(b, "2006-01-02 15:04:05.000")
	default:
		return fmt.Appendf(b, "%v", x)
	}
}

// executeReference is the straightforward executor the planner is
// pinned against: unindexed nested-loop join materializing every
// combination, then grouping/sorting/limiting. Kept verbatim as the
// semantic oracle — any planner change must keep CrossCheck green
// against this.
func executeReference(tables []boundTable, q *query) (*Result, error) {
	e := &env{tables: tables, rows: make([]int, len(tables))}
	for i := range e.rows {
		e.rows[i] = -1
	}

	condAt := assignConjuncts(tables, q)

	var joined []([]int)
	var joinErr error
	var recurse func(depth int)
	recurse = func(depth int) {
		if joinErr != nil {
			return
		}
		if depth == len(tables) {
			joined = append(joined, append([]int(nil), e.rows...))
			return
		}
		n := tables[depth].snap.n
		for ri := 0; ri < n; ri++ {
			e.rows[depth] = ri
			ok := true
			for _, c := range condAt[depth] {
				pass, err := evalBool(e, c)
				if err != nil {
					joinErr = err
					return
				}
				if !pass {
					ok = false
					break
				}
			}
			if ok {
				recurse(depth + 1)
			}
		}
		e.rows[depth] = -1
	}
	recurse(0)
	if joinErr != nil {
		return nil, joinErr
	}

	grouped := len(q.GroupBy) > 0
	if !grouped {
		for _, it := range q.Select {
			if hasAggregate(it.Expr) {
				grouped = true
				break
			}
		}
	}

	res := &Result{}
	for _, it := range q.Select {
		res.Columns = append(res.Columns, it.Alias)
	}

	if grouped {
		groups := map[string][][]int{}
		var order []string
		for _, rows := range joined {
			e.rows = rows
			var key strings.Builder
			for _, g := range q.GroupBy {
				v, err := e.lookup(g)
				if err != nil {
					return nil, err
				}
				key.WriteString(formatValue(v))
				key.WriteByte('\x00')
			}
			k := key.String()
			if _, seen := groups[k]; !seen {
				order = append(order, k)
			}
			groups[k] = append(groups[k], rows)
		}
		if len(q.GroupBy) == 0 && len(joined) > 0 {
			order = []string{""}
			groups[""] = joined
		}
		if len(q.GroupBy) == 0 && len(joined) == 0 {
			// Aggregates over an empty set still yield one row.
			order = []string{""}
			groups[""] = nil
		}
		type outRow struct {
			vals []Value
			keys []Value
		}
		var rows []outRow
		for _, k := range order {
			g := groups[k]
			var vals []Value
			for _, it := range q.Select {
				v, err := evalGrouped(e, it.Expr, g)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			var keys []Value
			for _, ob := range q.OrderBy {
				v, err := evalGrouped(e, ob.Expr, g)
				if err != nil {
					return nil, err
				}
				keys = append(keys, v)
			}
			rows = append(rows, outRow{vals: vals, keys: keys})
		}
		if len(q.OrderBy) > 0 {
			sort.SliceStable(rows, func(i, j int) bool {
				return orderLess(q.OrderBy, rows[i].keys, rows[j].keys)
			})
		}
		for _, r := range rows {
			res.Rows = append(res.Rows, r.vals)
		}
	} else {
		type outRow struct {
			vals []Value
			keys []Value
		}
		var rows []outRow
		for _, rset := range joined {
			e.rows = rset
			var vals []Value
			for _, it := range q.Select {
				v, err := evalExpr(e, it.Expr)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			var keys []Value
			for _, ob := range q.OrderBy {
				v, err := evalExpr(e, ob.Expr)
				if err != nil {
					return nil, err
				}
				keys = append(keys, v)
			}
			rows = append(rows, outRow{vals, keys})
		}
		if len(q.OrderBy) > 0 {
			sort.SliceStable(rows, func(i, j int) bool {
				return orderLess(q.OrderBy, rows[i].keys, rows[j].keys)
			})
		}
		for _, r := range rows {
			res.Rows = append(res.Rows, r.vals)
		}
	}

	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

func orderLess(obs []orderItem, a, b []Value) bool {
	for i, ob := range obs {
		c := compareValues(a[i], b[i])
		if c == 0 {
			continue
		}
		if ob.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

func hasAggregate(e expr) bool {
	switch x := e.(type) {
	case funcCall:
		switch x.Name {
		case "min", "max", "sum", "avg", "count":
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case binExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	}
	return false
}

func evalBool(e *env, b boolExpr) (bool, error) {
	switch x := b.(type) {
	case boolCond:
		return evalCondition(e, x.C)
	case boolAnd:
		l, err := evalBool(e, x.L)
		if err != nil || !l {
			return false, err
		}
		return evalBool(e, x.R)
	case boolOr:
		l, err := evalBool(e, x.L)
		if err != nil || l {
			return l, err
		}
		return evalBool(e, x.R)
	case boolNot:
		v, err := evalBool(e, x.E)
		return !v, err
	default:
		return false, fmt.Errorf("prov: unsupported boolean expression %T", b)
	}
}

func evalCondition(e *env, c condition) (bool, error) {
	l, err := evalExpr(e, c.L)
	if err != nil {
		return false, err
	}
	if c.Op == "in" {
		for _, item := range c.In {
			v, err := evalExpr(e, item)
			if err != nil {
				return false, err
			}
			if compareValues(l, v) == 0 {
				return !c.Neg, nil
			}
		}
		return c.Neg, nil
	}
	r, err := evalExpr(e, c.R)
	if err != nil {
		return false, err
	}
	if c.Op == "like" {
		ls, ok1 := l.(string)
		rs, ok2 := r.(string)
		if !ok1 || !ok2 {
			return false, fmt.Errorf("prov: LIKE needs string operands")
		}
		m := likeMatch(ls, rs)
		if c.Neg {
			m = !m
		}
		return m, nil
	}
	cmp := compareValues(l, r)
	switch c.Op {
	case "=":
		return cmp == 0, nil
	case "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case ">":
		return cmp > 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("prov: unknown operator %q", c.Op)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one
// character). It is iterative with single-point backtracking to the
// most recent % — worst case O(len(s)·len(pat)) — so pathological
// patterns like "%a%a%a%…" cannot trigger exponential recursion, and
// it matches by rune so _ consumes one multi-byte character, not one
// byte.
func likeMatch(s, pat string) bool {
	rs, rp := []rune(s), []rune(pat)
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(rs) {
		switch {
		case pi < len(rp) && (rp[pi] == '_' || rp[pi] == rs[si]):
			si++
			pi++
		case pi < len(rp) && rp[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(rp) && rp[pi] == '%' {
		pi++
	}
	return pi == len(rp)
}

func evalExpr(e *env, ex expr) (Value, error) {
	switch x := ex.(type) {
	case litNum:
		return x.V, nil
	case litStr:
		return x.V, nil
	case colRef:
		return e.lookup(x)
	case binExpr:
		return evalBin(e, x)
	case funcCall:
		return evalFunc(e, x)
	default:
		return nil, fmt.Errorf("prov: unsupported expression %T", ex)
	}
}

func evalBin(e *env, b binExpr) (Value, error) {
	l, err := evalExpr(e, b.L)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(e, b.R)
	if err != nil {
		return nil, err
	}
	// timestamp - timestamp = interval in seconds (float64).
	if lt, ok := l.(time.Time); ok {
		if rt, ok := r.(time.Time); ok && b.Op == "-" {
			return lt.Sub(rt).Seconds(), nil
		}
	}
	lf, ok1 := numeric(l)
	rf, ok2 := numeric(r)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("prov: arithmetic on non-numeric values %v %s %v", l, b.Op, r)
	}
	switch b.Op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("prov: division by zero")
		}
		return lf / rf, nil
	default:
		return nil, fmt.Errorf("prov: unknown arithmetic operator %q", b.Op)
	}
}

func evalFunc(e *env, f funcCall) (Value, error) {
	switch f.Name {
	case "extract":
		if len(f.Args) != 2 {
			return nil, fmt.Errorf("prov: extract needs field and expression")
		}
		field, _ := f.Args[0].(litStr)
		if field.V != "epoch" {
			return nil, fmt.Errorf("prov: extract supports 'epoch' only, got %q", field.V)
		}
		v, err := evalExpr(e, f.Args[1])
		if err != nil {
			return nil, err
		}
		switch x := v.(type) {
		case float64: // interval already in seconds
			return x, nil
		case int64:
			return float64(x), nil
		case time.Time:
			return float64(x.UnixNano()) / 1e9, nil
		default:
			return nil, fmt.Errorf("prov: extract(epoch) from %T unsupported", v)
		}
	case "min", "max", "sum", "avg", "count":
		return nil, fmt.Errorf("prov: aggregate %s used outside grouped context", f.Name)
	default:
		return nil, fmt.Errorf("prov: unknown function %q", f.Name)
	}
}

// evalGrouped evaluates an expression over a group of joined rows:
// aggregates fold the group, other expressions evaluate on the first
// row (SQL requires them to be functionally dependent on the group
// key; we follow PostgreSQL 8.4's permissiveness).
func evalGrouped(e *env, ex expr, group [][]int) (Value, error) {
	switch x := ex.(type) {
	case funcCall:
		switch x.Name {
		case "min", "max", "sum", "avg", "count":
			return foldAggregate(e, x, group)
		}
	case binExpr:
		if hasAggregate(x) {
			l, err := evalGrouped(e, x.L, group)
			if err != nil {
				return nil, err
			}
			r, err := evalGrouped(e, x.R, group)
			if err != nil {
				return nil, err
			}
			return evalBin(&env{}, binExpr{Op: x.Op, L: litVal(l), R: litVal(r)})
		}
	}
	if len(group) == 0 {
		return nil, nil
	}
	e.rows = group[0]
	return evalExpr(e, ex)
}

// litVal wraps an already-evaluated value back into an expression so
// evalBin can combine aggregate results.
func litVal(v Value) expr {
	switch x := v.(type) {
	case float64:
		return litNum{x}
	case int64:
		return litNum{float64(x)}
	case string:
		return litStr{x}
	default:
		return litNum{0}
	}
}

func foldAggregate(e *env, f funcCall, group [][]int) (Value, error) {
	if f.Name == "count" && f.Star {
		return int64(len(group)), nil
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("prov: %s needs exactly one argument", f.Name)
	}
	if f.Name == "count" && f.Distinct {
		seen := map[string]bool{}
		for _, rows := range group {
			e.rows = rows
			v, err := evalExpr(e, f.Args[0])
			if err != nil {
				return nil, err
			}
			if v != nil {
				seen[formatValue(v)] = true
			}
		}
		return int64(len(seen)), nil
	}
	var (
		acc   float64
		n     int
		first = true
		best  Value
	)
	for _, rows := range group {
		e.rows = rows
		v, err := evalExpr(e, f.Args[0])
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		n++
		switch f.Name {
		case "count":
			continue
		case "min":
			if first || compareValues(v, best) < 0 {
				best = v
			}
		case "max":
			if first || compareValues(v, best) > 0 {
				best = v
			}
		case "sum", "avg":
			fv, ok := numeric(v)
			if !ok {
				return nil, fmt.Errorf("prov: %s over non-numeric value %v", f.Name, v)
			}
			acc += fv
		}
		first = false
	}
	switch f.Name {
	case "count":
		return int64(n), nil
	case "min", "max":
		return best, nil
	case "sum":
		if n == 0 {
			return nil, nil
		}
		return acc, nil
	case "avg":
		if n == 0 {
			return nil, nil
		}
		return acc / float64(n), nil
	}
	return nil, fmt.Errorf("prov: unreachable aggregate %q", f.Name)
}

// Format renders the result like psql's aligned output (the style of
// Figures 10 and 11 in the paper).
func (r *Result) Format() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatValue(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				sb.WriteString(" | ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], s)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "(%d rows)\n", len(r.Rows))
	return sb.String()
}
