// Package chem provides the molecular model shared by the whole
// repository: 3D geometry primitives, elements and AutoDock atom
// types, atoms, bonds, molecules, torsion trees and RMSD.
//
// It is the lowest substrate of the SciDock reproduction; every other
// package (file formats, preparation, grid generation, docking
// engines, workload generation) builds on these types.
package chem

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3D space, in Ångström.
type Vec3 struct {
	X, Y, Z float64
}

// V is a convenience constructor for Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Unit returns v normalized to unit length. The zero vector is
// returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v and w: v + t*(w-v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// String formats the vector with three decimals, the precision used
// by the PDB coordinate columns.
func (v Vec3) String() string { return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z) }

// Angle returns the angle in radians between vectors v and w,
// in [0, π].
func (v Vec3) Angle(w Vec3) float64 {
	d := v.Norm() * w.Norm()
	if d == 0 {
		return 0
	}
	c := v.Dot(w) / d
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Dihedral returns the dihedral angle (radians, in (-π, π]) defined by
// the four points a-b-c-d, i.e. the angle between planes (a,b,c) and
// (b,c,d). This is the torsion-angle convention used by AutoDock.
func Dihedral(a, b, c, d Vec3) float64 {
	b1 := b.Sub(a)
	b2 := c.Sub(b)
	b3 := d.Sub(c)
	n1 := b1.Cross(b2)
	n2 := b2.Cross(b3)
	m1 := n1.Cross(b2.Unit())
	x := n1.Dot(n2)
	y := m1.Dot(n2)
	return math.Atan2(y, x)
}

// Centroid returns the arithmetic mean of the given points. It
// returns the zero vector for an empty slice.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// BoundingBox returns the axis-aligned min and max corners of the
// given points. It returns zero vectors for an empty slice.
func BoundingBox(pts []Vec3) (min, max Vec3) {
	if len(pts) == 0 {
		return
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		min.Z = math.Min(min.Z, p.Z)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
		max.Z = math.Max(max.Z, p.Z)
	}
	return
}
