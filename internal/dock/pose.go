// Package dock provides the types shared by both docking engines:
// poses (the state variables AutoDock optimizes), the search box,
// scoring interfaces and run results.
package dock

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/chem"
)

// Pose is the docking state of a flexible ligand: a rigid-body
// translation and orientation plus one angle per rotatable bond —
// exactly AutoDock's genotype.
type Pose struct {
	Translation chem.Vec3 // position of the ligand centroid
	Orientation chem.Quat
	Torsions    []float64 // radians, one per rotatable bond
}

// Clone returns a deep copy.
func (p Pose) Clone() Pose {
	q := p
	q.Torsions = append([]float64(nil), p.Torsions...)
	return q
}

// Set copies q into p, reusing p's torsion storage — the
// allocation-free counterpart of Clone used by the search workspaces.
func (p *Pose) Set(q Pose) {
	p.Translation = q.Translation
	p.Orientation = q.Orientation
	p.Torsions = append(p.Torsions[:0], q.Torsions...)
}

// Box is the cuboid search space (the grid box for AD4, the
// config-file box for Vina).
type Box struct {
	Center chem.Vec3
	Size   chem.Vec3 // full edge lengths, Å
}

// Contains reports whether a point is inside the box.
func (b Box) Contains(p chem.Vec3) bool {
	d := p.Sub(b.Center)
	return math.Abs(d.X) <= b.Size.X/2 &&
		math.Abs(d.Y) <= b.Size.Y/2 &&
		math.Abs(d.Z) <= b.Size.Z/2
}

// Ligand is the conformational model both engines share: the prepared
// molecule, its torsion tree and base coordinates centred at the
// origin (so Pose.Translation is the centroid position directly).
type Ligand struct {
	Mol      *chem.Molecule
	Tree     *chem.TorsionTree
	base     []chem.Vec3 // origin-centred input conformation
	refCoord []chem.Vec3 // reference (input frame) coordinates for RMSD

	arcOnce         sync.Once
	arcMax, arcMean []float64 // base-conformation torsion arc radii
}

// NewLigand builds the conformational model. The reference coordinates
// for RMSD reporting are the molecule's input coordinates, as AutoDock
// uses (the input frame may sit far from the receptor pocket, which is
// why DLG RMSDs of blind dockings are large).
func NewLigand(mol *chem.Molecule, tree *chem.TorsionTree) (*Ligand, error) {
	if mol.NumAtoms() == 0 {
		return nil, fmt.Errorf("dock: ligand %q has no atoms", mol.Name)
	}
	if tree == nil {
		return nil, fmt.Errorf("dock: ligand %q has no torsion tree", mol.Name)
	}
	ref := mol.Positions()
	base := mol.Positions()
	c := chem.Centroid(base)
	for i := range base {
		base[i] = base[i].Sub(c)
	}
	return &Ligand{Mol: mol, Tree: tree, base: base, refCoord: ref}, nil
}

// NumTorsions returns the ligand's rotatable bond count.
func (l *Ligand) NumTorsions() int { return l.Tree.NumTorsions() }

// Reference returns the input-frame coordinates used for RMSD.
func (l *Ligand) Reference() []chem.Vec3 { return l.refCoord }

// Coords materializes the atom coordinates of a pose: torsions are
// applied to the base conformation, the result re-centred, rotated by
// the orientation and translated.
func (l *Ligand) Coords(p Pose) []chem.Vec3 {
	return l.CoordsInto(p, nil)
}

// CoordsInto is Coords writing into buf's storage (grown as needed),
// so a search loop that keeps one buffer per worker evaluates
// candidates without allocating. The returned slice aliases buf and
// is overwritten by the next call that reuses it.
func (l *Ligand) CoordsInto(p Pose, buf []chem.Vec3) []chem.Vec3 {
	if len(p.Torsions) != l.NumTorsions() {
		panic(fmt.Sprintf("dock: pose has %d torsions, ligand %d", len(p.Torsions), l.NumTorsions()))
	}
	var coords []chem.Vec3
	if l.NumTorsions() == 0 {
		coords = append(buf[:0], l.base...)
	} else {
		coords = l.Tree.ApplyTorsionsInto(buf, l.base, p.Torsions)
		c := chem.Centroid(coords)
		for i := range coords {
			coords[i] = coords[i].Sub(c)
		}
	}
	q := p.Orientation.Normalize()
	for i := range coords {
		coords[i] = q.Rotate(coords[i]).Add(p.Translation)
	}
	return coords
}

// ArcRadii returns the ligand's torsion arc radii — per torsion, the
// largest and the atom-count-averaged distance of its effect-set from
// the axis — evaluated once at the base conformation and cached. They
// feed chem.DisplacementBound when a search opens a screening window;
// the radii drift with conformation, but a window bound built from the
// base-conformation estimate is safe regardless: poses that outrun it
// fail Batch.WindowValid and take the exact per-pose gather.
//
// Safe for concurrent use; the returned slices are shared and
// read-only.
//
//unit: arcMax=Å arcMean=Å
func (l *Ligand) ArcRadii() (arcMax, arcMean []float64) {
	l.arcOnce.Do(func() {
		nt := l.NumTorsions()
		l.arcMax = make([]float64, nt)
		l.arcMean = make([]float64, nt)
		l.Tree.ArcRadiiInto(l.base, l.arcMax, l.arcMean)
	})
	return l.arcMax, l.arcMean
}

// RandomPose samples a uniform pose inside the box with the given
// RNG: uniform translation, Shoemake-uniform orientation and uniform
// torsions.
func RandomPose(r *rand.Rand, box Box, nTorsions int) Pose {
	var p Pose
	RandomPoseInto(r, &p, box, nTorsions)
	return p
}

// RandomPoseInto is RandomPose writing into dst, reusing its torsion
// storage. The RNG draw order is identical to RandomPose, so mixing
// the two on one seeded source stays reproducible.
func RandomPoseInto(r *rand.Rand, dst *Pose, box Box, nTorsions int) {
	dst.Translation = chem.V(
		box.Center.X+(r.Float64()-0.5)*box.Size.X,
		box.Center.Y+(r.Float64()-0.5)*box.Size.Y,
		box.Center.Z+(r.Float64()-0.5)*box.Size.Z,
	)
	dst.Orientation = chem.RandomQuat(r.Float64(), r.Float64(), r.Float64())
	dst.Torsions = dst.Torsions[:0]
	for i := 0; i < nTorsions; i++ {
		dst.Torsions = append(dst.Torsions, (r.Float64()*2-1)*math.Pi)
	}
}

// Perturb returns a copy of the pose with gaussian displacement of
// amplitude dt (Å) on translation, da (radians) on orientation and
// torsions. Used by Solis-Wets and by Vina's mutation step.
func Perturb(r *rand.Rand, p Pose, dt, da float64) Pose {
	var q Pose
	PerturbInto(r, &q, p, dt, da)
	return q
}

// PerturbInto is Perturb writing into dst, reusing its torsion
// storage (dst must not alias src's torsions). The RNG draw order is
// identical to Perturb, so rewiring a search loop onto it cannot
// change a seeded trajectory.
func PerturbInto(r *rand.Rand, dst *Pose, src Pose, dt, da float64) {
	dst.Set(src)
	dst.Translation = dst.Translation.Add(chem.V(
		r.NormFloat64()*dt, r.NormFloat64()*dt, r.NormFloat64()*dt))
	axis := chem.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
	dst.Orientation = chem.AxisAngleQuat(axis, r.NormFloat64()*da).Mul(dst.Orientation).Normalize()
	for i := range dst.Torsions {
		dst.Torsions[i] = wrapAngle(dst.Torsions[i] + r.NormFloat64()*da)
	}
}

// PerturbDrawCount returns how many NormFloat64 draws one perturbation
// of a pose with nTorsions rotatable bonds consumes: three for the
// translation, four for the orientation (axis + angle), one per
// torsion.
func PerturbDrawCount(nTorsions int) int { return 7 + nTorsions }

// PerturbDraws fills raw with NormFloat64 draws in exactly the order
// PerturbInto consumes them. Splitting the draw from the application
// lets a speculative search window pre-draw several perturbations'
// randomness up front and still rebuild any individual candidate later
// — PerturbApplyRaw over the stored draws is bit-identical to the
// PerturbInto call those draws would have fed.
func PerturbDraws(r *rand.Rand, raw []float64) {
	for i := range raw {
		raw[i] = r.NormFloat64()
	}
}

// PerturbApplyRaw is PerturbInto with the randomness supplied up front:
// raw must hold PerturbDrawCount(len(src.Torsions)) values in
// PerturbDraws order. The arithmetic composes the draws exactly as
// PerturbInto does, so the resulting pose is bit-identical.
func PerturbApplyRaw(raw []float64, dst *Pose, src Pose, dt, da float64) {
	dst.Set(src)
	dst.Translation = dst.Translation.Add(chem.V(raw[0]*dt, raw[1]*dt, raw[2]*dt))
	axis := chem.V(raw[3], raw[4], raw[5])
	dst.Orientation = chem.AxisAngleQuat(axis, raw[6]*da).Mul(dst.Orientation).Normalize()
	for i := range dst.Torsions {
		dst.Torsions[i] = wrapAngle(dst.Torsions[i] + raw[7+i]*da)
	}
}

func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// ClampToBox moves the pose translation inside the box if it escaped
// (AutoDock wraps genes back into the domain).
func ClampToBox(p *Pose, box Box) {
	half := box.Size.Scale(0.5)
	d := p.Translation.Sub(box.Center)
	if d.X > half.X {
		d.X = half.X
	} else if d.X < -half.X {
		d.X = -half.X
	}
	if d.Y > half.Y {
		d.Y = half.Y
	} else if d.Y < -half.Y {
		d.Y = -half.Y
	}
	if d.Z > half.Z {
		d.Z = half.Z
	} else if d.Z < -half.Z {
		d.Z = -half.Z
	}
	p.Translation = box.Center.Add(d)
}
