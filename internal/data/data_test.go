package data

import (
	"testing"

	"repro/internal/chem"
)

func TestTable2Counts(t *testing.T) {
	if len(ReceptorCodes) != 238 {
		t.Errorf("receptors = %d, want 238 (Table 2)", len(ReceptorCodes))
	}
	if len(LigandCodes) != 42 {
		t.Errorf("ligands = %d, want 42 (Table 2)", len(LigandCodes))
	}
	seen := map[string]bool{}
	for _, c := range ReceptorCodes {
		if seen[c] {
			t.Errorf("duplicate receptor code %s", c)
		}
		seen[c] = true
		if len(c) != 4 {
			t.Errorf("receptor code %q not 4 chars", c)
		}
	}
	seenL := map[string]bool{}
	for _, c := range LigandCodes {
		if seenL[c] {
			t.Errorf("duplicate ligand code %s", c)
		}
		seenL[c] = true
	}
	for _, c := range Table3Ligands {
		if !seenL[c] {
			t.Errorf("Table 3 ligand %s missing from Table 2", c)
		}
	}
}

func TestFullDatasetScale(t *testing.T) {
	d := Full()
	if got := d.NumPairs(); got != 238*42 {
		t.Errorf("full pairs = %d", got)
	}
	// "all-out 10,000 receptor-ligand pairs"
	if d.NumPairs() < 9996 {
		t.Errorf("full sweep %d below the paper's ~10,000", d.NumPairs())
	}
	if got := Table3().NumPairs(); got != 952 {
		t.Errorf("table3 pairs = %d, want 952 (≈1,000)", got)
	}
}

func TestPairsOrderLigandMajor(t *testing.T) {
	d := Dataset{Receptors: []string{"R1", "R2"}, Ligands: []string{"L1", "L2"}}
	p := d.Pairs()
	want := []Pair{{"R1", "L1"}, {"R2", "L1"}, {"R1", "L2"}, {"R2", "L2"}}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("pairs[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	if got := d.PairsLimit(3); len(got) != 3 {
		t.Errorf("PairsLimit = %d", len(got))
	}
	if got := d.PairsLimit(99); len(got) != 4 {
		t.Errorf("PairsLimit over-cap = %d", len(got))
	}
	if s := (Pair{Receptor: "2HHN", Ligand: "0E6"}).String(); s != "0E6_2HHN" {
		t.Errorf("pair name = %q", s)
	}
}

func TestSmallValidation(t *testing.T) {
	if _, err := Small(0, 1); err == nil {
		t.Error("nr=0 accepted")
	}
	if _, err := Small(1, 999); err == nil {
		t.Error("nl too large accepted")
	}
	d, err := Small(3, 2)
	if err != nil || d.NumPairs() != 6 {
		t.Errorf("Small(3,2) = %v, %v", d, err)
	}
}

func TestGenerateReceptorDeterministic(t *testing.T) {
	a, ia := GenerateReceptor("2HHN")
	b, ib := GenerateReceptor("2HHN")
	if ia != ib {
		t.Fatalf("info not deterministic: %+v vs %+v", ia, ib)
	}
	if a.NumAtoms() != b.NumAtoms() {
		t.Fatalf("atom count varies: %d vs %d", a.NumAtoms(), b.NumAtoms())
	}
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos || a.Atoms[i].Element != b.Atoms[i].Element {
			t.Fatalf("atom %d differs between runs", i)
		}
	}
	c, _ := GenerateReceptor("1HUC")
	if c.NumAtoms() == a.NumAtoms() && c.Atoms[0].Pos == a.Atoms[0].Pos {
		t.Error("different codes produced identical structures")
	}
}

func TestGenerateReceptorShape(t *testing.T) {
	m, info := GenerateReceptor("1AEC")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumAtoms() < 120 || m.NumAtoms() > 430 {
		t.Errorf("receptor atoms = %d outside pocket range", m.NumAtoms())
	}
	if info.Residues < 180 || info.Residues >= 480 {
		t.Errorf("residues = %d", info.Residues)
	}
	// Pocket property: no atom closer than ~PocketR-0.5 to the centre.
	for i, a := range m.Atoms {
		if a.Element == chem.Mercury {
			continue
		}
		if d := a.Pos.Norm(); d < info.PocketR-0.5 {
			t.Errorf("atom %d at %.2f Å inside pocket radius %.2f", i, d, info.PocketR)
		}
	}
}

func TestReceptorSizeClassesBothPresent(t *testing.T) {
	small, large, hg := 0, 0, 0
	for _, code := range ReceptorCodes {
		info := ReceptorMeta(code)
		switch info.Class {
		case SmallReceptor:
			small++
		case LargeReceptor:
			large++
		}
		if info.ContainsHg {
			hg++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("size classes degenerate: small=%d large=%d", small, large)
	}
	// Both scenarios must be non-trivial (>20% each).
	if small < 48 || large < 48 {
		t.Errorf("unbalanced classes: small=%d large=%d", small, large)
	}
	if hg == 0 {
		t.Error("no Hg receptors; §V.C fault path untestable")
	}
	if hg > 20 {
		t.Errorf("too many Hg receptors: %d", hg)
	}
}

func TestHgReceptorsContainHg(t *testing.T) {
	found := false
	for _, code := range ReceptorCodes {
		info := ReceptorMeta(code)
		if !info.ContainsHg {
			continue
		}
		found = true
		m, _ := GenerateReceptor(code)
		if !m.Contains(chem.Mercury) {
			t.Errorf("receptor %s flagged Hg but has none", code)
		}
	}
	if !found {
		t.Skip("no Hg receptor in set")
	}
}

func TestGenerateLigandDeterministicAndValid(t *testing.T) {
	for _, code := range Table3Ligands {
		a, ia := GenerateLigand(code)
		b, ib := GenerateLigand(code)
		if ia != ib || a.NumAtoms() != b.NumAtoms() {
			t.Fatalf("ligand %s not deterministic", code)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("ligand %s invalid: %v", code, err)
		}
		if a.HeavyAtomCount() < 8 || a.HeavyAtomCount() > 25 {
			t.Errorf("ligand %s heavy atoms = %d", code, a.HeavyAtomCount())
		}
		// Connected bond graph: every atom reachable from 0.
		adj := a.Adjacency()
		seen := make([]bool, a.NumAtoms())
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					count++
					stack = append(stack, w)
				}
			}
		}
		if count != a.NumAtoms() {
			t.Errorf("ligand %s disconnected: %d of %d reachable", code, count, a.NumAtoms())
		}
	}
}

func TestLigandsHaveTorsions(t *testing.T) {
	withTorsions := 0
	for _, code := range LigandCodes {
		m, _ := GenerateLigand(code)
		tree, err := chem.BuildTorsionTree(m)
		if err != nil {
			t.Fatalf("ligand %s: %v", code, err)
		}
		if tree.NumTorsions() > 0 {
			withTorsions++
		}
	}
	// Flexible ligands dominate the CP-specific set.
	if withTorsions < len(LigandCodes)*3/4 {
		t.Errorf("only %d/%d ligands flexible", withTorsions, len(LigandCodes))
	}
}

func TestProblematicLigandsExist(t *testing.T) {
	n := 0
	for _, code := range LigandCodes {
		if LigandMeta(code).Problematic {
			n++
		}
	}
	if n == 0 {
		t.Error("no problematic ligands; §V.C loop path untestable")
	}
	if n > len(LigandCodes)/3 {
		t.Errorf("too many problematic ligands: %d", n)
	}
}

func TestSeedStability(t *testing.T) {
	// Seeds feed provenance records; they must not change across
	// releases. Pin two values.
	if Seed("2HHN") != Seed("2HHN") {
		t.Error("seed not stable within a run")
	}
	if Seed("2HHN") == Seed("0E6") {
		t.Error("seed collision between codes")
	}
	if Seed("x") < 0 {
		t.Error("seed must be non-negative")
	}
}
