package prov

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column is one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Table is a named relation with a fixed schema.
type Table struct {
	Name    string
	Columns []Column
	Rows    [][]Value

	colIndex map[string]int
}

func (t *Table) buildIndex() {
	t.colIndex = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		t.colIndex[strings.ToLower(c.Name)] = i
	}
}

// ColumnIndex returns the position of a column (case-insensitive), or
// -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	if t.colIndex == nil {
		t.buildIndex()
	}
	if i, ok := t.colIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// DB is the provenance database: a set of tables guarded by a mutex so
// the engine's concurrent workers can insert activation records while
// the scientist queries at runtime (the paper's "runtime provenance
// query" feature).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers a new relation. Recreating an existing name is
// an error (schema migrations are out of scope).
func (db *DB) CreateTable(name string, cols []Column) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("prov: table %q already exists", name)
	}
	if len(cols) == 0 {
		return fmt.Errorf("prov: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("prov: table %q has duplicate column %q", name, c.Name)
		}
		seen[lc] = true
	}
	t := &Table{Name: key, Columns: cols}
	t.buildIndex()
	db.tables[key] = t
	return nil
}

// Insert appends a row after type checking.
func (db *DB) Insert(table string, row []Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("prov: table %q does not exist", table)
	}
	if len(row) != len(t.Columns) {
		return fmt.Errorf("prov: table %q insert of %d values, schema has %d columns",
			table, len(row), len(t.Columns))
	}
	for i, v := range row {
		if err := checkType(v, t.Columns[i].Type); err != nil {
			return fmt.Errorf("prov: table %q column %q: %w", table, t.Columns[i].Name, err)
		}
	}
	t.Rows = append(t.Rows, append([]Value(nil), row...))
	return nil
}

// Update applies fn to every row matching pred, in place. It returns
// the number of rows updated. Used by the engine to close activation
// records (set endtime/status) without reinserting.
func (db *DB) Update(table string, pred func(row []Value) bool, fn func(row []Value)) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return 0, fmt.Errorf("prov: table %q does not exist", table)
	}
	n := 0
	for _, row := range t.Rows {
		if pred(row) {
			fn(row)
			n++
		}
	}
	return n, nil
}

// table returns the named table under a read lock already held by the
// caller.
func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("prov: table %q does not exist", name)
	}
	return t, nil
}

// NumRows returns the row count of a table (0 for missing tables).
func (db *DB) NumRows(table string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tables[strings.ToLower(table)]; ok {
		return len(t.Rows)
	}
	return 0
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
