package dock

import (
	"math/rand"
	"testing"

	"repro/internal/chem"
)

// TestBatchAppendMatchesCoords pins the SoA contract: every component
// of every slot is bit-identical to the AoS CoordsInto path.
func TestBatchAppendMatchesCoords(t *testing.T) {
	lig := testLigand(t, "0E6")
	box := Box{Center: chem.V(1, -2, 3), Size: chem.V(12, 12, 12)}
	r := rand.New(rand.NewSource(11))
	b := NewBatch(lig, 4) // deliberately smaller than the pose count: exercises growth
	var poses []Pose
	for k := 0; k < 33; k++ {
		p := RandomPose(r, box, lig.NumTorsions())
		poses = append(poses, p)
		if slot := b.Append(p); slot != k {
			t.Fatalf("slot %d, want %d", slot, k)
		}
	}
	if b.Len() != len(poses) || b.Stride() != lig.Mol.NumAtoms() {
		t.Fatalf("len=%d stride=%d, want %d/%d", b.Len(), b.Stride(), len(poses), lig.Mol.NumAtoms())
	}
	xs, ys, zs := b.SoA()
	for k, p := range poses {
		want := lig.Coords(p)
		for i, w := range want {
			at := k*b.Stride() + i
			if xs[at] != w.X || ys[at] != w.Y || zs[at] != w.Z {
				t.Fatalf("pose %d atom %d: batch (%v,%v,%v) != coords %v",
					k, i, xs[at], ys[at], zs[at], w)
			}
			if got := b.At(k, i); got != w {
				t.Fatalf("At(%d,%d) = %v, want %v", k, i, got, w)
			}
		}
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
}

// TestBatchSteadyStateAllocs pins the zero-alloc contract of the warm
// Reset/Append cycle.
func TestBatchSteadyStateAllocs(t *testing.T) {
	lig := testLigand(t, "0E6")
	box := Box{Center: chem.V(0, 0, 0), Size: chem.V(10, 10, 10)}
	r := rand.New(rand.NewSource(5))
	ws := NewWorkspace(lig)
	b := ws.Batch()
	poses := make([]Pose, 50)
	for i := range poses {
		poses[i] = RandomPose(r, box, lig.NumTorsions())
	}
	// Warm: reach the high-water mark and the scratch buffers once.
	b.Reset()
	for _, p := range poses {
		b.Append(p)
	}
	_ = b.Scratch(len(poses))
	_ = b.Hits(256)
	_ = ws.Floats(len(poses))
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for _, p := range poses {
			b.Append(p)
		}
		_ = b.Scratch(len(poses))
		_ = b.Hits(256)
		_ = ws.Floats(len(poses))
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch loop allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkBatchAppend50(b *testing.B) {
	lig := testLigand(b, "0E6")
	box := Box{Center: chem.V(0, 0, 0), Size: chem.V(10, 10, 10)}
	r := rand.New(rand.NewSource(5))
	poses := make([]Pose, 50)
	for i := range poses {
		poses[i] = RandomPose(r, box, lig.NumTorsions())
	}
	batch := NewBatch(lig, len(poses))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for _, p := range poses {
			batch.Append(p)
		}
	}
}
