package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// NewHandler exposes a Manager over HTTP/JSON:
//
//	POST   /campaigns            submit a Spec            → {"id": N, "state": "QUEUED"}
//	GET    /campaigns            list all campaigns       → [Status, ...]
//	GET    /campaigns/{id}       one campaign's status    → Status (with live prov problem count)
//	DELETE /campaigns/{id}       cancel                   → {"id": N, "state": "..."}
//	POST   /campaigns/{id}/query provenance SQL           → {"columns": [...], "rows": [[...]]}
//	GET    /healthz              liveness + pool occupancy
//
// The query endpoint takes {"sql": "..."} in the body (or a ?sql=
// parameter for curl convenience) and is the served twin of the
// one-shot CLI's -query flag, per campaign. Handlers are synchronous
// — they spawn no goroutines — so the server's lifetime owns no
// hidden work; long-running campaign execution lives on the
// Manager's own run goroutines.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		id, err := m.Submit(spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": StateQueued})
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		st, err := m.Status(id)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		state, err := m.Cancel(id)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": state})
	})
	mux.HandleFunc("POST /campaigns/{id}/query", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		var req struct {
			SQL string `json:"sql"`
		}
		if r.Body != nil {
			//lint:ignore discarderr an empty or non-JSON body falls through to ?sql=
			_ = json.NewDecoder(r.Body).Decode(&req)
		}
		if req.SQL == "" {
			req.SQL = r.URL.Query().Get("sql")
		}
		if req.SQL == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing sql (body {\"sql\": ...} or ?sql=)"))
			return
		}
		res, err := m.Query(id, req.SQL)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		rows := make([][]string, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = make([]string, len(r))
			for j, v := range r {
				rows[i][j] = fmt.Sprint(v)
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"columns": res.Columns, "rows": rows})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		cap, inUse, accounts := m.pool.Occupancy()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":   true,
			"pool": PoolStatus{Capacity: cap, InUse: inUse, Accounts: accounts},
		})
	})
	return mux
}

func pathID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad campaign id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func errStatus(err error) int {
	if errors.Is(err, ErrNotFound) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore discarderr the status line is already written; a client that hung up gets nothing
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
