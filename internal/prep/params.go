package prep

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/chem"
	"repro/internal/data"
)

// Program selects the docking engine for a pair, the output of
// SciDock's activity 6 (docking filter).
type Program string

// Docking programs.
const (
	ProgramAD4  Program = "autodock4"
	ProgramVina Program = "vina"
)

// FilterDocking is SciDock activity 6: the in-house python script that
// splits receptors by size. Small receptors dock with AutoDock 4,
// large (and more flexible) ones with Vina, per §IV.A.
func FilterDocking(info data.ReceptorInfo) Program {
	if info.Class == data.SmallReceptor {
		return ProgramAD4
	}
	return ProgramVina
}

// GPF is the Grid Parameter File of activity 4: everything AutoGrid
// needs to build the coordinate maps.
type GPF struct {
	Receptor   string          // receptor PDBQT file name
	Ligand     string          // ligand PDBQT file name
	Types      []chem.AtomType // ligand atom types (one map each)
	NPts       [3]int          // grid points per dimension (even, as AutoGrid requires)
	Spacing    float64         // Å between grid points
	Center     chem.Vec3       // grid centre
	Dielectric float64         // distance-dependent dielectric factor
}

// DefaultGPF derives grid parameters from the prepared receptor and
// ligand: the grid covers the pocket bounding box plus clearance for
// ligand rotation, exactly what MGLTools' prepare_gpf4.py computes.
func DefaultGPF(receptor *chem.Molecule, lig *PreparedLigand, spacing float64) GPF {
	if spacing <= 0 {
		spacing = 0.375 // AutoGrid default
	}
	min, max := chem.BoundingBox(receptor.Positions())
	center := min.Lerp(max, 0.5)
	// Ligand maximum extent from its centroid, for clearance.
	lc := lig.Mol.Centroid()
	var maxExt float64
	for _, p := range lig.Mol.Positions() {
		if d := p.Dist(lc); d > maxExt {
			maxExt = d
		}
	}
	span := max.Sub(min)
	largest := span.X
	if span.Y > largest {
		largest = span.Y
	}
	if span.Z > largest {
		largest = span.Z
	}
	extent := largest + 2*maxExt + 4 // Å of padding
	n := int(extent/spacing) + 1
	if n%2 == 1 {
		n++ // AutoGrid requires even npts
	}
	if n > 126 {
		n = 126 // AutoGrid's hard maximum
	}
	types := lig.Mol.AtomTypes()
	return GPF{
		Receptor:   receptor.Name + ".pdbqt",
		Ligand:     lig.Mol.Name + ".pdbqt",
		Types:      types,
		NPts:       [3]int{n, n, n},
		Spacing:    spacing,
		Center:     center,
		Dielectric: -0.1465, // AutoGrid default (distance-dependent)
	}
}

// WriteGPF emits the grid parameter file in AutoGrid's keyword format.
func WriteGPF(w io.Writer, g *GPF) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "npts %d %d %d\n", g.NPts[0], g.NPts[1], g.NPts[2])
	fmt.Fprintf(bw, "gridfld %s.maps.fld\n", strings.TrimSuffix(g.Receptor, ".pdbqt"))
	fmt.Fprintf(bw, "spacing %.3f\n", g.Spacing)
	fmt.Fprintf(bw, "receptor_types %s\n", "A C HD N NA OA SA S")
	fmt.Fprintf(bw, "ligand_types %s\n", joinTypes(g.Types))
	fmt.Fprintf(bw, "receptor %s\n", g.Receptor)
	fmt.Fprintf(bw, "gridcenter %.3f %.3f %.3f\n", g.Center.X, g.Center.Y, g.Center.Z)
	fmt.Fprintf(bw, "smooth 0.5\n")
	for _, t := range g.Types {
		fmt.Fprintf(bw, "map %s.%s.map\n", strings.TrimSuffix(g.Receptor, ".pdbqt"), t)
	}
	fmt.Fprintf(bw, "elecmap %s.e.map\n", strings.TrimSuffix(g.Receptor, ".pdbqt"))
	fmt.Fprintf(bw, "dsolvmap %s.d.map\n", strings.TrimSuffix(g.Receptor, ".pdbqt"))
	fmt.Fprintf(bw, "dielectric %.4f\n", g.Dielectric)
	return bw.Flush()
}

// ParseGPF reads a grid parameter file written by WriteGPF.
func ParseGPF(r io.Reader, name string) (*GPF, error) {
	g := &GPF{Spacing: 0.375, Dielectric: -0.1465}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := strings.Fields(sc.Text())
		if len(f) == 0 || strings.HasPrefix(f[0], "#") {
			continue
		}
		switch f[0] {
		case "npts":
			if len(f) != 4 {
				return nil, fmt.Errorf("prep: gpf %q line %d: npts needs 3 values", name, lineNo)
			}
			for i := 0; i < 3; i++ {
				v, err := strconv.Atoi(f[i+1])
				if err != nil {
					return nil, fmt.Errorf("prep: gpf %q line %d: bad npts: %w", name, lineNo, err)
				}
				g.NPts[i] = v
			}
		case "spacing":
			if len(f) != 2 {
				return nil, fmt.Errorf("prep: gpf %q line %d: spacing needs 1 value", name, lineNo)
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fmt.Errorf("prep: gpf %q line %d: bad spacing: %w", name, lineNo, err)
			}
			g.Spacing = v
		case "receptor":
			if len(f) == 2 {
				g.Receptor = f[1]
			}
		case "ligand_types":
			for _, t := range f[1:] {
				g.Types = append(g.Types, chem.AtomType(t))
			}
		case "gridcenter":
			if len(f) != 4 {
				return nil, fmt.Errorf("prep: gpf %q line %d: gridcenter needs 3 values", name, lineNo)
			}
			var c [3]float64
			for i := 0; i < 3; i++ {
				v, err := strconv.ParseFloat(f[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("prep: gpf %q line %d: bad gridcenter: %w", name, lineNo, err)
				}
				c[i] = v
			}
			g.Center = chem.V(c[0], c[1], c[2])
		case "dielectric":
			if len(f) == 2 {
				if v, err := strconv.ParseFloat(f[1], 64); err == nil {
					g.Dielectric = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prep: gpf %q: %w", name, err)
	}
	if g.NPts[0] == 0 || g.Receptor == "" {
		return nil, fmt.Errorf("prep: gpf %q missing npts or receptor", name)
	}
	return g, nil
}

func joinTypes(ts []chem.AtomType) string {
	ss := make([]string, len(ts))
	for i, t := range ts {
		ss[i] = string(t)
	}
	return strings.Join(ss, " ")
}

// DPF is the Docking Parameter File of activity 7a: the AutoDock 4
// Lamarckian GA configuration.
type DPF struct {
	Ligand     string
	FLD        string // grid field file
	Runs       int    // ga_run
	PopSize    int    // ga_pop_size
	Gens       int    // ga_num_generations
	Evals      int    // ga_num_evals cap
	MutRate    float64
	CrossRate  float64
	LocalIts   int // Solis-Wets iterations per local search
	LocalRate  float64
	RandomSeed int64
}

// DefaultDPF returns the AD4 defaults scaled to this reproduction's
// reduced search effort (documented in DESIGN.md §2).
func DefaultDPF(ligand string, fld string, seed int64) DPF {
	return DPF{
		Ligand: ligand, FLD: fld,
		Runs: 10, PopSize: 50, Gens: 42, Evals: 25000,
		MutRate: 0.02, CrossRate: 0.8,
		LocalIts: 30, LocalRate: 0.06,
		RandomSeed: seed,
	}
}

// WriteDPF emits the docking parameter file in AutoDock's format.
func WriteDPF(w io.Writer, d *DPF) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "autodock_parameter_version 4.2\n")
	fmt.Fprintf(bw, "seed %d\n", d.RandomSeed)
	fmt.Fprintf(bw, "fld %s\n", d.FLD)
	fmt.Fprintf(bw, "move %s\n", d.Ligand)
	fmt.Fprintf(bw, "ga_pop_size %d\n", d.PopSize)
	fmt.Fprintf(bw, "ga_num_generations %d\n", d.Gens)
	fmt.Fprintf(bw, "ga_num_evals %d\n", d.Evals)
	fmt.Fprintf(bw, "ga_mutation_rate %.3f\n", d.MutRate)
	fmt.Fprintf(bw, "ga_crossover_rate %.3f\n", d.CrossRate)
	fmt.Fprintf(bw, "sw_max_its %d\n", d.LocalIts)
	fmt.Fprintf(bw, "ls_search_freq %.3f\n", d.LocalRate)
	fmt.Fprintf(bw, "ga_run %d\n", d.Runs)
	fmt.Fprintf(bw, "analysis\n")
	return bw.Flush()
}

// ParseDPF reads a docking parameter file written by WriteDPF.
func ParseDPF(r io.Reader, name string) (*DPF, error) {
	d := &DPF{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := strings.Fields(sc.Text())
		if len(f) < 2 {
			continue
		}
		var err error
		switch f[0] {
		case "seed":
			d.RandomSeed, err = strconv.ParseInt(f[1], 10, 64)
		case "fld":
			d.FLD = f[1]
		case "move":
			d.Ligand = f[1]
		case "ga_pop_size":
			d.PopSize, err = strconv.Atoi(f[1])
		case "ga_num_generations":
			d.Gens, err = strconv.Atoi(f[1])
		case "ga_num_evals":
			d.Evals, err = strconv.Atoi(f[1])
		case "ga_mutation_rate":
			d.MutRate, err = strconv.ParseFloat(f[1], 64)
		case "ga_crossover_rate":
			d.CrossRate, err = strconv.ParseFloat(f[1], 64)
		case "sw_max_its":
			d.LocalIts, err = strconv.Atoi(f[1])
		case "ls_search_freq":
			d.LocalRate, err = strconv.ParseFloat(f[1], 64)
		case "ga_run":
			d.Runs, err = strconv.Atoi(f[1])
		}
		if err != nil {
			return nil, fmt.Errorf("prep: dpf %q line %d: %w", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prep: dpf %q: %w", name, err)
	}
	if d.Ligand == "" || d.Runs == 0 {
		return nil, fmt.Errorf("prep: dpf %q missing move/ga_run", name)
	}
	return d, nil
}

// VinaConfig is the configuration file of activity 7b: the box and
// search parameters for AutoDock Vina.
type VinaConfig struct {
	Receptor       string
	Ligand         string
	Center         chem.Vec3
	Size           chem.Vec3 // box edge lengths, Å
	Exhaustiveness int
	NumModes       int
	Seed           int64
}

// DefaultVinaConfig derives the Vina box from the grid parameter file,
// as SciDock's custom python script does.
func DefaultVinaConfig(g *GPF, ligand string, seed int64) VinaConfig {
	return VinaConfig{
		Receptor: g.Receptor,
		Ligand:   ligand,
		Center:   g.Center,
		Size: chem.V(
			float64(g.NPts[0])*g.Spacing,
			float64(g.NPts[1])*g.Spacing,
			float64(g.NPts[2])*g.Spacing,
		),
		Exhaustiveness: 8,
		NumModes:       9,
		Seed:           seed,
	}
}

// WriteVinaConfig emits the config in Vina's key = value format.
func WriteVinaConfig(w io.Writer, c *VinaConfig) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "receptor = %s\n", c.Receptor)
	fmt.Fprintf(bw, "ligand = %s\n", c.Ligand)
	fmt.Fprintf(bw, "center_x = %.3f\ncenter_y = %.3f\ncenter_z = %.3f\n",
		c.Center.X, c.Center.Y, c.Center.Z)
	fmt.Fprintf(bw, "size_x = %.3f\nsize_y = %.3f\nsize_z = %.3f\n",
		c.Size.X, c.Size.Y, c.Size.Z)
	fmt.Fprintf(bw, "exhaustiveness = %d\n", c.Exhaustiveness)
	fmt.Fprintf(bw, "num_modes = %d\n", c.NumModes)
	fmt.Fprintf(bw, "seed = %d\n", c.Seed)
	return bw.Flush()
}

// ParseVinaConfig reads a Vina configuration file.
func ParseVinaConfig(r io.Reader, name string) (*VinaConfig, error) {
	c := &VinaConfig{Exhaustiveness: 8, NumModes: 9}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			continue
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		var err error
		switch key {
		case "receptor":
			c.Receptor = val
		case "ligand":
			c.Ligand = val
		case "center_x":
			c.Center.X, err = strconv.ParseFloat(val, 64)
		case "center_y":
			c.Center.Y, err = strconv.ParseFloat(val, 64)
		case "center_z":
			c.Center.Z, err = strconv.ParseFloat(val, 64)
		case "size_x":
			c.Size.X, err = strconv.ParseFloat(val, 64)
		case "size_y":
			c.Size.Y, err = strconv.ParseFloat(val, 64)
		case "size_z":
			c.Size.Z, err = strconv.ParseFloat(val, 64)
		case "exhaustiveness":
			c.Exhaustiveness, err = strconv.Atoi(val)
		case "num_modes":
			c.NumModes, err = strconv.Atoi(val)
		case "seed":
			c.Seed, err = strconv.ParseInt(val, 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("prep: vina config %q line %d: %w", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prep: vina config %q: %w", name, err)
	}
	if c.Receptor == "" || c.Ligand == "" {
		return nil, fmt.Errorf("prep: vina config %q missing receptor/ligand", name)
	}
	return c, nil
}
