package vina

import (
	"math"
	"sort"

	"repro/internal/chem"
	"repro/internal/dock"
	"repro/internal/dock/tables"
)

// Pinned error bound of the fast path: for every pose,
// |ScoreBatchFast − Score| ≤ FastAbsTol + FastRelTol·|Score|.
// The components are the coarser fast-table interpolation, the float32
// node rounding, the float32 per-pose accumulation, and the rigid-pair
// fold (same-unit distances move by ~1e-12 Å² of rotation round-off).
// The absolute term is sized to absorb the deep-clash regime
// (TestFastAtBound's r² < 0.01 Å² band): a random pose can drive an
// atom pair to near-zero separation, where each overlapping pair
// contributes up to ~0.02 + 5e-3·|pair| of table error but also ≥ +10
// to the exact energy — so either the relative term covers it, or (if
// attractive terms cancel the clash) the absolute term must, which is
// why FastAbsTol is far wider than the smooth-regime table envelope.
// The dense+randomized sweep in TestVinaFastPathBound measures the
// worst case at ≤ half of this envelope; the search screens rely on
// the envelope holding, and every accepted energy is exact-rescored,
// so even an excursion could only cost extra exact evaluations on the
// reject side it provably does not take (see dock.PrecisionTolerance).
const (
	FastAbsTol = 0.08 // kcal/mol
	FastRelTol = 5e-3
)

// FastMargin is the screening slack at incumbent energy e: a candidate
// whose fast score exceeds e + FastMargin(e) provably cannot beat e
// exactly (FastRelTol < 1 makes e ↦ e + FastRelTol·|e| monotone).
func FastMargin(e float64) float64 {
	return FastAbsTol + FastRelTol*math.Abs(e)
}

// fastIntraPair is one cross-unit intramolecular pair of the fast
// path: the atom indices and its table's offset in the merged bank.
type fastIntraPair struct {
	i, j int32
	off  int32
}

// fastState is the lazily built precomputation of the fast path: the
// merged float32 table bank (Scorer's ~40 distinct 164 KB inter+intra
// tables subsample to a ~1.4 MB shared bank), per-ligand-atom offset
// rows replacing the node-array rows, the cross-unit intramolecular
// pairs sorted by bank offset, and the folded same-unit constant.
type fastState struct {
	bank       []float32
	interOffs  [][]int32 // per ligand atom: receptor type index → bank offset
	intraVar   []fastIntraPair
	rigidConst float64 // exact-table intra energy of the same-unit pairs
}

// cutBoundaryEps guards the rigid fold: a same-unit pair whose base
// separation sits within this band of the cutoff stays per-pose, so
// rotation round-off can never flip its in-cutoff decision against the
// folded constant.
const cutBoundaryEps = 1e-6

func (s *Scorer) ensureFast() *fastState {
	s.fastOnce.Do(s.buildFast)
	return s.fast
}

func (s *Scorer) buildFast() {
	f := &fastState{}
	// Collect every table the scorer can touch, in deterministic
	// first-seen order (inter rows by atom then receptor type, intra
	// pairs in table order); the bank deduplicates shared type pairs.
	var tbls []*tables.Radial
	for _, row := range s.interTbl {
		tbls = append(tbls, row...)
	}
	nInter := len(tbls)
	for _, pr := range s.intraTbl {
		tbls = append(tbls, pr.tbl)
	}
	bank, offs := tables.NewFastBank(tbls)
	f.bank = bank
	at := 0
	for _, row := range s.interTbl {
		if len(row) == 0 {
			f.interOffs = append(f.interOffs, nil) // hydrogen: never scored
			continue
		}
		f.interOffs = append(f.interOffs, offs[at:at+len(row)])
		at += len(row)
	}

	// Same-unit pairs keep their separation under every pose, so their
	// contribution folds into one constant — evaluated with the EXACT
	// tables at the base geometry, so the fold itself adds no table
	// error. Cross-unit pairs stay per-pose on the fast bank.
	unit := s.Lig.Tree.RigidUnits(s.Lig.Mol.NumAtoms())
	base := s.Lig.Coords(dock.Pose{
		Orientation: chem.QuatIdentity,
		Torsions:    make([]float64, s.Lig.NumTorsions()),
	})
	const cut2 = cutoff * cutoff
	for k, pr := range s.intraTbl {
		r2 := base[pr.i].Dist2(base[pr.j])
		if unit[pr.i] == unit[pr.j] && math.Abs(r2-cut2) > cutBoundaryEps {
			if r2 <= cut2 {
				f.rigidConst += pr.tbl.At2(r2)
			}
			continue
		}
		f.intraVar = append(f.intraVar, fastIntraPair{i: pr.i, j: pr.j, off: offs[nInter+k]})
	}
	// Offset order walks the bank monotonically (pairs sharing a table
	// run back to back); the deterministic tiebreak keeps the float32
	// accumulation sequence a pure function of the ligand.
	sort.Slice(f.intraVar, func(a, b int) bool {
		pa, pb := f.intraVar[a], f.intraVar[b]
		if pa.off != pb.off {
			return pa.off < pb.off
		}
		if pa.i != pb.i {
			return pa.i < pb.i
		}
		return pa.j < pb.j
	})
	s.fast = f
}

// ScoreBatchFast scores every pose of the batch through the
// tolerance-bounded fast path, writing slot p's affinity into out[p]:
// the same two-pass gather/evaluate structure as ScoreBatch, but
// reading the compact merged float32 bank, accumulating per-pose sums
// in float32, skipping the same-unit intramolecular pairs in favour of
// the folded constant, and combining in float64 at the end.
//
// For every pose, |out[p] − Score(pose)| ≤ FastAbsTol +
// FastRelTol·|Score(pose)| (pinned by TestVinaFastPathBound), and the
// value is a pure function of the pose — the per-pose accumulation
// never mixes lanes, so batch size and chunking cannot change it
// (pinned by TestVinaFastPathBatchInvariant).
//
// Safe for concurrent use after the first call on any goroutine has
// returned; the lazy precomputation itself is sync.Once-guarded, so
// concurrent first calls are also safe.
//
//unit: out=kcal/mol
func (s *Scorer) ScoreBatchFast(b *dock.Batch, out []float64) {
	f := s.ensureFast()
	n := b.Len()
	if n == 0 {
		return
	}
	out = out[:n]
	xs, ys, zs := b.SoA()
	stride := b.Stride()
	acc := b.Scratch32(2 * n)
	inter, intra := acc[:n], acc[n:]
	hits := b.Hits(len(s.packed.Atoms()))
	bank := f.bank
	const cut2 = cutoff * cutoff

	// Active window: share the anchor gather across the window's poses
	// exactly as ScoreBatch does. The filtered hit sequence is the one
	// Gather would emit, so the float32 accumulation — and with it the
	// pose-purity that ScoreFast1 and the batch-invariance pin rely on —
	// is unchanged; escaped poses take the per-pose gather.
	anchor, bound, win := b.Window()
	var valid []bool
	var cands []dock.PackedAtom
	var coffs []int32
	if win {
		valid = b.WindowValid()
		cands, coffs = s.windowGather(b, anchor, bound)
	}

	for i := 0; i < stride; i++ {
		if s.ligIsH[i] {
			continue
		}
		offs := f.interOffs[i]
		var span []dock.PackedAtom
		if win {
			span = cands[coffs[i]:coffs[i+1]]
		}
		for p := 0; p < n; p++ {
			a := p*stride + i
			var m int
			if win && valid[p] {
				m = dock.FilterSpan(span, xs[a], ys[a], zs[a], cut2, hits)
			} else {
				m = s.packed.Gather(chem.V(xs[a], ys[a], zs[a]), cut2, hits)
			}
			// Four independent accumulators: the evaluation loop is
			// latency-bound on the float32 add chain (one dependent add
			// per hit), so splitting the sum quadruples the throughput.
			// The summation order is a pure function of the hit
			// sequence, which is pose-pure, so batch invariance holds.
			var e0, e1, e2, e3 float32
			k := 0
			for ; k+3 < m; k += 4 {
				e0 += tables.FastAt(bank, offs[hits[k].Cls], hits[k].R2)
				e1 += tables.FastAt(bank, offs[hits[k+1].Cls], hits[k+1].R2)
				e2 += tables.FastAt(bank, offs[hits[k+2].Cls], hits[k+2].R2)
				e3 += tables.FastAt(bank, offs[hits[k+3].Cls], hits[k+3].R2)
			}
			for ; k < m; k++ {
				e0 += tables.FastAt(bank, offs[hits[k].Cls], hits[k].R2)
			}
			inter[p] += (e0 + e1) + (e2 + e3)
		}
	}

	if win {
		// Dead pairs (anchor separation beyond cutoff + 2·bound) are
		// skipped for valid poses; they contribute no term, so the
		// per-pose float32 sequence over the surviving pairs is the full
		// loop's. Escaped poses walk the full list in order.
		live := s.windowIntraLiveFast(b, f, anchor, bound)
		for _, kk := range live {
			pr := &f.intraVar[kk]
			i, j := int(pr.i), int(pr.j)
			off := pr.off
			for p := 0; p < n; p++ {
				if !valid[p] {
					continue
				}
				at := p * stride
				dx := xs[at+i] - xs[at+j]
				dy := ys[at+i] - ys[at+j]
				dz := zs[at+i] - zs[at+j]
				if r2 := dx*dx + dy*dy + dz*dz; r2 <= cut2 {
					intra[p] += tables.FastAt(bank, off, r2)
				}
			}
		}
		for p := 0; p < n; p++ {
			if valid[p] {
				continue
			}
			at := p * stride
			for t := range f.intraVar {
				pr := &f.intraVar[t]
				i, j := int(pr.i), int(pr.j)
				dx := xs[at+i] - xs[at+j]
				dy := ys[at+i] - ys[at+j]
				dz := zs[at+i] - zs[at+j]
				if r2 := dx*dx + dy*dy + dz*dz; r2 <= cut2 {
					intra[p] += tables.FastAt(bank, pr.off, r2)
				}
			}
		}
	} else {
		for _, pr := range f.intraVar {
			i, j := int(pr.i), int(pr.j)
			off := pr.off
			for p := 0; p < n; p++ {
				at := p * stride
				dx := xs[at+i] - xs[at+j]
				dy := ys[at+i] - ys[at+j]
				dz := zs[at+i] - zs[at+j]
				if r2 := dx*dx + dy*dy + dz*dz; r2 <= cut2 {
					intra[p] += tables.FastAt(bank, off, r2)
				}
			}
		}
	}

	for p := 0; p < n; p++ {
		out[p] = float64(inter[p])/s.rotFactor +
			intraWeight*(float64(intra[p])+f.rigidConst-s.intraRef)
	}
}

// ScoreFast1 runs the fast kernel on a single pose through the given
// batch, which it leaves EMPTY — callers interleaving screens with
// their own batch fills (the search loops do) rely on the batch
// coming back reset. Because the fast accumulation never mixes lanes,
// the value is identical to the pose's slot in any ScoreBatchFast
// window — the search's per-pose screens and its batched screens
// agree exactly.
func (s *Scorer) ScoreFast1(b *dock.Batch, p dock.Pose) float64 {
	b.Reset()
	b.Append(p)
	var out [1]float64
	s.ScoreBatchFast(b, out[:])
	b.Reset()
	return out[0]
}
