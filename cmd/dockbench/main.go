// Command dockbench regenerates the paper's evaluation artifacts:
// Tables 1-3 and Figures 5-11 of "Exploring Large Scale
// Receptor-Ligand Pairs in Molecular Docking Workflows in HPC Clouds"
// (IPPS 2014).
//
//	dockbench -exp all          # every table and figure (minutes)
//	dockbench -exp f7           # the TET scalability curve
//	dockbench -exp t3 -quick    # reduced workload (seconds)
//	dockbench -exp kernels      # docking kernel microbenchmarks,
//	                            # also written to -benchout as JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: t1, t2, t3, f5..f11, kernels or all")
		quick    = flag.Bool("quick", false, "reduced workloads (for smoke runs)")
		benchout = flag.String("benchout", "BENCH_kernels.json", "JSON output path for -exp kernels (empty to skip)")
	)
	flag.Parse()
	s := &experiments.Suite{Quick: *quick}
	if *exp == "kernels" {
		rep, err := s.Kernels()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dockbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if *benchout != "" {
			js, err := rep.JSON()
			if err == nil {
				err = os.WriteFile(*benchout, append(js, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "dockbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *benchout)
		}
		return
	}
	out, err := s.ByName(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dockbench:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
