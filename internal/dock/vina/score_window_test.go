package vina

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/dock"
)

// windowPoses builds a search-shaped window population: poses[0] is a
// random incumbent and the rest are Solis-Wets-scale perturbations of
// it. The returned bound is the actual maximum per-atom displacement
// from the incumbent's coordinates (plus an epsilon), so every pose is
// admissible by construction.
func windowPoses(lig *dock.Ligand, n int, seed int64) ([]dock.Pose, float64) {
	r := rand.New(rand.NewSource(seed))
	poses := make([]dock.Pose, n)
	poses[0] = dock.Pose{Torsions: make([]float64, lig.NumTorsions())}
	dock.RandomPoseInto(r, &poses[0], dock.Box{Size: chem.V(10, 10, 10)}, lig.NumTorsions())
	for i := 1; i < n; i++ {
		poses[i] = dock.Pose{Torsions: make([]float64, lig.NumTorsions())}
		const rho = 0.15
		dock.PerturbInto(r, &poses[i], poses[0], rho*0.5, rho*0.15)
	}
	anchor := lig.Coords(poses[0])
	d2max := 0.0
	for i := 1; i < n; i++ {
		c := lig.Coords(poses[i])
		for k := range c {
			if d2 := c[k].Dist2(anchor[k]); d2 > d2max {
				d2max = d2
			}
		}
	}
	return poses, math.Sqrt(d2max) + 1e-9
}

// windowPairs sweeps the reference pair and the L2-overflow pair so the
// shared-gather contract is pinned on both workload shapes.
var windowPairs = [][2]string{
	{"2HHN", "0E6"},
	{data.LargeReceptorCode, data.LargeLigandCode},
}

// TestWindowScoreBatchMatchesPerPose pins the tentpole 0-ULP contract:
// with an active window whose bound holds, the shared-gather ScoreBatch
// equals the per-pose exact Score bit for bit across batch sizes — on
// the reference pair and on the large pair.
func TestWindowScoreBatchMatchesPerPose(t *testing.T) {
	for _, pair := range windowPairs {
		rec, lig := setupPair(t, pair[0], pair[1])
		s, err := NewScorer(rec, lig)
		if err != nil {
			t.Fatal(err)
		}
		ws := dock.NewWorkspace(lig)
		for _, bs := range []int{1, 7, 64} {
			poses, bound := windowPoses(lig, bs, int64(300+bs))
			b := ws.Batch()
			b.SetWindow(poses[0])
			b.SetWindowBound(bound)
			b.Reset()
			for _, p := range poses {
				b.Append(p)
			}
			for k, ok := range b.WindowValid() {
				if !ok {
					t.Fatalf("%s batch %d: pose %d rejected despite actual-displacement bound", pair[1], bs, k)
				}
			}
			out := ws.Floats(bs)
			s.ScoreBatch(b, out)
			for k, p := range poses {
				if want := s.Score(ws.Coords(p)); out[k] != want {
					t.Fatalf("%s/%s batch %d slot %d: windowed ScoreBatch %.17g != Score %.17g",
						pair[0], pair[1], bs, k, out[k], want)
				}
			}
			b.ClearWindow()
		}
	}
}

// TestWindowScoreBatchFastInvariant pins the fast path's two window
// contracts: the windowed fast values are bit-identical to the
// windowless fast values (the shared gather and the live-pair pruning
// are invisible at the bit level), and both stay inside the screening
// envelope around the exact energy.
func TestWindowScoreBatchFastInvariant(t *testing.T) {
	for _, pair := range windowPairs {
		rec, lig := setupPair(t, pair[0], pair[1])
		s, err := NewScorer(rec, lig)
		if err != nil {
			t.Fatal(err)
		}
		ws := dock.NewWorkspace(lig)
		for _, bs := range []int{1, 7, 64} {
			poses, bound := windowPoses(lig, bs, int64(400+bs))
			b := ws.Batch()
			b.Reset()
			for _, p := range poses {
				b.Append(p)
			}
			plain := make([]float64, bs)
			s.ScoreBatchFast(b, plain)
			b.SetWindow(poses[0])
			b.SetWindowBound(bound)
			b.Reset()
			for _, p := range poses {
				b.Append(p)
			}
			win := ws.Floats(bs)
			s.ScoreBatchFast(b, win)
			for k, p := range poses {
				if win[k] != plain[k] {
					t.Fatalf("%s batch %d slot %d: windowed fast %.17g != windowless fast %.17g",
						pair[1], bs, k, win[k], plain[k])
				}
				exact := s.Score(ws.Coords(p))
				if err := math.Abs(win[k] - exact); err > 0.5*FastMargin(exact) {
					t.Fatalf("%s batch %d slot %d: |fast-exact| = %.3g beyond half-envelope %.3g",
						pair[1], bs, k, err, 0.5*FastMargin(exact))
				}
			}
			b.ClearWindow()
		}
	}
}

// TestWindowBoundViolationFallsBack plants poses that escape a
// deliberately understated bound and pins the fallback contract: the
// escapes are flagged invalid, routed through the per-pose exact
// gather, and the whole batch — valid and invalid slots alike — stays
// byte-identical to the per-pose path in both precision modes.
func TestWindowBoundViolationFallsBack(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	ws := dock.NewWorkspace(lig)
	poses, bound := windowPoses(lig, 12, 17)
	// Two escapes: a gross translation and a marginal one just past the
	// understated bound.
	esc := poses[0].Clone()
	esc.Translation = esc.Translation.Add(chem.V(5, 0, 0))
	poses = append(poses, esc)
	near := poses[0].Clone()
	near.Translation = near.Translation.Add(chem.V(bound*1.5, 0, 0))
	poses = append(poses, near)
	b := ws.Batch()
	b.SetWindow(poses[0])
	b.SetWindowBound(bound)
	b.Reset()
	for _, p := range poses {
		b.Append(p)
	}
	valid := b.WindowValid()
	if valid[len(poses)-1] || valid[len(poses)-2] {
		t.Fatalf("escaped poses admitted: valid = %v", valid)
	}
	nInvalid := 0
	for _, ok := range valid {
		if !ok {
			nInvalid++
		}
	}
	if nInvalid != 2 {
		t.Fatalf("expected exactly the 2 planted escapes to be invalid, got %d (%v)", nInvalid, valid)
	}
	out := ws.Floats(len(poses))
	s.ScoreBatch(b, out)
	for k, p := range poses {
		if want := s.Score(ws.Coords(p)); out[k] != want {
			t.Fatalf("slot %d (valid=%v): fallback ScoreBatch %.17g != Score %.17g",
				k, valid[k], out[k], want)
		}
	}
	// Fast path under the same violated window must equal windowless fast.
	fastWin := make([]float64, len(poses))
	s.ScoreBatchFast(b, fastWin)
	b.ClearWindow()
	b.Reset()
	for _, p := range poses {
		b.Append(p)
	}
	fastPlain := make([]float64, len(poses))
	s.ScoreBatchFast(b, fastPlain)
	for k := range poses {
		if fastWin[k] != fastPlain[k] {
			t.Fatalf("slot %d: fast under violated window %.17g != windowless fast %.17g",
				k, fastWin[k], fastPlain[k])
		}
	}
}

// benchWindowBatch measures the full windowed loop (window setup,
// refill, kernel) on the named pair — the shape the MaxBatch screens
// run in steady state.
func benchWindowBatch(b *testing.B, recCode, ligCode string, fast bool) {
	rec, lig := setupPair(b, recCode, ligCode)
	s, err := NewScorer(rec, lig)
	if err != nil {
		b.Fatal(err)
	}
	ws := dock.NewWorkspace(lig)
	const batch = 50
	poses, bound := windowPoses(lig, batch, 7)
	bt := ws.Batch()
	out := ws.Floats(batch)
	kernel := s.ScoreBatch
	if fast {
		kernel = s.ScoreBatchFast
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.SetWindow(poses[0])
		bt.SetWindowBound(bound)
		bt.Reset()
		for _, p := range poses {
			bt.Append(p)
		}
		kernel(bt, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/pose")
	bt.ClearWindow()
}

func BenchmarkWindowScoreBatchLarge50(b *testing.B) {
	benchWindowBatch(b, data.LargeReceptorCode, data.LargeLigandCode, false)
}

func BenchmarkWindowScoreBatchFastLarge50(b *testing.B) {
	benchWindowBatch(b, data.LargeReceptorCode, data.LargeLigandCode, true)
}

// TestWindowScoreBatchZeroAllocs pins the steady-state allocation
// contract of the full windowed loop: set the window, refill, score
// exact and fast — zero heap allocations once the caches hit their
// high-water mark.
func TestWindowScoreBatchZeroAllocs(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	ws := dock.NewWorkspace(lig)
	poses, bound := windowPoses(lig, 50, 7)
	b := ws.Batch()
	out := ws.Floats(len(poses))
	run := func() {
		b.SetWindow(poses[0])
		b.SetWindowBound(bound)
		b.Reset()
		for _, p := range poses {
			b.Append(p)
		}
		s.ScoreBatch(b, out)
		s.ScoreBatchFast(b, out)
	}
	run() // warm caches to the high-water mark
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("steady-state windowed loop allocates %.1f/op, want 0", allocs)
	}
	b.ClearWindow()
}
