// Command scilint runs scidock's domain-aware static analyzers over
// the module and reports findings with file:line positions.
//
//	scilint [flags] [packages]
//
// Packages follow the go tool's pattern syntax ("./...", "internal/dock",
// import paths); the default is "./...". Exit status: 0 when no
// error-severity finding survives filtering, 1 when at least one does,
// 2 on usage or load failure. Suppress a finding at its source line
// (or the line above) with:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array")
		sarifOut = fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
		severity = fs.String("severity", "warn", "minimum severity to report: warn or error")
		noTests  = fs.Bool("notests", false, "skip _test.go files entirely")
		list     = fs.Bool("list", false, "list registered analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: scilint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s  %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0
	}

	minSev, err := lint.ParseSeverity(*severity)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "scilint: -json and -sarif are mutually exclusive")
		return 2
	}

	pkgs, err := lint.Load(lint.LoadConfig{IncludeTests: !*noTests}, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			fmt.Fprintf(stderr, "scilint: %s: %d type error(s); first: %v\n",
				pkg.Path, len(pkg.TypeErrors), pkg.TypeErrors[0])
			return 2
		}
	}

	diags := lint.Run(pkgs, analyzers)
	filtered := diags[:0]
	for _, d := range diags {
		if d.Severity >= minSev {
			filtered = append(filtered, d)
		}
	}

	switch {
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, analyzers, filtered); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if filtered == nil {
			filtered = []lint.Diagnostic{}
		}
		if err := enc.Encode(filtered); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		cwd, err := os.Getwd()
		if err != nil {
			cwd = "" // fall back to absolute paths in output
		}
		for _, d := range filtered {
			fmt.Fprintf(stdout, "%s: %s %s: %s\n", relPos(cwd, d), d.Severity, d.Analyzer, d.Message)
		}
		if len(filtered) > 0 {
			counts := map[string]int{}
			for _, d := range filtered {
				counts[d.Analyzer]++
			}
			names := make([]string, 0, len(counts))
			for n := range counts {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(stdout, "scilint: %d finding(s):", len(filtered))
			for _, n := range names {
				fmt.Fprintf(stdout, " %s=%d", n, counts[n])
			}
			fmt.Fprintln(stdout)
		}
	}

	for _, d := range filtered {
		if d.Severity == lint.Error {
			return 1
		}
	}
	return 0
}

// relPos renders a position with a path relative to the working
// directory when possible, keeping output stable across machines.
func relPos(cwd string, d lint.Diagnostic) string {
	name := d.Pos.Filename
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d", name, d.Pos.Line, d.Pos.Column)
}
