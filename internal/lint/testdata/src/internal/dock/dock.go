// Package dock is the wildrand scilint fixture. Its directory path
// contains "internal/dock", which puts it on the analyzer's
// deterministic hot-path list: global rand calls and wall-clock reads
// are findings here, while the injected seeded source is not.
package dock

import (
	"math/rand"
	"time"
)

// Jitter draws from the process-global rand source (wildrand, error).
func Jitter() float64 {
	return rand.Float64()
}

// Stamp reads the wall clock in a hot path (wildrand, error).
func Stamp() time.Time {
	return time.Now()
}

// Seeded uses the approved injected-source pattern: constructors are
// exempt, and methods on the local *rand.Rand are invisible to the
// global-source check.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// PoolGlobalRand mirrors the worker-pool shape of the parallel search
// engines but draws from the process-global source inside the worker
// goroutine — non-reproducible across worker counts (wildrand, error).
func PoolGlobalRand(chains int) []float64 {
	out := make([]float64, chains)
	done := make(chan int)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for c := w; c < chains; c += 2 {
				out[c] = rand.Float64()
			}
			done <- w
		}(w)
	}
	<-done
	<-done
	return out
}

// PoolSeededRand is the approved pattern the Vina and AD4 search pools
// use: every chain derives its own rand.Rand from the chain index, so
// trajectories are identical for any worker count (clean).
func PoolSeededRand(seed int64, chains int) []float64 {
	out := make([]float64, chains)
	done := make(chan int)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for c := w; c < chains; c += 2 {
				r := rand.New(rand.NewSource(seed + int64(c)*104729))
				out[c] = r.Float64()
			}
			done <- w
		}(w)
	}
	<-done
	<-done
	return out
}
