package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	s := &Suite{Quick: true}
	out, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"TABLE 1", "TABLE 2", "TABLE 3",
		"FIGURE 5", "FIGURE 6", "FIGURE 7", "FIGURE 8", "FIGURE 9",
		"FIGURE 10", "FIGURE 11",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in combined output", want)
		}
	}
	if !strings.Contains(out, "m3.xlarge") || !strings.Contains(out, "m3.2xlarge") {
		t.Error("Table 1 lacks the instance types")
	}
	if !strings.Contains(out, "2HHN") {
		t.Error("Table 2 lacks receptor codes")
	}
	if !strings.Contains(out, "improvement@32") {
		t.Error("Figure 7 lacks the improvement metric")
	}
	if !strings.Contains(out, ".dlg") {
		t.Error("Figure 11 lacks dlg files")
	}
}

func TestByName(t *testing.T) {
	s := &Suite{Quick: true}
	if _, err := s.ByName("t1"); err != nil {
		t.Errorf("t1: %v", err)
	}
	if _, err := s.ByName("F8"); err != nil {
		t.Errorf("case-insensitive dispatch: %v", err)
	}
	if _, err := s.ByName("f99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSweepMemoized(t *testing.T) {
	s := &Suite{Quick: true}
	a1, _, err := s.sweep()
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := s.sweep()
	if err != nil {
		t.Fatal(err)
	}
	if &a1.Points[0] != &a2.Points[0] {
		t.Error("sweep recomputed instead of memoized")
	}
}

func TestTable3IncludesConsensus(t *testing.T) {
	s := &Suite{Quick: true}
	out, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Spearman", "common pairs", "total FEB(-)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q", want)
		}
	}
}
