package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/prov"
)

// Table3Row is one line of the paper's Table 3: per-ligand docking
// statistics over the 238-receptor sweep.
type Table3Row struct {
	Ligand  string
	Program string
	NegFEB  int     // total number of FEB(-) pairs
	AvgFEB  float64 // kcal/mol, over FEB(-) pairs
	AvgRMSD float64 // Å, over docked pairs
	NDocked int     // pairs that produced a docking result
}

// Table3 mines the campaign's provenance database for the Table 3
// statistics, exactly as the paper derives them from Query-1-style
// SQL over the ddocking extractor table.
func Table3(db *prov.DB, ligands []string) ([]Table3Row, error) {
	var rows []Table3Row
	for _, lig := range ligands {
		for _, program := range []string{"autodock4", "vina"} {
			neg, err := db.Query(fmt.Sprintf(
				`SELECT count(*), avg(feb) FROM ddocking WHERE ligand = '%s' AND program = '%s' AND feb < 0`,
				lig, program))
			if err != nil {
				return nil, err
			}
			all, err := db.Query(fmt.Sprintf(
				`SELECT count(*), avg(rmsd) FROM ddocking WHERE ligand = '%s' AND program = '%s'`,
				lig, program))
			if err != nil {
				return nil, err
			}
			row := Table3Row{Ligand: lig, Program: program}
			row.NegFEB = int(neg.Rows[0][0].(int64))
			if v, ok := neg.Rows[0][1].(float64); ok {
				row.AvgFEB = round2(v)
			}
			row.NDocked = int(all.Rows[0][0].(int64))
			if v, ok := all.Rows[0][1].(float64); ok {
				row.AvgRMSD = round2(v)
			}
			if row.NDocked > 0 {
				rows = append(rows, row)
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Ligand != rows[j].Ligand {
			return rows[i].Ligand < rows[j].Ligand
		}
		return rows[i].Program < rows[j].Program
	})
	return rows, nil
}

// FormatTable3 renders rows in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-10s %12s %18s %14s %8s\n",
		"Ligand", "Program", "FEB(-) count", "Avg FEB (kcal/mol)", "Avg RMSD (Å)", "docked")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-10s %12d %18.1f %14.1f %8d\n",
			r.Ligand, r.Program, r.NegFEB, r.AvgFEB, r.AvgRMSD, r.NDocked)
	}
	return sb.String()
}

// TopInteractions returns the n most favourable receptor-ligand
// interactions across the campaign (the paper's "best three
// interactions" analysis naming 2HHN-0E6, 1S4V-0D6, 1HUC-0D6).
func TopInteractions(db *prov.DB, n int) ([]string, error) {
	res, err := db.Query(fmt.Sprintf(
		`SELECT receptor, ligand, feb FROM ddocking WHERE feb < 0 ORDER BY feb ASC LIMIT %d`, n))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, row := range res.Rows {
		out = append(out, fmt.Sprintf("%s-%s (%.1f kcal/mol)",
			row[0].(string), row[1].(string), row[2].(float64)))
	}
	return out, nil
}
