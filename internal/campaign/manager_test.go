package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parallel"
)

// tinySpec is the test workload: small enough to run in a test, big
// enough to exercise every stage of the chain.
func tinySpec(seed int64) Spec {
	return Spec{
		Receptors: 3, Ligands: 2, Cores: 4,
		Effort: "smoke", Seed: seed,
	}
}

// provBytes snapshots a campaign's provenance database as its exact
// Save byte dump — the strongest equality the store offers.
func provBytes(t *testing.T, c *core.Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Engine.DB.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertCampaignsIdentical requires byte-identical provenance tables
// and deeply equal reports.
func assertCampaignsIdentical(t *testing.T, label string, got, want *core.Campaign) {
	t.Helper()
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Errorf("%s: reports diverge:\n got  %+v\n want %+v", label, got.Reports, want.Reports)
	}
	gb, wb := provBytes(t, got), provBytes(t, want)
	if !bytes.Equal(gb, wb) {
		t.Errorf("%s: provenance dumps diverge (%d vs %d bytes)", label, len(gb), len(wb))
	}
}

// TestManagerSingleCampaignIdentical pins the thin-client contract:
// one campaign through the Manager is byte-identical to the same
// config run one-shot through core.Run.
func TestManagerSingleCampaignIdentical(t *testing.T) {
	spec := tinySpec(7)
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	m := NewManager(parallel.NewPool(2), Limits{})
	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	managed, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	assertCampaignsIdentical(t, "manager vs one-shot", managed, oneShot)

	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Errorf("state = %s, want DONE", st.State)
	}
	if st.Problems < 0 {
		t.Error("status did not run the live provenance problem query")
	}
	if st.Activations == 0 || st.TETSecs <= 0 || st.CostUSD <= 0 {
		t.Errorf("status missing report figures: %+v", st)
	}
	if st.Pool.Accounts != 0 {
		t.Errorf("token account leaked: %d accounts open after completion", st.Pool.Accounts)
	}
}

// TestConcurrentCampaignsMatchSequential is the fairness+determinism
// suite: N campaigns with distinct seeds run concurrently through the
// Manager (sharing one small token pool) and must be byte-identical
// to the same campaigns run sequentially one-shot. Run under -race.
func TestConcurrentCampaignsMatchSequential(t *testing.T) {
	seeds := []int64{11, 23, 31}

	sequential := make([]*core.Campaign, len(seeds))
	for i, seed := range seeds {
		cfg, err := tinySpec(seed).Config()
		if err != nil {
			t.Fatal(err)
		}
		if sequential[i], err = core.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}

	pool := parallel.NewPool(3)
	m := NewManager(pool, Limits{
		MaxRunning: len(seeds), MaxRunningPerTenant: len(seeds), MaxQueuedPerTenant: len(seeds),
	})
	ids := make([]int64, len(seeds))
	for i, seed := range seeds {
		id, err := m.Submit(tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	managed := make([]*core.Campaign, len(seeds))
	errs := make([]error, len(seeds))
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			managed[i], errs[i] = m.Wait(context.Background(), ids[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign seed %d: %v", seeds[i], err)
		}
		assertCampaignsIdentical(t, fmt.Sprintf("seed %d concurrent vs sequential", seeds[i]),
			managed[i], sequential[i])
	}
	if inUse := pool.InUse(); inUse != 0 {
		t.Errorf("pool still has %d tokens out", inUse)
	}
	if _, _, accounts := pool.Occupancy(); accounts != 0 {
		t.Errorf("%d token accounts still open", accounts)
	}
}

// blockingConfig returns a config whose first stage-completion blocks
// until release is closed, signalling started once — a deterministic
// window in which the campaign is running mid-flight.
func blockingConfig(t *testing.T, spec Spec, started chan<- struct{}, release <-chan struct{}) core.Config {
	t.Helper()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	cfg.OnStageComplete = func(engine.StageEvent) {
		once.Do(func() {
			started <- struct{}{}
			<-release
		})
	}
	return cfg
}

// TestManagerCancelRunning cancels a mid-flight campaign and asserts
// the full contract: CANCELLED terminal state, ABORTED provenance
// rows carrying the cancel marker, a partial report, and every CPU
// token back in the pool with the account closed.
func TestManagerCancelRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	spec := tinySpec(5)
	cfg := blockingConfig(t, spec, started, release)

	pool := parallel.NewPool(2)
	m := NewManager(pool, Limits{})
	id, err := m.SubmitConfig(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	<-started // first stage closed; plenty of work still pending
	if state, err := m.Cancel(id); err != nil || state != StateCancelling {
		t.Fatalf("Cancel = %v, %v; want CANCELLING", state, err)
	}
	close(release)

	camp, err := m.Wait(context.Background(), id)
	if !errors.Is(err, engine.ErrCancelled) {
		t.Fatalf("Wait err = %v, want ErrCancelled", err)
	}
	if camp == nil || len(camp.Reports) == 0 {
		t.Fatal("cancelled campaign lost its partial report")
	}
	aborted := 0
	for _, rep := range camp.Reports {
		aborted += rep.Aborted
	}
	if aborted < 1 {
		t.Errorf("partial report shows %d aborted activations, want ≥ 1", aborted)
	}

	res, err := m.Query(id, "SELECT count(*) FROM hactivation WHERE status = 'ABORTED'")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows[0][0]) == "0" {
		t.Error("no ABORTED rows in provenance after cancellation")
	}
	res, err = m.Query(id, "SELECT t.command FROM hactivation t WHERE status = 'ABORTED'")
	if err != nil {
		t.Fatal(err)
	}
	marker := false
	for _, r := range res.Rows {
		if strings.Contains(fmt.Sprint(r[0]), "# aborted: campaign cancelled") {
			marker = true
			break
		}
	}
	if !marker {
		t.Error("no provenance row carries the campaign-cancelled abort marker")
	}

	if inUse := pool.InUse(); inUse != 0 {
		t.Errorf("cancellation leaked %d pool tokens", inUse)
	}
	if _, _, accounts := pool.Occupancy(); accounts != 0 {
		t.Errorf("cancellation leaked %d open accounts", accounts)
	}
	if st, _ := m.Status(id); st.State != StateCancelled {
		t.Errorf("state = %s, want CANCELLED", st.State)
	}
}

// TestAdmissionControl exercises the per-tenant queue and running
// caps: a tenant at its running cap queues, beyond its queue cap is
// rejected, other tenants proceed, and FIFO order drains the queue.
func TestAdmissionControl(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	spec := func(tenant string, seed int64) Spec {
		s := tinySpec(seed)
		s.Tenant = tenant
		return s
	}

	m := NewManager(parallel.NewPool(2), Limits{
		MaxRunning: 2, MaxRunningPerTenant: 1, MaxQueuedPerTenant: 1,
	})
	a1, err := m.SubmitConfig(spec("alice", 1), blockingConfig(t, spec("alice", 1), started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // alice's first campaign is running

	a2, err := m.Submit(spec("alice", 2)) // tenant cap → queued
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec("alice", 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third alice submit err = %v, want ErrQueueFull", err)
	}
	b1, err := m.SubmitConfig(spec("bob", 4), blockingConfig(t, spec("bob", 4), started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // bob runs despite alice's queue: global cap is 2

	if st, _ := m.Status(a1); st.State != StateRunning {
		t.Errorf("alice #1 state = %s, want RUNNING", st.State)
	}
	if st, _ := m.Status(a2); st.State != StateQueued {
		t.Errorf("alice #2 state = %s, want QUEUED (tenant running cap)", st.State)
	}
	if st, _ := m.Status(b1); st.State != StateRunning {
		t.Errorf("bob #1 state = %s, want RUNNING", st.State)
	}
	if got := len(m.List()); got != 3 {
		t.Errorf("List() = %d campaigns, want 3", got)
	}

	close(release)
	for _, id := range []int64{a1, a2, b1} {
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Errorf("campaign %d: %v", id, err)
		}
	}
}

// TestCancelQueued removes a queued campaign without running it.
func TestCancelQueued(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	spec := tinySpec(9)
	m := NewManager(parallel.NewPool(2), Limits{
		MaxRunning: 1, MaxRunningPerTenant: 1, MaxQueuedPerTenant: 2,
	})
	id1, err := m.SubmitConfig(spec, blockingConfig(t, spec, started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	id2, err := m.Submit(tinySpec(10))
	if err != nil {
		t.Fatal(err)
	}
	if state, err := m.Cancel(id2); err != nil || state != StateCancelled {
		t.Fatalf("Cancel queued = %v, %v; want CANCELLED", state, err)
	}
	if _, err := m.Wait(context.Background(), id2); !errors.Is(err, engine.ErrCancelled) {
		t.Errorf("Wait on queued-cancelled err = %v, want ErrCancelled", err)
	}
	if _, err := m.Query(id2, "SELECT count(*) FROM hactivation"); err == nil {
		t.Error("query against never-started campaign should fail")
	}
	close(release)
	if _, err := m.Wait(context.Background(), id1); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrains verifies graceful drain: no new admissions,
// queued campaigns cancelled, running ones finishing (or cancelled at
// the deadline).
func TestShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	spec := tinySpec(13)
	m := NewManager(parallel.NewPool(2), Limits{
		MaxRunning: 1, MaxRunningPerTenant: 1, MaxQueuedPerTenant: 2,
	})
	running, err := m.SubmitConfig(spec, blockingConfig(t, spec, started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(tinySpec(14))
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() {
		m.Shutdown(context.Background())
		close(drained)
	}()
	// Shutdown cancels the queued campaign synchronously before
	// waiting; only then unblock the running one, so the queued
	// campaign can never have been promoted.
	for {
		if st, err := m.Status(queued); err == nil && st.State == StateCancelled {
			break
		}
		runtime.Gosched()
	}
	close(release)
	<-drained

	if _, err := m.Submit(tinySpec(15)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after shutdown err = %v, want ErrDraining", err)
	}
	if st, _ := m.Status(queued); st.State != StateCancelled {
		t.Errorf("queued campaign state = %s, want CANCELLED", st.State)
	}
	if st, _ := m.Status(running); !st.State.Terminal() {
		t.Errorf("running campaign state = %s, want terminal", st.State)
	}
}

// TestManagerNotFound covers the error paths for unknown IDs.
func TestManagerNotFound(t *testing.T) {
	m := NewManager(parallel.NewPool(1), Limits{})
	if _, err := m.Status(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Status err = %v", err)
	}
	if _, err := m.Cancel(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel err = %v", err)
	}
	if _, err := m.Wait(context.Background(), 99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Wait err = %v", err)
	}
	if _, err := m.Query(99, "SELECT count(*) FROM hactivation"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Query err = %v", err)
	}
}

// TestSpecValidation rejects bad specs with messages naming the valid
// values.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Mode: "quantum"}, "valid: ad4, vina, adaptive"},
		{Spec{Effort: "heroic"}, "valid: smoke, campaign, quick"},
		{Spec{Precision: "fuzzy"}, "valid: exact, tolerance"},
		{Spec{Cores: -1}, "must be positive"},
		{Spec{Receptors: 9999}, ""},
	}
	for _, c := range cases {
		_, err := c.spec.Config()
		if err == nil {
			t.Errorf("spec %+v: expected error", c.spec)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %+v: error %q does not mention %q", c.spec, err, c.want)
		}
	}
	if _, err := (Spec{}).Config(); err != nil {
		t.Errorf("zero spec must be valid (CLI defaults): %v", err)
	}
}
