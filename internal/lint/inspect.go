package lint

import "go/ast"

// inspector is the shared traversal: each package's ASTs are walked
// exactly once at construction into a flat push/pop event list, and
// every analyzer then replays that list instead of re-walking the
// trees. The replay maintains the ancestor stack incrementally, so
// analyzers get enclosing-node context for free.
type inspector struct {
	events []event
}

type event struct {
	node ast.Node
	push bool
}

func newInspector(files []*ast.File) *inspector {
	in := &inspector{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				in.events = append(in.events, event{push: false})
				return false
			}
			in.events = append(in.events, event{node: n, push: true})
			return true
		})
	}
	return in
}

// Inspect replays the cached walk. fn receives each node in preorder
// together with its ancestor stack; stack[len(stack)-1] is n itself
// and stack[0] is the enclosing *ast.File.
func (p *Package) Inspect(fn func(n ast.Node, stack []ast.Node)) {
	if p.insp == nil {
		p.insp = newInspector(p.Files)
	}
	stack := make([]ast.Node, 0, 32)
	for _, ev := range p.insp.events {
		if !ev.push {
			stack = stack[:len(stack)-1]
			continue
		}
		stack = append(stack, ev.node)
		fn(ev.node, stack)
	}
}

// enclosingFuncName returns the name of the nearest enclosing declared
// function or method on the stack, or "" inside a bare function
// literal at file scope.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
