package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/chem"
	"repro/internal/chem/formats"
	"repro/internal/data"
	"repro/internal/grid"
	"repro/internal/prep"
)

func TestExportComplex(t *testing.T) {
	cfg := Config{Effort: SmokeEffort(), Seed: 2}
	var buf bytes.Buffer
	res, err := ExportComplex(&buf, cfg, prep.ProgramAD4, "2HHN", "0E6")
	if err != nil {
		t.Fatal(err)
	}
	if res.Receptor != "2HHN" || res.Ligand != "0E6" || res.Atoms == 0 {
		t.Errorf("result = %+v", res)
	}
	// The PDB parses back and contains both receptor and ligand atoms.
	mol, err := formats.ParsePDB(bytes.NewReader(buf.Bytes()), "complex")
	if err != nil {
		t.Fatal(err)
	}
	if mol.NumAtoms() != res.Atoms {
		t.Errorf("atoms = %d, want %d", mol.NumAtoms(), res.Atoms)
	}
	ligAtoms := 0
	for _, a := range mol.Atoms {
		if a.Chain == "L" {
			ligAtoms++
			if !a.HetAtm {
				t.Error("ligand atom not HETATM")
			}
		}
	}
	if ligAtoms == 0 {
		t.Fatal("no ligand atoms in complex")
	}
	// The docked ligand sits inside the receptor's bounding volume
	// (the pose is in the receptor frame, not the input frame).
	text := buf.String()
	if !strings.Contains(text, "HETATM") || !strings.Contains(text, "2HHN-0E6") {
		t.Errorf("pdb text missing structure:\n%s", text[:200])
	}
}

func TestExportComplexVina(t *testing.T) {
	cfg := Config{Effort: SmokeEffort(), Seed: 2}
	var buf bytes.Buffer
	res, err := ExportComplex(&buf, cfg, prep.ProgramVina, "1S4V", "0D6")
	if err != nil {
		t.Fatal(err)
	}
	if res.Program != prep.ProgramVina {
		t.Errorf("program = %v", res.Program)
	}
}

func TestExportComplexErrors(t *testing.T) {
	var buf bytes.Buffer
	bad := Config{Effort: Effort{}}
	if _, err := ExportComplex(&buf, bad, prep.ProgramAD4, "2HHN", "0E6"); err == nil {
		t.Error("invalid effort accepted")
	}
}

func TestRefineBestNeverWorse(t *testing.T) {
	cfg := Config{Effort: SmokeEffort(), Seed: 4}
	for _, prog := range []prep.Program{prep.ProgramAD4, prep.ProgramVina} {
		before, after, err := RefineBest(cfg, prog, "1HUC", "0D6", 150)
		if err != nil {
			t.Fatalf("%s: %v", prog, err)
		}
		// Refinement optimizes the raw objective; the calibrated FEB
		// must not regress beyond rounding noise.
		if after > before+0.25 {
			t.Errorf("%s: refinement worsened FEB %v -> %v", prog, before, after)
		}
	}
}

func TestWriteMapsOption(t *testing.T) {
	ds := data.Dataset{Receptors: []string{"1AIM"}, Ligands: []string{"042"}}
	cfg := Config{
		Mode: ModeAD4, Dataset: ds, Cores: 2,
		Effort: SmokeEffort(), HgGuard: true, DisableFailures: true,
		WriteMaps: true,
	}
	camp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	files, err := camp.Engine.FS.List("/root/exp_SciDock")
	if err != nil {
		t.Fatal(err)
	}
	maps := 0
	for _, f := range files {
		if strings.HasSuffix(f, ".map") {
			maps++
		}
	}
	// At least e.map, d.map and one affinity map.
	if maps < 3 {
		t.Errorf("map files = %d, want ≥ 3 (files: %v)", maps, files)
	}
	// The e.map round-trips through the AutoGrid parser.
	for _, f := range files {
		if strings.HasSuffix(f, ".e.map") {
			content, _, err := camp.Engine.FS.Read(f)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := grid.ParseMap(bytes.NewReader(content), "e", f); err != nil {
				t.Errorf("map %s does not parse: %v", f, err)
			}
			break
		}
	}
}

func TestVinaOutPDBQTWritten(t *testing.T) {
	ds := data.Dataset{Receptors: []string{"1S4V"}, Ligands: []string{"0E6"}}
	cfg := Config{
		Mode: ModeVina, Dataset: ds, Cores: 2,
		Effort: SmokeEffort(), HgGuard: true, DisableFailures: true,
	}
	camp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	files, err := camp.Engine.FS.List("/root/exp_SciDock")
	if err != nil {
		t.Fatal(err)
	}
	var outFile string
	for _, f := range files {
		if strings.HasSuffix(f, "_out.pdbqt") {
			outFile = f
			break
		}
	}
	if outFile == "" {
		t.Fatalf("no *_out.pdbqt written (files: %v)", files)
	}
	content, _, err := camp.Engine.FS.Read(outFile)
	if err != nil {
		t.Fatal(err)
	}
	mol, poses, err := formats.ParsePDBQTModels(bytes.NewReader(content), "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(poses) < 1 || mol.NumAtoms() == 0 {
		t.Errorf("models = %d, atoms = %d", len(poses), mol.NumAtoms())
	}
	// Distinct modes differ spatially.
	if len(poses) >= 2 {
		same := true
		for i := range poses[0] {
			if poses[0][i].Dist(poses[1][i]) > 1e-6 {
				same = false
				break
			}
		}
		if same {
			t.Error("mode 1 and 2 identical")
		}
	}
}

func TestExportComplexLigandIsDocked(t *testing.T) {
	cfg := Config{Effort: SmokeEffort(), Seed: 6}
	var buf bytes.Buffer
	if _, err := ExportComplex(&buf, cfg, prep.ProgramAD4, "1HUC", "074"); err != nil {
		t.Fatal(err)
	}
	mol, err := formats.ParsePDB(bytes.NewReader(buf.Bytes()), "cx")
	if err != nil {
		t.Fatal(err)
	}
	var recPos, ligPos []chem.Vec3
	for _, a := range mol.Atoms {
		if a.Chain == "L" {
			ligPos = append(ligPos, a.Pos)
		} else {
			recPos = append(recPos, a.Pos)
		}
	}
	recC := chem.Centroid(recPos)
	ligC := chem.Centroid(ligPos)
	// The docked ligand sits near the receptor pocket, not at the
	// ligand's deposited frame ~50 Å away.
	if d := recC.Dist(ligC); d > 25 {
		t.Errorf("ligand centroid %.1f Å from receptor centre — not docked", d)
	}
}
