package sched

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cloud"
)

func TestCostModelDeterministicAndClamped(t *testing.T) {
	cm := NewCostModel()
	for tag, e := range costTable {
		a := cm.Sample(tag, "0E6_2HHN")
		b := cm.Sample(tag, "0E6_2HHN")
		if a != b {
			t.Errorf("%s: sample not deterministic", tag)
		}
		for i := 0; i < 200; i++ {
			v := cm.Sample(tag, fmt.Sprintf("k%d", i))
			if v < e.min-1e-9 || v > e.max+1e-9 {
				t.Errorf("%s: sample %v outside [%v, %v]", tag, v, e.min, e.max)
			}
		}
	}
}

func TestCostModelMeansApproximateCalibration(t *testing.T) {
	cm := NewCostModel()
	for tag, e := range costTable {
		var sum float64
		n := 3000
		for i := 0; i < n; i++ {
			sum += cm.Sample(tag, fmt.Sprintf("pair%d", i))
		}
		avg := sum / float64(n)
		// Clamping biases the mean; allow 30%.
		if avg < e.mean*0.7 || avg > e.mean*1.3 {
			t.Errorf("%s: empirical mean %.2f vs calibrated %.2f", tag, avg, e.mean)
		}
	}
}

func TestCostModelScaleAndUnknown(t *testing.T) {
	cm := &CostModel{Scale: 0.1}
	full := NewCostModel()
	if got := cm.Sample(TagDockAD4, "x"); math.Abs(got-full.Sample(TagDockAD4, "x")*0.1) > 1e-9 {
		t.Errorf("scale not applied: %v", got)
	}
	if got := cm.Sample("unknown-tag", "x"); got != 0.1 {
		t.Errorf("unknown tag sample = %v", got)
	}
	if full.Mean("unknown") != 0 || !full.Known(TagBabel) || full.Known("nope") {
		t.Error("Known/Mean broken")
	}
}

func TestAttemptsFailureStatistics(t *testing.T) {
	cm := NewCostModel()
	fails := 0
	n := 5000
	for i := 0; i < n; i++ {
		at := cm.Attempts(TagDockAD4, fmt.Sprintf("k%d", i), 100)
		if len(at) < 1 {
			t.Fatal("no attempts")
		}
		if at[len(at)-1] != 100 {
			t.Fatal("final attempt must be the full cost")
		}
		if len(at) > 1 {
			fails++
		}
		for _, d := range at[:len(at)-1] {
			if d <= 0 || d >= 100 {
				t.Fatalf("failed attempt duration %v out of range", d)
			}
		}
	}
	rate := float64(fails) / float64(n)
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("failure rate = %.3f, want ~0.10 (paper §IV.B)", rate)
	}
}

func makeFleet(t *testing.T, cores int) (*cloud.Cluster, []*cloud.VM) {
	t.Helper()
	sim := cloud.NewSim()
	c := cloud.NewCluster(sim)
	vms, err := c.BuildVirtualCluster(cores)
	if err != nil {
		t.Fatal(err)
	}
	return c, vms
}

func acts(n int, cost float64) []Activation {
	out := make([]Activation, n)
	for i := range out {
		out[i] = Activation{
			ID: int64(i), Tag: TagDockAD4, Key: fmt.Sprintf("a%d", i),
			Attempts: []float64{cost},
		}
	}
	return out
}

func TestGreedyScheduleBasic(t *testing.T) {
	_, vms := makeFleet(t, 8)
	g := NewGreedy()
	placements, makespan, err := g.Schedule(0, acts(16, 100), vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 16 {
		t.Fatalf("placements = %d", len(placements))
	}
	// 16 tasks × 100 s on 8 cores ≈ 2 rounds ≈ 200 s (+boot, jitter).
	if makespan < 180 || makespan > 400 {
		t.Errorf("makespan = %v", makespan)
	}
	// No core overlap.
	type key struct {
		vm   string
		core int
	}
	busy := map[key][]Placement{}
	for _, p := range placements {
		busy[key{p.VMID, p.Core}] = append(busy[key{p.VMID, p.Core}], p)
	}
	for k, ps := range busy {
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				a, b := ps[i], ps[j]
				if a.Start < b.End && b.Start < a.End {
					t.Fatalf("overlap on %v: [%v,%v) and [%v,%v)", k, a.Start, a.End, b.Start, b.End)
				}
			}
		}
	}
}

func TestGreedyLPTBeatsRoundRobinOnSkewedLoad(t *testing.T) {
	// Two heavy + many light tasks: LPT starts the heavy ones first.
	_, vms := makeFleet(t, 8)
	var mixed []Activation
	mixed = append(mixed, Activation{ID: 1, Tag: "x", Key: "h1", Attempts: []float64{1000}})
	mixed = append(mixed, Activation{ID: 2, Tag: "x", Key: "h2", Attempts: []float64{900}})
	for i := 0; i < 40; i++ {
		mixed = append(mixed, Activation{ID: int64(10 + i), Tag: "x", Key: fmt.Sprintf("l%d", i), Attempts: []float64{10}})
	}
	g := &Greedy{MasterDelayPerVM: 0}
	_, gm, err := g.Schedule(0, mixed, vms)
	if err != nil {
		t.Fatal(err)
	}
	rr := &RoundRobin{}
	_, rm, err := rr.Schedule(0, mixed, vms)
	if err != nil {
		t.Fatal(err)
	}
	if gm > rm {
		t.Errorf("greedy makespan %v worse than round robin %v", gm, rm)
	}
}

func TestMasterOverheadGrowsWithFleet(t *testing.T) {
	// Many short activations: dispatch serialization dominates on a
	// big fleet — the Figure 9 efficiency-degradation mechanism.
	g := NewGreedy()
	short := acts(2000, 2.0)
	_, small, err := g.Schedule(0, short, fleetVMs(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	_, big, err := g.Schedule(0, short, fleetVMs(t, 128))
	if err != nil {
		t.Fatal(err)
	}
	idealSmall := 2000 * 2.0 / 8
	idealBig := 2000 * 2.0 / 128
	effSmall := idealSmall / small
	effBig := idealBig / big
	if effBig >= effSmall {
		t.Errorf("efficiency did not degrade: small=%.2f big=%.2f", effSmall, effBig)
	}
}

func fleetVMs(t *testing.T, cores int) []*cloud.VM {
	t.Helper()
	_, vms := makeFleet(t, cores)
	return vms
}

func TestWorkerCap(t *testing.T) {
	_, vms := makeFleet(t, 2) // leases a 4-core m3.xlarge
	g := NewGreedy()
	g.WorkerCap = 2
	placements, _, err := g.Schedule(0, acts(8, 50), vms)
	if err != nil {
		t.Fatal(err)
	}
	cores := map[int]bool{}
	for _, p := range placements {
		cores[p.Core] = true
	}
	if len(cores) > 2 {
		t.Errorf("used %d cores despite cap 2", len(cores))
	}
}

func TestScheduleErrors(t *testing.T) {
	g := NewGreedy()
	if _, _, err := g.Schedule(0, acts(1, 1), nil); err == nil {
		t.Error("empty fleet accepted")
	}
	rr := &RoundRobin{}
	if _, _, err := rr.Schedule(0, acts(1, 1), nil); err == nil {
		t.Error("empty fleet accepted by round robin")
	}
}

func TestFailuresExtendDuration(t *testing.T) {
	_, vms := makeFleet(t, 4)
	g := &Greedy{MasterDelayPerVM: 0}
	with := []Activation{{ID: 1, Tag: "x", Key: "k", Attempts: []float64{30, 30, 100}}}
	without := []Activation{{ID: 1, Tag: "x", Key: "k", Attempts: []float64{100}}}
	pw, _, _ := g.Schedule(0, with, vms)
	po, _, _ := g.Schedule(0, without, vms)
	if pw[0].End-pw[0].Start <= po[0].End-po[0].Start {
		t.Error("failed attempts did not extend execution")
	}
	if pw[0].Failures != 2 || po[0].Failures != 0 {
		t.Errorf("failure counts: %d, %d", pw[0].Failures, po[0].Failures)
	}
}

func TestAdaptivePolicy(t *testing.T) {
	p := NewAdaptivePolicy()
	if got := p.DesiredCores(0); got != p.MinCores {
		t.Errorf("zero work cores = %d", got)
	}
	// 72000 core-seconds at 3600 s target → 20 cores.
	if got := p.DesiredCores(72000); got != 20 {
		t.Errorf("cores = %d, want 20", got)
	}
	// Huge work clamps to max.
	if got := p.DesiredCores(1e9); got != p.MaxCores {
		t.Errorf("cores = %d, want max %d", got, p.MaxCores)
	}
}

func TestAdaptiveResize(t *testing.T) {
	sim := cloud.NewSim()
	c := cloud.NewCluster(sim)
	p := NewAdaptivePolicy()
	vms, err := p.Resize(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, vm := range vms {
		total += vm.Type.Cores
	}
	if total < 16 {
		t.Errorf("grow: %d cores", total)
	}
	vms, err = p.Resize(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, vm := range vms {
		total += vm.Type.Cores
	}
	if total < 4 || total > 8 {
		t.Errorf("shrink: %d cores", total)
	}
}

func TestStageWork(t *testing.T) {
	a := []Activation{
		{Attempts: []float64{10, 90}, IOTime: 5},
		{Attempts: []float64{50}},
	}
	if got := StageWork(a); got != 155 {
		t.Errorf("stage work = %v", got)
	}
}
