// Package vina reproduces AutoDock Vina 1.1.2: the empirical scoring
// function of Trott & Olson (2010) and the iterated-local-search
// Monte Carlo optimizer, SciDock's activity 8b.
package vina

import (
	"fmt"
	"math"

	"repro/internal/chem"
	"repro/internal/dock"
)

// Vina scoring-function weights (Trott & Olson 2010, Table 1).
const (
	wGauss1     = -0.035579
	wGauss2     = -0.005156
	wRepulsion  = +0.840245
	wHydrophob  = -0.035069
	wHBond      = -0.587439
	wRot        = +0.05846 // conformational entropy denominator weight
	cutoff      = 8.0      // Å
	intraWeight = 0.3      // internal contribution to the reported affinity
)

// Scorer evaluates the Vina affinity of a ligand conformation against
// receptor atoms (Vina computes its own internal grids; scoring
// directly over a neighbour list is numerically equivalent at these
// scales).
type Scorer struct {
	Receptor *chem.Molecule
	Lig      *dock.Ligand

	nl         *dock.NeighborList
	recTypes   []chem.TypeParams
	ligTypes   []chem.TypeParams
	ligIsH     []bool
	intraPairs [][2]int
	rotFactor  float64
	intraRef   float64 // internal energy of the input conformation
}

// NewScorer indexes the receptor and precomputes per-atom parameters.
func NewScorer(receptor *chem.Molecule, lig *dock.Ligand) (*Scorer, error) {
	if receptor.NumAtoms() == 0 {
		return nil, fmt.Errorf("vina: receptor %q has no atoms", receptor.Name)
	}
	s := &Scorer{
		Receptor:  receptor,
		Lig:       lig,
		nl:        dock.NewNeighborList(receptor, cutoff),
		rotFactor: 1 + wRot*float64(lig.NumTorsions()),
	}
	for i, a := range receptor.Atoms {
		t := a.Type
		if t == "" {
			t = chem.TypeForElement(a.Element)
		}
		if !t.Params().Supported {
			return nil, fmt.Errorf("vina: receptor %q atom %d type %s unsupported", receptor.Name, i, t)
		}
		s.recTypes = append(s.recTypes, t.Params())
	}
	for i, a := range lig.Mol.Atoms {
		t := a.Type
		if t == "" {
			return nil, fmt.Errorf("vina: ligand %q atom %d untyped", lig.Mol.Name, i)
		}
		s.ligTypes = append(s.ligTypes, t.Params())
		s.ligIsH = append(s.ligIsH, !a.Element.IsHeavy())
	}
	s.intraPairs = intraPairs14(lig.Mol)
	// Vina reports affinities relative to the internal energy of the
	// unbound conformation, so a ligand floating free scores ~0.
	s.intraRef = s.intraEnergy(lig.Reference())
	return s, nil
}

// intraPairs14 lists ligand atom pairs four or more bonds apart
// (Vina's internal interaction set).
func intraPairs14(m *chem.Molecule) [][2]int {
	n := m.NumAtoms()
	adj := m.Adjacency()
	var pairs [][2]int
	dist := make([]int, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if dist[v] >= 4 {
				continue
			}
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for j := src + 1; j < n; j++ {
			if dist[j] < 0 || dist[j] >= 4 {
				pairs = append(pairs, [2]int{src, j})
			}
		}
	}
	return pairs
}

// Score implements dock.Scorer: the Vina affinity in kcal/mol,
// inter-molecular terms divided by the rotatable-bond factor plus a
// damped internal term. Hydrogens are invisible to the Vina function.
func (s *Scorer) Score(coords []chem.Vec3) float64 {
	var inter float64
	for i, p := range coords {
		if s.ligIsH[i] {
			continue
		}
		lt := s.ligTypes[i]
		s.nl.ForNeighbors(p, func(j int, r float64) {
			rt := s.recTypes[j]
			if rt.Type == chem.TypeH || rt.Type == chem.TypeHD {
				return
			}
			inter += pairTerm(lt, rt, r)
		})
	}
	return inter/s.rotFactor + intraWeight*(s.intraEnergy(coords)-s.intraRef)
}

// ReportedFEB is the affinity Vina prints for a pose: the
// inter-molecular energy under the rotatable-bond compression, without
// the internal-energy delta used only to steer the optimizer.
func (s *Scorer) ReportedFEB(coords []chem.Vec3) float64 {
	var inter float64
	for i, p := range coords {
		if s.ligIsH[i] {
			continue
		}
		lt := s.ligTypes[i]
		s.nl.ForNeighbors(p, func(j int, r float64) {
			rt := s.recTypes[j]
			if rt.Type == chem.TypeH || rt.Type == chem.TypeHD {
				return
			}
			inter += pairTerm(lt, rt, r)
		})
	}
	return inter / s.rotFactor
}

func (s *Scorer) intraEnergy(coords []chem.Vec3) float64 {
	var intra float64
	for _, pr := range s.intraPairs {
		i, j := pr[0], pr[1]
		if s.ligIsH[i] || s.ligIsH[j] {
			continue
		}
		r := coords[i].Dist(coords[j])
		if r <= cutoff {
			intra += pairTerm(s.ligTypes[i], s.ligTypes[j], r)
		}
	}
	return intra
}

// pairTerm is the Vina pairwise function on the surface distance
// d = r − R_i − R_j.
func pairTerm(a, b chem.TypeParams, r float64) float64 {
	d := r - (a.Rii/2 + b.Rii/2)
	e := wGauss1 * gauss(d, 0, 0.5)
	e += wGauss2 * gauss(d, 3.0, 2.0)
	if d < 0 {
		e += wRepulsion * d * d
	}
	if a.Hydroph && b.Hydroph {
		e += wHydrophob * ramp(d, 0.5, 1.5)
	}
	if hbondPair(a, b) {
		e += wHBond * ramp(d, -0.7, 0)
	}
	return e
}

func gauss(d, off, width float64) float64 {
	x := (d - off) / width
	return math.Exp(-x * x)
}

// ramp is 1 below lo, 0 above hi, linear between.
func ramp(d, lo, hi float64) float64 {
	if d <= lo {
		return 1
	}
	if d >= hi {
		return 0
	}
	return (hi - d) / (hi - lo)
}

// hbondPair reports whether the types form a donor/acceptor pair.
// Vina's heavy-atom convention: a donor is a heavy atom that carries a
// polar hydrogen; our preparation marks N (with H) and S as donors via
// the type table, so we treat N/OA/SA acceptors vs N donors.
func hbondPair(a, b chem.TypeParams) bool {
	donor := func(p chem.TypeParams) bool {
		return p.Type == chem.TypeN || p.Type == chem.TypeS // H-bearing by typing rules
	}
	acceptor := func(p chem.TypeParams) bool { return p.HBond >= 2 }
	return (donor(a) && acceptor(b)) || (donor(b) && acceptor(a))
}
