package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// CtxLeak targets goroutine lifecycle bugs in the engine's long-lived
// worker pools:
//
//   - a `go func() { ... }` whose body contains an infinite `for {}`
//     with no shutdown path at all — no select, no channel receive, no
//     return/break — can never be stopped and leaks a worker per
//     stage; every worker loop must be able to observe a done/ctx
//     channel, a closed job channel, or a stop message (warn);
//   - under a module go directive older than 1.22, a goroutine literal
//     capturing its enclosing loop variable races with the next
//     iteration (all iterations share one variable); pass the value as
//     an argument instead (error). With go >= 1.22 loop variables are
//     per-iteration and this part stays silent.
var CtxLeak = &Analyzer{
	Name:     "ctxleak",
	Doc:      "flags goroutine worker loops without a shutdown path and pre-1.22 loop-variable captures",
	Severity: Warn,
	Run:      runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	sharedLoopVars := goVersionBefore(pass.GoVersion, 1, 22)
	pass.Inspect(func(n ast.Node, stack []ast.Node) {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return
		}
		checkWorkerLoops(pass, lit)
		if sharedLoopVars {
			checkLoopVarCapture(pass, lit, stack)
		}
	})
}

// goVersionBefore parses "go1.NN" and compares against major.minor.
func goVersionBefore(v string, major, minor int) bool {
	v = strings.TrimPrefix(v, "go")
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return false // unknown: assume modern semantics
	}
	maj, err1 := strconv.Atoi(parts[0])
	min, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return false
	}
	return maj < major || (maj == major && min < minor)
}

// checkWorkerLoops flags `for {}` loops inside the goroutine body that
// provide no way out.
func checkWorkerLoops(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if hasShutdownPath(loop.Body) {
			return true
		}
		pass.Reportf(loop.For,
			"infinite worker loop with no shutdown path: add a select on a done/ctx channel, receive from a closable job channel, or a return/break condition")
		return true
	})
}

// hasShutdownPath reports whether a loop body can ever exit: a select,
// a channel receive, a return, a break, or a panic call. Nested
// function literals do not count — an exit inside them exits the
// inner function, not the loop.
func hasShutdownPath(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			found = true // range over a channel/collection terminates
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkLoopVarCapture reports idents inside the goroutine literal that
// resolve to a loop variable of an enclosing for/range statement.
func checkLoopVarCapture(pass *Pass, lit *ast.FuncLit, stack []ast.Node) {
	objs := map[any]bool{}
	addDef := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" || pass.Info == nil {
			return
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			objs[obj] = true
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.RangeStmt:
			if s.Tok == token.DEFINE {
				addDef(s.Key)
				addDef(s.Value)
			}
		case *ast.ForStmt:
			if as, ok := s.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					addDef(lhs)
				}
			}
		}
	}
	if len(objs) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil && objs[obj] {
			pass.ReportSevf(Error, id.Pos(),
				"goroutine captures loop variable %s (go %s shares one variable across iterations); pass it as an argument",
				id.Name, strings.TrimPrefix(pass.GoVersion, "go"))
		}
		return true
	})
}
