package chem

import (
	"fmt"
	"sort"
)

// Torsion is one rotatable bond of a ligand: rotating it moves every
// atom in Moved about the Axis1-Axis2 axis. This mirrors the BRANCH
// records that prepare_ligand4.py writes into PDBQT files.
type Torsion struct {
	Axis1, Axis2 int   // atom indices defining the rotation axis
	Moved        []int // atom indices displaced by this torsion (the smaller side)
}

// TorsionTree is the flexibility model of a ligand: a root rigid
// fragment plus an ordered list of rotatable bonds. The order is
// root-outward so torsions can be applied sequentially.
type TorsionTree struct {
	Root     int // atom index of the root (heaviest fragment's attachment)
	Torsions []Torsion
}

// NumTorsions returns the number of rotatable bonds (the "torsional
// degrees of freedom" Ntors used by the AD4 entropy term).
func (t *TorsionTree) NumTorsions() int { return len(t.Torsions) }

// BuildTorsionTree detects rotatable bonds and constructs the torsion
// tree of the molecule, following AutoDock's rules:
//
//   - only single, non-aromatic bonds rotate;
//   - bonds inside rings never rotate;
//   - bonds to terminal atoms or to fragments of only hydrogens do not
//     rotate (rotating them is a no-op);
//   - amide C-N bonds are treated as non-rotatable.
//
// The root is the atom with the largest rigid fragment, matching
// prepare_ligand4.py's "largest sub-tree" default.
func BuildTorsionTree(m *Molecule) (*TorsionTree, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(m.Atoms) == 0 {
		return nil, fmt.Errorf("chem: cannot build torsion tree of empty molecule %q", m.Name)
	}
	adj := m.Adjacency()
	inCycle := cycleBonds(m, adj)

	rotatable := make([]Bond, 0)
	for _, b := range m.Bonds {
		if !bondRotatable(m, adj, inCycle, b) {
			continue
		}
		rotatable = append(rotatable, b)
	}

	root := pickRoot(m, adj, rotatable)

	// Breadth-first walk from the root; for each rotatable bond,
	// collect the far-side atom set (the atoms that move).
	tree := &TorsionTree{Root: root}
	rotSet := make(map[[2]int]bool, len(rotatable))
	for _, b := range rotatable {
		rotSet[bondKey(b.A, b.B)] = true
	}
	visited := make([]bool, len(m.Atoms))
	type frame struct{ at, from int }
	queue := []frame{{root, -1}}
	visited[root] = true
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		// Sorted neighbours for deterministic trees.
		nb := append([]int(nil), adj[f.at]...)
		sort.Ints(nb)
		for _, w := range nb {
			if visited[w] {
				continue
			}
			visited[w] = true
			if rotSet[bondKey(f.at, w)] {
				moved := collectSide(adj, w, f.at, len(m.Atoms))
				tree.Torsions = append(tree.Torsions, Torsion{
					Axis1: f.at, Axis2: w, Moved: moved,
				})
			}
			queue = append(queue, frame{w, f.at})
		}
	}
	return tree, nil
}

func bondKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// cycleBonds returns the set of bonds that lie on a cycle — the
// non-bridge edges of the bond graph. This is the precise form of the
// "bonds inside rings never rotate" rule: a bond whose BOTH endpoints
// sit in rings can still rotate when the bond itself is a bridge (a
// biphenyl link, or a chain segment threaded between two ring
// systems), which the coarser RingAtoms 2-core test misclassifies.
// Bridges are found with one Tarjan low-link pass per connected
// component; multiple parallel bonds between the same atom pair count
// as a cycle.
func cycleBonds(m *Molecule, adj [][]int) map[[2]int]bool {
	n := len(m.Atoms)
	inCycle := make(map[[2]int]bool)
	mult := make(map[[2]int]int, len(m.Bonds))
	for _, b := range m.Bonds {
		mult[bondKey(b.A, b.B)]++
	}
	for k, c := range mult {
		if c > 1 {
			inCycle[k] = true
		}
	}
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	type frame struct{ v, parent, next int }
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{start, -1, 0}}
		disc[start], low[start] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.v]) {
				w := adj[f.v][f.next]
				f.next++
				if w == f.parent {
					// Skip ONE edge back to the parent; parallel bonds
					// were already marked via mult.
					f.parent = -2
					continue
				}
				if disc[w] != -1 {
					if disc[w] < low[f.v] {
						low[f.v] = disc[w]
					}
					continue
				}
				disc[w], low[w] = timer, timer
				timer++
				stack = append(stack, frame{w, f.v, 0})
				continue
			}
			// Post-order: fold low into the parent and classify the
			// tree edge.
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] <= disc[p] {
					inCycle[bondKey(p, v)] = true
				}
			}
		}
	}
	return inCycle
}

func bondRotatable(m *Molecule, adj [][]int, inCycle map[[2]int]bool, b Bond) bool {
	if b.Order != Single {
		return false
	}
	if inCycle[bondKey(b.A, b.B)] {
		return false
	}
	// Terminal bonds cannot usefully rotate.
	if len(adj[b.A]) < 2 || len(adj[b.B]) < 2 {
		return false
	}
	// A side consisting only of hydrogens (e.g. methyl, hydroxyl)
	// contributes no pose change worth a degree of freedom.
	if onlyHydrogensBeyond(m, adj, b.A, b.B) || onlyHydrogensBeyond(m, adj, b.B, b.A) {
		return false
	}
	// Amide bond C(=O)-N: planar, non-rotatable.
	if isAmide(m, adj, b.A, b.B) || isAmide(m, adj, b.B, b.A) {
		return false
	}
	return true
}

// onlyHydrogensBeyond reports whether every atom reachable from `start`
// without crossing back through `block` is a hydrogen.
func onlyHydrogensBeyond(m *Molecule, adj [][]int, block, start int) bool {
	seen := map[int]bool{block: true, start: true}
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if seen[w] {
				continue
			}
			if m.Atoms[w].Element.IsHeavy() {
				return false
			}
			seen[w] = true
			stack = append(stack, w)
		}
	}
	return true
}

func isAmide(m *Molecule, adj [][]int, c, n int) bool {
	if m.Atoms[c].Element.Normalize() != Carbon || m.Atoms[n].Element.Normalize() != Nitrogen {
		return false
	}
	// carbon double-bonded to an oxygen?
	for _, b := range m.Bonds {
		if b.Order != Double {
			continue
		}
		var other = -1
		if b.A == c {
			other = b.B
		} else if b.B == c {
			other = b.A
		}
		if other >= 0 && m.Atoms[other].Element.Normalize() == Oxygen {
			return true
		}
	}
	return false
}

// pickRoot chooses the atom whose rigid fragment (connected component
// after cutting all rotatable bonds) is largest; ties break to the
// lowest index for determinism.
func pickRoot(m *Molecule, adj [][]int, rotatable []Bond) int {
	cut := make(map[[2]int]bool, len(rotatable))
	for _, b := range rotatable {
		cut[bondKey(b.A, b.B)] = true
	}
	comp := make([]int, len(m.Atoms))
	for i := range comp {
		comp[i] = -1
	}
	sizes := []int{}
	for i := range m.Atoms {
		if comp[i] >= 0 {
			continue
		}
		id := len(sizes)
		n := 0
		stack := []int{i}
		comp[i] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n++
			for _, w := range adj[v] {
				if comp[w] >= 0 || cut[bondKey(v, w)] {
					continue
				}
				comp[w] = id
				stack = append(stack, w)
			}
		}
		sizes = append(sizes, n)
	}
	best, bestSize := 0, -1
	for i := range m.Atoms {
		if s := sizes[comp[i]]; s > bestSize {
			best, bestSize = i, s
		}
	}
	return best
}

// collectSide returns all atoms reachable from `start` without passing
// through `block`, sorted ascending. These are the atoms moved by the
// torsion whose axis is block→start.
func collectSide(adj [][]int, start, block, n int) []int {
	seen := make([]bool, n)
	seen[block] = true
	seen[start] = true
	out := []int{start}
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if seen[w] {
				continue
			}
			seen[w] = true
			out = append(out, w)
			stack = append(stack, w)
		}
	}
	sort.Ints(out)
	return out
}

// ApplyTorsions returns a copy of base coordinates with each torsion
// rotated by the corresponding angle (radians). Torsions are applied
// in tree order, so inner rotations carry outer branches with them.
func (t *TorsionTree) ApplyTorsions(base []Vec3, angles []float64) []Vec3 {
	return t.ApplyTorsionsInto(nil, base, angles)
}

// ApplyTorsionsInto is ApplyTorsions writing into dst's storage (grown
// as needed), so steady-state pose evaluation allocates nothing. dst
// must not alias base. It returns the filled slice.
func (t *TorsionTree) ApplyTorsionsInto(dst, base []Vec3, angles []float64) []Vec3 {
	if len(angles) != len(t.Torsions) {
		panic(fmt.Sprintf("chem: %d torsion angles for %d torsions", len(angles), len(t.Torsions)))
	}
	out := append(dst[:0], base...)
	for k, tor := range t.Torsions {
		if angles[k] == 0 {
			continue
		}
		a := out[tor.Axis1]
		b := out[tor.Axis2]
		q := AxisAngleQuat(b.Sub(a), angles[k])
		for _, idx := range tor.Moved {
			if idx == tor.Axis2 {
				continue // axis atom does not move
			}
			out[idx] = q.Rotate(out[idx].Sub(b)).Add(b)
		}
	}
	return out
}
