package ad4

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
	"repro/internal/dock"
)

// randomPoses returns a deterministic spread of poses: random
// orientations and torsions with translations that keep the ligand
// inside the grid box but include self-clashing conformations, so the
// clamped repulsive core of the intramolecular term is exercised.
func randomPoses(lig *dock.Ligand, n int, seed int64) []dock.Pose {
	r := rand.New(rand.NewSource(seed))
	poses := make([]dock.Pose, n)
	for i := range poses {
		q := chem.Quat{W: r.NormFloat64(), X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()}
		q = q.Normalize()
		tors := make([]float64, lig.NumTorsions())
		for t := range tors {
			tors[t] = (r.Float64() - 0.5) * 2 * math.Pi
		}
		poses[i] = dock.Pose{
			Translation: chem.V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5),
			Orientation: q,
			Torsions:    tors,
		}
	}
	return poses
}

// TestScoreMatchesAnalytic pins the table-backed intramolecular path
// against the closed-form reference over randomized poses. Both paths
// share the grid-interpolated intermolecular part, so the difference
// is purely table interpolation error: ≤ 1e-3 kcal/mol per pair in
// the scored range plus a small relative term for conformations whose
// internal energy is dominated by the clamped repulsive core.
func TestScoreMatchesAnalytic(t *testing.T) {
	maps, lig, _ := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(maps, lig)
	if err != nil {
		t.Fatal(err)
	}
	for _, pose := range randomPoses(lig, 50, 17) {
		coords := lig.Coords(pose)
		got := s.Score(coords)
		want := s.ScoreAnalytic(coords)
		tol := 0.05 + 1e-3*math.Abs(want)
		if math.Abs(got-want) > tol {
			t.Errorf("pose at %v: table %v analytic %v |Δ|=%g > %g",
				pose.Translation, got, want, math.Abs(got-want), tol)
		}
	}
}

func benchScorer(b *testing.B) (*Scorer, [][]chem.Vec3) {
	maps, lig, _ := setupPair(b, "2HHN", "0E6")
	s, err := NewScorer(maps, lig)
	if err != nil {
		b.Fatal(err)
	}
	poses := randomPoses(lig, 16, 5)
	coords := make([][]chem.Vec3, len(poses))
	for i, p := range poses {
		coords[i] = lig.Coords(p)
	}
	return s, coords
}

func BenchmarkScoreTable(b *testing.B) {
	s, coords := benchScorer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(coords[i%len(coords)])
	}
}

func BenchmarkScoreAnalytic(b *testing.B) {
	s, coords := benchScorer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreAnalytic(coords[i%len(coords)])
	}
}
