#!/bin/sh
# Tier-1+ correctness gate: build, vet, domain-aware static analysis
# (cmd/scilint), then the full test suite under the race detector.
# Run from anywhere inside the repo; exits non-zero on the first
# failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> scilint ./..."
go run ./cmd/scilint ./...

# The linter lints itself: the flow analyzers (CFG builder, dataflow
# engine, taint propagation) are exactly the kind of fixpoint code
# where a leaked lock or nondeterministic map range would be embarrassing.
echo "==> scilint self-lint (./cmd/... ./internal/lint/...)"
go run ./cmd/scilint ./cmd/... ./internal/lint/...

echo "==> go test -race ./..."
go test -race ./...

# Focused re-run of the precision contracts outside the cached suite:
# the 0-ULP batched-kinematics pin, the fast-path tolerance envelopes,
# and the screen-then-confirm docking golden.
echo "==> precision contract smoke (FastPath/TorsionsBatch/PrecisionTolerance)"
go test -run 'FastPath|TorsionsBatch|PrecisionTolerance' -count=1 \
	./internal/chem ./internal/dock/vina ./internal/dock/ad4

echo "==> kernel benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x \
	./internal/grid ./internal/dock \
	./internal/dock/tables ./internal/dock/vina ./internal/dock/ad4

# The large-pair windowed kernels run through dedicated benchmarks so
# the L2-overflow workload's window path is exercised end to end even
# when the full two-workload sweep isn't regenerated.
echo "==> large-pair window kernel smoke (-benchtime=1x)"
go test -run '^$' -bench 'WindowScoreBatch.*Large' -benchtime=1x \
	./internal/dock/vina ./internal/dock/ad4

# The synthetic dataset generator must be deterministic: two
# generations into fresh directories are byte-identical, including the
# -large L2-overflow pair.
echo "==> gendata determinism (two generations byte-identical)"
gen_a=$(mktemp -d) && gen_b=$(mktemp -d)
go run ./cmd/gendata -out "$gen_a" -receptors 3 -ligands 2 -large
go run ./cmd/gendata -out "$gen_b" -receptors 3 -ligands 2 -large
diff -r "$gen_a" "$gen_b" || { echo "check: gendata output differs between runs" >&2; exit 1; }
rm -rf "$gen_a" "$gen_b"

echo "==> search benchmark smoke (dockbench -exp search -quick)"
go run ./cmd/dockbench -exp search -quick -benchout ''

echo "==> batched-scoring benchmark smoke, exact + tolerance cells (dockbench -exp kernels -quick)"
go run ./cmd/dockbench -exp kernels -quick -benchout ''

echo "==> pipeline runtime benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench BenchmarkPipelineRuntime -benchtime=1x .

echo "==> provenance store benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x ./internal/prov

echo "==> provenance store benchmark smoke (dockbench -exp prov -quick)"
go run ./cmd/dockbench -exp prov -quick -benchout ''

echo "==> campaign service benchmark smoke (dockbench -exp campaigns -quick)"
go run ./cmd/dockbench -exp campaigns -quick -benchout ''

# End-to-end serve smoke: start the resident campaign service, submit
# a tiny campaign over HTTP, poll it to completion, then SIGTERM and
# require a clean drain. Exercises the same code path as production:
# real sockets, real signals, real shutdown ordering.
echo "==> campaign service serve smoke (scidock -serve)"
go build -o /tmp/scidock-check ./cmd/scidock
servelog=$(mktemp)
/tmp/scidock-check -serve 127.0.0.1:0 >"$servelog" 2>&1 &
servepid=$!
trap 'kill "$servepid" 2>/dev/null || true; rm -f "$servelog" /tmp/scidock-check' EXIT
addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/^scidock: serving campaign API on //p' "$servelog")
	[ -n "$addr" ] && break
	sleep 0.1
done
[ -n "$addr" ] || { echo "check: serve smoke: server never reported its address" >&2; cat "$servelog" >&2; exit 1; }
id=$(curl -sf -X POST "http://$addr/campaigns" \
	-d '{"mode":"ad4","receptors":2,"ligands":1,"cores":4,"effort":"smoke","seed":7,"disable_failures":true}' \
	| sed -n 's/.*"id": \([0-9]*\).*/\1/p')
[ -n "$id" ] || { echo "check: serve smoke: submit returned no id" >&2; exit 1; }
state=""
for _ in $(seq 1 600); do
	state=$(curl -sf "http://$addr/campaigns/$id" | sed -n 's/.*"state": "\([A-Z]*\)".*/\1/p')
	case "$state" in DONE|FAILED|CANCELLED) break ;; esac
	sleep 0.1
done
[ "$state" = DONE ] || { echo "check: serve smoke: campaign ended in state '$state', want DONE" >&2; exit 1; }
curl -sf -X POST "http://$addr/campaigns/$id/query?sql=SELECT%20count(*)%20FROM%20ddocking" \
	| grep -q '"rows"' || { echo "check: serve smoke: provenance query failed" >&2; exit 1; }
kill -TERM "$servepid"
wait "$servepid" || { echo "check: serve smoke: server exited non-zero after SIGTERM" >&2; cat "$servelog" >&2; exit 1; }
grep -q "shutdown complete" "$servelog" || { echo "check: serve smoke: no clean shutdown" >&2; cat "$servelog" >&2; exit 1; }
trap - EXIT
rm -f "$servelog" /tmp/scidock-check

echo "check: all gates passed"
