package dock

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
	"repro/internal/data"
)

// TestGatherSharedSupersetRandomWindows is the randomized pin of the
// window-gather superset property: for 1k random (anchor, bound, pose
// point) windows with the pose point inside the bound, the
// inflated-cutoff shared gather at the anchor must contain every true
// in-cutoff neighbor of the pose point — and FilterSpan over the
// shared candidates must reproduce the per-pose Gather hit sequence
// BIT FOR BIT (same count, same order, same Cls, same R² bits), which
// is the stronger form the engines' 0-ULP window contract rests on.
func TestGatherSharedSupersetRandomWindows(t *testing.T) {
	rec, _ := data.GenerateReceptor("1CSB")
	const cutoff = 8.0
	nl := NewNeighborList(rec, cutoff)
	pn := NewPackedNeighbors(nl, func(atom int32) int32 { return atom % 7 })
	hitLen := 1
	for hitLen < len(pn.Atoms()) {
		hitLen *= 2
	}
	gHits := make([]Hit, hitLen)
	fHits := make([]Hit, hitLen)
	var span []PackedAtom
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 1000; trial++ {
		anchor := chem.V(r.Float64()*36-18, r.Float64()*36-18, r.Float64()*36-18)
		bound := 0.05 + r.Float64()*5
		// Pose point displaced from the anchor by at most the bound.
		dir := chem.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		if n := dir.Norm(); n > 0 {
			dir = dir.Scale(1 / n)
		}
		q := anchor.Add(dir.Scale(bound * r.Float64()))

		span = span[:0]
		pn.GatherShared(anchor, cutoff+bound, &span)
		nf := FilterSpan(span, q.X, q.Y, q.Z, cutoff*cutoff, fHits)
		ng := pn.Gather(q, cutoff*cutoff, gHits)
		if nf != ng {
			t.Fatalf("trial %d (anchor %v bound %.3f): FilterSpan found %d hits, Gather %d",
				trial, anchor, bound, nf, ng)
		}
		for k := 0; k < ng; k++ {
			if fHits[k] != gHits[k] {
				t.Fatalf("trial %d hit %d: FilterSpan %+v != Gather %+v",
					trial, k, fHits[k], gHits[k])
			}
		}
	}
}

// TestGatherSharedBeyondBoundStillExact pins that the shared-gather
// identity is a property of geometry, not luck: when the pose point
// ESCAPES the bound, FilterSpan over the too-small shared set may miss
// neighbors — which is exactly why WindowValid gates admission. The
// test constructs escapes and verifies at least one miss occurs over
// the trials (the hazard is real), while Gather remains the ground
// truth the fallback path uses.
func TestGatherSharedBeyondBoundStillExact(t *testing.T) {
	rec, _ := data.GenerateReceptor("1CSB")
	const cutoff = 8.0
	nl := NewNeighborList(rec, cutoff)
	pn := NewPackedNeighbors(nl, func(atom int32) int32 { return atom })
	hitLen := 1
	for hitLen < len(pn.Atoms()) {
		hitLen *= 2
	}
	gHits := make([]Hit, hitLen)
	fHits := make([]Hit, hitLen)
	var span []PackedAtom
	r := rand.New(rand.NewSource(7))
	missed := false
	for trial := 0; trial < 200; trial++ {
		anchor := chem.V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
		bound := 0.5
		// Escape: displace by 2–4 bounds.
		dir := chem.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		if n := dir.Norm(); n > 0 {
			dir = dir.Scale(1 / n)
		}
		q := anchor.Add(dir.Scale(bound * (2 + 2*r.Float64())))
		span = span[:0]
		pn.GatherShared(anchor, cutoff+bound, &span)
		nf := FilterSpan(span, q.X, q.Y, q.Z, cutoff*cutoff, fHits)
		ng := pn.Gather(q, cutoff*cutoff, gHits)
		if nf < ng {
			missed = true
		}
		if nf > ng {
			t.Fatalf("trial %d: filtered set has %d hits beyond Gather's %d — FilterSpan admitted an out-of-cutoff atom", trial, nf, ng)
		}
	}
	if !missed {
		t.Error("no escape ever dropped a neighbor; the bound-violation hazard this test documents never materialized")
	}
}

// TestWindowValidAuditsActualCoords pins the admission test of the
// shared path: WindowValid must flag exactly the poses whose
// materialized coordinates stay within the bound of the anchor's, so
// validity never depends on how the bound was estimated.
func TestWindowValidAuditsActualCoords(t *testing.T) {
	lig := testLigand(t, "0E6")
	b := NewBatch(lig, 8)
	anchor := Pose{Orientation: chem.QuatIdentity, Torsions: make([]float64, lig.NumTorsions())}
	radius := b.SetWindow(anchor)
	if radius <= 0 {
		t.Fatalf("anchor radius = %v, want > 0", radius)
	}
	const bound = 1.0
	b.SetWindowBound(bound)
	r := rand.New(rand.NewSource(4))
	poses := make([]Pose, 0, 6)
	for k := 0; k < 3; k++ { // tiny translations: within bound
		p := anchor.Clone()
		p.Translation = chem.V(r.Float64()*0.4, r.Float64()*0.4, r.Float64()*0.4)
		poses = append(poses, p)
	}
	esc := anchor.Clone() // escapes: translation alone exceeds the bound
	esc.Translation = chem.V(1.7, 0, 0)
	poses = append(poses, esc)
	tors := anchor.Clone() // torsion spin: swings arm atoms beyond 1 Å
	if lig.NumTorsions() > 0 {
		tors.Torsions[0] = math.Pi
	} else {
		tors.Translation = chem.V(0, 2, 0)
	}
	poses = append(poses, tors, anchor)
	b.Reset()
	for _, p := range poses {
		b.Append(p)
	}
	valid := b.WindowValid()
	anchorC := lig.Coords(anchor)
	for p := range poses {
		c := lig.Coords(poses[p])
		want := true
		for i := range c {
			if c[i].Dist2(anchorC[i]) > bound*bound {
				want = false
				break
			}
		}
		if valid[p] != want {
			t.Errorf("pose %d: WindowValid = %v, actual-displacement check = %v", p, valid[p], want)
		}
	}
	if valid[3] {
		t.Error("escaping translation pose admitted to the shared path")
	}
	if !valid[len(poses)-1] {
		t.Error("the anchor pose itself rejected")
	}
	// Deactivating the bound turns the window path off without
	// discarding the anchor.
	b.SetWindowBound(0)
	if _, _, ok := b.Window(); ok {
		t.Error("Window reports ok with a non-positive bound")
	}
	b.ClearWindow()
}

// TestPerturbApplyRawMatchesPerturbInto pins bitwise equivalence of
// the split draw/apply perturbation (PerturbDraws + PerturbApplyRaw)
// with the fused PerturbInto on a shared RNG stream — the identity
// that lets the windowed Solis-Wets hoist a window's draws before
// applying any of them.
func TestPerturbApplyRawMatchesPerturbInto(t *testing.T) {
	lig := testLigand(t, "0E6")
	nt := lig.NumTorsions()
	src := Pose{
		Translation: chem.V(0.3, -1.2, 2.5),
		Orientation: chem.RandomQuat(0.1, 0.7, 0.4),
		Torsions:    make([]float64, nt),
	}
	for i := range src.Torsions {
		src.Torsions[i] = float64(i) * 0.3
	}
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	raw := make([]float64, PerturbDrawCount(nt))
	fused := Pose{Torsions: make([]float64, nt)}
	split := Pose{Torsions: make([]float64, nt)}
	for step := 0; step < 50; step++ {
		dt := 0.5 * math.Pow(0.9, float64(step%7))
		da := 0.15 * math.Pow(0.9, float64(step%5))
		PerturbInto(r1, &fused, src, dt, da)
		PerturbDraws(r2, raw)
		PerturbApplyRaw(raw, &split, src, dt, da)
		if fused.Translation != split.Translation || fused.Orientation != split.Orientation {
			t.Fatalf("step %d: rigid body diverged:\nfused %+v\nsplit %+v", step, fused, split)
		}
		for k := range fused.Torsions {
			if fused.Torsions[k] != split.Torsions[k] {
				t.Fatalf("step %d torsion %d: %g != %g", step, k, fused.Torsions[k], split.Torsions[k])
			}
		}
		src = fused.Clone() // walk the pose so the streams stay aligned
	}
}
