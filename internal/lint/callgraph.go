// A static call graph over every package of one Run, for the
// interprocedural analyzers (detflow's determinism taint). Nodes are
// functions declared in loaded target packages; edges are statically
// dispatched calls. Because the loader type-checks a package once as a
// target and again as a dependency of other targets, two distinct
// *types.Func instances can denote the same function — nodes and edges
// are therefore keyed by a canonical "pkgpath.Recv.Name" string, which
// is stable across instances. Dynamic dispatch (interface methods,
// function values) produces no edge; detflow documents that limit.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// callGraph indexes every declared function of a Run by canonical key.
type callGraph struct {
	nodes map[string]*cgNode
}

// cgNode is one declared function or method.
type cgNode struct {
	key      string
	pkg      *Package
	decl     *ast.FuncDecl
	testOnly bool // declared in a _test.go file
	edges    []cgEdge
}

// cgEdge is one static call site inside the node's body (function
// literals included: code in a closure still runs on behalf of the
// declaring function).
type cgEdge struct {
	to   string // canonical callee key; may be outside the graph
	pos  token.Pos
	call *ast.CallExpr
}

// funcKey canonicalizes a *types.Func. Methods include the bare
// receiver type name so (*T).M and T.M collapse to "path.T.M".
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	path := pkgPathOf(fn)
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, name, ok := namedFrom(sig.Recv().Type()); ok {
			return path + "." + name + "." + fn.Name()
		}
		return path + ".?." + fn.Name()
	}
	return path + "." + fn.Name()
}

// buildCallGraph walks every declared function in pkgs and records its
// static call sites.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{nodes: map[string]*cgNode{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				def, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				key := funcKey(def)
				if key == "" {
					continue
				}
				node := &cgNode{
					key:      key,
					pkg:      pkg,
					decl:     fd,
					testOnly: pkg.IsTestFile(fd.Pos()),
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := pkg.calleeFunc(call)
					if callee == nil {
						return true
					}
					node.edges = append(node.edges, cgEdge{
						to:   funcKey(callee),
						pos:  call.Pos(),
						call: call,
					})
					return true
				})
				// Target+dependency double-loading can present the same
				// function twice; first (non-test) declaration wins.
				if prev, ok := cg.nodes[key]; !ok || (prev.testOnly && !node.testOnly) {
					cg.nodes[key] = node
				}
			}
		}
	}
	return cg
}

// CallGraphFor returns the per-Run call graph, building it on first
// use.
func (p *Pass) CallGraphFor() *callGraph {
	if p.shared.callgraph == nil {
		p.shared.callgraph = buildCallGraph(p.all)
	}
	return p.shared.callgraph
}
