package chem

import "math"

// Quat is a rotation quaternion (W + Xi + Yj + Zk). Docking poses use
// quaternions for the rigid-body orientation gene, exactly as
// AutoDock's state variables do.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity is the no-rotation quaternion.
var QuatIdentity = Quat{W: 1}

// AxisAngleQuat builds a quaternion rotating by angle (radians) about
// the given axis. The axis need not be normalized; a zero axis yields
// the identity.
func AxisAngleQuat(axis Vec3, angle float64) Quat {
	u := axis.Unit()
	if u.Norm2() == 0 {
		return QuatIdentity
	}
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: u.X * s, Y: u.Y * s, Z: u.Z * s}
}

// Mul returns the Hamilton product q*r (apply r, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate of q.
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns the quaternion norm.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalize returns q scaled to unit norm. A zero quaternion becomes
// the identity.
func (q Quat) Normalize() Quat {
	n := q.Norm()
	if n == 0 {
		return QuatIdentity
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation q to vector v (q must be unit norm).
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0,v) * q^-1, expanded to avoid allocations.
	tx := 2 * (q.Y*v.Z - q.Z*v.Y)
	ty := 2 * (q.Z*v.X - q.X*v.Z)
	tz := 2 * (q.X*v.Y - q.Y*v.X)
	return Vec3{
		v.X + q.W*tx + (q.Y*tz - q.Z*ty),
		v.Y + q.W*ty + (q.Z*tx - q.X*tz),
		v.Z + q.W*tz + (q.X*ty - q.Y*tx),
	}
}

// Slerp spherically interpolates between q and r at parameter t in
// [0,1]. Used by local-search perturbation damping.
func (q Quat) Slerp(r Quat, t float64) Quat {
	dot := q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
	if dot < 0 { // take the short arc
		r = Quat{-r.W, -r.X, -r.Y, -r.Z}
		dot = -dot
	}
	if dot > 0.9995 { // nearly parallel: lerp + renormalize
		return Quat{
			q.W + t*(r.W-q.W),
			q.X + t*(r.X-q.X),
			q.Y + t*(r.Y-q.Y),
			q.Z + t*(r.Z-q.Z),
		}.Normalize()
	}
	theta := math.Acos(dot)
	s := math.Sin(theta)
	a := math.Sin((1-t)*theta) / s
	b := math.Sin(t*theta) / s
	return Quat{
		a*q.W + b*r.W,
		a*q.X + b*r.X,
		a*q.Y + b*r.Y,
		a*q.Z + b*r.Z,
	}
}

// RandomQuat returns a uniformly distributed unit quaternion given
// three uniform random numbers in [0,1) (Shoemake's method). Callers
// supply randomness so docking runs stay deterministic per seed.
func RandomQuat(u1, u2, u3 float64) Quat {
	s1 := math.Sqrt(1 - u1)
	s2 := math.Sqrt(u1)
	a := 2 * math.Pi * u2
	b := 2 * math.Pi * u3
	return Quat{
		W: s2 * math.Cos(b),
		X: s1 * math.Sin(a),
		Y: s1 * math.Cos(a),
		Z: s2 * math.Sin(b),
	}
}

// RotationAngle returns the rotation angle of the unit quaternion q,
// in [0, π].
func (q Quat) RotationAngle() float64 {
	w := q.W
	if w > 1 {
		w = 1
	} else if w < -1 {
		w = -1
	}
	a := 2 * math.Acos(math.Abs(w))
	return a
}

// RotationAngleTo returns the angle in [0, π] of the relative rotation
// q·r⁻¹ between two unit quaternions: how far a vector rotated by r
// can swing when rotated by q instead. Window screening uses it to
// bound the orientation contribution to a pose's displacement from
// its anchor.
func (q Quat) RotationAngleTo(r Quat) float64 {
	// |⟨q,r⟩| = |cos(α/2)| of the relative rotation; the absolute value
	// folds the double cover.
	dot := q.W*r.W + q.X*r.X + q.Y*r.Y + q.Z*r.Z
	if dot < 0 {
		dot = -dot
	}
	if dot > 1 {
		dot = 1
	}
	return 2 * math.Acos(dot)
}
