package prov

import (
	"fmt"
	"time"
)

// The PROV-Wf relation names used throughout SciCumulus and the
// paper's queries.
const (
	TableWorkflow   = "hworkflow"
	TableActivity   = "hactivity"
	TableActivation = "hactivation"
	TableFile       = "hfile"
	TableRelation   = "hrelation"
	TableDocking    = "ddocking" // domain table filled by extractors
)

// Activation status values recorded in hactivation.status.
const (
	StatusRunning  = "RUNNING"
	StatusFinished = "FINISHED"
	StatusFailed   = "FAILED"
	StatusAborted  = "ABORTED" // pre-execution abort (e.g. Hg guard)
)

// NewProvWfDB creates a database with the PROV-Wf schema the paper's
// queries expect, plus the domain extractor table for docking results.
func NewProvWfDB() (*DB, error) {
	db := NewDB()
	type def struct {
		name string
		cols []Column
	}
	defs := []def{
		{TableWorkflow, []Column{
			{"wkfid", TInt}, {"tag", TString}, {"description", TString},
			{"exectag", TString}, {"expdir", TString},
		}},
		{TableActivity, []Column{
			{"actid", TInt}, {"wkfid", TInt}, {"tag", TString},
			{"templatedir", TString}, {"activation", TString}, {"status", TString},
		}},
		{TableActivation, []Column{
			{"taskid", TInt}, {"actid", TInt}, {"wkfid", TInt},
			{"status", TString}, {"starttime", TTime}, {"endtime", TTime},
			{"vmid", TString}, {"failures", TInt}, {"command", TString},
		}},
		{TableFile, []Column{
			{"fileid", TInt}, {"taskid", TInt}, {"actid", TInt}, {"wkfid", TInt},
			{"fname", TString}, {"fsize", TInt}, {"fdir", TString},
		}},
		{TableRelation, []Column{
			{"relid", TInt}, {"actid", TInt}, {"relname", TString},
			{"reltype", TString}, {"filename", TString},
		}},
		{TableDocking, []Column{
			{"taskid", TInt}, {"wkfid", TInt}, {"receptor", TString},
			{"ligand", TString}, {"program", TString},
			{"feb", TFloat}, {"rmsd", TFloat}, {"nruns", TInt},
		}},
	}
	for _, d := range defs {
		if err := db.CreateTable(d.name, d.cols); err != nil {
			return nil, err
		}
	}
	declareDefaultIndexes(db)
	return db, nil
}

// declareDefaultIndexes creates hash indexes on the key columns the
// activation lifecycle and the paper's Figure-10 analytical queries
// probe: taskid makes CloseActivation O(1) under the 80k-activation
// sweep, and the join/filter keys feed the query planner's index
// seeds. Best-effort: tables or columns absent from a given database
// (e.g. an archive saved by an older build) are skipped.
func declareDefaultIndexes(db *DB) {
	for _, ix := range [...]struct{ table, col string }{
		{TableWorkflow, "wkfid"},
		{TableActivity, "actid"},
		{TableActivity, "wkfid"},
		{TableActivation, "taskid"},
		{TableActivation, "actid"},
		{TableActivation, "wkfid"},
		{TableFile, "taskid"},
		{TableFile, "actid"},
		{TableDocking, "taskid"},
		{TableDocking, "receptor"},
		{TableDocking, "ligand"},
		{TableDocking, "program"},
	} {
		//lint:ignore discarderr best-effort by design: skip tables/columns absent from older archives
		_ = db.CreateIndex(ix.table, ix.col)
	}
}

// InsertWorkflow records an hworkflow row.
func (db *DB) InsertWorkflow(wkfid int64, tag, description, exectag, expdir string) error {
	return db.Insert(TableWorkflow, []Value{wkfid, tag, description, exectag, expdir})
}

// InsertActivity records an hactivity row.
func (db *DB) InsertActivity(actid, wkfid int64, tag, templatedir, activation string) error {
	return db.Insert(TableActivity, []Value{actid, wkfid, tag, templatedir, activation, "READY"})
}

// InsertRelation records an hrelation row (the Input/Output relation
// declarations of the XML spec, Figure 2).
func (db *DB) InsertRelation(relid, actid int64, relname, reltype, filename string) error {
	return db.Insert(TableRelation, []Value{relid, actid, relname, reltype, filename})
}

// InsertActivation records a complete hactivation row in one shot,
// for activations whose outcome is already terminal when recorded
// (steering aborts, pre-dispatch failures). Activations that actually
// execute must use the BeginActivation/CloseActivation pair so the
// RUNNING state is visible to runtime queries and re-execution; the
// provpair analyzer (cmd/scilint) enforces the pairing.
func (db *DB) InsertActivation(taskid, actid, wkfid int64, status string, start, end time.Time, vmid string, failures int64, command string) error {
	return db.Insert(TableActivation, []Value{
		taskid, actid, wkfid, status, start, end, vmid, failures, command,
	})
}

// BeginActivation opens an activation: it inserts a RUNNING
// hactivation row (endtime provisionally equal to starttime) that a
// matching CloseActivation completes. Every BeginActivation must be
// paired with a CloseActivation on all control-flow paths — an
// activation left RUNNING by a completed code path is
// indistinguishable from a crash, which breaks the ~10% transient
// re-execution accounting the paper's fault-tolerance results rely
// on. The scilint provpair analyzer checks this statically.
func (db *DB) BeginActivation(taskid, actid, wkfid int64, start time.Time, vmid, command string) error {
	return db.Insert(TableActivation, []Value{
		taskid, actid, wkfid, StatusRunning, start, start, vmid, int64(0), command,
	})
}

// CloseActivation updates the status/endtime/failures of an existing
// activation row. With the default taskid index this is an O(1) point
// update rather than a table scan — the difference between O(n) and
// O(n²) total close cost over the paper's 80,000-activation sweep.
func (db *DB) CloseActivation(taskid int64, status string, end time.Time, failures int64) error {
	n, err := db.UpdateByKey(TableActivation, "taskid", taskid,
		func(row []Value) {
			row[3] = status
			row[5] = end
			row[7] = failures
		})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("prov: activation %d not found", taskid)
	}
	return nil
}

// InsertFile records an hfile row.
func (db *DB) InsertFile(fileid, taskid, actid, wkfid int64, fname string, fsize int64, fdir string) error {
	return db.Insert(TableFile, []Value{fileid, taskid, actid, wkfid, fname, fsize, fdir})
}

// InsertDocking records a domain extractor row: the best FEB/RMSD
// mined from a DLG file.
func (db *DB) InsertDocking(taskid, wkfid int64, receptor, ligand, program string, feb, rmsd float64, nruns int64) error {
	return db.Insert(TableDocking, []Value{taskid, wkfid, receptor, ligand, program, feb, rmsd, nruns})
}
