package core

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/data"
	"repro/internal/prep"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workflow"
)

// chainTags returns SciDock's activity chain for a docking program,
// in execution order.
func chainTags(program prep.Program) []string {
	dockTag := sched.TagDockAD4
	if program == prep.ProgramVina {
		dockTag = sched.TagDockVina
	}
	return []string{
		sched.TagBabel, sched.TagLigPrep, sched.TagRecPrep, sched.TagGPF,
		sched.TagAutoGrid, sched.TagFilter, sched.TagDockPrep, dockTag,
	}
}

// PerfConfig parameterizes the scalability sweep behind Figures 7-9:
// virtual-time-only execution of the full 10,000-pair workload at
// each core count, using the calibrated cost model and the greedy
// scheduler but skipping the chemistry (whose outputs the sweep does
// not consume).
type PerfConfig struct {
	Program   prep.Program
	Dataset   data.Dataset
	CoresList []int
	Scheduler sched.Scheduler // nil = calibrated greedy (per core count)
	CostModel *sched.CostModel
	HgGuard   bool
	// Steered models the post-§V.C state of the deployment: the
	// problematic ligands have been identified via provenance and
	// re-parameterized, so they dock normally instead of looping.
	// The paper's Figure 7-9 measurements are post-steering runs.
	Steered bool
}

// PerfSweep measures TET at each core count and returns the
// scalability series. Deterministic: repeated sweeps agree exactly.
func PerfSweep(cfg PerfConfig) (stats.Series, error) {
	if cfg.Dataset.NumPairs() == 0 {
		return stats.Series{}, fmt.Errorf("core: perf sweep over empty dataset")
	}
	if len(cfg.CoresList) == 0 {
		return stats.Series{}, fmt.Errorf("core: perf sweep needs core counts")
	}
	if cfg.CostModel == nil {
		cfg.CostModel = sched.NewCostModel()
	}
	label := "SciDock-AD4"
	if cfg.Program == prep.ProgramVina {
		label = "SciDock-Vina"
	}
	series := stats.Series{Label: label}
	for _, cores := range cfg.CoresList {
		if cores < 1 {
			return stats.Series{}, fmt.Errorf("core: invalid core count %d", cores)
		}
		tet, err := perfRun(cfg, cores)
		if err != nil {
			return stats.Series{}, err
		}
		series.Points = append(series.Points, stats.PerfPoint{Cores: cores, TET: tet})
	}
	return series, nil
}

// perfRun replays the workflow's timing at one core count.
func perfRun(cfg PerfConfig, cores int) (float64, error) {
	sim := cloud.NewSim()
	cluster := cloud.NewCluster(sim)
	vms, err := cluster.BuildVirtualCluster(cores)
	if err != nil {
		return 0, err
	}
	scheduler := cfg.Scheduler
	if scheduler == nil {
		g := sched.NewGreedy()
		g.WorkerCap = cores
		scheduler = g
	}
	// The sweep replays the barrier execution model: whole stages
	// planned at once through the batch adapter.
	batch := sched.Batch{S: scheduler}

	clock := 0.0
	for _, vm := range vms {
		if vm.ReadyAt > clock {
			clock = vm.ReadyAt
		}
	}

	pairs := cfg.Dataset.Pairs()
	alive := make([]bool, len(pairs))
	for i := range alive {
		alive[i] = true
	}
	var taskid int64
	for _, tag := range chainTags(cfg.Program) {
		var acts []sched.Activation
		for i, p := range pairs {
			if !alive[i] {
				continue
			}
			taskid++
			key := p.String()
			switch {
			case tag == sched.TagRecPrep && data.ReceptorMeta(p.Receptor).ContainsHg:
				alive[i] = false
				if cfg.HgGuard {
					continue // aborted pre-execution, zero cost
				}
				acts = append(acts, sched.Activation{
					ID: taskid, Tag: tag, Key: key,
					Attempts: []float64{sched.LoopTimeout},
				})
			case isDockTag(tag) && data.LigandMeta(p.Ligand).Problematic && !cfg.Steered:
				alive[i] = false
				acts = append(acts, sched.Activation{
					ID: taskid, Tag: tag, Key: key,
					Attempts: []float64{sched.LoopTimeout},
				})
			default:
				cost := cfg.CostModel.Sample(tag, key)
				acts = append(acts, sched.Activation{
					ID: taskid, Tag: tag, Key: key,
					Attempts: cfg.CostModel.Attempts(tag, key, cost),
				})
			}
		}
		if len(acts) == 0 {
			continue
		}
		_, makespan, err := batch.Schedule(clock, acts, vms)
		if err != nil {
			return 0, err
		}
		clock += makespan
	}
	return clock, nil
}

func isDockTag(tag string) bool {
	return tag == sched.TagDockAD4 || tag == sched.TagDockVina
}

// TimingWorkflow builds a SciDock chain whose bodies only thread
// tuples through (no chemistry, no files): the engine still records
// full provenance with cost-model virtual durations, which is all
// Figures 5, 6 and 10 need. The 1,000-pair provenance milieu of the
// paper regenerates in well under a second.
func TimingWorkflow(cfg Config, program prep.Program) (*workflow.Workflow, error) {
	w, err := BuildWorkflow(cfg, program)
	if err != nil {
		return nil, err
	}
	pass := func(in workflow.Tuple) (*workflow.ActivationResult, error) {
		return &workflow.ActivationResult{Outputs: []workflow.Tuple{in}}, nil
	}
	for _, a := range w.Activities {
		a.Run = pass
	}
	return w, w.Validate()
}
