// Package grid reproduces AutoGrid 4 (SciDock activity 5): it
// precomputes, for a rigid receptor, one affinity map per ligand atom
// type plus electrostatic and desolvation maps on a regular lattice,
// and serves trilinearly interpolated lookups to the AutoDock 4
// docking engine.
package grid

import (
	"fmt"
	"math"

	"repro/internal/chem"
)

// Spec describes the lattice: centre, points per axis and spacing, the
// same fields the GPF carries.
type Spec struct {
	Center  chem.Vec3
	NPts    [3]int // points per dimension
	Spacing float64
}

// Origin returns the position of grid node (0,0,0).
func (s Spec) Origin() chem.Vec3 {
	return s.Center.Sub(chem.V(
		float64(s.NPts[0]-1)/2*s.Spacing,
		float64(s.NPts[1]-1)/2*s.Spacing,
		float64(s.NPts[2]-1)/2*s.Spacing,
	))
}

// NumPoints returns the total lattice size.
func (s Spec) NumPoints() int { return s.NPts[0] * s.NPts[1] * s.NPts[2] }

// Validate checks the spec is usable.
func (s Spec) Validate() error {
	for i, n := range s.NPts {
		if n < 2 {
			return fmt.Errorf("grid: npts[%d] = %d, need ≥ 2", i, n)
		}
	}
	if s.Spacing <= 0 {
		return fmt.Errorf("grid: spacing %v must be positive", s.Spacing)
	}
	return nil
}

// OutOfBoxPenalty is the energy returned for lookups outside the grid
// box, mirroring AutoDock's wall behaviour that confines the search.
const OutOfBoxPenalty = 1e4

// EnergyClamp caps per-point map values so close contacts do not
// produce infinities (AutoGrid clamps at 100,000).
const energyClamp = 1e5

// interactionCutoff is the non-bonded cutoff in Å (AutoGrid uses 8 Å).
const interactionCutoff = 8.0

// smoothRadius is AutoGrid's default potential smoothing (the GPF
// "smooth 0.5" keyword): the pairwise potential at r is replaced by
// its minimum over |r'-r| ≤ smooth/2, flattening the well bottom so
// small coordinate errors in crystal structures are not punished.
const smoothRadius = 0.5

// Maps holds every precomputed map for one receptor.
type Maps struct {
	Spec     Spec
	Receptor string
	affinity map[chem.AtomType][]float64
	elec     []float64
	desolv   []float64
}

// Types returns the atom types with affinity maps, in no particular
// order.
func (m *Maps) Types() []chem.AtomType {
	out := make([]chem.AtomType, 0, len(m.affinity))
	for t := range m.affinity {
		out = append(out, t)
	}
	return out
}

// Generate runs AutoGrid: for every lattice point, accumulate the
// pairwise receptor interaction for each requested probe type, plus
// electrostatic and desolvation terms. Receptor atoms are binned into
// cells so each point only visits atoms within the cutoff.
func Generate(receptor *chem.Molecule, spec Spec, types []chem.AtomType) (*Maps, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if receptor.NumAtoms() == 0 {
		return nil, fmt.Errorf("grid: receptor %q has no atoms", receptor.Name)
	}
	for _, t := range types {
		if !t.Params().Supported {
			return nil, fmt.Errorf("grid: probe type %s has no parameters", t)
		}
	}
	for i, a := range receptor.Atoms {
		if !a.Element.Info().DockSupported {
			return nil, fmt.Errorf("grid: receptor %q atom %d (%s) unsupported",
				receptor.Name, i, a.Element)
		}
	}

	cells := buildCellList(receptor, interactionCutoff)
	n := spec.NumPoints()
	m := &Maps{
		Spec:     spec,
		Receptor: receptor.Name,
		affinity: make(map[chem.AtomType][]float64, len(types)),
		elec:     make([]float64, n),
		desolv:   make([]float64, n),
	}
	for _, t := range types {
		if _, dup := m.affinity[t]; dup {
			continue
		}
		m.affinity[t] = make([]float64, n)
	}
	probes := make([]chem.TypeParams, 0, len(m.affinity))
	probeSlices := make([][]float64, 0, len(m.affinity))
	for t, sl := range m.affinity {
		probes = append(probes, t.Params())
		probeSlices = append(probeSlices, sl)
	}

	origin := spec.Origin()
	idx := 0
	for k := 0; k < spec.NPts[2]; k++ {
		for j := 0; j < spec.NPts[1]; j++ {
			for i := 0; i < spec.NPts[0]; i++ {
				p := origin.Add(chem.V(
					float64(i)*spec.Spacing,
					float64(j)*spec.Spacing,
					float64(k)*spec.Spacing,
				))
				var elec, desolv float64
				affin := make([]float64, len(probes))
				cells.forNeighbors(p, func(ai int) {
					a := &receptor.Atoms[ai]
					r2 := a.Pos.Dist2(p)
					if r2 > interactionCutoff*interactionCutoff {
						return
					}
					r := math.Sqrt(r2)
					if r < 0.5 {
						r = 0.5 // AutoGrid's rmin clamp
					}
					elec += electrostaticTerm(a.Charge, r)
					desolv += desolvationTerm(a, r)
					at := a.Type
					if at == "" {
						at = chem.TypeForElement(a.Element)
					}
					ap := at.Params()
					for pi := range probes {
						affin[pi] += PairEnergySmoothed(probes[pi], ap, r, smoothRadius)
					}
				})
				m.elec[idx] = clamp(elec)
				m.desolv[idx] = clamp(desolv)
				for pi := range probes {
					probeSlices[pi][idx] = clamp(affin[pi])
				}
				idx++
			}
		}
	}
	return m, nil
}

func clamp(e float64) float64 {
	if e > energyClamp {
		return energyClamp
	}
	if e < -energyClamp {
		return -energyClamp
	}
	return e
}

// PairEnergy is the AD4 pairwise dispersion/repulsion potential
// between a probe (ligand) type and a receptor type at distance r:
// a 12-6 Lennard-Jones for ordinary pairs and a directional-averaged
// 12-10 well for hydrogen-bonding pairs.
func PairEnergy(probe, rec chem.TypeParams, r float64) float64 {
	rij := (probe.Rii + rec.Rii) / 2
	eps := math.Sqrt(probe.Epsii * rec.Epsii)
	hbond := (probe.HBond == 1 && rec.HBond >= 2) || (probe.HBond >= 2 && rec.HBond == 1)
	q := rij / r
	if hbond {
		// AD4's 12-10 hydrogen-bond well, ~5× deeper than dispersion:
		// E = ε_hb (5 (rij/r)^12 − 6 (rij/r)^10).
		eps *= 5
		q2 := q * q
		q10 := q2 * q2 * q2 * q2 * q2
		return eps * (5*q10*q2 - 6*q10)
	}
	// Ordinary 12-6 Lennard-Jones: E = ε ((rij/r)^12 − 2 (rij/r)^6).
	q6 := q * q * q
	q6 *= q6
	return eps * (q6*q6 - 2*q6)
}

// PairEnergySmoothed applies AutoGrid's potential smoothing to
// PairEnergy: the value at r is the minimum of the raw potential over
// the window |r'-r| ≤ smooth/2. Both potentials used here decrease
// monotonically to their single minimum at rmin and increase beyond,
// so the windowed minimum is analytic:
//
//	r window contains rmin → E(rmin)
//	window left of rmin    → E(r + smooth/2)
//	window right of rmin   → E(r - smooth/2)
func PairEnergySmoothed(probe, rec chem.TypeParams, r, smooth float64) float64 {
	if smooth <= 0 {
		return PairEnergy(probe, rec, r)
	}
	half := smooth / 2
	rij := (probe.Rii + rec.Rii) / 2
	// The 12-6 minimum sits at rij; the 12-10 at rij as well (both
	// are parameterized so the well bottom is at the radius sum).
	switch {
	case r+half < rij:
		return PairEnergy(probe, rec, r+half)
	case r-half > rij:
		return PairEnergy(probe, rec, r-half)
	default:
		return PairEnergy(probe, rec, rij)
	}
}

// electrostaticTerm is the Coulomb interaction of a unit probe charge
// with receptor charge q at distance r, using the sigmoidal
// distance-dependent dielectric of Mehler & Solmajer that AutoGrid
// applies (approximated by ε(r) = 4r for r > 1).
func electrostaticTerm(q, r float64) float64 {
	const coulomb = 332.06 // kcal·Å/(mol·e²)
	eps := dielectric(r)
	return coulomb * q / (eps * r)
}

// dielectric is the sigmoidal distance-dependent dielectric of
// Mehler & Solmajer (1991), the function AutoGrid applies:
//
//	ε(r) = A + B / (1 + k·exp(−λBr))
//
// with A = −8.5525, B = ε₀ − A = 86.9525, k = 7.7839 and
// λ = 0.003627. ε rises from ~1 at contact toward bulk water's ~78.
func dielectric(r float64) float64 {
	const (
		a      = -8.5525
		bCoef  = 78.4 - a
		k      = 7.7839
		lambda = 0.003627
	)
	e := a + bCoef/(1+k*math.Exp(-lambda*bCoef*r))
	if e < 1 {
		e = 1
	}
	return e
}

// desolvationTerm is the gaussian-weighted atomic desolvation term of
// the AD4 force field.
func desolvationTerm(a *chem.Atom, r float64) float64 {
	const sigma = 3.6
	at := a.Type
	if at == "" {
		at = chem.TypeForElement(a.Element)
	}
	p := at.Params()
	w := math.Exp(-r * r / (2 * sigma * sigma))
	// Volume × solvation parameter, plus a charge-dependent component.
	return (p.SolPar*p.SolVol + 0.01097*math.Abs(a.Charge)*p.SolVol) * w * 0.1
}
