package tables

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
)

// tolerance32 loosens the float64 interpolation bound by the float32
// node quantization: one rounding of each node at build time, ≤
// |f|·2⁻²⁴ relative plus a small absolute floor for denormal-scale
// values. See DESIGN.md "Batched scoring and SoA layout — float32
// error-bound methodology".
func tolerance32(analytic float64) float64 {
	return tolerance(analytic) + 1e-6 + 1.2e-7*math.Abs(analytic)
}

// sweep32 is sweep for float32-node tables, against the same analytic
// oracle with the quantization-widened bound.
func sweep32(t *testing.T, name string, lo float64, tbl *Radial32, analytic func(r float64) float64) {
	t.Helper()
	check := func(r float64) {
		t.Helper()
		want := analytic(r)
		got := tbl.At2(r * r)
		if d := math.Abs(got - want); d > tolerance32(want) {
			t.Fatalf("%s: r=%.6f table=%.8g analytic=%.8g |Δ|=%.3g > tol %.3g",
				name, r, got, want, d, tolerance32(want))
		}
	}
	for r := lo; r <= Cutoff; r += 0.01 {
		check(r)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		check(lo + rng.Float64()*(Cutoff-lo))
	}
}

func TestAD4Smoothed32MatchesAnalytic(t *testing.T) {
	for _, a := range sweepTypes {
		for _, b := range sweepTypes {
			pa, pb := a.Params(), b.Params()
			sweep32(t, "AD4Smoothed32("+string(a)+","+string(b)+")", RMin,
				AD4Smoothed32(a, b), func(r float64) float64 {
					return PairEnergySmoothed(pa, pb, r, SmoothRadius)
				})
		}
	}
}

func TestElectrostatic32MatchesAnalytic(t *testing.T) {
	sweep32(t, "Electrostatic32", RMin, Electrostatic32(), ElecScale)
}

func TestDesolvation32MatchesAnalytic(t *testing.T) {
	sweep32(t, "Desolvation32", RMin, Desolvation32(), DesolvWeight)
}

// TestCacheVariantsDistinct pins the cache-key fix: the float64 and
// float32 representations of the same (kind, pair) must live under
// distinct keys, so a campaign mixing both map representations in one
// process is never served the wrong node storage. Before the variant
// field the second representation to ask would hit the first's entry
// and fail its type assertion.
func TestCacheVariantsDistinct(t *testing.T) {
	t64 := AD4Smoothed(chem.TypeC, chem.TypeOA)
	t32 := AD4Smoothed32(chem.TypeC, chem.TypeOA)
	if t64 == nil || t32 == nil {
		t.Fatal("variant lookup returned nil")
	}
	// Both variants stay cached and symmetric after interleaved use.
	if AD4Smoothed(chem.TypeOA, chem.TypeC) != t64 {
		t.Error("float64 entry evicted or re-keyed by the float32 build")
	}
	if AD4Smoothed32(chem.TypeOA, chem.TypeC) != t32 {
		t.Error("Radial32 not symmetric-cached")
	}
	if Electrostatic32() != Electrostatic32() {
		t.Error("Electrostatic32 rebuilt per call")
	}
	// The two representations agree to float32 node precision.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		r2 := RMin2 + rng.Float64()*(Cutoff*Cutoff-RMin2)
		a, b := t64.At2(r2), t32.At2(r2)
		if d := math.Abs(a - b); d > 1e-6+1.2e-7*math.Abs(a) {
			t.Fatalf("variants diverge at r2=%v: %v vs %v", r2, a, b)
		}
	}
}
