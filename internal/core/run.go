package core

import (
	"context"
	"fmt"

	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/engine"
	"repro/internal/parallel"
	"repro/internal/prep"
	"repro/internal/sched"
	"repro/internal/workflow"
)

// Mode selects how SciDock assigns docking programs.
type Mode int

// Campaign modes.
const (
	// ModeAD4 forces AutoDock 4 for every pair (the paper's
	// Scenario I performance runs).
	ModeAD4 Mode = iota
	// ModeVina forces Vina for every pair (Scenario II).
	ModeVina
	// ModeAdaptive applies the docking filter: small receptors dock
	// with AD4, large with Vina — two workflows, as deployed.
	ModeAdaptive
)

func (m Mode) String() string {
	switch m {
	case ModeAD4:
		return "ad4"
	case ModeVina:
		return "vina"
	case ModeAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a SciDock campaign.
type Config struct {
	Mode    Mode
	Dataset data.Dataset
	Cores   int
	Effort  Effort
	Seed    int64
	ExpDir  string

	// HgGuard enables the steering routine added in §V.C: receptors
	// known (from provenance) to carry Hg are aborted before
	// execution instead of looping.
	HgGuard bool
	// WriteMaps materializes AutoGrid's .map files on the shared file
	// system (the bulk of the paper's "600 GB per execution"). Off by
	// default: campaign-scale sweeps only need the in-memory grids.
	WriteMaps bool
	// GridFloat32 stores grid-map lattices single precision, halving
	// the map memory of a campaign. Docking scores shift by at most
	// the lattice rounding (≤ |value|·2⁻²⁴ per corner, pinned by the
	// internal/grid equivalence tests); the analytic reference path is
	// unaffected and remains the golden oracle.
	GridFloat32 bool
	// ScorePrecision selects candidate evaluation in both docking
	// engines: dock.PrecisionExact (the default) scores every candidate
	// through the bit-exact kernels; dock.PrecisionTolerance screens
	// candidates with the tolerance-bounded fast kernels and confirms
	// every potential improvement exactly. Unlike GridFloat32, the
	// screen is conservative — every persisted energy is exact — so
	// campaign output is byte-identical across the two modes (pinned by
	// TestScorePrecisionCampaign); tolerance mode just spends fewer
	// cycles per rejected candidate.
	ScorePrecision dock.Precision
	// LigandBlacklist marks problematic ligands discovered via
	// provenance; blacklisted ligands dock normally in this
	// reproduction (the paper re-ran them after parameter fixes).
	LigandBlacklist map[string]bool

	// Tokens, when set, charges the campaign's worker fan-outs to a
	// per-campaign account on the shared CPU budget, so concurrent
	// campaigns in one process degrade fairly. Nil = the global pool.
	Tokens *parallel.Account

	// Engine knobs (optional).
	Scheduler       sched.Scheduler
	CostModel       *sched.CostModel
	Adaptive        *sched.AdaptivePolicy
	Parallelism     int
	DisableFailures bool
	// Runtime selects the execution engine: the pipelined dataflow
	// runtime (default) or the legacy stage-barrier executor, kept for
	// ablation.
	Runtime engine.Runtime
	// OnStageComplete receives runtime-steering snapshots after each
	// activity stage (§IV.B's runtime provenance monitoring).
	OnStageComplete func(engine.StageEvent)
	// ProvenanceEstimates orders scheduling by provenance history
	// instead of true durations (SciCumulus' weighted cost model).
	ProvenanceEstimates bool
}

func (c *Config) fillDefaults() error {
	if c.Cores < 1 {
		return fmt.Errorf("core: cores %d must be positive", c.Cores)
	}
	if c.Dataset.NumPairs() == 0 {
		return fmt.Errorf("core: empty dataset")
	}
	if c.Effort == (Effort{}) {
		c.Effort = CampaignEffort()
	}
	if c.ExpDir == "" {
		c.ExpDir = "/root/exp_SciDock/"
	}
	return c.Effort.Validate()
}

// Campaign is the outcome of one SciDock execution: the engine (with
// its provenance database, shared FS and bill) plus per-workflow
// reports.
type Campaign struct {
	Engine  *engine.Engine
	Reports []*engine.Report
	Config  Config

	// Execution plan, fixed at admission by NewCampaign.
	programs []prep.Program
	input    *workflow.Relation
}

// TET returns the campaign's total execution time in virtual seconds
// (workflows run back to back, as the paper's scenarios did).
func (c *Campaign) TET() float64 {
	var t float64
	for _, r := range c.Reports {
		t += r.TET
	}
	return t
}

// HgGuardRule is the steering routine of §V.C: it aborts
// receptor-preparation activations whose receptor carries Hg, using
// dataset metadata the scientists mined from provenance.
func HgGuardRule(tag string, t workflow.Tuple) (string, bool) {
	if tag != sched.TagRecPrep {
		return "", false
	}
	rec := t[FieldReceptor]
	if rec != "" && data.ReceptorMeta(rec).ContainsHg {
		return "Hg present in receptor " + rec, true
	}
	return "", false
}

// NewCampaign validates the config and builds the campaign's engine —
// provenance database, shared FS and virtual cluster — without running
// anything. The split lets a campaign service admit a campaign (and
// serve provenance queries against its live database) before and while
// Execute drives it.
func NewCampaign(cfg Config) (*Campaign, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	opts := engine.Options{
		Cores:               cfg.Cores,
		Scheduler:           cfg.Scheduler,
		CostModel:           cfg.CostModel,
		Adaptive:            cfg.Adaptive,
		Parallelism:         cfg.Parallelism,
		Tokens:              cfg.Tokens,
		DisableFailures:     cfg.DisableFailures,
		Runtime:             cfg.Runtime,
		OnStageComplete:     cfg.OnStageComplete,
		ProvenanceEstimates: cfg.ProvenanceEstimates,
	}
	if cfg.HgGuard {
		opts.AbortRules = append(opts.AbortRules, HgGuardRule)
	}
	var programs []prep.Program
	switch cfg.Mode {
	case ModeAD4:
		programs = []prep.Program{prep.ProgramAD4}
	case ModeVina:
		programs = []prep.Program{prep.ProgramVina}
	case ModeAdaptive:
		programs = []prep.Program{prep.ProgramAD4, prep.ProgramVina}
	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	eng, err := engine.New(opts)
	if err != nil {
		return nil, err
	}
	return &Campaign{
		Engine:   eng,
		Config:   cfg,
		programs: programs,
		input:    InputRelation(cfg.Dataset, cfg.ExpDir),
	}, nil
}

// Execute runs the campaign's workflows back to back on its engine.
// When ctx is cancelled mid-flight the engine closes pending
// activations as ABORTED, the partial report is still appended, and
// Execute returns an error wrapping engine.ErrCancelled; workflows not
// yet started are simply never run.
func (c *Campaign) Execute(ctx context.Context) error {
	for _, p := range c.programs {
		w, err := BuildWorkflow(c.Config, p)
		if err != nil {
			return err
		}
		rep, err := c.Engine.RunContext(ctx, w, c.input)
		if rep != nil {
			c.Reports = append(c.Reports, rep)
		}
		if err != nil {
			return fmt.Errorf("core: %s workflow: %w", p, err)
		}
	}
	return nil
}

// Run executes a SciDock campaign: one workflow for forced modes, two
// (AD4 then Vina) for adaptive mode, sharing one engine so provenance
// accumulates in a single database, as in the paper's deployment.
func Run(cfg Config) (*Campaign, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation threaded through the engine; on
// cancellation the partially executed campaign is returned alongside
// an error wrapping engine.ErrCancelled.
func RunContext(ctx context.Context, cfg Config) (*Campaign, error) {
	camp, err := NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	if err := camp.Execute(ctx); err != nil {
		return camp, err
	}
	return camp, nil
}
