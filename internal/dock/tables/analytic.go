package tables

import (
	"math"

	"repro/internal/chem"
)

// SmoothRadius is AutoGrid's default potential smoothing (the GPF
// "smooth 0.5" keyword): the pairwise potential at r is replaced by
// its minimum over |r'-r| ≤ smooth/2, flattening the well bottom so
// small coordinate errors in crystal structures are not punished.
const SmoothRadius = 0.5

// Coulomb is the electrostatic conversion constant in kcal·Å/(mol·e²).
const Coulomb = 332.06

// DesolvSigma is the gaussian width (Å) of the AD4 desolvation term.
const DesolvSigma = 3.6

// Vina scoring-function weights (Trott & Olson 2010, Table 1).
const (
	VinaWGauss1    = -0.035579
	VinaWGauss2    = -0.005156
	VinaWRepulsion = +0.840245
	VinaWHydrophob = -0.035069
	VinaWHBond     = -0.587439
)

// PairEnergy is the AD4 pairwise dispersion/repulsion potential
// between a probe (ligand) type and a receptor type at distance r:
// a 12-6 Lennard-Jones for ordinary pairs and a directional-averaged
// 12-10 well for hydrogen-bonding pairs.
//
//unit: r=Å result=kcal/mol
func PairEnergy(probe, rec chem.TypeParams, r float64) float64 {
	rij := (probe.Rii + rec.Rii) / 2
	eps := math.Sqrt(probe.Epsii * rec.Epsii)
	hbond := (probe.HBond == 1 && rec.HBond >= 2) || (probe.HBond >= 2 && rec.HBond == 1)
	q := rij / r
	if hbond {
		// AD4's 12-10 hydrogen-bond well, ~5× deeper than dispersion:
		// E = ε_hb (5 (rij/r)^12 − 6 (rij/r)^10).
		eps *= 5
		q2 := q * q
		q10 := q2 * q2 * q2 * q2 * q2
		return eps * (5*q10*q2 - 6*q10)
	}
	// Ordinary 12-6 Lennard-Jones: E = ε ((rij/r)^12 − 2 (rij/r)^6).
	q6 := q * q * q
	q6 *= q6
	return eps * (q6*q6 - 2*q6)
}

// PairEnergySmoothed applies AutoGrid's potential smoothing to
// PairEnergy: the value at r is the minimum of the raw potential over
// the window |r'-r| ≤ smooth/2. Both potentials used here decrease
// monotonically to their single minimum at rmin and increase beyond,
// so the windowed minimum is analytic:
//
//	r window contains rmin → E(rmin)
//	window left of rmin    → E(r + smooth/2)
//	window right of rmin   → E(r - smooth/2)
//
//unit: r=Å smooth=Å result=kcal/mol
func PairEnergySmoothed(probe, rec chem.TypeParams, r, smooth float64) float64 {
	if smooth <= 0 {
		return PairEnergy(probe, rec, r)
	}
	half := smooth / 2
	rij := (probe.Rii + rec.Rii) / 2
	// The 12-6 minimum sits at rij; the 12-10 at rij as well (both
	// are parameterized so the well bottom is at the radius sum).
	switch {
	case r+half < rij:
		return PairEnergy(probe, rec, r+half)
	case r-half > rij:
		return PairEnergy(probe, rec, r-half)
	default:
		return PairEnergy(probe, rec, rij)
	}
}

// Dielectric is the sigmoidal distance-dependent dielectric of
// Mehler & Solmajer (1991), the function AutoGrid applies:
//
//	ε(r) = A + B / (1 + k·exp(−λBr))
//
// with A = −8.5525, B = ε₀ − A = 86.9525, k = 7.7839 and
// λ = 0.003627. ε rises from ~1 at contact toward bulk water's ~78.
//
//unit: r=Å result=dimensionless
func Dielectric(r float64) float64 {
	const (
		a      = -8.5525
		bCoef  = 78.4 - a
		k      = 7.7839
		lambda = 0.003627
	)
	e := a + bCoef/(1+k*math.Exp(-lambda*bCoef*r))
	if e < 1 {
		e = 1
	}
	return e
}

// ElecScale is the Coulomb interaction of a unit probe charge with a
// unit receptor charge at distance r under the Mehler–Solmajer
// dielectric. Multiply by the receptor charge (and the probe charge,
// when not unit) to get the energy.
//
//unit: r=Å
func ElecScale(r float64) float64 {
	return Coulomb / (Dielectric(r) * r)
}

// DesolvWeight is the gaussian radial weight of the AD4 desolvation
// term, including the 0.1 calibration factor; multiply by
// DesolvCoeff of the receptor atom.
//
//unit: r=Å
func DesolvWeight(r float64) float64 {
	return 0.1 * math.Exp(-r*r/(2*DesolvSigma*DesolvSigma))
}

// DesolvCoeff is the per-atom prefactor of the AD4 desolvation term:
// volume × solvation parameter plus a charge-dependent component.
func DesolvCoeff(p chem.TypeParams, charge float64) float64 {
	return p.SolPar*p.SolVol + 0.01097*math.Abs(charge)*p.SolVol
}

// VinaPair is the Vina pairwise scoring function on the surface
// distance d = r − R_i − R_j: two gaussians, a quadratic repulsion,
// and the hydrophobic and H-bond ramps.
//
//unit: r=Å result=kcal/mol
func VinaPair(a, b chem.TypeParams, r float64) float64 {
	d := r - (a.Rii/2 + b.Rii/2)
	e := VinaWGauss1 * gauss(d, 0, 0.5)
	e += VinaWGauss2 * gauss(d, 3.0, 2.0)
	if d < 0 {
		e += VinaWRepulsion * d * d
	}
	if a.Hydroph && b.Hydroph {
		e += VinaWHydrophob * ramp(d, 0.5, 1.5)
	}
	if VinaHBondPair(a, b) {
		e += VinaWHBond * ramp(d, -0.7, 0)
	}
	return e
}

func gauss(d, off, width float64) float64 {
	x := (d - off) / width
	return math.Exp(-x * x)
}

// ramp is 1 below lo, 0 above hi, linear between.
func ramp(d, lo, hi float64) float64 {
	if d <= lo {
		return 1
	}
	if d >= hi {
		return 0
	}
	return (hi - d) / (hi - lo)
}

// VinaHBondPair reports whether the types form a donor/acceptor pair.
// Vina's heavy-atom convention: a donor is a heavy atom that carries a
// polar hydrogen; our preparation marks N (with H) and S as donors via
// the type table, so we treat N/OA/SA acceptors vs N donors.
func VinaHBondPair(a, b chem.TypeParams) bool {
	donor := func(p chem.TypeParams) bool {
		return p.Type == chem.TypeN || p.Type == chem.TypeS // H-bearing by typing rules
	}
	acceptor := func(p chem.TypeParams) bool { return p.HBond >= 2 }
	return (donor(a) && acceptor(b)) || (donor(b) && acceptor(a))
}
