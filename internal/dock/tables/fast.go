package tables

// Fast compact table geometry. The tolerance-bounded fast scorers
// trade table resolution for cache residency: a Radial is 16385+4097
// float64 nodes (~164 KB), and a docking pair touches dozens of
// distinct type-pair tables, so the exact working set (~2–6 MB) churns
// through L2 once per pose. The fast layout subsamples each table onto
// half-resolution core bins and quarter-resolution tail bins stored as
// float32 in one shared bank: ~36 KB per table, ~4.5× less memory
// traffic, with every fast node bit-equal to (the float32 rounding of)
// an exact node — the fast table is a sub-grid of the exact one, so no
// new analytic evaluation and no new kink placement is introduced.
//
// FastBinsCore keeps RMin²·FastInvCore = 128 an exact node (the AD4
// r ≥ 0.5 Å clamp stays on a node, like the exact geometry), and
// SplitR2 remains the shared boundary node. The residual error versus
// the exact tables — coarser linear interpolation plus float32 node
// rounding plus float32 accumulation in the scorers — is pinned by the
// dense+randomized equivalence sweeps in the engine packages and
// carried as each engine's FastAbsTol/FastRelTol bound.
const (
	// FastBinsCore is the number of r² bins covering [0, SplitR2):
	// every other exact core node.
	FastBinsCore = BinsCore / 2
	// FastBinsTail is the number of r² bins covering [SplitR2,
	// Cutoff²]: every fourth exact tail node.
	FastBinsTail = BinsTail / 4
	// FastNNodes is the per-table node count of a fast bank slot.
	FastNNodes = FastBinsCore + FastBinsTail + 1

	// FastInvCore and FastInvTail are the reciprocal bin widths; exported
	// so hot loops can write the interpolation out inline (the ad4 intra
	// sweep is beyond the inliner budget as a call).
	FastInvCore = FastBinsCore / SplitR2                   // core bins per Ų
	FastInvTail = FastBinsTail / (Cutoff*Cutoff - SplitR2) // tail bins per Ų
)

// NewFastBank subsamples the given radial tables into one merged
// float32 node bank, deduplicating by table identity (the process-wide
// cache hands out one *Radial per type pair, so equal pointers mean
// equal tables). offs[k] is the bank offset of tbls[k]'s FastNNodes
// nodes; duplicate inputs share one slot. Evaluate with FastAt.
func NewFastBank(tbls []*Radial) (bank []float32, offs []int32) {
	offs = make([]int32, len(tbls))
	seen := make(map[*Radial]int32, len(tbls))
	for k, t := range tbls {
		off, ok := seen[t]
		if !ok {
			off = int32(len(bank))
			seen[t] = off
			for i := 0; i < FastBinsCore; i++ {
				bank = append(bank, float32(t.vals[i*(BinsCore/FastBinsCore)]))
			}
			for j := 0; j <= FastBinsTail; j++ {
				bank = append(bank, float32(t.vals[BinsCore+j*(BinsTail/FastBinsTail)]))
			}
		}
		offs[k] = off
	}
	return bank, offs
}

// FastAt evaluates the fast table at bank offset off at squared
// distance r2 ≥ 0, interpolating linearly in float32. It is the single
// shared evaluator of the fast scorers — one-pose screens and batched
// kernels call exactly this function, so a pose's fast score is
// independent of the batch it was evaluated in.
//
// The grid coordinate drops to float32 straight away — one conversion,
// then pure float32 arithmetic. The coordinate magnitude is ≤ 9217, so
// the float32 rounding perturbs the interpolation weight (and, within
// one rounding of a node, which segment interpolates) by ≤ ~2⁻¹⁰ of a
// bin — absorbed by the same interpolation-error envelope the bound
// tests pin.
//
//unit: r2=Å2
func FastAt(bank []float32, off int32, r2 float64) float32 {
	x := float32(r2 * FastInvCore)
	if r2 >= SplitR2 {
		x = float32(FastBinsCore + (r2-SplitR2)*FastInvTail)
	}
	i := int32(x)
	if i >= FastNNodes-1 {
		return bank[off+FastNNodes-1]
	}
	v := bank[off+i]
	return v + (x-float32(i))*(bank[off+i+1]-v)
}
