// Package workflow implements SciCumulus' algebraic workflow model
// (Ogasawara et al., VLDB 2011): workflows are activities that consume
// and produce relations of tuples under operators (Map, SplitMap,
// Filter, Reduce). The engine executes one activation per (activity,
// tuple) — the unit SciCumulus distributes across cloud VMs.
package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of a relation: parameter name → value. SciCumulus
// relations are textual (they are serialized into the activation's
// working directory as key=value files).
type Tuple map[string]string

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Merge returns a copy of t with all pairs of u added (u wins on
// conflict) — how Map activities extend their input tuples.
func (t Tuple) Merge(u Tuple) Tuple {
	c := t.Clone()
	for k, v := range u {
		c[k] = v
	}
	return c
}

// Get returns a field value or an error naming the missing key; the
// engine surfaces these as activation failures.
func (t Tuple) Get(key string) (string, error) {
	v, ok := t[key]
	if !ok {
		return "", fmt.Errorf("workflow: tuple missing field %q (has %s)", key, strings.Join(t.Keys(), ", "))
	}
	return v, nil
}

// Keys returns the sorted field names.
func (t Tuple) Keys() []string {
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the tuple deterministically for logs and provenance.
func (t Tuple) String() string {
	var sb strings.Builder
	for i, k := range t.Keys() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", k, t[k])
	}
	return sb.String()
}

// Relation is a named multiset of tuples flowing between activities.
type Relation struct {
	Name   string
	Tuples []Tuple
}

// NewRelation builds a relation from tuples.
func NewRelation(name string, tuples []Tuple) *Relation {
	return &Relation{Name: name, Tuples: tuples}
}

// Size returns the tuple count.
func (r *Relation) Size() int { return len(r.Tuples) }
