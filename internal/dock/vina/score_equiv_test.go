package vina

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
	"repro/internal/dock"
)

// randomPoses returns a deterministic spread of poses around the
// pocket: translations within a few Å, random orientations and
// torsions, including some that jam the ligand into the receptor so
// the steep repulsive region is exercised too.
func randomPoses(lig *dock.Ligand, n int, seed int64) []dock.Pose {
	r := rand.New(rand.NewSource(seed))
	poses := make([]dock.Pose, n)
	for i := range poses {
		q := chem.Quat{W: r.NormFloat64(), X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()}
		q = q.Normalize()
		tors := make([]float64, lig.NumTorsions())
		for t := range tors {
			tors[t] = (r.Float64() - 0.5) * 2 * math.Pi
		}
		poses[i] = dock.Pose{
			Translation: chem.V(r.Float64()*16-8, r.Float64()*16-8, r.Float64()*16-8),
			Orientation: q,
			Torsions:    tors,
		}
	}
	return poses
}

// TestScoreMatchesAnalytic pins the table-backed scoring path against
// the closed-form reference over randomized poses. The per-pair
// interpolation error is ≤ 1e-3 kcal/mol across the scored range
// (see internal/dock/tables), so the pose-level tolerance is that
// bound times a generous pair-count allowance plus a small relative
// term for clashing poses whose energies are dominated by the clamped
// repulsive core.
func TestScoreMatchesAnalytic(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	for _, pose := range randomPoses(lig, 50, 7) {
		coords := lig.Coords(pose)
		got := s.Score(coords)
		want := s.ScoreAnalytic(coords)
		tol := 0.05 + 1e-3*math.Abs(want)
		if math.Abs(got-want) > tol {
			t.Errorf("pose at %v: table %v analytic %v |Δ|=%g > %g",
				pose.Translation, got, want, math.Abs(got-want), tol)
		}
	}
}

// TestReportedFEBSharesInterEnergy checks the Score/ReportedFEB dedupe:
// for any pose the two must agree on the intermolecular part exactly
// (same code path), differing only by the internal-energy delta.
func TestReportedFEBSharesInterEnergy(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	for _, pose := range randomPoses(lig, 10, 11) {
		coords := lig.Coords(pose)
		feb := s.ReportedFEB(coords)
		score := s.Score(coords)
		wantDelta := intraWeight * (s.intraEnergy(coords) - s.intraRef)
		if math.Abs((score-feb)-wantDelta) > 1e-12 {
			t.Fatalf("score %v − feb %v ≠ intra delta %v", score, feb, wantDelta)
		}
	}
}

func benchCoords(b *testing.B, n int) (*Scorer, [][]chem.Vec3) {
	rec, lig := setupPair(b, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		b.Fatal(err)
	}
	poses := randomPoses(lig, n, 3)
	coords := make([][]chem.Vec3, n)
	for i, p := range poses {
		coords[i] = lig.Coords(p)
	}
	return s, coords
}

func BenchmarkScoreTable(b *testing.B) {
	s, coords := benchCoords(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(coords[i%len(coords)])
	}
}

func BenchmarkScoreAnalytic(b *testing.B) {
	s, coords := benchCoords(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreAnalytic(coords[i%len(coords)])
	}
}
