package core

import "fmt"

// Effort bundles the search-intensity knobs of the reproduction. The
// real AutoDock/Vina run orders of magnitude more evaluations; these
// presets keep 1,000-pair campaigns tractable while preserving the
// engines' relative behaviour (DESIGN.md §2, substitution 2).
type Effort struct {
	// Grid.
	GridNPts    int     // lattice points per axis
	GridSpacing float64 // Å

	// AutoDock 4 Lamarckian GA.
	AD4Runs    int
	AD4PopSize int
	AD4Gens    int
	AD4Evals   int

	// Vina iterated local search.
	VinaExhaustiveness int
	VinaSteps          int
	VinaModes          int
}

// QuickEffort docks a single pair interactively (quickstart example).
func QuickEffort() Effort {
	return Effort{
		GridNPts: 20, GridSpacing: 1.2,
		AD4Runs: 10, AD4PopSize: 50, AD4Gens: 30, AD4Evals: 30000,
		VinaExhaustiveness: 8, VinaSteps: 25, VinaModes: 9,
	}
}

// CampaignEffort is the preset for the 952-pair Table 3 regeneration:
// reduced but statistically meaningful.
func CampaignEffort() Effort {
	return Effort{
		GridNPts: 14, GridSpacing: 1.6,
		AD4Runs: 4, AD4PopSize: 30, AD4Gens: 14, AD4Evals: 6000,
		VinaExhaustiveness: 2, VinaSteps: 5, VinaModes: 9,
	}
}

// SmokeEffort is the minimal preset used by unit tests.
func SmokeEffort() Effort {
	return Effort{
		GridNPts: 10, GridSpacing: 2.2,
		AD4Runs: 2, AD4PopSize: 12, AD4Gens: 5, AD4Evals: 1200,
		VinaExhaustiveness: 2, VinaSteps: 4, VinaModes: 5,
	}
}

// Validate rejects degenerate presets.
func (e Effort) Validate() error {
	if e.GridNPts < 4 || e.GridSpacing <= 0 {
		return fmt.Errorf("core: bad grid effort (npts=%d spacing=%v)", e.GridNPts, e.GridSpacing)
	}
	if e.AD4Runs < 1 || e.AD4PopSize < 2 || e.AD4Gens < 1 {
		return fmt.Errorf("core: bad AD4 effort %+v", e)
	}
	if e.VinaExhaustiveness < 1 || e.VinaSteps < 1 {
		return fmt.Errorf("core: bad Vina effort %+v", e)
	}
	return nil
}
