package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DimCheck infers physical units for float expressions and flags
// dimensional mixups — above all the r-vs-r² confusion the r²-indexed
// kernel tables made possible: Radial.At2 takes a squared distance,
// and feeding it a plain Å distance is a silent, physically-plausible
// wrong answer. The unit lattice is small and domain-specific:
//
//	Å (distance) · Å² (squared distance) · kcal/mol (energy)
//	e (charge) · dimensionless · unknown
//
// Units are seeded two ways: a built-in table of the core kernel API
// (tables.Radial.At2, chem.Vec3.Dist/Dist2/Norm/Norm2, the tables
// cutoff constants), and //unit: annotations collected from every
// loaded package's declarations:
//
//	//unit: r=Å result=kcal/mol     (function doc: params by name)
//	//unit: Å2                      (var/const decl: one unit for all)
//
// Accepted unit spellings: Å/A/angstrom, Å2/Å²/A2, kcal/mol, e/charge,
// 1/none/dimensionless. Within each function a forward dataflow over
// the CFG tracks per-variable units through assignments; multiplying
// two Å values yields Å², dividing Å² by Å yields Å, math.Sqrt of Å²
// yields Å, and untyped literals stay unit-agnostic. Findings:
//
//   - error: an argument with a known unit passed to a parameter
//     declared with a different unit (the r/r² table-lookup check);
//   - error: + or - (or a comparison) mixing two known, different
//     units — e.g. comparing an Å² value against the Å cutoff;
//   - error: returning a value whose unit contradicts the function's
//     declared result unit.
//
// Expressions with any unknown operand stay silent, so unannotated
// code produces no noise. Test files are exempt.
var DimCheck = &Analyzer{
	Name:     "dimcheck",
	Doc:      "unit-inference lattice (Å, Å², kcal/mol, e): flags r-vs-r² mixups at table lookups and unit-mixing arithmetic",
	Severity: Error,
	Run:      runDimCheck,
}

// unit is one element of the dimension lattice.
type unit uint8

const (
	uUnknown unit = iota
	uScalar       // explicitly dimensionless
	uAngstrom
	uAngstrom2
	uEnergy // kcal/mol
	uCharge // elementary charge
)

func (u unit) String() string {
	switch u {
	case uScalar:
		return "dimensionless"
	case uAngstrom:
		return "Å"
	case uAngstrom2:
		return "Å²"
	case uEnergy:
		return "kcal/mol"
	case uCharge:
		return "e"
	}
	return "unknown"
}

// parseUnit maps an annotation spelling to a lattice element.
func parseUnit(s string) (unit, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "å", "a", "ang", "angstrom":
		return uAngstrom, true
	case "å2", "å²", "a2", "ang2", "angstrom2":
		return uAngstrom2, true
	case "kcal/mol", "kcalmol", "energy":
		return uEnergy, true
	case "e", "charge":
		return uCharge, true
	case "1", "none", "dimensionless", "scalar":
		return uScalar, true
	}
	return uUnknown, false
}

// dimSig declares the units of one function's parameters and result.
type dimSig struct {
	params map[string]unit // by parameter name
	result unit
}

// dimSeeds is the per-Run unit environment: function signatures and
// package-level var/const units, keyed canonically so seeds survive
// the loader's target/dependency double instantiation.
type dimSeeds struct {
	funcs map[string]*dimSig
	vars  map[string]unit // "pkgpath.Name"
}

// builtinDimSeeds covers the core kernel API so a subset run (e.g.
// scilint ./internal/grid) still catches r/r² mixups at table lookups
// even when the annotated tables package is not among the targets.
func builtinDimSeeds() *dimSeeds {
	const tables = "repro/internal/dock/tables"
	const chem = "repro/internal/chem"
	return &dimSeeds{
		funcs: map[string]*dimSig{
			tables + ".Radial.At2":       {params: map[string]unit{"r2": uAngstrom2}},
			tables + ".PairEnergy":       {params: map[string]unit{"r": uAngstrom}, result: uEnergy},
			tables + ".PairEnergySmoothed": {
				params: map[string]unit{"r": uAngstrom, "smooth": uAngstrom}, result: uEnergy},
			tables + ".Dielectric": {params: map[string]unit{"r": uAngstrom}, result: uScalar},
			chem + ".Vec3.Dist":    {result: uAngstrom},
			chem + ".Vec3.Norm":    {result: uAngstrom},
			chem + ".Vec3.Dist2":   {result: uAngstrom2},
			chem + ".Vec3.Norm2":   {result: uAngstrom2},
		},
		vars: map[string]unit{
			tables + ".Cutoff":       uAngstrom,
			tables + ".SplitR2":      uAngstrom2,
			tables + ".RMin":         uAngstrom,
			tables + ".RMin2":        uAngstrom2,
			tables + ".SmoothRadius": uAngstrom,
		},
	}
}

// DimSeedsFor returns the Run's unit environment, collecting //unit:
// annotations from every loaded package on first use.
func (p *Pass) DimSeedsFor() *dimSeeds {
	if p.shared.dimSeeds == nil {
		p.shared.dimSeeds = collectDimSeeds(p.all)
	}
	return p.shared.dimSeeds
}

// unitDirective extracts the payload of a //unit: line in a comment
// group, or "".
func unitDirective(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "unit:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// parseDimSig parses "r=Å r2=Å2 result=kcal/mol".
func parseDimSig(payload string) *dimSig {
	sig := &dimSig{params: map[string]unit{}}
	for _, field := range strings.Fields(payload) {
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		u, ok := parseUnit(val)
		if !ok {
			continue
		}
		if name == "result" {
			sig.result = u
		} else {
			sig.params[name] = u
		}
	}
	if len(sig.params) == 0 && sig.result == uUnknown {
		return nil
	}
	return sig
}

func collectDimSeeds(pkgs []*Package) *dimSeeds {
	seeds := builtinDimSeeds()
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					payload := unitDirective(d.Doc)
					if payload == "" {
						continue
					}
					sig := parseDimSig(payload)
					if sig == nil {
						continue
					}
					if def, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						seeds.funcs[funcKey(def)] = sig
					}
				case *ast.GenDecl:
					if d.Tok != token.VAR && d.Tok != token.CONST {
						continue
					}
					declUnit, declOK := parseUnit(unitDirective(d.Doc))
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						u, ok := declUnit, declOK
						if payload := unitDirective(vs.Doc); payload != "" {
							u, ok = parseUnit(payload)
						} else if payload := unitDirective(vs.Comment); payload != "" {
							u, ok = parseUnit(payload)
						}
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							if obj := pkg.Info.Defs[name]; obj != nil && obj.Pkg() != nil {
								seeds.vars[obj.Pkg().Path()+"."+obj.Name()] = u
							}
						}
					}
				}
			}
		}
	}
	return seeds
}

// --- per-function inference ------------------------------------------

// dimFact maps float-typed local objects to units.
type dimFact map[types.Object]unit

func (f dimFact) clone() dimFact {
	out := make(dimFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// dimProblem is the FlowProblem for one function body.
type dimProblem struct {
	pass   *Pass
	seeds  *dimSeeds
	entry  dimFact
	curSig *dimSig // the analyzed function's own declared units
	// report, when non-nil, receives findings during the replay pass.
	report func(pos token.Pos, format string, args ...any)
}

func (dp *dimProblem) EntryFact() Fact { return dp.entry }

func (dp *dimProblem) Transfer(b *Block, in Fact) Fact {
	f := in.(dimFact).clone()
	for _, n := range b.Nodes {
		dp.transferNode(n, f)
	}
	return f
}

func (dp *dimProblem) Merge(a, b Fact) Fact {
	fa, fb := a.(dimFact), b.(dimFact)
	out := make(dimFact, len(fa))
	for k, va := range fa {
		if vb, ok := fb[k]; ok && va == vb {
			out[k] = va
		}
	}
	return out
}

func (dp *dimProblem) Equal(a, b Fact) bool {
	fa, fb := a.(dimFact), b.(dimFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, va := range fa {
		if vb, ok := fb[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

// transferNode updates the fact for assignments in one node and, in
// reporting mode, checks every expression in it.
func (dp *dimProblem) transferNode(n ast.Node, f dimFact) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		dp.checkNodeExprs(s.Rhs, f)
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := dp.objOf(id)
				if obj == nil || !isFloatObj(obj) {
					continue
				}
				switch s.Tok {
				case token.ASSIGN, token.DEFINE:
					f[obj] = dp.unitOf(s.Rhs[i], f)
				case token.ADD_ASSIGN, token.SUB_ASSIGN:
					ru := dp.unitOf(s.Rhs[i], f)
					lu := f[obj]
					if dp.report != nil && lu > uScalar && ru > uScalar && lu != ru {
						dp.report(s.Pos(), "unit mismatch: %s (%s) %s a %s value",
							id.Name, lu, s.Tok, ru)
					}
				case token.MUL_ASSIGN:
					f[obj] = mulUnits(f[obj], dp.unitOf(s.Rhs[i], f))
				case token.QUO_ASSIGN:
					f[obj] = quoUnits(f[obj], dp.unitOf(s.Rhs[i], f))
				default:
					f[obj] = uUnknown
				}
			}
		} else {
			// multi-value call: units unknown
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := dp.objOf(id); obj != nil {
						delete(f, obj)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		dp.checkNodeExprs(s.Results, f)
		dp.checkReturn(s, f)
	case ast.Expr:
		dp.checkExpr(s, f)
	case *ast.ExprStmt:
		dp.checkExpr(s.X, f)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					dp.checkNodeExprs(vs.Values, f)
					for i, name := range vs.Names {
						obj := dp.pass.Info.Defs[name]
						if obj != nil && isFloatObj(obj) {
							f[obj] = dp.unitOf(vs.Values[i], f)
						}
					}
				}
			}
		}
	case *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt:
		// no unit effects tracked
	}
}

func (dp *dimProblem) checkNodeExprs(exprs []ast.Expr, f dimFact) {
	if dp.report == nil {
		return
	}
	for _, e := range exprs {
		dp.checkExpr(e, f)
	}
}

// checkExpr computes an expression's unit; in reporting mode it also
// validates call arguments and mixed arithmetic inside it.
func (dp *dimProblem) checkExpr(e ast.Expr, f dimFact) unit {
	return dp.unitOf(e, f)
}

func (dp *dimProblem) objOf(id *ast.Ident) types.Object {
	if obj := dp.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return dp.pass.Info.Defs[id]
}

func isFloatObj(obj types.Object) bool {
	return isFloatType(obj.Type())
}

func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// mulUnits: Å·Å = Å², X·1 = X; other known products leave the lattice
// (legitimate physics) and go unknown.
func mulUnits(a, b unit) unit {
	switch {
	case a == uScalar:
		return b
	case b == uScalar:
		return a
	case a == uAngstrom && b == uAngstrom:
		return uAngstrom2
	}
	return uUnknown
}

// quoUnits: X/X = 1, Å²/Å = Å, X/1 = X.
func quoUnits(a, b unit) unit {
	switch {
	case a > uScalar && a == b:
		return uScalar
	case a == uAngstrom2 && b == uAngstrom:
		return uAngstrom
	case b == uScalar:
		return a
	}
	return uUnknown
}

// unitOf computes the unit of an expression under fact f, reporting
// conflicts when dp.report is set.
func (dp *dimProblem) unitOf(e ast.Expr, f dimFact) unit {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return dp.unitOf(e.X, f)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return dp.unitOf(e.X, f)
		}
		return uUnknown
	case *ast.Ident:
		obj := dp.objOf(e)
		if obj == nil {
			return uUnknown
		}
		if u, ok := f[obj]; ok {
			return u
		}
		return dp.seeds.varUnit(obj)
	case *ast.SelectorExpr:
		// Package-level var/const through a package qualifier.
		if obj := dp.pass.Info.Uses[e.Sel]; obj != nil {
			switch obj.(type) {
			case *types.Var, *types.Const:
				return dp.seeds.varUnit(obj)
			}
		}
		return uUnknown
	case *ast.CallExpr:
		return dp.unitOfCall(e, f)
	case *ast.BinaryExpr:
		return dp.unitOfBinary(e, f)
	}
	return uUnknown
}

// varUnit looks up a package-level object's annotated unit.
func (s *dimSeeds) varUnit(obj types.Object) unit {
	if obj == nil || obj.Pkg() == nil {
		return uUnknown
	}
	return s.vars[obj.Pkg().Path()+"."+obj.Name()]
}

func (dp *dimProblem) unitOfBinary(e *ast.BinaryExpr, f dimFact) unit {
	lu := dp.unitOf(e.X, f)
	ru := dp.unitOf(e.Y, f)
	switch e.Op {
	case token.ADD, token.SUB:
		if lu > uScalar && ru > uScalar {
			if lu != ru && dp.report != nil {
				dp.report(e.OpPos, "unit mismatch: %s %s %s%s",
					lu, e.Op, ru, r2Hint(lu, ru))
			}
			if lu == ru {
				return lu
			}
			return uUnknown
		}
		if lu == ru {
			return lu
		}
		return uUnknown
	case token.MUL:
		return mulUnits(lu, ru)
	case token.QUO:
		return quoUnits(lu, ru)
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		if lu > uScalar && ru > uScalar && lu != ru && dp.report != nil {
			dp.report(e.OpPos, "unit mismatch in comparison: %s %s %s%s",
				lu, e.Op, ru, r2Hint(lu, ru))
		}
		return uUnknown
	}
	return uUnknown
}

// r2Hint appends the r-vs-r² nudge when the two units are Å and Å².
func r2Hint(a, b unit) string {
	if (a == uAngstrom && b == uAngstrom2) || (a == uAngstrom2 && b == uAngstrom) {
		return " (r vs r² mixup?)"
	}
	return ""
}

func (dp *dimProblem) unitOfCall(call *ast.CallExpr, f dimFact) unit {
	// Conversions: float64(x) keeps x's unit.
	if tv, ok := dp.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return dp.unitOf(call.Args[0], f)
	}
	fn := dp.pass.calleeFunc(call)
	if fn == nil {
		for _, a := range call.Args {
			dp.unitOf(a, f) // still check subexpressions
		}
		return uUnknown
	}
	// math.Sqrt takes Å² back to Å.
	if pkgPathOf(fn) == "math" && fn.Name() == "Sqrt" && len(call.Args) == 1 {
		if dp.unitOf(call.Args[0], f) == uAngstrom2 {
			return uAngstrom
		}
		return uUnknown
	}
	sig := dp.seeds.funcs[funcKey(fn)]
	fsig, _ := fn.Type().(*types.Signature)
	if sig != nil && fsig != nil {
		params := fsig.Params()
		for i, arg := range call.Args {
			if i >= params.Len() {
				break // variadic tail: no declared unit
			}
			want, ok := sig.params[params.At(i).Name()]
			if !ok || want == uUnknown {
				dp.unitOf(arg, f)
				continue
			}
			got := dp.unitOf(arg, f)
			if got > uScalar && got != want && dp.report != nil {
				dp.report(arg.Pos(),
					"%s value passed to %s parameter %q of %s%s",
					got, want, params.At(i).Name(), fn.Name(), r2Hint(got, want))
			}
		}
		return sig.result
	}
	for _, a := range call.Args {
		dp.unitOf(a, f)
	}
	return uUnknown
}

// checkReturn validates the function's declared result unit.
func (dp *dimProblem) checkReturn(ret *ast.ReturnStmt, f dimFact) {
	if dp.report == nil || dp.curSig == nil || dp.curSig.result == uUnknown || len(ret.Results) != 1 {
		return
	}
	got := dp.unitOf(ret.Results[0], f)
	if got > uScalar && got != dp.curSig.result {
		dp.report(ret.Pos(), "returning %s value from a function declared to return %s%s",
			got, dp.curSig.result, r2Hint(got, dp.curSig.result))
	}
}

func runDimCheck(pass *Pass) {
	seeds := pass.DimSeedsFor()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			checkDimFlow(pass, seeds, fd)
		}
	}
}

func checkDimFlow(pass *Pass, seeds *dimSeeds, fd *ast.FuncDecl) {
	def, _ := pass.Info.Defs[fd.Name].(*types.Func)
	ownSig := seeds.funcs[funcKey(def)]

	// Entry fact: parameters with declared units.
	entry := dimFact{}
	if ownSig != nil && fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if u, ok := ownSig.params[name.Name]; ok && u != uUnknown {
					if obj := pass.Info.Defs[name]; obj != nil && isFloatObj(obj) {
						entry[obj] = u
					}
				}
			}
		}
	}

	dp := &dimProblem{pass: pass, seeds: seeds, entry: entry, curSig: ownSig}
	g := pass.FuncCFG(fd)
	in := ForwardFlow(g, dp)

	// Replay with reporting enabled, deduplicating across blocks (a
	// condition expression re-checked through loop back-edges must
	// report once).
	seen := map[string]bool{}
	for _, b := range g.Blocks {
		inF, reachable := in[b]
		if !reachable {
			continue
		}
		f := inF.(dimFact).clone()
		dp.report = func(pos token.Pos, format string, args ...any) {
			k := pass.Fset.Position(pos).String() + format
			if !seen[k] {
				seen[k] = true
				pass.Reportf(pos, format, args...)
			}
		}
		for _, n := range b.Nodes {
			dp.transferNode(n, f)
		}
		dp.report = nil
	}
}
