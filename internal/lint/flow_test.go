package lint

import (
	"os"
	"strings"
	"testing"
)

func TestLockFlow(t *testing.T) {
	const header = `package p

import "sync"

type shard struct {
	mu   sync.RWMutex
	rows []int
}
`
	cases := []struct {
		name, body string
	}{
		{"early_return_leaks_read_lock", `
func (s *shard) snapshotIf(max int) []int {
	s.mu.RLock()
	if len(s.rows) > max {
		return nil // want "s.mu.RLock\(\) acquired at .* is still held when this path returns"
	}
	out := s.rows
	s.mu.RUnlock()
	return out
}
`},
		{"fall_off_end_leaks_write_lock", `
func (s *shard) fill(v int) {
	s.mu.Lock()
	s.rows = append(s.rows, v)
} // want "s.mu.Lock\(\) acquired at .* is still held when this path reaches the end of fill"
`},
		{"all_paths_release_ok", `
func (s *shard) head(max int) int {
	s.mu.RLock()
	if len(s.rows) > max {
		s.mu.RUnlock()
		return -1
	}
	v := s.rows[0]
	s.mu.RUnlock()
	return v
}
`},
		{"deferred_release_ok", `
func (s *shard) deferred() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.rows) == 0 {
		return 0
	}
	return s.rows[0]
}
`},
		{"deferred_closure_release_ok", `
func (s *shard) deferredClosure() int {
	s.mu.Lock()
	defer func() {
		s.rows = nil
		s.mu.Unlock()
	}()
	return len(s.rows)
}
`},
		{"correlated_conditionals_stay_may_held", `
func (s *shard) maybe(locked bool) {
	if locked {
		s.mu.Lock()
	}
	s.rows = nil
	if locked {
		s.mu.Unlock()
	}
}
`},
		{"double_write_lock_deadlock", `
var gmu sync.Mutex

func relock(c bool) {
	gmu.Lock()
	if c {
		gmu.Lock() // want "gmu re-locked on a path where it is already held: self-deadlock"
	}
	gmu.Unlock()
}
`},
		{"panic_path_exempt", `
func (s *shard) mustFirst() int {
	s.mu.RLock()
	if len(s.rows) == 0 {
		panic("empty shard")
	}
	v := s.rows[0]
	s.mu.RUnlock()
	return v
}
`},
		{"cond_wait_handoff_ok", `
func pump(mu *sync.Mutex, n int, work func()) {
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		mu.Unlock()
		work()
		mu.Lock()
	}
}
`},
		{"loop_acquire_release_ok", `
func (s *shard) drain(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		s.mu.RLock()
		total += len(s.rows)
		s.mu.RUnlock()
	}
	return total
}
`},
		{"suppression", `
func (s *shard) pinned() []int {
	s.mu.RLock()
	//lint:ignore lockflow caller must invoke (*shard).release to unpin
	return s.rows
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCase(t, LockFlow, "fixture/lockflow", "", "fixture.go", header+tc.body)
		})
	}
}

func TestDimCheck(t *testing.T) {
	const header = `package p

import "math"

// tableAt2 stands in for the r²-indexed kernel table lookups.
//
//unit: r2=Å2
func tableAt2(r2 float64) float64 { return r2 }

// pairEnergy stands in for the annotated pair potentials.
//
//unit: r=Å result=kcal/mol
func pairEnergy(r float64) float64 { return 0 }

var _ = math.Sqrt
`
	cases := []struct {
		name, body string
	}{
		{"r_passed_to_r2_param", `
//unit: r=Å
func lookup(r float64) float64 {
	return tableAt2(r) // want "Å value passed to Å² parameter .r2. of tableAt2 .r vs r² mixup"
}
`},
		{"squared_arg_ok", `
//unit: r=Å
func lookupOK(r float64) float64 {
	r2 := r * r
	return tableAt2(r2)
}
`},
		{"sqrt_recovers_distance", `
//unit: r2=Å2
func roundTrip(r2 float64) float64 {
	r := math.Sqrt(r2)
	return tableAt2(r * r)
}
`},
		{"comparison_against_wrong_cutoff", `
//unit: Å
const cutoff = 8.0

//unit: r2=Å2
func inRange(r2 float64) bool {
	return r2 < cutoff // want "unit mismatch in comparison: Å² < Å .r vs r² mixup"
}

//unit: r2=Å2
func inRangeOK(r2 float64) bool {
	return r2 < cutoff*cutoff
}
`},
		{"additive_mixing", `
//unit: r=Å
func addMix(r float64) float64 {
	e := pairEnergy(r)
	bad := e + r // want "unit mismatch: kcal/mol . Å"
	_ = bad
	return 0
}
`},
		{"compound_assign_mixing", `
//unit: r=Å
func accumulate(r float64) float64 {
	e := pairEnergy(r)
	e += r // want "unit mismatch: e .kcal/mol. \+= a Å value"
	return e
}
`},
		{"return_unit_mismatch", `
//unit: r=Å result=kcal/mol
func wrongReturn(r float64) float64 {
	return r // want "returning Å value from a function declared to return kcal/mol"
}

//unit: r=Å result=kcal/mol
func rightReturn(r float64) float64 {
	return pairEnergy(r)
}
`},
		{"flow_sensitive_reassignment", `
//unit: r=Å
func reassigned(r float64) float64 {
	x := r * r
	a := tableAt2(x) // Å² here: clean
	x = r
	return a + tableAt2(x) // want "Å value passed to Å² parameter"
}
`},
		{"conflicting_paths_merge_to_unknown", `
//unit: r=Å
func merged(r float64, c bool) float64 {
	x := r
	if c {
		x = r * r
	}
	return tableAt2(x) // unit disagrees across paths: silent by design
}
`},
		{"quotient_restores_unit", `
//unit: r=Å
func ratio(r float64) float64 {
	r2 := r * r
	back := r2 / r // Å²/Å = Å
	return tableAt2(back) // want "Å value passed to Å² parameter"
}
`},
		{"unannotated_code_is_silent", `
func plain(a, b float64) float64 {
	c := a*b + 3.5
	return c / 2
}
`},
		{"suppression", `
//unit: r=Å
func deliberate(r float64) float64 {
	//lint:ignore dimcheck r arrives pre-squared from the cell list in this fixture
	return tableAt2(r)
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCase(t, DimCheck, "fixture/dimcheck", "", "fixture.go", header+tc.body)
		})
	}

	// The builtin seed table must cover the real kernel API even when
	// the annotated packages are not among the load targets.
	t.Run("builtin_seeds", func(t *testing.T) {
		runCase(t, DimCheck, "fixture/dimcheck", "", "fixture.go", `package p

import "repro/internal/dock/tables"

//unit: r=Å
func badCompare(r float64) bool {
	return r < tables.SplitR2 // want "unit mismatch in comparison: Å < Å² .r vs r² mixup"
}

//unit: r=Å
func goodCompare(r float64) bool {
	return r*r < tables.SplitR2
}
`)
	})
}

func TestDetFlow(t *testing.T) {
	// The fixture path contains "internal/dock": a deterministic hot
	// path where any transitively nondeterministic helper call is a
	// finding.
	hotCases := []struct {
		name, src string
	}{
		{"unseeded_rand_via_helper", `package p

import "math/rand"

func jitter() float64 {
	return rand.Float64()
}

func Search() float64 {
	return jitter() // want "nondeterminism reaches deterministic hot path: call to fixture.jitter, which draws from the math/rand global source .rand.Float64."
}
`},
		{"chain_is_rendered", `package p

import "math/rand"

func jitter() float64 {
	return rand.Float64()
}

func deep() float64 {
	return jitter() // want "call to fixture.jitter, which draws from"
}

func Search() float64 {
	return deep() // want "call to fixture.deep, which calls fixture.jitter, which draws from the math/rand global source"
}
`},
		{"wall_clock_via_helper", `package p

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}

func Tick() int64 {
	return stamp() // want "nondeterminism reaches deterministic hot path: call to fixture.stamp, which reads the wall clock .time.Now."
}
`},
		{"map_order_via_helper", `package p

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Emit(m map[string]int) []string {
	return keys(m) // want "call to fixture.keys, which iterates a map in nondeterministic order into an ordered collection"
}
`},
		{"sorted_keys_sanitize", `package p

import "sort"

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Emit(m map[string]int) []string {
	return keysSorted(m)
}
`},
		{"seeded_source_sanitizes", `package p

import "math/rand"

func draw(r *rand.Rand) float64 {
	return r.Float64()
}

func Search(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return draw(r)
}
`},
		{"order_insensitive_fold_ok", `package p

func total(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func Sum(m map[string]int) int {
	return total(m)
}
`},
		{"suppression", `package p

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}

func Tick() int64 {
	//lint:ignore detflow fixture: the timing is the measured quantity
	return stamp()
}
`},
	}
	for _, tc := range hotCases {
		t.Run("hot/"+tc.name, func(t *testing.T) {
			runCase(t, DetFlow, "repro/internal/dock/fixture", "", "fixture.go", tc.src)
		})
	}

	// Cold path: only functions that write provenance rows are sinks.
	coldSrc := `package p

import (
	"time"

	"repro/internal/prov"
)

func stamp() int64 {
	return time.Now().UnixNano()
}

func relay() int64 {
	return stamp() // cold, not a sink: silent
}

func record(db *prov.DB, now time.Time) error {
	if err := db.BeginActivation(1, 1, 1, now, "vm", "cmd"); err != nil {
		return err
	}
	_ = stamp() // want "nondeterminism reaches provenance-writing function: call to detflow.stamp, which reads the wall clock"
	return db.CloseActivation(1, prov.StatusFinished, now, 0)
}
`
	t.Run("cold/prov_sink", func(t *testing.T) {
		runCase(t, DetFlow, "fixture/detflow", "", "fixture.go", coldSrc)
	})
}

// diagsFor runs a set of analyzers over one in-memory fixture and
// returns the filtered diagnostics — the comparison harness for the
// old-vs-new tests below.
func diagsFor(t *testing.T, ans []*Analyzer, path, src string) []Diagnostic {
	t.Helper()
	pkg := checkFixture(t, path, "", "fixture.go", src)
	return Run([]*Package{pkg}, ans)
}

// syntacticAnalyzers is the pre-CFG registry: every analyzer that was
// in the gate before the flow-sensitive layer landed.
func syntacticAnalyzers() []*Analyzer {
	return []*Analyzer{CtxLeak, DiscardErr, FloatCmp, MutexHeld, ProvPair, WildRand}
}

// TestDimCheckCatchesR2SwapOldAnalyzersMiss seeds the r-vs-r² mutation
// — feeding a distance to an r²-indexed lookup — and shows the old
// syntactic registry passes it while dimcheck fails it.
func TestDimCheckCatchesR2SwapOldAnalyzersMiss(t *testing.T) {
	const good = `package p

//unit: r2=Å2
func tableAt2(r2 float64) float64 { return r2 }

//unit: r=Å
func score(r float64) float64 {
	return tableAt2(r * r)
}
`
	// The seeded mutation: drop the squaring.
	mutant := strings.Replace(good, "tableAt2(r * r)", "tableAt2(r)", 1)
	if mutant == good {
		t.Fatal("mutation did not apply")
	}

	if ds := diagsFor(t, syntacticAnalyzers(), "repro/internal/dock/fixture", mutant); len(ds) != 0 {
		t.Errorf("old analyzers unexpectedly flag the r² mutant: %v", ds)
	}
	if ds := diagsFor(t, []*Analyzer{DimCheck}, "repro/internal/dock/fixture", good); len(ds) != 0 {
		t.Errorf("dimcheck flags the correct code: %v", ds)
	}
	ds := diagsFor(t, []*Analyzer{DimCheck}, "repro/internal/dock/fixture", mutant)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "r vs r² mixup") {
		t.Errorf("dimcheck must flag the r² mutant with the mixup hint, got %v", ds)
	}
}

// TestDetFlowCatchesHelperRandWildRandMisses seeds unseeded randomness
// behind a helper in a hot path. wildrand's syntactic check sees only
// the draw inside the helper body; the hot public API call site — the
// line a reviewer needs — is invisible to it and only detflow finds it.
func TestDetFlowCatchesHelperRandWildRandMisses(t *testing.T) {
	const src = `package p

import "math/rand"

func jitter() float64 {
	return rand.Float64() // the only line wildrand can see
}

func Search(x float64) float64 {
	return x + jitter() // the call site only detflow reports
}
`
	callLine := fixtureLine(t, src, "x + jitter()")

	old := diagsFor(t, []*Analyzer{WildRand}, "repro/internal/dock/fixture", src)
	for _, d := range old {
		if d.Pos.Line == callLine {
			t.Errorf("wildrand unexpectedly flags the helper call site: %v", d)
		}
	}
	ds := diagsFor(t, []*Analyzer{DetFlow}, "repro/internal/dock/fixture", src)
	if len(ds) != 1 || ds[0].Pos.Line != callLine {
		t.Fatalf("detflow must flag exactly the call site (line %d), got %v", callLine, ds)
	}
	if !strings.Contains(ds[0].Message, "draws from the math/rand global source") {
		t.Errorf("detflow message missing the source explanation: %s", ds[0].Message)
	}
}

// TestDetFlowCrossPackageFixture loads the on-disk fixtures and shows
// the fully interprocedural case: the nondeterministic draw lives in a
// cold package (testdata/src/noise) where wildrand reports nothing at
// all, and only detflow's call-graph taint surfaces the hot call site.
func TestDetFlowCrossPackageFixture(t *testing.T) {
	pkgs, err := Load(LoadConfig{},
		"testdata/src/internal/dock", "testdata/src/noise")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	data, err := os.ReadFile("testdata/src/internal/dock/dock.go")
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	callLine := fixtureLine(t, string(data), "noise.Wall()")

	old := Run(pkgs, []*Analyzer{WildRand})
	for _, d := range old {
		if strings.Contains(d.Pos.Filename, "noise") {
			t.Errorf("wildrand flagged the cold helper package: %v", d)
		}
		if strings.Contains(d.Pos.Filename, "dock.go") && d.Pos.Line == callLine {
			t.Errorf("wildrand flagged the cross-package call site: %v", d)
		}
	}

	found := false
	for _, d := range Run(pkgs, []*Analyzer{DetFlow}) {
		if strings.Contains(d.Pos.Filename, "dock.go") && d.Pos.Line == callLine {
			found = true
			if !strings.Contains(d.Message, "noise.Wall") ||
				!strings.Contains(d.Message, "draws from the math/rand global source") {
				t.Errorf("cross-package chain not rendered: %s", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("detflow missed the cross-package call site at dock.go:%d", callLine)
	}
}

// TestLockFlowCatchesEarlyReturnLeakMutexHeldMisses seeds the
// early-return read-lock leak (the TableShard snapshot bug shape).
// mutexheld's release check is function-scoped — an unlock anywhere
// satisfies it — so only lockflow's path-sensitive analysis fails it.
func TestLockFlowCatchesEarlyReturnLeakMutexHeldMisses(t *testing.T) {
	const good = `package p

import "sync"

type shard struct {
	mu   sync.RWMutex
	rows []int
}

func (s *shard) snapshotIf(max int) []int {
	s.mu.RLock()
	if len(s.rows) > max {
		s.mu.RUnlock()
		return nil
	}
	out := s.rows[:len(s.rows):len(s.rows)]
	s.mu.RUnlock()
	return out
}
`
	// The seeded mutation: drop the unlock on the early-return path.
	mutant := strings.Replace(good, "s.mu.RUnlock()\n\t\treturn nil", "return nil", 1)
	if mutant == good {
		t.Fatal("mutation did not apply")
	}

	if ds := diagsFor(t, syntacticAnalyzers(), "fixture/lockflow", mutant); len(ds) != 0 {
		t.Errorf("old analyzers unexpectedly flag the leak mutant: %v", ds)
	}
	if ds := diagsFor(t, []*Analyzer{LockFlow}, "fixture/lockflow", good); len(ds) != 0 {
		t.Errorf("lockflow flags the correct code: %v", ds)
	}
	ds := diagsFor(t, []*Analyzer{LockFlow}, "fixture/lockflow", mutant)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "still held when this path returns") {
		t.Errorf("lockflow must flag the early-return leak, got %v", ds)
	}
	wantLine := fixtureLine(t, mutant, "return nil")
	if len(ds) == 1 && ds[0].Pos.Line != wantLine {
		t.Errorf("leak reported at line %d, want the early return at %d", ds[0].Pos.Line, wantLine)
	}
}

// fixtureLine returns the 1-based line of the first occurrence of
// needle in src.
func fixtureLine(t *testing.T, src, needle string) int {
	t.Helper()
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, needle) {
			return i + 1
		}
	}
	t.Fatalf("needle %q not in fixture", needle)
	return 0
}
