// Package data provides the SciDock workload of the paper: the clan
// Peptidase_CA (CL0125) dataset of Table 2 — 238 receptor PDB codes
// and 42 CP-specific ligand codes — together with a deterministic
// synthetic structure generator.
//
// Substitution note (see DESIGN.md §2): the paper downloads crystal
// structures from RCSB-PDB. This reproduction cannot ship PDB data, so
// each code is expanded into a synthetic 3D structure seeded by the
// code string: receptors are binding pockets with heterogeneous sizes
// (the attribute driving SciDock's docking filter) and ligands are
// drug-like flexible small molecules. A few receptors contain Hg atoms
// and a few ligands are flagged "problematic", reproducing the failure
// behaviours of §V.C.
package data

// ReceptorCodes lists the 238 receptors of clan Peptidase_CA (CL0125)
// from Table 2 of the paper, in table order.
var ReceptorCodes = []string{
	"1AEC", "1AIM", "1ATK", "1AU0", "1AU2", "1AU3", "1AU4", "1AYU", "1AYV", "1AYW", "1BGO", "1BP4", "1BQI", "1BY8",
	"1CJL", "1CPJ", "1CQD", "1CS8", "1CSB", "1CTE", "1CVZ", "1DEU", "1EF7", "1EWL", "1EWM", "1EWO", "1EWP", "1F29",
	"1F2A", "1F2B", "1F2C", "1FH0", "1GEC", "1GLO", "1GMY", "1HUC", "1ICF", "1ITO", "1IWD", "1JQP", "1K3B", "1KHP",
	"1KHQ", "1M6D", "1ME3", "1ME4", "1MEG", "1MEM", "1MHW", "1MIR", "1MS6", "1NB3", "1NB5", "1NL6", "1NLJ", "1NPZ",
	"1NQC", "1O0E", "1PAD", "1PBH", "1PCI", "1PE6", "1PIP", "1POP", "1PPD", "1PPN", "1PPO", "1PPP", "1Q6K", "1QDQ",
	"1S4V", "1SNK", "1SP4", "1STF", "1THE", "1TU6", "1U9Q", "1U9V", "1U9W", "1U9X", "1VSN", "1XKG", "1YAL", "1YK7",
	"1YK8", "1YT7", "1YVB", "2ACT", "2AIM", "2AS8", "2ATO", "2AUX", "2AUZ", "2B1M", "2B1N", "2BDL", "2BDZ", "2C0Y",
	"2CIO", "2DC6", "2DC7", "2DC8", "2DC9", "2DCA", "2DCB", "2DCC", "2DCD", "2DJF", "2DJG", "2F1G", "2F7D", "2FO5",
	"2FQ9", "2FRA", "2FRQ", "2FT2", "2FTD", "2FUD", "2FYE", "2G6D", "2G7Y", "2GHU", "2H7J", "2HH5", "2HHN", "2HXZ",
	"2IPP", "2NQD", "2O6X", "2OP3", "2OUL", "2OZ2", "2P7U", "2P86", "2PAD", "2PBH", "2PNS", "2PRE", "2R6N", "2R9M",
	"2R9N", "2R9O", "2VHS", "2WBF", "2XU1", "2XU3", "2XU4", "2XU5", "2YJ2", "2YJ8", "2YJ9", "2YJB", "2YJC", "3AI8",
	"3BC3", "3BCN", "3BPF", "3BPM", "3BWK", "3C9E", "3CBJ", "3CBK", "3CH2", "3CH3", "3D6S", "3E1Z", "3F5V", "3F75",
	"3H6S", "3H7D", "3H89", "3H8B", "3H8C", "3HD3", "3HHA", "3HHI", "3HWN", "3IO6", "3IEJ", "3IMA", "3IOQ", "3IUT",
	"3IV2", "3K24", "3K9M", "3KFQ", "3KKU", "3KSE", "3KW9", "3KWB", "3KWN", "3KWZ", "3KX1", "3LFY", "3LXS", "3MOR",
	"3MPE", "3MPF", "3N3G", "3N4C", "3O0U", "3O1G", "3OF8", "3OF9", "3OIS", "3OVX", "3OVZ", "3P5U", "3P5V", "3P5W",
	"3P5X", "3PBH", "3PDF", "3PNR", "3QJ3", "3QSD", "3QT4", "3RVV", "3RVW", "3RVX", "3S3Q", "3S3R", "3TNX", "3U8E",
	"3USV", "4AXL", "4AXM", "4DMX", "4DMY", "4HWY", "4K7C", "4KLB", "4PAD", "5PAD", "6PAD", "7PCK", "8PCH", "9PAP",
}

// LigandCodes lists the 42 CP-specific ligand het codes of Table 2.
// The scanned table is partially garbled; the 37 unambiguous codes are
// kept verbatim and the remainder filled with plausible neighbouring
// het codes (documented in EXPERIMENTS.md). The four ligands analysed
// in Table 3 (042, 074, 0D6, 0E6) are first, as in the paper.
var LigandCodes = []string{
	"042", "074", "0D6", "0E6",
	"015", "0IW", "0LB", "0LC", "0PC", "0QE",
	"186", "1EV", "1ZE", "23Z", "25B", "2CA", "2HP", "3FC",
	"424", "4MC", "4PR", "599", "59A",
	"73V", "74M", "75V", "76V", "77B", "78A",
	"935", "93N",
	"ACE", "ACT", "ACY", "AEM", "ALD", "APD",
	// OCR-reconstructed fill to reach the paper's count of 42:
	"0F6", "1EW", "2CB", "4MD", "AEN",
}

// Table3Ligands are the four ligands whose docking statistics the
// paper reports in Table 3 (238 receptors × 4 ligands ≈ the "first
// 1,000 receptor-ligand pairs").
var Table3Ligands = []string{"042", "074", "0D6", "0E6"}
