package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/prov"
)

func seededDB(t *testing.T) *prov.DB {
	t.Helper()
	db, err := prov.NewProvWfDB()
	if err != nil {
		t.Fatal(err)
	}
	// 4 pairs docked by both programs + 1 AD4-only.
	rows := []struct {
		rec, lig, prog string
		feb            float64
	}{
		{"2HHN", "0E6", "autodock4", -7.2},
		{"2HHN", "0E6", "vina", -5.2},
		{"1S4V", "0D6", "autodock4", -6.0},
		{"1S4V", "0D6", "vina", -4.9},
		{"1HUC", "0D6", "autodock4", 2.0},
		{"1HUC", "0D6", "vina", -1.0},
		{"1AEC", "042", "autodock4", 5.5},
		{"1AEC", "042", "vina", 3.0},
		{"9PAP", "074", "autodock4", -0.5},
	}
	for i, r := range rows {
		if err := db.InsertDocking(int64(i+1), 1, r.rec, r.lig, r.prog, r.feb, 10, 4); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCoverageReport(t *testing.T) {
	db := seededDB(t)
	cs, err := CoverageReport(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("programs = %d", len(cs))
	}
	byProg := map[string]Coverage{}
	for _, c := range cs {
		byProg[c.Program] = c
	}
	ad4 := byProg["autodock4"]
	if ad4.Docked != 5 || ad4.Favourable != 3 || ad4.Complementary != 2 {
		t.Errorf("ad4 coverage = %+v", ad4)
	}
	if math.Abs(ad4.BestFEB+7.2) > 1e-9 {
		t.Errorf("ad4 best = %v", ad4.BestFEB)
	}
	vina := byProg["vina"]
	if vina.Docked != 4 || vina.Favourable != 3 {
		t.Errorf("vina coverage = %+v", vina)
	}
	out := FormatCoverage(cs)
	if !strings.Contains(out, "complementary") || !strings.Contains(out, "autodock4") {
		t.Errorf("format:\n%s", out)
	}
}

func TestConsensusReport(t *testing.T) {
	db := seededDB(t)
	c, err := ConsensusReport(db)
	if err != nil {
		t.Fatal(err)
	}
	if c.CommonPairs != 4 {
		t.Fatalf("common pairs = %d", c.CommonPairs)
	}
	if c.BothFav != 2 || c.OnlyAD4 != 0 || c.OnlyVina != 1 || c.Neither != 1 {
		t.Errorf("consensus = %+v", c)
	}
	if math.Abs(c.Agreement-0.75) > 1e-9 {
		t.Errorf("agreement = %v", c.Agreement)
	}
	// FEB orderings agree on these 4 pairs → rho 1.0.
	if math.Abs(c.Spearman-1.0) > 1e-9 {
		t.Errorf("spearman = %v", c.Spearman)
	}
	out := FormatConsensus(c)
	if !strings.Contains(out, "Spearman") {
		t.Errorf("format:\n%s", out)
	}
	// Empty DB: no common pairs.
	empty, _ := prov.NewProvWfDB()
	c2, err := ConsensusReport(empty)
	if err != nil || c2.CommonPairs != 0 {
		t.Errorf("empty consensus = %+v, %v", c2, err)
	}
	if !strings.Contains(FormatConsensus(c2), "no pairs") {
		t.Error("empty consensus format")
	}
}

func TestSpearman(t *testing.T) {
	// Perfect monotone increasing.
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(got-1) > 1e-12 {
		t.Errorf("increasing rho = %v", got)
	}
	// Perfect monotone decreasing.
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Errorf("decreasing rho = %v", got)
	}
	// Non-linear but monotone still rho=1 (rank-based).
	if got := Spearman([]float64{1, 2, 3}, []float64{1, 100, 10000}); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone rho = %v", got)
	}
	// Ties handled via average ranks: still well-defined.
	got := Spearman([]float64{1, 1, 2, 3}, []float64{5, 5, 6, 7})
	if got < 0.9 {
		t.Errorf("tied rho = %v", got)
	}
	// Degenerate inputs.
	if Spearman([]float64{1}, []float64{2}) != 0 {
		t.Error("single sample should be 0")
	}
	if Spearman([]float64{1, 2}, []float64{3}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if Spearman([]float64{5, 5, 5}, []float64{1, 2, 3}) != 0 {
		t.Error("constant sample should be 0")
	}
}

func TestTopReceptors(t *testing.T) {
	db := seededDB(t)
	hits, err := TopReceptors(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	// 2HHN and 1S4V both have 2 favourable rows; 2HHN's best is
	// deeper so it ranks first.
	if hits[0].Receptor != "2HHN" || hits[0].Hits != 2 {
		t.Errorf("top hit = %+v", hits[0])
	}
	if hits[1].Receptor != "1S4V" {
		t.Errorf("second hit = %+v", hits[1])
	}
	all, err := TopReceptors(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 { // 2HHN, 1S4V, 1HUC(vina), 9PAP
		t.Errorf("all hits = %d", len(all))
	}
}
