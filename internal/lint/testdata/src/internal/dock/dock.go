// Package dock is the wildrand and detflow scilint fixture. Its
// directory path contains "internal/dock", which puts it on the
// analyzers' deterministic hot-path list: global rand calls and
// wall-clock reads are findings here, while the injected seeded source
// is not. The *ViaHelper/*CrossPackage functions below reach the same
// sources through call chains — invisible to the syntactic wildrand,
// caught by detflow's call-graph taint.
package dock

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/lint/testdata/src/noise"
)

// Jitter draws from the process-global rand source (wildrand, error).
func Jitter() float64 {
	return rand.Float64()
}

// Stamp reads the wall clock in a hot path (wildrand, error).
func Stamp() time.Time {
	return time.Now()
}

// Seeded uses the approved injected-source pattern: constructors are
// exempt, and methods on the local *rand.Rand are invisible to the
// global-source check.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// PoolGlobalRand mirrors the worker-pool shape of the parallel search
// engines but draws from the process-global source inside the worker
// goroutine — non-reproducible across worker counts (wildrand, error).
func PoolGlobalRand(chains int) []float64 {
	out := make([]float64, chains)
	done := make(chan int)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for c := w; c < chains; c += 2 {
				out[c] = rand.Float64()
			}
			done <- w
		}(w)
	}
	<-done
	<-done
	return out
}

// JitterCrossPackage reaches the process-global rand source through a
// helper in a cold package. wildrand is silent both here (no direct
// draw) and in noise (not a hot path); detflow reports this call site
// with the chain down to the source (detflow, error).
func JitterCrossPackage() float64 {
	return noise.Wall()
}

// JitterSeededCrossPackage injects a seeded source into the same cold
// helper package, which sanitizes the subtree (clean).
func JitterSeededCrossPackage(seed int64) float64 {
	return noise.Seeded(rand.New(rand.NewSource(seed)))
}

// typeNames accumulates map keys in Go's randomized iteration order —
// an order-sensitive fold that makes the function a taint source.
func typeNames(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// EmitTypes calls the order-sensitive helper from a hot path (detflow,
// error). wildrand has no map-order check at all, so the old registry
// passes this function untouched.
func EmitTypes(m map[string]int) []string {
	return typeNames(m)
}

// sortedTypeNames sorts after collecting — the sorted-key idiom that
// sanitizes map iteration.
func sortedTypeNames(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EmitTypesSorted stays clean: the helper's sort removes the taint.
func EmitTypesSorted(m map[string]int) []string {
	return sortedTypeNames(m)
}

// PoolSeededRand is the approved pattern the Vina and AD4 search pools
// use: every chain derives its own rand.Rand from the chain index, so
// trajectories are identical for any worker count (clean).
func PoolSeededRand(seed int64, chains int) []float64 {
	out := make([]float64, chains)
	done := make(chan int)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for c := w; c < chains; c += 2 {
				r := rand.New(rand.NewSource(seed + int64(c)*104729))
				out[c] = r.Float64()
			}
			done <- w
		}(w)
	}
	<-done
	<-done
	return out
}
