// Command scidock runs the SciDock molecular-docking virtual
// screening workflow end-to-end on the simulated HPC cloud and
// reports the execution summary, Table-3-style docking statistics and
// optional provenance queries. With -serve it instead becomes a
// resident campaign service: an HTTP/JSON API for submitting,
// monitoring, querying and cancelling many concurrent campaigns.
//
// Examples:
//
//	scidock -mode ad4 -receptors 20 -ligands 4 -cores 32
//	scidock -mode adaptive -receptors 50 -ligands 8 -cores 64 -effort campaign
//	scidock -mode vina -receptors 10 -ligands 2 -query "SELECT count(*) FROM ddocking"
//	scidock -serve 127.0.0.1:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
)

func main() {
	var (
		mode      = flag.String("mode", "ad4", "docking mode: ad4, vina or adaptive")
		receptors = flag.Int("receptors", 10, "number of receptors from Table 2 (1-238)")
		ligands   = flag.Int("ligands", 2, "number of ligands from Table 2 (1-42)")
		cores     = flag.Int("cores", 16, "virtual worker cores (the paper used 2-128)")
		effort    = flag.String("effort", "campaign", "docking effort preset: smoke, campaign or quick")
		seed      = flag.Int64("seed", 2014, "campaign seed")
		hgGuard   = flag.Bool("hgguard", true, "enable the Hg steering guard of §V.C")
		failures  = flag.Bool("failures", true, "inject ~10% transient activation failures")
		monitor   = flag.Bool("monitor", false, "print runtime-steering snapshots after each stage")
		query     = flag.String("query", "", "SQL to run against the provenance database afterwards")
		precision = flag.String("precision", "exact", "candidate scoring: exact, or tolerance (fast screens with exact confirmation; identical output, fewer cycles)")
		serve     = flag.String("serve", "", "serve the campaign HTTP API on this address (e.g. 127.0.0.1:8080) instead of running one campaign")
	)
	flag.Parse()

	var err error
	if *serve != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = runServe(ctx, *serve)
		stop()
	} else {
		err = run(*mode, *receptors, *ligands, *cores, *effort, *seed, *hgGuard, *failures, *monitor, *query, *precision)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scidock:", err)
		os.Exit(1)
	}
}

// validateChoice rejects a flag value outside its enumeration with a
// usage message listing the valid values.
func validateChoice(flagName, v string, valid ...string) error {
	for _, ok := range valid {
		if v == ok {
			return nil
		}
	}
	return fmt.Errorf("invalid -%s %q: valid values are %s", flagName, v, strings.Join(valid, ", "))
}

// validateFlags checks every enumerated or bounded flag up front —
// before any dataset or engine work — so a typo fails in microseconds
// with a usage message instead of deep inside the run.
func validateFlags(mode string, receptors, ligands, cores int, effort, precision string) error {
	if err := validateChoice("mode", mode, "ad4", "vina", "adaptive"); err != nil {
		return err
	}
	if err := validateChoice("effort", effort, "smoke", "campaign", "quick"); err != nil {
		return err
	}
	if err := validateChoice("precision", precision, "exact", "tolerance"); err != nil {
		return err
	}
	if cores < 1 {
		return fmt.Errorf("invalid -cores %d: must be a positive core count", cores)
	}
	if receptors < 1 {
		return fmt.Errorf("invalid -receptors %d: must be positive", receptors)
	}
	if ligands < 1 {
		return fmt.Errorf("invalid -ligands %d: must be positive", ligands)
	}
	return nil
}

func run(mode string, receptors, ligands, cores int, effort string, seed int64, hgGuard, failures, monitor bool, query, precision string) error {
	if err := validateFlags(mode, receptors, ligands, cores, effort, precision); err != nil {
		return err
	}
	spec := campaign.Spec{
		Mode: mode, Receptors: receptors, Ligands: ligands, Cores: cores,
		Effort: effort, Seed: seed, Precision: precision,
		DisableHgGuard: !hgGuard, DisableFailures: !failures,
	}
	cfg, err := spec.Config()
	if err != nil {
		return err
	}
	// A -seed 0 must stay 0; the spec's JSON zero-value default (2014)
	// is for the service API.
	cfg.Seed = seed
	ds := cfg.Dataset
	if monitor {
		// Runtime steering (§IV.B): after each stage, query the live
		// provenance database for failures so the scientist can react
		// before the workflow ends.
		cfg.OnStageComplete = func(ev engine.StageEvent) {
			res, err := ev.Engine.DB.Query(
				"SELECT count(*) FROM hactivation WHERE status = 'ABORTED' OR status = 'FAILED'")
			problems := "?"
			if err == nil {
				problems = fmt.Sprintf("%v", res.Rows[0][0])
			}
			fmt.Printf("  [steering] stage %-14s done at +%s: %d activations, %d retries, problem activations so far: %s\n",
				ev.Activity, stats.FormatDuration(ev.Clock), ev.Stats.Activations,
				ev.Stats.Failures, problems)
		}
	}

	fmt.Printf("SciDock %s: %d receptors × %d ligands = %d pairs on %d cores\n",
		cfg.Mode, receptors, ligands, ds.NumPairs(), cores)

	// The one-shot CLI is a thin client of the same campaign manager
	// the -serve API uses: submit one campaign, wait for it.
	m := campaign.NewManager(nil, campaign.Limits{})
	id, err := m.SubmitConfig(spec, cfg)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM cancel the campaign instead of killing the
	// process mid-write: the engine closes pending activations as
	// ABORTED and the partial report still prints below.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "scidock: signal received, cancelling campaign — partial report follows")
			if _, cerr := m.Cancel(id); cerr != nil {
				fmt.Fprintln(os.Stderr, "scidock: cancel:", cerr)
			}
		case <-watchDone:
		}
	}()

	camp, err := m.Wait(context.Background(), id)
	cancelled := err != nil && errors.Is(err, engine.ErrCancelled)
	if err != nil && !cancelled {
		return err
	}
	if cancelled {
		fmt.Println("\ncampaign cancelled; partial results:")
	}

	for _, rep := range camp.Reports {
		fmt.Printf("\nworkflow %d: TET %s, %d activations, %d transient failures recovered, %d aborted\n",
			rep.WorkflowID, stats.FormatDuration(rep.TET), rep.Activations, rep.Failures, rep.Aborted)
		for _, a := range rep.PerActivity {
			fmt.Printf("  %-14s n=%-5d failures=%-3d stage=%s\n",
				a.Tag, a.Activations, a.Failures, stats.FormatDuration(a.StageSecs))
		}
	}
	fmt.Printf("\ncampaign TET: %s   simulated EC2 bill: $%.2f   shared FS: %d bytes\n",
		stats.FormatDuration(camp.TET()), camp.Engine.Cluster.Cost(), camp.Engine.FS.TotalBytes())

	rows, err := core.Table3(camp.Engine.DB, ds.Ligands)
	if err != nil {
		return err
	}
	fmt.Println("\nDocking statistics (Table 3 layout):")
	fmt.Print(core.FormatTable3(rows))
	top, err := core.TopInteractions(camp.Engine.DB, 3)
	if err != nil {
		return err
	}
	if len(top) > 0 {
		fmt.Println("best interactions:")
		for _, t := range top {
			fmt.Println("  " + t)
		}
	}

	if query != "" {
		res, err := camp.Engine.DB.Query(query)
		if err != nil {
			return err
		}
		fmt.Println("\n" + res.Format())
	}
	return nil
}

// serveListening, when non-nil (tests), receives the bound address
// once the listener is up.
var serveListening func(string)

// runServe runs the resident campaign service until ctx is cancelled
// (SIGINT/SIGTERM in main), then drains: admissions stop, queued
// campaigns are cancelled, running ones get a grace period to finish
// before being cancelled, and the HTTP server shuts down cleanly.
func runServe(ctx context.Context, addr string) error {
	m := campaign.NewManager(nil, campaign.Limits{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("scidock: serving campaign API on %s\n", ln.Addr())
	if serveListening != nil {
		serveListening(ln.Addr().String())
	}

	srv := &http.Server{Handler: campaign.NewHandler(m)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("scidock: draining campaigns before shutdown")
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
	m.Shutdown(drainCtx)
	cancelDrain()
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	fmt.Println("scidock: shutdown complete")
	return nil
}
