// Package sick is a scilint test fixture: every function below
// violates one analyzer on purpose. The package type-checks cleanly —
// the defects are semantic, which is exactly what the analyzers are
// for. testdata is invisible to go build, go vet and scilint's own
// "./..." walk; only the internal/lint and cmd/scilint tests load it.
package sick

import (
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/prov"
)

// FloatEqual compares computed floats exactly (floatcmp, error).
func FloatEqual(a, b float64) bool {
	return a == b
}

// ParsePort drops the parse error on the floor (discarderr, error).
func ParsePort(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

// Counter is mutex-guarded state used by the mutexheld cases.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Leak acquires the lock and never releases it (mutexheld, error).
func (c *Counter) Leak() int {
	c.mu.Lock()
	return c.n
}

// SlowAdd sleeps inside the critical section (mutexheld, warn).
func (c *Counter) SlowAdd() {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond)
	c.n++
}

// RecordRun opens a provenance activation and never closes it
// (provpair, error).
func RecordRun(db *prov.DB, now time.Time) {
	db.BeginActivation(1, 1, 1, now, "vm-0", "run")
}

// StartWorker spawns a goroutine with no shutdown path (ctxleak, warn).
func StartWorker(c *Counter) {
	go func() {
		for {
			c.SlowAdd()
		}
	}()
}

// TableShard mirrors the provenance store's per-table layout: a row
// slice guarded by an RWMutex, snapshotted by readers and drained by a
// buffered-appender flush. The three methods below get each half of
// that protocol wrong.
type TableShard struct {
	mu   sync.RWMutex
	rows []int
}

// SnapshotLeak takes the read lock for a zero-copy snapshot and never
// releases it, wedging every later flush (mutexheld, error).
func (t *TableShard) SnapshotLeak() []int {
	t.mu.RLock()
	return t.rows[:len(t.rows):len(t.rows)]
}

// SnapshotIf releases the read lock on the normal path but leaks it on
// the early return. mutexheld's function-scope heuristic is satisfied
// by the RUnlock below; only the path-sensitive analysis sees the leak
// (lockflow, error).
func (t *TableShard) SnapshotIf(max int) []int {
	t.mu.RLock()
	if len(t.rows) > max {
		return nil
	}
	rows := t.rows[:len(t.rows):len(t.rows)]
	t.mu.RUnlock()
	return rows
}

// FlushNotify hands the drained batch to the consumer while still
// holding the table lock; a slow consumer convoys every writer
// (mutexheld, warn).
func (t *TableShard) FlushNotify(out chan []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out <- t.rows
	t.rows = nil
}

// StartFlusher spawns a background flusher that can never be stopped
// (ctxleak, warn).
func (t *TableShard) StartFlusher(out chan []int) {
	go func() {
		for {
			t.FlushNotify(out)
		}
	}()
}

// CampaignQueue mirrors the campaign service's admission surface: a
// FIFO queue under one mutex, HTTP handlers that spawn per-request
// work. The two handlers below get each half of that protocol wrong.
type CampaignQueue struct {
	mu    sync.Mutex
	queue []int
	max   int
	stats int
}

// HandleSubmit admits a campaign but leaks the admission lock on the
// queue-full early return, wedging every later submit. The happy
// path unlocks, so mutexheld's function-scope heuristic is
// satisfied; only the path-sensitive analysis sees the leak
// (lockflow, error).
func (q *CampaignQueue) HandleSubmit(id int) bool {
	q.mu.Lock()
	if len(q.queue) >= q.max {
		return false
	}
	q.queue = append(q.queue, id)
	q.mu.Unlock()
	return true
}

// HandleWatch spawns a per-request progress publisher with no
// shutdown path: one goroutine leaks for every watcher the handler
// ever served, long after the client hung up (ctxleak, warn).
func (q *CampaignQueue) HandleWatch() {
	go func() {
		for {
			q.bump()
		}
	}()
}

func (q *CampaignQueue) bump() {
	q.mu.Lock()
	q.stats++
	q.mu.Unlock()
}

// tableAt2 mirrors the r²-indexed kernel lookups: the parameter is a
// squared distance.
//
//unit: r2=Å2
func tableAt2(r2 float64) float64 {
	return r2
}

// LookupEnergy feeds a plain Å distance to the r²-indexed lookup — the
// silent, physically-plausible wrong answer the unit lattice exists to
// catch (dimcheck, error).
//
//unit: r=Å
func LookupEnergy(r float64) float64 {
	return tableAt2(r)
}

// soaLane reads one pose's coordinate component out of a batched SoA
// lane.
//
//unit: result=Å
func soaLane(lane []float64, k int) float64 {
	return lane[k]
}

// BatchIntraAccum mirrors the batched pair-major intramolecular
// kernel — one atom pair, poses inner, SoA coordinate lanes — and
// takes the square root before the r²-indexed lookup: the r-vs-r²
// swap a batched rewrite invites, since r and r² both sit in scope in
// the inner loop (dimcheck, error).
func BatchIntraAccum(xs, ys, zs []float64, stride, i, j int, out []float64) {
	for p := range out {
		base := p * stride
		dx := soaLane(xs, base+i) - soaLane(xs, base+j)
		dy := soaLane(ys, base+i) - soaLane(ys, base+j)
		dz := soaLane(zs, base+i) - soaLane(zs, base+j)
		r2 := dx*dx + dy*dy + dz*dz
		r := math.Sqrt(r2)
		out[p] += tableAt2(r)
	}
}

// ScoreWindowExact promises bit-identity to a per-pose reference but
// accumulates in float32 — exactly the precision drift the directive
// forbids (exactflow, error).
//
//exact: bit-identical to the per-pose path
func ScoreWindowExact(out []float64, terms []float64) {
	var acc float32
	for _, t := range terms {
		acc += float32(t)
	}
	out[0] = float64(acc)
}

// WindowGatherCount mirrors the incumbent-anchored gather admission
// test: it compares each atom's squared displacement from the window
// anchor against the plain Å displacement bound — Å² against Å, the
// swap that silently admits almost every pose once the bound drops
// below 1 Å and quietly widens the shared gather above it
// (dimcheck, warn).
//
//unit: bound=Å
func WindowGatherCount(xs, ys, zs, ax, ay, az []float64, bound float64) int {
	n := 0
	for k := range xs {
		dx := soaLane(xs, k) - soaLane(ax, k)
		dy := soaLane(ys, k) - soaLane(ay, k)
		dz := soaLane(zs, k) - soaLane(az, k)
		d2 := dx*dx + dy*dy + dz*dz
		if d2 <= bound {
			n++
		}
	}
	return n
}
