package chem

import (
	"fmt"
	"math"
)

// RMSD returns the root-mean-square deviation between two equal-length
// coordinate sets, without superposition — the convention AutoDock
// uses in its DLG cluster tables (deviation from the reference input
// pose in the grid frame).
func RMSD(a, b []Vec3) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("chem: RMSD length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("chem: RMSD of empty coordinate sets")
	}
	var s float64
	for i := range a {
		s += a[i].Dist2(b[i])
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// HeavyAtomRMSD computes RMSD over heavy atoms only, the standard
// reporting convention for docking poses (hydrogen placement is
// ill-determined).
func HeavyAtomRMSD(m *Molecule, a, b []Vec3) (float64, error) {
	if len(a) != len(b) || len(a) != len(m.Atoms) {
		return 0, fmt.Errorf("chem: HeavyAtomRMSD size mismatch (mol %d, a %d, b %d)",
			len(m.Atoms), len(a), len(b))
	}
	var s float64
	n := 0
	for i, at := range m.Atoms {
		if !at.Element.IsHeavy() {
			continue
		}
		s += a[i].Dist2(b[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("chem: molecule %q has no heavy atoms", m.Name)
	}
	return math.Sqrt(s / float64(n)), nil
}

// KabschRMSD returns the minimum RMSD between the two coordinate sets
// over all rigid superpositions (rotation + translation), via the
// Kabsch algorithm with an iterative principal-rotation solve. Used by
// the redocking analyses suggested in §V.D.
func KabschRMSD(a, b []Vec3) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("chem: KabschRMSD length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("chem: KabschRMSD of empty coordinate sets")
	}
	ca, cb := Centroid(a), Centroid(b)
	// Covariance matrix H = Σ (a_i - ca)(b_i - cb)^T
	var h [3][3]float64
	for i := range a {
		p := a[i].Sub(ca)
		q := b[i].Sub(cb)
		pv := [3]float64{p.X, p.Y, p.Z}
		qv := [3]float64{q.X, q.Y, q.Z}
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				h[r][c] += pv[r] * qv[c]
			}
		}
	}
	// E0 = Σ(|p|² + |q|²)
	var e0 float64
	for i := range a {
		e0 += a[i].Sub(ca).Norm2() + b[i].Sub(cb).Norm2()
	}
	// Optimal superposition residual: E0 - 2*Σ singular values of H
	// (with sign correction for reflections). Singular values of H are
	// sqrt of eigenvalues of H^T H; use Jacobi iteration on the 3×3
	// symmetric matrix.
	var hth [3][3]float64
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			for k := 0; k < 3; k++ {
				hth[r][c] += h[k][r] * h[k][c]
			}
		}
	}
	ev := jacobiEigen3(hth)
	for i := range ev {
		if ev[i] < 0 {
			ev[i] = 0 // numerical noise
		}
	}
	detH := det3(h)
	sum := math.Sqrt(ev[0]) + math.Sqrt(ev[1])
	if detH < 0 {
		sum -= math.Sqrt(ev[2])
	} else {
		sum += math.Sqrt(ev[2])
	}
	res := e0 - 2*sum
	if res < 0 {
		res = 0
	}
	return math.Sqrt(res / float64(len(a))), nil
}

// jacobiEigen3 returns the eigenvalues of a symmetric 3×3 matrix in
// descending order using cyclic Jacobi rotations.
func jacobiEigen3(m [3][3]float64) [3]float64 {
	a := m
	for sweep := 0; sweep < 50; sweep++ {
		off := a[0][1]*a[0][1] + a[0][2]*a[0][2] + a[1][2]*a[1][2]
		if off < 1e-24 {
			break
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				if math.Abs(a[p][q]) < 1e-15 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation J(p,q,θ)^T A J(p,q,θ)
				var b [3][3]float64 = a
				for k := 0; k < 3; k++ {
					b[p][k] = c*a[p][k] - s*a[q][k]
					b[q][k] = s*a[p][k] + c*a[q][k]
				}
				var d [3][3]float64 = b
				for k := 0; k < 3; k++ {
					d[k][p] = c*b[k][p] - s*b[k][q]
					d[k][q] = s*b[k][p] + c*b[k][q]
				}
				a = d
			}
		}
	}
	ev := [3]float64{a[0][0], a[1][1], a[2][2]}
	// Sort descending.
	if ev[0] < ev[1] {
		ev[0], ev[1] = ev[1], ev[0]
	}
	if ev[1] < ev[2] {
		ev[1], ev[2] = ev[2], ev[1]
	}
	if ev[0] < ev[1] {
		ev[0], ev[1] = ev[1], ev[0]
	}
	return ev
}

func det3(m [3][3]float64) float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}
