package dock

import (
	"math"

	"repro/internal/chem"
)

// NeighborList is a cell-list spatial index over a rigid atom set,
// used by Vina to find receptor atoms within the interaction cutoff
// of each ligand atom without O(N·M) scans.
type NeighborList struct {
	cutoff  float64
	min     chem.Vec3
	dims    [3]int
	buckets [][]int
	pos     []chem.Vec3
}

// NewNeighborList indexes the molecule's atoms with the given cutoff.
func NewNeighborList(m *chem.Molecule, cutoff float64) *NeighborList {
	pts := m.Positions()
	min, max := chem.BoundingBox(pts)
	nl := &NeighborList{cutoff: cutoff, min: min, pos: pts}
	span := max.Sub(min)
	nl.dims[0] = int(span.X/cutoff) + 1
	nl.dims[1] = int(span.Y/cutoff) + 1
	nl.dims[2] = int(span.Z/cutoff) + 1
	nl.buckets = make([][]int, nl.dims[0]*nl.dims[1]*nl.dims[2])
	for i, p := range pts {
		b := nl.index(nl.cellOf(p))
		nl.buckets[b] = append(nl.buckets[b], i)
	}
	return nl
}

func (nl *NeighborList) cellOf(p chem.Vec3) [3]int {
	return [3]int{
		int(math.Floor((p.X - nl.min.X) / nl.cutoff)),
		int(math.Floor((p.Y - nl.min.Y) / nl.cutoff)),
		int(math.Floor((p.Z - nl.min.Z) / nl.cutoff)),
	}
}

func (nl *NeighborList) index(c [3]int) int {
	for i := 0; i < 3; i++ {
		if c[i] < 0 {
			c[i] = 0
		} else if c[i] >= nl.dims[i] {
			c[i] = nl.dims[i] - 1
		}
	}
	return (c[2]*nl.dims[1]+c[1])*nl.dims[0] + c[0]
}

// ForNeighbors calls fn for every indexed atom within cutoff of p,
// passing the atom index and its distance.
func (nl *NeighborList) ForNeighbors(p chem.Vec3, fn func(i int, r float64)) {
	c := nl.cellOf(p)
	if c[0] < -1 || c[0] > nl.dims[0] || c[1] < -1 || c[1] > nl.dims[1] || c[2] < -1 || c[2] > nl.dims[2] {
		return
	}
	cut2 := nl.cutoff * nl.cutoff
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y, z := c[0]+dx, c[1]+dy, c[2]+dz
				if x < 0 || x >= nl.dims[0] || y < 0 || y >= nl.dims[1] || z < 0 || z >= nl.dims[2] {
					continue
				}
				for _, i := range nl.buckets[(z*nl.dims[1]+y)*nl.dims[0]+x] {
					if r2 := nl.pos[i].Dist2(p); r2 <= cut2 {
						fn(i, math.Sqrt(r2))
					}
				}
			}
		}
	}
}
