package tables

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
)

// sweepTypes is a representative cross-section of the AD4 alphabet:
// polar hydrogen, plain/aromatic carbon, donor and acceptor nitrogen,
// oxygen and sulfur acceptors, a halogen, and a metal.
var sweepTypes = []chem.AtomType{
	chem.TypeHD, chem.TypeC, chem.TypeA, chem.TypeN,
	chem.TypeNA, chem.TypeOA, chem.TypeSA, chem.TypeCl, chem.TypeZn,
}

// tolerance is the golden-pinned interpolation error bound: 1e-3
// kcal/mol absolute wherever the potential is in the physically
// scored range (|E| up to a few kcal/mol), relaxing to 2e-4 relative
// inside the repulsive core where energies reach 1e5+ kcal/mol and
// map generation clamps them anyway. See DESIGN.md "Kernel
// architecture — radial tables".
func tolerance(analytic float64) float64 {
	return 1e-3 + 2e-4*math.Abs(analytic)
}

// sweep evaluates both forms over a dense deterministic sweep plus
// seeded random points of r ∈ [lo, Cutoff], failing on any deviation
// beyond tolerance.
func sweep(t *testing.T, name string, lo float64, tbl *Radial, analytic func(r float64) float64) {
	t.Helper()
	check := func(r float64) {
		t.Helper()
		want := analytic(r)
		got := tbl.At2(r * r)
		if d := math.Abs(got - want); d > tolerance(want) {
			t.Fatalf("%s: r=%.6f table=%.8g analytic=%.8g |Δ|=%.3g > tol %.3g",
				name, r, got, want, d, tolerance(want))
		}
	}
	for r := lo; r <= Cutoff; r += 0.01 {
		check(r)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		check(lo + rng.Float64()*(Cutoff-lo))
	}
}

func TestAD4SmoothedMatchesAnalytic(t *testing.T) {
	for _, a := range sweepTypes {
		for _, b := range sweepTypes {
			pa, pb := a.Params(), b.Params()
			sweep(t, "AD4Smoothed("+string(a)+","+string(b)+")", RMin,
				AD4Smoothed(a, b), func(r float64) float64 {
					return PairEnergySmoothed(pa, pb, r, SmoothRadius)
				})
		}
	}
}

func TestAD4PairMatchesAnalytic(t *testing.T) {
	for _, a := range sweepTypes {
		for _, b := range sweepTypes {
			pa, pb := a.Params(), b.Params()
			sweep(t, "AD4Pair("+string(a)+","+string(b)+")", RMin,
				AD4Pair(a, b), func(r float64) float64 {
					return PairEnergy(pa, pb, r)
				})
		}
	}
}

func TestVinaMatchesAnalytic(t *testing.T) {
	for _, a := range sweepTypes {
		for _, b := range sweepTypes {
			pa, pb := a.Params(), b.Params()
			sweep(t, "Vina("+string(a)+","+string(b)+")", RMin,
				Vina(a, b), func(r float64) float64 {
					return VinaPair(pa, pb, r)
				})
		}
	}
}

func TestElectrostaticMatchesAnalytic(t *testing.T) {
	sweep(t, "Electrostatic", RMin, Electrostatic(), ElecScale)
}

func TestDesolvationMatchesAnalytic(t *testing.T) {
	sweep(t, "Desolvation", RMin, Desolvation(), DesolvWeight)
}

// Below RMin the clamped tables must return the value at RMin (the
// clamp is baked in and lands exactly on a table node).
func TestClampBakedIn(t *testing.T) {
	tbl := AD4Smoothed(chem.TypeC, chem.TypeC)
	want := PairEnergySmoothed(chem.TypeC.Params(), chem.TypeC.Params(), RMin, SmoothRadius)
	for _, r2 := range []float64{0, 0.01, 0.1, RMin2} {
		if got := tbl.At2(r2); math.Abs(got-want) > tolerance(want) {
			t.Errorf("At2(%v) = %v, want clamped %v", r2, got, want)
		}
	}
	if got := Electrostatic().At2(0); math.Abs(got-ElecScale(RMin)) > 1e-3 {
		t.Errorf("elec At2(0) = %v, want %v", got, ElecScale(RMin))
	}
}

// Queries at or beyond the cutoff return the final node, where every
// potential is negligibly small.
func TestBeyondCutoff(t *testing.T) {
	for _, tbl := range []*Radial{
		AD4Smoothed(chem.TypeC, chem.TypeOA),
		Vina(chem.TypeC, chem.TypeC),
		Desolvation(),
	} {
		edge := tbl.At2(Cutoff * Cutoff)
		if got := tbl.At2(Cutoff*Cutoff + 100); got != edge {
			t.Errorf("beyond-cutoff At2 = %v, want edge value %v", got, edge)
		}
		if math.Abs(edge) > 0.05 {
			t.Errorf("potential at cutoff = %v, want ~0", edge)
		}
	}
}

// The cache must hand out one shared table per symmetric pair.
func TestCacheSymmetricAndShared(t *testing.T) {
	if AD4Smoothed(chem.TypeC, chem.TypeOA) != AD4Smoothed(chem.TypeOA, chem.TypeC) {
		t.Error("AD4Smoothed not symmetric-cached")
	}
	if Vina(chem.TypeN, chem.TypeOA) != Vina(chem.TypeOA, chem.TypeN) {
		t.Error("Vina not symmetric-cached")
	}
	if Electrostatic() != Electrostatic() {
		t.Error("Electrostatic rebuilt per call")
	}
}

// The analytic pair functions are symmetric, which the symmetric
// cache keying depends on.
func TestAnalyticSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := sweepTypes[rng.Intn(len(sweepTypes))].Params()
		b := sweepTypes[rng.Intn(len(sweepTypes))].Params()
		r := RMin + rng.Float64()*(Cutoff-RMin)
		if PairEnergy(a, b, r) != PairEnergy(b, a, r) {
			t.Fatalf("PairEnergy asymmetric for %s-%s", a.Type, b.Type)
		}
		if VinaPair(a, b, r) != VinaPair(b, a, r) {
			t.Fatalf("VinaPair asymmetric for %s-%s", a.Type, b.Type)
		}
	}
}

func BenchmarkAD4SmoothedTable(b *testing.B) {
	tbl := AD4Smoothed(chem.TypeC, chem.TypeOA)
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += tbl.At2(float64(i%6400) * 0.01)
	}
	_ = acc
}

func BenchmarkAD4SmoothedAnalytic(b *testing.B) {
	pa, pb := chem.TypeC.Params(), chem.TypeOA.Params()
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += PairEnergySmoothed(pa, pb, math.Sqrt(float64(i%6400)*0.01), SmoothRadius)
	}
	_ = acc
}

func BenchmarkVinaTable(b *testing.B) {
	tbl := Vina(chem.TypeC, chem.TypeC)
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += tbl.At2(float64(i%6400) * 0.01)
	}
	_ = acc
}

func BenchmarkVinaAnalytic(b *testing.B) {
	pa, pb := chem.TypeC.Params(), chem.TypeC.Params()
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += VinaPair(pa, pb, math.Sqrt(float64(i%6400)*0.01))
	}
	_ = acc
}
