package grid

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
)

// tol32 is the pinned error bound of the float32 representation
// against the analytic reference: the radial-table interpolation bound
// (1e-3 + 2e-4·|E|) widened by the float32 roundings — quantized table
// nodes during accumulation and the final single-precision store, each
// ≤ |E|·2⁻²⁴ relative with a small absolute floor. See DESIGN.md
// "Batched scoring and SoA layout — float32 error-bound methodology".
func tol32(want float64) float64 {
	return 1e-3 + 2.5e-4*math.Abs(want)
}

// The float32 generation path must agree with the serial analytic
// reference at every lattice node within the widened bound — the
// analytic path stays the golden oracle for both representations.
func TestGenerateFloat32MatchesReference(t *testing.T) {
	rec := preparedReceptor(t, "2HHN")
	spec := smallSpec(rec)
	types := []chem.AtomType{chem.TypeC, chem.TypeOA, chem.TypeHD, chem.TypeN}
	f32, err := GeneratePrec(rec, spec, types, 1, Float32)
	if err != nil {
		t.Fatal(err)
	}
	if f32.Precision() != Float32 {
		t.Fatalf("Precision() = %v, want Float32", f32.Precision())
	}
	ref, err := GenerateReference(rec, spec, types)
	if err != nil {
		t.Fatal(err)
	}
	compare := func(name string, got []float32, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
		}
		for i := range want {
			if d := math.Abs(float64(got[i]) - want[i]); d > tol32(want[i]) {
				t.Fatalf("%s[%d]: float32 %v vs analytic %v (|Δ|=%v > %v)",
					name, i, got[i], want[i], d, tol32(want[i]))
			}
		}
	}
	compare("elec", f32.elec32, ref.elec)
	compare("desolv", f32.desolv32, ref.desolv)
	for _, ty := range types {
		compare(string(ty), f32.affin32[ty], ref.affinity[ty])
	}
}

// Worker-count invariance holds for the float32 representation too:
// the written map files must be byte-identical for every worker count.
func TestGenerateFloat32DeterministicAcrossWorkers(t *testing.T) {
	rec := preparedReceptor(t, "1HUC")
	spec := smallSpec(rec)
	types := []chem.AtomType{chem.TypeC, chem.TypeOA}
	mapBytes := func(m *Maps) []byte {
		var buf bytes.Buffer
		for _, name := range []string{"C", "OA", "e", "d"} {
			if err := m.WriteMap(&buf, name); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	base, err := GeneratePrec(rec, spec, types, 1, Float32)
	if err != nil {
		t.Fatal(err)
	}
	want := mapBytes(base)
	for _, workers := range []int{2, 3, 8} {
		m, err := GeneratePrec(rec, spec, types, workers, Float32)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mapBytes(m), want) {
			t.Fatalf("float32 map files differ between 1 and %d workers", workers)
		}
	}
}

// Field resolution must be bit-equal to the per-call accessors on both
// representations, and interpolated float32 lookups must track the
// float64 maps within the representation bound.
func TestFieldMatchesAccessors(t *testing.T) {
	rec := preparedReceptor(t, "2HHN")
	spec := smallSpec(rec)
	types := []chem.AtomType{chem.TypeC, chem.TypeOA}
	for _, prec := range []Precision{Float64, Float32} {
		m, err := GeneratePrec(rec, spec, types, 1, prec)
		if err != nil {
			t.Fatal(err)
		}
		fC, err := m.AffinityField(chem.TypeC)
		if err != nil {
			t.Fatal(err)
		}
		fe, fd := m.ElectrostaticField(), m.DesolvationField()
		r := rand.New(rand.NewSource(31))
		span := chem.V(
			float64(spec.NPts[0]-1)*spec.Spacing,
			float64(spec.NPts[1]-1)*spec.Spacing,
			float64(spec.NPts[2]-1)*spec.Spacing,
		)
		for i := 0; i < 500; i++ {
			// Mostly inside the box, sometimes outside (penalty path).
			p := spec.Origin().Add(chem.V(
				(r.Float64()*1.2-0.1)*span.X,
				(r.Float64()*1.2-0.1)*span.Y,
				(r.Float64()*1.2-0.1)*span.Z,
			))
			aff, err := m.AffinityAt(chem.TypeC, p)
			if err != nil {
				t.Fatal(err)
			}
			if got := fC.At(p); got != aff {
				t.Fatalf("prec %v: AffinityField.At %v != AffinityAt %v", prec, got, aff)
			}
			if got := fe.At(p); got != m.ElectrostaticAt(p) {
				t.Fatalf("prec %v: ElectrostaticField.At diverges", prec)
			}
			if got := fd.At(p); got != m.DesolvationAt(p) {
				t.Fatalf("prec %v: DesolvationField.At diverges", prec)
			}
		}
		if _, err := m.AffinityField(chem.TypeZn); err == nil {
			t.Fatalf("prec %v: AffinityField for missing type must error", prec)
		}
	}
}

// Interpolated lookups on the float32 maps stay within the pinned
// bound of the float64 maps at off-lattice points too.
func TestFloat32InterpolationTracksFloat64(t *testing.T) {
	rec := preparedReceptor(t, "2HHN")
	spec := smallSpec(rec)
	types := []chem.AtomType{chem.TypeC, chem.TypeOA}
	m64, err := GeneratePrec(rec, spec, types, 1, Float64)
	if err != nil {
		t.Fatal(err)
	}
	m32, err := GeneratePrec(rec, spec, types, 1, Float32)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(12))
	span := chem.V(
		float64(spec.NPts[0]-1)*spec.Spacing,
		float64(spec.NPts[1]-1)*spec.Spacing,
		float64(spec.NPts[2]-1)*spec.Spacing,
	)
	for i := 0; i < 2000; i++ {
		p := spec.Origin().Add(chem.V(
			r.Float64()*span.X, r.Float64()*span.Y, r.Float64()*span.Z))
		a64, err := m64.AffinityAt(chem.TypeC, p)
		if err != nil {
			t.Fatal(err)
		}
		a32, err := m32.AffinityAt(chem.TypeC, p)
		if err != nil {
			t.Fatal(err)
		}
		// Interpolation is a convex combination, so the representation
		// error at off-lattice points is bounded by the largest corner
		// deviation: the two table paths differ by the float32
		// roundings alone.
		if d := math.Abs(a64 - a32); d > 1e-3+2.5e-4*math.Abs(a64) {
			t.Fatalf("affinity diverges at %v: f64 %v vs f32 %v (|Δ|=%v)", p, a64, a32, d)
		}
		if d := math.Abs(m64.ElectrostaticAt(p) - m32.ElectrostaticAt(p)); d > 1e-3+2.5e-4*math.Abs(m64.ElectrostaticAt(p)) {
			t.Fatalf("elec diverges at %v (|Δ|=%v)", p, d)
		}
	}
}
