package vina

import (
	"sync"
	"testing"

	"repro/internal/dock"
)

// batchSizes is the property-test sweep from the issue: empty batch,
// single pose, odd size (exercises the unpaired-tail path), and a
// GA-population-scale batch.
var batchSizes = []int{0, 1, 7, 64}

// TestScoreBatchMatchesScore pins the 0-ULP contract: for random
// ligands and poses, every batched affinity equals the sequential
// Score of the same pose exactly (==, no epsilon).
func TestScoreBatchMatchesScore(t *testing.T) {
	for _, pair := range [][2]string{{"2HHN", "0E6"}, {"1S4V", "042"}} {
		rec, lig := setupPair(t, pair[0], pair[1])
		s, err := NewScorer(rec, lig)
		if err != nil {
			t.Fatal(err)
		}
		ws := dock.NewWorkspace(lig)
		for _, bs := range batchSizes {
			poses := randomPoses(lig, bs, int64(100+bs))
			b := ws.Batch()
			b.Reset()
			for _, p := range poses {
				b.Append(p)
			}
			out := ws.Floats(bs)
			s.ScoreBatch(b, out)
			for k, p := range poses {
				want := s.Score(ws.Coords(p))
				if out[k] != want {
					t.Fatalf("%s/%s batch %d slot %d: ScoreBatch %.17g != Score %.17g",
						pair[0], pair[1], bs, k, out[k], want)
				}
			}
		}
	}
}

// TestScoreBatchZeroAllocs pins the steady-state allocation contract
// of the full batch loop: refill the batch from poses, score it, read
// the results — zero heap allocations once warm.
func TestScoreBatchZeroAllocs(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	ws := dock.NewWorkspace(lig)
	poses := randomPoses(lig, 50, 7)
	b := ws.Batch()
	out := ws.Floats(len(poses))
	run := func() {
		b.Reset()
		for _, p := range poses {
			b.Append(p)
		}
		s.ScoreBatch(b, out)
	}
	run() // warm the buffers to the high-water mark
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("steady-state ScoreBatch loop allocates %.1f/op, want 0", allocs)
	}
}

// TestScoreBatchConcurrent shares one Scorer across concurrent batch
// callers under -race: the scorer must be read-only during ScoreBatch,
// with all mutable state in the per-caller batch and output.
func TestScoreBatchConcurrent(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	refWS := dock.NewWorkspace(lig)
	poses := randomPoses(lig, 16, 3)
	want := make([]float64, len(poses))
	for i, p := range poses {
		want[i] = s.Score(refWS.Coords(p))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := dock.NewWorkspace(lig)
			b := ws.Batch()
			out := ws.Floats(len(poses))
			for iter := 0; iter < 20; iter++ {
				b.Reset()
				for _, p := range poses {
					b.Append(p)
				}
				s.ScoreBatch(b, out)
				for i := range want {
					if out[i] != want[i] {
						t.Errorf("concurrent ScoreBatch diverged at slot %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func benchScoreBatch(b *testing.B, batch int) {
	rec, lig := setupPair(b, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		b.Fatal(err)
	}
	ws := dock.NewWorkspace(lig)
	poses := randomPoses(lig, batch, 3)
	bt := ws.Batch()
	bt.Reset()
	for _, p := range poses {
		bt.Append(p)
	}
	out := ws.Floats(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreBatch(bt, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/pose")
}

func BenchmarkScoreBatch16(b *testing.B)  { benchScoreBatch(b, 16) }
func BenchmarkScoreBatch50(b *testing.B)  { benchScoreBatch(b, 50) }
func BenchmarkScoreBatch150(b *testing.B) { benchScoreBatch(b, 150) }
