// Analysis: the post-docking analyses §V.D sketches — conformational
// cluster analysis of the docking runs (AutoDock's clustering
// histogram), rigid-superposition RMSD (Kabsch) between the top
// poses, and export of the whole provenance graph as a W3C PROV-N
// document.
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/dock/ad4"
	"repro/internal/grid"
	"repro/internal/prep"
)

func main() {
	// Dock the 1S4V-0D6 pair (one of the paper's top-three
	// interactions) with a generous run count so clustering has
	// statistics to work with.
	recRaw, _ := data.GenerateReceptor("1S4V")
	receptor, err := prep.PrepareReceptor(recRaw)
	if err != nil {
		log.Fatal(err)
	}
	ligRaw, _ := data.GenerateLigand("0D6")
	mol2, err := prep.ConvertSDFToMol2(ligRaw)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := prep.PrepareLigand(mol2)
	if err != nil {
		log.Fatal(err)
	}
	lig, err := dock.NewLigand(pl.Mol, pl.Tree)
	if err != nil {
		log.Fatal(err)
	}

	min, max := chem.BoundingBox(receptor.Positions())
	spec := grid.Spec{Center: min.Lerp(max, 0.5), NPts: [3]int{18, 18, 18}, Spacing: 1.4}
	maps, err := grid.Generate(receptor, spec, pl.Mol.AtomTypes())
	if err != nil {
		log.Fatal(err)
	}
	scorer, err := ad4.NewScorer(maps, lig)
	if err != nil {
		log.Fatal(err)
	}
	params := prep.DefaultDPF("0D6.pdbqt", "1S4V.maps.fld", 2014)
	params.Runs = 20
	box := dock.Box{
		Center: spec.Center,
		Size: chem.V(float64(spec.NPts[0]-1)*spec.Spacing,
			float64(spec.NPts[1]-1)*spec.Spacing,
			float64(spec.NPts[2]-1)*spec.Spacing),
	}
	eng := &ad4.Engine{Params: params, Box: box}
	res, err := eng.Dock(scorer, lig)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Conformational clustering. AutoDock defaults to 2.0 Å; the
	// reduced search effort of this reproduction spreads poses more,
	// so 5.0 Å shows the grouping structure better. Energies here are
	// the engine's raw search objective (internal units) — the
	// calibrated kcal/mol conversion happens in the SciDock workflow.
	clusters, err := dock.ClusterRuns(lig, res.Runs, 5.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering histogram (%d runs, 5.0 Å tolerance):\n", len(res.Runs))
	for i, c := range clusters {
		bar := strings.Repeat("#", len(c.Members))
		fmt.Printf("  cluster %2d: best E %8.2f (internal units), %2d members %s\n",
			i+1, c.BestFEB, len(c.Members), bar)
	}
	largest, err := dock.LargestCluster(clusters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended pose: run %d (largest cluster, %d members, E %.2f)\n\n",
		res.Runs[largest.Representative].Run, len(largest.Members), largest.BestFEB)

	// 2. Rigid-superposition (Kabsch) RMSD between the two best
	// clusters' representatives: pose diversity after removing the
	// rigid-body difference.
	if len(clusters) >= 2 {
		a := lig.Coords(res.Runs[clusters[0].Representative].Pose)
		b := lig.Coords(res.Runs[clusters[1].Representative].Pose)
		plain, err := chem.RMSD(a, b)
		if err != nil {
			log.Fatal(err)
		}
		kabsch, err := chem.KabschRMSD(a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-2 representatives: in-frame RMSD %.2f Å, Kabsch (superposed) RMSD %.2f Å\n",
			plain, kabsch)
		fmt.Println("(a small Kabsch RMSD with a large in-frame RMSD means the two poses share")
		fmt.Println(" a conformation but bind at different sites — a §V.D redocking candidate)")
	}

	// 3. PROV-N export of a small campaign's provenance.
	ds := data.Dataset{Receptors: []string{"1S4V", "1HUC"}, Ligands: []string{"0D6"}}
	camp, err := core.Run(core.Config{
		Mode: core.ModeAD4, Dataset: ds, Cores: 4,
		Effort: core.SmokeEffort(), Seed: 1, HgGuard: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nW3C PROV-N export of the campaign provenance (first 16 lines):")
	var sb strings.Builder
	if err := camp.Engine.DB.ExportPROVN(&sb); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	for i, l := range lines {
		if i >= 16 {
			fmt.Printf("  ... (%d more lines)\n", len(lines)-16)
			break
		}
		fmt.Println("  " + l)
	}
}
