package prov

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMain pins planner==reference across the whole package: with
// CrossCheck on, every Query in every test executes through both the
// indexed planner and executeReference and fails on any divergence.
func TestMain(m *testing.M) {
	CrossCheck = true
	os.Exit(m.Run())
}

// --- segmented storage ---

func kvTable(t *testing.T, rows int) *DB {
	t.Helper()
	db := NewDB()
	if err := db.CreateTable("kv", []Column{
		{"id", TInt}, {"grp", TString}, {"val", TFloat},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := db.Insert("kv", []Value{int64(i), fmt.Sprintf("g%d", i%7), float64(i) / 2}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSegmentSealing(t *testing.T) {
	// Cross two seal boundaries so queries and updates exercise sealed
	// segments, the mutable tail, and the transition between them.
	n := 2*segSize + segSize/2
	db := kvTable(t, n)
	if got := db.NumRows("kv"); got != n {
		t.Fatalf("NumRows = %d, want %d", got, n)
	}
	res, err := db.Query("SELECT count(*), min(id), max(id) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != int64(n) || res.Rows[0][1].(int64) != 0 || res.Rows[0][2].(int64) != int64(n-1) {
		t.Fatalf("aggregate over segments = %v", res.Rows[0])
	}
	// Point-read one row per region.
	for _, id := range []int{0, segSize - 1, segSize, 2*segSize - 1, 2 * segSize, n - 1} {
		res, err := db.Query(fmt.Sprintf("SELECT val FROM kv WHERE id = %d", id))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].(float64) != float64(id)/2 {
			t.Fatalf("row %d = %v", id, res.Rows)
		}
	}
}

func TestUpdateCopyOnWriteSealedRow(t *testing.T) {
	db := kvTable(t, segSize+10)
	// Row 5 is in a sealed segment; row segSize+5 is in the tail.
	for _, id := range []int{5, segSize + 5} {
		n, err := db.Update("kv",
			func(row []Value) bool { return row[0] == int64(id) },
			func(row []Value) { row[2] = -1.0 })
		if err != nil || n != 1 {
			t.Fatalf("update id %d: n=%d err=%v", id, n, err)
		}
		res, err := db.Query(fmt.Sprintf("SELECT val FROM kv WHERE id = %d", id))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].(float64) != -1.0 {
			t.Fatalf("update of row %d not visible: %v", id, res.Rows)
		}
	}
}

// --- hash indexes ---

func TestCreateIndexAndUpdateByKey(t *testing.T) {
	db := kvTable(t, 100)
	// Backfilled index created after the inserts.
	if err := db.CreateIndex("kv", "id"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("kv", "id"); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := db.CreateIndex("kv", "nope"); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := db.CreateIndex("nope", "id"); err == nil {
		t.Error("index on missing table accepted")
	}
	n, err := db.UpdateByKey("kv", "id", int64(42), func(row []Value) { row[2] = 99.0 })
	if err != nil || n != 1 {
		t.Fatalf("UpdateByKey: n=%d err=%v", n, err)
	}
	// Non-indexed column falls back to a scan with identical results.
	n, err = db.UpdateByKey("kv", "grp", "g3", func(row []Value) { row[2] = 777.5 })
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 / 7; n != want+1 && n != want {
		t.Fatalf("scan UpdateByKey matched %d rows", n)
	}
	res, err := db.Query("SELECT count(*) FROM kv WHERE val = 777.5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != int64(n) {
		t.Fatalf("updated rows not visible: %v of %d", res.Rows[0][0], n)
	}
}

func TestIndexMaintainedAcrossKeyChange(t *testing.T) {
	db := kvTable(t, 50)
	if err := db.CreateIndex("kv", "grp"); err != nil {
		t.Fatal(err)
	}
	// Move every g1 row to g-moved; the posting lists must follow.
	moved, err := db.UpdateByKey("kv", "grp", "g1", func(row []Value) { row[1] = "g-moved" })
	if err != nil || moved == 0 {
		t.Fatalf("move: n=%d err=%v", moved, err)
	}
	if n, err := db.UpdateByKey("kv", "grp", "g1", func(row []Value) {}); err != nil || n != 0 {
		t.Fatalf("old key still indexed: n=%d err=%v", n, err)
	}
	if n, err := db.UpdateByKey("kv", "grp", "g-moved", func(row []Value) {}); err != nil || n != moved {
		t.Fatalf("new key finds %d rows, want %d", n, moved)
	}
	res, err := db.Query("SELECT count(*) FROM kv WHERE grp = 'g-moved'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != int64(moved) {
		t.Fatalf("query after re-key: %v", res.Rows[0])
	}
}

func TestIndexKeyNormalization(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable("m", []Column{{"f", TFloat}, {"s", TString}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("m", "f"); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 2, 2, 3} {
		if err := db.Insert("m", []Value{v, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("m", []Value{nil, "nilrow"}); err != nil {
		t.Fatal(err)
	}
	// An int literal in SQL must probe float cells (compareValues
	// unifies numerics, so the index key must too).
	res, err := db.Query("SELECT count(*) FROM m WHERE f = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 2 {
		t.Fatalf("numeric unification: %v", res.Rows[0])
	}
}

// --- snapshot vs update aliasing (the zero-copy hazard) ---

func TestConcurrentQueryCloseRace(t *testing.T) {
	db, err := NewProvWfDB()
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	base := time.Date(2014, 3, 1, 8, 0, 0, 0, time.UTC)
	for i := 1; i <= n; i++ {
		if err := db.BeginActivation(int64(i), 1, 1, base, "vm-1", "cmd"); err != nil {
			t.Fatal(err)
		}
	}
	defer closeAll(t, db, 1, n, base) // keep provpair's pairing invariant visible
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 1; i <= n; i++ {
			if err := db.CloseActivation(int64(i), StatusFinished, base.Add(time.Second), 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			res, err := db.Query("SELECT status, count(*), sum(failures) FROM hactivation GROUP BY status")
			if err != nil {
				t.Error(err)
				return
			}
			// Every snapshot must see exactly n rows split between the
			// two states — a torn row would break either invariant.
			var rows, fails int64
			for _, r := range res.Rows {
				rows += r[1].(int64)
				if r[0].(string) == StatusRunning && r[2] != nil {
					fails += int64(r[2].(float64))
				}
			}
			if rows != n {
				t.Errorf("snapshot saw %d rows, want %d", rows, n)
				return
			}
			if fails != 0 {
				t.Errorf("RUNNING rows with nonzero failures: %d", fails)
				return
			}
		}
	}()
	wg.Wait()
}

// closeAll closes any still-open activations (the race test's writer
// already closed them; this is the provpair-visible pairing).
func closeAll(t *testing.T, db *DB, lo, hi int, base time.Time) {
	t.Helper()
	for i := lo; i <= hi; i++ {
		_ = db.CloseActivation(int64(i), StatusFinished, base.Add(time.Second), 1)
	}
}

// --- buffered appender ---

func TestAppenderMatchesDirectWrites(t *testing.T) {
	base := time.Date(2014, 3, 1, 8, 0, 0, 0, time.UTC)
	feed := func(begin func(taskid int64) error, closeA func(taskid int64) error,
		file func(i int64) error, dock func(i int64) error, terminal func(i int64) error) {
		t.Helper()
		for i := int64(1); i <= 150; i++ {
			if err := begin(i); err != nil {
				t.Fatal(err)
			}
			if err := closeA(i); err != nil {
				t.Fatal(err)
			}
			if err := file(i); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if err := dock(i); err != nil {
					t.Fatal(err)
				}
			}
			if i%10 == 0 {
				if err := terminal(i + 1000); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	build := func(limit int) []byte {
		t.Helper()
		db, err := NewProvWfDB()
		if err != nil {
			t.Fatal(err)
		}
		if limit < 0 { // direct writes, no appender
			feed(
				func(i int64) error { return db.BeginActivation(i, 1, 1, base, "vm", "c") },
				func(i int64) error {
					return db.CloseActivation(i, StatusFinished, base.Add(time.Duration(i)*time.Second), i%2)
				},
				func(i int64) error { return db.InsertFile(i, i, 1, 1, "f.dlg", 10, "/d/") },
				func(i int64) error { return db.InsertDocking(i, 1, "R", "L", "ad4", -1.5, 0.2, 10) },
				func(i int64) error {
					return db.InsertActivation(i, 1, 1, StatusAborted, base, base, "-", 0, "c # aborted")
				},
			)
		} else {
			app := NewAppender(db, limit)
			feed(
				func(i int64) error { return app.BeginActivation(i, 1, 1, base, "vm", "c") },
				func(i int64) error {
					return app.CloseActivation(i, StatusFinished, base.Add(time.Duration(i)*time.Second), i%2)
				},
				func(i int64) error { return app.InsertFile(i, i, 1, 1, "f.dlg", 10, "/d/") },
				func(i int64) error { return app.InsertDocking(i, 1, "R", "L", "ad4", -1.5, 0.2, 10) },
				func(i int64) error {
					return app.InsertActivation(i, 1, 1, StatusAborted, base, base, "-", 0, "c # aborted")
				},
			)
			if err := app.Flush(); err != nil {
				t.Fatal(err)
			}
			if app.Pending() != 0 {
				t.Fatalf("pending after flush: %d", app.Pending())
			}
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := build(-1)
	for _, limit := range []int{1, 4, 64, 1 << 20} {
		if got := build(limit); !bytes.Equal(got, want) {
			t.Errorf("appender(limit=%d) tables differ from direct writes", limit)
		}
	}
}

func TestAppenderCloseAfterFlush(t *testing.T) {
	db, err := NewProvWfDB()
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2014, 3, 1, 8, 0, 0, 0, time.UTC)
	app := NewAppender(db, 0)
	if err := app.BeginActivation(7, 1, 1, base, "vm", "c"); err != nil {
		t.Fatal(err)
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
	// The RUNNING row is in the DB now; the close must go through the
	// indexed point update, not the (empty) buffer.
	if err := app.CloseActivation(7, StatusFinished, base.Add(time.Minute), 2); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT status, failures FROM hactivation WHERE taskid = 7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(string) != StatusFinished || res.Rows[0][1].(int64) != 2 {
		t.Fatalf("close after flush: %v", res.Rows[0])
	}
	// Closing an unknown activation still reports the error.
	if err := app.CloseActivation(999, StatusFinished, base, 0); err == nil {
		t.Error("close of missing activation accepted")
	}
}

func TestAppenderAutoFlushAtCap(t *testing.T) {
	db, err := NewProvWfDB()
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2014, 3, 1, 8, 0, 0, 0, time.UTC)
	app := NewAppender(db, 3)
	for i := int64(1); i <= 3; i++ {
		if err := app.InsertFile(i, i, 1, 1, "f", 1, "/"); err != nil {
			t.Fatal(err)
		}
	}
	if app.Pending() != 0 {
		t.Fatalf("cap did not flush: pending %d", app.Pending())
	}
	if got := db.NumRows(TableFile); got != 3 {
		t.Fatalf("flushed rows = %d", got)
	}
	// Validation errors surface at append time, like direct inserts.
	if err := app.InsertActivation(1, 1, 1, StatusFinished, base, base, "vm", 0, "c"); err != nil {
		t.Fatal(err)
	}
	if err := app.add(TableFile, []Value{"wrong-type"}); err == nil {
		t.Error("appender accepted schema-violating row")
	}
	if err := app.add("missing", []Value{int64(1)}); err == nil {
		t.Error("appender accepted missing table")
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := app.CloseActivation(1, StatusFinished, base, 0); err != nil {
		t.Fatal(err)
	}
}

// --- planner==reference property test over randomized rows ---

func TestPlannerMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	groups := []string{"a", "b", "c", "dd", ""}
	for round := 0; round < 4; round++ {
		db := NewDB()
		for _, tn := range []string{"t", "u"} {
			if err := db.CreateTable(tn, []Column{
				{"id", TInt}, {"grp", TString}, {"val", TFloat}, {"ts", TTime},
			}); err != nil {
				t.Fatal(err)
			}
		}
		// Indexes on some tables/columns only, so both the indexed and
		// the fallback paths run.
		if err := db.CreateIndex("t", "id"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("t", "grp"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("u", "id"); err != nil {
			t.Fatal(err)
		}
		base := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
		nrows := 50 + rng.Intn(150)
		for i := 0; i < nrows; i++ {
			for _, tn := range []string{"t", "u"} {
				var grp Value = groups[rng.Intn(len(groups))]
				var val Value = float64(rng.Intn(20)) / 4
				if rng.Intn(10) == 0 {
					grp = nil
				}
				if rng.Intn(10) == 0 {
					val = nil
				}
				// Duplicate ids on purpose: postings with several rows.
				if err := db.Insert(tn, []Value{
					int64(rng.Intn(nrows / 2)), grp, val, base.Add(time.Duration(rng.Intn(3600)) * time.Second),
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		queries := []string{
			"SELECT id, grp, val FROM t WHERE id = %d",
			"SELECT id FROM t WHERE id = %d ORDER BY val DESC LIMIT 3",
			"SELECT grp, count(*), sum(val), avg(val), min(val), max(val) FROM t GROUP BY grp ORDER BY grp",
			"SELECT count(distinct grp) FROM t WHERE id >= %d",
			"SELECT a.id, b.val FROM t a, u b WHERE a.id = b.id AND a.val >= %d ORDER BY a.id, b.val LIMIT 20",
			"SELECT b.grp, count(*) FROM t a, u b WHERE a.id = b.id AND a.grp = '%s' GROUP BY b.grp ORDER BY b.grp",
			"SELECT id, val FROM u WHERE id = %d AND val > 1",
			"SELECT count(*) FROM t WHERE grp IN ('a', 'b') AND id <> %d",
			// grp >= '' filters the nils out before LIKE sees them
			// (conjuncts evaluate in order in both executors).
			"SELECT grp FROM t WHERE grp >= '' AND grp LIKE '%%d%%' AND id >= %d ORDER BY id LIMIT 5",
			"SELECT max(ts), min(ts), count(*) FROM u WHERE id = %d",
			// val >= 0 filters the nils out before the arithmetic in the
			// select list can see them.
			"SELECT id + val, id * 2 FROM t WHERE id = %d AND val >= 0 ORDER BY id + val",
			"SELECT count(*) - count(val) FROM t WHERE id >= %d",
			"SELECT id FROM t WHERE id = %d LIMIT 0",
		}
		for i := 0; i < 60; i++ {
			q := queries[rng.Intn(len(queries))]
			var sql string
			if strings.Contains(q, "'%s'") {
				sql = fmt.Sprintf(q, groups[rng.Intn(len(groups)-1)])
			} else if strings.Contains(q, "%d") {
				sql = fmt.Sprintf(q, rng.Intn(nrows/2+5))
			} else {
				sql = q
			}
			// CrossCheck (on for the whole package) performs the actual
			// planner==reference comparison inside Query.
			if _, err := db.Query(sql); err != nil {
				t.Fatalf("round %d query %q: %v", round, sql, err)
			}
		}
	}
}

// TestCrossCheckDetectsDivergence makes sure the oracle itself works:
// a deliberately broken comparison must be caught, not silently pass.
func TestCrossCheckDetectsDivergence(t *testing.T) {
	db := kvTable(t, 10)
	res, err := db.Query("SELECT count(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	ref := &Result{Columns: res.Columns, Rows: [][]Value{{int64(9)}}}
	if cerr := compareResults(res, nil, ref, nil); cerr == nil {
		t.Error("compareResults missed a row divergence")
	}
	if cerr := compareResults(res, nil, nil, fmt.Errorf("boom")); cerr == nil {
		t.Error("compareResults missed an error-status divergence")
	}
	if cerr := compareResults(nil, fmt.Errorf("a"), nil, fmt.Errorf("b")); cerr != nil {
		t.Errorf("both-error treated as divergence: %v", cerr)
	}
}

// --- likeMatch satellite coverage ---

func TestLikeMatchEdgeCases(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		// %% collapses to %.
		{"abc", "%%", true},
		{"abc", "a%%c", true},
		{"abc", "%%%%", true},
		{"", "%%", true},
		// _ consumes exactly one rune, including multi-byte ones.
		{"héllo", "h_llo", true},
		{"日本", "__", true},
		{"日本", "_本", true},
		{"日本", "___", false},
		{"naïve", "na_ve", true},
		// Patterns ending in %.
		{"abc", "abc%", true},
		{"abc", "ab%", true},
		{"abc", "abcd%", false},
		{"", "a%", false},
		// % then trailing literal.
		{"a.dlg.bak", "%.dlg", false},
		{"x.dlg", "%.dlg%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLikeMatchPathologicalBacktracking(t *testing.T) {
	// The classic exponential-backtracking killer: many % separators
	// over a subject that almost matches. The iterative matcher is
	// O(len(s)·len(pat)); the old recursive one would not return
	// within the lifetime of the test process.
	s := strings.Repeat("a", 3000)
	pat := strings.Repeat("a%", 40) + "b"
	start := time.Now()
	if likeMatch(s, pat) {
		t.Error("pattern should not match")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pathological pattern took %v", elapsed)
	}
	if !likeMatch(s+"b", pat) {
		t.Error("pattern should match with trailing b")
	}
}

// --- allocation guards ---

func TestColumnIndexAllocs(t *testing.T) {
	db, err := NewProvWfDB()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.lookupTable(TableActivation)
	if err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(500, func() {
		if tab.ColumnIndex("taskid") < 0 {
			t.Fatal("taskid missing")
		}
	}); got != 0 {
		t.Errorf("ColumnIndex(lowercase) allocates %v per call, want 0", got)
	}
	// Case-insensitive resolution still works.
	if tab.ColumnIndex("TaskID") != tab.ColumnIndex("taskid") {
		t.Error("case-insensitive lookup broken")
	}
}

func TestQueryAllocsScaleFree(t *testing.T) {
	// The zero-copy snapshot must keep per-query allocations
	// independent of table size: the seed implementation deep-copied
	// every row of every referenced table on every Query.
	old := CrossCheck
	CrossCheck = false
	defer func() { CrossCheck = old }()
	measure := func(rows int) float64 {
		db := kvTable(t, rows)
		if err := db.CreateIndex("kv", "id"); err != nil {
			t.Fatal(err)
		}
		sql := fmt.Sprintf("SELECT val FROM kv WHERE id = %d", rows-1)
		return testing.AllocsPerRun(50, func() {
			if _, err := db.Query(sql); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(512)
	big := measure(64 * 1024)
	if big > 2*small+32 {
		t.Errorf("point-query allocs grew with table size: %v at 512 rows, %v at 64k rows", small, big)
	}
}
