// Kernel microbenchmarks: machine-readable timings of the docking hot
// loops (AutoGrid map generation, Vina and AD4 scoring), each measured
// on its production table-backed path and on the analytic reference
// path it replaced. cmd/dockbench serializes the report to
// BENCH_kernels.json so perf regressions are diffable across commits.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/dock/ad4"
	"repro/internal/dock/vina"
	"repro/internal/grid"
	"repro/internal/prep"
)

// KernelBench is one measured kernel configuration.
type KernelBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Speedup is NsPerOp of the matching analytic baseline divided by
	// this entry's NsPerOp; only set on table-backed entries.
	Speedup float64 `json:"speedup_vs_analytic,omitempty"`
	// Batch-sweep cells only: the ScoreBatch chunk size, the op time
	// normalized per pose (one op scores the whole fixed population),
	// and the per-pose baseline's ns_per_pose divided by this cell's.
	BatchSize        int     `json:"batch_size,omitempty"`
	NsPerPose        float64 `json:"ns_per_pose,omitempty"`
	SpeedupVsPerPose float64 `json:"speedup_vs_per_pose,omitempty"`
	// Precision tags batch-sweep cells with the scoring path they
	// time: "exact" (ScoreBatch, bit-identical to Score) or
	// "tolerance" (ScoreBatchFast, bounded error).
	Precision string `json:"precision,omitempty"`
	// RelStdDev is the relative standard deviation of the per-round
	// wall times of a sweep cell — the noise floor against which its
	// speedup ratios should be read.
	RelStdDev float64 `json:"rel_stddev,omitempty"`
	// MaxAbsDeltaE is the largest |fast − exact| energy over the sweep
	// population, measured outside the timed region; only set on
	// tolerance cells. The population includes hard clashes whose
	// exact energy sits on the r⁻¹² wall (~1e8), so this raw delta is
	// dominated by the relative tolerance term there; read it against
	// MaxBoundExcess, which is the number the screening algebra
	// depends on.
	MaxAbsDeltaE float64 `json:"max_abs_delta_e,omitempty"`
	// MaxBoundExcess is the worst-case |fast − exact| − (FastAbsTol +
	// FastRelTol·|exact|) over the population: ≤ 0 means every pose
	// respected the engine's pinned tolerance envelope, and its
	// magnitude is the narrowest margin observed.
	MaxBoundExcess float64 `json:"max_bound_excess,omitempty"`
}

// KernelReport is the full kernel benchmark result set.
type KernelReport struct {
	Workload   string        `json:"workload"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []KernelBench `json:"benchmarks"`
}

// JSON renders the report for BENCH_kernels.json.
func (r *KernelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable table dockbench prints.
func (r *KernelReport) String() string {
	var sb strings.Builder
	sb.WriteString("KERNEL BENCHMARKS (radial tables vs analytic)\n")
	fmt.Fprintf(&sb, "workload: %s, GOMAXPROCS=%d, NumCPU=%d\n", r.Workload, r.GoMaxProcs, r.NumCPU)
	if r.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Note)
	}
	fmt.Fprintf(&sb, "%-28s %14s %12s %10s %12s %10s %8s %10s %12s\n",
		"kernel", "ns/op", "allocs/op", "speedup", "ns/pose", "vs 1-pose", "±rsd", "max|ΔE|", "bound slack")
	for _, b := range r.Benchmarks {
		sp := ""
		if b.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", b.Speedup)
		}
		np, vp := "", ""
		if b.NsPerPose > 0 {
			np = fmt.Sprintf("%.0f", b.NsPerPose)
		}
		if b.SpeedupVsPerPose > 0 {
			vp = fmt.Sprintf("%.2fx", b.SpeedupVsPerPose)
		}
		rsd, de := "", ""
		if b.RelStdDev > 0 {
			rsd = fmt.Sprintf("%.1f%%", b.RelStdDev*100)
		}
		ex := ""
		if b.Precision == "tolerance" {
			de = fmt.Sprintf("%.2g", b.MaxAbsDeltaE)
			ex = fmt.Sprintf("%.2g", -b.MaxBoundExcess)
		}
		fmt.Fprintf(&sb, "%-28s %14.0f %12.1f %10s %12s %10s %8s %10s %12s\n",
			b.Name, b.NsPerOp, b.AllocsPerOp, sp, np, vp, rsd, de, ex)
	}
	return sb.String()
}

// measure times fn over several batches of iters runs, reporting the
// fastest batch's mean ns/op (the minimum of batch means discards
// scheduler and frequency noise, which only ever slows a batch down)
// and the mean heap allocations per op (mallocs counted via
// runtime.MemStats, the same counter testing's AllocsPerRun reads).
func measure(iters int, fn func()) (nsPerOp, allocsPerOp float64) {
	const batches = 4
	fn() // warm up: build tables, fault in pages
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	best := math.Inf(1)
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); ns < best {
			best = ns
		}
	}
	runtime.ReadMemStats(&after)
	return best, float64(after.Mallocs-before.Mallocs) / float64(batches*iters)
}

// kernelPoseSet builds a deterministic spread of ligand poses for the
// scoring benchmarks (seeded; no global rand, matching the determinism
// rules of the docking packages).
func kernelPoseSet(lig *dock.Ligand, n int, seed int64) []dock.Pose {
	r := rand.New(rand.NewSource(seed))
	poses := make([]dock.Pose, n)
	for i := range poses {
		tors := make([]float64, lig.NumTorsions())
		for t := range tors {
			tors[t] = (r.Float64() - 0.5) * 2 * math.Pi
		}
		poses[i] = dock.Pose{
			Translation: chem.V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5),
			Orientation: chem.RandomQuat(r.Float64(), r.Float64(), r.Float64()),
			Torsions:    tors,
		}
	}
	return poses
}

// kernelScreenWindows builds the batch sweep's pose population shaped
// like the windows the batched kernels actually score: the search
// loops flush MaxBatch-sized runs of Solis-Wets candidates — small
// perturbations of one incumbent (lga.go: rho·0.5 Å translation,
// rho·0.15 rad angles, rho annealed from 1 toward 0.01) — so the
// population is consecutive `window`-pose clusters, each a fresh
// random incumbent followed by candidates at a decaying rho schedule.
// The spatial correlation inside a window is part of the workload the
// scorers' table and lattice caches see in production; a uniform-wild
// population is the cold-start case, not the steady state.
func kernelScreenWindows(lig *dock.Ligand, n, window int, seed int64) []dock.Pose {
	r := rand.New(rand.NewSource(seed))
	wild := kernelPoseSet(lig, (n+window-1)/window, seed+1)
	poses := make([]dock.Pose, 0, n)
	for _, inc := range wild {
		if len(poses) >= n {
			break
		}
		poses = append(poses, inc)
		rho := 1.0
		for k := 1; k < window && len(poses) < n; k++ {
			cand := dock.Pose{Torsions: make([]float64, lig.NumTorsions())}
			dock.PerturbInto(r, &cand, inc, rho*0.5, rho*0.15)
			poses = append(poses, cand)
			rho *= 0.85
		}
	}
	return poses
}

// kernelPoses is kernelPoseSet materialized to coordinates, for the
// per-call scoring rows.
func kernelPoses(lig *dock.Ligand, n int, seed int64) [][]chem.Vec3 {
	poses := kernelPoseSet(lig, n, seed)
	coords := make([][]chem.Vec3, n)
	for i, p := range poses {
		coords[i] = lig.Coords(p)
	}
	return coords
}

// Kernels measures every docking kernel on the standard workload
// (receptor 2HHN vs ligand 0E6) and returns the report. Quick mode
// shrinks the lattice and iteration counts for smoke runs.
func (s *Suite) Kernels() (*KernelReport, error) {
	rec, _ := data.GenerateReceptor("2HHN")
	prec, err := prep.PrepareReceptor(rec)
	if err != nil {
		return nil, err
	}
	raw, _ := data.GenerateLigand("0E6")
	mol2, err := prep.ConvertSDFToMol2(raw)
	if err != nil {
		return nil, err
	}
	pl, err := prep.PrepareLigand(mol2)
	if err != nil {
		return nil, err
	}
	lig, err := dock.NewLigand(pl.Mol, pl.Tree)
	if err != nil {
		return nil, err
	}

	npts, gridIters, scoreIters := 24, 8, 20000
	if s.Quick {
		npts, gridIters, scoreIters = 12, 2, 500
	}
	spec := grid.Spec{Center: chem.Vec3{}, NPts: [3]int{npts, npts, npts}, Spacing: 1.0}
	probeTypes := []chem.AtomType{chem.TypeC, chem.TypeN, chem.TypeOA, chem.TypeHD}

	rep := &KernelReport{
		Workload: fmt.Sprintf("receptor 2HHN (%d atoms), ligand 0E6, %d³ grid @ %.2f Å",
			prec.NumAtoms(), npts, spec.Spacing),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	add := func(name string, baselineNs float64, iters int, fn func() error) (float64, error) {
		var innerErr error
		ns, allocs := measure(iters, func() {
			if err := fn(); err != nil {
				innerErr = err
			}
		})
		if innerErr != nil {
			return 0, fmt.Errorf("experiments: kernel %s: %w", name, innerErr)
		}
		b := KernelBench{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
		if baselineNs > 0 {
			b.Speedup = baselineNs / ns
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		return ns, nil
	}

	// AutoGrid map generation: analytic reference, table-backed serial,
	// table-backed with the full worker pool.
	refNs, err := add("grid_generate_reference", 0, gridIters, func() error {
		_, err := grid.GenerateReference(prec, spec, probeTypes)
		return err
	})
	if err != nil {
		return nil, err
	}
	if _, err := add("grid_generate_tables_1w", refNs, gridIters, func() error {
		_, err := grid.GenerateWorkers(prec, spec, probeTypes, 1)
		return err
	}); err != nil {
		return nil, err
	}
	if _, err := add("grid_generate_tables_allcores", refNs, gridIters, func() error {
		_, err := grid.GenerateWorkers(prec, spec, probeTypes, 0)
		return err
	}); err != nil {
		return nil, err
	}

	// Vina scoring.
	vs, err := vina.NewScorer(prec, lig)
	if err != nil {
		return nil, err
	}
	poses := kernelPoses(lig, 16, 3)
	i := 0
	vinaRefNs, err := add("vina_score_analytic", 0, scoreIters, func() error {
		vs.ScoreAnalytic(poses[i%len(poses)])
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	if _, err := add("vina_score_tables", vinaRefNs, scoreIters, func() error {
		vs.Score(poses[i%len(poses)])
		i++
		return nil
	}); err != nil {
		return nil, err
	}

	// AD4 scoring (grid maps + table-backed intramolecular term).
	maps, err := grid.Generate(prec, spec, pl.Mol.AtomTypes())
	if err != nil {
		return nil, err
	}
	as, err := ad4.NewScorer(maps, lig)
	if err != nil {
		return nil, err
	}
	i = 0
	ad4RefNs, err := add("ad4_score_analytic", 0, scoreIters, func() error {
		as.ScoreAnalytic(poses[i%len(poses)])
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	if _, err := add("ad4_score_tables", ad4RefNs, scoreIters, func() error {
		as.Score(poses[i%len(poses)])
		i++
		return nil
	}); err != nil {
		return nil, err
	}

	// Batched-scoring sweep: one fixed production-shaped population per
	// engine — Solis-Wets screen windows, see kernelScreenWindows —
	// scored per pose (Workspace materialization included, as a
	// search loop pays it), in exact ScoreBatch chunks, and in
	// tolerance ScoreBatchFast chunks. The cells are interleaved
	// round-robin so frequency drift hits every cell alike;
	// ns_per_pose and the batch-vs-per-pose ratio are the signal. The
	// exact cells produce bit-identical energies (pinned by the
	// engines' 0-ULP batch tests); the tolerance cells report the max
	// |fast − exact| over the population (measured outside the timed
	// region) next to their timing, so the speed/accuracy trade is in
	// one row. Each cell also carries the relative stddev of its
	// per-round wall times — the noise floor for reading the ratios.
	nPop, rounds := 600, 60
	if s.Quick {
		nPop, rounds = 120, 4
	}
	batchPoses := kernelScreenWindows(lig, nPop, 50, 7)
	batchSizes := []int{1, 8, 16, 50, 150}
	sweep := func(prefix string, score func([]chem.Vec3) float64,
		scoreBatch, scoreBatchFast func(*dock.Batch, []float64), margin func(float64) float64) {
		ws := dock.NewWorkspace(lig)
		type cell struct {
			name      string
			bs        int
			precision string
			run       func()
		}
		sink := 0.0
		cells := []cell{{prefix + "_score_per_pose", 0, "exact", func() {
			for _, p := range batchPoses {
				sink += score(ws.Coords(p))
			}
		}}}
		batchCell := func(bs int, precision string, kernel func(*dock.Batch, []float64)) cell {
			b := dock.NewBatch(lig, bs)
			out := make([]float64, bs)
			name := fmt.Sprintf("%s_score_batch%d", prefix, bs)
			if precision == "tolerance" {
				name = fmt.Sprintf("%s_score_fast_batch%d", prefix, bs)
			}
			return cell{name, bs, precision, func() {
				for base := 0; base < len(batchPoses); base += bs {
					end := base + bs
					if end > len(batchPoses) {
						end = len(batchPoses)
					}
					b.Reset()
					for i := base; i < end; i++ {
						b.Append(batchPoses[i])
					}
					kernel(b, out[:end-base])
					for k := 0; k < end-base; k++ {
						sink += out[k]
					}
				}
			}}
		}
		for _, bs := range batchSizes {
			cells = append(cells, batchCell(bs, "exact", scoreBatch))
		}
		for _, bs := range batchSizes {
			cells = append(cells, batchCell(bs, "tolerance", scoreBatchFast))
		}
		for _, c := range cells {
			c.run() // warm up: fault in tables, batch buffers, lazy fast state
		}
		tot := make([]time.Duration, len(cells))
		sum2 := make([]float64, len(cells)) // Σ(round ns)² for the stddev
		minNs := make([]float64, len(cells))
		for round := 0; round < rounds; round++ {
			for ci, c := range cells {
				t0 := time.Now()
				c.run()
				d := time.Since(t0)
				tot[ci] += d
				sum2[ci] += float64(d.Nanoseconds()) * float64(d.Nanoseconds())
				if ns := float64(d.Nanoseconds()); minNs[ci] == 0 || ns < minNs[ci] {
					minNs[ci] = ns
				}
			}
		}
		// Accuracy metadata, outside the timed region: the fast path is
		// batch-size-invariant (pinned by the engines' batch-invariance
		// tests), so one full-population pass gives every tolerance
		// cell's max |ΔE|.
		maxDeltaE, maxExcess := 0.0, math.Inf(-1)
		{
			b := dock.NewBatch(lig, len(batchPoses))
			b.Reset()
			for _, p := range batchPoses {
				b.Append(p)
			}
			fast := make([]float64, len(batchPoses))
			scoreBatchFast(b, fast)
			for i, p := range batchPoses {
				exact := score(ws.Coords(p))
				d := math.Abs(fast[i] - exact)
				if d > maxDeltaE {
					maxDeltaE = d
				}
				if ex := d - margin(exact); ex > maxExcess {
					maxExcess = ex
				}
			}
		}
		// Each cell reports its FASTEST round, like measure() above:
		// scheduler preemption and host frequency dips only ever slow a
		// round down, so on a noisy shared core the minimum is the
		// workload's time and the mean is the noise's. The mean still
		// feeds the reported rel_stddev so the observed noise floor is
		// in the report.
		baseNs := minNs[0] / float64(nPop)
		for ci, c := range cells {
			ns := minNs[ci] / float64(nPop)
			mean := float64(tot[ci].Nanoseconds()) / float64(rounds)
			variance := sum2[ci]/float64(rounds) - mean*mean
			kb := KernelBench{
				Name:      c.name,
				NsPerOp:   minNs[ci],
				NsPerPose: ns,
				Precision: c.precision,
			}
			if variance > 0 {
				kb.RelStdDev = math.Sqrt(variance) / mean
			}
			if c.bs > 0 {
				kb.BatchSize = c.bs
				kb.SpeedupVsPerPose = baseNs / ns
			}
			if c.precision == "tolerance" {
				kb.MaxAbsDeltaE = maxDeltaE
				kb.MaxBoundExcess = maxExcess
			}
			rep.Benchmarks = append(rep.Benchmarks, kb)
		}
		_ = sink
	}
	sweep("vina", vs.Score, vs.ScoreBatch, vs.ScoreBatchFast, vina.FastMargin)
	sweep("ad4", as.Score, as.ScoreBatch, as.ScoreBatchFast, ad4.FastMargin)
	rep.Note = "measured on a 1-CPU reference container; absolute ns and run-to-run ratios carry ±20% frequency noise — the interleaved batch-sweep cells share one fixed population, so only their within-report ratios are meaningful; each sweep cell reports its fastest round (noise only slows a round down) with rel_stddev as the observed per-round noise, and the tolerance (score_fast) cells report the max |fast−exact| energy over the population (raw delta, dominated by the relative tolerance term on r⁻¹² clash poses) and the narrowest margin to the pinned FastAbsTol/FastRelTol envelope (bound slack > 0 means no pose violated it)"
	return rep, nil
}

// KernelsText is the ByName-facing wrapper returning the formatted
// table.
func (s *Suite) KernelsText() (string, error) {
	rep, err := s.Kernels()
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}
