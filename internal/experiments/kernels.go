// Kernel microbenchmarks: machine-readable timings of the docking hot
// loops (AutoGrid map generation, Vina and AD4 scoring), each measured
// on its production table-backed path and on the analytic reference
// path it replaced. Two workloads are measured side by side: the
// reference pair (2HHN/0E6), whose exact radial tables fit in L2, and
// the L2-overflow pair (9XLR/XL1) — a 123-atom, 14-type, 35-torsion
// ligand whose exact working set spills the core-private caches, the
// regime the fast float32 banks and the incumbent-anchored window
// gather were built for. cmd/dockbench serializes the report to
// BENCH_kernels.json so perf regressions are diffable across commits.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/dock/ad4"
	"repro/internal/dock/vina"
	"repro/internal/grid"
	"repro/internal/prep"
)

// KernelBench is one measured kernel configuration.
type KernelBench struct {
	Name string `json:"name"`
	// Workload names the receptor/ligand pair the cell ran on
	// ("reference" or "large"); cells of different workloads are not
	// comparable to each other.
	Workload    string  `json:"workload,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Speedup is NsPerOp of the matching analytic baseline divided by
	// this entry's NsPerOp; only set on table-backed entries.
	Speedup float64 `json:"speedup_vs_analytic,omitempty"`
	// Batch-sweep cells only: the ScoreBatch chunk size, the op time
	// normalized per pose (one op scores the whole fixed population),
	// and the per-pose baseline's ns_per_pose divided by this cell's.
	// NsPerPose derives from the cell's fastest round; MedianNsPerPose
	// from the median round, the robust mid-estimate to read next to
	// the min when the rel_stddev is large.
	BatchSize        int     `json:"batch_size,omitempty"`
	NsPerPose        float64 `json:"ns_per_pose,omitempty"`
	MedianNsPerPose  float64 `json:"median_ns_per_pose,omitempty"`
	SpeedupVsPerPose float64 `json:"speedup_vs_per_pose,omitempty"`
	// Window cells only (incumbent-anchored shared gather): ns_per_pose
	// of the matching plain batch cell (same batch size, same
	// precision, same poses) divided by this cell's — the win from
	// gathering once per window instead of once per pose.
	SpeedupVsBatch float64 `json:"speedup_vs_batch,omitempty"`
	// Precision tags batch-sweep cells with the scoring path they
	// time: "exact" (ScoreBatch, bit-identical to Score) or
	// "tolerance" (ScoreBatchFast, bounded error).
	Precision string `json:"precision,omitempty"`
	// RelStdDev is the relative standard deviation of the per-round
	// wall times of a sweep cell — the noise floor against which its
	// speedup ratios should be read.
	RelStdDev float64 `json:"rel_stddev,omitempty"`
	// MaxAbsDeltaE is the largest |fast − exact| energy over the sweep
	// population, measured outside the timed region; only set on
	// tolerance cells. The population includes hard clashes whose
	// exact energy sits on the r⁻¹² wall (~1e8), so this raw delta is
	// dominated by the relative tolerance term there; read it against
	// MaxBoundExcess, which is the number the screening algebra
	// depends on.
	MaxAbsDeltaE float64 `json:"max_abs_delta_e,omitempty"`
	// MaxBoundExcess is the worst-case |fast − exact| − (FastAbsTol +
	// FastRelTol·|exact|) over the population: ≤ 0 means every pose
	// respected the engine's pinned tolerance envelope, and its
	// magnitude is the narrowest margin observed.
	MaxBoundExcess float64 `json:"max_bound_excess,omitempty"`
}

// WorkloadMeta describes one receptor/ligand workload of the kernel
// matrix: the shape numbers that set each cell's arithmetic intensity
// (atom, type and torsion counts) and the estimated resident bytes of
// the scoring tables each path streams per pose — the axis along which
// the exact kernels fall off the L2 cliff while the float32 fast banks
// stay resident.
type WorkloadMeta struct {
	Name          string `json:"name"`
	Receptor      string `json:"receptor"`
	ReceptorAtoms int    `json:"receptor_atoms"`
	Ligand        string `json:"ligand"`
	LigandAtoms   int    `json:"ligand_atoms"`
	AD4TypeCount  int    `json:"ad4_type_count"`
	Torsions      int    `json:"torsions"`
	GridNPts      int    `json:"grid_npts"`
	// Estimated exact/fast scoring working sets in bytes (radial table
	// storage reachable from the scorer's hot loops; see the engines'
	// {Exact,Fast}WorkingSetBytes).
	VinaExactTableBytes int `json:"vina_exact_table_bytes"`
	VinaFastTableBytes  int `json:"vina_fast_table_bytes"`
	AD4ExactTableBytes  int `json:"ad4_exact_table_bytes"`
	AD4FastTableBytes   int `json:"ad4_fast_table_bytes"`
}

// KernelReport is the full kernel benchmark result set.
type KernelReport struct {
	Workload   string         `json:"workload"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Note       string         `json:"note,omitempty"`
	Workloads  []WorkloadMeta `json:"workloads"`
	Benchmarks []KernelBench  `json:"benchmarks"`
}

// JSON renders the report for BENCH_kernels.json.
func (r *KernelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable table dockbench prints.
func (r *KernelReport) String() string {
	var sb strings.Builder
	sb.WriteString("KERNEL BENCHMARKS (radial tables vs analytic)\n")
	fmt.Fprintf(&sb, "workload: %s, GOMAXPROCS=%d, NumCPU=%d\n", r.Workload, r.GoMaxProcs, r.NumCPU)
	if r.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Note)
	}
	for _, w := range r.Workloads {
		fmt.Fprintf(&sb, "workload %-10s %s (%d atoms) vs %s (%d atoms, %d AD4 types, %d torsions): exact tables vina %.1f KiB / ad4 %.1f KiB, fast banks vina %.1f KiB / ad4 %.1f KiB\n",
			w.Name+":", w.Receptor, w.ReceptorAtoms, w.Ligand, w.LigandAtoms, w.AD4TypeCount, w.Torsions,
			float64(w.VinaExactTableBytes)/1024, float64(w.AD4ExactTableBytes)/1024,
			float64(w.VinaFastTableBytes)/1024, float64(w.AD4FastTableBytes)/1024)
	}
	fmt.Fprintf(&sb, "%-34s %-9s %14s %10s %8s %12s %12s %9s %8s %8s %10s %12s\n",
		"kernel", "workload", "ns/op", "allocs/op", "speedup", "ns/pose", "med/pose", "vs 1-pose", "vs batch", "±rsd", "max|ΔE|", "bound slack")
	for _, b := range r.Benchmarks {
		sp := ""
		if b.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", b.Speedup)
		}
		np, md, vp, vb := "", "", "", ""
		if b.NsPerPose > 0 {
			np = fmt.Sprintf("%.0f", b.NsPerPose)
		}
		if b.MedianNsPerPose > 0 {
			md = fmt.Sprintf("%.0f", b.MedianNsPerPose)
		}
		if b.SpeedupVsPerPose > 0 {
			vp = fmt.Sprintf("%.2fx", b.SpeedupVsPerPose)
		}
		if b.SpeedupVsBatch > 0 {
			vb = fmt.Sprintf("%.2fx", b.SpeedupVsBatch)
		}
		rsd, de := "", ""
		if b.RelStdDev > 0 {
			rsd = fmt.Sprintf("%.1f%%", b.RelStdDev*100)
		}
		ex := ""
		if b.Precision == "tolerance" {
			de = fmt.Sprintf("%.2g", b.MaxAbsDeltaE)
			ex = fmt.Sprintf("%.2g", -b.MaxBoundExcess)
		}
		fmt.Fprintf(&sb, "%-34s %-9s %14.0f %10.1f %8s %12s %12s %9s %8s %8s %10s %12s\n",
			b.Name, b.Workload, b.NsPerOp, b.AllocsPerOp, sp, np, md, vp, vb, rsd, de, ex)
	}
	return sb.String()
}

// measure times fn over several batches of iters runs, reporting the
// fastest batch's mean ns/op (the minimum of batch means discards
// scheduler and frequency noise, which only ever slows a batch down)
// and the mean heap allocations per op (mallocs counted via
// runtime.MemStats, the same counter testing's AllocsPerRun reads).
func measure(iters int, fn func()) (nsPerOp, allocsPerOp float64) {
	const batches = 4
	fn() // warm up: build tables, fault in pages
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	best := math.Inf(1)
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); ns < best {
			best = ns
		}
	}
	runtime.ReadMemStats(&after)
	return best, float64(after.Mallocs-before.Mallocs) / float64(batches*iters)
}

// kernelPoseSet builds a deterministic spread of ligand poses for the
// scoring benchmarks (seeded; no global rand, matching the determinism
// rules of the docking packages).
func kernelPoseSet(lig *dock.Ligand, n int, seed int64) []dock.Pose {
	r := rand.New(rand.NewSource(seed))
	poses := make([]dock.Pose, n)
	for i := range poses {
		tors := make([]float64, lig.NumTorsions())
		for t := range tors {
			tors[t] = (r.Float64() - 0.5) * 2 * math.Pi
		}
		poses[i] = dock.Pose{
			Translation: chem.V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5),
			Orientation: chem.RandomQuat(r.Float64(), r.Float64(), r.Float64()),
			Torsions:    tors,
		}
	}
	return poses
}

// kernelScreenWindows builds the batch sweep's pose population shaped
// like the windows the batched kernels actually score: the search
// loops flush MaxBatch-sized runs of Solis-Wets candidates — small
// perturbations of one incumbent (lga.go: rho·0.5 Å translation,
// rho·0.15 rad angles, rho annealed from 1 toward 0.01) — so the
// population is consecutive `window`-pose clusters, each a fresh
// random incumbent followed by candidates at a decaying rho schedule.
// The spatial correlation inside a window is part of the workload the
// scorers' table and lattice caches see in production; a uniform-wild
// population is the cold-start case, not the steady state.
func kernelScreenWindows(lig *dock.Ligand, n, window int, seed int64) []dock.Pose {
	r := rand.New(rand.NewSource(seed))
	wild := kernelPoseSet(lig, (n+window-1)/window, seed+1)
	poses := make([]dock.Pose, 0, n)
	for _, inc := range wild {
		if len(poses) >= n {
			break
		}
		poses = append(poses, inc)
		rho := 1.0
		for k := 1; k < window && len(poses) < n; k++ {
			cand := dock.Pose{Torsions: make([]float64, lig.NumTorsions())}
			dock.PerturbInto(r, &cand, inc, rho*0.5, rho*0.15)
			poses = append(poses, cand)
			rho *= 0.85
		}
	}
	return poses
}

// kernelSteadyWindows builds the window-cell population: consecutive
// `window`-pose clusters, each one random incumbent plus candidates
// perturbed at one FIXED rho — the steady-state shape of the windowed
// Solis-Wets refinement, which spends almost all its iterations at
// small annealed rho (rho halves after every 4 rejections, so the
// rho≈1 opening lasts single-digit iterations out of hundreds). The
// decaying-rho population above mixes the wild opening into every
// cluster and so carries multi-Å displacement bounds; this one pins
// the bound to the regime the incumbent-anchored gather actually
// serves, and its cells carry their own per-pose and plain-batch
// baselines over the same poses so the window ratios are
// like-for-like.
func kernelSteadyWindows(lig *dock.Ligand, n, window int, rho float64, seed int64) []dock.Pose {
	r := rand.New(rand.NewSource(seed))
	wild := kernelPoseSet(lig, (n+window-1)/window, seed+1)
	poses := make([]dock.Pose, 0, n)
	for _, inc := range wild {
		if len(poses) >= n {
			break
		}
		poses = append(poses, inc)
		for k := 1; k < window && len(poses) < n; k++ {
			cand := dock.Pose{Torsions: make([]float64, lig.NumTorsions())}
			dock.PerturbInto(r, &cand, inc, rho*0.5, rho*0.15)
			poses = append(poses, cand)
		}
	}
	return poses
}

// kernelWindowBounds computes, for each `window`-pose cluster of the
// population, the actual max atom displacement of any cluster pose
// from the cluster's incumbent (its first pose) — the displacement
// bound handed to Batch.SetWindowBound by the window cells. Using the
// measured displacement (plus ε for float slack) rather than a
// parametric bound means every pose passes the batch's WindowValid
// audit by construction, so the cells time the shared-gather fast
// path itself; the per-pose fallback is exercised by the engines'
// bound-violation tests, not here.
func kernelWindowBounds(lig *dock.Ligand, poses []dock.Pose, window int) []float64 {
	bounds := make([]float64, 0, (len(poses)+window-1)/window)
	for base := 0; base < len(poses); base += window {
		end := base + window
		if end > len(poses) {
			end = len(poses)
		}
		anchor := lig.Coords(poses[base])
		d2max := 0.0
		for i := base + 1; i < end; i++ {
			c := lig.Coords(poses[i])
			for k := range c {
				if d2 := c[k].Dist2(anchor[k]); d2 > d2max {
					d2max = d2
				}
			}
		}
		bounds = append(bounds, math.Sqrt(d2max)+1e-9)
	}
	return bounds
}

// kernelPoses is kernelPoseSet materialized to coordinates, for the
// per-call scoring rows.
func kernelPoses(lig *dock.Ligand, n int, seed int64) [][]chem.Vec3 {
	poses := kernelPoseSet(lig, n, seed)
	coords := make([][]chem.Vec3, n)
	for i, p := range poses {
		coords[i] = lig.Coords(p)
	}
	return coords
}

// kernelWorkload is one prepared receptor/ligand pair of the kernel
// matrix with both engines' scorers built over it.
type kernelWorkload struct {
	name   string
	prec   *chem.Molecule
	lig    *dock.Ligand
	vs     *vina.Scorer
	as     *ad4.Scorer
	meta   WorkloadMeta
	nPop   int
	rounds int
}

// newKernelWorkload runs the production preparation pipeline on a
// generated pair and builds the Vina scorer, the AD4 grid maps and the
// AD4 scorer, recording the workload's shape metadata.
func newKernelWorkload(name string, rec, rawLig *chem.Molecule, recCode, ligCode string,
	npts int, nPop, rounds int) (*kernelWorkload, error) {
	prec, err := prep.PrepareReceptor(rec)
	if err != nil {
		return nil, err
	}
	mol2, err := prep.ConvertSDFToMol2(rawLig)
	if err != nil {
		return nil, err
	}
	pl, err := prep.PrepareLigand(mol2)
	if err != nil {
		return nil, err
	}
	lig, err := dock.NewLigand(pl.Mol, pl.Tree)
	if err != nil {
		return nil, err
	}
	vs, err := vina.NewScorer(prec, lig)
	if err != nil {
		return nil, err
	}
	spec := grid.Spec{Center: chem.Vec3{}, NPts: [3]int{npts, npts, npts}, Spacing: 1.0}
	maps, err := grid.Generate(prec, spec, pl.Mol.AtomTypes())
	if err != nil {
		return nil, err
	}
	as, err := ad4.NewScorer(maps, lig)
	if err != nil {
		return nil, err
	}
	return &kernelWorkload{
		name: name, prec: prec, lig: lig, vs: vs, as: as,
		nPop: nPop, rounds: rounds,
		meta: WorkloadMeta{
			Name:                name,
			Receptor:            recCode,
			ReceptorAtoms:       prec.NumAtoms(),
			Ligand:              ligCode,
			LigandAtoms:         pl.Mol.NumAtoms(),
			AD4TypeCount:        len(pl.Mol.AtomTypes()),
			Torsions:            pl.Tree.NumTorsions(),
			GridNPts:            npts,
			VinaExactTableBytes: vs.ExactWorkingSetBytes(),
			VinaFastTableBytes:  vs.FastWorkingSetBytes(),
			AD4ExactTableBytes:  as.ExactWorkingSetBytes(),
			AD4FastTableBytes:   as.FastWorkingSetBytes(),
		},
	}, nil
}

// Kernels measures every docking kernel on the reference workload
// (receptor 2HHN vs ligand 0E6) and the batched-scoring sweep
// additionally on the L2-overflow workload (receptor 9XLR vs ligand
// XL1). Quick mode shrinks the lattices and iteration counts for
// smoke runs.
func (s *Suite) Kernels() (*KernelReport, error) {
	npts, gridIters, scoreIters := 24, 8, 20000
	nPop, rounds := 600, 60
	largeNpts, largeNPop, largeRounds := 44, 300, 24
	if s.Quick {
		npts, gridIters, scoreIters = 12, 2, 500
		nPop, rounds = 120, 4
		largeNpts, largeNPop, largeRounds = 16, 100, 3
	}

	recMol, _ := data.GenerateReceptor("2HHN")
	rawLig, _ := data.GenerateLigand("0E6")
	ref, err := newKernelWorkload("reference", recMol, rawLig, "2HHN", "0E6", npts, nPop, rounds)
	if err != nil {
		return nil, err
	}
	largeRec, _ := data.GenerateLargeReceptor()
	largeLig, _ := data.GenerateLargeLigand()
	large, err := newKernelWorkload("large", largeRec, largeLig,
		data.LargeReceptorCode, data.LargeLigandCode, largeNpts, largeNPop, largeRounds)
	if err != nil {
		return nil, err
	}

	spec := grid.Spec{Center: chem.Vec3{}, NPts: [3]int{npts, npts, npts}, Spacing: 1.0}
	probeTypes := []chem.AtomType{chem.TypeC, chem.TypeN, chem.TypeOA, chem.TypeHD}

	rep := &KernelReport{
		Workload: fmt.Sprintf("reference 2HHN/0E6 (%d³ grid) + large %s/%s (%d³ grid) @ %.2f Å",
			npts, data.LargeReceptorCode, data.LargeLigandCode, largeNpts, spec.Spacing),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workloads:  []WorkloadMeta{ref.meta, large.meta},
	}
	add := func(name string, baselineNs float64, iters int, fn func() error) (float64, error) {
		var innerErr error
		ns, allocs := measure(iters, func() {
			if err := fn(); err != nil {
				innerErr = err
			}
		})
		if innerErr != nil {
			return 0, fmt.Errorf("experiments: kernel %s: %w", name, innerErr)
		}
		b := KernelBench{Name: name, Workload: "reference", NsPerOp: ns, AllocsPerOp: allocs}
		if baselineNs > 0 {
			b.Speedup = baselineNs / ns
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		return ns, nil
	}

	// AutoGrid map generation: analytic reference, table-backed serial,
	// table-backed with the full worker pool. Reference workload only —
	// map generation cost scales with lattice volume, not ligand
	// complexity, so one workload pins it.
	refNs, err := add("grid_generate_reference", 0, gridIters, func() error {
		_, err := grid.GenerateReference(ref.prec, spec, probeTypes)
		return err
	})
	if err != nil {
		return nil, err
	}
	if _, err := add("grid_generate_tables_1w", refNs, gridIters, func() error {
		_, err := grid.GenerateWorkers(ref.prec, spec, probeTypes, 1)
		return err
	}); err != nil {
		return nil, err
	}
	if _, err := add("grid_generate_tables_allcores", refNs, gridIters, func() error {
		_, err := grid.GenerateWorkers(ref.prec, spec, probeTypes, 0)
		return err
	}); err != nil {
		return nil, err
	}

	// Single-pose scoring, analytic vs table-backed (reference workload).
	poses := kernelPoses(ref.lig, 16, 3)
	i := 0
	vinaRefNs, err := add("vina_score_analytic", 0, scoreIters, func() error {
		ref.vs.ScoreAnalytic(poses[i%len(poses)])
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	if _, err := add("vina_score_tables", vinaRefNs, scoreIters, func() error {
		ref.vs.Score(poses[i%len(poses)])
		i++
		return nil
	}); err != nil {
		return nil, err
	}
	i = 0
	ad4RefNs, err := add("ad4_score_analytic", 0, scoreIters, func() error {
		ref.as.ScoreAnalytic(poses[i%len(poses)])
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	if _, err := add("ad4_score_tables", ad4RefNs, scoreIters, func() error {
		ref.as.Score(poses[i%len(poses)])
		i++
		return nil
	}); err != nil {
		return nil, err
	}

	// Batched-scoring sweep: one fixed production-shaped population per
	// engine per workload — Solis-Wets screen windows, see
	// kernelScreenWindows — scored per pose (Workspace materialization
	// included, as a search loop pays it), in exact ScoreBatch chunks,
	// in tolerance ScoreBatchFast chunks, and (at the window-aligned
	// batch size) through the incumbent-anchored shared gather. The
	// cells are interleaved round-robin so frequency drift hits every
	// cell alike; ns_per_pose and the batch-vs-per-pose ratio are the
	// signal. The exact cells produce bit-identical energies (pinned by
	// the engines' 0-ULP batch tests, which also cover the window
	// cells); the tolerance cells report the max |fast − exact| over
	// the population (measured outside the timed region) next to their
	// timing, so the speed/accuracy trade is in one row. Each cell also
	// carries the relative stddev and median of its per-round wall
	// times — the noise floor for reading the ratios.
	const windowSize = 50
	// steadyRho is the fixed perturbation scale of the window-cell
	// population: deep enough into the Solis-Wets anneal that cluster
	// displacement bounds sit at ~1 Å (reference) to ~2 Å (large), the
	// regime the shared gather's inflated cutoff stays profitable in.
	const steadyRho = 0.15
	sweep := func(wl *kernelWorkload, prefix string, score func([]chem.Vec3) float64,
		scoreBatch, scoreBatchFast func(*dock.Batch, []float64), margin func(float64) float64) {
		lig := wl.lig
		batchPoses := kernelScreenWindows(lig, wl.nPop, windowSize, 7)
		winPoses := kernelSteadyWindows(lig, wl.nPop, windowSize, steadyRho, 13)
		winBounds := kernelWindowBounds(lig, winPoses, windowSize)
		batchSizes := []int{1, 8, 16, windowSize, 150}
		ws := dock.NewWorkspace(lig)
		type cell struct {
			name      string
			bs        int
			precision string
			window    bool
			baseline  int // index of this cell's per-pose baseline cell
			vsBatch   int // window cells: index of the matching plain cell; else -1
			run       func()
		}
		sink := 0.0
		perPoseCell := func(name string, poses []dock.Pose) cell {
			return cell{name, 0, "exact", false, 0, -1, func() {
				for _, p := range poses {
					sink += score(ws.Coords(p))
				}
			}}
		}
		batchCell := func(name string, poses []dock.Pose, bs int, precision string,
			kernel func(*dock.Batch, []float64)) cell {
			b := dock.NewBatch(lig, bs)
			out := make([]float64, bs)
			return cell{name, bs, precision, false, 0, -1, func() {
				for base := 0; base < len(poses); base += bs {
					end := base + bs
					if end > len(poses) {
						end = len(poses)
					}
					b.Reset()
					for i := base; i < end; i++ {
						b.Append(poses[i])
					}
					kernel(b, out[:end-base])
					for k := 0; k < end-base; k++ {
						sink += out[k]
					}
				}
			}}
		}
		// Window cells: same poses and flush size as the _winpop plain
		// batch cells, but each cluster is scored through one
		// incumbent-anchored gather (anchor = the cluster's first pose,
		// bound = the cluster's measured max displacement), the shape
		// the windowed Solis-Wets and batched-probe search loops feed.
		windowCell := func(name string, precision string, kernel func(*dock.Batch, []float64)) cell {
			b := dock.NewBatch(lig, windowSize)
			out := make([]float64, windowSize)
			return cell{name, windowSize, precision, true, 0, -1, func() {
				for base := 0; base < len(winPoses); base += windowSize {
					end := base + windowSize
					if end > len(winPoses) {
						end = len(winPoses)
					}
					b.SetWindow(winPoses[base])
					b.SetWindowBound(winBounds[base/windowSize])
					b.Reset()
					for i := base; i < end; i++ {
						b.Append(winPoses[i])
					}
					kernel(b, out[:end-base])
					for k := 0; k < end-base; k++ {
						sink += out[k]
					}
				}
				b.ClearWindow()
			}}
		}
		cells := []cell{perPoseCell(prefix+"_score_per_pose", batchPoses)}
		for _, bs := range batchSizes {
			cells = append(cells, batchCell(fmt.Sprintf("%s_score_batch%d", prefix, bs),
				batchPoses, bs, "exact", scoreBatch))
		}
		for _, bs := range batchSizes {
			cells = append(cells, batchCell(fmt.Sprintf("%s_score_fast_batch%d", prefix, bs),
				batchPoses, bs, "tolerance", scoreBatchFast))
		}
		winBase := len(cells)
		cells = append(cells, perPoseCell(prefix+"_score_per_pose_winpop", winPoses))
		cells = append(cells,
			batchCell(fmt.Sprintf("%s_score_batch%d_winpop", prefix, windowSize),
				winPoses, windowSize, "exact", scoreBatch),
			batchCell(fmt.Sprintf("%s_score_fast_batch%d_winpop", prefix, windowSize),
				winPoses, windowSize, "tolerance", scoreBatchFast))
		cells = append(cells,
			windowCell(fmt.Sprintf("%s_score_batch%d_window", prefix, windowSize), "exact", scoreBatch),
			windowCell(fmt.Sprintf("%s_score_fast_batch%d_window", prefix, windowSize), "tolerance", scoreBatchFast))
		for ci := winBase; ci < len(cells); ci++ {
			cells[ci].baseline = winBase
		}
		cells[winBase+3].vsBatch = winBase + 1
		cells[winBase+4].vsBatch = winBase + 2
		for _, c := range cells {
			c.run() // warm up: fault in tables, batch buffers, lazy fast state
		}
		tot := make([]time.Duration, len(cells))
		sum2 := make([]float64, len(cells)) // Σ(round ns)² for the stddev
		minNs := make([]float64, len(cells))
		roundNs := make([][]float64, len(cells))
		for round := 0; round < wl.rounds; round++ {
			for ci, c := range cells {
				t0 := time.Now()
				c.run()
				d := time.Since(t0)
				tot[ci] += d
				sum2[ci] += float64(d.Nanoseconds()) * float64(d.Nanoseconds())
				ns := float64(d.Nanoseconds())
				roundNs[ci] = append(roundNs[ci], ns)
				if minNs[ci] == 0 || ns < minNs[ci] {
					minNs[ci] = ns
				}
			}
		}
		// Accuracy metadata, outside the timed region: the fast path is
		// batch-size-invariant (pinned by the engines' batch-invariance
		// tests), so one full-population pass gives every tolerance
		// cell's max |ΔE|.
		maxDeltaE, maxExcess := 0.0, math.Inf(-1)
		for _, pop := range [][]dock.Pose{batchPoses, winPoses} {
			b := dock.NewBatch(lig, len(pop))
			b.Reset()
			for _, p := range pop {
				b.Append(p)
			}
			fast := make([]float64, len(pop))
			scoreBatchFast(b, fast)
			for i, p := range pop {
				exact := score(ws.Coords(p))
				d := math.Abs(fast[i] - exact)
				if d > maxDeltaE {
					maxDeltaE = d
				}
				if ex := d - margin(exact); ex > maxExcess {
					maxExcess = ex
				}
			}
		}
		// Each cell reports its FASTEST round, like measure() above:
		// scheduler preemption and host frequency dips only ever slow a
		// round down, so on a noisy shared core the minimum is the
		// workload's time and the mean is the noise's. The median round
		// and the mean-based rel_stddev ride along so the observed
		// noise is in the report.
		median := func(xs []float64) float64 {
			ys := append([]float64(nil), xs...)
			sort.Float64s(ys)
			n := len(ys)
			if n == 0 {
				return 0
			}
			if n%2 == 1 {
				return ys[n/2]
			}
			return (ys[n/2-1] + ys[n/2]) / 2
		}
		for ci, c := range cells {
			ns := minNs[ci] / float64(wl.nPop)
			mean := float64(tot[ci].Nanoseconds()) / float64(wl.rounds)
			variance := sum2[ci]/float64(wl.rounds) - mean*mean
			kb := KernelBench{
				Name:            c.name,
				Workload:        wl.name,
				NsPerOp:         minNs[ci],
				NsPerPose:       ns,
				MedianNsPerPose: median(roundNs[ci]) / float64(wl.nPop),
				Precision:       c.precision,
			}
			if variance > 0 {
				kb.RelStdDev = math.Sqrt(variance) / mean
			}
			if c.bs > 0 {
				kb.BatchSize = c.bs
				kb.SpeedupVsPerPose = minNs[c.baseline] / minNs[ci]
			}
			if c.vsBatch >= 0 {
				kb.SpeedupVsBatch = minNs[c.vsBatch] / minNs[ci]
			}
			if c.precision == "tolerance" {
				kb.MaxAbsDeltaE = maxDeltaE
				kb.MaxBoundExcess = maxExcess
			}
			rep.Benchmarks = append(rep.Benchmarks, kb)
		}
		_ = sink
	}
	for _, wl := range []*kernelWorkload{ref, large} {
		prefix := ""
		if wl.name != "reference" {
			prefix = wl.name + "_"
		}
		sweep(wl, prefix+"vina", wl.vs.Score, wl.vs.ScoreBatch, wl.vs.ScoreBatchFast, vina.FastMargin)
		sweep(wl, prefix+"ad4", wl.as.Score, wl.as.ScoreBatch, wl.as.ScoreBatchFast, ad4.FastMargin)
	}
	rep.Note = "measured on a 1-CPU reference container; absolute ns and run-to-run ratios carry ±20% frequency noise — the interleaved batch-sweep cells share one fixed population per workload, so only their within-report ratios are meaningful; each sweep cell reports its fastest round (noise only slows a round down) with median_ns_per_pose and rel_stddev as the observed per-round noise; the tolerance (score_fast) cells report the max |fast−exact| energy over the population (raw delta, dominated by the relative tolerance term on r⁻¹² clash poses) and the narrowest margin to the pinned FastAbsTol/FastRelTol envelope (bound slack > 0 means no pose violated it); the *_winpop and *_window cells share a second population of fixed-rho steady-state Solis-Wets windows (see kernelSteadyWindows) with their own per-pose baseline, the *_window cells scoring each 50-pose cluster through one incumbent-anchored gather (speedup_vs_batch is that win over the plain batch cell on the same poses); workload 'large' is the L2-overflow pair — its exact radial-table working set exceeds typical per-core L2, the regime the float32 fast banks and the window gather target"
	return rep, nil
}

// KernelsText is the ByName-facing wrapper returning the formatted
// table.
func (s *Suite) KernelsText() (string, error) {
	rep, err := s.Kernels()
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}
