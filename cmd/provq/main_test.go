package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOneQuery(t *testing.T) {
	if err := run(2, 1, 4, "SELECT count(*) FROM hactivation", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestSaveThenLoad(t *testing.T) {
	dir := t.TempDir()
	archive := filepath.Join(dir, "campaign.provdb")
	if err := run(2, 1, 4, "SELECT count(*) FROM hworkflow", archive, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(archive); err != nil {
		t.Fatalf("archive not written: %v", err)
	}
	// Query the archive without re-running the campaign.
	if err := run(0, 0, 0, "SELECT count(*) FROM ddocking", "", archive); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 1, 4, "SELECT 1 FROM hworkflow", "", ""); err == nil {
		t.Error("zero receptors accepted")
	}
	if err := run(2, 1, 4, "", "", "/nonexistent/archive"); err == nil {
		t.Error("missing archive accepted")
	}
	if err := run(2, 1, 4, "BROKEN SQL", "", ""); err == nil {
		t.Error("broken SQL accepted")
	}
}
