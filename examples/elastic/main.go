// Elastic: demonstrates SciCumulus' adaptive cloud execution (§IV.B):
// the engine resizes the virtual EC2 fleet per stage — small fleets
// for the light preparation activities, a large fleet for the
// compute-intensive docking stage — and compares TET and bill against
// a static fleet.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/sched"
	"repro/internal/stats"
)

func main() {
	ds := data.Dataset{
		Receptors: data.ReceptorCodes[:40],
		Ligands:   data.LigandCodes[:6],
	}
	fmt.Printf("workload: %d pairs\n\n", ds.NumPairs())

	base := core.Config{
		Mode: core.ModeAD4, Dataset: ds, Cores: 8,
		Effort: core.SmokeEffort(), Seed: 21, HgGuard: true,
	}

	// Static fleet: 8 cores for the whole run.
	static, err := core.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive fleet: between 4 and 64 cores, sized per stage load.
	policy := sched.NewAdaptivePolicy()
	policy.MinCores = 4
	policy.MaxCores = 64
	policy.TargetStageSeconds = 1800
	adaptiveCfg := base
	adaptiveCfg.Adaptive = policy
	adaptive, err := core.Run(adaptiveCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %14s %12s %8s\n", "fleet", "TET", "bill (USD)", "VMs")
	fmt.Printf("%-10s %14s %12.2f %8d\n", "static",
		stats.FormatDuration(static.TET()), static.Engine.Cluster.Cost(),
		len(static.Engine.Cluster.VMs()))
	fmt.Printf("%-10s %14s %12.2f %8d\n", "adaptive",
		stats.FormatDuration(adaptive.TET()), adaptive.Engine.Cluster.Cost(),
		len(adaptive.Engine.Cluster.VMs()))

	fmt.Println("\nadaptive per-stage profile (fleet sized to each activity's load):")
	for _, a := range adaptive.Reports[0].PerActivity {
		fmt.Printf("  %-14s activations=%-5d stage=%s\n",
			a.Tag, a.Activations, stats.FormatDuration(a.StageSecs))
	}

	if adaptive.TET() < static.TET() {
		fmt.Println("\nadaptive execution finished earlier by scaling up for the docking stage.")
	} else {
		fmt.Println("\nstatic fleet won here; adaptive pays boot latency on every scale-up.")
	}
}
