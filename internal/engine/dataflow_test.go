package engine

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/workflow"
)

// runRuntime executes one workflow on a fresh engine under the given
// runtime and returns engine + report.
func runRuntime(t *testing.T, rt Runtime, opts Options, w *workflow.Workflow, n int) (*Engine, *Report) {
	t.Helper()
	opts.Runtime = rt
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(w, inputRelation(n))
	if err != nil {
		t.Fatal(err)
	}
	return e, rep
}

// countsOf strips an ActivityStats list down to the runtime-invariant
// fields (timing legitimately differs between runtimes).
func countsOf(per []ActivityStats) []ActivityStats {
	out := make([]ActivityStats, len(per))
	for i, s := range per {
		out[i] = ActivityStats{Tag: s.Tag, Activations: s.Activations,
			Failures: s.Failures, Aborted: s.Aborted}
	}
	return out
}

func sortedTuples(ts []workflow.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	sort.Strings(out)
	return out
}

// provRows returns the hactivation rows as a sorted multiset of their
// order-independent fields (taskids differ between runtimes: the
// barrier numbers per stage, the dataflow per placement).
func provRows(t *testing.T, e *Engine) []string {
	t.Helper()
	res, err := e.DB.Query("SELECT t.actid, t.status, t.failures, t.command FROM hactivation t")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprint(r)
	}
	sort.Strings(rows)
	return rows
}

// dockingRows returns the ddocking rows modulo taskid, sorted.
func dockingRows(t *testing.T, e *Engine) []string {
	t.Helper()
	res, err := e.DB.Query("SELECT d.receptor, d.ligand, d.program, d.feb, d.rmsd, d.nruns FROM ddocking d")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprint(r)
	}
	sort.Strings(rows)
	return rows
}

func assertGoldenMatch(t *testing.T, be, de *Engine, br, dr *Report) {
	t.Helper()
	if got, want := countsOf(dr.PerActivity), countsOf(br.PerActivity); !reflect.DeepEqual(got, want) {
		t.Errorf("per-activity counts diverge:\n dataflow %+v\n barrier  %+v", got, want)
	}
	if got, want := sortedTuples(dr.Outputs), sortedTuples(br.Outputs); !reflect.DeepEqual(got, want) {
		t.Errorf("final relations diverge:\n dataflow %v\n barrier  %v", got, want)
	}
	if got, want := provRows(t, de), provRows(t, be); !reflect.DeepEqual(got, want) {
		t.Errorf("hactivation rows diverge (%d vs %d)", len(got), len(want))
	}
	if got, want := dockingRows(t, de), dockingRows(t, be); !reflect.DeepEqual(got, want) {
		t.Errorf("ddocking rows diverge:\n dataflow %v\n barrier  %v", got, want)
	}
}

// TestDataflowMatchesBarrierGolden pins the equivalence contract: for
// a fixed seed the pipelined runtime produces the same final output
// relation, per-activity activation/failure/abort counts and
// provenance rows as the stage-barrier engine — with failure
// injection off and on (injected attempts are deterministic per
// activation key, so recovered-failure counts are schedule-invariant).
func TestDataflowMatchesBarrierGolden(t *testing.T) {
	for _, failures := range []bool{false, true} {
		opts := Options{Cores: 8, DisableFailures: !failures, Parallelism: 4}
		be, br := runRuntime(t, RuntimeBarrier, opts, toyWorkflow(), 20)
		de, dr := runRuntime(t, RuntimeDataflow, opts, toyWorkflow(), 20)
		assertGoldenMatch(t, be, de, br, dr)
		if failures && dr.Failures == 0 {
			t.Error("failure injection produced no recovered failures")
		}
	}
}

// faultyWorkflow exercises every failure path: steering aborts (rule
// on IDs ending in 4), looping activations (IDs ending in 1), genuine
// errors (ending in 2), fan-out contract violations (a Map emitting
// two tuples, ending in 3), plus docking extract rows downstream.
func faultyWorkflow() *workflow.Workflow {
	return &workflow.Workflow{
		Tag: "Faulty", Description: "failure paths", ExecTag: "faulty", ExpDir: "/exp/",
		Activities: []*workflow.Activity{
			{
				Tag: "src", Op: workflow.Map, Template: "./src %ID%",
				Run: func(in workflow.Tuple) (*workflow.ActivationResult, error) {
					switch {
					case strings.HasSuffix(in["ID"], "1"):
						return nil, ErrLoop
					case strings.HasSuffix(in["ID"], "2"):
						return nil, errors.New("segfault in src")
					case strings.HasSuffix(in["ID"], "3"):
						return &workflow.ActivationResult{
							Outputs: []workflow.Tuple{in, in}, // Map contract violation
						}, nil
					}
					return &workflow.ActivationResult{
						Outputs: []workflow.Tuple{in},
						Files: []workflow.OutputFile{{
							Name: in["ID"] + ".out", Dir: "/exp/src/",
							Content: []byte("out " + in["ID"]),
						}},
					}, nil
				},
			},
			{
				Tag: "dock", Op: workflow.Map, Template: "./dock %ID%", Depends: []string{"src"},
				Run: func(in workflow.Tuple) (*workflow.ActivationResult, error) {
					return &workflow.ActivationResult{
						Outputs: []workflow.Tuple{in},
						Extract: map[string]string{
							"receptor": "R_" + in["ID"], "ligand": "L_" + in["ID"],
							"program": "toy", "feb": "-6.25", "rmsd": "1.5", "nruns": "10",
						},
					}, nil
				},
			},
		},
	}
}

// TestDataflowFailurePathsGolden pins ErrLoop, steering aborts,
// genuine errors and CheckFanOut violations to the same provenance
// rows and stats as the barrier engine.
func TestDataflowFailurePathsGolden(t *testing.T) {
	abortTrailing4 := func(tag string, tu workflow.Tuple) (string, bool) {
		if tag == "src" && strings.HasSuffix(tu["ID"], "4") {
			return "blocklisted molecule", true
		}
		return "", false
	}
	opts := Options{Cores: 4, DisableFailures: true, Parallelism: 4,
		AbortRules: []AbortRule{abortTrailing4}}
	be, br := runRuntime(t, RuntimeBarrier, opts, faultyWorkflow(), 30)
	de, dr := runRuntime(t, RuntimeDataflow, opts, faultyWorkflow(), 30)
	assertGoldenMatch(t, be, de, br, dr)

	// The workload is built to hit every path; make sure it did, per
	// status, identically in both runtimes.
	for _, e := range []*Engine{be, de} {
		res, err := e.DB.Query("SELECT t.status, count(*) FROM hactivation t GROUP BY t.status ORDER BY t.status")
		if err != nil {
			t.Fatal(err)
		}
		// 30 inputs: 3×ErrLoop(ABORTED) + 3×abort-rule(ABORTED),
		// 3×FAILED, the rest FINISHED (incl. 3 fan-out violations
		// which do finish but drop their tuples).
		want := "[[ABORTED 6] [FAILED 3] [FINISHED 39]]"
		if got := fmt.Sprint(res.Rows); got != want {
			t.Errorf("status histogram = %s, want %s", got, want)
		}
	}
	if dr.Aborted != br.Aborted || dr.Aborted != 12 {
		// 3 loops + 3 rule aborts + 3 errors + 3 fan-out drops.
		t.Errorf("aborted: dataflow %d, barrier %d, want 12", dr.Aborted, br.Aborted)
	}
}

// reduceWorkflow groups tuples by a 3-way key and emits one summary
// tuple per group.
func reduceWorkflow() *workflow.Workflow {
	return &workflow.Workflow{
		Tag: "Red", Description: "reduce", ExecTag: "red", ExpDir: "/exp/",
		Activities: []*workflow.Activity{
			{
				Tag: "tagger", Op: workflow.Map, Template: "./tag %ID%",
				Run: func(in workflow.Tuple) (*workflow.ActivationResult, error) {
					g := fmt.Sprintf("g%d", len(in["ID"])%3)
					return &workflow.ActivationResult{
						Outputs: []workflow.Tuple{in.Merge(workflow.Tuple{"GROUP": g})},
					}, nil
				},
			},
			{
				Tag: "summarize", Op: workflow.Reduce, Template: "./sum %GROUP%",
				Depends: []string{"tagger"}, GroupKey: "GROUP",
				RunReduce: func(group []workflow.Tuple) (*workflow.ActivationResult, error) {
					return &workflow.ActivationResult{
						Outputs: []workflow.Tuple{{
							"GROUP": group[0]["GROUP"],
							"N":     fmt.Sprintf("%d", len(group)),
						}},
					}, nil
				},
			},
		},
	}
}

// TestDataflowReduceMatchesBarrier checks the per-group barrier: the
// Reduce activity sees exactly the groups the barrier engine built.
func TestDataflowReduceMatchesBarrier(t *testing.T) {
	opts := Options{Cores: 4, DisableFailures: true, Parallelism: 4}
	be, br := runRuntime(t, RuntimeBarrier, opts, reduceWorkflow(), 12)
	de, dr := runRuntime(t, RuntimeDataflow, opts, reduceWorkflow(), 12)
	assertGoldenMatch(t, be, de, br, dr)
	if len(dr.Outputs) == 0 || len(dr.Outputs) != len(br.Outputs) {
		t.Errorf("reduce groups: dataflow %d, barrier %d", len(dr.Outputs), len(br.Outputs))
	}
}

// TestDataflowDeterministic runs the pipelined runtime twice with
// failure injection on (~10% per attempt) and a wide worker pool:
// virtual time, stats and provenance must be bit-identical even
// though wall-clock body completion order is not. Under check.sh this
// runs with -race, covering dispatcher/pool synchronization.
func TestDataflowDeterministic(t *testing.T) {
	run := func() (*Engine, *Report) {
		return runRuntime(t, RuntimeDataflow,
			Options{Cores: 16, Parallelism: 8}, faultyWorkflow(), 40)
	}
	e1, r1 := run()
	e2, r2 := run()
	if r1.TET != r2.TET {
		t.Errorf("TET not deterministic: %v vs %v", r1.TET, r2.TET)
	}
	if !reflect.DeepEqual(r1.PerActivity, r2.PerActivity) {
		t.Errorf("per-activity stats not deterministic:\n%+v\n%+v", r1.PerActivity, r2.PerActivity)
	}
	if r1.Failures == 0 {
		t.Error("expected injected failures at the default ~10% rate")
	}
	q := "SELECT t.taskid, t.status, t.starttime, t.endtime, t.vmid, t.failures, t.command FROM hactivation t ORDER BY t.taskid"
	res1, err := e1.DB.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.DB.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(res1.Rows), fmt.Sprint(res2.Rows); got != want {
		t.Error("hactivation timeline not deterministic across runs")
	}
}

// TestDataflowBeatsBarrierOnStragglers reproduces the motivating
// scenario: a looping activation charges the 1800s loop timeout on
// one core; the barrier engine idles the whole fleet behind it, the
// dataflow runtime lets every other tuple stream past. It also checks
// the structural pipelining evidence — a downstream activation starts
// before the slowest upstream one ends, which a barrier forbids.
func TestDataflowBeatsBarrierOnStragglers(t *testing.T) {
	opts := Options{Cores: 8, Parallelism: 4}
	be, br := runRuntime(t, RuntimeBarrier, opts, faultyWorkflow(), 40)
	de, dr := runRuntime(t, RuntimeDataflow, opts, faultyWorkflow(), 40)
	if dr.TET >= br.TET {
		t.Errorf("pipelined TET %.3f not faster than barrier %.3f despite stragglers", dr.TET, br.TET)
	}
	overlapQ := `SELECT count(*)
FROM hactivity a, hactivation t, hactivity a2, hactivation t2
WHERE a.actid = t.actid AND a2.actid = t2.actid
AND a.tag = 'dock' AND a2.tag = 'src'
AND extract ('epoch' from (t2.endtime-t.starttime)) > 0`
	for _, tc := range []struct {
		e       *Engine
		overlap bool
	}{{be, false}, {de, true}} {
		res, err := tc.e.DB.Query(overlapQ)
		if err != nil {
			t.Fatal(err)
		}
		n := res.Rows[0][0].(int64)
		if tc.overlap && n == 0 {
			t.Error("dataflow: no dock activation started before the last src activation ended")
		}
		if !tc.overlap && n > 0 {
			t.Errorf("barrier: %d dock activations overlap the src stage", n)
		}
	}
}

// TestParseFloatDefault pins the strict float parsing of extractor
// fields (Sscanf used to accept garbage-suffixed input).
func TestParseFloatDefault(t *testing.T) {
	def := -1.0
	cases := []struct {
		in   string
		want float64
	}{
		{"", def},
		{"abc", def},
		{"1.5abc", def}, // the Sscanf regression: partial parse
		{"1.5.6", def},
		{"1e", def},
		{"--2", def},
		{" 2.5", def}, // no whitespace tolerance
		{"0", 0},
		{"-6.25", -6.25},
		{"1.5", 1.5},
		{"2.5e3", 2500},
		{"2.5E-2", 0.025},
		{"1e4", 10000},
		{".5", 0.5},
	}
	for _, c := range cases {
		if got := parseFloatDefault(c.in, def); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("parseFloatDefault(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
