// Package spec parses and emits the SciCumulus XML workflow
// specification (Figure 2 of the paper). The XML carries the workflow
// structure and instrumentation metadata; Run functions are bound by
// tag after parsing.
package spec

import (
	"encoding/xml"
	"fmt"
	"io"

	"repro/internal/workflow"
)

// XML document model, following the element names in Figure 2.
type xmlDoc struct {
	XMLName  xml.Name    `xml:"SciCumulus"`
	Database xmlDatabase `xml:"database"`
	Workflow xmlWorkflow `xml:"SciCumulusWorkflow"`
}

type xmlDatabase struct {
	Name   string `xml:"name,attr"`
	Server string `xml:"server,attr"`
	Port   int    `xml:"port,attr"`
}

type xmlWorkflow struct {
	Tag         string        `xml:"tag,attr"`
	Description string        `xml:"description,attr"`
	ExecTag     string        `xml:"exectag,attr"`
	ExpDir      string        `xml:"expdir,attr"`
	Activities  []xmlActivity `xml:"SciCumulusActivity"`
}

type xmlActivity struct {
	Tag         string        `xml:"tag,attr"`
	TemplateDir string        `xml:"templatedir,attr"`
	Activation  string        `xml:"activation,attr"`
	Operator    string        `xml:"operator,attr"`
	Depends     string        `xml:"depends,attr"`
	GroupKey    string        `xml:"groupkey,attr"`
	Relations   []xmlRelation `xml:"Relation"`
	Files       []xmlFile     `xml:"File"`
}

type xmlRelation struct {
	RelType  string `xml:"reltype,attr"`
	Name     string `xml:"name,attr"`
	Filename string `xml:"filename,attr"`
}

type xmlFile struct {
	Filename     string `xml:"filename,attr"`
	Instrumented bool   `xml:"instrumented,attr"`
}

// Database holds the provenance database connection metadata from the
// spec (informational in this reproduction — the store is embedded).
type Database struct {
	Name   string
	Server string
	Port   int
}

// Spec is a parsed SciCumulus workflow specification.
type Spec struct {
	Database Database
	Workflow *workflow.Workflow
}

// Parse reads a SciCumulus XML specification. The resulting
// activities have structure and templates but no Run bodies; use
// Bind to attach them.
func Parse(r io.Reader) (*Spec, error) {
	var doc xmlDoc
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	w := &workflow.Workflow{
		Tag:         doc.Workflow.Tag,
		Description: doc.Workflow.Description,
		ExecTag:     doc.Workflow.ExecTag,
		ExpDir:      doc.Workflow.ExpDir,
	}
	for _, xa := range doc.Workflow.Activities {
		op, err := workflow.ParseOperator(xa.Operator)
		if err != nil {
			return nil, fmt.Errorf("spec: activity %q: %w", xa.Tag, err)
		}
		a := &workflow.Activity{
			Tag:      xa.Tag,
			Op:       op,
			Template: xa.Activation,
			GroupKey: xa.GroupKey,
		}
		if xa.Depends != "" {
			a.Depends = splitCSV(xa.Depends)
		}
		w.Activities = append(w.Activities, a)
	}
	return &Spec{
		Database: Database(doc.Database),
		Workflow: w,
	}, nil
}

func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, trimSpaces(s[start:i]))
			}
			start = i + 1
		}
	}
	return out
}

func trimSpaces(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// Bind attaches Run functions by activity tag. Every activity must
// receive a body; unknown tags in the map are rejected so typos fail
// fast.
func (s *Spec) Bind(bodies map[string]workflow.RunFunc) error {
	seen := map[string]bool{}
	for _, a := range s.Workflow.Activities {
		fn, ok := bodies[a.Tag]
		if !ok {
			return fmt.Errorf("spec: no Run body for activity %q", a.Tag)
		}
		a.Run = fn
		seen[a.Tag] = true
	}
	for tag := range bodies {
		if !seen[tag] {
			return fmt.Errorf("spec: Run body for unknown activity %q", tag)
		}
	}
	return s.Workflow.Validate()
}

// Write emits the specification as SciCumulus XML (the inverse of
// Parse, minus Run bodies).
func Write(w io.Writer, s *Spec) error {
	doc := xmlDoc{
		Database: xmlDatabase(s.Database),
		Workflow: xmlWorkflow{
			Tag:         s.Workflow.Tag,
			Description: s.Workflow.Description,
			ExecTag:     s.Workflow.ExecTag,
			ExpDir:      s.Workflow.ExpDir,
		},
	}
	for _, a := range s.Workflow.Activities {
		xa := xmlActivity{
			Tag:        a.Tag,
			Activation: a.Template,
			Operator:   a.Op.String(),
			GroupKey:   a.GroupKey,
		}
		for i, d := range a.Depends {
			if i > 0 {
				xa.Depends += ","
			}
			xa.Depends += d
		}
		doc.Workflow.Activities = append(doc.Workflow.Activities, xa)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	return nil
}
