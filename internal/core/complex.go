package core

import (
	"fmt"
	"io"

	"repro/internal/chem"
	"repro/internal/chem/formats"
	"repro/internal/dock"
	"repro/internal/dock/ad4"
	"repro/internal/dock/vina"
	"repro/internal/grid"
	"repro/internal/prep"
)

// ComplexResult describes an exported receptor-ligand complex.
type ComplexResult struct {
	Receptor string
	Ligand   string
	Program  prep.Program
	FEB      float64
	RMSD     float64
	Atoms    int
}

// ExportComplex docks one pair and writes the receptor together with
// the best docked ligand pose as a single PDB — the 3D complex the
// paper's Figure 12 visualizes (receptor 2HHN with ligand 0E6 in the
// binding pocket). The ligand atoms are HETATM records in the
// receptor's frame, chain L.
func ExportComplex(w io.Writer, cfg Config, program prep.Program, recCode, ligCode string) (*ComplexResult, error) {
	if err := cfg.Effort.Validate(); err != nil {
		return nil, err
	}
	b := &builder{cfg: cfg, program: program}
	res, dlig, err := b.dockPair(recCode, ligCode)
	if err != nil {
		return nil, err
	}
	best, err := res.Best()
	if err != nil {
		return nil, err
	}
	prec, err := b.preparedReceptor(recCode)
	if err != nil {
		return nil, err
	}

	complexMol := &chem.Molecule{Name: fmt.Sprintf("%s-%s complex (%s)", recCode, ligCode, program)}
	complexMol.Atoms = append(complexMol.Atoms, prec.Atoms...)
	coords := dlig.Coords(best.Pose)
	for i, a := range dlig.Mol.Atoms {
		a.Serial = len(complexMol.Atoms) + 1
		a.Pos = coords[i]
		a.Chain = "L"
		a.HetAtm = true
		complexMol.Atoms = append(complexMol.Atoms, a)
	}
	if err := formats.WritePDB(w, complexMol); err != nil {
		return nil, err
	}
	return &ComplexResult{
		Receptor: recCode,
		Ligand:   ligCode,
		Program:  program,
		FEB:      best.FEB,
		RMSD:     best.RMSD,
		Atoms:    complexMol.NumAtoms(),
	}, nil
}

// RefineBest docks a pair, then applies the §V.D redocking refinement
// to its best pose and reports the improvement. Refinement operates
// on the engine's raw objective; the returned FEBs are calibrated.
func RefineBest(cfg Config, program prep.Program, recCode, ligCode string, iterations int) (before, after float64, err error) {
	if err := cfg.Effort.Validate(); err != nil {
		return 0, 0, err
	}
	b := &builder{cfg: cfg, program: program}
	res, dlig, err := b.dockPair(recCode, ligCode)
	if err != nil {
		return 0, 0, err
	}
	best, err := res.Best()
	if err != nil {
		return 0, 0, err
	}
	prec, err := b.preparedReceptor(recCode)
	if err != nil {
		return 0, 0, err
	}
	pl, err := b.preparedLigand(ligCode)
	if err != nil {
		return 0, 0, err
	}
	spec := b.gridSpec(prec)
	box := dock.Box{
		Center: spec.Center,
		Size: chem.V(float64(spec.NPts[0]-1)*spec.Spacing,
			float64(spec.NPts[1]-1)*spec.Spacing,
			float64(spec.NPts[2]-1)*spec.Spacing),
	}
	scorer, err := b.scorerFor(prec, pl, dlig)
	if err != nil {
		return 0, 0, err
	}
	// Redocking refines the *reported* binding energy directly (the
	// quantity Table 3 ranks), not the engine's search objective.
	reported := func(coords []chem.Vec3) float64 { return scorer.Score(coords) }
	if s, ok := scorer.(interface{ ReportedFEB([]chem.Vec3) float64 }); ok {
		reported = s.ReportedFEB
	}
	ref, err := dock.Refine(scorerFunc(reported), dlig, box, best.Pose,
		iterations, b.pairSeed(recCode, ligCode)+1)
	if err != nil {
		return 0, 0, err
	}
	heavy := pl.Mol.HeavyAtomCount()
	calibrate := calibrateAD4
	if program == prep.ProgramVina {
		calibrate = calibrateVina
	}
	before = calibrate(normalizeBySize(reported(dlig.Coords(best.Pose)), heavy))
	after = calibrate(normalizeBySize(reported(dlig.Coords(ref.Pose)), heavy))
	return before, after, nil
}

// scorerFunc adapts a plain scoring function to dock.Scorer.
type scorerFunc func([]chem.Vec3) float64

func (f scorerFunc) Score(coords []chem.Vec3) float64 { return f(coords) }

// scorerFor builds the docking scorer matching the builder's program.
func (b *builder) scorerFor(prec *chem.Molecule, pl *prep.PreparedLigand, dlig *dock.Ligand) (dock.Scorer, error) {
	if b.program == prep.ProgramAD4 {
		maps, err := b.gridMaps(prec.Name, pl.Mol.AtomTypes())
		if err != nil {
			return nil, err
		}
		return newAD4Scorer(maps, dlig)
	}
	return newVinaScorer(prec, dlig)
}

// newAD4Scorer and newVinaScorer adapt the engine constructors to the
// dock.Scorer interface for refinement.
func newAD4Scorer(maps *grid.Maps, lig *dock.Ligand) (dock.Scorer, error) {
	return ad4.NewScorer(maps, lig)
}

func newVinaScorer(rec *chem.Molecule, lig *dock.Ligand) (dock.Scorer, error) {
	return vina.NewScorer(rec, lig)
}
