package prov

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . * + - / = < > <= >= <> !=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes a SQL string. Identifiers keep their case for display
// but compare case-insensitively; strings use single quotes.
func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n && sql[j] != '\'' {
				sb.WriteByte(sql[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("prov: unterminated string at position %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, sql[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(sql[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, sql[i:j], i})
			i = j
		case c == '<':
			if i+1 < n && (sql[i+1] == '=' || sql[i+1] == '>') {
				toks = append(toks, token{tokSymbol, sql[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && sql[i+1] == '=' {
				toks = append(toks, token{tokSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && sql[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("prov: unexpected '!' at position %d", i)
			}
		case strings.IndexByte("(),.*+-/=;", c) >= 0:
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("prov: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
