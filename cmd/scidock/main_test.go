package main

import "testing"

func TestRunSmokeCampaign(t *testing.T) {
	if err := run("ad4", 2, 1, 4, "smoke", 1, true, false, false, "", "exact"); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMonitorAndQuery(t *testing.T) {
	err := run("vina", 2, 1, 4, "smoke", 1, true, true, true,
		"SELECT count(*) FROM ddocking", "tolerance")
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAdaptiveMode(t *testing.T) {
	if err := run("adaptive", 3, 1, 4, "smoke", 1, true, false, false, "", "exact"); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("nope", 2, 1, 4, "smoke", 1, true, false, false, "", "exact"); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run("ad4", 2, 1, 4, "nope", 1, true, false, false, "", "exact"); err == nil {
		t.Error("bad effort accepted")
	}
	if err := run("ad4", 0, 1, 4, "smoke", 1, true, false, false, "", "exact"); err == nil {
		t.Error("zero receptors accepted")
	}
	if err := run("ad4", 2, 1, 4, "smoke", 1, true, false, false, "NOT SQL", "exact"); err == nil {
		t.Error("bad SQL accepted")
	}
	if err := run("ad4", 2, 1, 4, "smoke", 1, true, false, false, "", "nope"); err == nil {
		t.Error("bad precision accepted")
	}
}
