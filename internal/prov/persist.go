package prov

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"
)

// The paper's provenance database persists beyond workflow execution,
// "allow[ing] for long-term analyses over experimental data". Save
// and LoadDB serialize the embedded store so campaigns can be
// archived and re-queried later (cmd/provq's -save/-load flags).

func init() {
	// Cell values travel through an interface; register the concrete
	// types gob will see.
	gob.Register(time.Time{})
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
}

// dbSnapshot is the serialized form.
type dbSnapshot struct {
	Version int
	Tables  []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	Columns []Column
	Rows    [][]Value
}

const snapshotVersion = 1

// Save writes the entire database to w. It serializes from a
// consistent multi-table snapshot; published rows are immutable, so
// the snapshot rows can be encoded directly without per-row copies
// and without blocking writers during the encode.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	names := db.tableNamesLocked()
	tabs := make([]*Table, 0, len(names))
	for _, name := range names {
		tabs = append(tabs, db.tables[name])
	}
	db.mu.RUnlock()
	snaps := captureTables(tabs)
	snap := dbSnapshot{Version: snapshotVersion}
	for _, t := range tabs {
		s := snaps[t]
		ts := tableSnapshot{Name: t.Name, Columns: t.Columns, Rows: make([][]Value, 0, s.n)}
		for i := 0; i < s.n; i++ {
			ts.Rows = append(ts.Rows, s.row(i))
		}
		snap.Tables = append(snap.Tables, ts)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("prov: save: %w", err)
	}
	return nil
}

// tableNamesLocked returns sorted table names; caller holds a lock.
func (db *DB) tableNamesLocked() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	// Small set; insertion sort keeps this dependency-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// LoadDB reads a database written by Save, validating every row
// against its declared schema.
func LoadDB(r io.Reader) (*DB, error) {
	var snap dbSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("prov: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("prov: load: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	db := NewDB()
	for _, ts := range snap.Tables {
		if err := db.CreateTable(ts.Name, ts.Columns); err != nil {
			return nil, err
		}
		for i, row := range ts.Rows {
			if err := db.Insert(ts.Name, row); err != nil {
				return nil, fmt.Errorf("prov: load: table %q row %d: %w", ts.Name, i, err)
			}
		}
	}
	// Archives predate (or may not follow) the PROV-Wf schema; declare
	// whatever default indexes apply so re-queries get the planner's
	// fast paths.
	declareDefaultIndexes(db)
	return db, nil
}
