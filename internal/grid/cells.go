package grid

import (
	"math"

	"repro/internal/chem"
)

// cellList bins receptor atoms into cubic cells of edge = cutoff so a
// neighbourhood query only visits the 27 surrounding cells. This keeps
// map generation O(points × local atoms) instead of O(points × atoms).
// Atom indices are stored in a flat CSR layout (one []int32 plus
// per-cell offsets) so a query walks contiguous memory instead of
// chasing per-bucket slice headers.
type cellList struct {
	cell     float64
	min, max chem.Vec3 // atom bounding box, for the cutoff-expanded guard
	dims     [3]int
	start    []int32 // CSR offsets, len = #cells + 1
	idx      []int32 // atom indices grouped by cell
	atoms    []chem.Vec3
}

//unit: cutoff=Å
func buildCellList(m *chem.Molecule, cutoff float64) *cellList {
	pts := m.Positions()
	min, max := chem.BoundingBox(pts)
	cl := &cellList{cell: cutoff, min: min, max: max, atoms: pts}
	span := max.Sub(min)
	cl.dims[0] = int(span.X/cutoff) + 1
	cl.dims[1] = int(span.Y/cutoff) + 1
	cl.dims[2] = int(span.Z/cutoff) + 1
	ncells := cl.dims[0] * cl.dims[1] * cl.dims[2]
	cl.start = make([]int32, ncells+1)
	for _, p := range pts {
		cl.start[cl.bucketIndex(p)+1]++
	}
	for c := 0; c < ncells; c++ {
		cl.start[c+1] += cl.start[c]
	}
	cl.idx = make([]int32, len(pts))
	cursor := make([]int32, ncells)
	copy(cursor, cl.start[:ncells])
	for i, p := range pts {
		b := cl.bucketIndex(p)
		cl.idx[cursor[b]] = int32(i)
		cursor[b]++
	}
	return cl
}

func (cl *cellList) coords(p chem.Vec3) (int, int, int) {
	cx := int(math.Floor((p.X - cl.min.X) / cl.cell))
	cy := int(math.Floor((p.Y - cl.min.Y) / cl.cell))
	cz := int(math.Floor((p.Z - cl.min.Z) / cl.cell))
	return cx, cy, cz
}

func (cl *cellList) bucketIndex(p chem.Vec3) int {
	cx, cy, cz := cl.coords(p)
	return cl.clampIndex(cx, cy, cz)
}

func (cl *cellList) clampIndex(cx, cy, cz int) int {
	if cx < 0 {
		cx = 0
	} else if cx >= cl.dims[0] {
		cx = cl.dims[0] - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= cl.dims[1] {
		cy = cl.dims[1] - 1
	}
	if cz < 0 {
		cz = 0
	} else if cz >= cl.dims[2] {
		cz = cl.dims[2] - 1
	}
	return (cz*cl.dims[1]+cy)*cl.dims[0] + cx
}

// spans writes the CSR [start, end) ranges of the (≤27) cells around p
// into out and returns how many are non-empty. The early-out is the
// cutoff-expanded atom bounding box: any point beyond it cannot have a
// neighbour within the cutoff (distance filtering happens in the
// caller). Callers iterate cl.idx[span[0]:span[1]] directly, keeping
// the per-atom hot loop free of function calls.
func (cl *cellList) spans(p chem.Vec3, out *[27][2]int32) int {
	if p.X < cl.min.X-cl.cell || p.X > cl.max.X+cl.cell ||
		p.Y < cl.min.Y-cl.cell || p.Y > cl.max.Y+cl.cell ||
		p.Z < cl.min.Z-cl.cell || p.Z > cl.max.Z+cl.cell {
		return 0
	}
	cx, cy, cz := cl.coords(p)
	n := 0
	for dz := -1; dz <= 1; dz++ {
		z := cz + dz
		if z < 0 || z >= cl.dims[2] {
			continue
		}
		for dy := -1; dy <= 1; dy++ {
			y := cy + dy
			if y < 0 || y >= cl.dims[1] {
				continue
			}
			row := (z*cl.dims[1] + y) * cl.dims[0]
			for dx := -1; dx <= 1; dx++ {
				x := cx + dx
				if x < 0 || x >= cl.dims[0] {
					continue
				}
				b := row + x
				if s, e := cl.start[b], cl.start[b+1]; s < e {
					out[n] = [2]int32{s, e}
					n++
				}
			}
		}
	}
	return n
}

// forNeighbors invokes fn with the index of every atom in the 27 cells
// around p (the span-free convenience used by the reference path and
// tests).
func (cl *cellList) forNeighbors(p chem.Vec3, fn func(atom int)) {
	var spans [27][2]int32
	n := cl.spans(p, &spans)
	for s := 0; s < n; s++ {
		for _, ai := range cl.idx[spans[s][0]:spans[s][1]] {
			fn(int(ai))
		}
	}
}
