package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRunSmokeCampaign(t *testing.T) {
	if err := run("ad4", 2, 1, 4, "smoke", 1, true, false, false, "", "exact"); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMonitorAndQuery(t *testing.T) {
	err := run("vina", 2, 1, 4, "smoke", 1, true, true, true,
		"SELECT count(*) FROM ddocking", "tolerance")
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAdaptiveMode(t *testing.T) {
	if err := run("adaptive", 3, 1, 4, "smoke", 1, true, false, false, "", "exact"); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("nope", 2, 1, 4, "smoke", 1, true, false, false, "", "exact"); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run("ad4", 2, 1, 4, "nope", 1, true, false, false, "", "exact"); err == nil {
		t.Error("bad effort accepted")
	}
	if err := run("ad4", 0, 1, 4, "smoke", 1, true, false, false, "", "exact"); err == nil {
		t.Error("zero receptors accepted")
	}
	if err := run("ad4", 2, 1, 4, "smoke", 1, true, false, false, "NOT SQL", "exact"); err == nil {
		t.Error("bad SQL accepted")
	}
	if err := run("ad4", 2, 1, 4, "smoke", 1, true, false, false, "", "nope"); err == nil {
		t.Error("bad precision accepted")
	}
	if err := run("ad4", 2, 1, 0, "smoke", 1, true, false, false, "", "exact"); err == nil {
		t.Error("zero cores accepted")
	}
}

// TestValidateFlagsUpFront pins the fast-fail contract: bad
// enumerations are rejected with usage messages listing the valid
// values, before any dataset or engine work happens.
func TestValidateFlagsUpFront(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{validateFlags("nope", 2, 1, 4, "smoke", "exact"), "valid values are ad4, vina, adaptive"},
		{validateFlags("ad4", 2, 1, 4, "nope", "exact"), "valid values are smoke, campaign, quick"},
		{validateFlags("ad4", 2, 1, 4, "smoke", "nope"), "valid values are exact, tolerance"},
		{validateFlags("ad4", 2, 1, -3, "smoke", "exact"), "-cores"},
		{validateFlags("ad4", 0, 1, 4, "smoke", "exact"), "-receptors"},
		{validateFlags("ad4", 2, 0, 4, "smoke", "exact"), "-ligands"},
	}
	for i, c := range cases {
		if c.err == nil {
			t.Errorf("case %d: accepted", i)
			continue
		}
		if !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, c.err, c.want)
		}
	}
	if err := validateFlags("vina", 2, 1, 4, "quick", "tolerance"); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
}

// TestServeSmoke drives the resident service end to end in-process:
// start, submit a tiny campaign over HTTP, poll it to completion, run
// a provenance query, then shut down cleanly via context cancellation
// (the code path SIGTERM takes).
func TestServeSmoke(t *testing.T) {
	addrCh := make(chan string, 1)
	serveListening = func(addr string) { addrCh <- addr }
	defer func() { serveListening = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runServe(ctx, "127.0.0.1:0") }()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	}

	body, err := json.Marshal(map[string]any{
		"mode": "ad4", "receptors": 2, "ligands": 1, "cores": 4,
		"effort": "smoke", "seed": 3, "disable_failures": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID int64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == 0 {
		t.Fatalf("submit: status %d, id %d", resp.StatusCode, submitted.ID)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var state string
	for time.Now().Before(deadline) {
		r, err := http.Get(fmt.Sprintf("%s/campaigns/%d", base, submitted.ID))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		state = st.State
		if state == "DONE" || state == "FAILED" || state == "CANCELLED" {
			break
		}
		runtime.Gosched()
	}
	if state != "DONE" {
		t.Fatalf("campaign ended in state %q, want DONE", state)
	}

	q, err := http.Post(fmt.Sprintf("%s/campaigns/%d/query", base, submitted.ID),
		"application/json", strings.NewReader(`{"sql": "SELECT count(*) FROM ddocking"}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.NewDecoder(q.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	q.Body.Close()
	if len(qr.Rows) != 1 || qr.Rows[0][0] == "0" {
		t.Errorf("served query rows = %v, want one nonzero count", qr.Rows)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("server did not shut down within a minute")
	}
}
