package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parallel"
)

func doJSON(t *testing.T, client *http.Client, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPLifecycle drives the full served lifecycle — submit, poll
// to completion, provenance query — and pins that the served campaign
// is byte-identical to the same spec run one-shot.
func TestHTTPLifecycle(t *testing.T) {
	m := NewManager(parallel.NewPool(2), Limits{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	spec := tinySpec(21)

	var submitted struct {
		ID    int64 `json:"id"`
		State State `json:"state"`
	}
	if code := doJSON(t, srv.Client(), "POST", srv.URL+"/campaigns", spec, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if submitted.ID == 0 || submitted.State != StateQueued {
		t.Fatalf("submit response: %+v", submitted)
	}

	var st Status
	for {
		if code := doJSON(t, srv.Client(), "GET",
			fmt.Sprintf("%s/campaigns/%d", srv.URL, submitted.ID), nil, &st); code != http.StatusOK {
			t.Fatalf("status code = %d", code)
		}
		if st.State.Terminal() {
			break
		}
		runtime.Gosched()
	}
	if st.State != StateDone {
		t.Fatalf("campaign ended %s (%s), want DONE", st.State, st.Error)
	}
	if st.Activations == 0 || st.Problems < 0 {
		t.Errorf("served status incomplete: %+v", st)
	}

	var qr struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	code := doJSON(t, srv.Client(), "POST",
		fmt.Sprintf("%s/campaigns/%d/query", srv.URL, submitted.ID),
		map[string]string{"sql": "SELECT count(*) FROM ddocking"}, &qr)
	if code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if len(qr.Rows) != 1 || len(qr.Rows[0]) != 1 || qr.Rows[0][0] == "0" {
		t.Errorf("served provenance query returned %+v, want one nonzero count", qr)
	}

	var list []Status
	if code := doJSON(t, srv.Client(), "GET", srv.URL+"/campaigns", nil, &list); code != http.StatusOK || len(list) != 1 {
		t.Errorf("list: code %d, %d campaigns", code, len(list))
	}

	// The acceptance bar: served execution is byte-identical to the
	// one-shot CLI path for the same spec.
	served, err := m.Wait(context.Background(), submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCampaignsIdentical(t, "served vs one-shot", served, oneShot)
}

// TestHTTPCancel cancels a running campaign over the wire.
func TestHTTPCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	spec := tinySpec(22)
	m := NewManager(parallel.NewPool(2), Limits{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	id, err := m.SubmitConfig(spec, blockingConfig(t, spec, started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var cancelled struct {
		State State `json:"state"`
	}
	if code := doJSON(t, srv.Client(), "DELETE",
		fmt.Sprintf("%s/campaigns/%d", srv.URL, id), nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel status = %d", code)
	}
	if cancelled.State != StateCancelling {
		t.Errorf("cancel state = %s, want CANCELLING", cancelled.State)
	}
	close(release)
	if _, err := m.Wait(context.Background(), id); err == nil {
		t.Error("cancelled campaign completed without error")
	}
	var st Status
	doJSON(t, srv.Client(), "GET", fmt.Sprintf("%s/campaigns/%d", srv.URL, id), nil, &st)
	if st.State != StateCancelled {
		t.Errorf("final state = %s, want CANCELLED", st.State)
	}
}

// TestHTTPErrors covers the API's failure surface.
func TestHTTPErrors(t *testing.T) {
	m := NewManager(parallel.NewPool(1), Limits{})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := srv.Client()

	var apiErr struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, client, "POST", srv.URL+"/campaigns",
		Spec{Mode: "quantum"}, &apiErr); code != http.StatusBadRequest {
		t.Errorf("bad mode status = %d", code)
	}
	if !strings.Contains(apiErr.Error, "valid: ad4, vina, adaptive") {
		t.Errorf("bad-mode error %q does not list valid modes", apiErr.Error)
	}
	if code := doJSON(t, client, "GET", srv.URL+"/campaigns/99", nil, &apiErr); code != http.StatusNotFound {
		t.Errorf("unknown id status = %d", code)
	}
	if code := doJSON(t, client, "DELETE", srv.URL+"/campaigns/99", nil, &apiErr); code != http.StatusNotFound {
		t.Errorf("cancel unknown status = %d", code)
	}
	if code := doJSON(t, client, "GET", srv.URL+"/campaigns/notanid", nil, &apiErr); code != http.StatusBadRequest {
		t.Errorf("bad id status = %d", code)
	}
	if code := doJSON(t, client, "POST", srv.URL+"/campaigns/99/query",
		map[string]string{}, &apiErr); code != http.StatusBadRequest && code != http.StatusNotFound {
		t.Errorf("missing sql status = %d", code)
	}

	resp, err := client.Post(srv.URL+"/campaigns", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}

	var health struct {
		OK   bool       `json:"ok"`
		Pool PoolStatus `json:"pool"`
	}
	if code := doJSON(t, client, "GET", srv.URL+"/healthz", nil, &health); code != http.StatusOK || !health.OK {
		t.Errorf("healthz: code %d, %+v", code, health)
	}
}
