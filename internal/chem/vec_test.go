package chem

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApprox(a, b Vec3, tol float64) bool {
	return approx(a.X, b.X, tol) && approx(a.Y, b.Y, tol) && approx(a.Z, b.Z, tol)
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-4, 5, 0.5)
	if got := a.Add(b); !vecApprox(got, V(-3, 7, 3.5), eps) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !vecApprox(got, V(5, -3, 2.5), eps) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !vecApprox(got, V(2, 4, 6), eps) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); !approx(got, -4+10+1.5, eps) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); !vecApprox(got, V(-1, -2, -3), eps) {
		t.Errorf("Neg = %v", got)
	}
}

func TestVecCrossOrthogonal(t *testing.T) {
	a := V(1, 0, 0)
	b := V(0, 1, 0)
	if got := a.Cross(b); !vecApprox(got, V(0, 0, 1), eps) {
		t.Fatalf("x cross y = %v, want z", got)
	}
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(ax, ay, az)
		b := V(bx, by, bz)
		c := a.Cross(b)
		return approx(c.Dot(a), 0, 1e-6*(1+a.Norm2()*b.Norm2())) &&
			approx(c.Dot(b), 0, 1e-6*(1+a.Norm2()*b.Norm2()))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1)), Values: smallVecPair}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// smallVecPair generates bounded float arguments to keep floating
// point comparisons meaningful.
func smallVecPair(args []reflect.Value, r *rand.Rand) {
	for i := range args {
		args[i] = reflect.ValueOf(r.Float64()*20 - 10)
	}
}

func TestVecNormDist(t *testing.T) {
	v := V(3, 4, 0)
	if !approx(v.Norm(), 5, eps) {
		t.Errorf("Norm = %v", v.Norm())
	}
	if !approx(v.Norm2(), 25, eps) {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	w := V(0, 0, 0)
	if !approx(v.Dist(w), 5, eps) {
		t.Errorf("Dist = %v", v.Dist(w))
	}
	if !approx(v.Dist2(w), 25, eps) {
		t.Errorf("Dist2 = %v", v.Dist2(w))
	}
}

func TestVecUnit(t *testing.T) {
	v := V(0, 0, 7)
	if got := v.Unit(); !vecApprox(got, V(0, 0, 1), eps) {
		t.Errorf("Unit = %v", got)
	}
	z := Vec3{}
	if got := z.Unit(); !vecApprox(got, z, eps) {
		t.Errorf("Unit(0) = %v, want zero", got)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(2, 4, 6)
	if got := a.Lerp(b, 0.5); !vecApprox(got, V(1, 2, 3), eps) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); !vecApprox(got, a, eps) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !vecApprox(got, b, eps) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestVecAngle(t *testing.T) {
	if got := V(1, 0, 0).Angle(V(0, 1, 0)); !approx(got, math.Pi/2, eps) {
		t.Errorf("angle = %v, want pi/2", got)
	}
	if got := V(1, 0, 0).Angle(V(-2, 0, 0)); !approx(got, math.Pi, eps) {
		t.Errorf("angle = %v, want pi", got)
	}
	if got := V(1, 1, 0).Angle(V(2, 2, 0)); !approx(got, 0, 1e-7) {
		t.Errorf("angle = %v, want 0", got)
	}
	// Degenerate zero vector does not NaN.
	if got := (Vec3{}).Angle(V(1, 0, 0)); got != 0 {
		t.Errorf("zero-vector angle = %v", got)
	}
}

func TestDihedral(t *testing.T) {
	// Classic trans (180°) butane-like arrangement.
	a := V(0, 1, 0)
	b := V(0, 0, 0)
	c := V(1, 0, 0)
	d := V(1, -1, 0)
	if got := math.Abs(Dihedral(a, b, c, d)); !approx(got, math.Pi, 1e-6) {
		t.Errorf("trans dihedral = %v, want pi", got)
	}
	// Cis (0°).
	d2 := V(1, 1, 0)
	if got := Dihedral(a, b, c, d2); !approx(got, 0, 1e-6) {
		t.Errorf("cis dihedral = %v, want 0", got)
	}
	// +90°.
	d3 := V(1, 0, 1)
	if got := math.Abs(Dihedral(a, b, c, d3)); !approx(got, math.Pi/2, 1e-6) {
		t.Errorf("perpendicular dihedral = %v, want pi/2", got)
	}
}

func TestCentroidAndBounds(t *testing.T) {
	pts := []Vec3{V(0, 0, 0), V(2, 2, 2), V(4, -2, 1)}
	if got := Centroid(pts); !vecApprox(got, V(2, 0, 1), eps) {
		t.Errorf("Centroid = %v", got)
	}
	min, max := BoundingBox(pts)
	if !vecApprox(min, V(0, -2, 0), eps) || !vecApprox(max, V(4, 2, 2), eps) {
		t.Errorf("BoundingBox = %v %v", min, max)
	}
	if got := Centroid(nil); !vecApprox(got, Vec3{}, eps) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	min, max = BoundingBox(nil)
	if min != (Vec3{}) || max != (Vec3{}) {
		t.Errorf("BoundingBox(nil) = %v %v", min, max)
	}
}
