package cloud

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// InstanceType describes one EC2 offering (Table 1 of the paper).
type InstanceType struct {
	Name      string
	Cores     int
	Processor string
	SpeedGHz  float64 // nominal per-core speed factor (1.0 = reference core)
	HourlyUSD float64
	BootSecs  float64 // acquisition-to-ready latency
}

// The m3 instance catalog used by the paper's experiments.
var (
	M3XLarge = InstanceType{
		Name: "m3.xlarge", Cores: 4, Processor: "Intel Xeon E5-2670",
		SpeedGHz: 1.0, HourlyUSD: 0.450, BootSecs: 95,
	}
	M32XLarge = InstanceType{
		Name: "m3.2xlarge", Cores: 8, Processor: "Intel Xeon E5-2670",
		SpeedGHz: 1.0, HourlyUSD: 0.900, BootSecs: 110,
	}
)

// Catalog lists the available instance types.
func Catalog() []InstanceType { return []InstanceType{M3XLarge, M32XLarge} }

// VM is one acquired virtual machine.
type VM struct {
	ID        string
	Type      InstanceType
	BootAt    float64 // virtual time acquisition was requested
	ReadyAt   float64 // BootAt + boot latency
	StopAt    float64 // math.Inf(1) while running
	baseSpeed float64 // per-VM heterogeneity factor, deterministic from ID
}

// Running reports whether the VM is still leased.
func (vm *VM) Running() bool { return math.IsInf(vm.StopAt, 1) }

// Speed returns the effective speed multiplier at virtual time t:
// the nominal speed scaled by the VM's placement heterogeneity and a
// slowly varying virtualization fluctuation (the cloud performance
// noise §V.C discusses). Deterministic in (ID, t).
func (vm *VM) Speed(t float64) float64 {
	// Fluctuation: ±6% sinusoid with a VM-specific phase plus ±4%
	// hash noise over 10-minute buckets.
	phase := float64(hash32(vm.ID)) / float64(math.MaxUint32) * 2 * math.Pi
	slow := 0.06 * math.Sin(2*math.Pi*t/3600+phase)
	bucket := int64(t / 600)
	jitter := (float64(hash32(fmt.Sprintf("%s|%d", vm.ID, bucket)))/float64(math.MaxUint32) - 0.5) * 0.08
	s := vm.Type.SpeedGHz * vm.baseSpeed * (1 + slow + jitter)
	if s < 0.1 {
		s = 0.1
	}
	return s
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// Cluster manages VM leases against the virtual clock and accumulates
// the bill.
type Cluster struct {
	sim    *Sim
	vms    map[string]*VM
	nextID int
}

// NewCluster returns an empty cluster on the given simulator.
func NewCluster(sim *Sim) *Cluster {
	return &Cluster{sim: sim, vms: make(map[string]*VM)}
}

// Acquire leases a new VM of the given type. The returned VM becomes
// usable at ReadyAt (boot latency); the caller coordinates with the
// simulator for readiness events.
func (c *Cluster) Acquire(t InstanceType) *VM {
	c.nextID++
	vm := &VM{
		ID:      fmt.Sprintf("i-%s-%04d", t.Name, c.nextID),
		Type:    t,
		BootAt:  c.sim.Now(),
		ReadyAt: c.sim.Now() + t.BootSecs,
		StopAt:  math.Inf(1),
	}
	// Placement heterogeneity: ±10% deterministic per VM id.
	vm.baseSpeed = 0.9 + 0.2*float64(hash32(vm.ID))/float64(math.MaxUint32)
	c.vms[vm.ID] = vm
	return vm
}

// Release terminates a lease at the current virtual time.
func (c *Cluster) Release(id string) error {
	vm, ok := c.vms[id]
	if !ok {
		return fmt.Errorf("cloud: unknown VM %q", id)
	}
	if !vm.Running() {
		return fmt.Errorf("cloud: VM %q already released", id)
	}
	vm.StopAt = c.sim.Now()
	return nil
}

// VMs returns all leased VMs (running and stopped) sorted by ID.
func (c *Cluster) VMs() []*VM {
	out := make([]*VM, 0, len(c.vms))
	for _, vm := range c.vms {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunningVMs returns only active leases.
func (c *Cluster) RunningVMs() []*VM {
	var out []*VM
	for _, vm := range c.VMs() {
		if vm.Running() {
			out = append(out, vm)
		}
	}
	return out
}

// TotalCores sums the cores of running VMs.
func (c *Cluster) TotalCores() int {
	n := 0
	for _, vm := range c.vms {
		if vm.Running() {
			n += vm.Type.Cores
		}
	}
	return n
}

// Cost returns the accumulated bill in USD: EC2 bills whole hours per
// VM, rounded up, from acquisition to release (or the current time for
// running VMs).
func (c *Cluster) Cost() float64 {
	var usd float64
	for _, vm := range c.vms {
		end := vm.StopAt
		if vm.Running() {
			end = c.sim.Now()
		}
		up := end - vm.BootAt
		if up <= 0 {
			up = 1
		}
		hours := math.Ceil(up / 3600)
		usd += hours * vm.Type.HourlyUSD
	}
	return usd
}

// BuildVirtualCluster acquires the mixed m3.xlarge/m3.2xlarge fleet
// the paper used to reach a given core count: 2xlarge instances first,
// one xlarge for the remainder. It returns the acquired VMs.
func (c *Cluster) BuildVirtualCluster(cores int) ([]*VM, error) {
	if cores < 1 {
		return nil, fmt.Errorf("cloud: core count %d must be positive", cores)
	}
	var out []*VM
	remaining := cores
	for remaining >= M32XLarge.Cores {
		out = append(out, c.Acquire(M32XLarge))
		remaining -= M32XLarge.Cores
	}
	for remaining > 0 {
		out = append(out, c.Acquire(M3XLarge))
		remaining -= M3XLarge.Cores
	}
	return out, nil
}
