// Package clean is the true-negative scilint fixture: it exercises
// the same constructs as the sick fixture — float comparison, error
// handling, mutex regions, provenance activations, worker goroutines —
// written the way the analyzers want them, and must produce zero
// findings.
package clean

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/prov"
)

// AlmostEqual is the epsilon comparison floatcmp asks for.
func AlmostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// ParsePort propagates the parse error instead of discarding it.
func ParsePort(s string) (int, error) {
	return strconv.Atoi(s)
}

// Counter is mutex-guarded state with a disciplined critical section.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add holds the lock only for the in-memory increment.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// RecordRun pairs BeginActivation with CloseActivation on every path.
func RecordRun(db *prov.DB, now time.Time) error {
	if err := db.BeginActivation(1, 1, 1, now, "vm-0", "run"); err != nil {
		return err
	}
	return db.CloseActivation(1, prov.StatusFinished, now, 0)
}

// StartWorker ranges over a closable job channel, so closing jobs
// shuts the goroutine down.
func StartWorker(c *Counter, jobs <-chan struct{}) {
	go func() {
		for range jobs {
			c.Add()
		}
	}()
}

// TableShard is the disciplined counterpart of the sick fixture's
// shard: per-table RWMutex, snapshot under a paired read lock, flush
// that moves the batch out of the critical section before blocking.
type TableShard struct {
	mu   sync.RWMutex
	rows []int
}

// Snapshot releases the read lock on every path.
func (t *TableShard) Snapshot() []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[:len(t.rows):len(t.rows)]
}

// SnapshotIf releases the read lock on the early-return path too — the
// disciplined counterpart of the sick fixture's leak.
func (t *TableShard) SnapshotIf(max int) []int {
	t.mu.RLock()
	if len(t.rows) > max {
		t.mu.RUnlock()
		return nil
	}
	rows := t.rows[:len(t.rows):len(t.rows)]
	t.mu.RUnlock()
	return rows
}

// Flush detaches the batch under the lock and sends it after the
// release, so a slow consumer never holds up writers.
func (t *TableShard) Flush(out chan []int) {
	t.mu.Lock()
	batch := t.rows
	t.rows = nil
	t.mu.Unlock()
	out <- batch
}

// StartFlusher ranges over a closable tick channel, so closing ticks
// shuts the flusher down.
func (t *TableShard) StartFlusher(ticks <-chan struct{}, out chan []int) {
	go func() {
		for range ticks {
			t.Flush(out)
		}
	}()
}

// CampaignQueue is the disciplined counterpart of the sick fixture's
// admission surface: early returns release the lock, per-request
// goroutines observe a stop channel.
type CampaignQueue struct {
	mu    sync.Mutex
	queue []int
	max   int
}

// HandleSubmit releases the admission lock on the queue-full early
// return too, via defer.
func (q *CampaignQueue) HandleSubmit(id int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.queue) >= q.max {
		return false
	}
	q.queue = append(q.queue, id)
	return true
}

// HandleWatch ties the per-request progress publisher to a stop
// channel (the request context's Done surrogate), so a hung-up
// client retires its goroutine.
func (q *CampaignQueue) HandleWatch(stop <-chan struct{}, events chan<- int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case events <- q.depth():
			}
		}
	}()
}

func (q *CampaignQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

// tableAt2 mirrors the r²-indexed kernel lookups.
//
//unit: r2=Å2
func tableAt2(r2 float64) float64 {
	return r2
}

// LookupEnergy squares the distance before the r²-indexed lookup — the
// unit-correct counterpart of the sick fixture's r/r² swap.
//
//unit: r=Å
func LookupEnergy(r float64) float64 {
	return tableAt2(r * r)
}

// soaLane reads one pose's coordinate component out of a batched SoA
// lane.
//
//unit: result=Å
func soaLane(lane []float64, k int) float64 {
	return lane[k]
}

// BatchIntraAccum is the unit-correct batched pair-major kernel: the
// squared pair distance goes to the r²-indexed lookup untouched, the
// disciplined counterpart of the sick fixture's sqrt-then-lookup swap.
func BatchIntraAccum(xs, ys, zs []float64, stride, i, j int, out []float64) {
	for p := range out {
		base := p * stride
		dx := soaLane(xs, base+i) - soaLane(xs, base+j)
		dy := soaLane(ys, base+i) - soaLane(ys, base+j)
		dz := soaLane(zs, base+i) - soaLane(zs, base+j)
		r2 := dx*dx + dy*dy + dz*dz
		out[p] += tableAt2(r2)
	}
}

// SortedKeys collects map keys and sorts them, so the iteration order
// never reaches the output — the sanitized idiom detflow accepts.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ScoreWindowExact keeps the bit-identity promise: float64 arithmetic
// end to end, with float32 storage only widened before use.
//
//exact: bit-identical to the per-pose path
func ScoreWindowExact(out []float64, lattice []float32) {
	acc := 0.0
	for _, v := range lattice {
		acc += float64(v)
	}
	out[0] = acc
}

// ScoreWindowFast carries no exactness directive, so its float32
// kernel is the tolerance fast path exactflow leaves alone.
func ScoreWindowFast(out []float32, terms []float64) {
	var acc float32
	for _, t := range terms {
		acc += float32(t)
	}
	out[0] = acc
}

// WindowGatherCount is the unit-correct window admission loop: the
// squared displacement is compared against the squared bound, so both
// sides of the test carry Å² — the disciplined counterpart of the sick
// fixture's Å-vs-Å² admission swap.
//
//unit: bound=Å
func WindowGatherCount(xs, ys, zs, ax, ay, az []float64, bound float64) int {
	n := 0
	for k := range xs {
		dx := soaLane(xs, k) - soaLane(ax, k)
		dy := soaLane(ys, k) - soaLane(ay, k)
		dz := soaLane(zs, k) - soaLane(az, k)
		d2 := dx*dx + dy*dy + dz*dz
		if d2 <= bound*bound {
			n++
		}
	}
	return n
}
