// Command gendata materializes the synthetic Peptidase_CA workload on
// disk: one PDB per receptor and one SDF per ligand of Table 2,
// exactly the inputs SciDock consumes. Useful for inspecting the
// substitution dataset (DESIGN.md §2) or feeding the files to
// external tools.
//
//	gendata -out ./dataset            # all 238 receptors + 42 ligands
//	gendata -out ./dataset -receptors 5 -ligands 2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chem/formats"
	"repro/internal/data"
)

func main() {
	var (
		out       = flag.String("out", "dataset", "output directory")
		receptors = flag.Int("receptors", len(data.ReceptorCodes), "number of receptors to write")
		ligands   = flag.Int("ligands", len(data.LigandCodes), "number of ligands to write")
		large     = flag.Bool("large", true, "also write the L2-overflow benchmark pair (receptor 9XLR, ligand XL1)")
	)
	flag.Parse()
	if err := run(*out, *receptors, *ligands, *large); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(out string, receptors, ligands int, large bool) error {
	ds, err := data.Small(receptors, ligands)
	if err != nil {
		return err
	}
	recDir := filepath.Join(out, "receptors")
	ligDir := filepath.Join(out, "ligands")
	for _, dir := range []string{recDir, ligDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	for _, code := range ds.Receptors {
		mol, info := data.GenerateReceptor(code)
		f, err := os.Create(filepath.Join(recDir, code+".pdb"))
		if err != nil {
			return err
		}
		if err := formats.WritePDB(f, mol); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		note := ""
		if info.ContainsHg {
			note = "  [contains Hg]"
		}
		fmt.Printf("receptor %s: %d atoms, %d residues, class %s%s\n",
			code, mol.NumAtoms(), info.Residues, info.Class, note)
	}
	for _, code := range ds.Ligands {
		mol, info := data.GenerateLigand(code)
		f, err := os.Create(filepath.Join(ligDir, code+".sdf"))
		if err != nil {
			return err
		}
		if err := formats.WriteSDF(f, mol); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		note := ""
		if info.Problematic {
			note = "  [problematic]"
		}
		fmt.Printf("ligand %s: %d atoms (%d heavy)%s\n",
			code, mol.NumAtoms(), mol.HeavyAtomCount(), note)
	}
	if large {
		rec, rinfo := data.GenerateLargeReceptor()
		f, err := os.Create(filepath.Join(recDir, rinfo.Code+".pdb"))
		if err != nil {
			return err
		}
		if err := formats.WritePDB(f, rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("receptor %s: %d atoms, %d residues, class %s  [L2-overflow pair]\n",
			rinfo.Code, rec.NumAtoms(), rinfo.Residues, rinfo.Class)
		lig, linfo := data.GenerateLargeLigand()
		f, err = os.Create(filepath.Join(ligDir, linfo.Code+".sdf"))
		if err != nil {
			return err
		}
		if err := formats.WriteSDF(f, lig); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("ligand %s: %d atoms (%d heavy)  [L2-overflow pair]\n",
			linfo.Code, lig.NumAtoms(), lig.HeavyAtomCount())
	}
	fmt.Printf("wrote %d receptors and %d ligands under %s\n",
		len(ds.Receptors), len(ds.Ligands), out)
	return nil
}
