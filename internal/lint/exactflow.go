package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ExactFlow guards the bit-exactness contracts. A function whose doc
// comment carries an `//exact:` directive promises its result is
// bit-identical to a reference path (the batched scorers against the
// per-pose scorers, the SoA kinematics against the AoS path); that
// promise dies the moment a float32 value participates in the
// arithmetic, because float32 rounding is exactly the freedom the
// tolerance-bounded fast path (ScoreBatchFast) paid for with its
// error envelope. The analyzer flags, inside the body of a directive-
// marked function:
//
//   - conversions to a float32-based type (narrowing introduces
//     rounding the reference path never performs);
//   - binary arithmetic (+ - * /) on float32 operands;
//   - compound assignments (+= -= *= /=) to float32 operands.
//
// Widening float64(x32) is exempt — reading a float32 source (for
// example a single-precision grid lattice) and widening it before any
// arithmetic is exactly how the exact paths are specified to consume
// such storage. Declaring or passing float32 values is likewise fine;
// only arithmetic and narrowing inside the exact function break the
// contract. Code that legitimately needs float32 belongs in a
// function without the directive (the fast kernels), or under a
// //lint:ignore exactflow <reason>.
var ExactFlow = &Analyzer{
	Name:     "exactflow",
	Doc:      "flags float32 narrowing and arithmetic inside //exact: bit-identical functions",
	Severity: Error,
	Run:      runExactFlow,
}

// exactDirective reports whether the function's doc comment carries
// an //exact: directive (directive form: no space after //).
func exactDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//exact:") {
			return true
		}
	}
	return false
}

func runExactFlow(pass *Pass) {
	pass.Inspect(func(n ast.Node, stack []ast.Node) {
		var inExact bool
		for i := len(stack) - 1; i >= 0; i-- {
			if fd, ok := stack[i].(*ast.FuncDecl); ok {
				inExact = exactDirective(fd)
				break
			}
		}
		if !inExact || pass.IsTestFile(n.Pos()) {
			return
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if len(e.Args) != 1 {
				return
			}
			tv, ok := pass.Info.Types[e.Fun]
			if !ok || !tv.IsType() {
				return
			}
			if !isFloat32(tv.Type) || isFloat32(pass.TypeOf(e.Args[0])) {
				return // not a narrowing to float32
			}
			pass.Reportf(e.Pos(),
				"float32 conversion inside //exact: function; narrowing breaks bit-identity — move it to the tolerance fast path or annotate //lint:ignore exactflow <reason>")
		case *ast.BinaryExpr:
			switch e.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				return
			}
			if !isFloat32(pass.TypeOf(e.X)) && !isFloat32(pass.TypeOf(e.Y)) {
				return
			}
			pass.Reportf(e.OpPos,
				"float32 %s arithmetic inside //exact: function; float32 rounding breaks bit-identity — move it to the tolerance fast path or annotate //lint:ignore exactflow <reason>", e.Op)
		case *ast.AssignStmt:
			switch e.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return
			}
			if len(e.Lhs) != 1 || !isFloat32(pass.TypeOf(e.Lhs[0])) {
				return
			}
			pass.Reportf(e.TokPos,
				"float32 %s inside //exact: function; float32 rounding breaks bit-identity — move it to the tolerance fast path or annotate //lint:ignore exactflow <reason>", e.Tok)
		}
	})
}

func isFloat32(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float32
}
