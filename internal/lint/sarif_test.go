package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// sarifFixtureDiags is a fixed diagnostic set spanning both severities
// and several analyzers.
func sarifFixtureDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "dimcheck", Severity: Error, Sev: "error",
			Pos:     token.Position{Filename: "internal/dock/ad4/score.go", Line: 165, Column: 19},
			Message: `Å value passed to Å² parameter "r2" of At2 (r vs r² mixup?)`,
		},
		{
			Analyzer: "lockflow", Severity: Error, Sev: "error",
			Pos:     token.Position{Filename: "internal/prov/table.go", Line: 42, Column: 3},
			Message: "t.mu.RLock() acquired at internal/prov/table.go:38:2 is still held when this path returns",
		},
		{
			Analyzer: "ctxleak", Severity: Warn, Sev: "warn",
			Pos:     token.Position{Filename: "internal/engine/pool.go", Line: 7, Column: 2},
			Message: "infinite worker loop with no shutdown path",
		},
	}
}

// TestWriteSARIFGolden pins the exact SARIF bytes for a fixed
// diagnostic table against testdata/golden.sarif. Regenerate with
// `go test -run TestWriteSARIFGolden -update ./internal/lint`.
func TestWriteSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, Analyzers(), sarifFixtureDiags()); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	const goldenPath = "testdata/golden.sarif"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteSARIFStructure checks the structural claims table-style:
// per-case diagnostics in, decoded invariants out.
func TestWriteSARIFStructure(t *testing.T) {
	type decoded struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID      string `json:"id"`
						Default struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					Physical struct {
						Artifact struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}

	cases := []struct {
		name        string
		diags       []Diagnostic
		wantResults int
	}{
		{"empty_log_keeps_rules", nil, 0},
		{"full_fixture", sarifFixtureDiags(), 3},
		{"unknown_analyzer_skipped", []Diagnostic{
			{Analyzer: "notarule", Severity: Error, Sev: "error",
				Pos: token.Position{Filename: "x.go", Line: 1}, Message: "m"},
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSARIF(&buf, Analyzers(), tc.diags); err != nil {
				t.Fatalf("WriteSARIF: %v", err)
			}
			var log decoded
			if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
				t.Fatalf("output is not valid JSON: %v", err)
			}
			if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
				t.Errorf("bad version/schema: %q %q", log.Version, log.Schema)
			}
			if len(log.Runs) != 1 {
				t.Fatalf("got %d runs, want 1", len(log.Runs))
			}
			run := log.Runs[0]
			if run.Tool.Driver.Name != "scilint" {
				t.Errorf("driver name = %q", run.Tool.Driver.Name)
			}
			if len(run.Tool.Driver.Rules) != len(Analyzers()) {
				t.Errorf("got %d rules, want %d (every analyzer, findings or not)",
					len(run.Tool.Driver.Rules), len(Analyzers()))
			}
			for i, r := range run.Tool.Driver.Rules {
				if r.ID != Analyzers()[i].Name {
					t.Errorf("rule[%d] = %q, want registry order %q", i, r.ID, Analyzers()[i].Name)
				}
				if r.Default.Level != "error" && r.Default.Level != "warning" {
					t.Errorf("rule %q has bad default level %q", r.ID, r.Default.Level)
				}
			}
			if len(run.Results) != tc.wantResults {
				t.Fatalf("got %d results, want %d", len(run.Results), tc.wantResults)
			}
			for _, res := range run.Results {
				if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
					t.Errorf("result ruleIndex %d does not point at %q", res.RuleIndex, res.RuleID)
				}
				if res.Level != "error" && res.Level != "warning" {
					t.Errorf("bad result level %q", res.Level)
				}
				if len(res.Locations) != 1 || res.Locations[0].Physical.Region.StartLine == 0 ||
					res.Locations[0].Physical.Artifact.URI == "" {
					t.Errorf("result without a physical location: %+v", res)
				}
			}
		})
	}
}
