package prep

import (
	"errors"
	"fmt"

	"repro/internal/chem"
)

// ErrUnsupportedAtom is wrapped by preparation errors caused by atoms
// the docking programs cannot parameterize (e.g. Hg). The real
// AutoDock tools hang in a "looping state" on these inputs (§V.C);
// the engine maps this error to that behaviour unless the Hg guard
// routine is enabled.
var ErrUnsupportedAtom = errors.New("prep: unsupported atom for docking")

// ConvertSDFToMol2 is SciDock activity 1 (Babel): it clones the ligand,
// perceives bonds when the input carried none, and assigns
// Gasteiger-like partial charges, yielding the Sybyl Mol2
// representation consumed by ligand preparation.
func ConvertSDFToMol2(lig *chem.Molecule) (*chem.Molecule, error) {
	if err := lig.Validate(); err != nil {
		return nil, fmt.Errorf("prep: babel: %w", err)
	}
	if lig.NumAtoms() == 0 {
		return nil, fmt.Errorf("prep: babel: ligand %q is empty", lig.Name)
	}
	out := lig.Clone()
	if len(out.Bonds) == 0 {
		out.PerceiveBonds()
	}
	AssignGasteigerCharges(out)
	return out, nil
}

// PreparedLigand is the output of activity 2: a PDBQT-ready molecule
// (non-polar hydrogens merged, AutoDock types assigned) plus its
// torsion tree.
type PreparedLigand struct {
	Mol  *chem.Molecule
	Tree *chem.TorsionTree
}

// PrepareLigand is SciDock activity 2 (prepare_ligand4.py): it merges
// non-polar hydrogens into their heavy neighbours, assigns AutoDock
// atom types and builds the rotatable-bond tree.
func PrepareLigand(mol2 *chem.Molecule) (*PreparedLigand, error) {
	if err := checkSupported(mol2); err != nil {
		return nil, err
	}
	m := mergeNonPolarHydrogens(mol2)
	assignAutoDockTypes(m)
	tree, err := chem.BuildTorsionTree(m)
	if err != nil {
		return nil, fmt.Errorf("prep: ligand %q: %w", m.Name, err)
	}
	return &PreparedLigand{Mol: m, Tree: tree}, nil
}

// PrepareReceptor is SciDock activity 3 (prepare_receptor4.py): it
// assigns charges where missing and AutoDock atom types, returning the
// rigid receptor ready for AutoGrid. Receptors containing unsupported
// elements return ErrUnsupportedAtom-wrapped errors.
func PrepareReceptor(pdb *chem.Molecule) (*chem.Molecule, error) {
	if err := pdb.Validate(); err != nil {
		return nil, fmt.Errorf("prep: receptor: %w", err)
	}
	if pdb.NumAtoms() == 0 {
		return nil, fmt.Errorf("prep: receptor %q is empty", pdb.Name)
	}
	if err := checkSupported(pdb); err != nil {
		return nil, err
	}
	m := pdb.Clone()
	// Receptor charges come from the residue templates in MGLTools;
	// our synthetic receptors carry them already. Fill any zeros with
	// a neutral default.
	hasCharge := false
	for _, a := range m.Atoms {
		if a.Charge != 0 {
			hasCharge = true
			break
		}
	}
	if !hasCharge && len(m.Bonds) > 0 {
		AssignGasteigerCharges(m)
	}
	assignAutoDockTypes(m)
	return m, nil
}

// checkSupported rejects molecules carrying elements without docking
// parameters. The error names the first offending atom, mirroring the
// provenance query the paper used to locate Hg receptors.
func checkSupported(m *chem.Molecule) error {
	for i, a := range m.Atoms {
		if !a.Element.Info().DockSupported {
			return fmt.Errorf("%w: molecule %q atom %d (%s, element %s)",
				ErrUnsupportedAtom, m.Name, i, a.Name, a.Element)
		}
	}
	return nil
}

// mergeNonPolarHydrogens removes hydrogens bonded to carbon, adding
// their charge to the carbon (AutoDock's united-atom convention).
// Hydrogens on N/O/S remain as polar HD atoms.
func mergeNonPolarHydrogens(src *chem.Molecule) *chem.Molecule {
	adj := src.Adjacency()
	drop := make([]bool, len(src.Atoms))
	extraQ := make([]float64, len(src.Atoms))
	for i, a := range src.Atoms {
		if a.Element.Normalize() != chem.Hydrogen {
			continue
		}
		for _, j := range adj[i] {
			if src.Atoms[j].Element.Normalize() == chem.Carbon {
				drop[i] = true
				extraQ[j] += a.Charge
				break
			}
		}
	}
	remap := make([]int, len(src.Atoms))
	m := &chem.Molecule{Name: src.Name}
	for i, a := range src.Atoms {
		if drop[i] {
			remap[i] = -1
			continue
		}
		a.Charge = clampCharge(a.Charge + extraQ[i])
		remap[i] = len(m.Atoms)
		m.Atoms = append(m.Atoms, a)
	}
	for _, b := range src.Bonds {
		na, nb := remap[b.A], remap[b.B]
		if na < 0 || nb < 0 {
			continue
		}
		m.Bonds = append(m.Bonds, chem.Bond{A: na, B: nb, Order: b.Order})
	}
	return m
}

// assignAutoDockTypes refines element-default types using bonding
// context: aromatic carbons → A, H-bearing nitrogens stay N while bare
// ring/chain nitrogens become acceptors NA, oxygens are always
// acceptors OA, sulfur becomes SA when not bonded to hydrogen, and
// hydrogens become HD (all remaining after the non-polar merge are on
// heteroatoms).
func assignAutoDockTypes(m *chem.Molecule) {
	adj := m.Adjacency()
	aromatic := make([]bool, len(m.Atoms))
	for _, b := range m.Bonds {
		if b.Order == chem.Aromatic {
			aromatic[b.A] = true
			aromatic[b.B] = true
		}
	}
	hasH := func(i int) bool {
		for _, j := range adj[i] {
			if m.Atoms[j].Element.Normalize() == chem.Hydrogen {
				return true
			}
		}
		return false
	}
	for i := range m.Atoms {
		e := m.Atoms[i].Element.Normalize()
		switch e {
		case chem.Hydrogen:
			m.Atoms[i].Type = chem.TypeHD
		case chem.Carbon:
			if aromatic[i] {
				m.Atoms[i].Type = chem.TypeA
			} else {
				m.Atoms[i].Type = chem.TypeC
			}
		case chem.Nitrogen:
			if hasH(i) {
				m.Atoms[i].Type = chem.TypeN
			} else {
				m.Atoms[i].Type = chem.TypeNA
			}
		case chem.Oxygen:
			m.Atoms[i].Type = chem.TypeOA
		case chem.Sulfur:
			if hasH(i) {
				m.Atoms[i].Type = chem.TypeS
			} else {
				m.Atoms[i].Type = chem.TypeSA
			}
		default:
			m.Atoms[i].Type = chem.TypeForElement(e)
		}
	}
}
