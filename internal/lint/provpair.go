package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"
)

// ProvPair enforces the PROV-Wf activation-pairing invariant: every
// provenance activation that is *started* in a function must be
// *closed* (finished, failed or aborted) on every control-flow path
// out of that function. The paper's ~10% transient-failure
// re-execution rate is only recoverable because an interrupted
// activation is visible as RUNNING in hactivation; an activation left
// RUNNING by a *completed* code path is indistinguishable from a
// crash and corrupts both re-execution and every tet/makespan query.
//
// A "start" is a call into the prov package matching Begin*/Start*/
// Open*, or InsertActivation with a RUNNING status argument. A
// "close" is a prov call matching Close*/End*/Finish*/Fail*, which
// may be deferred. The check is structural (if/else, blocks, loops,
// switches and returns), not a full CFG: a close inside a loop or
// switch is treated optimistically as closing, and a return directly
// guarded by the start's own error check counts as the start having
// failed (no activation exists on that path).
var ProvPair = &Analyzer{
	Name:     "provpair",
	Doc:      "flags provenance activation starts not paired with a close on every path",
	Severity: Error,
	Run:      runProvPair,
}

var (
	provBeginRE = regexp.MustCompile(`^(Begin|Start|Open)`)
	provCloseRE = regexp.MustCompile(`^(Close|End|Finish|Fail)`)
)

func runProvPair(pass *Pass) {
	pass.Inspect(func(n ast.Node, _ []ast.Node) {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil || pass.IsTestFile(body.Pos()) {
			return
		}
		st := &ppState{}
		c := &ppChecker{pass: pass}
		c.stmts(body.List, st)
		if st.began && !st.closed && !st.terminated {
			pass.Reportf(st.beganPos,
				"provenance activation started here is not closed on every path to function exit; call a Close/End/Fail API or defer one")
		}
	})
}

type ppState struct {
	began      bool
	beganPos   token.Pos
	closed     bool
	terminated bool     // this path ends in return/panic
	errVars    []string // error idents assigned from the latest start
}

func (s ppState) fork() ppState {
	c := s
	c.errVars = append([]string(nil), s.errVars...)
	return c
}

type ppChecker struct {
	pass *Pass
}

// provCall classifies a call as start (+1), close (-1) or neither (0).
func (c *ppChecker) provCall(call *ast.CallExpr) int {
	fn := c.pass.calleeFunc(call)
	if fn == nil {
		return 0
	}
	path := pkgPathOf(fn)
	if path != "prov" && !strings.HasSuffix(path, "/prov") {
		return 0
	}
	name := fn.Name()
	switch {
	case provBeginRE.MatchString(name):
		return 1
	case provCloseRE.MatchString(name):
		return -1
	case name == "InsertActivation":
		for _, arg := range call.Args {
			if v := constValue(c.pass, arg); v != nil &&
				v.Kind() == constant.String && constant.StringVal(v) == "RUNNING" {
				return 1
			}
		}
	}
	return 0
}

// scanExpr finds start/close calls in an expression tree, skipping
// function literals (their bodies are analyzed as their own functions).
func (c *ppChecker) scanExpr(n ast.Node) (begin, end *ast.CallExpr) {
	if n == nil {
		return nil, nil
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			switch c.provCall(call) {
			case 1:
				if begin == nil {
					begin = call
				}
			case -1:
				if end == nil {
					end = call
				}
			}
		}
		return true
	})
	return begin, end
}

func (c *ppChecker) stmts(list []ast.Stmt, st *ppState) {
	for _, s := range list {
		c.stmt(s, st)
	}
}

func (c *ppChecker) stmt(s ast.Stmt, st *ppState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.flat(s, nil, st)
	case *ast.AssignStmt:
		c.flat(s, s, st)
	case *ast.DeferStmt:
		if b, cl := c.scanExpr(s.Call); cl != nil || deferredClose(c, s) {
			st.closed = true
		} else if b != nil {
			st.began, st.beganPos, st.closed = true, b.Pos(), false
		}
	case *ast.ReturnStmt:
		// `return db.CloseActivation(...)` closes on this path.
		if _, end := c.scanExpr(s); end != nil {
			st.closed = true
		}
		if st.began && !st.closed {
			c.pass.Reportf(s.Pos(),
				"return leaves provenance activation open: no Close/End/Fail call on this path")
		}
		st.terminated = true
	case *ast.IfStmt:
		c.ifStmt(s, st)
	case *ast.BlockStmt:
		c.stmts(s.List, st)
	case *ast.ForStmt:
		sub := st.fork()
		if s.Body != nil {
			c.stmts(s.Body.List, &sub)
		}
		mergeLoop(st, sub)
	case *ast.RangeStmt:
		sub := st.fork()
		if s.Body != nil {
			c.stmts(s.Body.List, &sub)
		}
		mergeLoop(st, sub)
	case *ast.SwitchStmt:
		c.clauses(clauseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.TypeSwitchStmt:
		c.clauses(clauseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.SelectStmt:
		c.clauses(clauseBodies(s.Body), true, st)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, st)
	case *ast.GoStmt:
		// The goroutine body is its own function for this analysis.
	}
}

// flat handles straight-line statements: a close marks the state
// closed, a start arms it. Assignments remember which error variables
// the start's result landed in, so the next `if err != nil { return }`
// is recognized as the start-failed path.
func (c *ppChecker) flat(s ast.Stmt, as *ast.AssignStmt, st *ppState) {
	b, cl := c.scanExpr(s)
	if cl != nil {
		st.closed = true
		return
	}
	if b == nil {
		return
	}
	st.began, st.beganPos, st.closed = true, b.Pos(), false
	st.errVars = nil
	if as != nil {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				st.errVars = append(st.errVars, id.Name)
			}
		}
	}
}

// deferredClose matches `defer func() { ... Close ... }()`.
func deferredClose(c *ppChecker, d *ast.DeferStmt) bool {
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok && c.provCall(call) == -1 {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

func (c *ppChecker) ifStmt(s *ast.IfStmt, st *ppState) {
	beginHere, closeHere := c.scanExpr(s.Init)
	if b, cl := c.scanExpr(s.Cond); beginHere == nil && b != nil {
		beginHere = b
	} else if closeHere == nil && cl != nil {
		closeHere = cl
	}
	if closeHere != nil {
		st.closed = true
	}

	failGuard := beginHere != nil || isErrGuard(s.Cond, st.errVars)

	bodySt := st.fork()
	if failGuard {
		// Inside the guard the start failed: no activation to close.
		bodySt.began = false
	}
	c.stmts(s.Body.List, &bodySt)

	elseSt := st.fork()
	hasElse := s.Else != nil
	if hasElse {
		c.stmt(s.Else, &elseSt)
	}

	if beginHere != nil {
		// Start in if-init/cond: armed after the guard completes.
		st.began, st.beganPos, st.closed = true, beginHere.Pos(), false
		st.errVars = nil
		if bodySt.terminated && hasElse && elseSt.terminated {
			st.terminated = true
		}
		return
	}
	merge(st, bodySt, elseSt, hasElse)
}

// clauses merges switch/select case bodies.
func (c *ppChecker) clauses(bodies [][]ast.Stmt, exhaustive bool, st *ppState) {
	if len(bodies) == 0 {
		return
	}
	allClosed := exhaustive
	allTerminated := exhaustive
	anyBegan := false
	var beganPos token.Pos
	for _, body := range bodies {
		sub := st.fork()
		c.stmts(body, &sub)
		if !sub.terminated {
			allTerminated = false
			if !sub.closed {
				allClosed = false
			}
		}
		// Only a clause that falls through with an open activation
		// obligates the post-switch code: a clause that closed, or that
		// terminated (an open-at-return is already reported at the
		// return site), cannot leak past the switch.
		if sub.began && !sub.closed && !sub.terminated && !st.began {
			anyBegan = true
			beganPos = sub.beganPos
		}
	}
	if allClosed {
		st.closed = true
	}
	if allTerminated {
		st.terminated = true
	}
	if anyBegan && !st.began {
		// A clause started an activation; conservatively require the
		// fall-through code to close it.
		st.began, st.beganPos, st.closed = true, beganPos, false
	}
}

func clauseBodies(b *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, cl := range b.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			out = append(out, cl.Body)
		case *ast.CommClause:
			out = append(out, cl.Body)
		}
	}
	return out
}

func hasDefaultClause(b *ast.BlockStmt) bool {
	for _, cl := range b.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isErrGuard matches `x != nil` where x is one of the error variables
// the latest start assigned.
func isErrGuard(cond ast.Expr, errVars []string) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	id, ok := ast.Unparen(be.X).(*ast.Ident)
	nilSide, ok2 := ast.Unparen(be.Y).(*ast.Ident)
	if !ok || !ok2 || nilSide.Name != "nil" {
		return false
	}
	for _, v := range errVars {
		if id.Name == v {
			return true
		}
	}
	return false
}

// merge folds the two branches of an if back into the parent state.
func merge(st *ppState, body, els ppState, hasElse bool) {
	liveBody := !body.terminated
	liveElse := hasElse && !els.terminated

	switch {
	case !hasElse:
		// Join of the taken-branch state and the fall-through state.
		if liveBody {
			if body.began && !st.began {
				st.began, st.beganPos = true, body.beganPos
				st.closed = body.closed
			} else if st.began {
				// Guaranteed closed only if closed on both paths.
				st.closed = st.closed && body.closed
			}
		}
	case liveBody && liveElse:
		st.began = body.began || els.began
		if body.began {
			st.beganPos = body.beganPos
		} else if els.began {
			st.beganPos = els.beganPos
		}
		st.closed = body.closed && els.closed
	case liveBody:
		*st = body.fork()
		st.terminated = false
	case liveElse:
		*st = els.fork()
		st.terminated = false
	default:
		st.terminated = true
	}
}

// mergeLoop folds a loop body back in: starts inside the loop must be
// closed inside it; a close inside the loop is treated optimistically.
func mergeLoop(st *ppState, sub ppState) {
	if sub.began && !sub.closed && !sub.terminated && !st.began {
		st.began, st.beganPos, st.closed = true, sub.beganPos, false
	}
	if st.began && sub.closed {
		st.closed = true
	}
}
