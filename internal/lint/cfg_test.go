package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math/rand"
	"strings"
	"testing"
)

// parseFunc parses "package p\n\n"+src and returns the declaration of
// func f plus the fileset (no type checking: BuildCFG is syntactic).
func parseFunc(t *testing.T, src string) (*token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_fixture.go", "package p\n\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse CFG fixture: %v\n%s", err, src)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fset, fd
		}
	}
	t.Fatalf("no func f in fixture:\n%s", src)
	return nil, nil
}

// TestCFGGoldenDumps pins the exact block/edge structure the builder
// produces for each control construct. The dumps are load-bearing: the
// dataflow analyzers' merge behavior depends on these edges.
func TestCFGGoldenDumps(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"straight_line", `func f(a, b int) int {
	x := a + b
	x *= 2
	return x
}`, `b0 entry: [x := a + b; x *= 2; return x] -> b1
b1 exit:
`},
		{"if_else", `func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, `b0 entry: [x := 0; c] -> b2 b3
b1 if.join: [return x] -> b4
b2 if.then: [x = 1] -> b1
b3 if.else: [x = 2] -> b1
b4 exit:
`},
		{"if_no_else", `func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	return x
}`, `b0 entry: [x := 0; c] -> b1 b2
b1 if.join: [return x] -> b3
b2 if.then: [x = 1] -> b1
b3 exit:
`},
		{"for_full", `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 9 {
			break
		}
		s += i
	}
	return s
}`, `b0 entry: [s := 0; i := 0] -> b1
b1 for.head: [i < n] -> b2 b3
b2 for.exit: [return s] -> b9
b3 for.body: [i == 3] -> b5 b6
b4 for.post: [i++] -> b1
b5 if.join: [i == 9] -> b7 b8
b6 if.then: [continue] -> b4
b7 if.join: [s += i] -> b4
b8 if.then: [break] -> b2
b9 exit:
`},
		{"for_infinite_with_break", `func f() {
	for {
		if done() {
			break
		}
		step()
	}
}`, `b0 entry: -> b1
b1 for.head: -> b3
b2 for.exit: -> b6
b3 for.body: [done()] -> b4 b5
b4 if.join: [step()] -> b1
b5 if.then: [break] -> b2
b6 exit:
`},
		{"range_over_slice", `func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`, `b0 entry: [s := 0] -> b1
b1 range.head: [xs] -> b2 b3
b2 range.exit: [return s] -> b4
b3 range.body: [s += x] -> b1
b4 exit:
`},
		{"switch_fallthrough_default", `func f(k int) int {
	switch k {
	case 1:
		k++
		fallthrough
	case 2:
		k--
	default:
		k = 0
	}
	return k
}`, `b0 entry: [k] -> b2 b3 b4
b1 switch.exit: [return k] -> b5
b2 case: [k++; fallthrough] -> b3
b3 case: [k--] -> b1
b4 case.default: [k = 0] -> b1
b5 exit:
`},
		{"switch_no_default", `func f(k int) int {
	switch {
	case k > 0:
		k = 1
	}
	return k
}`, `b0 entry: -> b1 b2
b1 switch.exit: [return k] -> b3
b2 case: [k = 1] -> b1
b3 exit:
`},
		{"type_switch", `func f(v any) int {
	switch v.(type) {
	case int:
		return 1
	default:
		return 0
	}
}`, `b0 entry: [v.(type)] -> b2 b3
b1 switch.exit: -> b4
b2 typecase: [return 1] -> b4
b3 typecase.default: [return 0] -> b4
b4 exit:
`},
		{"select_with_default", `func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case b <- 1:
		return 1
	default:
		return 0
	}
}`, `b0 entry: -> b1
b1 select.head: -> b3 b4 b5
b2 select.exit: -> b6
b3 select.case: [x := <-a; return x] -> b6
b4 select.case: [b <- 1; return 1] -> b6
b5 select.default: [return 0] -> b6
b6 exit:
`},
		{"defer_and_panic", `func f(c bool) int {
	defer cleanup()
	if c {
		panic("boom")
	}
	return 1
}`, `b0 entry: [defer cleanup(); c] -> b1 b2
b1 if.join: [return 1] -> b3
b2 if.then: [panic("boom")] -> b3
b3 exit:
`},
		{"labeled_break_continue", `func f(m [][]int) int {
	s := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			s += v
		}
	}
	return s
}`, `b0 entry: [s := 0] -> b1
b1 label.outer: -> b2
b2 range.head: [m] -> b3 b4
b3 range.exit: [return s] -> b12
b4 range.body: -> b5
b5 range.head: [row] -> b6 b7
b6 range.exit: -> b2
b7 range.body: [v < 0] -> b8 b9
b8 if.join: [v == 99] -> b10 b11
b9 if.then: [continue outer] -> b2
b10 if.join: [s += v] -> b5
b11 if.then: [break outer] -> b3
b12 exit:
`},
		{"goto_forward_and_back", `func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	if i == 0 {
		goto done
	}
	i *= 2
done:
	return i
}`, `b0 entry: [i := 0] -> b1
b1 label.loop: [i < n] -> b2 b3
b2 if.join: [i == 0] -> b4 b5
b3 if.then: [i++; goto loop] -> b1
b4 if.join: [i *= 2] -> b6
b5 if.then: [goto done] -> b6
b6 label.done: [return i] -> b7
b7 exit:
`},
		{"code_after_return_unreachable", `func f() int {
	return 1
	x := 2
	return x
}`, `b0 entry: [return 1] -> b2
b1 unreachable: [x := 2; return x] -> b2
b2 exit:
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, fd := parseFunc(t, tc.src)
			got := BuildCFG(fd.Body, nil).Dump()
			if got != tc.want {
				t.Errorf("CFG dump mismatch\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGExitInvariants checks the structural invariants every
// analyzer relies on: one exit block with no successors, FallsOff set
// exactly when the body can run off the closing brace, and defers
// recorded in syntactic order.
func TestCFGExitInvariants(t *testing.T) {
	_, fd := parseFunc(t, `func f(c bool) {
	defer first()
	if c {
		defer second()
		return
	}
}`)
	g := BuildCFG(fd.Body, nil)
	if len(g.Exit.Succs) != 0 {
		t.Errorf("exit block has successors: %v", g.Exit.Succs)
	}
	if len(g.Exit.Nodes) != 0 {
		t.Errorf("exit block holds nodes: %v", g.Exit.Nodes)
	}
	if g.FallsOff == nil {
		t.Error("body without a final return must set FallsOff")
	}
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	if g.Defers[0].Pos() > g.Defers[1].Pos() {
		t.Error("defers not in syntactic order")
	}

	_, fd = parseFunc(t, `func f() int { return 1 }`)
	if g := BuildCFG(fd.Body, nil); g.FallsOff != nil {
		t.Error("body ending in return on every path must not set FallsOff")
	}
}

// TestCFGReversePostorder checks RPO starts at the entry and orders
// every block before its successors on at least one acyclic path
// (entry first, each non-entry reachable block preceded by a pred).
func TestCFGReversePostorder(t *testing.T) {
	_, fd := parseFunc(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	g := BuildCFG(fd.Body, nil)
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatalf("RPO must start at entry")
	}
	pos := map[*Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	for _, b := range rpo[1:] {
		earlierPred := false
		for _, p := range b.Preds {
			if pi, ok := pos[p]; ok && pi < pos[b] {
				earlierPred = true
			}
		}
		if !earlierPred {
			t.Errorf("block b%d has no earlier predecessor in RPO", b.Index)
		}
	}
}

// --- statement-partition property --------------------------------------

// leafStmts collects the statements the builder must place into blocks:
// every non-container statement, recursing through the control
// statements' structure exactly as the builder does (init/post clauses
// are leaves, labeled statements unwrap, empty statements vanish).
func leafStmts(list []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	var walk func(s ast.Stmt)
	walkList := func(l []ast.Stmt) {
		for _, s := range l {
			walk(s)
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.IfStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			walkList(s.Body.List)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			walkList(s.Body.List)
			if s.Post != nil {
				walk(s.Post)
			}
		case *ast.RangeStmt:
			walkList(s.Body.List)
		case *ast.SwitchStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			out = append(out, s.Assign) // evaluated as the switch head node
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					walk(cc.Comm)
				}
				walkList(cc.Body)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.EmptyStmt:
			// dropped by the builder
		default:
			out = append(out, s)
		}
	}
	walkList(list)
	return out
}

// checkStmtPartition asserts every leaf statement of the body lands in
// exactly one block's node list, exactly once.
func checkStmtPartition(t *testing.T, src string, fset *token.FileSet, fd *ast.FuncDecl) {
	t.Helper()
	g := BuildCFG(fd.Body, nil)
	placed := map[ast.Stmt]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if s, ok := n.(ast.Stmt); ok {
				placed[s]++
			}
		}
	}
	for _, s := range leafStmts(fd.Body.List) {
		switch placed[s] {
		case 1:
			// exactly once: the invariant
		case 0:
			t.Errorf("statement at %s missing from every block:\n%s",
				fset.Position(s.Pos()), src)
		default:
			t.Errorf("statement at %s placed in %d blocks:\n%s",
				fset.Position(s.Pos()), placed[s], src)
		}
	}
	// No node (statement or control expression) may repeat either.
	nodes := map[ast.Node]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			nodes[n]++
			if nodes[n] > 1 {
				t.Errorf("node at %s appears in multiple blocks:\n%s",
					fset.Position(n.Pos()), src)
			}
		}
	}
}

// stmtGen emits pseudo-random syntactically valid function bodies. The
// seed is fixed: the corpus is deterministic across runs.
type stmtGen struct {
	r     *rand.Rand
	depth int
}

func (g *stmtGen) stmts(n int, inLoop bool) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(g.stmt(inLoop))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (g *stmtGen) stmt(inLoop bool) string {
	if g.depth >= 3 {
		return "x++"
	}
	max := 7
	if !inLoop {
		max = 5 // break/continue only inside loops
	}
	switch g.r.Intn(max) {
	case 0:
		return "x++"
	case 1:
		g.depth++
		defer func() { g.depth-- }()
		s := fmt.Sprintf("if x > %d {\n%s}", g.r.Intn(10), g.stmts(1+g.r.Intn(2), inLoop))
		if g.r.Intn(2) == 0 {
			s += fmt.Sprintf(" else {\n%s}", g.stmts(1+g.r.Intn(2), inLoop))
		}
		return s
	case 2:
		g.depth++
		defer func() { g.depth-- }()
		return fmt.Sprintf("for i := 0; i < %d; i++ {\n%s}", 2+g.r.Intn(5), g.stmts(1+g.r.Intn(3), true))
	case 3:
		g.depth++
		defer func() { g.depth-- }()
		return fmt.Sprintf("switch x %% 3 {\ncase 0:\n%scase 1:\n%sdefault:\n%s}",
			g.stmts(1, inLoop), g.stmts(1, inLoop), g.stmts(1, inLoop))
	case 4:
		return "return x"
	case 5:
		return "break"
	default:
		return "continue"
	}
}

// TestCFGStatementPartitionProperty runs the partition invariant over
// the golden shapes plus a generated corpus: whatever the control
// structure, no statement is lost and none is duplicated.
func TestCFGStatementPartitionProperty(t *testing.T) {
	hand := []string{
		`func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`,
		`func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		s += i
	}
	return s
}`,
		`func f(k int) int {
	switch k {
	case 1:
		k++
		fallthrough
	default:
		k--
	}
	return k
}`,
		`func f() int {
	return 1
	x := 2
	return x
}`,
	}
	for i, src := range hand {
		fset, fd := parseFunc(t, src)
		t.Run(fmt.Sprintf("hand_%d", i), func(t *testing.T) {
			checkStmtPartition(t, src, fset, fd)
		})
	}

	gen := &stmtGen{r: rand.New(rand.NewSource(1))}
	for i := 0; i < 80; i++ {
		src := "func f(x int) int {\n" + gen.stmts(3+gen.r.Intn(6), false) + "return x\n}"
		fset, fd := parseFunc(t, src)
		t.Run(fmt.Sprintf("gen_%d", i), func(t *testing.T) {
			checkStmtPartition(t, src, fset, fd)
		})
	}
}
