package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
		if c != 2 {
			t.Errorf("counts = %v, want uniform 2s", h.Counts)
		}
	}
	if total != 10 || h.N != 10 {
		t.Errorf("total = %d, N = %d", total, h.N)
	}
	out := h.Format()
	if !strings.Contains(out, "#") {
		t.Errorf("format lacks bars:\n%s", out)
	}
	if _, err := NewHistogram(nil, 5); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	// Constant samples don't divide by zero.
	if _, err := NewHistogram([]float64{3, 3, 3}, 4); err != nil {
		t.Errorf("constant samples: %v", err)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-9 || math.Abs(std-2) > 1e-9 {
		t.Errorf("mean=%v std=%v", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd should be zero")
	}
}

func TestQuartiles(t *testing.T) {
	min, q1, med, q3, max, err := Quartiles([]float64{5, 1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if min != 1 || q1 != 2 || med != 3 || q3 != 4 || max != 5 {
		t.Errorf("quartiles = %v %v %v %v %v", min, q1, med, q3, max)
	}
	if _, _, _, _, _, err := Quartiles(nil); err == nil {
		t.Error("empty quartiles accepted")
	}
}

func seriesFixture() Series {
	return Series{
		Label: "SciDock-AD4",
		Points: []PerfPoint{
			{Cores: 2, TET: 1000},
			{Cores: 4, TET: 520},
			{Cores: 8, TET: 280},
			{Cores: 16, TET: 160},
		},
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	s := seriesFixture()
	sp, err := s.Speedup()
	if err != nil {
		t.Fatal(err)
	}
	// T1 = 2 × 1000 = 2000.
	if math.Abs(sp[0].TET-2) > 1e-9 {
		t.Errorf("speedup@2 = %v, want 2", sp[0].TET)
	}
	if math.Abs(sp[3].TET-12.5) > 1e-9 {
		t.Errorf("speedup@16 = %v, want 12.5", sp[3].TET)
	}
	eff, err := s.Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff[0].TET-1) > 1e-9 {
		t.Errorf("efficiency@2 = %v, want 1", eff[0].TET)
	}
	if math.Abs(eff[3].TET-12.5/16) > 1e-9 {
		t.Errorf("efficiency@16 = %v", eff[3].TET)
	}
}

func TestImprovement(t *testing.T) {
	s := seriesFixture()
	imp, err := s.Improvement(16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp-0.84) > 1e-9 {
		t.Errorf("improvement@16 = %v, want 0.84", imp)
	}
	if _, err := s.Improvement(999); err == nil {
		t.Error("missing point accepted")
	}
	empty := Series{}
	if _, err := empty.Improvement(2); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := empty.Speedup(); err == nil {
		t.Error("empty speedup accepted")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[float64]string{
		1080000: "12.5 days",
		42840:   "11.9 hours",
		90:      "1.5 minutes",
		12:      "12.0 seconds",
	}
	for secs, want := range cases {
		if got := FormatDuration(secs); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", secs, got, want)
		}
	}
}

func TestFormatSeries(t *testing.T) {
	s := seriesFixture()
	out := FormatSeries("TET", []Series{s}, FormatDuration)
	if !strings.Contains(out, "SciDock-AD4") || !strings.Contains(out, "16.7 minutes") {
		t.Errorf("format:\n%s", out)
	}
	// Default formatter path.
	out = FormatSeries("speedup", []Series{s}, nil)
	if !strings.Contains(out, "1000.00") {
		t.Errorf("default format:\n%s", out)
	}
	if got := FormatSeries("x", nil, nil); !strings.Contains(got, "cores") {
		t.Errorf("empty series format: %q", got)
	}
}
