package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow upgrades wildrand's syntactic check to an interprocedural
// determinism-taint analysis over the Run's call graph. wildrand only
// sees a rand.Float64() written directly inside a hot package; a hot
// path that reaches the process-global source through a helper — in
// the same package or another one — replays differently on every run
// and silently breaks the bit-reproducibility the paper's provenance
// and re-execution guarantees rest on.
//
// Taint sources (per function, direct):
//   - calls through math/rand's (or v2's) package-level global source;
//   - time.Now();
//   - ranging over a map while appending to a slice or sending on a
//     channel (order-sensitive accumulation), unless the function also
//     sorts afterwards (sort.* / slices.Sort*) — the sorted-key idiom
//     sanitizes the iteration.
//
// Taint propagates from callee to caller along static call edges;
// methods on an injected *rand.Rand are never sources, so seeding a
// local generator sanitizes a subtree. Findings are reported at call
// sites in deterministic hot packages and in any function that writes
// provenance rows, with the full call chain down to the source.
// Direct source calls in hot packages are wildrand's findings and are
// not re-reported here; detflow flags only calls whose callee is a
// module function with transitive taint. Dynamic dispatch (interface
// methods, function values) is invisible to the static call graph.
// Test files are exempt.
var DetFlow = &Analyzer{
	Name:     "detflow",
	Doc:      "interprocedural taint: nondeterminism (global rand, wall clock, map order) reaching hot paths or provenance writes",
	Severity: Error,
	Run:      runDetFlow,
}

// detFlowHotPaths extends wildrand's hot set with grid generation
// (Spec-deterministic slab decomposition) — packages where calling any
// nondeterministic helper is a finding.
var detFlowHotPaths = append([]string{"internal/grid"}, wildRandHotPaths...)

// taintInfo explains why one function is tainted.
type taintInfo struct {
	what string    // human description of the root source
	pos  token.Pos // position of the root source
	via  string    // callee key the taint arrived through ("" at the root)
	hops int       // distance from the root source
}

// detState is the per-Run taint computation, cached on the shared
// state via the callgraph pointer identity.
type detState struct {
	cg      *callGraph
	tainted map[string]*taintInfo
	sinks   map[string]bool // funcs that write provenance rows
}

var detStateCache = map[*callGraph]*detState{}

func runDetFlow(pass *Pass) {
	cg := pass.CallGraphFor()
	st := detStateCache[cg]
	if st == nil {
		st = computeDetState(cg)
		// Cache keyed by graph identity: a new Run builds a new graph,
		// so stale entries never collide; drop old ones to stay small.
		for k := range detStateCache {
			delete(detStateCache, k)
		}
		detStateCache[cg] = st
	}

	hot := false
	for _, frag := range detFlowHotPaths {
		if strings.Contains(pass.Path, frag) {
			hot = true
			break
		}
	}

	for _, node := range st.cg.nodes {
		if node.pkg != pass.Package || node.testOnly {
			continue
		}
		if !hot && !st.sinks[node.key] {
			continue
		}
		reported := map[string]bool{}
		for _, e := range node.edges {
			ti := st.tainted[e.to]
			if ti == nil {
				continue
			}
			callee := st.cg.nodes[e.to]
			if callee == nil {
				continue // taint only flags module functions; stdlib sources are wildrand's
			}
			if reported[e.to] {
				continue // one finding per distinct tainted callee per caller
			}
			reported[e.to] = true
			chain := st.chain(e.to)
			where := "deterministic hot path"
			if !hot {
				where = "provenance-writing function"
			}
			pass.Reportf(e.pos,
				"nondeterminism reaches %s: %s; seed a *rand.Rand (or sort map keys) at the source",
				where, chain)
		}
	}
}

// chain renders "pkg.f, which calls pkg.g, which <source>" starting at
// the tainted callee key.
func (st *detState) chain(key string) string {
	var sb strings.Builder
	sb.WriteString("call to " + shortKey(key))
	for hops := 0; ; hops++ {
		ti := st.tainted[key]
		if ti == nil {
			break
		}
		if ti.via == "" {
			fmt.Fprintf(&sb, ", which %s", ti.what)
			break
		}
		if hops >= 4 {
			sb.WriteString(", which calls further nondeterministic helpers")
			break
		}
		fmt.Fprintf(&sb, ", which calls %s", shortKey(ti.via))
		key = ti.via
	}
	return sb.String()
}

// shortKey trims the module prefix from a canonical key for readable
// messages: "repro/internal/engine.jitter" -> "engine.jitter".
func shortKey(key string) string {
	slash := strings.LastIndexByte(key, '/')
	if slash < 0 {
		return key
	}
	return key[slash+1:]
}

// computeDetState finds direct sources and sinks per function, then
// propagates taint from callees to callers to fixpoint (reverse BFS).
func computeDetState(cg *callGraph) *detState {
	st := &detState{
		cg:      cg,
		tainted: map[string]*taintInfo{},
		sinks:   map[string]bool{},
	}
	// callers[k] = nodes with an edge to k.
	callers := map[string][]*cgNode{}
	var frontier []string
	for key, node := range cg.nodes {
		for _, e := range node.edges {
			callers[e.to] = append(callers[e.to], node)
		}
		if what, pos, ok := directSource(node); ok {
			st.tainted[key] = &taintInfo{what: what, pos: pos}
			frontier = append(frontier, key)
		}
		if writesProvenance(node) {
			st.sinks[key] = true
		}
	}
	for len(frontier) > 0 {
		key := frontier[0]
		frontier = frontier[1:]
		ti := st.tainted[key]
		for _, caller := range callers[key] {
			if _, done := st.tainted[caller.key]; done {
				continue
			}
			st.tainted[caller.key] = &taintInfo{
				what: ti.what, pos: ti.pos, via: key, hops: ti.hops + 1,
			}
			frontier = append(frontier, caller.key)
		}
	}
	return st
}

// directSource reports the first direct nondeterminism source in a
// function body, if any.
func directSource(node *cgNode) (what string, pos token.Pos, ok bool) {
	pkg := node.pkg
	sortsAfter := callsSort(node)
	found := func(w string, p token.Pos) {
		if !ok {
			what, pos, ok = w, p, true
		}
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			id, isId := sel.X.(*ast.Ident)
			if !isId {
				return true
			}
			pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
			if !isPkg {
				return true // method call, e.g. on an injected *rand.Rand: sanitized
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !wildRandConstructors[sel.Sel.Name] {
					found("draws from the math/rand global source (rand."+sel.Sel.Name+")", n.Pos())
				}
			case "time":
				if sel.Sel.Name == "Now" {
					found("reads the wall clock (time.Now)", n.Pos())
				}
			}
		case *ast.RangeStmt:
			if t := pkg.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && !sortsAfter &&
					orderSensitiveBody(n.Body) {
					found("iterates a map in nondeterministic order into an ordered collection", n.Pos())
					return false
				}
			}
		}
		return true
	})
	return what, pos, ok
}

// callsSort reports whether the function calls sort.* or
// slices.Sort* anywhere — the sorted-key-iteration sanitizer.
func callsSort(node *cgNode) bool {
	found := false
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := node.pkg.Info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "sort":
				found = true
			case "slices":
				if strings.HasPrefix(sel.Sel.Name, "Sort") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// orderSensitiveBody reports whether a range body accumulates in
// iteration order: appends to a slice or sends on a channel. Pure
// set/count/max folds over a map are order-insensitive and stay clean.
func orderSensitiveBody(body *ast.BlockStmt) bool {
	sensitive := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sensitive {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sensitive = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				sensitive = true
			}
		}
		return true
	})
	return sensitive
}

// writesProvenance reports whether the function inserts or mutates
// provenance rows (prov.DB / prov.Appender write methods).
func writesProvenance(node *cgNode) bool {
	for _, e := range node.edges {
		i := strings.LastIndexByte(e.to, '.')
		if i < 0 {
			continue
		}
		rest := e.to[:i]
		name := e.to[i+1:]
		j := strings.LastIndexByte(rest, '.')
		if j < 0 {
			continue
		}
		path, recv := rest[:j], rest[j+1:]
		if !strings.HasSuffix(path, "internal/prov") || (recv != "DB" && recv != "Appender") {
			continue
		}
		for _, prefix := range []string{"Insert", "Begin", "Close", "Update"} {
			if strings.HasPrefix(name, prefix) {
				return true
			}
		}
	}
	return false
}
