package chem

import (
	"strings"
	"testing"
)

// ethanolLike builds a small test molecule: C-C-O with hydrogens,
// realistic geometry.
func ethanolLike() *Molecule {
	m := &Molecule{Name: "ETH"}
	m.Atoms = []Atom{
		{Serial: 1, Name: "C1", Element: Carbon, Pos: V(0, 0, 0)},
		{Serial: 2, Name: "C2", Element: Carbon, Pos: V(1.52, 0, 0)},
		{Serial: 3, Name: "O1", Element: Oxygen, Pos: V(2.1, 1.3, 0)},
		{Serial: 4, Name: "H1", Element: Hydrogen, Pos: V(-0.5, 0.9, 0)},
		{Serial: 5, Name: "H2", Element: Hydrogen, Pos: V(-0.5, -0.9, 0)},
		{Serial: 6, Name: "HO", Element: Hydrogen, Pos: V(3.05, 1.2, 0)},
	}
	m.Bonds = []Bond{
		{A: 0, B: 1, Order: Single},
		{A: 1, B: 2, Order: Single},
		{A: 0, B: 3, Order: Single},
		{A: 0, B: 4, Order: Single},
		{A: 2, B: 5, Order: Single},
	}
	return m
}

func TestMoleculeCounts(t *testing.T) {
	m := ethanolLike()
	if m.NumAtoms() != 6 {
		t.Errorf("NumAtoms = %d", m.NumAtoms())
	}
	if m.HeavyAtomCount() != 3 {
		t.Errorf("HeavyAtomCount = %d", m.HeavyAtomCount())
	}
	c := m.ElementCounts()
	if c[Carbon] != 2 || c[Oxygen] != 1 || c[Hydrogen] != 3 {
		t.Errorf("ElementCounts = %v", c)
	}
}

func TestMoleculeCloneIndependence(t *testing.T) {
	m := ethanolLike()
	c := m.Clone()
	c.Atoms[0].Pos = V(99, 99, 99)
	c.Bonds[0].Order = Triple
	if m.Atoms[0].Pos == c.Atoms[0].Pos {
		t.Error("clone shares atom storage")
	}
	if m.Bonds[0].Order == Triple {
		t.Error("clone shares bond storage")
	}
}

func TestPositionsRoundTrip(t *testing.T) {
	m := ethanolLike()
	p := m.Positions()
	p[0] = V(5, 5, 5)
	if m.Atoms[0].Pos == p[0] {
		t.Error("Positions should copy")
	}
	m.SetPositions(p)
	if m.Atoms[0].Pos != V(5, 5, 5) {
		t.Error("SetPositions did not apply")
	}
}

func TestSetPositionsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	ethanolLike().SetPositions(make([]Vec3, 2))
}

func TestTranslateAndCentroid(t *testing.T) {
	m := ethanolLike()
	before := m.Centroid()
	m.Translate(V(1, 2, 3))
	after := m.Centroid()
	if !vecApprox(after, before.Add(V(1, 2, 3)), eps) {
		t.Errorf("centroid moved to %v", after)
	}
}

func TestMassAndFormula(t *testing.T) {
	m := ethanolLike()
	// C2H3O of our truncated ethanol: 2*12.011 + 3*1.008 + 15.999
	want := 2*12.011 + 3*1.008 + 15.999
	if !approx(m.Mass(), want, 1e-6) {
		t.Errorf("Mass = %v, want %v", m.Mass(), want)
	}
	if f := m.Formula(); f != "C2H3O" {
		t.Errorf("Formula = %q", f)
	}
}

func TestContainsHg(t *testing.T) {
	m := ethanolLike()
	if m.Contains(Mercury) {
		t.Error("ethanol should not contain Hg")
	}
	m.Atoms = append(m.Atoms, Atom{Name: "HG", Element: Mercury})
	if !m.Contains(Mercury) {
		t.Error("Hg not detected")
	}
	// Case-insensitive symbol matching (files write "HG").
	if !m.Contains(Element("HG")) {
		t.Error("Hg not detected with upper-case query")
	}
}

func TestPerceiveBonds(t *testing.T) {
	m := ethanolLike()
	m.Bonds = nil
	m.PerceiveBonds()
	if len(m.Bonds) != 5 {
		t.Fatalf("perceived %d bonds, want 5", len(m.Bonds))
	}
	adj := m.Adjacency()
	if len(adj[0]) != 3 { // C1: C2, H1, H2
		t.Errorf("C1 degree = %d, want 3", len(adj[0]))
	}
}

func TestRingAtoms(t *testing.T) {
	// Benzene-like hexagon.
	m := &Molecule{Name: "BNZ"}
	for i := 0; i < 6; i++ {
		m.Atoms = append(m.Atoms, Atom{Element: Carbon})
	}
	// One exocyclic substituent.
	m.Atoms = append(m.Atoms, Atom{Element: Carbon})
	for i := 0; i < 6; i++ {
		m.Bonds = append(m.Bonds, Bond{A: i, B: (i + 1) % 6, Order: Aromatic})
	}
	m.Bonds = append(m.Bonds, Bond{A: 0, B: 6, Order: Single})
	ring := m.RingAtoms()
	for i := 0; i < 6; i++ {
		if !ring[i] {
			t.Errorf("atom %d should be in ring", i)
		}
	}
	if ring[6] {
		t.Error("substituent wrongly in ring")
	}
	// Acyclic molecule has no ring atoms.
	if got := ethanolLike().RingAtoms(); len(got) != 0 {
		t.Errorf("ethanol ring atoms = %v", got)
	}
}

func TestValidate(t *testing.T) {
	m := ethanolLike()
	if err := m.Validate(); err != nil {
		t.Errorf("valid molecule rejected: %v", err)
	}
	bad := ethanolLike()
	bad.Bonds = append(bad.Bonds, Bond{A: 0, B: 99})
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range bond not caught: %v", err)
	}
	self := ethanolLike()
	self.Bonds = append(self.Bonds, Bond{A: 2, B: 2})
	if err := self.Validate(); err == nil || !strings.Contains(err.Error(), "self-bond") {
		t.Errorf("self-bond not caught: %v", err)
	}
}

func TestAtomTypesSorted(t *testing.T) {
	m := ethanolLike()
	m.Atoms[0].Type = TypeC
	m.Atoms[1].Type = TypeC
	m.Atoms[2].Type = TypeOA
	m.Atoms[5].Type = TypeHD
	got := m.AtomTypes()
	if len(got) != 3 || got[0] != TypeC || got[1] != TypeHD || got[2] != TypeOA {
		t.Errorf("AtomTypes = %v", got)
	}
}

func TestBondOther(t *testing.T) {
	b := Bond{A: 3, B: 7}
	if b.Other(3) != 7 || b.Other(7) != 3 {
		t.Error("Bond.Other broken")
	}
}

func TestElementTable(t *testing.T) {
	if !Mercury.Known() {
		t.Error("Hg should be known")
	}
	if Mercury.Info().DockSupported {
		t.Error("Hg must be dock-unsupported (paper §V.C)")
	}
	if Element("Xx").Known() {
		t.Error("Xx should be unknown")
	}
	if Element("cl").Normalize() != Chlorine {
		t.Error("normalize cl failed")
	}
	if Element("CL").Info().Number != 17 {
		t.Error("case-insensitive lookup failed")
	}
	if Hydrogen.IsHeavy() {
		t.Error("H is not heavy")
	}
	if !Carbon.IsHeavy() {
		t.Error("C is heavy")
	}
}

func TestTypeParams(t *testing.T) {
	if !TypeHD.IsHBondDonorH() {
		t.Error("HD is donor hydrogen")
	}
	if !TypeOA.IsHBondAcceptor() {
		t.Error("OA is acceptor")
	}
	if TypeC.IsHBondAcceptor() || TypeC.IsHBondDonorH() {
		t.Error("C is neither donor nor acceptor")
	}
	if !TypeC.IsHydrophobic() || TypeOA.IsHydrophobic() {
		t.Error("hydrophobic flags wrong")
	}
	if TypeHg.Params().Supported {
		t.Error("Hg type must be unsupported")
	}
	if p := AtomType("Q?").Params(); p.Supported {
		t.Error("unknown type must be unsupported")
	}
	if len(AllTypes()) == 0 {
		t.Error("AllTypes empty")
	}
	for _, typ := range AllTypes() {
		if !typ.Params().Supported {
			t.Errorf("AllTypes contains unsupported %s", typ)
		}
	}
}

func TestTypeForElement(t *testing.T) {
	cases := map[Element]AtomType{
		Hydrogen: TypeH, Carbon: TypeC, Nitrogen: TypeN, Oxygen: TypeOA,
		Sulfur: TypeS, Mercury: TypeHg, Element("Xq"): TypeC,
	}
	for e, want := range cases {
		if got := TypeForElement(e); got != want {
			t.Errorf("TypeForElement(%s) = %s, want %s", e, got, want)
		}
	}
}
