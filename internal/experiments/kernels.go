// Kernel microbenchmarks: machine-readable timings of the docking hot
// loops (AutoGrid map generation, Vina and AD4 scoring), each measured
// on its production table-backed path and on the analytic reference
// path it replaced. cmd/dockbench serializes the report to
// BENCH_kernels.json so perf regressions are diffable across commits.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/dock/ad4"
	"repro/internal/dock/vina"
	"repro/internal/grid"
	"repro/internal/prep"
)

// KernelBench is one measured kernel configuration.
type KernelBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Speedup is NsPerOp of the matching analytic baseline divided by
	// this entry's NsPerOp; only set on table-backed entries.
	Speedup float64 `json:"speedup_vs_analytic,omitempty"`
	// Batch-sweep cells only: the ScoreBatch chunk size, the op time
	// normalized per pose (one op scores the whole fixed population),
	// and the per-pose baseline's ns_per_pose divided by this cell's.
	BatchSize        int     `json:"batch_size,omitempty"`
	NsPerPose        float64 `json:"ns_per_pose,omitempty"`
	SpeedupVsPerPose float64 `json:"speedup_vs_per_pose,omitempty"`
}

// KernelReport is the full kernel benchmark result set.
type KernelReport struct {
	Workload   string        `json:"workload"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []KernelBench `json:"benchmarks"`
}

// JSON renders the report for BENCH_kernels.json.
func (r *KernelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable table dockbench prints.
func (r *KernelReport) String() string {
	var sb strings.Builder
	sb.WriteString("KERNEL BENCHMARKS (radial tables vs analytic)\n")
	fmt.Fprintf(&sb, "workload: %s, GOMAXPROCS=%d, NumCPU=%d\n", r.Workload, r.GoMaxProcs, r.NumCPU)
	if r.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Note)
	}
	fmt.Fprintf(&sb, "%-28s %14s %12s %10s %12s %10s\n",
		"kernel", "ns/op", "allocs/op", "speedup", "ns/pose", "vs 1-pose")
	for _, b := range r.Benchmarks {
		sp := ""
		if b.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", b.Speedup)
		}
		np, vp := "", ""
		if b.NsPerPose > 0 {
			np = fmt.Sprintf("%.0f", b.NsPerPose)
		}
		if b.SpeedupVsPerPose > 0 {
			vp = fmt.Sprintf("%.2fx", b.SpeedupVsPerPose)
		}
		fmt.Fprintf(&sb, "%-28s %14.0f %12.1f %10s %12s %10s\n",
			b.Name, b.NsPerOp, b.AllocsPerOp, sp, np, vp)
	}
	return sb.String()
}

// measure times fn over several batches of iters runs, reporting the
// fastest batch's mean ns/op (the minimum of batch means discards
// scheduler and frequency noise, which only ever slows a batch down)
// and the mean heap allocations per op (mallocs counted via
// runtime.MemStats, the same counter testing's AllocsPerRun reads).
func measure(iters int, fn func()) (nsPerOp, allocsPerOp float64) {
	const batches = 4
	fn() // warm up: build tables, fault in pages
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	best := math.Inf(1)
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); ns < best {
			best = ns
		}
	}
	runtime.ReadMemStats(&after)
	return best, float64(after.Mallocs-before.Mallocs) / float64(batches*iters)
}

// kernelPoseSet builds a deterministic spread of ligand poses for the
// scoring benchmarks (seeded; no global rand, matching the determinism
// rules of the docking packages).
func kernelPoseSet(lig *dock.Ligand, n int, seed int64) []dock.Pose {
	r := rand.New(rand.NewSource(seed))
	poses := make([]dock.Pose, n)
	for i := range poses {
		tors := make([]float64, lig.NumTorsions())
		for t := range tors {
			tors[t] = (r.Float64() - 0.5) * 2 * math.Pi
		}
		poses[i] = dock.Pose{
			Translation: chem.V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5),
			Orientation: chem.RandomQuat(r.Float64(), r.Float64(), r.Float64()),
			Torsions:    tors,
		}
	}
	return poses
}

// kernelPoses is kernelPoseSet materialized to coordinates, for the
// per-call scoring rows.
func kernelPoses(lig *dock.Ligand, n int, seed int64) [][]chem.Vec3 {
	poses := kernelPoseSet(lig, n, seed)
	coords := make([][]chem.Vec3, n)
	for i, p := range poses {
		coords[i] = lig.Coords(p)
	}
	return coords
}

// Kernels measures every docking kernel on the standard workload
// (receptor 2HHN vs ligand 0E6) and returns the report. Quick mode
// shrinks the lattice and iteration counts for smoke runs.
func (s *Suite) Kernels() (*KernelReport, error) {
	rec, _ := data.GenerateReceptor("2HHN")
	prec, err := prep.PrepareReceptor(rec)
	if err != nil {
		return nil, err
	}
	raw, _ := data.GenerateLigand("0E6")
	mol2, err := prep.ConvertSDFToMol2(raw)
	if err != nil {
		return nil, err
	}
	pl, err := prep.PrepareLigand(mol2)
	if err != nil {
		return nil, err
	}
	lig, err := dock.NewLigand(pl.Mol, pl.Tree)
	if err != nil {
		return nil, err
	}

	npts, gridIters, scoreIters := 24, 8, 20000
	if s.Quick {
		npts, gridIters, scoreIters = 12, 2, 500
	}
	spec := grid.Spec{Center: chem.Vec3{}, NPts: [3]int{npts, npts, npts}, Spacing: 1.0}
	probeTypes := []chem.AtomType{chem.TypeC, chem.TypeN, chem.TypeOA, chem.TypeHD}

	rep := &KernelReport{
		Workload: fmt.Sprintf("receptor 2HHN (%d atoms), ligand 0E6, %d³ grid @ %.2f Å",
			prec.NumAtoms(), npts, spec.Spacing),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	add := func(name string, baselineNs float64, iters int, fn func() error) (float64, error) {
		var innerErr error
		ns, allocs := measure(iters, func() {
			if err := fn(); err != nil {
				innerErr = err
			}
		})
		if innerErr != nil {
			return 0, fmt.Errorf("experiments: kernel %s: %w", name, innerErr)
		}
		b := KernelBench{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
		if baselineNs > 0 {
			b.Speedup = baselineNs / ns
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		return ns, nil
	}

	// AutoGrid map generation: analytic reference, table-backed serial,
	// table-backed with the full worker pool.
	refNs, err := add("grid_generate_reference", 0, gridIters, func() error {
		_, err := grid.GenerateReference(prec, spec, probeTypes)
		return err
	})
	if err != nil {
		return nil, err
	}
	if _, err := add("grid_generate_tables_1w", refNs, gridIters, func() error {
		_, err := grid.GenerateWorkers(prec, spec, probeTypes, 1)
		return err
	}); err != nil {
		return nil, err
	}
	if _, err := add("grid_generate_tables_allcores", refNs, gridIters, func() error {
		_, err := grid.GenerateWorkers(prec, spec, probeTypes, 0)
		return err
	}); err != nil {
		return nil, err
	}

	// Vina scoring.
	vs, err := vina.NewScorer(prec, lig)
	if err != nil {
		return nil, err
	}
	poses := kernelPoses(lig, 16, 3)
	i := 0
	vinaRefNs, err := add("vina_score_analytic", 0, scoreIters, func() error {
		vs.ScoreAnalytic(poses[i%len(poses)])
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	if _, err := add("vina_score_tables", vinaRefNs, scoreIters, func() error {
		vs.Score(poses[i%len(poses)])
		i++
		return nil
	}); err != nil {
		return nil, err
	}

	// AD4 scoring (grid maps + table-backed intramolecular term).
	maps, err := grid.Generate(prec, spec, pl.Mol.AtomTypes())
	if err != nil {
		return nil, err
	}
	as, err := ad4.NewScorer(maps, lig)
	if err != nil {
		return nil, err
	}
	i = 0
	ad4RefNs, err := add("ad4_score_analytic", 0, scoreIters, func() error {
		as.ScoreAnalytic(poses[i%len(poses)])
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	if _, err := add("ad4_score_tables", ad4RefNs, scoreIters, func() error {
		as.Score(poses[i%len(poses)])
		i++
		return nil
	}); err != nil {
		return nil, err
	}

	// Batched-scoring sweep: one fixed production-shaped population per
	// engine, scored per pose (Workspace materialization included, as a
	// search loop pays it) and in ScoreBatch chunks. The cells are
	// interleaved round-robin so frequency drift hits every cell alike;
	// ns_per_pose and the batch-vs-per-pose ratio are the signal, and
	// both paths produce bit-identical energies (pinned by the engines'
	// 0-ULP batch tests), so the ratio compares equal work.
	nPop, rounds := 600, 60
	if s.Quick {
		nPop, rounds = 120, 4
	}
	batchPoses := kernelPoseSet(lig, nPop, 7)
	sweep := func(prefix string, score func([]chem.Vec3) float64, scoreBatch func(*dock.Batch, []float64)) {
		ws := dock.NewWorkspace(lig)
		type cell struct {
			name string
			bs   int
			run  func()
		}
		sink := 0.0
		cells := []cell{{prefix + "_score_per_pose", 0, func() {
			for _, p := range batchPoses {
				sink += score(ws.Coords(p))
			}
		}}}
		for _, bs := range []int{1, 8, 16, 50, 150} {
			bs := bs
			b := dock.NewBatch(lig, bs)
			out := make([]float64, bs)
			cells = append(cells, cell{fmt.Sprintf("%s_score_batch%d", prefix, bs), bs, func() {
				for base := 0; base < len(batchPoses); base += bs {
					end := base + bs
					if end > len(batchPoses) {
						end = len(batchPoses)
					}
					b.Reset()
					for i := base; i < end; i++ {
						b.Append(batchPoses[i])
					}
					scoreBatch(b, out[:end-base])
					for k := 0; k < end-base; k++ {
						sink += out[k]
					}
				}
			}})
		}
		for _, c := range cells {
			c.run() // warm up: fault in tables and batch buffers
		}
		tot := make([]time.Duration, len(cells))
		for round := 0; round < rounds; round++ {
			for ci, c := range cells {
				t0 := time.Now()
				c.run()
				tot[ci] += time.Since(t0)
			}
		}
		baseNs := float64(tot[0].Nanoseconds()) / float64(rounds*nPop)
		for ci, c := range cells {
			ns := float64(tot[ci].Nanoseconds()) / float64(rounds*nPop)
			kb := KernelBench{
				Name:      c.name,
				NsPerOp:   float64(tot[ci].Nanoseconds()) / float64(rounds),
				NsPerPose: ns,
			}
			if c.bs > 0 {
				kb.BatchSize = c.bs
				kb.SpeedupVsPerPose = baseNs / ns
			}
			rep.Benchmarks = append(rep.Benchmarks, kb)
		}
		_ = sink
	}
	sweep("vina", vs.Score, vs.ScoreBatch)
	sweep("ad4", as.Score, as.ScoreBatch)
	rep.Note = "measured on a 1-CPU reference container; absolute ns and run-to-run ratios carry ±20% frequency noise — the interleaved batch-sweep cells share one fixed population, so only their within-report ratios are meaningful"
	return rep, nil
}

// KernelsText is the ByName-facing wrapper returning the formatted
// table.
func (s *Suite) KernelsText() (string, error) {
	rep, err := s.Kernels()
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}
