package spec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workflow"
)

// paperXML mirrors the excerpt of Figure 2 with the full SciDock
// chain added.
const paperXML = `<SciCumulus>
<database name="scicumulus" port="5432" server="ec2-50-17-107-164.compute-1.amazonaws.com"/>
<SciCumulusWorkflow tag="SciDock" description="Docking" exectag="scidock" expdir="/root/scidock/">
  <SciCumulusActivity tag="babel" templatedir="/root/scidock/template_babel/" activation="./experiment.cmd %LIGAND%">
    <Relation reltype="Input" name="rel_in_1" filename="input_1.txt"/>
    <Relation reltype="Output" name="rel_out1" filename="output_1.txt"/>
    <File filename="experiment.cmd" instrumented="true"/>
  </SciCumulusActivity>
  <SciCumulusActivity tag="ligprep" activation="./prepare_ligand4.py %LIGAND%" depends="babel"/>
  <SciCumulusActivity tag="recprep" activation="./prepare_receptor4.py %RECEPTOR%"/>
  <SciCumulusActivity tag="filter" operator="FILTER" activation="./filter.py %RECEPTOR%" depends="ligprep,recprep"/>
</SciCumulusWorkflow>
</SciCumulus>`

func TestParsePaperXML(t *testing.T) {
	s, err := Parse(strings.NewReader(paperXML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Database.Name != "scicumulus" || s.Database.Port != 5432 {
		t.Errorf("database = %+v", s.Database)
	}
	w := s.Workflow
	if w.Tag != "SciDock" || w.Description != "Docking" || w.ExpDir != "/root/scidock/" {
		t.Errorf("workflow header = %+v", w)
	}
	if len(w.Activities) != 4 {
		t.Fatalf("activities = %d", len(w.Activities))
	}
	f, err := w.Activity("filter")
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != workflow.Filter {
		t.Errorf("filter op = %v", f.Op)
	}
	if len(f.Depends) != 2 || f.Depends[0] != "ligprep" || f.Depends[1] != "recprep" {
		t.Errorf("depends = %v", f.Depends)
	}
	b, _ := w.Activity("babel")
	if b.Template != "./experiment.cmd %LIGAND%" {
		t.Errorf("template = %q", b.Template)
	}
}

func TestBind(t *testing.T) {
	s, err := Parse(strings.NewReader(paperXML))
	if err != nil {
		t.Fatal(err)
	}
	ok := func(in workflow.Tuple) (*workflow.ActivationResult, error) {
		return &workflow.ActivationResult{Outputs: []workflow.Tuple{in}}, nil
	}
	bodies := map[string]workflow.RunFunc{
		"babel": ok, "ligprep": ok, "recprep": ok, "filter": ok,
	}
	if err := s.Bind(bodies); err != nil {
		t.Fatal(err)
	}
	for _, a := range s.Workflow.Activities {
		if a.Run == nil {
			t.Errorf("activity %q unbound", a.Tag)
		}
	}
	// Missing body fails.
	s2, _ := Parse(strings.NewReader(paperXML))
	delete(bodies, "filter")
	if err := s2.Bind(bodies); err == nil {
		t.Error("missing body accepted")
	}
	// Extra body fails.
	s3, _ := Parse(strings.NewReader(paperXML))
	bodies["filter"] = ok
	bodies["typo"] = ok
	if err := s3.Bind(bodies); err == nil {
		t.Error("unknown body accepted")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(paperXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if again.Workflow.Tag != s.Workflow.Tag ||
		len(again.Workflow.Activities) != len(s.Workflow.Activities) {
		t.Errorf("round trip lost structure")
	}
	f, _ := again.Workflow.Activity("filter")
	if f.Op != workflow.Filter || len(f.Depends) != 2 {
		t.Errorf("filter after round trip: %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("not xml")); err == nil {
		t.Error("garbage accepted")
	}
	bad := `<SciCumulus><SciCumulusWorkflow tag="W">
	<SciCumulusActivity tag="x" operator="NOPE"/>
	</SciCumulusWorkflow></SciCumulus>`
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("bad operator accepted")
	}
}

func TestReduceActivitySpecRoundTrip(t *testing.T) {
	xml := `<SciCumulus><SciCumulusWorkflow tag="W" expdir="/e/">
<SciCumulusActivity tag="m" activation="./m %K%"/>
<SciCumulusActivity tag="r" operator="REDUCE" groupkey="K" activation="./r %K%" depends="m"/>
</SciCumulusWorkflow></SciCumulus>`
	s, err := Parse(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Workflow.Activity("r")
	if err != nil {
		t.Fatal(err)
	}
	if r.Op != workflow.Reduce || r.GroupKey != "K" {
		t.Errorf("reduce activity = %+v", r)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := again.Workflow.Activity("r")
	if r2.GroupKey != "K" || r2.Op != workflow.Reduce {
		t.Errorf("groupkey lost in round trip: %+v", r2)
	}
}
