// Package stats computes the performance metrics the paper reports:
// execution-time histograms (Figure 5), per-activity distributions
// (Figure 6), total execution time, speedup and efficiency series
// (Figures 7-9), with text renderings matching the paper's rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bin histogram of execution times.
type Histogram struct {
	Min, Width float64
	Counts     []int
	N          int
}

// NewHistogram bins the samples into `bins` equal-width buckets.
func NewHistogram(samples []float64, bins int) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("stats: histogram of no samples")
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: %d bins", bins)
	}
	min, max := samples[0], samples[0]
	for _, s := range samples {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	width := (max - min) / float64(bins)
	if width == 0 {
		width = 1
	}
	h := &Histogram{Min: min, Width: width, Counts: make([]int, bins), N: len(samples)}
	for _, s := range samples {
		b := int((s - min) / width)
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
	}
	return h, nil
}

// Format renders the histogram as "[lo, hi): count" rows with a bar.
func (h *Histogram) Format() string {
	var sb strings.Builder
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*h.Width
		hi := lo + h.Width
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", c*40/maxC)
		}
		fmt.Fprintf(&sb, "[%9.1f, %9.1f) %6d %s\n", lo, hi, c, bar)
	}
	return sb.String()
}

// MeanStd returns the mean and (population) standard deviation of
// samples.
func MeanStd(samples []float64) (mean, std float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		std += (s - mean) * (s - mean)
	}
	std = math.Sqrt(std / float64(len(samples)))
	return
}

// Quartiles returns min, q1, median, q3, max.
func Quartiles(samples []float64) (min, q1, med, q3, max float64, err error) {
	if len(samples) == 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("stats: quartiles of no samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	at := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return s[0], at(0.25), at(0.5), at(0.75), s[len(s)-1], nil
}

// PerfPoint is one (cores, TET) measurement of the scalability sweep.
type PerfPoint struct {
	Cores int
	TET   float64 // seconds
}

// Series is a scalability curve for one configuration (e.g. "SciDock
// AD4").
type Series struct {
	Label  string
	Points []PerfPoint
}

// baselineWork estimates the single-core TET as TET(min cores) ×
// min-cores, the paper's convention when a true 1-core run is
// impractical.
func (s *Series) baselineWork() (float64, error) {
	if len(s.Points) == 0 {
		return 0, fmt.Errorf("stats: empty series %q", s.Label)
	}
	min := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Cores < min.Cores {
			min = p
		}
	}
	if min.Cores < 1 || min.TET <= 0 {
		return 0, fmt.Errorf("stats: series %q has invalid baseline point %+v", s.Label, min)
	}
	return min.TET * float64(min.Cores), nil
}

// Speedup returns S(c) = T1/T(c) per point, with T1 derived from the
// smallest-core measurement.
func (s *Series) Speedup() ([]PerfPoint, error) {
	t1, err := s.baselineWork()
	if err != nil {
		return nil, err
	}
	out := make([]PerfPoint, len(s.Points))
	for i, p := range s.Points {
		out[i] = PerfPoint{Cores: p.Cores, TET: t1 / p.TET}
	}
	return out, nil
}

// Efficiency returns E(c) = S(c)/c per point.
func (s *Series) Efficiency() ([]PerfPoint, error) {
	sp, err := s.Speedup()
	if err != nil {
		return nil, err
	}
	out := make([]PerfPoint, len(sp))
	for i, p := range sp {
		out[i] = PerfPoint{Cores: p.Cores, TET: p.TET / float64(p.Cores)}
	}
	return out, nil
}

// Improvement returns 1 - T(c)/T(base) relative to the series'
// smallest-core point — the "performance improvements up to 95.4%"
// metric of the paper.
func (s *Series) Improvement(cores int) (float64, error) {
	if len(s.Points) == 0 {
		return 0, fmt.Errorf("stats: empty series")
	}
	base := s.Points[0]
	var at *PerfPoint
	for i, p := range s.Points {
		if p.Cores < base.Cores {
			base = p
		}
		if p.Cores == cores {
			at = &s.Points[i]
		}
	}
	if at == nil {
		return 0, fmt.Errorf("stats: series %q has no %d-core point", s.Label, cores)
	}
	return 1 - at.TET/base.TET, nil
}

// FormatDuration renders seconds the way the paper writes TETs
// ("12.5 days", "11.9 hours").
func FormatDuration(secs float64) string {
	switch {
	case secs >= 36*3600:
		return fmt.Sprintf("%.1f days", secs/86400)
	case secs >= 3600:
		return fmt.Sprintf("%.1f hours", secs/3600)
	case secs >= 60:
		return fmt.Sprintf("%.1f minutes", secs/60)
	default:
		return fmt.Sprintf("%.1f seconds", secs)
	}
}

// FormatSeries renders one or more aligned scalability tables:
// cores, then one TET column per series.
func FormatSeries(metric string, series []Series, format func(float64) string) string {
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.2f", v) }
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "cores")
	for _, s := range series {
		fmt.Fprintf(&sb, " %22s", s.Label)
	}
	fmt.Fprintf(&sb, "   (%s)\n", metric)
	if len(series) == 0 {
		return sb.String()
	}
	for i, p := range series[0].Points {
		fmt.Fprintf(&sb, "%-8d", p.Cores)
		for _, s := range series {
			v := ""
			if i < len(s.Points) {
				v = format(s.Points[i].TET)
			}
			fmt.Fprintf(&sb, " %22s", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
