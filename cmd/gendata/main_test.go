package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chem/formats"
)

func TestGendataWritesParsableFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 3, 2, true); err != nil {
		t.Fatal(err)
	}
	// -large adds the 9XLR receptor and the XL1 ligand on top of the
	// requested counts.
	recs, err := filepath.Glob(filepath.Join(dir, "receptors", "*.pdb"))
	if err != nil || len(recs) != 4 {
		t.Fatalf("receptor files = %d, %v", len(recs), err)
	}
	ligs, err := filepath.Glob(filepath.Join(dir, "ligands", "*.sdf"))
	if err != nil || len(ligs) != 3 {
		t.Fatalf("ligand files = %d, %v", len(ligs), err)
	}
	// Every emitted file parses back with our own readers.
	for _, p := range recs {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := formats.ParsePDB(f, filepath.Base(p)); err != nil {
			t.Errorf("%s: %v", p, err)
		}
		f.Close()
	}
	for _, p := range ligs {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := formats.ParseSDF(f, filepath.Base(p)); err != nil {
			t.Errorf("%s: %v", p, err)
		}
		f.Close()
	}
}

func TestGendataValidation(t *testing.T) {
	if err := run(t.TempDir(), 0, 1, false); err == nil {
		t.Error("zero receptors accepted")
	}
}
