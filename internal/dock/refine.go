package dock

import (
	"fmt"
	"math/rand"
)

// RefineResult is the outcome of a local pose refinement.
type RefineResult struct {
	Pose     Pose
	FEB      float64
	Improved float64 // energy gained vs the starting pose (≥ 0)
	Evals    int
}

// Refine performs the "redocking" refinement §V.D recommends for
// promising interactions: a Solis-Wets-style adaptive local search
// around an existing pose, without the global exploration phase. The
// returned pose is never worse than the input.
func Refine(s Scorer, lig *Ligand, box Box, start Pose, iterations int, seed int64) (RefineResult, error) {
	return RefineWorkspace(s, lig, box, start, iterations, seed, NewWorkspace(lig))
}

// RefineWorkspace is Refine evaluating through a caller-supplied
// workspace, so batch refiners (and the benchmarks pinning the
// allocation-free contract) reuse one scratch set across many poses.
// Candidate evaluation allocates nothing; only the returned result
// pose is a fresh copy.
func RefineWorkspace(s Scorer, lig *Ligand, box Box, start Pose, iterations int, seed int64, ws *Workspace) (RefineResult, error) {
	if iterations < 1 {
		return RefineResult{}, fmt.Errorf("dock: refinement needs ≥ 1 iteration")
	}
	if len(start.Torsions) != lig.NumTorsions() {
		return RefineResult{}, fmt.Errorf("dock: pose has %d torsions, ligand %d",
			len(start.Torsions), lig.NumTorsions())
	}
	r := rand.New(rand.NewSource(seed))
	cur, cand := ws.Get(), ws.Get()
	defer ws.Put(cur)
	defer ws.Put(cand)
	cur.Set(start)
	curFeb := s.Score(ws.Coords(*cur))
	startFeb := curFeb
	evals := 1
	rho := 0.6
	const rhoMin = 0.005
	succ, fail := 0, 0
	for it := 0; it < iterations && rho > rhoMin; it++ {
		PerturbInto(r, cand, *cur, rho, rho*0.3)
		ClampToBox(cand, box)
		feb := s.Score(ws.Coords(*cand))
		evals++
		if feb < curFeb {
			cur, cand = cand, cur
			curFeb = feb
			succ++
			fail = 0
		} else {
			fail++
			succ = 0
		}
		if succ >= 3 {
			rho *= 1.8
			succ = 0
		}
		if fail >= 3 {
			rho *= 0.55
			fail = 0
		}
	}
	return RefineResult{
		Pose:     cur.Clone(),
		FEB:      curFeb,
		Improved: startFeb - curFeb,
		Evals:    evals,
	}, nil
}
