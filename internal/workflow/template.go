package workflow

import (
	"fmt"
	"regexp"
	"strings"
)

// tagPattern matches %NAME% placeholders in instrumented command
// templates (Figure 3 of the paper shows Babel's template with such
// tags replaced at dispatch time).
var tagPattern = regexp.MustCompile(`%([A-Za-z_][A-Za-z0-9_]*)%`)

// Instantiate substitutes every %TAG% in the template with the
// matching tuple field. Unresolved tags are an error: SciCumulus
// refuses to dispatch an activation whose command is incomplete.
func Instantiate(template string, t Tuple) (string, error) {
	var missing []string
	out := tagPattern.ReplaceAllStringFunc(template, func(m string) string {
		key := strings.Trim(m, "%")
		if v, ok := t[key]; ok {
			return v
		}
		missing = append(missing, key)
		return m
	})
	if len(missing) > 0 {
		return "", fmt.Errorf("workflow: template references unbound tags: %s", strings.Join(missing, ", "))
	}
	return out, nil
}

// TemplateTags lists the distinct placeholder names in a template, in
// order of first appearance — used by instrumentation to know which
// parameters to capture into provenance.
func TemplateTags(template string) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range tagPattern.FindAllStringSubmatch(template, -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			out = append(out, m[1])
		}
	}
	return out
}
