package prov

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Query parses and executes a SQL statement against the database,
// taking a consistent snapshot so it can run while the workflow is
// still executing (runtime provenance queries, §IV.B).
func (db *DB) Query(sql string) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.execute(q)
}

// boundTable is a snapshot of one FROM entry.
type boundTable struct {
	alias string
	table *Table
	rows  [][]Value
}

func (db *DB) snapshot(q *query) ([]boundTable, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []boundTable
	for _, tr := range q.From {
		t, err := db.table(tr.Name)
		if err != nil {
			return nil, err
		}
		rows := make([][]Value, len(t.Rows))
		for i, r := range t.Rows {
			rows[i] = append([]Value(nil), r...)
		}
		out = append(out, boundTable{alias: strings.ToLower(tr.Alias), table: t, rows: rows})
	}
	return out, nil
}

// env binds aliases to current rows during evaluation.
type env struct {
	tables []boundTable
	rows   []int // index into tables[i].rows; -1 = unbound
}

func (e *env) lookup(ref colRef) (Value, error) {
	if ref.Table != "" {
		at := strings.ToLower(ref.Table)
		for i, bt := range e.tables {
			if bt.alias == at {
				if e.rows[i] < 0 {
					return nil, fmt.Errorf("prov: alias %q not bound", ref.Table)
				}
				ci := bt.table.ColumnIndex(ref.Col)
				if ci < 0 {
					return nil, fmt.Errorf("prov: column %q not in table %q", ref.Col, bt.table.Name)
				}
				return bt.rows[e.rows[i]][ci], nil
			}
		}
		return nil, fmt.Errorf("prov: unknown table alias %q", ref.Table)
	}
	found := -1
	var v Value
	for i, bt := range e.tables {
		ci := bt.table.ColumnIndex(ref.Col)
		if ci < 0 {
			continue
		}
		if found >= 0 {
			return nil, fmt.Errorf("prov: column %q is ambiguous", ref.Col)
		}
		found = i
		if e.rows[i] < 0 {
			return nil, fmt.Errorf("prov: column %q referenced before its table is bound", ref.Col)
		}
		v = bt.rows[e.rows[i]][ci]
	}
	if found < 0 {
		return nil, fmt.Errorf("prov: unknown column %q", ref.Col)
	}
	return v, nil
}

// aliasesOf returns the set of table aliases an expression references
// (empty string marks bare columns, resolvable once all tables bind).
func aliasesOf(e expr, out map[string]bool) {
	switch x := e.(type) {
	case colRef:
		out[strings.ToLower(x.Table)] = true
	case binExpr:
		aliasesOf(x.L, out)
		aliasesOf(x.R, out)
	case funcCall:
		for _, a := range x.Args {
			aliasesOf(a, out)
		}
	}
}

func boolAliases(b boolExpr, m map[string]bool) {
	switch x := b.(type) {
	case boolCond:
		aliasesOf(x.C.L, m)
		if x.C.R != nil {
			aliasesOf(x.C.R, m)
		}
		for _, e := range x.C.In {
			aliasesOf(e, m)
		}
	case boolAnd:
		boolAliases(x.L, m)
		boolAliases(x.R, m)
	case boolOr:
		boolAliases(x.L, m)
		boolAliases(x.R, m)
	case boolNot:
		boolAliases(x.E, m)
	}
}

// conjuncts flattens top-level ANDs so each conjunct can be pushed
// independently to the join depth where its aliases bind.
func conjuncts(b boolExpr) []boolExpr {
	if b == nil {
		return nil
	}
	if a, ok := b.(boolAnd); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []boolExpr{b}
}

// execute runs the compiled query.
func (db *DB) execute(q *query) (*Result, error) {
	tables, err := db.snapshot(q)
	if err != nil {
		return nil, err
	}
	e := &env{tables: tables, rows: make([]int, len(tables))}
	for i := range e.rows {
		e.rows[i] = -1
	}

	// Predicate pushdown: a conjunct fires at the first join depth
	// where all its aliases are bound.
	condAt := make([][]boolExpr, len(tables))
	for _, c := range conjuncts(q.Where) {
		need := map[string]bool{}
		boolAliases(c, need)
		depth := len(tables) - 1
		if !need[""] { // bare columns need everything bound
			depth = 0
			for d, bt := range tables {
				if need[bt.alias] && d > depth {
					depth = d
				}
			}
		}
		condAt[depth] = append(condAt[depth], c)
	}

	var joined []([]int)
	var joinErr error
	var recurse func(depth int)
	recurse = func(depth int) {
		if joinErr != nil {
			return
		}
		if depth == len(tables) {
			joined = append(joined, append([]int(nil), e.rows...))
			return
		}
		for ri := range tables[depth].rows {
			e.rows[depth] = ri
			ok := true
			for _, c := range condAt[depth] {
				pass, err := evalBool(e, c)
				if err != nil {
					joinErr = err
					return
				}
				if !pass {
					ok = false
					break
				}
			}
			if ok {
				recurse(depth + 1)
			}
		}
		e.rows[depth] = -1
	}
	recurse(0)
	if joinErr != nil {
		return nil, joinErr
	}

	grouped := len(q.GroupBy) > 0
	if !grouped {
		for _, it := range q.Select {
			if hasAggregate(it.Expr) {
				grouped = true
				break
			}
		}
	}

	res := &Result{}
	for _, it := range q.Select {
		res.Columns = append(res.Columns, it.Alias)
	}

	if grouped {
		groups := map[string][][]int{}
		var order []string
		for _, rows := range joined {
			e.rows = rows
			var key strings.Builder
			for _, g := range q.GroupBy {
				v, err := e.lookup(g)
				if err != nil {
					return nil, err
				}
				key.WriteString(formatValue(v))
				key.WriteByte('\x00')
			}
			k := key.String()
			if _, seen := groups[k]; !seen {
				order = append(order, k)
			}
			groups[k] = append(groups[k], rows)
		}
		if len(q.GroupBy) == 0 && len(joined) > 0 {
			order = []string{""}
			groups[""] = joined
		}
		if len(q.GroupBy) == 0 && len(joined) == 0 {
			// Aggregates over an empty set still yield one row.
			order = []string{""}
			groups[""] = nil
		}
		type outRow struct {
			vals []Value
			keys []Value
		}
		var rows []outRow
		for _, k := range order {
			g := groups[k]
			var vals []Value
			for _, it := range q.Select {
				v, err := evalGrouped(e, it.Expr, g)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			var keys []Value
			for _, ob := range q.OrderBy {
				v, err := evalGrouped(e, ob.Expr, g)
				if err != nil {
					return nil, err
				}
				keys = append(keys, v)
			}
			rows = append(rows, outRow{vals: vals, keys: keys})
		}
		if len(q.OrderBy) > 0 {
			sort.SliceStable(rows, func(i, j int) bool {
				return orderLess(q.OrderBy, rows[i].keys, rows[j].keys)
			})
		}
		for _, r := range rows {
			res.Rows = append(res.Rows, r.vals)
		}
	} else {
		type outRow struct {
			vals []Value
			keys []Value
		}
		var rows []outRow
		for _, rset := range joined {
			e.rows = rset
			var vals []Value
			for _, it := range q.Select {
				v, err := evalExpr(e, it.Expr)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			var keys []Value
			for _, ob := range q.OrderBy {
				v, err := evalExpr(e, ob.Expr)
				if err != nil {
					return nil, err
				}
				keys = append(keys, v)
			}
			rows = append(rows, outRow{vals, keys})
		}
		if len(q.OrderBy) > 0 {
			sort.SliceStable(rows, func(i, j int) bool {
				return orderLess(q.OrderBy, rows[i].keys, rows[j].keys)
			})
		}
		for _, r := range rows {
			res.Rows = append(res.Rows, r.vals)
		}
	}

	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

func orderLess(obs []orderItem, a, b []Value) bool {
	for i, ob := range obs {
		c := compareValues(a[i], b[i])
		if c == 0 {
			continue
		}
		if ob.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

func hasAggregate(e expr) bool {
	switch x := e.(type) {
	case funcCall:
		switch x.Name {
		case "min", "max", "sum", "avg", "count":
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case binExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	}
	return false
}

func evalBool(e *env, b boolExpr) (bool, error) {
	switch x := b.(type) {
	case boolCond:
		return evalCondition(e, x.C)
	case boolAnd:
		l, err := evalBool(e, x.L)
		if err != nil || !l {
			return false, err
		}
		return evalBool(e, x.R)
	case boolOr:
		l, err := evalBool(e, x.L)
		if err != nil || l {
			return l, err
		}
		return evalBool(e, x.R)
	case boolNot:
		v, err := evalBool(e, x.E)
		return !v, err
	default:
		return false, fmt.Errorf("prov: unsupported boolean expression %T", b)
	}
}

func evalCondition(e *env, c condition) (bool, error) {
	l, err := evalExpr(e, c.L)
	if err != nil {
		return false, err
	}
	if c.Op == "in" {
		for _, item := range c.In {
			v, err := evalExpr(e, item)
			if err != nil {
				return false, err
			}
			if compareValues(l, v) == 0 {
				return !c.Neg, nil
			}
		}
		return c.Neg, nil
	}
	r, err := evalExpr(e, c.R)
	if err != nil {
		return false, err
	}
	if c.Op == "like" {
		ls, ok1 := l.(string)
		rs, ok2 := r.(string)
		if !ok1 || !ok2 {
			return false, fmt.Errorf("prov: LIKE needs string operands")
		}
		m := likeMatch(ls, rs)
		if c.Neg {
			m = !m
		}
		return m, nil
	}
	cmp := compareValues(l, r)
	switch c.Op {
	case "=":
		return cmp == 0, nil
	case "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case ">":
		return cmp > 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("prov: unknown operator %q", c.Op)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one).
func likeMatch(s, pat string) bool {
	var match func(si, pi int) bool
	match = func(si, pi int) bool {
		for pi < len(pat) {
			switch pat[pi] {
			case '%':
				for k := si; k <= len(s); k++ {
					if match(k, pi+1) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(s) {
					return false
				}
				si++
				pi++
			default:
				if si >= len(s) || s[si] != pat[pi] {
					return false
				}
				si++
				pi++
			}
		}
		return si == len(s)
	}
	return match(0, 0)
}

func evalExpr(e *env, ex expr) (Value, error) {
	switch x := ex.(type) {
	case litNum:
		return x.V, nil
	case litStr:
		return x.V, nil
	case colRef:
		return e.lookup(x)
	case binExpr:
		return evalBin(e, x)
	case funcCall:
		return evalFunc(e, x)
	default:
		return nil, fmt.Errorf("prov: unsupported expression %T", ex)
	}
}

func evalBin(e *env, b binExpr) (Value, error) {
	l, err := evalExpr(e, b.L)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(e, b.R)
	if err != nil {
		return nil, err
	}
	// timestamp - timestamp = interval in seconds (float64).
	if lt, ok := l.(time.Time); ok {
		if rt, ok := r.(time.Time); ok && b.Op == "-" {
			return lt.Sub(rt).Seconds(), nil
		}
	}
	lf, ok1 := numeric(l)
	rf, ok2 := numeric(r)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("prov: arithmetic on non-numeric values %v %s %v", l, b.Op, r)
	}
	switch b.Op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("prov: division by zero")
		}
		return lf / rf, nil
	default:
		return nil, fmt.Errorf("prov: unknown arithmetic operator %q", b.Op)
	}
}

func evalFunc(e *env, f funcCall) (Value, error) {
	switch f.Name {
	case "extract":
		if len(f.Args) != 2 {
			return nil, fmt.Errorf("prov: extract needs field and expression")
		}
		field, _ := f.Args[0].(litStr)
		if field.V != "epoch" {
			return nil, fmt.Errorf("prov: extract supports 'epoch' only, got %q", field.V)
		}
		v, err := evalExpr(e, f.Args[1])
		if err != nil {
			return nil, err
		}
		switch x := v.(type) {
		case float64: // interval already in seconds
			return x, nil
		case int64:
			return float64(x), nil
		case time.Time:
			return float64(x.UnixNano()) / 1e9, nil
		default:
			return nil, fmt.Errorf("prov: extract(epoch) from %T unsupported", v)
		}
	case "min", "max", "sum", "avg", "count":
		return nil, fmt.Errorf("prov: aggregate %s used outside grouped context", f.Name)
	default:
		return nil, fmt.Errorf("prov: unknown function %q", f.Name)
	}
}

// evalGrouped evaluates an expression over a group of joined rows:
// aggregates fold the group, other expressions evaluate on the first
// row (SQL requires them to be functionally dependent on the group
// key; we follow PostgreSQL 8.4's permissiveness).
func evalGrouped(e *env, ex expr, group [][]int) (Value, error) {
	switch x := ex.(type) {
	case funcCall:
		switch x.Name {
		case "min", "max", "sum", "avg", "count":
			return foldAggregate(e, x, group)
		}
	case binExpr:
		if hasAggregate(x) {
			l, err := evalGrouped(e, x.L, group)
			if err != nil {
				return nil, err
			}
			r, err := evalGrouped(e, x.R, group)
			if err != nil {
				return nil, err
			}
			return evalBin(&env{}, binExpr{Op: x.Op, L: litVal(l), R: litVal(r)})
		}
	}
	if len(group) == 0 {
		return nil, nil
	}
	e.rows = group[0]
	return evalExpr(e, ex)
}

// litVal wraps an already-evaluated value back into an expression so
// evalBin can combine aggregate results.
func litVal(v Value) expr {
	switch x := v.(type) {
	case float64:
		return litNum{x}
	case int64:
		return litNum{float64(x)}
	case string:
		return litStr{x}
	default:
		return litNum{0}
	}
}

func foldAggregate(e *env, f funcCall, group [][]int) (Value, error) {
	if f.Name == "count" && f.Star {
		return int64(len(group)), nil
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("prov: %s needs exactly one argument", f.Name)
	}
	if f.Name == "count" && f.Distinct {
		seen := map[string]bool{}
		for _, rows := range group {
			e.rows = rows
			v, err := evalExpr(e, f.Args[0])
			if err != nil {
				return nil, err
			}
			if v != nil {
				seen[formatValue(v)] = true
			}
		}
		return int64(len(seen)), nil
	}
	var (
		acc   float64
		n     int
		first = true
		best  Value
	)
	for _, rows := range group {
		e.rows = rows
		v, err := evalExpr(e, f.Args[0])
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		n++
		switch f.Name {
		case "count":
			continue
		case "min":
			if first || compareValues(v, best) < 0 {
				best = v
			}
		case "max":
			if first || compareValues(v, best) > 0 {
				best = v
			}
		case "sum", "avg":
			fv, ok := numeric(v)
			if !ok {
				return nil, fmt.Errorf("prov: %s over non-numeric value %v", f.Name, v)
			}
			acc += fv
		}
		first = false
	}
	switch f.Name {
	case "count":
		return int64(n), nil
	case "min", "max":
		return best, nil
	case "sum":
		if n == 0 {
			return nil, nil
		}
		return acc, nil
	case "avg":
		if n == 0 {
			return nil, nil
		}
		return acc / float64(n), nil
	}
	return nil, fmt.Errorf("prov: unreachable aggregate %q", f.Name)
}

// Format renders the result like psql's aligned output (the style of
// Figures 10 and 11 in the paper).
func (r *Result) Format() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatValue(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				sb.WriteString(" | ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], s)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "(%d rows)\n", len(r.Rows))
	return sb.String()
}
