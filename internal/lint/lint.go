// Package lint is scidock's domain-aware static-analysis engine: a
// small analyzer framework on the standard library's go/ast, go/parser,
// go/token and go/types (no external dependencies), plus the analyzers
// that mechanically enforce the invariants the paper's results depend
// on — deterministic scoring, consistent PROV-Wf activation capture,
// seeded stochastic search and leak-free worker loops.
//
// The cmd/scilint driver loads every package in the module, runs the
// registered analyzers over each typed package and reports diagnostics
// with file:line positions and severities. Findings can be suppressed
// at the source line with a recognized directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or the line immediately above it. The
// reason is mandatory; a directive without one is ignored.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies a diagnostic. Error findings fail the CI gate;
// Warn findings are reported but do not affect the exit status.
type Severity int

const (
	Warn Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// ParseSeverity converts a flag value into a Severity.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Warn, fmt.Errorf("lint: unknown severity %q (want warn or error)", s)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Severity Severity       `json:"-"`
	Sev      string         `json:"severity"`
	Pos      token.Position `json:"position"`
	Message  string         `json:"message"`
}

// Analyzer is one self-contained check. Run inspects a typed package
// through the Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Severity is the default severity of this analyzer's findings.
	Severity Severity
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass couples one analyzer with one package for a single run.
type Pass struct {
	*Package
	analyzer *Analyzer
	diags    *[]Diagnostic
	// all is every package of this Run, for interprocedural analyzers
	// (detflow's call graph, dimcheck's cross-package unit seeds).
	all []*Package
	// shared is per-Run scratch shared across packages and analyzers;
	// expensive structures (call graph, unit seeds, per-function CFGs)
	// are built once per Run and memoized here.
	shared *runShared
}

// runShared caches per-Run interprocedural state. Run is
// single-goroutine, so no locking.
type runShared struct {
	cfgs      map[ast.Node]*CFG // *ast.FuncDecl -> its CFG
	callgraph *callGraph
	dimSeeds  *dimSeeds
}

// FuncCFG returns the (cached) control-flow graph of a declared
// function body, using the package's type info to classify
// terminating calls (panic, os.Exit, log.Fatal*, runtime.Goexit).
func (p *Pass) FuncCFG(fd *ast.FuncDecl) *CFG {
	if g, ok := p.shared.cfgs[fd]; ok {
		return g
	}
	g := BuildCFG(fd.Body, p.isTerminatingCall)
	p.shared.cfgs[fd] = g
	return g
}

// isTerminatingCall reports whether a call never returns: the panic
// builtin, os.Exit, runtime.Goexit, or log.Fatal*/log.Panic*.
func (p *Package) isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic" && p.Info.Uses[fun] == nil
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return false
		}
		switch pn.Imported().Path() {
		case "os":
			return fun.Sel.Name == "Exit"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		case "log":
			return strings.HasPrefix(fun.Sel.Name, "Fatal") ||
				strings.HasPrefix(fun.Sel.Name, "Panic")
		}
	}
	return false
}

// Reportf records a finding at the analyzer's default severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportSevf(p.analyzer.Severity, pos, format, args...)
}

// ReportSevf records a finding with an explicit severity.
func (p *Pass) ReportSevf(sev Severity, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Severity: sev,
		Sev:      sev.String(),
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the
// suppression-filtered findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	shared := &runShared{cfgs: map[ast.Node]*CFG{}}
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			an.Run(&Pass{Package: pkg, analyzer: an, diags: &diags, all: pkgs, shared: shared})
		}
	}
	diags = filterIgnored(pkgs, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- shared type helpers ---------------------------------------------

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf is a nil-tolerant Info.TypeOf.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// calleeFunc resolves the *types.Func a call statically dispatches to,
// or nil for dynamic calls, conversions and builtins.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedFrom unwraps pointers and aliases and returns the named type
// and its (package path, name), if t is a named type.
func namedFrom(t types.Type) (path, name string, ok bool) {
	if t == nil {
		return "", "", false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isSyncLocker reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	path, name, ok := namedFrom(t)
	return ok && path == "sync" && (name == "Mutex" || name == "RWMutex")
}

// containsLocker reports whether t is a mutex or a struct with a
// direct (possibly embedded) mutex field.
func containsLocker(t types.Type) bool {
	if t == nil {
		return false
	}
	if isSyncLocker(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isSyncLocker(ft) {
			return true
		}
		if _, isPtr := ft.(*types.Pointer); isPtr {
			continue
		}
		if fst, ok := ft.Underlying().(*types.Struct); ok && fst != st.Underlying() {
			for j := 0; j < fst.NumFields(); j++ {
				if isSyncLocker(fst.Field(j).Type()) {
					return true
				}
			}
		}
	}
	return false
}
