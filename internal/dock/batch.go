package dock

import (
	"fmt"

	"repro/internal/chem"
)

// Batch is a structure-of-arrays pose coordinate buffer: the
// materialized coordinates of up to capPoses candidate poses stored as
// three contiguous component slices (xs/ys/zs) with one ligand-sized
// stride per pose. Scoring a batch walks the receptor side of the loop
// nest once — each CSR neighbor span and each radial-table segment is
// loaded once per batch instead of once per pose — which is where the
// batched engines get their cache locality (DESIGN.md §4 "Batched
// scoring and SoA layout").
//
// Append only stages the pose parameters; materialization into the
// component lanes is deferred to the first SoA/At call and runs as one
// chem.TorsionTree.ApplyTorsionsBatch kernel over the whole appended
// window, so rigid fragments are reset once per pose instead of the
// old per-pose AoS staging copy (DESIGN.md "Tolerance-bounded scoring
// and batched kinematics").
//
// A Batch is NOT safe for concurrent use; like Workspace, each search
// worker owns its own. Appending beyond the high-water mark grows the
// storage; once warm, Reset/Append cycles allocate nothing.
type Batch struct {
	lig        *Ligand
	stride     int
	n          int              // poses appended
	mat        int              // poses materialized into the lanes
	poses      []chem.Placement // staged parameters, len == high-water mark
	kin        chem.KinScratch
	xs, ys, zs []float64
	acc        []float64 // scorer per-pose accumulator scratch
	acc32      []float32 // fast-path float32 accumulator scratch
	hits       []Hit     // scorer hit gather scratch

	// Incumbent-anchored window state (window.go). Deliberately NOT
	// cleared by Reset: the search loops refill the batch chunk by chunk
	// inside one window, and the shared gather must survive the refills.
	win struct {
		set    bool
		stamp  uint64 // bumped by SetWindow/SetWindowBound; keys the caches
		anchor []chem.Vec3
		pose   Pose // scratch copy used to materialize the anchor
		bound  float64
		bound2 float64
		validN int // poses for which valid[] is computed
		valid  []bool

		// Engine-owned caches, valid while owner and stamp both match.
		gatherOwner any
		gatherStamp uint64
		cands       []PackedAtom
		offs        []int32

		pairOwner any
		pairStamp uint64
		pairs     []int32
	}
}

// Hit is one in-cutoff candidate of a batched scoring query: its
// squared distance and its radial-table class, packed to 16 bytes so
// the gather loop's two stores land on one cache line slot and the
// evaluation loop's reload is a single indexed access.
type Hit struct {
	R2  float64
	Cls int32
	_   int32
}

// NewBatch builds a batch for the ligand with initial capacity for
// capPoses poses (it grows beyond that on demand).
func NewBatch(lig *Ligand, capPoses int) *Batch {
	if capPoses < 0 {
		capPoses = 0
	}
	stride := lig.Mol.NumAtoms()
	return &Batch{
		lig:    lig,
		stride: stride,
		poses:  make([]chem.Placement, 0, capPoses),
		xs:     make([]float64, 0, capPoses*stride),
		ys:     make([]float64, 0, capPoses*stride),
		zs:     make([]float64, 0, capPoses*stride),
	}
}

// Ligand returns the conformational model the batch serves.
func (b *Batch) Ligand() *Ligand { return b.lig }

// Len returns the number of poses currently in the batch.
func (b *Batch) Len() int { return b.n }

// Stride returns the per-pose atom stride: pose p's atom i lives at
// index p*Stride()+i of each component slice.
func (b *Batch) Stride() int { return b.stride }

// Reset empties the batch, keeping its storage. The window (if set)
// stays active — only the per-pose validity cache is dropped with the
// poses; use ClearWindow to end a window.
func (b *Batch) Reset() { b.n, b.mat, b.win.validN = 0, 0, 0 }

// SoA returns the three component slices, each Len()*Stride() long,
// materializing any poses appended since the last call. They alias the
// batch storage and are overwritten by Reset/Append.
func (b *Batch) SoA() (xs, ys, zs []float64) {
	b.materialize()
	n := b.n * b.stride
	return b.xs[:n], b.ys[:n], b.zs[:n]
}

// At returns pose p's atom i coordinates (test and debugging helper;
// the scoring kernels read the component slices directly).
func (b *Batch) At(p, i int) chem.Vec3 {
	b.materialize()
	at := p*b.stride + i
	return chem.V(b.xs[at], b.ys[at], b.zs[at])
}

// Append stages the pose's parameters into the next batch slot and
// returns the slot index. Coordinates are materialized lazily, but the
// floating-point operation sequence of the batched kernel is exactly
// Ligand.CoordsInto's, so a batched score of slot p is bit-identical
// to scoring ws.Coords(pose) for the same pose. The pose is copied:
// later mutations of p or its torsion slice do not affect the slot.
func (b *Batch) Append(p Pose) int {
	if len(p.Torsions) != b.lig.NumTorsions() {
		panic(fmt.Sprintf("dock: pose has %d torsions, ligand %d", len(p.Torsions), b.lig.NumTorsions()))
	}
	slot := b.n
	if slot < len(b.poses) {
		pl := &b.poses[slot]
		pl.Orientation = p.Orientation
		pl.Translation = p.Translation
		pl.Angles = append(pl.Angles[:0], p.Torsions...)
	} else {
		b.poses = append(b.poses, chem.Placement{
			Orientation: p.Orientation,
			Translation: p.Translation,
			Angles:      append(make([]float64, 0, cap(p.Torsions)), p.Torsions...),
		})
	}
	b.n++
	return slot
}

// materialize runs the batched kinematics kernel over the poses staged
// since the last materialization, growing the component lanes as
// needed (already-materialized slots are preserved across growth).
func (b *Batch) materialize() {
	if b.mat == b.n {
		return
	}
	need := b.n * b.stride
	have := b.mat * b.stride
	if cap(b.xs) >= need {
		b.xs, b.ys, b.zs = b.xs[:need], b.ys[:need], b.zs[:need]
	} else {
		b.xs = append(b.xs[:have], make([]float64, need-have)...)
		b.ys = append(b.ys[:have], make([]float64, need-have)...)
		b.zs = append(b.zs[:have], make([]float64, need-have)...)
	}
	b.lig.Tree.ApplyTorsionsBatch(&b.kin, b.lig.base, b.poses[b.mat:b.n],
		b.xs[have:need:need], b.ys[have:need:need], b.zs[have:need:need])
	b.mat = b.n
}

// Scratch returns a zeroed float64 accumulator of length n, reused
// across calls. It is scorer scratch: ScoreBatch implementations use
// it for per-pose partial sums, so callers must not pass a slice that
// aliases it as the output buffer.
func (b *Batch) Scratch(n int) []float64 {
	if cap(b.acc) < n {
		b.acc = make([]float64, n)
	}
	b.acc = b.acc[:n]
	for i := range b.acc {
		b.acc[i] = 0
	}
	return b.acc
}

// Scratch32 returns a zeroed float32 accumulator of length n, reused
// across calls — the tolerance-bounded fast scorers' counterpart of
// Scratch. Distinct storage from Scratch, so a kernel may use both.
func (b *Batch) Scratch32(n int) []float32 {
	if cap(b.acc32) < n {
		b.acc32 = make([]float32, n)
	}
	b.acc32 = b.acc32[:n]
	for i := range b.acc32 {
		b.acc32[i] = 0
	}
	return b.acc32
}

// Hits returns a gather buffer of power-of-two length ≥ n, reused
// across calls — scratch for scorers that collect the in-cutoff hits
// of one query with unconditional stores and a conditionally advanced
// cursor, then evaluate the radial tables over the compact hit list in
// order. The power-of-two length lets the store loop index with
// cursor&(len-1), which the compiler proves in-bounds, removing the
// bounds check from the hot store. Contents are not zeroed.
func (b *Batch) Hits(n int) []Hit {
	if cap(b.hits) < n {
		p2 := 1
		for p2 < n {
			p2 <<= 1
		}
		b.hits = make([]Hit, p2)
	}
	return b.hits[:cap(b.hits)]
}
