package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	s := &Suite{Quick: true}
	out, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"TABLE 1", "TABLE 2", "TABLE 3",
		"FIGURE 5", "FIGURE 6", "FIGURE 7", "FIGURE 8", "FIGURE 9",
		"FIGURE 10", "FIGURE 11",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in combined output", want)
		}
	}
	if !strings.Contains(out, "m3.xlarge") || !strings.Contains(out, "m3.2xlarge") {
		t.Error("Table 1 lacks the instance types")
	}
	if !strings.Contains(out, "2HHN") {
		t.Error("Table 2 lacks receptor codes")
	}
	if !strings.Contains(out, "improvement@32") {
		t.Error("Figure 7 lacks the improvement metric")
	}
	if !strings.Contains(out, ".dlg") {
		t.Error("Figure 11 lacks dlg files")
	}
}

func TestByName(t *testing.T) {
	s := &Suite{Quick: true}
	if _, err := s.ByName("t1"); err != nil {
		t.Errorf("t1: %v", err)
	}
	if _, err := s.ByName("F8"); err != nil {
		t.Errorf("case-insensitive dispatch: %v", err)
	}
	if _, err := s.ByName("f99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSweepMemoized(t *testing.T) {
	s := &Suite{Quick: true}
	a1, _, err := s.sweep()
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := s.sweep()
	if err != nil {
		t.Fatal(err)
	}
	if &a1.Points[0] != &a2.Points[0] {
		t.Error("sweep recomputed instead of memoized")
	}
}

func TestKernelsQuick(t *testing.T) {
	s := &Suite{Quick: true}
	rep, err := s.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	sweepNames := func(prefix string) []string {
		return []string{
			prefix + "_score_per_pose", prefix + "_score_batch1", prefix + "_score_batch8",
			prefix + "_score_batch16", prefix + "_score_batch50", prefix + "_score_batch150",
			prefix + "_score_fast_batch1", prefix + "_score_fast_batch8",
			prefix + "_score_fast_batch16", prefix + "_score_fast_batch50", prefix + "_score_fast_batch150",
			prefix + "_score_per_pose_winpop",
			prefix + "_score_batch50_winpop", prefix + "_score_fast_batch50_winpop",
			prefix + "_score_batch50_window", prefix + "_score_fast_batch50_window",
		}
	}
	want := []string{
		"grid_generate_reference", "grid_generate_tables_1w", "grid_generate_tables_allcores",
		"vina_score_analytic", "vina_score_tables",
		"ad4_score_analytic", "ad4_score_tables",
	}
	want = append(want, sweepNames("vina")...)
	want = append(want, sweepNames("ad4")...)
	want = append(want, sweepNames("large_vina")...)
	want = append(want, sweepNames("large_ad4")...)
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmarks, want %d", len(rep.Benchmarks), len(want))
	}
	for i, b := range rep.Benchmarks {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, want[i])
		}
		if b.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v", b.Name, b.NsPerOp)
		}
		table := strings.Contains(b.Name, "tables")
		if table && b.Speedup <= 0 {
			t.Errorf("%s: missing speedup", b.Name)
		}
		if !table && b.Speedup != 0 {
			t.Errorf("%s: baseline has speedup %v", b.Name, b.Speedup)
		}
		if b.Workload != "reference" && b.Workload != "large" {
			t.Errorf("%s: workload tag %q", b.Name, b.Workload)
		}
		if strings.HasPrefix(b.Name, "large_") != (b.Workload == "large") {
			t.Errorf("%s: workload tag %q does not match name", b.Name, b.Workload)
		}
		switch {
		case strings.Contains(b.Name, "_batch"):
			if b.BatchSize <= 0 || b.NsPerPose <= 0 || b.SpeedupVsPerPose <= 0 {
				t.Errorf("%s: incomplete batch cell %+v", b.Name, b)
			}
			if b.MedianNsPerPose < b.NsPerPose {
				t.Errorf("%s: median ns/pose %v below min-round ns/pose %v",
					b.Name, b.MedianNsPerPose, b.NsPerPose)
			}
			fast := strings.Contains(b.Name, "_fast_")
			if fast != (b.Precision == "tolerance") {
				t.Errorf("%s: precision tag %q does not match name", b.Name, b.Precision)
			}
			if fast && b.MaxBoundExcess > 0 {
				t.Errorf("%s: tolerance envelope violated by %g", b.Name, b.MaxBoundExcess)
			}
			if strings.HasSuffix(b.Name, "_window") != (b.SpeedupVsBatch > 0) {
				t.Errorf("%s: speedup_vs_batch %v does not match window naming",
					b.Name, b.SpeedupVsBatch)
			}
		case strings.Contains(b.Name, "per_pose"):
			if b.NsPerPose <= 0 || b.BatchSize != 0 || b.SpeedupVsPerPose != 0 {
				t.Errorf("%s: bad per-pose baseline %+v", b.Name, b)
			}
		default:
			if b.BatchSize != 0 || b.NsPerPose != 0 || b.SpeedupVsPerPose != 0 {
				t.Errorf("%s: non-sweep row carries batch fields %+v", b.Name, b)
			}
		}
	}
	if len(rep.Workloads) != 2 || rep.Workloads[0].Name != "reference" || rep.Workloads[1].Name != "large" {
		t.Fatalf("workload metadata = %+v, want reference + large", rep.Workloads)
	}
	for _, w := range rep.Workloads {
		if w.ReceptorAtoms <= 0 || w.LigandAtoms <= 0 || w.AD4TypeCount <= 0 || w.Torsions < 0 ||
			w.VinaExactTableBytes <= 0 || w.VinaFastTableBytes <= 0 ||
			w.AD4ExactTableBytes <= 0 || w.AD4FastTableBytes <= 0 {
			t.Errorf("workload %s: incomplete metadata %+v", w.Name, w)
		}
	}
	lw := rep.Workloads[1]
	if lw.LigandAtoms < 120 || lw.AD4TypeCount < 14 || lw.Torsions < 12 {
		t.Errorf("large workload shape %+v misses the L2-overflow contract (>=120 atoms, >=14 types, >=12 torsions)", lw)
	}
	if lw.VinaExactTableBytes <= rep.Workloads[0].VinaExactTableBytes {
		t.Errorf("large vina exact working set (%d B) not larger than reference (%d B)",
			lw.VinaExactTableBytes, rep.Workloads[0].VinaExactTableBytes)
	}
	if rep.Note == "" {
		t.Error("report note (1-CPU measurement caveat) missing")
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ns_per_op", "allocs_per_op", "speedup_vs_analytic",
		"gomaxprocs", "batch_size", "ns_per_pose", "speedup_vs_per_pose", "note",
		"median_ns_per_pose", "speedup_vs_batch", "workloads", "vina_exact_table_bytes",
		"ad4_exact_table_bytes", "ad4_type_count"} {
		if !strings.Contains(string(js), key) {
			t.Errorf("JSON missing %q", key)
		}
	}
	if out, err := s.ByName("kernels"); err != nil || !strings.Contains(out, "KERNEL BENCHMARKS") {
		t.Errorf("ByName(kernels) = %q, %v", out, err)
	}
}

func TestPipelineQuick(t *testing.T) {
	s := &Suite{Quick: true}
	rep, err := s.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	// Three core counts, failure injection off and on for each.
	if len(rep.Entries) != 6 {
		t.Fatalf("got %d entries, want 6", len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if e.BarrierTET <= 0 || e.PipelinedTET <= 0 {
			t.Errorf("c=%d failures=%v: non-positive TET %+v", e.Cores, e.Failures, e)
		}
		if e.Speedup <= 0 {
			t.Errorf("c=%d failures=%v: speedup %v", e.Cores, e.Failures, e.Speedup)
		}
		if e.Activations <= 0 {
			t.Errorf("c=%d failures=%v: no activations", e.Cores, e.Failures)
		}
		if e.Failures && e.Recovered == 0 {
			t.Errorf("c=%d: injection on but no recovered failures", e.Cores)
		}
		if !e.Failures && e.Recovered != 0 {
			t.Errorf("c=%d: injection off but %d recovered failures", e.Cores, e.Recovered)
		}
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"barrier_tet_secs", "pipelined_tet_secs", "failure_injection", "speedup"} {
		if !strings.Contains(string(js), key) {
			t.Errorf("JSON missing %q", key)
		}
	}
	if out, err := s.ByName("pipeline"); err != nil || !strings.Contains(out, "PIPELINE BENCHMARKS") {
		t.Errorf("ByName(pipeline) = %q, %v", out, err)
	}
}

func TestCampaignsQuick(t *testing.T) {
	s := &Suite{Quick: true}
	rep, err := s.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (solo and concurrent)", len(rep.Entries))
	}
	solo, four := rep.Entries[0], rep.Entries[1]
	if solo.Concurrency != 1 || four.Concurrency != 4 {
		t.Fatalf("concurrency levels = %d, %d, want 1, 4", solo.Concurrency, four.Concurrency)
	}
	for _, b := range rep.Entries {
		if len(b.Runs) != b.Concurrency {
			t.Errorf("level %d: %d runs", b.Concurrency, len(b.Runs))
		}
		if b.TotalWallSecs <= 0 || b.FairnessSpread < 1 {
			t.Errorf("level %d: wall %v, spread %v", b.Concurrency, b.TotalWallSecs, b.FairnessSpread)
		}
		for _, run := range b.Runs {
			if run.VirtualTET <= 0 || run.Activations <= 0 {
				t.Errorf("level %d seed %d: empty run %+v", b.Concurrency, run.Seed, run)
			}
		}
	}
	// Distinct seeds, so the concurrent campaigns are genuinely
	// different campaigns, not one campaign four times.
	seeds := map[int64]bool{}
	for _, run := range four.Runs {
		seeds[run.Seed] = true
	}
	if len(seeds) != 4 {
		t.Errorf("concurrent level reused seeds: %v", four.Runs)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fairness_spread", "total_wall_secs", "virtual_tet_secs", "pool_capacity"} {
		if !strings.Contains(string(js), key) {
			t.Errorf("JSON missing %q", key)
		}
	}
	if out, err := s.ByName("campaigns"); err != nil || !strings.Contains(out, "CAMPAIGN-SERVICE BENCHMARKS") {
		t.Errorf("ByName(campaigns) = %q, %v", out, err)
	}
}

func TestTable3IncludesConsensus(t *testing.T) {
	s := &Suite{Quick: true}
	out, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Spearman", "common pairs", "total FEB(-)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q", want)
		}
	}
}
