package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cloud"
)

// Activation is one schedulable unit: an (activity, tuple) pair with
// its simulated execution attempts (failed tries then the success).
type Activation struct {
	ID       int64
	Tag      string
	Key      string    // stable identity, e.g. "autodock4|0E6_2HHN"
	Attempts []float64 // seconds on a reference core, per attempt
	IOTime   float64   // shared-FS staging time added once
	// Estimate is the scheduler's cost belief for ordering decisions.
	// SciCumulus estimates from provenance history (it cannot know
	// true durations in advance); zero means "use the true cost"
	// (oracle ordering, the ablation baseline).
	Estimate float64
}

// TotalCost returns the reference-core seconds across all attempts.
func (a Activation) TotalCost() float64 {
	var s float64
	for _, d := range a.Attempts {
		s += d
	}
	return s + a.IOTime
}

// PlanningCost is the weight the greedy scheduler orders by: the
// provenance estimate when present, the true cost otherwise.
func (a Activation) PlanningCost() float64 {
	if a.Estimate > 0 {
		return a.Estimate
	}
	return a.TotalCost()
}

// Placement is the scheduler's decision for one activation.
type Placement struct {
	Activation Activation
	VMID       string
	Core       int
	Start      float64 // virtual seconds
	End        float64
	Failures   int
}

// coreState tracks one worker core during planning.
type coreState struct {
	vm   *cloud.VM
	core int
}

// coreKey identifies a core across Place calls (fleets may grow or
// shrink between calls under adaptive elasticity).
type coreKey struct {
	vmID string
	core int
}

// eligibleCores enumerates the usable cores of a fleet in stable
// (fleet, core-index) order, honoring the worker cap.
func eligibleCores(vms []*cloud.VM, cap int) ([]coreState, error) {
	if len(vms) == 0 {
		return nil, fmt.Errorf("sched: no VMs available")
	}
	var cores []coreState
	for _, vm := range vms {
		for c := 0; c < vm.Type.Cores; c++ {
			if cap > 0 && len(cores) >= cap {
				break
			}
			cores = append(cores, coreState{vm: vm, core: c})
		}
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("sched: fleet has no cores")
	}
	return cores, nil
}

// Scheduler is the online placement interface: the dataflow runtime
// hands activations over one at a time, the moment they become ready,
// and the scheduler assigns each to a core immediately (SciCumulus'
// dynamic activation dispatch). Implementations keep per-run core
// availability state between calls; Reset clears it for a fresh run.
// The legacy stage-batch contract survives as the Batch adapter.
type Scheduler interface {
	Place(now float64, act Activation, fleet []*cloud.VM) (Placement, error)
	Reset()
}

// Greedy is SciCumulus' native weighted-cost greedy scheduler: it
// dispatches each ready activation to the core with the earliest
// effective availability. Dispatch decisions are serialized through
// the master node, whose per-decision planning time grows with the
// fleet size — the overhead the paper holds responsible for the
// efficiency drop between 32 and 128 cores (Figure 9). Cost weighting
// enters through the order activations are offered: the dataflow
// dispatcher drains ready work heaviest-first, and the Batch adapter
// replays whole stages in the same LPT order.
type Greedy struct {
	// MasterDelayPerVM is the planning time (seconds) one dispatch
	// decision costs per VM in the fleet. The calibrated default
	// reproduces Figure 9's efficiency curve.
	MasterDelayPerVM float64
	// WorkerCap bounds the number of usable cores (the paper's
	// "2-core" runs lease a 4-core m3.xlarge but use 2 workers).
	WorkerCap int

	masterFree float64
	freeAt     map[coreKey]float64
}

// NewGreedy returns the calibrated scheduler. The per-VM master delay
// is fitted so the 10,000-pair sweep lands on the paper's Figure 7-9
// anchors (≈95% improvement at 32 cores, visible efficiency loss at
// 128).
func NewGreedy() *Greedy {
	return &Greedy{MasterDelayPerVM: 0.02}
}

// Reset clears the placement state for a fresh run.
func (g *Greedy) Reset() {
	g.masterFree = 0
	g.freeAt = nil
}

// Place assigns one ready activation to the earliest-available core
// at or after now. Per-core start times are monotone across calls
// (cores only fill forward), which is what keeps streamed provenance
// timestamps monotone per core.
func (g *Greedy) Place(now float64, a Activation, fleet []*cloud.VM) (Placement, error) {
	cores, err := eligibleCores(fleet, g.WorkerCap)
	if err != nil {
		return Placement{}, err
	}
	if g.freeAt == nil {
		g.freeAt = make(map[coreKey]float64)
	}
	// The master plans this dispatch (serialized).
	dispatchAt := math.Max(g.masterFree, now) + g.MasterDelayPerVM*float64(len(fleet))
	g.masterFree = dispatchAt
	// Earliest-available core (first in fleet order wins ties).
	best := cores[0]
	bestFree := g.coreFree(best)
	for _, c := range cores[1:] {
		if f := g.coreFree(c); f < bestFree {
			best, bestFree = c, f
		}
	}
	start := math.Max(math.Max(bestFree, dispatchAt), now)
	speed := best.vm.Speed(start)
	dur := a.IOTime
	for _, attempt := range a.Attempts {
		dur += attempt / speed
	}
	p := Placement{
		Activation: a,
		VMID:       best.vm.ID,
		Core:       best.core,
		Start:      start,
		End:        start + dur,
		Failures:   len(a.Attempts) - 1,
	}
	g.freeAt[coreKey{best.vm.ID, best.core}] = p.End
	return p, nil
}

// coreFree returns when a core next becomes available; cores not yet
// used this run are free once their VM has booted.
func (g *Greedy) coreFree(c coreState) float64 {
	if f, ok := g.freeAt[coreKey{c.vm.ID, c.core}]; ok {
		return f
	}
	return c.vm.ReadyAt
}

// batchOrder replays a stage heaviest-first (longest believed
// processing time first), the SciCumulus weighted greedy.
func (g *Greedy) batchOrder(acts []Activation) []int {
	order := make([]int, len(acts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return acts[order[i]].PlanningCost() > acts[order[j]].PlanningCost()
	})
	return order
}

// Schedule is the legacy batch entry point, kept for the barrier
// engine and the scheduler-ablation benchmarks.
func (g *Greedy) Schedule(startAt float64, acts []Activation, vms []*cloud.VM) ([]Placement, float64, error) {
	return Batch{S: g}.Schedule(startAt, acts, vms)
}

// RoundRobin is the naive baseline scheduler used by the ablation
// benchmarks: activations are dealt to cores in arrival order with no
// cost weighting and no master serialization.
type RoundRobin struct {
	WorkerCap int

	next   int
	freeAt map[coreKey]float64
}

// Reset clears the placement state for a fresh run.
func (rr *RoundRobin) Reset() {
	rr.next = 0
	rr.freeAt = nil
}

// Place deals the activation to the next core in rotation.
func (rr *RoundRobin) Place(now float64, a Activation, fleet []*cloud.VM) (Placement, error) {
	cores, err := eligibleCores(fleet, rr.WorkerCap)
	if err != nil {
		return Placement{}, err
	}
	if rr.freeAt == nil {
		rr.freeAt = make(map[coreKey]float64)
	}
	c := cores[rr.next%len(cores)]
	rr.next++
	key := coreKey{c.vm.ID, c.core}
	free, ok := rr.freeAt[key]
	if !ok {
		free = c.vm.ReadyAt
	}
	start := math.Max(free, now)
	speed := c.vm.Speed(start)
	dur := a.IOTime
	for _, attempt := range a.Attempts {
		dur += attempt / speed
	}
	p := Placement{
		Activation: a, VMID: c.vm.ID, Core: c.core,
		Start: start, End: start + dur, Failures: len(a.Attempts) - 1,
	}
	rr.freeAt[key] = p.End
	return p, nil
}

// Schedule is the legacy batch entry point.
func (rr *RoundRobin) Schedule(startAt float64, acts []Activation, vms []*cloud.VM) ([]Placement, float64, error) {
	return Batch{S: rr}.Schedule(startAt, acts, vms)
}

// batchOrderer lets a scheduler pick the order Batch replays a stage
// in; schedulers without the method place in arrival order.
type batchOrderer interface {
	batchOrder(acts []Activation) []int
}

// Batch adapts an online Scheduler back to the legacy stage-barrier
// contract: placement state is reset (every stage starts with an idle
// fleet — that is what a barrier means), the stage's activations are
// placed in the scheduler's batch order, and the stage makespan
// (virtual end of the last activation, measured from startAt) is
// returned. The barrier engine and the scheduler ablations run
// through this adapter.
type Batch struct {
	S Scheduler
}

// Schedule plans one stage: all activations are independent and may
// run concurrently.
func (b Batch) Schedule(startAt float64, acts []Activation, vms []*cloud.VM) ([]Placement, float64, error) {
	if len(vms) == 0 {
		return nil, 0, fmt.Errorf("sched: no VMs available")
	}
	b.S.Reset()
	order := make([]int, len(acts))
	for i := range order {
		order[i] = i
	}
	if o, ok := b.S.(batchOrderer); ok {
		order = o.batchOrder(acts)
	}
	placements := make([]Placement, 0, len(acts))
	end := startAt
	for _, idx := range order {
		p, err := b.S.Place(startAt, acts[idx], vms)
		if err != nil {
			return nil, 0, err
		}
		if p.End > end {
			end = p.End
		}
		placements = append(placements, p)
	}
	return placements, end - startAt, nil
}
