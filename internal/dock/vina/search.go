package vina

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chem"
	"repro/internal/dock"
	"repro/internal/parallel"
	"repro/internal/prep"
)

// ProgramName is the banner written into log files, matching the
// version the paper deployed.
const ProgramName = "AutoDock Vina 1.1.2"

// Engine runs Vina's global optimization with the parameters of the
// configuration file.
type Engine struct {
	Config prep.VinaConfig
	// StepsPerRestart bounds each Monte-Carlo chain; scaled from the
	// config's exhaustiveness.
	StepsPerRestart int
	// Workers bounds the chain fan-out: 0 sizes it from the
	// process-wide CPU token budget (internal/parallel), 1 forces
	// sequential search, n > 1 uses exactly n workers. Output is
	// byte-identical for every value — chains have independent seeds
	// and merge in chain order.
	Workers int
	// MaxBatch controls the local optimizer's speculative probe
	// window: 0 (the default) scores each scale pass's full probe set
	// in one ScoreBatch call, n > 0 chunks the window into batches of
	// at most n poses, and n < 0 forces the per-pose reference path.
	// Output is byte-identical for every value (pinned by
	// TestDockMaxBatchDeterministic): batched scores match Score to
	// the bit, and the speculative window is replayed in probe order
	// with a per-pose fallback from the first accepted improvement on.
	MaxBatch int
	// Precision selects candidate evaluation: dock.PrecisionExact (the
	// default) scores every probe through the bit-exact kernels;
	// dock.PrecisionTolerance screens the batched probe windows with
	// ScoreBatchFast and confirms every potential improvement with the
	// exact scorer before accepting it. Because the fast bound makes
	// the screen conservative and every persistent energy is exact,
	// tolerance-mode trajectories — and hence Dock output — are
	// byte-identical to exact mode for every MaxBatch value (pinned by
	// TestDockPrecisionTolerance); the fast path only spares exact
	// evaluations on probes that provably cannot improve. The MaxBatch
	// < 0 reference path stays exact regardless, as the golden
	// baseline.
	Precision dock.Precision
}

// mode is one distinct binding mode found during search.
type mode struct {
	pose dock.Pose
	feb  float64
}

// Dock runs iterated-local-search Monte Carlo: `exhaustiveness`
// independent chains of perturb→local-optimize→Metropolis steps,
// fanned over a bounded worker pool (real Vina threads its chains the
// same way). Each chain draws from its own seeded RNG and lands in
// its own modes slot, so the merged result is identical for any
// worker count. The distinct low-energy modes become the result's
// runs, with RMSD reported relative to the best mode — Vina's output
// convention (mode 1 has RMSD 0).
func (e *Engine) Dock(s *Scorer, lig *dock.Ligand) (*dock.Result, error) {
	if e.Config.Exhaustiveness <= 0 {
		return nil, fmt.Errorf("vina: exhaustiveness %d must be positive", e.Config.Exhaustiveness)
	}
	steps := e.StepsPerRestart
	if steps <= 0 {
		steps = 40
	}
	box := dock.Box{Center: e.Config.Center, Size: e.Config.Size}
	nChains := e.Config.Exhaustiveness
	modes := make([]mode, nChains)

	workers := e.Workers
	release := func() {}
	if workers <= 0 {
		workers, release = parallel.Tokens().Grab(nChains)
	}
	if workers > nChains {
		workers = nChains
	}
	if workers <= 1 {
		ws := dock.NewWorkspace(lig)
		for chain := 0; chain < nChains; chain++ {
			modes[chain] = e.runChain(s, lig, box, chain, steps, ws)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := dock.NewWorkspace(lig)
				for {
					chain := int(next.Add(1)) - 1
					if chain >= nChains {
						return
					}
					modes[chain] = e.runChain(s, lig, box, chain, steps, ws)
				}
			}()
		}
		wg.Wait()
	}
	release()

	kept := dedupeModes(lig, modes, 2.0, e.Config.NumModes)
	res := &dock.Result{
		Program:  ProgramName,
		Receptor: e.receptorName(s),
		Ligand:   lig.Mol.Name,
		Seed:     e.Config.Seed,
	}
	if len(kept) == 0 {
		return res, nil
	}
	bestCoords := lig.Coords(kept[0].pose)
	for i, m := range kept {
		rmsd := 0.0
		if i > 0 {
			v, err := chem.RMSD(lig.Coords(m.pose), bestCoords)
			if err != nil {
				return nil, fmt.Errorf("vina: rmsd: %w", err)
			}
			rmsd = v
		}
		res.Runs = append(res.Runs, dock.RunResult{
			Run: i + 1, Pose: m.pose, FEB: m.feb, RMSD: rmsd,
		})
	}
	return res, nil
}

// runChain executes one Monte-Carlo chain on its own seeded RNG. The
// chain seeds (Seed + chain·104729) are mutually independent, so
// chains can run on any worker in any order without changing their
// trajectories. All candidate evaluation goes through the worker's
// workspace: zero heap allocations per evaluation.
func (e *Engine) runChain(s *Scorer, lig *dock.Ligand, box dock.Box, chain, steps int, ws *dock.Workspace) mode {
	r := rand.New(rand.NewSource(e.Config.Seed + int64(chain)*104729))
	cur, cand, best := ws.Get(), ws.Get(), ws.Get()
	defer ws.Put(cur)
	defer ws.Put(cand)
	defer ws.Put(best)
	dock.RandomPoseInto(r, cur, box, lig.NumTorsions())
	curFeb := e.localOptimize(s, ws, box, cur, r)
	best.Set(*cur)
	bestFeb := curFeb
	const temperature = 1.2 // kcal/mol, Vina's Metropolis T
	for step := 0; step < steps; step++ {
		dock.PerturbInto(r, cand, *cur, 2.0, 0.5)
		dock.ClampToBox(cand, box)
		candFeb := e.localOptimize(s, ws, box, cand, r)
		if candFeb < curFeb || r.Float64() < math.Exp((curFeb-candFeb)/temperature) {
			cur, cand = cand, cur
			curFeb = candFeb
			if curFeb < bestFeb {
				best.Set(*cur)
				bestFeb = curFeb
			}
		}
	}
	return mode{pose: best.Clone(), feb: bestFeb}
}

func (e *Engine) receptorName(s *Scorer) string {
	if s.Receptor != nil {
		return s.Receptor.Name
	}
	return e.Config.Receptor
}

// localOptimize is Vina's quasi-Newton refinement, reproduced with a
// derivative-free compass search over the pose degrees of freedom:
// each DOF is probed ±step, improvements kept, the step halved on
// stagnation. The default path scores each scale pass's probe window
// through the SoA batch kernel; MaxBatch < 0 selects the per-pose
// reference loop the batched path is golden-tested against.
func (e *Engine) localOptimize(s *Scorer, ws *dock.Workspace, box dock.Box, cur *dock.Pose, r *rand.Rand) float64 {
	if e.MaxBatch < 0 {
		return e.localOptimizeSeq(s, ws, box, cur, r)
	}
	return e.localOptimizeBatch(s, ws, box, cur, r)
}

// probeInto builds probe number k of one compass-search scale pass
// from the pose `from`: k < 6 are the ±step translation probes in
// axis order, k ∈ {6, 7} the ±step·0.4 rotations about `axis`, and
// k ≥ 8 the ±step·0.5 torsion probes in bond order. The arithmetic
// per probe is exactly the sequential loop's, so a probe regenerated
// from the same pose is bit-identical to the one the reference path
// would have scored.
func probeInto(probe *dock.Pose, from dock.Pose, k int, step float64, axis chem.Vec3, box dock.Box) {
	probe.Set(from)
	sign := 1.0
	if k&1 == 1 {
		sign = -1
	}
	switch {
	case k < 6:
		d := chem.Vec3{}
		switch k / 2 {
		case 0:
			d.X = sign * step
		case 1:
			d.Y = sign * step
		case 2:
			d.Z = sign * step
		}
		probe.Translation = probe.Translation.Add(d)
		dock.ClampToBox(probe, box)
	case k < 8:
		probe.Orientation = chem.AxisAngleQuat(axis, sign*step*0.4).Mul(probe.Orientation).Normalize()
	default:
		probe.Torsions[(k-8)/2] += sign * step * 0.5
	}
}

// localOptimizeBatch is localOptimizeSeq restructured around the SoA
// batch kernel. Within one scale pass the reference loop draws from
// the RNG exactly once — the rotation axis, between the translation
// and rotation probes, with no draw on either side — so hoisting that
// draw to pass entry leaves the seeded stream untouched. Every probe
// of the pass is then a pure function of the pass-entry pose, and the
// whole window is materialized and scored speculatively in ScoreBatch
// calls of at most MaxBatch poses (0 = the full window).
//
// The replay walks the cached scores in probe order. Until the first
// accepted improvement the current pose is still the pass-entry pose,
// so every cached score is bit-identical to what the sequential loop
// would have computed (Batch.Append matches ws.Coords and ScoreBatch
// matches Score to the bit). The first improvement mutates cur,
// invalidating the remaining speculative scores; the rest of the pass
// falls back to the per-pose path, which is the reference loop
// verbatim. Trajectories therefore match the sequential path exactly,
// and the batch pays off where the optimizer spends its time: in
// converged passes where nothing improves and the full window's
// cached scores are all consumed.
//
// Under dock.PrecisionTolerance the windows are scored with
// ScoreBatchFast instead and the replay screens each probe against
// curFeb + FastMargin(curFeb): probes beyond the margin are rejected
// outright (their exact score provably cannot improve), survivors are
// exact-rescored and judged on the exact value. Converged passes —
// where the optimizer spends its time — then cost one fast window and
// no exact evaluations at all.
func (e *Engine) localOptimizeBatch(s *Scorer, ws *dock.Workspace, box dock.Box, cur *dock.Pose, r *rand.Rand) float64 {
	lig := ws.Ligand()
	nProbes := 8 + 2*lig.NumTorsions()
	chunk := e.MaxBatch
	if chunk <= 0 || chunk > nProbes {
		chunk = nProbes
	}
	entry, probe := ws.Get(), ws.Get()
	defer ws.Put(entry)
	defer ws.Put(probe)
	b := ws.Batch()
	defer b.ClearWindow()
	febs := ws.Floats(nProbes)
	arcMax, arcMean := lig.ArcRadii()
	tol := e.Precision == dock.PrecisionTolerance
	curFeb := s.Score(ws.Coords(*cur))
	step := 1.0
	for step > 0.12 {
		axis := chem.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		entry.Set(*cur)
		// One incumbent-anchored window per scale pass: every probe
		// perturbs exactly one coordinate of the pass-entry pose, so the
		// window's displacement bound is the MAX of the per-coordinate
		// bounds — ±step translations (box clamping is non-expansive:
		// entry sits inside the box, so the projection only shrinks the
		// move), ±step·0.4 rotations levering the anchor radius, and
		// ±step·0.5 single-torsion probes levering that torsion's arc
		// radii. The arc radii are base-conformation estimates; a probe
		// that outruns them fails WindowValid and is scored through the
		// per-pose gather, so the trajectory stays bit-identical either
		// way.
		radius := b.SetWindow(*entry)
		bound := chem.DisplacementBound(step, 0, 0, radius, arcMax, arcMean)
		if d := chem.DisplacementBound(0, step*0.4, 0, radius, arcMax, arcMean); d > bound {
			bound = d
		}
		for k := range arcMax {
			if d := step * 0.5 * (arcMax[k] + arcMean[k]); d > bound {
				bound = d
			}
		}
		b.SetWindowBound(bound)
		improved := false
		for base := 0; base < nProbes && !improved; base += chunk {
			end := base + chunk
			if end > nProbes {
				end = nProbes
			}
			b.Reset()
			for k := base; k < end; k++ {
				probeInto(probe, *entry, k, step, axis, box)
				b.Append(*probe)
			}
			if tol {
				s.ScoreBatchFast(b, febs[base:end])
			} else {
				s.ScoreBatch(b, febs[base:end])
			}
			for k := base; k < end; k++ {
				if tol {
					// Screen: a fast score beyond the margin proves the
					// exact score cannot beat curFeb. Survivors are
					// confirmed exactly, so curFeb stays an exact energy
					// and the accept/reject pattern — hence the whole
					// trajectory — matches the exact path bit for bit.
					if febs[k] > curFeb+FastMargin(curFeb) {
						continue
					}
					probeInto(probe, *entry, k, step, axis, box)
					feb := s.Score(ws.Coords(*probe))
					if feb >= curFeb {
						continue
					}
					cur.Set(*probe)
					curFeb = feb
				} else {
					if febs[k] >= curFeb {
						continue
					}
					probeInto(probe, *entry, k, step, axis, box)
					cur.Set(*probe)
					curFeb = febs[k]
				}
				improved = true
				// cur changed: the remaining speculative scores are
				// stale. Finish the pass per-pose, exactly as the
				// reference loop would from this point (screening each
				// probe first in tolerance mode).
				for k2 := k + 1; k2 < nProbes; k2++ {
					probeInto(probe, *cur, k2, step, axis, box)
					if tol && s.ScoreFast1(b, *probe) > curFeb+FastMargin(curFeb) {
						continue
					}
					if feb := s.Score(ws.Coords(*probe)); feb < curFeb {
						cur.Set(*probe)
						curFeb = feb
					}
				}
				break
			}
		}
		if !improved {
			step /= 2
		}
	}
	return curFeb
}

// localOptimizeSeq is the per-pose reference refinement the batched
// path must match byte-for-byte (Engine.MaxBatch < 0 selects it).
func (e *Engine) localOptimizeSeq(s *Scorer, ws *dock.Workspace, box dock.Box, cur *dock.Pose, r *rand.Rand) float64 {
	lig := ws.Ligand()
	probe := ws.Get()
	defer ws.Put(probe)
	curFeb := s.Score(ws.Coords(*cur))
	step := 1.0
	for step > 0.12 {
		improved := false
		// Translation axes.
		for axis := 0; axis < 3; axis++ {
			for _, sign := range []float64{1, -1} {
				probe.Set(*cur)
				d := chem.Vec3{}
				switch axis {
				case 0:
					d.X = sign * step
				case 1:
					d.Y = sign * step
				case 2:
					d.Z = sign * step
				}
				probe.Translation = probe.Translation.Add(d)
				dock.ClampToBox(probe, box)
				if feb := s.Score(ws.Coords(*probe)); feb < curFeb {
					cur.Set(*probe)
					curFeb = feb
					improved = true
				}
			}
		}
		// One random rotation probe per scale (full orientation
		// enumeration is wasteful; this matches Vina's stochastic
		// BFGS restarts in effect).
		axis := chem.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		for _, sign := range []float64{1, -1} {
			probe.Set(*cur)
			probe.Orientation = chem.AxisAngleQuat(axis, sign*step*0.4).Mul(probe.Orientation).Normalize()
			if feb := s.Score(ws.Coords(*probe)); feb < curFeb {
				cur.Set(*probe)
				curFeb = feb
				improved = true
			}
		}
		// Torsions.
		for i := 0; i < lig.NumTorsions(); i++ {
			for _, sign := range []float64{1, -1} {
				probe.Set(*cur)
				probe.Torsions[i] += sign * step * 0.5
				if feb := s.Score(ws.Coords(*probe)); feb < curFeb {
					cur.Set(*probe)
					curFeb = feb
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return curFeb
}

// dedupeModes sorts modes by energy and drops poses within rmsdCut of
// an already-kept mode, keeping at most maxModes. Every mode's
// coordinates are materialized exactly once before the pairwise pass
// (they used to be recomputed inside it).
func dedupeModes(lig *dock.Ligand, ms []mode, rmsdCut float64, maxModes int) []mode {
	sort.Slice(ms, func(i, j int) bool { return ms[i].feb < ms[j].feb })
	if maxModes <= 0 {
		maxModes = 9
	}
	coords := make([][]chem.Vec3, len(ms))
	for i := range ms {
		coords[i] = lig.Coords(ms[i].pose)
	}
	var kept []mode
	var keptIdx []int
	for i, m := range ms {
		dup := false
		for _, k := range keptIdx {
			if v, err := chem.RMSD(coords[i], coords[k]); err == nil && v < rmsdCut {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		kept = append(kept, m)
		keptIdx = append(keptIdx, i)
		if len(kept) >= maxModes {
			break
		}
	}
	return kept
}
