// Kernel microbenchmarks: machine-readable timings of the docking hot
// loops (AutoGrid map generation, Vina and AD4 scoring), each measured
// on its production table-backed path and on the analytic reference
// path it replaced. cmd/dockbench serializes the report to
// BENCH_kernels.json so perf regressions are diffable across commits.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/dock/ad4"
	"repro/internal/dock/vina"
	"repro/internal/grid"
	"repro/internal/prep"
)

// KernelBench is one measured kernel configuration.
type KernelBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Speedup is NsPerOp of the matching analytic baseline divided by
	// this entry's NsPerOp; only set on table-backed entries.
	Speedup float64 `json:"speedup_vs_analytic,omitempty"`
}

// KernelReport is the full kernel benchmark result set.
type KernelReport struct {
	Workload   string        `json:"workload"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []KernelBench `json:"benchmarks"`
}

// JSON renders the report for BENCH_kernels.json.
func (r *KernelReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable table dockbench prints.
func (r *KernelReport) String() string {
	var sb strings.Builder
	sb.WriteString("KERNEL BENCHMARKS (radial tables vs analytic)\n")
	fmt.Fprintf(&sb, "workload: %s, GOMAXPROCS=%d, NumCPU=%d\n", r.Workload, r.GoMaxProcs, r.NumCPU)
	fmt.Fprintf(&sb, "%-28s %14s %12s %10s\n", "kernel", "ns/op", "allocs/op", "speedup")
	for _, b := range r.Benchmarks {
		sp := ""
		if b.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", b.Speedup)
		}
		fmt.Fprintf(&sb, "%-28s %14.0f %12.1f %10s\n", b.Name, b.NsPerOp, b.AllocsPerOp, sp)
	}
	return sb.String()
}

// measure times fn over several batches of iters runs, reporting the
// fastest batch's mean ns/op (the minimum of batch means discards
// scheduler and frequency noise, which only ever slows a batch down)
// and the mean heap allocations per op (mallocs counted via
// runtime.MemStats, the same counter testing's AllocsPerRun reads).
func measure(iters int, fn func()) (nsPerOp, allocsPerOp float64) {
	const batches = 4
	fn() // warm up: build tables, fault in pages
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	best := math.Inf(1)
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); ns < best {
			best = ns
		}
	}
	runtime.ReadMemStats(&after)
	return best, float64(after.Mallocs-before.Mallocs) / float64(batches*iters)
}

// kernelPoses builds a deterministic spread of ligand conformations
// for the scoring benchmarks (seeded; no global rand, matching the
// determinism rules of the docking packages).
func kernelPoses(lig *dock.Ligand, n int, seed int64) [][]chem.Vec3 {
	r := rand.New(rand.NewSource(seed))
	coords := make([][]chem.Vec3, n)
	for i := range coords {
		tors := make([]float64, lig.NumTorsions())
		for t := range tors {
			tors[t] = (r.Float64() - 0.5) * 2 * math.Pi
		}
		pose := dock.Pose{
			Translation: chem.V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5),
			Orientation: chem.RandomQuat(r.Float64(), r.Float64(), r.Float64()),
			Torsions:    tors,
		}
		coords[i] = lig.Coords(pose)
	}
	return coords
}

// Kernels measures every docking kernel on the standard workload
// (receptor 2HHN vs ligand 0E6) and returns the report. Quick mode
// shrinks the lattice and iteration counts for smoke runs.
func (s *Suite) Kernels() (*KernelReport, error) {
	rec, _ := data.GenerateReceptor("2HHN")
	prec, err := prep.PrepareReceptor(rec)
	if err != nil {
		return nil, err
	}
	raw, _ := data.GenerateLigand("0E6")
	mol2, err := prep.ConvertSDFToMol2(raw)
	if err != nil {
		return nil, err
	}
	pl, err := prep.PrepareLigand(mol2)
	if err != nil {
		return nil, err
	}
	lig, err := dock.NewLigand(pl.Mol, pl.Tree)
	if err != nil {
		return nil, err
	}

	npts, gridIters, scoreIters := 24, 8, 20000
	if s.Quick {
		npts, gridIters, scoreIters = 12, 2, 500
	}
	spec := grid.Spec{Center: chem.Vec3{}, NPts: [3]int{npts, npts, npts}, Spacing: 1.0}
	probeTypes := []chem.AtomType{chem.TypeC, chem.TypeN, chem.TypeOA, chem.TypeHD}

	rep := &KernelReport{
		Workload: fmt.Sprintf("receptor 2HHN (%d atoms), ligand 0E6, %d³ grid @ %.2f Å",
			prec.NumAtoms(), npts, spec.Spacing),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	add := func(name string, baselineNs float64, iters int, fn func() error) (float64, error) {
		var innerErr error
		ns, allocs := measure(iters, func() {
			if err := fn(); err != nil {
				innerErr = err
			}
		})
		if innerErr != nil {
			return 0, fmt.Errorf("experiments: kernel %s: %w", name, innerErr)
		}
		b := KernelBench{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
		if baselineNs > 0 {
			b.Speedup = baselineNs / ns
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		return ns, nil
	}

	// AutoGrid map generation: analytic reference, table-backed serial,
	// table-backed with the full worker pool.
	refNs, err := add("grid_generate_reference", 0, gridIters, func() error {
		_, err := grid.GenerateReference(prec, spec, probeTypes)
		return err
	})
	if err != nil {
		return nil, err
	}
	if _, err := add("grid_generate_tables_1w", refNs, gridIters, func() error {
		_, err := grid.GenerateWorkers(prec, spec, probeTypes, 1)
		return err
	}); err != nil {
		return nil, err
	}
	if _, err := add("grid_generate_tables_allcores", refNs, gridIters, func() error {
		_, err := grid.GenerateWorkers(prec, spec, probeTypes, 0)
		return err
	}); err != nil {
		return nil, err
	}

	// Vina scoring.
	vs, err := vina.NewScorer(prec, lig)
	if err != nil {
		return nil, err
	}
	poses := kernelPoses(lig, 16, 3)
	i := 0
	vinaRefNs, err := add("vina_score_analytic", 0, scoreIters, func() error {
		vs.ScoreAnalytic(poses[i%len(poses)])
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	if _, err := add("vina_score_tables", vinaRefNs, scoreIters, func() error {
		vs.Score(poses[i%len(poses)])
		i++
		return nil
	}); err != nil {
		return nil, err
	}

	// AD4 scoring (grid maps + table-backed intramolecular term).
	maps, err := grid.Generate(prec, spec, pl.Mol.AtomTypes())
	if err != nil {
		return nil, err
	}
	as, err := ad4.NewScorer(maps, lig)
	if err != nil {
		return nil, err
	}
	i = 0
	ad4RefNs, err := add("ad4_score_analytic", 0, scoreIters, func() error {
		as.ScoreAnalytic(poses[i%len(poses)])
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	if _, err := add("ad4_score_tables", ad4RefNs, scoreIters, func() error {
		as.Score(poses[i%len(poses)])
		i++
		return nil
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

// KernelsText is the ByName-facing wrapper returning the formatted
// table.
func (s *Suite) KernelsText() (string, error) {
	rep, err := s.Kernels()
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}
