package sched

import (
	"math"
	"testing"
)

// The paper-scale AD4 workload: ~2.2M reference-core seconds over 80k
// activations.
const (
	paperWork = 2.2e6
	paperActs = 80000
)

func TestEstimateTETBounds(t *testing.T) {
	p := NewCostAwarePolicy(86400)
	// Small fleet: compute-bound.
	small := p.EstimateTET(paperWork, paperActs, 2)
	if math.Abs(small-paperWork/2) > 1 {
		t.Errorf("2-core estimate = %v, want compute-bound %v", small, paperWork/2)
	}
	// Huge fleet: dispatch-bound, so more cores stop helping.
	big := p.EstimateTET(paperWork, paperActs, 128)
	bigger := p.EstimateTET(paperWork, paperActs, 256)
	if bigger < big {
		t.Errorf("dispatch bound should flatten scaling: %v then %v", big, bigger)
	}
	if p.EstimateTET(paperWork, paperActs, 0) != math.Inf(1) {
		t.Error("zero cores should be infinite")
	}
}

func TestChooseCheapestMeetingDeadline(t *testing.T) {
	// With whole-VM billing, 4 cores (one m3.xlarge fully used) beat
	// 2 cores (the same VM half-idle): same hourly rate, half the
	// hours. The policy must exploit that.
	p := NewCostAwarePolicy(20 * 86400)
	plan, err := p.Choose(paperWork, paperActs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.MeetsDeadline {
		t.Error("chosen plan misses a 20-day deadline")
	}
	two := p.EstimateTET(paperWork, paperActs, 2)
	if estimateUSD(2, two) <= plan.EstimatedUSD {
		t.Errorf("half-idle 2-core fleet ($%v) should not beat chosen $%v",
			estimateUSD(2, two), plan.EstimatedUSD)
	}

	// One-day deadline: the chosen plan is feasible, no feasible plan
	// is strictly cheaper, and equal-cost feasible plans are no
	// faster.
	day := NewCostAwarePolicy(86400)
	plan, err = day.Choose(paperWork, paperActs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.MeetsDeadline {
		t.Fatalf("one-day deadline unmet by chosen plan %+v", plan)
	}
	for _, pl := range day.Evaluate(paperWork, paperActs) {
		if !pl.MeetsDeadline {
			continue
		}
		if pl.EstimatedUSD < plan.EstimatedUSD {
			t.Errorf("cheaper feasible plan %+v ignored", pl)
		}
		if pl.EstimatedUSD == plan.EstimatedUSD && pl.EstimatedTET < plan.EstimatedTET {
			t.Errorf("equal-cost faster plan %+v ignored", pl)
		}
	}
}

func TestChooseImpossibleDeadlinePicksFastest(t *testing.T) {
	p := NewCostAwarePolicy(1) // one second: impossible
	plan, err := p.Choose(paperWork, paperActs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MeetsDeadline {
		t.Error("impossible deadline reported as met")
	}
	for _, pl := range p.Evaluate(paperWork, paperActs) {
		if pl.EstimatedTET < plan.EstimatedTET {
			t.Errorf("faster plan %+v ignored", pl)
		}
	}
}

func TestChooseValidation(t *testing.T) {
	p := NewCostAwarePolicy(3600)
	if _, err := p.Choose(0, 10); err == nil {
		t.Error("zero work accepted")
	}
}

// The paper's economic observation: beyond ~32 cores the marginal
// dollars buy little time on this workload.
func TestDiminishingReturnsBeyond32Cores(t *testing.T) {
	p := NewCostAwarePolicy(0)
	plans := p.Evaluate(paperWork, paperActs)
	byCores := map[int]Plan{}
	for _, pl := range plans {
		byCores[pl.Cores] = pl
	}
	gain32 := byCores[16].EstimatedTET - byCores[32].EstimatedTET
	gain128 := byCores[64].EstimatedTET - byCores[128].EstimatedTET
	if gain128 >= gain32 {
		t.Errorf("no diminishing returns: 16→32 gains %v, 64→128 gains %v", gain32, gain128)
	}
	if byCores[128].EstimatedUSD <= byCores[32].EstimatedUSD {
		t.Errorf("128-core fleet not pricier: $%v vs $%v",
			byCores[128].EstimatedUSD, byCores[32].EstimatedUSD)
	}
}
