// Package noise is the cold half of the detflow fixture: its import
// path has no deterministic-hot-path fragment, so wildrand ignores the
// direct global-source draw below. The draw only becomes a finding
// when a hot package (testdata/src/internal/dock) calls in — which is
// exactly the interprocedural gap detflow exists to close.
package noise

import "math/rand"

// Wall returns an unseeded draw from the process-global source.
func Wall() float64 {
	return rand.Float64()
}

// Seeded draws from an injected source; calling it never taints.
func Seeded(r *rand.Rand) float64 {
	return r.Float64()
}
