package mpj

import (
	"sync"
	"testing"
	"time"
)

func mustComm(t *testing.T, size int) *Comm {
	t.Helper()
	c, err := NewComm(size)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustRank(t *testing.T, c *Comm, r int) *Rank {
	t.Helper()
	rk, err := c.Rank(r)
	if err != nil {
		t.Fatal(err)
	}
	return rk
}

func TestCommValidation(t *testing.T) {
	if _, err := NewComm(0); err == nil {
		t.Error("zero-size communicator accepted")
	}
	c := mustComm(t, 2)
	if _, err := c.Rank(2); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if c.Size() != 2 {
		t.Errorf("size = %d", c.Size())
	}
}

func TestSendRecvBasic(t *testing.T) {
	c := mustComm(t, 2)
	r0 := mustRank(t, c, 0)
	r1 := mustRank(t, c, 1)
	done := make(chan Message, 1)
	go func() {
		m, err := r1.Recv(0, 7)
		if err != nil {
			t.Error(err)
		}
		done <- m
	}()
	if err := r0.Send(1, 7, "hello"); err != nil {
		t.Fatal(err)
	}
	m := <-done
	if m.Payload.(string) != "hello" || m.Source != 0 || m.Tag != 7 {
		t.Errorf("message = %+v", m)
	}
}

func TestRecvTagAndSourceMatching(t *testing.T) {
	c := mustComm(t, 3)
	r0 := mustRank(t, c, 0)
	r1 := mustRank(t, c, 1)
	r2 := mustRank(t, c, 2)
	// Two senders, two tags; receiver picks selectively.
	r1.Send(0, 1, "r1-t1")
	r2.Send(0, 2, "r2-t2")
	r1.Send(0, 2, "r1-t2")

	m, err := r0.Recv(2, AnyTag)
	if err != nil || m.Payload.(string) != "r2-t2" {
		t.Errorf("selective source recv = %+v, %v", m, err)
	}
	m, err = r0.Recv(AnySource, 2)
	if err != nil || m.Payload.(string) != "r1-t2" {
		t.Errorf("selective tag recv = %+v, %v", m, err)
	}
	m, err = r0.Recv(AnySource, AnyTag)
	if err != nil || m.Payload.(string) != "r1-t1" {
		t.Errorf("wildcard recv = %+v, %v", m, err)
	}
}

func TestPerSenderOrderPreserved(t *testing.T) {
	c := mustComm(t, 2)
	r0 := mustRank(t, c, 0)
	r1 := mustRank(t, c, 1)
	for i := 0; i < 100; i++ {
		r0.Send(1, 5, i)
	}
	for i := 0; i < 100; i++ {
		m, err := r1.Recv(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload.(int) != i {
			t.Fatalf("message %d arrived out of order: %v", i, m.Payload)
		}
	}
}

func TestProbe(t *testing.T) {
	c := mustComm(t, 2)
	r0 := mustRank(t, c, 0)
	r1 := mustRank(t, c, 1)
	if r1.Probe(AnySource, AnyTag) {
		t.Error("probe on empty mailbox")
	}
	r0.Send(1, 3, "x")
	if !r1.Probe(0, 3) {
		t.Error("probe missed message")
	}
	if r1.Probe(0, 4) {
		t.Error("probe matched wrong tag")
	}
	// Probe does not consume.
	if _, err := r1.Recv(0, 3); err != nil {
		t.Error(err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	c := mustComm(t, 2)
	r1 := mustRank(t, c, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := r1.Recv(0, 1)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("recv on closed comm returned nil error")
		}
	case <-time.After(time.Second):
		t.Fatal("recv did not unblock on close")
	}
	r0 := mustRank(t, c, 0)
	if err := r0.Send(1, 1, "x"); err == nil {
		t.Error("send on closed comm accepted")
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	c := mustComm(t, n)
	var phase [n]int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := mustRank(t, c, rank)
			for p := 0; p < 5; p++ {
				phase[rank] = p
				r.Barrier()
				// After the barrier everyone must be at phase >= p.
				for j := 0; j < n; j++ {
					if phase[j] < p {
						t.Errorf("rank %d saw rank %d at phase %d < %d", rank, j, phase[j], p)
					}
				}
				r.Barrier()
			}
		}(i)
	}
	wg.Wait()
}

func TestBcast(t *testing.T) {
	const n = 5
	c := mustComm(t, n)
	var got [n]interface{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := mustRank(t, c, rank)
			payload := interface{}(nil)
			if rank == 2 {
				payload = "the-plan"
			}
			v, err := r.Bcast(2, payload)
			if err != nil {
				t.Error(err)
				return
			}
			got[rank] = v
		}(i)
	}
	wg.Wait()
	for i, v := range got {
		if v != "the-plan" {
			t.Errorf("rank %d got %v", i, v)
		}
	}
}

func TestScatterGather(t *testing.T) {
	const n = 4
	c := mustComm(t, n)
	var wg sync.WaitGroup
	results := make([]interface{}, 1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := mustRank(t, c, rank)
			var chunk interface{}
			var err error
			if rank == 0 {
				chunk, err = r.Scatter(0, []interface{}{10, 11, 12, 13})
			} else {
				chunk, err = r.Scatter(0, nil)
			}
			if err != nil {
				t.Error(err)
				return
			}
			if chunk.(int) != 10+rank {
				t.Errorf("rank %d chunk = %v", rank, chunk)
			}
			// Each rank doubles its chunk and gathers at root.
			all, err := r.Gather(0, chunk.(int)*2)
			if err != nil {
				t.Error(err)
				return
			}
			if rank == 0 {
				results[0] = all
			}
		}(i)
	}
	wg.Wait()
	all := results[0].([]interface{})
	for i, v := range all {
		if v.(int) != (10+i)*2 {
			t.Errorf("gathered[%d] = %v", i, v)
		}
	}
}

func TestScatterSizeMismatch(t *testing.T) {
	c := mustComm(t, 2)
	r0 := mustRank(t, c, 0)
	if _, err := r0.Scatter(0, []interface{}{1}); err == nil {
		t.Error("scatter size mismatch accepted")
	}
}

func TestReduce(t *testing.T) {
	const n = 6
	c := mustComm(t, n)
	var wg sync.WaitGroup
	var total float64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := mustRank(t, c, rank)
			v, err := r.Reduce(0, float64(rank+1), func(a, b float64) float64 { return a + b })
			if err != nil {
				t.Error(err)
				return
			}
			if rank == 0 {
				total = v
			}
		}(i)
	}
	wg.Wait()
	if total != 21 { // 1+2+...+6
		t.Errorf("reduce total = %v, want 21", total)
	}
}

func TestMasterWorkerPattern(t *testing.T) {
	// The SciCumulus dispatch pattern: rank 0 hands out work items,
	// workers return results, master collects until done.
	const workers = 4
	const jobs = 50
	c := mustComm(t, workers+1)
	var wg sync.WaitGroup
	// Workers.
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := mustRank(t, c, rank)
			for {
				m, err := r.Recv(0, AnyTag)
				if err != nil {
					return
				}
				if m.Tag == 99 { // poison pill
					return
				}
				r.Send(0, 1, m.Payload.(int)*m.Payload.(int))
			}
		}(w)
	}
	master := mustRank(t, c, 0)
	next := 0
	inFlight := 0
	sum := 0
	for w := 1; w <= workers && next < jobs; w++ {
		master.Send(w, 0, next)
		next++
		inFlight++
	}
	for inFlight > 0 {
		m, err := master.Recv(AnySource, 1)
		if err != nil {
			t.Fatal(err)
		}
		sum += m.Payload.(int)
		inFlight--
		if next < jobs {
			master.Send(m.Source, 0, next)
			next++
			inFlight++
		}
	}
	for w := 1; w <= workers; w++ {
		master.Send(w, 99, nil)
	}
	wg.Wait()
	want := 0
	for i := 0; i < jobs; i++ {
		want += i * i
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}
