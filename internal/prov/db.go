package prov

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Column is one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Row storage is segmented: rows accumulate in a small mutable tail
// and, every segSize rows, the tail is sealed into an immutable
// segment. Sealed segments are never written again — neither the
// row-pointer slots nor the rows themselves — so a query snapshot can
// reference them without copying and read them without holding any
// lock. Updates are copy-on-write: the replacement row lands in a new
// slot (tail write or segment clone) while snapshots keep reading the
// original row.
const (
	segShift = 10
	segSize  = 1 << segShift
	segMask  = segSize - 1
)

// segment is an immutable block of exactly segSize rows.
type segment struct {
	rows [][]Value
}

// tableIndex is an incremental hash index over one column: a map from
// normalized cell value (see indexKey) to the ascending row ids
// holding it. Postings only lose entries when an update changes an
// indexed cell; that bumps Table.idxVersion so snapshots taken before
// the change stop trusting the index and fall back to scans.
type tableIndex struct {
	col  int
	post map[interface{}][]int
}

// Table is a named relation with a fixed schema. Row data is guarded
// by the table's own lock (there is no database-wide row lock), so
// ingest into one table never blocks queries over another.
type Table struct {
	Name    string
	Columns []Column

	mu         sync.RWMutex
	segs       []*segment
	tail       [][]Value
	n          int // len(segs)*segSize + len(tail)
	idx        []*tableIndex
	idxVersion uint64 // bumped whenever an existing posting is invalidated

	colIndex map[string]int
}

func (t *Table) buildIndex() {
	t.colIndex = make(map[string]int, 2*len(t.Columns))
	for i, c := range t.Columns {
		// Store the declared spelling and the lowercase key, so the
		// common case (already-lowercase SQL identifiers) resolves with
		// a single map hit and no ToLower call.
		t.colIndex[c.Name] = i
		t.colIndex[strings.ToLower(c.Name)] = i
	}
}

// ColumnIndex returns the position of a column (case-insensitive), or
// -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	if t.colIndex == nil {
		t.buildIndex()
	}
	if i, ok := t.colIndex[name]; ok {
		return i
	}
	if i, ok := t.colIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// checkRow validates a row against the schema.
func (t *Table) checkRow(table string, row []Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("prov: table %q insert of %d values, schema has %d columns",
			table, len(row), len(t.Columns))
	}
	for i, v := range row {
		if err := checkType(v, t.Columns[i].Type); err != nil {
			return fmt.Errorf("prov: table %q column %q: %w", table, t.Columns[i].Name, err)
		}
	}
	return nil
}

// appendRowLocked publishes a (caller-owned, never again mutated) row
// under the table lock: tail append, index postings, seal on overflow.
func (t *Table) appendRowLocked(row []Value) {
	id := t.n
	t.tail = append(t.tail, row)
	t.n++
	for _, ix := range t.idx {
		k := indexKey(row[ix.col])
		ix.post[k] = append(ix.post[k], id)
	}
	if len(t.tail) == segSize {
		t.segs = append(t.segs, &segment{rows: t.tail})
		t.tail = make([][]Value, 0, segSize)
	}
}

// rowLocked returns row i; the caller holds the table lock.
func (t *Table) rowLocked(i int) []Value {
	if s := i >> segShift; s < len(t.segs) {
		return t.segs[s].rows[i&segMask]
	}
	return t.tail[i-len(t.segs)*segSize]
}

// setRowLocked installs a replacement row at slot i. Tail slots are
// overwritten (snapshots copied the tail's pointers, so they keep the
// old row); sealed slots require cloning the whole segment, since a
// snapshot may be reading the old segment's slots without a lock.
func (t *Table) setRowLocked(i int, row []Value) {
	if s := i >> segShift; s < len(t.segs) {
		old := t.segs[s]
		rows := make([][]Value, segSize)
		copy(rows, old.rows)
		rows[i&segMask] = row
		t.segs[s] = &segment{rows: rows}
		return
	}
	t.tail[i-len(t.segs)*segSize] = row
}

// reindexLocked repairs index postings after row id changed from old
// to cur. Removal rebuilds the posting slice (snapshot readers may
// hold the old one) and invalidates in-flight snapshots' index use.
func (t *Table) reindexLocked(id int, old, cur []Value) {
	for _, ix := range t.idx {
		ok, nk := indexKey(old[ix.col]), indexKey(cur[ix.col])
		if ok == nk {
			continue
		}
		p := ix.post[ok]
		for j, v := range p {
			if v == id {
				ix.post[ok] = append(p[:j:j], p[j+1:]...)
				break
			}
		}
		ix.post[nk] = append(ix.post[nk], id)
		t.idxVersion++
	}
}

// updateRowLocked applies fn to row i copy-on-write and maintains the
// indexes.
func (t *Table) updateRowLocked(i int, fn func(row []Value)) {
	old := t.rowLocked(i)
	row := append([]Value(nil), old...)
	fn(row)
	t.setRowLocked(i, row)
	t.reindexLocked(i, old, row)
}

// nanKey and timeKey normalize float NaNs and timestamps into
// comparable, hashable index keys (see indexKey).
type nanKey struct{}

type timeKey struct {
	sec  int64
	nsec int32
}

// indexKey normalizes a cell value so hash-map equality agrees with
// compareValues equality: ints and floats unify on float64 (the query
// layer parses every numeric literal as float64), NaN hits a sentinel
// (Go maps never match NaN keys), and timestamps compare by instant.
func indexKey(v Value) interface{} {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		if x != x {
			return nanKey{}
		}
		return x
	case time.Time:
		return timeKey{sec: x.Unix(), nsec: int32(x.Nanosecond())}
	default:
		return v
	}
}

// tableSnap is a zero-copy point-in-time view of one table: the sealed
// segment list (shared, immutable) plus a shallow copy of the tail's
// row pointers. Rows are immutable once published, so the snapshot is
// readable without any lock.
type tableSnap struct {
	t       *Table
	segs    []*segment
	tail    [][]Value
	n       int
	version uint64
	idxCols []int
}

// captureLocked builds a snapshot; the caller holds at least a read
// lock on the table.
func (t *Table) captureLocked() tableSnap {
	s := tableSnap{
		t:       t,
		segs:    t.segs[:len(t.segs):len(t.segs)],
		tail:    append([][]Value(nil), t.tail...),
		n:       t.n,
		version: t.idxVersion,
	}
	for _, ix := range t.idx {
		s.idxCols = append(s.idxCols, ix.col)
	}
	return s
}

// row returns row i of the snapshot without locking.
func (s *tableSnap) row(i int) []Value {
	if g := i >> segShift; g < len(s.segs) {
		return s.segs[g].rows[i&segMask]
	}
	return s.tail[i-len(s.segs)*segSize]
}

// hasIndex reports whether column ci carried a hash index at capture
// time.
func (s *tableSnap) hasIndex(ci int) bool {
	for _, c := range s.idxCols {
		if c == ci {
			return true
		}
	}
	return false
}

// lookupAppend appends to dst the snapshot-visible row ids whose
// column ci equals key, using the table's live hash index. It reports
// false (and appends nothing) when the column has no index or when
// postings were invalidated since the snapshot — the caller then falls
// back to a scan. Postings may be appended out of order after value
// changes, so callers must sort before relying on row order.
func (s *tableSnap) lookupAppend(dst []int, ci int, key Value) ([]int, bool) {
	t := s.t
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.idxVersion != s.version {
		return dst, false
	}
	for _, ix := range t.idx {
		if ix.col != ci {
			continue
		}
		for _, id := range ix.post[indexKey(key)] {
			if id < s.n {
				dst = append(dst, id)
			}
		}
		return dst, true
	}
	return dst, false
}

// DB is the provenance database: a set of tables, each guarded by its
// own lock, so the engine's workers can stream activation records into
// hactivation while the scientist queries ddocking at runtime (the
// paper's "runtime provenance query" feature) without either blocking
// the other. The database-level lock guards only the table map.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers a new relation. Recreating an existing name is
// an error (schema migrations are out of scope).
func (db *DB) CreateTable(name string, cols []Column) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("prov: table %q already exists", name)
	}
	if len(cols) == 0 {
		return fmt.Errorf("prov: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("prov: table %q has duplicate column %q", name, c.Name)
		}
		seen[lc] = true
	}
	t := &Table{Name: key, Columns: cols}
	t.buildIndex()
	db.tables[key] = t
	return nil
}

// CreateIndex declares an incremental hash index on one column,
// backfilling it from existing rows. Declaring the same index twice is
// a no-op. Indexed columns make UpdateByKey (and the query planner's
// equality lookups) O(1) in the table size.
func (db *DB) CreateIndex(table, column string) error {
	t, err := db.lookupTable(table)
	if err != nil {
		return err
	}
	ci := t.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("prov: table %q has no column %q", table, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ix := range t.idx {
		if ix.col == ci {
			return nil
		}
	}
	ix := &tableIndex{col: ci, post: make(map[interface{}][]int)}
	for i := 0; i < t.n; i++ {
		k := indexKey(t.rowLocked(i)[ci])
		ix.post[k] = append(ix.post[k], i)
	}
	t.idx = append(t.idx, ix)
	// Snapshots taken before the index existed must not trust it: the
	// backfill reflects current cell values, not theirs.
	t.idxVersion++
	return nil
}

// lookupTable resolves a table name under the map lock.
func (db *DB) lookupTable(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("prov: table %q does not exist", name)
	}
	return t, nil
}

// Insert appends a row after type checking.
func (db *DB) Insert(table string, row []Value) error {
	t, err := db.lookupTable(table)
	if err != nil {
		return err
	}
	if err := t.checkRow(table, row); err != nil {
		return err
	}
	cp := append([]Value(nil), row...)
	t.mu.Lock()
	t.appendRowLocked(cp)
	t.mu.Unlock()
	return nil
}

// InsertBatch appends many rows under one lock acquisition — the bulk
// path the buffered appender flushes through.
func (db *DB) InsertBatch(table string, rows [][]Value) error {
	t, err := db.lookupTable(table)
	if err != nil {
		return err
	}
	cps := make([][]Value, len(rows))
	for i, row := range rows {
		if err := t.checkRow(table, row); err != nil {
			return err
		}
		cps[i] = append([]Value(nil), row...)
	}
	t.mu.Lock()
	for _, cp := range cps {
		t.appendRowLocked(cp)
	}
	t.mu.Unlock()
	return nil
}

// Update applies fn to a copy of every row matching pred and installs
// the copies (copy-on-write, so in-flight zero-copy snapshots keep
// reading the pre-update rows). It returns the number of rows updated.
func (db *DB) Update(table string, pred func(row []Value) bool, fn func(row []Value)) (int, error) {
	t, err := db.lookupTable(table)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := 0; i < t.n; i++ {
		if !pred(t.rowLocked(i)) {
			continue
		}
		t.updateRowLocked(i, fn)
		n++
	}
	return n, nil
}

// UpdateByKey applies fn (copy-on-write) to every row whose column
// equals key. With a declared index on the column this is O(1) in the
// table size — the path CloseActivation takes 80,000 times in the
// paper's sweep; without one it degrades to the Update scan.
func (db *DB) UpdateByKey(table, column string, key Value, fn func(row []Value)) (int, error) {
	t, err := db.lookupTable(table)
	if err != nil {
		return 0, err
	}
	ci := t.ColumnIndex(column)
	if ci < 0 {
		return 0, fmt.Errorf("prov: table %q has no column %q", table, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ix := range t.idx {
		if ix.col != ci {
			continue
		}
		// Copy the posting list: fn may change the key cell, which
		// rewrites the posting slice mid-iteration.
		ids := append([]int(nil), ix.post[indexKey(key)]...)
		for _, i := range ids {
			t.updateRowLocked(i, fn)
		}
		return len(ids), nil
	}
	n := 0
	for i := 0; i < t.n; i++ {
		if compareValues(t.rowLocked(i)[ci], key) != 0 {
			continue
		}
		t.updateRowLocked(i, fn)
		n++
	}
	return n, nil
}

// table returns the named table; the caller holds db.mu.
func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("prov: table %q does not exist", name)
	}
	return t, nil
}

// NumRows returns the row count of a table (0 for missing tables).
func (db *DB) NumRows(table string) int {
	t, err := db.lookupTable(table)
	if err != nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// captureTables takes a consistent multi-table snapshot: the read
// locks of all distinct tables are acquired in sorted name order (a
// canonical order, so concurrent snapshots cannot deadlock; writers
// only ever hold one table lock) and released once every capture is
// done.
func captureTables(tabs []*Table) map[*Table]tableSnap {
	locks := make([]*Table, 0, len(tabs))
	seen := make(map[*Table]bool, len(tabs))
	for _, t := range tabs {
		if !seen[t] {
			seen[t] = true
			locks = append(locks, t)
		}
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i].Name < locks[j].Name })
	for _, t := range locks {
		t.mu.RLock()
	}
	snaps := make(map[*Table]tableSnap, len(locks))
	for _, t := range locks {
		snaps[t] = t.captureLocked()
	}
	for _, t := range locks {
		t.mu.RUnlock()
	}
	return snaps
}
