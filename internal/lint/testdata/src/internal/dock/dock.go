// Package dock is the wildrand scilint fixture. Its directory path
// contains "internal/dock", which puts it on the analyzer's
// deterministic hot-path list: global rand calls and wall-clock reads
// are findings here, while the injected seeded source is not.
package dock

import (
	"math/rand"
	"time"
)

// Jitter draws from the process-global rand source (wildrand, error).
func Jitter() float64 {
	return rand.Float64()
}

// Stamp reads the wall clock in a hot path (wildrand, error).
func Stamp() time.Time {
	return time.Now()
}

// Seeded uses the approved injected-source pattern: constructors are
// exempt, and methods on the local *rand.Rand are invisible to the
// global-source check.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
