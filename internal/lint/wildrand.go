package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WildRand flags non-reproducible entropy in the stochastic-search hot
// paths. The Lamarckian GA and Monte-Carlo chains must replay
// bit-identically from a recorded seed for the paper's re-execution
// and consistency guarantees to hold, so inside the hot packages all
// randomness has to flow through an injected, seeded *rand.Rand:
//
//   - calls through math/rand's (or math/rand/v2's) process-global
//     source (rand.Intn, rand.Float64, rand.Shuffle, ...) are flagged;
//     constructing a seeded generator (rand.New, rand.NewSource, ...)
//     is the approved pattern and stays silent;
//   - time.Now() is flagged: engine time is virtual (cost-model
//     driven), and wall-clock reads make runs non-replayable.
//
// Test files are exempt.
var WildRand = &Analyzer{
	Name:     "wildrand",
	Doc:      "flags math/rand global-source calls and time.Now() in deterministic hot paths",
	Severity: Error,
	Run:      runWildRand,
}

// wildRandHotPaths are import-path fragments marking the packages where
// determinism is load-bearing.
var wildRandHotPaths = []string{
	"internal/dock",
	"internal/engine",
	"internal/sched",
}

// wildRandConstructors are the math/rand package-level functions that
// build explicit generators rather than touching the global source.
var wildRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWildRand(pass *Pass) {
	hot := false
	for _, frag := range wildRandHotPaths {
		if strings.Contains(pass.Path, frag) {
			hot = true
			break
		}
	}
	if !hot {
		return
	}
	pass.Inspect(func(n ast.Node, _ []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.IsTestFile(call.Pos()) {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok {
			return // method call on a value, e.g. r.Intn on *rand.Rand
		}
		switch pkgName.Imported().Path() {
		case "math/rand", "math/rand/v2":
			if !wildRandConstructors[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"math/rand global source call rand.%s in deterministic hot path; thread an injected seeded *rand.Rand instead",
					sel.Sel.Name)
			}
		case "time":
			if sel.Sel.Name == "Now" {
				pass.Reportf(call.Pos(),
					"time.Now() in deterministic hot path; use the engine's virtual clock or inject a clock function")
			}
		}
	})
}
