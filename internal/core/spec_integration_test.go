package core

import (
	"bytes"
	"testing"

	"repro/internal/prep"
	"repro/internal/workflow"
	"repro/internal/workflow/spec"
)

// TestSciDockSpecRoundTrip exports the built SciDock workflow as
// SciCumulus XML (the Figure 2 format), parses it back, rebinds the
// activity bodies and validates — the full configuration path a
// SciCumulus user exercises.
func TestSciDockSpecRoundTrip(t *testing.T) {
	cfg := smokeConfig(t, ModeAD4, 2, 2)
	w, err := BuildWorkflow(cfg, prep.ProgramAD4)
	if err != nil {
		t.Fatal(err)
	}
	s := &spec.Spec{
		Database: spec.Database{Name: "scicumulus", Server: "ec2-50-17-107-164.compute-1.amazonaws.com", Port: 5432},
		Workflow: w,
	}
	var buf bytes.Buffer
	if err := spec.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	parsed, err := spec.Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if parsed.Database.Port != 5432 {
		t.Errorf("database metadata lost: %+v", parsed.Database)
	}
	if len(parsed.Workflow.Activities) != len(w.Activities) {
		t.Fatalf("activities %d != %d", len(parsed.Workflow.Activities), len(w.Activities))
	}
	// Rebind bodies by tag, as a deployment would.
	bodies := map[string]workflow.RunFunc{}
	for _, a := range w.Activities {
		bodies[a.Tag] = a.Run
	}
	if err := parsed.Bind(bodies); err != nil {
		t.Fatal(err)
	}
	// Dependency chain preserved.
	orig, _ := w.TopoOrder()
	again, _ := parsed.Workflow.TopoOrder()
	for i := range orig {
		if orig[i].Tag != again[i].Tag {
			t.Fatalf("chain order changed at %d: %s vs %s", i, orig[i].Tag, again[i].Tag)
		}
	}
	// Templates round-trip, so instrumentation tags survive.
	for i := range orig {
		if orig[i].Template != again[i].Template {
			t.Errorf("template of %s changed: %q vs %q",
				orig[i].Tag, orig[i].Template, again[i].Template)
		}
	}
}

// TestSciDockTemplatesInstantiate verifies every activity template of
// the built workflow resolves against the tuples that actually reach
// it during a run (instrumentation completeness).
func TestSciDockTemplatesInstantiate(t *testing.T) {
	cfg := smokeConfig(t, ModeAD4, 2, 1)
	camp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every recorded command is fully instantiated: no %TAG% left.
	res, err := camp.Engine.DB.Query("SELECT command FROM hactivation")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		cmd := row[0].(string)
		if bytes.Contains([]byte(cmd), []byte("%")) {
			t.Errorf("uninstantiated command in provenance: %q", cmd)
		}
	}
}
