package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/prep"
	"repro/internal/prov"
	"repro/internal/sched"
)

func smokeConfig(t *testing.T, mode Mode, nr, nl int) Config {
	t.Helper()
	ds, err := data.Small(nr, nl)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Mode: mode, Dataset: ds, Cores: 8, Effort: SmokeEffort(),
		Seed: 1, HgGuard: true, DisableFailures: false,
	}
}

func TestBuildWorkflowStructure(t *testing.T) {
	cfg := smokeConfig(t, ModeAD4, 2, 2)
	w, err := BuildWorkflow(cfg, prep.ProgramAD4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Activities) != 8 {
		t.Errorf("activities = %d, want 8 (Figure 1)", len(w.Activities))
	}
	tags := []string{}
	order, _ := w.TopoOrder()
	for _, a := range order {
		tags = append(tags, a.Tag)
	}
	want := []string{
		sched.TagBabel, sched.TagLigPrep, sched.TagRecPrep, sched.TagGPF,
		sched.TagAutoGrid, sched.TagFilter, sched.TagDockPrep, sched.TagDockAD4,
	}
	if strings.Join(tags, ",") != strings.Join(want, ",") {
		t.Errorf("chain = %v", tags)
	}
	wv, err := BuildWorkflow(cfg, prep.ProgramVina)
	if err != nil {
		t.Fatal(err)
	}
	last := wv.Activities[len(wv.Activities)-1]
	if last.Tag != sched.TagDockVina {
		t.Errorf("vina chain ends with %s", last.Tag)
	}
}

func TestRunSmokeCampaignAD4(t *testing.T) {
	camp, err := Run(smokeConfig(t, ModeAD4, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Reports) != 1 {
		t.Fatalf("reports = %d", len(camp.Reports))
	}
	rep := camp.Reports[0]
	if rep.Activations == 0 || rep.TET <= 0 {
		t.Errorf("report = %+v", rep)
	}
	// Provenance accumulated: 8 activities.
	if n := camp.Engine.DB.NumRows(prov.TableActivity); n != 8 {
		t.Errorf("hactivity rows = %d", n)
	}
	// Docking extractor rows exist for surviving pairs.
	res, err := camp.Engine.DB.Query("SELECT count(*) FROM ddocking")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) == 0 {
		t.Error("no docking rows extracted")
	}
	// DLG files on the shared FS, discoverable via Query 2.
	q2, err := camp.Engine.DB.Query(`SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir
FROM hworkflow w, hactivity a, hfile f
WHERE w.wkfid = a.wkfid AND a.actid = f.actid AND f.fname LIKE '%.dlg'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Rows) == 0 {
		t.Error("Query 2 found no .dlg files")
	}
	for _, row := range q2.Rows {
		if !strings.HasPrefix(row[4].(string), camp.Config.ExpDir) {
			t.Errorf("dlg dir = %v", row[4])
		}
	}
}

func TestRunVinaAndExtractorFields(t *testing.T) {
	camp, err := Run(smokeConfig(t, ModeVina, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Engine.DB.Query(
		"SELECT program, feb, rmsd, nruns FROM ddocking")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no docking rows")
	}
	for _, row := range res.Rows {
		if row[0].(string) != "vina" {
			t.Errorf("program = %v", row[0])
		}
		if math.IsNaN(row[1].(float64)) {
			t.Error("NaN feb")
		}
		if row[3].(int64) < 1 {
			t.Error("no runs recorded")
		}
	}
}

func TestAdaptiveModeRunsTwoWorkflows(t *testing.T) {
	// Pick receptors covering both size classes.
	small, large := "", ""
	for _, code := range data.ReceptorCodes {
		meta := data.ReceptorMeta(code)
		if meta.ContainsHg {
			continue
		}
		if meta.Class == data.SmallReceptor && small == "" {
			small = code
		}
		if meta.Class == data.LargeReceptor && large == "" {
			large = code
		}
		if small != "" && large != "" {
			break
		}
	}
	cfg := Config{
		Mode:    ModeAdaptive,
		Dataset: data.Dataset{Receptors: []string{small, large}, Ligands: []string{"042"}},
		Cores:   4, Effort: SmokeEffort(), HgGuard: true,
	}
	camp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Reports) != 2 {
		t.Fatalf("adaptive mode reports = %d, want 2 workflows", len(camp.Reports))
	}
	// Each program docked exactly its size class.
	res, err := camp.Engine.DB.Query("SELECT program, receptor FROM ddocking")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		rec := row[1].(string)
		wantProgram := "autodock4"
		if data.ReceptorMeta(rec).Class == data.LargeReceptor {
			wantProgram = "vina"
		}
		if row[0].(string) != wantProgram {
			t.Errorf("receptor %s docked by %v, want %s", rec, row[0], wantProgram)
		}
	}
	if camp.TET() <= camp.Reports[0].TET {
		t.Error("campaign TET should sum workflows")
	}
}

func TestHgGuardAbortsBeforeExecution(t *testing.T) {
	var hgCode string
	for _, code := range data.ReceptorCodes {
		if data.ReceptorMeta(code).ContainsHg {
			hgCode = code
			break
		}
	}
	if hgCode == "" {
		t.Fatal("no Hg receptor in dataset")
	}
	cfg := Config{
		Mode:    ModeAD4,
		Dataset: data.Dataset{Receptors: []string{hgCode}, Ligands: []string{"042"}},
		Cores:   2, Effort: SmokeEffort(), HgGuard: true, DisableFailures: true,
	}
	camp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Engine.DB.Query(
		"SELECT status, command FROM hactivation WHERE status = 'ABORTED'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][1].(string), "Hg present") {
		t.Errorf("guard rows: %v", res.Rows)
	}
	// With the guard the abort is instantaneous (no loop timeout).
	dur, err := camp.Engine.DB.Query(
		"SELECT extract('epoch' from (endtime - starttime)) FROM hactivation WHERE status = 'ABORTED'")
	if err != nil {
		t.Fatal(err)
	}
	if secs := dur.Rows[0][0].(float64); secs > 1 {
		t.Errorf("guarded abort took %v virtual seconds", secs)
	}

	// Without the guard, the same receptor loops and burns the
	// timeout budget.
	cfg.HgGuard = false
	camp2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur2, err := camp2.Engine.DB.Query(
		"SELECT extract('epoch' from (endtime - starttime)) FROM hactivation WHERE status = 'ABORTED'")
	if err != nil {
		t.Fatal(err)
	}
	if len(dur2.Rows) != 1 {
		t.Fatalf("unguarded aborted rows = %d", len(dur2.Rows))
	}
	if secs := dur2.Rows[0][0].(float64); secs < sched.LoopTimeout*0.4 {
		t.Errorf("unguarded loop charged only %v seconds", secs)
	}
}

func TestProblematicLigandLoops(t *testing.T) {
	var bad string
	for _, code := range data.LigandCodes {
		if data.LigandMeta(code).Problematic {
			bad = code
			break
		}
	}
	if bad == "" {
		t.Fatal("no problematic ligand")
	}
	rec := ""
	for _, code := range data.ReceptorCodes {
		if !data.ReceptorMeta(code).ContainsHg {
			rec = code
			break
		}
	}
	cfg := Config{
		Mode:    ModeAD4,
		Dataset: data.Dataset{Receptors: []string{rec}, Ligands: []string{bad}},
		Cores:   2, Effort: SmokeEffort(), HgGuard: true, DisableFailures: true,
	}
	camp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Reports[0].Aborted == 0 {
		t.Error("problematic ligand did not loop")
	}
	// Blacklisting it (steering) lets it dock.
	cfg.LigandBlacklist = map[string]bool{bad: true}
	camp2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := camp2.Engine.DB.Query("SELECT count(*) FROM ddocking")
	if res.Rows[0][0].(int64) != 1 {
		t.Error("blacklisted ligand did not dock")
	}
}

func TestTable3Analysis(t *testing.T) {
	camp, err := Run(smokeConfig(t, ModeAD4, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table3(camp.Engine.DB, camp.Config.Dataset.Ligands)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Table 3 rows")
	}
	for _, r := range rows {
		if r.Program != "autodock4" {
			t.Errorf("unexpected program %s", r.Program)
		}
		if r.NegFEB > r.NDocked {
			t.Errorf("neg count %d exceeds docked %d", r.NegFEB, r.NDocked)
		}
		if r.NegFEB > 0 && r.AvgFEB >= 0 {
			t.Errorf("avg FEB of negatives is %v", r.AvgFEB)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "FEB(-)") {
		t.Errorf("format:\n%s", out)
	}
	top, err := TopInteractions(camp.Engine.DB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Error("no top interactions")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Cores: 0, Dataset: data.Full()}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := Run(Config{Cores: 2}); err == nil {
		t.Error("empty dataset accepted")
	}
	bad := smokeConfig(t, ModeAD4, 1, 1)
	bad.Effort.GridNPts = 1
	if _, err := Run(bad); err == nil {
		t.Error("bad effort accepted")
	}
	if ModeAD4.String() != "ad4" || ModeVina.String() != "vina" || ModeAdaptive.String() != "adaptive" {
		t.Error("mode names")
	}
}

func TestLigandFrameOffsetProperties(t *testing.T) {
	seen := map[string]bool{}
	for _, code := range data.LigandCodes {
		off := ligandFrameOffset(code)
		mag := off.Norm()
		if mag < 47 || mag > 63 {
			t.Errorf("ligand %s frame offset %.1f Å outside 48-62", code, mag)
		}
		key := off.String()
		if seen[key] {
			t.Errorf("duplicate frame offset for %s", code)
		}
		seen[key] = true
		if ligandFrameOffset(code) != off {
			t.Errorf("offset not deterministic for %s", code)
		}
	}
}

func TestCalibrationMonotone(t *testing.T) {
	if calibrateAD4(-10) >= calibrateAD4(-5) {
		t.Error("AD4 calibration must preserve order")
	}
	if calibrateVina(-10) >= calibrateVina(-5) {
		t.Error("Vina calibration must preserve order")
	}
}

func TestTypesKeyCanonical(t *testing.T) {
	a := typesKey([]chem.AtomType{chem.TypeC, chem.TypeN, chem.TypeOA})
	b := typesKey([]chem.AtomType{chem.TypeOA, chem.TypeC, chem.TypeN})
	if a != b {
		t.Errorf("permuted type lists got different keys: %q vs %q", a, b)
	}
	c := typesKey([]chem.AtomType{chem.TypeC, chem.TypeC, chem.TypeN, chem.TypeOA, chem.TypeOA})
	if c != a {
		t.Errorf("duplicated type list got different key: %q vs %q", c, a)
	}
	if d := typesKey([]chem.AtomType{chem.TypeC, chem.TypeHD}); d == a {
		t.Error("distinct type sets must not collide")
	}
	if typesKey(nil) != "" {
		t.Errorf("empty list key = %q", typesKey(nil))
	}
}

// TestGridFloat32Campaign runs the same small AD4 campaign with
// float64 and float32 grid maps: the f32 knob must not change the
// campaign shape (same pairs dock, same extractor rows), and the
// binding energies must stay physical — per-score deviation is bounded
// by the lattice rounding (pinned in internal/grid), but search
// trajectories may diverge on an accept flip, so this is a wiring
// test, not an equivalence test.
func TestGridFloat32Campaign(t *testing.T) {
	energies := func(f32 bool) map[string]float64 {
		cfg := smokeConfig(t, ModeAD4, 2, 2)
		cfg.GridFloat32 = f32
		camp, err := Run(cfg)
		if err != nil {
			t.Fatalf("GridFloat32=%v: %v", f32, err)
		}
		res, err := camp.Engine.DB.Query(
			"SELECT receptor, ligand, feb FROM ddocking")
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, row := range res.Rows {
			feb := row[2].(float64)
			if math.IsNaN(feb) || math.IsInf(feb, 0) {
				t.Errorf("GridFloat32=%v: non-finite feb for %v/%v", f32, row[0], row[1])
			}
			out[row[0].(string)+"|"+row[1].(string)] = feb
		}
		return out
	}
	e64 := energies(false)
	e32 := energies(true)
	if len(e64) == 0 {
		t.Fatal("no docking rows")
	}
	if len(e32) != len(e64) {
		t.Errorf("row count differs: f64=%d f32=%d", len(e64), len(e32))
	}
	for k, v := range e64 {
		if _, ok := e32[k]; !ok {
			t.Errorf("pair %s missing from f32 campaign", k)
		}
		_ = v
	}
}

// TestScorePrecisionCampaign runs the same small campaigns in exact
// and tolerance scoring mode and requires BIT-IDENTICAL docking rows:
// unlike GridFloat32 (where an accept flip may legitimately diverge a
// trajectory), the tolerance screen is conservative and every
// persisted energy is exact, so the whole provenance-visible outcome
// must not move at all.
func TestScorePrecisionCampaign(t *testing.T) {
	for _, mode := range []Mode{ModeAD4, ModeVina} {
		energies := func(p dock.Precision) map[string]float64 {
			cfg := smokeConfig(t, mode, 2, 2)
			cfg.ScorePrecision = p
			camp, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v ScorePrecision=%v: %v", mode, p, err)
			}
			res, err := camp.Engine.DB.Query(
				"SELECT receptor, ligand, feb FROM ddocking")
			if err != nil {
				t.Fatal(err)
			}
			out := map[string]float64{}
			for _, row := range res.Rows {
				out[row[0].(string)+"|"+row[1].(string)] = row[2].(float64)
			}
			return out
		}
		exact := energies(dock.PrecisionExact)
		tol := energies(dock.PrecisionTolerance)
		if len(exact) == 0 {
			t.Fatalf("%v: no docking rows", mode)
		}
		if len(tol) != len(exact) {
			t.Fatalf("%v: row count differs: exact=%d tolerance=%d", mode, len(exact), len(tol))
		}
		for k, v := range exact {
			tv, ok := tol[k]
			if !ok {
				t.Errorf("%v: pair %s missing from tolerance campaign", mode, k)
			} else if tv != v {
				t.Errorf("%v: pair %s feb %.17g (tolerance) != %.17g (exact)", mode, k, tv, v)
			}
		}
	}
}
