package chem

import (
	"fmt"
	"math"
)

// Placement is the chem-level view of a docking pose: the rigid-body
// transform plus one angle per rotatable bond. It exists so the batched
// kinematics kernel can live next to the torsion tree without importing
// the dock package; dock.Batch stages appended poses as Placements and
// materializes them lane-wise in one ApplyTorsionsBatch call.
type Placement struct {
	Orientation Quat
	Translation Vec3
	Angles      []float64 // radians, one per rotatable bond
}

// KinScratch is the reusable per-owner scratch of ApplyTorsionsBatch:
// the flattened torsion replay schedule (each torsion's effect-set
// pre-filtered of its axis atom, concatenated in tree order) and the
// base conformation staged as SoA component lanes so a pose
// initializes with three memmoves instead of a per-atom scatter.
// Preparing it is O(atoms + moved) once per (tree, base) pair; warm
// calls allocate nothing.
//
// A KinScratch is single-owner scratch, like dock.Workspace.
type KinScratch struct {
	tree    *TorsionTree
	basePtr *Vec3 // identity of the base conformation the lanes mirror
	// Replay schedule: torsion k rotates lane indices
	// moved[moff[k]:moff[k+1]] about its axis frame. Built once per
	// tree, replayed across every pose of every window.
	moved []int32
	moff  []int32
	// Base conformation as component lanes.
	bx, by, bz []float64
	ready      bool
}

func (ks *KinScratch) prepare(t *TorsionTree, base []Vec3) {
	var bp *Vec3
	if len(base) > 0 {
		bp = &base[0]
	}
	if ks.ready && ks.tree == t && ks.basePtr == bp && len(ks.bx) == len(base) {
		return
	}
	ks.tree = t
	ks.basePtr = bp
	ks.moved = ks.moved[:0]
	if cap(ks.moff) < len(t.Torsions)+1 {
		ks.moff = make([]int32, 0, len(t.Torsions)+1)
	}
	ks.moff = ks.moff[:0]
	ks.moff = append(ks.moff, 0)
	for _, tor := range t.Torsions {
		for _, idx := range tor.Moved {
			if idx == tor.Axis2 {
				continue // axis atom does not move
			}
			ks.moved = append(ks.moved, int32(idx))
		}
		ks.moff = append(ks.moff, int32(len(ks.moved)))
	}
	ks.bx = append(ks.bx[:0], make([]float64, len(base))...)
	ks.by = append(ks.by[:0], make([]float64, len(base))...)
	ks.bz = append(ks.bz[:0], make([]float64, len(base))...)
	for i, v := range base {
		ks.bx[i], ks.by[i], ks.bz[i] = v.X, v.Y, v.Z
	}
	ks.ready = true
}

// ApplyTorsionsBatch materializes a window of poses straight into SoA
// component lanes: for each pose it applies the torsion rotations to
// the base conformation, re-centres, and applies the rigid-body
// transform, storing atom i of pose p at xs[p*len(base)+i] (ys, zs
// alike). The floating-point operation sequence per pose replicates
// dock.Ligand.CoordsInto exactly — same torsion skip rule, same
// rotation op order, same sequential centroid — so the lane values are
// bit-identical (0-ULP) to the per-pose AoS path.
//
// Compared to staging each pose through an AoS buffer and copying, the
// batch kernel works in the output lanes directly: each pose starts as
// three memmoves of the base lanes, then the flattened torsion
// schedule is replayed torsion-outer/pose-inner — the per-torsion
// index list and axis frame load once and stream across the whole
// window instead of being re-walked per pose — and the re-centre +
// rotate + translate pass runs in-lane.
//
// Each lane must have length len(poses)*len(base). len(base) must
// match the conformation the tree was built for, and the base contents
// must not change between calls that reuse the same scratch (the
// mobile-only reset assumes the immobile entries it cached stay
// valid); dock ligands' base conformations are immutable, so this
// holds by construction there.
//
//exact: bit-identical to the per-pose CoordsInto path
func (t *TorsionTree) ApplyTorsionsBatch(ks *KinScratch, base []Vec3, poses []Placement, xs, ys, zs []float64) {
	stride := len(base)
	if want := len(poses) * stride; len(xs) != want || len(ys) != want || len(zs) != want {
		panic(fmt.Sprintf("chem: ApplyTorsionsBatch lanes %d/%d/%d for %d poses of %d atoms",
			len(xs), len(ys), len(zs), len(poses), stride))
	}
	if len(t.Torsions) == 0 {
		// CoordsInto skips the re-centre when the ligand is rigid:
		// the transform applies to the base conformation directly.
		for p := range poses {
			pl := &poses[p]
			if len(pl.Angles) != 0 {
				panic(fmt.Sprintf("chem: %d torsion angles for %d torsions", len(pl.Angles), len(t.Torsions)))
			}
			q := pl.Orientation.Normalize()
			tr := pl.Translation
			at := p * stride
			for i, v := range base {
				w := q.Rotate(v).Add(tr)
				xs[at+i], ys[at+i], zs[at+i] = w.X, w.Y, w.Z
			}
		}
		return
	}
	ks.prepare(t, base)
	n := len(poses)
	for p := range poses {
		if len(poses[p].Angles) != len(t.Torsions) {
			panic(fmt.Sprintf("chem: %d torsion angles for %d torsions", len(poses[p].Angles), len(t.Torsions)))
		}
	}
	// Stage 1: every pose's lanes start as the base conformation —
	// three memmoves per pose, no per-atom scatter.
	for p := 0; p < n; p++ {
		at := p * stride
		copy(xs[at:at+stride], ks.bx)
		copy(ys[at:at+stride], ks.by)
		copy(zs[at:at+stride], ks.bz)
	}
	// Stage 2: replay the torsion schedule torsion-outer/pose-inner.
	// Poses are mutually independent, and within one pose the torsions
	// still apply in ascending tree order, so the per-pose sequence of
	// floating-point operations — axis frame load, AxisAngleQuat, the
	// rotate-about-b expression — is exactly the per-pose path's, and
	// the lane values stay bit-identical to it. The loop inversion is
	// pure scheduling: the torsion's index list stays L1-hot across the
	// window instead of the whole schedule cycling through per pose.
	for k := range t.Torsions {
		tor := &t.Torsions[k]
		a1, a2 := tor.Axis1, tor.Axis2
		mlist := ks.moved[ks.moff[k]:ks.moff[k+1]]
		for p := 0; p < n; p++ {
			ang := poses[p].Angles[k]
			if ang == 0 {
				continue
			}
			at := p * stride
			a := V(xs[at+a1], ys[at+a1], zs[at+a1])
			b := V(xs[at+a2], ys[at+a2], zs[at+a2])
			q := AxisAngleQuat(b.Sub(a), ang)
			for _, idx := range mlist {
				j := at + int(idx)
				w := q.Rotate(V(xs[j], ys[j], zs[j]).Sub(b)).Add(b)
				xs[j], ys[j], zs[j] = w.X, w.Y, w.Z
			}
		}
	}
	// Stage 3: per pose, sequential centroid (replicating
	// chem.Centroid's op order) then the rigid-body transform in-lane.
	for p := range poses {
		pl := &poses[p]
		at := p * stride
		var c Vec3
		for i := 0; i < stride; i++ {
			c = c.Add(V(xs[at+i], ys[at+i], zs[at+i]))
		}
		c = c.Scale(1 / float64(stride))
		q := pl.Orientation.Normalize()
		tr := pl.Translation
		for i := 0; i < stride; i++ {
			j := at + i
			w := q.Rotate(V(xs[j], ys[j], zs[j]).Sub(c)).Add(tr)
			xs[j], ys[j], zs[j] = w.X, w.Y, w.Z
		}
	}
}

// ArcRadiiInto computes, for every torsion of the tree, the arc radii
// of its effect-set at the given conformation: arcMax[k] is the
// largest distance of any moved atom (axis atom excluded, matching the
// rotation rule) from torsion k's axis line, and arcMean[k] is the sum
// of those distances divided by the TOTAL atom count of the
// conformation. A rotation of torsion k by Δθ displaces each moved
// atom along an arc of length |Δθ|·ρ (ρ its distance to the axis), so
// chord displacements are ≤ |Δθ|·arcMax[k]; and because unmoved atoms
// contribute zero, the centroid of the whole conformation shifts by at
// most |Δθ|·arcMean[k]. Degenerate (zero-length) axes rotate nothing
// (AxisAngleQuat returns identity) and report zero radii.
//
// Both output slices must have length len(t.Torsions). The radii are
// properties of the conformation passed in: window-screening callers
// evaluate them at the window's anchor conformation.
//
//unit: coords=Å arcMax=Å arcMean=Å
func (t *TorsionTree) ArcRadiiInto(coords []Vec3, arcMax, arcMean []float64) {
	if len(arcMax) != len(t.Torsions) || len(arcMean) != len(t.Torsions) {
		panic(fmt.Sprintf("chem: ArcRadiiInto outputs %d/%d for %d torsions",
			len(arcMax), len(arcMean), len(t.Torsions)))
	}
	n := len(coords)
	for k, tor := range t.Torsions {
		a := coords[tor.Axis1]
		b := coords[tor.Axis2]
		u := b.Sub(a)
		u2 := u.Dot(u)
		arcMax[k], arcMean[k] = 0, 0
		if u2 <= 0 || n == 0 {
			continue
		}
		var maxR, sumR float64
		for _, idx := range tor.Moved {
			if idx == tor.Axis2 {
				continue
			}
			w := coords[idx].Sub(a)
			// Distance to the axis LINE (the rotation orbit radius):
			// |w|² − (w·û)².
			proj := w.Dot(u)
			d2 := w.Dot(w) - proj*proj/u2
			if d2 < 0 {
				d2 = 0 // round-off for atoms on the axis
			}
			d := math.Sqrt(d2)
			if d > maxR {
				maxR = d
			}
			sumR += d
		}
		arcMax[k] = maxR
		arcMean[k] = sumR / float64(n)
	}
}

// DisplacementBound bounds how far any atom of a pose can sit from its
// position in the window's anchor pose, given per-coordinate
// perturbation bounds. The pose pipeline is
// x_a = R(q)·(t_a(θ) − c(θ)) + T with c the conformation centroid, so
// with |ΔT| ≤ dT, a relative orientation rotation angle ≤ rot, and
// every torsion within dtor radians of the anchor's:
//
//	|x_a − x⁰_a| ≤ dT + 2·sin(min(rot, π)/2)·radius + Σ_k dtor·(arcMax[k] + arcMean[k])
//
// where radius is the anchor's largest |t⁰_a − c⁰| (its atom radius
// about the centroid): the torsion sum bounds |Δ(t_a − c)| chord by
// chord (arc radii taken at the anchor conformation; for the
// single-coordinate probe windows of the Vina optimizer this is exact,
// for simultaneous multi-torsion perturbations it is the first-order
// estimate whose rare escapes the per-pose WindowValid fallback
// absorbs), and the rotation term is the exact worst case
// |（R−R⁰)·v| = 2·sin(α/2)·|v| over |v| ≤ radius.
//
//unit: dT=Å rot=rad dtor=rad radius=Å result=Å
func DisplacementBound(dT, rot, dtor, radius float64, arcMax, arcMean []float64) float64 {
	d := dT
	if rot > 0 {
		half := rot / 2
		if half > math.Pi/2 {
			half = math.Pi / 2
		}
		d += 2 * math.Sin(half) * radius
	}
	if dtor > 0 {
		for k := range arcMax {
			d += dtor * (arcMax[k] + arcMean[k])
		}
	}
	return d
}

// RigidUnits partitions the nAtoms atoms of the conformation into
// rigid units: two atoms share a unit exactly when every torsion
// either moves both or neither, so their pairwise distance is
// invariant under any torsion angles (and under the rigid-body
// transform). Unit 0 is the root fragment. The returned slice maps
// atom index → unit id, with ids dense in [0, numUnits).
//
// The tolerance-bounded fast scorers use this to fold intramolecular
// pairs inside one unit into a pose-independent constant evaluated
// once at the base geometry.
func (t *TorsionTree) RigidUnits(nAtoms int) []int32 {
	// Signature of an atom = the set of torsions whose effect-set
	// contains it (axis atoms excluded, matching the rotation rule).
	// Torsions are tree-ordered root-outward, so the signature of any
	// moved atom is a chain of nested effect-sets; hashing the chain
	// incrementally gives each distinct signature a distinct id.
	unit := make([]int32, nAtoms)
	type sig struct {
		parent int32 // unit id before this torsion was applied
		tor    int32
	}
	ids := map[sig]int32{}
	next := int32(1)
	for k, tor := range t.Torsions {
		for _, idx := range tor.Moved {
			if idx == tor.Axis2 {
				continue
			}
			s := sig{parent: unit[idx], tor: int32(k)}
			id, ok := ids[s]
			if !ok {
				id = next
				next++
				ids[s] = id
			}
			unit[idx] = id
		}
	}
	return unit
}
