package dock

import (
	"math"

	"repro/internal/chem"
)

// Incumbent-anchored window screening (DESIGN.md "Incumbent-anchored
// gather and window screening").
//
// A search window is a set of small perturbations of one incumbent
// pose. Instead of running the neighbor gather once per (atom, pose),
// the engines gather ONCE per atom at the window's anchor with the
// cutoff inflated by a displacement bound D, then rescore every pose of
// the window against that shared candidate set. Correctness never
// depends on how D was estimated: a pose participates in the shared
// path only if WindowValid confirms — on its actual materialized
// coordinates — that every atom sits within D of its anchor position;
// by the triangle inequality the inflated set is then a superset of the
// pose's true in-cutoff neighbor set, and filtering it with the exact
// r² ≤ cutoff² test reproduces the per-pose gather hit sequence bit for
// bit. Poses that escape the bound fall back to the exact per-pose
// gather, so a loose or even wrong D only costs speed, never accuracy.

// SetWindow starts a window anchored at the given pose: the anchor
// coordinates are materialized and cached, and the per-pose validity
// and engine gather caches are invalidated. Returns the anchor's atom
// radius — the largest distance of any atom from the anchor centroid
// (its Translation) — which is the rotation lever arm of
// chem.DisplacementBound.
//
// The window survives Reset/Append refills (searches stream one window
// through the batch in chunks); call ClearWindow to end it.
func (b *Batch) SetWindow(anchor Pose) float64 {
	b.win.pose.Set(anchor)
	b.win.anchor = b.lig.CoordsInto(b.win.pose, b.win.anchor)
	b.win.set = true
	b.win.stamp++
	b.win.bound, b.win.bound2 = 0, 0
	b.win.validN = 0
	var max2 float64
	t := anchor.Translation
	for _, v := range b.win.anchor {
		d := v.Sub(t)
		if d2 := d.Norm2(); d2 > max2 {
			max2 = d2
		}
	}
	return math.Sqrt(max2)
}

// SetWindowBound sets the window's displacement bound D (Å): the
// engines gather at reach = cutoff + D and WindowValid admits a pose to
// the shared path only when every atom's actual displacement from the
// anchor is ≤ D. A non-positive bound deactivates the window path
// (Window reports ok=false) without discarding the anchor.
//
//unit: d=Å
func (b *Batch) SetWindowBound(d float64) {
	b.win.bound = d
	b.win.bound2 = d * d
	b.win.validN = 0
	b.win.stamp++
}

// ClearWindow ends the window; subsequent scoring runs the per-pose
// path.
func (b *Batch) ClearWindow() {
	b.win.set = false
	b.win.stamp++
}

// Window returns the materialized anchor coordinates and displacement
// bound of the active window, or ok=false when no window with a
// positive bound is set. The slice is owned by the batch and valid
// until the next SetWindow.
func (b *Batch) Window() (anchor []chem.Vec3, bound float64, ok bool) {
	if !b.win.set || b.win.bound <= 0 {
		return nil, 0, false
	}
	return b.win.anchor, b.win.bound, true
}

// WindowValid reports, per pose, whether every atom of the pose lies
// within the window bound of its anchor position — the admission test
// of the shared-gather path, computed on the ACTUAL materialized
// coordinates so the superset guarantee is unconditional. Entries are
// computed lazily as poses are appended and cached until Reset. The
// returned slice is owned by the batch, length Len().
func (b *Batch) WindowValid() []bool {
	b.materialize()
	n := b.n
	for len(b.win.valid) < n {
		b.win.valid = append(b.win.valid, false)
	}
	b.win.valid = b.win.valid[:n]
	stride := b.stride
	anchor := b.win.anchor
	bound2 := b.win.bound2
	for p := b.win.validN; p < n; p++ {
		at := p * stride
		ok := true
		for i := 0; i < stride; i++ {
			a := anchor[i]
			dx := b.xs[at+i] - a.X
			dy := b.ys[at+i] - a.Y
			dz := b.zs[at+i] - a.Z
			if dx*dx+dy*dy+dz*dz > bound2 {
				ok = false
				break
			}
		}
		b.win.valid[p] = ok
	}
	b.win.validN = n
	return b.win.valid
}

// WindowGather returns the shared candidate CSR an engine built for the
// current window — cands split per ligand atom by offs (len Stride()+1)
// — or ok=false when the cache belongs to another owner or an older
// window. Owner identity keeps two engines (or the exact and fast
// variants of one) from silently consuming each other's candidate
// layout.
func (b *Batch) WindowGather(owner any) (cands []PackedAtom, offs []int32, ok bool) {
	if !b.win.set || b.win.gatherOwner != owner || b.win.gatherStamp != b.win.stamp {
		return nil, nil, false
	}
	return b.win.cands, b.win.offs, true
}

// WindowGatherScratch claims the shared-gather cache for owner and the
// current window, returning the candidate buffer (reset to length zero;
// append via PackedNeighbors.GatherShared) and the offset slice sized
// nOffs (contents unspecified). Storage is reused across windows, so a
// warm search allocates nothing here.
func (b *Batch) WindowGatherScratch(owner any, nOffs int) (cands *[]PackedAtom, offs []int32) {
	b.win.gatherOwner = owner
	b.win.gatherStamp = b.win.stamp
	b.win.cands = b.win.cands[:0]
	if cap(b.win.offs) < nOffs {
		b.win.offs = make([]int32, nOffs)
	}
	b.win.offs = b.win.offs[:nOffs]
	return &b.win.cands, b.win.offs
}

// WindowPairs returns the live intramolecular pair index list an engine
// classified for the current window, or ok=false when absent. Same
// ownership discipline as WindowGather; the indices point into the
// owner's own pair table.
func (b *Batch) WindowPairs(owner any) ([]int32, bool) {
	if !b.win.set || b.win.pairOwner != owner || b.win.pairStamp != b.win.stamp {
		return nil, false
	}
	return b.win.pairs, true
}

// WindowPairScratch claims the live-pair cache for owner and the
// current window, returning the index buffer reset to length zero.
func (b *Batch) WindowPairScratch(owner any) *[]int32 {
	b.win.pairOwner = owner
	b.win.pairStamp = b.win.stamp
	b.win.pairs = b.win.pairs[:0]
	return &b.win.pairs
}

// FilterSpan collects into hits every candidate of the shared-gather
// span within cut2 of the query point, preserving span order, and
// returns the count. It is the windowed counterpart of
// PackedNeighbors.Gather's candidate walk — the same squared-distance
// expression, the same exact r² ≤ cut² test, the same branch-free
// unconditional-store/conditional-advance idiom — so for a pose whose
// true neighbors are all present in the span (which WindowValid plus
// the inflated-reach gather guarantee), the emitted hit sequence is bit
// for bit the one Gather emits. hits follows the Batch.Hits contract
// (power-of-two length ≥ len(sp)).
//
//unit: cut2=Å2
func FilterSpan(sp []PackedAtom, px, py, pz, cut2 float64, hits []Hit) int {
	mask := len(hits) - 1
	m := 0
	j := 0
	for ; j+1 < len(sp); j += 2 {
		ra := &sp[j]
		rb := &sp[j+1]
		dx0 := ra.X - px
		dy0 := ra.Y - py
		dz0 := ra.Z - pz
		r20 := dx0*dx0 + dy0*dy0 + dz0*dz0
		h := &hits[m&mask]
		h.R2 = r20
		h.Cls = ra.Cls
		hit := 0
		if r20 <= cut2 {
			hit = 1
		}
		m += hit
		dx1 := rb.X - px
		dy1 := rb.Y - py
		dz1 := rb.Z - pz
		r21 := dx1*dx1 + dy1*dy1 + dz1*dz1
		h = &hits[m&mask]
		h.R2 = r21
		h.Cls = rb.Cls
		hit = 0
		if r21 <= cut2 {
			hit = 1
		}
		m += hit
	}
	if j < len(sp) {
		ra := &sp[j]
		dx := ra.X - px
		dy := ra.Y - py
		dz := ra.Z - pz
		r2 := dx*dx + dy*dy + dz*dz
		h := &hits[m&mask]
		h.R2 = r2
		h.Cls = ra.Cls
		hit := 0
		if r2 <= cut2 {
			hit = 1
		}
		m += hit
	}
	return m
}
