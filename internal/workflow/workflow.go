package workflow

import (
	"fmt"
)

// Workflow is a DAG of activities with a tag and experiment metadata,
// mirroring the <SciCumulusWorkflow> XML element.
type Workflow struct {
	Tag         string
	Description string
	ExecTag     string
	ExpDir      string
	Activities  []*Activity
}

// Validate checks tags are unique, dependencies resolve and the graph
// is acyclic; it returns the first violation.
func (w *Workflow) Validate() error {
	if w.Tag == "" {
		return fmt.Errorf("workflow: empty workflow tag")
	}
	if len(w.Activities) == 0 {
		return fmt.Errorf("workflow %q: no activities", w.Tag)
	}
	byTag := make(map[string]*Activity, len(w.Activities))
	for _, a := range w.Activities {
		if err := a.Validate(); err != nil {
			return err
		}
		if _, dup := byTag[a.Tag]; dup {
			return fmt.Errorf("workflow %q: duplicate activity tag %q", w.Tag, a.Tag)
		}
		byTag[a.Tag] = a
	}
	for _, a := range w.Activities {
		for _, d := range a.Depends {
			if _, ok := byTag[d]; !ok {
				return fmt.Errorf("workflow %q: activity %q depends on unknown %q", w.Tag, a.Tag, d)
			}
		}
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Activity returns the activity with the given tag.
func (w *Workflow) Activity(tag string) (*Activity, error) {
	for _, a := range w.Activities {
		if a.Tag == tag {
			return a, nil
		}
	}
	return nil, fmt.Errorf("workflow %q: no activity %q", w.Tag, tag)
}

// TopoOrder returns the activities in a dependency-respecting order
// (stable: declaration order breaks ties), or an error on cycles.
func (w *Workflow) TopoOrder() ([]*Activity, error) {
	indeg := make(map[string]int, len(w.Activities))
	dependents := make(map[string][]string)
	byTag := make(map[string]*Activity, len(w.Activities))
	for _, a := range w.Activities {
		byTag[a.Tag] = a
		indeg[a.Tag] = len(a.Depends)
		for _, d := range a.Depends {
			dependents[d] = append(dependents[d], a.Tag)
		}
	}
	var order []*Activity
	ready := []string{}
	for _, a := range w.Activities {
		if indeg[a.Tag] == 0 {
			ready = append(ready, a.Tag)
		}
	}
	for len(ready) > 0 {
		tag := ready[0]
		ready = ready[1:]
		order = append(order, byTag[tag])
		for _, dep := range dependents[tag] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(order) != len(w.Activities) {
		return nil, fmt.Errorf("workflow %q: dependency cycle detected", w.Tag)
	}
	return order, nil
}

// Stages groups the topological order into levels whose members have
// no dependencies among themselves; the engine runs stages in
// sequence and all activations within a stage concurrently.
func (w *Workflow) Stages() ([][]*Activity, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	level := make(map[string]int, len(order))
	var stages [][]*Activity
	for _, a := range order {
		l := 0
		for _, d := range a.Depends {
			if level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[a.Tag] = l
		for len(stages) <= l {
			stages = append(stages, nil)
		}
		stages[l] = append(stages[l], a)
	}
	return stages, nil
}
