package analysis

import (
	"os"
	"testing"

	"repro/internal/prov"
)

// TestMain turns on the prov query cross-check, so every Figure-10
// query this package's tests issue is executed by both the indexed
// planner and the reference executor and pinned identical.
func TestMain(m *testing.M) {
	prov.CrossCheck = true
	os.Exit(m.Run())
}
