// Faulttolerance: reproduces the §V.C steering story. A campaign over
// a slice of Table 2 that includes Hg-bearing receptors and
// "problematic" ligands is run twice:
//
//  1. unsteered — Hg receptors and problematic ligands enter the
//     looping state, burn the abort timeout and are dropped;
//
//  2. steered — the provenance queries identify the culprits, the Hg
//     guard routine is enabled and the ligands re-parameterized
//     (blacklisted), so the re-run is clean and faster.
//
//     go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/stats"
)

func main() {
	// Find a slice that actually contains the §V.C hazards.
	var receptors []string
	hg := 0
	for _, code := range data.ReceptorCodes {
		if len(receptors) >= 25 {
			break
		}
		if data.ReceptorMeta(code).ContainsHg {
			hg++
		}
		receptors = append(receptors, code)
	}
	if hg == 0 { // make sure at least one Hg receptor is present
		for _, code := range data.ReceptorCodes {
			if data.ReceptorMeta(code).ContainsHg {
				receptors[0] = code
				break
			}
		}
	}
	var ligands []string
	for _, code := range data.LigandCodes {
		if data.LigandMeta(code).Problematic {
			ligands = append(ligands, code)
		}
		if len(ligands) >= 2 {
			break
		}
	}
	ligands = append(ligands, "042", "0E6")
	ds := data.Dataset{Receptors: receptors, Ligands: ligands}

	fmt.Printf("workload: %d pairs (with Hg receptors and problematic ligands)\n\n", ds.NumPairs())

	// Run 1: no steering.
	unsteered, err := core.Run(core.Config{
		Mode: core.ModeAD4, Dataset: ds, Cores: 16,
		Effort: core.SmokeEffort(), Seed: 33, HgGuard: false,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := unsteered.Reports[0]
	fmt.Printf("unsteered run: TET %s, %d activations, %d transient failures recovered, %d aborted (looping)\n",
		stats.FormatDuration(rep.TET), rep.Activations, rep.Failures, rep.Aborted)

	// The scientist queries provenance to find what looped — exactly
	// the investigation the paper describes.
	res, err := unsteered.Engine.DB.Query(`SELECT a.tag, count(*)
FROM hactivity a, hactivation t
WHERE a.actid = t.actid AND t.status = 'ABORTED'
GROUP BY a.tag`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naborted activations by activity (provenance query):")
	fmt.Print(res.Format())

	cmds, err := unsteered.Engine.DB.Query(
		"SELECT command FROM hactivation WHERE status = 'ABORTED' LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sample aborted commands:")
	for _, row := range cmds.Rows {
		fmt.Println("  " + row[0].(string))
	}

	// Run 2: steering applied — Hg guard on, problematic ligands
	// blacklisted (re-parameterized).
	blacklist := map[string]bool{}
	for _, code := range ligands {
		if data.LigandMeta(code).Problematic {
			blacklist[code] = true
		}
	}
	steered, err := core.Run(core.Config{
		Mode: core.ModeAD4, Dataset: ds, Cores: 16,
		Effort: core.SmokeEffort(), Seed: 33,
		HgGuard: true, LigandBlacklist: blacklist,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep2 := steered.Reports[0]
	fmt.Printf("\nsteered run:   TET %s, %d activations, %d transient failures recovered, %d aborted\n",
		stats.FormatDuration(rep2.TET), rep2.Activations, rep2.Failures, rep2.Aborted)
	fmt.Printf("\nsteering saved %s of virtual execution time.\n",
		stats.FormatDuration(rep.TET-rep2.TET))
}
