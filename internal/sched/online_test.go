package sched

import (
	"fmt"
	"testing"
)

func act(id int64, cost float64) Activation {
	return Activation{ID: id, Tag: "babel", Key: fmt.Sprintf("k%d", id),
		Attempts: []float64{cost}}
}

// TestOnlinePlaceNoCoreOverlapMonotone streams activations with
// advancing ready times through the online greedy scheduler and
// checks the core invariants the dataflow runtime leans on: no two
// placements overlap on a core, and per-core start times are
// monotone (the provenance timestamp contract).
func TestOnlinePlaceNoCoreOverlapMonotone(t *testing.T) {
	vms := fleetVMs(t, 8)
	g := NewGreedy()
	lastEnd := map[string]float64{}
	now := 0.0
	for i := 0; i < 60; i++ {
		p, err := g.Place(now, act(int64(i), float64(3+i%7)), vms)
		if err != nil {
			t.Fatal(err)
		}
		if p.Start < now {
			t.Fatalf("placement %d starts at %.2f before now %.2f", i, p.Start, now)
		}
		core := fmt.Sprintf("%s/%d", p.VMID, p.Core)
		if p.Start < lastEnd[core] {
			t.Fatalf("placement %d overlaps core %s: start %.2f < busy-until %.2f",
				i, core, p.Start, lastEnd[core])
		}
		lastEnd[core] = p.End
		if i%5 == 4 {
			now += 2.5 // ready times advance as upstream work completes
		}
	}
}

// TestOnlineResetForgetsState pins Reset: after it, a fresh identical
// stream must reproduce the same placements.
func TestOnlineResetForgetsState(t *testing.T) {
	vms := fleetVMs(t, 4)
	g := NewGreedy()
	place := func() []Placement {
		var ps []Placement
		for i := 0; i < 10; i++ {
			p, err := g.Place(1.5, act(int64(i), 4), vms)
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, p)
		}
		return ps
	}
	first := place()
	g.Reset()
	second := place()
	for i := range first {
		if fmt.Sprint(first[i]) != fmt.Sprint(second[i]) {
			t.Fatalf("placement %d differs after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestOnlineFleetGrowth verifies the scheduler absorbs VMs that join
// mid-run (adaptive elasticity): new cores become usable without
// disturbing the state of existing ones.
func TestOnlineFleetGrowth(t *testing.T) {
	all := fleetVMs(t, 16)
	small, big := all[:1], all
	g := NewGreedy()
	busyUntil := 0.0
	for i := 0; i < 8; i++ {
		p, err := g.Place(0, act(int64(i), 10), small)
		if err != nil {
			t.Fatal(err)
		}
		if busyUntil == 0 || p.End < busyUntil {
			busyUntil = p.End
		}
	}
	// All 8 cores of the first VM are busy; a core of the newly
	// visible VM must pick up before any of them frees.
	p, err := g.Place(0, act(99, 10), big)
	if err != nil {
		t.Fatal(err)
	}
	if p.VMID == small[0].ID {
		t.Errorf("placement stayed on the saturated VM %s", p.VMID)
	}
	if p.Start >= busyUntil {
		t.Errorf("new VM start %.2f does not beat the saturated fleet's %.2f", p.Start, busyUntil)
	}
}

// TestBatchAdapterMatchesLegacyContract: the Batch adapter over the
// online greedy reproduces the legacy stage semantics — LPT order,
// fresh cores per stage, makespan measured from startAt.
func TestBatchAdapterMatchesLegacyContract(t *testing.T) {
	vms := fleetVMs(t, 2)
	g := NewGreedy()
	acts := []Activation{act(1, 1), act(2, 30), act(3, 2), act(4, 29)}
	ps, makespan, err := Batch{S: g}.Schedule(100, acts, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(acts) {
		t.Fatalf("placed %d of %d", len(ps), len(acts))
	}
	// LPT: the two heavy activations are placed first, on distinct
	// cores.
	if ps[0].Activation.ID != 2 || ps[1].Activation.ID != 4 {
		t.Errorf("batch order not LPT: got %d,%d first", ps[0].Activation.ID, ps[1].Activation.ID)
	}
	if ps[0].VMID == ps[1].VMID && ps[0].Core == ps[1].Core {
		t.Error("heavy activations share a core")
	}
	for _, p := range ps {
		if p.Start < 100 {
			t.Errorf("placement starts at %.2f, before the stage start", p.Start)
		}
	}
	if makespan < 30 {
		t.Errorf("makespan %.2f below the heaviest activation", makespan)
	}
	// A second Schedule call must not inherit the first stage's core
	// occupancy (the barrier resets the fleet).
	ps2, _, err := Batch{S: g}.Schedule(100, acts, vms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if fmt.Sprint(ps[i]) != fmt.Sprint(ps2[i]) {
			t.Fatalf("stage replay differs at %d: %+v vs %+v", i, ps[i], ps2[i])
		}
	}
}

// TestRoundRobinOnline checks arrival-order dealing without cost
// weighting survives the online conversion.
func TestRoundRobinOnline(t *testing.T) {
	vms := fleetVMs(t, 4)
	rr := &RoundRobin{}
	seen := map[string]int{}
	for i := 0; i < 8; i++ {
		p, err := rr.Place(0, act(int64(i), 5), vms)
		if err != nil {
			t.Fatal(err)
		}
		seen[fmt.Sprintf("%s/%d", p.VMID, p.Core)]++
	}
	if len(seen) != 4 {
		t.Fatalf("round robin used %d cores, want 4", len(seen))
	}
	for core, n := range seen {
		if n != 2 {
			t.Errorf("core %s got %d activations, want 2", core, n)
		}
	}
}
