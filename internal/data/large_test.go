package data_test

import (
	"reflect"
	"testing"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/prep"
)

// TestLargeLigandWorkloadShape pins the contract the L2-overflow
// benchmark pair advertises: after the production preparation pipeline
// the ligand must land in the 120–180 docked-atom band with at least
// 14 distinct AD4 atom types and at least 12 rotatable bonds.
func TestLargeLigandWorkloadShape(t *testing.T) {
	raw, info := data.GenerateLargeLigand()
	if info.Code != data.LargeLigandCode {
		t.Fatalf("info.Code = %q, want %q", info.Code, data.LargeLigandCode)
	}
	mol2, err := prep.ConvertSDFToMol2(raw)
	if err != nil {
		t.Fatalf("ConvertSDFToMol2: %v", err)
	}
	pl, err := prep.PrepareLigand(mol2)
	if err != nil {
		t.Fatalf("PrepareLigand: %v", err)
	}
	n := pl.Mol.NumAtoms()
	if n < 120 || n > 180 {
		t.Errorf("prepared atom count = %d, want 120..180", n)
	}
	types := make(map[chem.AtomType]bool)
	for _, a := range pl.Mol.Atoms {
		types[a.Type] = true
	}
	if len(types) < 14 {
		t.Errorf("distinct AD4 types = %d (%v), want >= 14", len(types), types)
	}
	for _, want := range []chem.AtomType{
		chem.TypeHD, chem.TypeC, chem.TypeA, chem.TypeN, chem.TypeNA,
		chem.TypeOA, chem.TypeS, chem.TypeSA, chem.TypeP, chem.TypeF,
		chem.TypeCl, chem.TypeBr, chem.TypeI, chem.TypeZn,
	} {
		if !types[want] {
			t.Errorf("type inventory missing %s", want)
		}
	}
	if nt := pl.Tree.NumTorsions(); nt < 12 {
		t.Errorf("torsions = %d, want >= 12", nt)
	}
}

// TestLargePairDeterministic pins byte-for-byte generation determinism
// — the property scripts/check.sh's gendata stage audits on disk.
func TestLargePairDeterministic(t *testing.T) {
	l1, _ := data.GenerateLargeLigand()
	l2, _ := data.GenerateLargeLigand()
	if !reflect.DeepEqual(l1, l2) {
		t.Error("data.GenerateLargeLigand is not deterministic")
	}
	r1, i1 := data.GenerateLargeReceptor()
	r2, i2 := data.GenerateLargeReceptor()
	if !reflect.DeepEqual(r1, r2) || i1 != i2 {
		t.Error("data.GenerateLargeReceptor is not deterministic")
	}
	if r1.NumAtoms() < 500 {
		t.Errorf("large receptor has %d atoms, want a dense shell (>= 500)", r1.NumAtoms())
	}
	if _, err := prep.PrepareReceptor(r1); err != nil {
		t.Fatalf("PrepareReceptor: %v", err)
	}
}
