package grid

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/prep"
)

func preparedReceptor(t testing.TB, code string) *chem.Molecule {
	t.Helper()
	rec, _ := data.GenerateReceptor(code)
	out, err := prep.PrepareReceptor(rec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func smallSpec(rec *chem.Molecule) Spec {
	min, max := chem.BoundingBox(rec.Positions())
	return Spec{Center: min.Lerp(max, 0.5), NPts: [3]int{12, 12, 12}, Spacing: 2.0}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{NPts: [3]int{2, 2, 2}, Spacing: 1}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{NPts: [3]int{1, 2, 2}, Spacing: 1}).Validate(); err == nil {
		t.Error("npts=1 accepted")
	}
	if err := (Spec{NPts: [3]int{2, 2, 2}, Spacing: 0}).Validate(); err == nil {
		t.Error("zero spacing accepted")
	}
}

func TestSpecOrigin(t *testing.T) {
	s := Spec{Center: chem.V(0, 0, 0), NPts: [3]int{11, 11, 11}, Spacing: 1}
	if got := s.Origin(); !vecClose(got, chem.V(-5, -5, -5), 1e-12) {
		t.Errorf("origin = %v", got)
	}
	if s.NumPoints() != 11*11*11 {
		t.Errorf("NumPoints = %d", s.NumPoints())
	}
}

func vecClose(a, b chem.Vec3, tol float64) bool { return a.Dist(b) <= tol }

func TestGenerateAndInterpolate(t *testing.T) {
	rec := preparedReceptor(t, "2HHN")
	spec := smallSpec(rec)
	maps, err := Generate(rec, spec, []chem.AtomType{chem.TypeC, chem.TypeOA, chem.TypeHD})
	if err != nil {
		t.Fatal(err)
	}
	if len(maps.Types()) != 3 {
		t.Errorf("types = %v", maps.Types())
	}
	// Lattice-point lookups equal stored values (interpolation exact
	// at nodes): probe the centre.
	c := spec.Center
	v, err := maps.AffinityAt(chem.TypeC, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("affinity at centre = %v", v)
	}
	if !maps.InBox(c) {
		t.Error("centre not in box")
	}
	// Outside the box: penalty.
	far := c.Add(chem.V(1e3, 0, 0))
	if maps.InBox(far) {
		t.Error("far point in box")
	}
	got, err := maps.AffinityAt(chem.TypeC, far)
	if err != nil || got != OutOfBoxPenalty {
		t.Errorf("out-of-box affinity = %v, %v", got, err)
	}
	if maps.ElectrostaticAt(far) != OutOfBoxPenalty {
		t.Error("out-of-box electrostatics not penalized")
	}
	// Missing map type errors.
	if _, err := maps.AffinityAt(chem.TypeZn, c); err == nil {
		t.Error("missing map accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	rec := preparedReceptor(t, "1AIM")
	if _, err := Generate(rec, Spec{}, nil); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Generate(&chem.Molecule{Name: "E"}, smallSpec(rec), nil); err == nil {
		t.Error("empty receptor accepted")
	}
	if _, err := Generate(rec, smallSpec(rec), []chem.AtomType{chem.TypeHg}); err == nil {
		t.Error("unsupported probe accepted")
	}
	hg := rec.Clone()
	hg.Atoms = append(hg.Atoms, chem.Atom{Name: "HG", Element: chem.Mercury, Type: chem.TypeHg})
	if _, err := Generate(hg, smallSpec(rec), []chem.AtomType{chem.TypeC}); err == nil {
		t.Error("Hg receptor accepted by autogrid")
	}
}

// Interpolation must be continuous: neighbouring queries give close
// values, and node queries match direct map values.
func TestInterpolationContinuity(t *testing.T) {
	rec := preparedReceptor(t, "1HUC")
	spec := smallSpec(rec)
	maps, err := Generate(rec, spec, []chem.AtomType{chem.TypeC})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	o := spec.Origin()
	extent := float64(spec.NPts[0]-2) * spec.Spacing
	for i := 0; i < 200; i++ {
		p := o.Add(chem.V(r.Float64()*extent, r.Float64()*extent, r.Float64()*extent))
		v1, _ := maps.AffinityAt(chem.TypeC, p)
		v2, _ := maps.AffinityAt(chem.TypeC, p.Add(chem.V(1e-7, 0, 0)))
		if math.Abs(v1-v2) > 1 {
			t.Fatalf("discontinuity at %v: %v vs %v", p, v1, v2)
		}
	}
}

// The pocket centre of a receptor should be attractive (negative
// affinity) for a carbon probe: this is the physical sanity check that
// docking can find favourable poses at all.
func TestPocketIsAttractive(t *testing.T) {
	rec, info := data.GenerateReceptor("1S4V")
	prec, err := prep.PrepareReceptor(rec)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Center: chem.Vec3{}, NPts: [3]int{10, 10, 10}, Spacing: 1.0}
	maps, err := Generate(prec, spec, []chem.AtomType{chem.TypeC})
	if err != nil {
		t.Fatal(err)
	}
	v, err := maps.AffinityAt(chem.TypeC, chem.Vec3{})
	if err != nil {
		t.Fatal(err)
	}
	if v >= 0 {
		t.Errorf("pocket centre affinity = %v (pocket radius %.1f), want attractive", v, info.PocketR)
	}
}

func TestPairEnergyShape(t *testing.T) {
	c := chem.TypeC.Params()
	// Minimum at r = Rij, repulsive well inside, attractive outside.
	rij := c.Rii
	atMin := PairEnergy(c, c, rij)
	if !closeTo(atMin, -c.Epsii, 1e-9) {
		t.Errorf("well depth = %v, want %v", atMin, -c.Epsii)
	}
	if PairEnergy(c, c, rij*0.7) < 0 {
		t.Error("short range should be repulsive")
	}
	if e := PairEnergy(c, c, rij*1.5); e >= 0 || e < atMin {
		t.Errorf("long range energy = %v, want in (%v, 0)", e, atMin)
	}
	// H-bond pair deeper than dispersion pair.
	hd := chem.TypeHD.Params()
	oa := chem.TypeOA.Params()
	hbondMin := PairEnergy(hd, oa, (hd.Rii+oa.Rii)/2)
	plainMin := -math.Sqrt(hd.Epsii * oa.Epsii)
	if hbondMin >= plainMin {
		t.Errorf("hbond well %v not deeper than plain %v", hbondMin, plainMin)
	}
}

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMapFileRoundTrip(t *testing.T) {
	rec := preparedReceptor(t, "1PIP")
	// Exactly representable centre so the %.3f header round-trips.
	spec := Spec{Center: chem.V(0.5, -1.25, 2), NPts: [3]int{6, 6, 6}, Spacing: 2}
	maps, err := Generate(rec, spec, []chem.AtomType{chem.TypeC})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := maps.WriteMap(&buf, "C"); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMap(bytes.NewReader(buf.Bytes()), "C", "t.map")
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.NPts != spec.NPts {
		t.Errorf("npts = %v", got.Spec.NPts)
	}
	if math.Abs(got.Spec.Spacing-spec.Spacing) > 1e-9 {
		t.Errorf("spacing = %v", got.Spec.Spacing)
	}
	// Values survive within write precision at a lattice node.
	p := spec.Origin()
	v1, _ := maps.AffinityAt(chem.TypeC, p)
	v2, _ := got.AffinityAt(chem.TypeC, p)
	// Out-of-precision clamped values still match within 0.01.
	if math.Abs(v1-v2) > 0.01 && math.Abs(v1-v2)/math.Abs(v1+1e-12) > 1e-3 {
		t.Errorf("value drift: %v vs %v", v1, v2)
	}
	// Electrostatic and desolvation map files round-trip too.
	buf.Reset()
	if err := maps.WriteMap(&buf, "e"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMap(bytes.NewReader(buf.Bytes()), "e", "t.e.map"); err != nil {
		t.Fatal(err)
	}
	// Unknown map name errors.
	if err := maps.WriteMap(&buf, "Zn"); err == nil {
		t.Error("unknown map written")
	}
}

func TestParseMapErrors(t *testing.T) {
	if _, err := ParseMap(bytes.NewReader([]byte("SPACING x\n")), "C", "t"); err == nil {
		t.Error("bad spacing accepted")
	}
	short := "SPACING 1\nNELEMENTS 2 2 2\nCENTER 0 0 0\n1.0\n"
	if _, err := ParseMap(bytes.NewReader([]byte(short)), "C", "t"); err == nil {
		t.Error("value-count mismatch accepted")
	}
}

func TestWriteFLD(t *testing.T) {
	rec := preparedReceptor(t, "1PAD")
	spec := Spec{Center: rec.Centroid(), NPts: [3]int{4, 4, 4}, Spacing: 3}
	maps, err := Generate(rec, spec, []chem.AtomType{chem.TypeC, chem.TypeOA})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := maps.WriteFLD(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"ndim=3", "dim1=4", ".e.map", ".d.map"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("fld missing %q", want)
		}
	}
}

// TestTypesDeterministicOrder pins Types() to sorted order regardless
// of map insertion order. Types() feeds the .fld index WriteFLD emits
// and the per-type map filenames, so a regression here (ranging the
// affinity map directly) would make output files differ run to run.
func TestTypesDeterministicOrder(t *testing.T) {
	insertions := [][]chem.AtomType{
		{chem.TypeSA, chem.TypeC, chem.TypeOA, chem.TypeHD, chem.TypeNA, chem.TypeA},
		{chem.TypeA, chem.TypeNA, chem.TypeHD, chem.TypeOA, chem.TypeC, chem.TypeSA},
		{chem.TypeOA, chem.TypeSA, chem.TypeA, chem.TypeC, chem.TypeNA, chem.TypeHD},
	}
	want := []chem.AtomType{chem.TypeA, chem.TypeC, chem.TypeHD, chem.TypeNA, chem.TypeOA, chem.TypeSA}
	for _, order := range insertions {
		m := &Maps{affinity: map[chem.AtomType][]float64{}}
		for _, at := range order {
			m.affinity[at] = nil
		}
		// Repeat the call: Go randomizes map iteration per range, so a
		// single lucky draw must not pass the test.
		for i := 0; i < 50; i++ {
			got := m.Types()
			if len(got) != len(want) {
				t.Fatalf("Types() = %v, want %v", got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("iteration %d, insertion %v: Types() = %v, want %v", i, order, got, want)
				}
			}
		}
	}
}

func TestCellListCoversAllAtoms(t *testing.T) {
	rec := preparedReceptor(t, "9PAP")
	cl := buildCellList(rec, 8)
	// Querying at every atom position must at least see that atom.
	for i, a := range rec.Atoms {
		found := false
		cl.forNeighbors(a.Pos, func(j int) {
			if j == i {
				found = true
			}
		})
		if !found {
			t.Fatalf("atom %d not found by its own query", i)
		}
	}
	// Cell list must agree with brute force within the cutoff.
	q := rec.Centroid()
	brute := map[int]bool{}
	for i, a := range rec.Atoms {
		if a.Pos.Dist(q) <= 8 {
			brute[i] = true
		}
	}
	got := map[int]bool{}
	cl.forNeighbors(q, func(j int) {
		if rec.Atoms[j].Pos.Dist(q) <= 8 {
			got[j] = true
		}
	})
	if len(got) != len(brute) {
		t.Fatalf("cell list found %d atoms in cutoff, brute force %d", len(got), len(brute))
	}
}

// The table-backed Generate must agree with the serial analytic
// reference at every lattice node within the table error bound.
func TestGenerateMatchesReference(t *testing.T) {
	rec := preparedReceptor(t, "2HHN")
	spec := smallSpec(rec)
	types := []chem.AtomType{chem.TypeC, chem.TypeOA, chem.TypeHD, chem.TypeN}
	fast, err := Generate(rec, spec, types)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := GenerateReference(rec, spec, types)
	if err != nil {
		t.Fatal(err)
	}
	tol := func(want float64) float64 { return 1e-3 + 2e-4*math.Abs(want) }
	compare := func(name string, got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
		}
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > tol(want[i]) {
				t.Fatalf("%s[%d]: table %v vs analytic %v (|Δ|=%v)", name, i, got[i], want[i], d)
			}
		}
	}
	compare("elec", fast.elec, ref.elec)
	compare("desolv", fast.desolv, ref.desolv)
	for _, ty := range types {
		compare(string(ty), fast.affinity[ty], ref.affinity[ty])
	}
}

// The z-slab decomposition is Spec-deterministic: the written map
// files must be byte-identical for every worker count.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	rec := preparedReceptor(t, "1HUC")
	spec := smallSpec(rec)
	types := []chem.AtomType{chem.TypeC, chem.TypeOA}
	mapBytes := func(m *Maps) []byte {
		var buf bytes.Buffer
		for _, name := range []string{"C", "OA", "e", "d"} {
			if err := m.WriteMap(&buf, name); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	base, err := GenerateWorkers(rec, spec, types, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := mapBytes(base)
	for _, workers := range []int{2, 3, 8, 64} {
		m, err := GenerateWorkers(rec, spec, types, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mapBytes(m), want) {
			t.Fatalf("map files differ between 1 and %d workers", workers)
		}
	}
}

// The cutoff-expanded bounding-box guard must not lose neighbours for
// points just outside each box face, and must early-out just beyond
// the expanded box.
func TestCellListBoundaryFaces(t *testing.T) {
	rec := preparedReceptor(t, "1CSB")
	cl := buildCellList(rec, 8)
	min, max := chem.BoundingBox(rec.Positions())
	mid := min.Lerp(max, 0.5)
	const eps = 1e-6
	probes := []struct {
		name    string
		p       chem.Vec3
		outside bool // beyond the cutoff-expanded box: zero visits
	}{
		{"x-lo-in", chem.V(min.X-8+eps, mid.Y, mid.Z), false},
		{"x-hi-in", chem.V(max.X+8-eps, mid.Y, mid.Z), false},
		{"y-lo-in", chem.V(mid.X, min.Y-8+eps, mid.Z), false},
		{"y-hi-in", chem.V(mid.X, max.Y+8-eps, mid.Z), false},
		{"z-lo-in", chem.V(mid.X, mid.Y, min.Z-8+eps), false},
		{"z-hi-in", chem.V(mid.X, mid.Y, max.Z+8-eps), false},
		{"x-lo-out", chem.V(min.X-8-eps, mid.Y, mid.Z), true},
		{"x-hi-out", chem.V(max.X+8+eps, mid.Y, mid.Z), true},
		{"y-lo-out", chem.V(mid.X, min.Y-8-eps, mid.Z), true},
		{"y-hi-out", chem.V(mid.X, max.Y+8+eps, mid.Z), true},
		{"z-lo-out", chem.V(mid.X, mid.Y, min.Z-8-eps), true},
		{"z-hi-out", chem.V(mid.X, mid.Y, max.Z+8+eps), true},
	}
	for _, tc := range probes {
		visited := 0
		cl.forNeighbors(tc.p, func(int) { visited++ })
		if tc.outside && visited != 0 {
			t.Errorf("%s: visited %d atoms beyond the expanded box", tc.name, visited)
		}
		// Cross-check against brute force within the cutoff.
		brute := 0
		for _, a := range rec.Atoms {
			if a.Pos.Dist(tc.p) <= 8 {
				brute++
			}
		}
		inCutoff := 0
		cl.forNeighbors(tc.p, func(j int) {
			if rec.Atoms[j].Pos.Dist(tc.p) <= 8 {
				inCutoff++
			}
		})
		if inCutoff != brute {
			t.Errorf("%s: cell list found %d atoms within cutoff, brute force %d", tc.name, inCutoff, brute)
		}
	}
}

func benchSpec(rec *chem.Molecule) (Spec, []chem.AtomType) {
	return Spec{Center: rec.Centroid(), NPts: [3]int{24, 24, 24}, Spacing: 1.0},
		[]chem.AtomType{chem.TypeC, chem.TypeN, chem.TypeOA, chem.TypeHD}
}

func BenchmarkGenerateMaps(b *testing.B) {
	rec := preparedReceptor(b, "2HHN")
	spec, types := benchSpec(rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(rec, spec, types); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateMapsSerial(b *testing.B) {
	rec := preparedReceptor(b, "2HHN")
	spec, types := benchSpec(rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWorkers(rec, spec, types, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateMapsReference(b *testing.B) {
	rec := preparedReceptor(b, "2HHN")
	spec, types := benchSpec(rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateReference(rec, spec, types); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPairEnergySmoothed(t *testing.T) {
	c := chem.TypeC.Params()
	rij := c.Rii
	// Inside the window around the minimum: flat at the well depth.
	for _, r := range []float64{rij - 0.2, rij, rij + 0.2} {
		if got := PairEnergySmoothed(c, c, r, 0.5); !closeTo(got, -c.Epsii, 1e-9) {
			t.Errorf("smoothed(%v) = %v, want %v", r, got, -c.Epsii)
		}
	}
	// Outside the window: shifted toward the minimum by smooth/2.
	r := rij + 1.0
	if got, want := PairEnergySmoothed(c, c, r, 0.5), PairEnergy(c, c, r-0.25); !closeTo(got, want, 1e-12) {
		t.Errorf("right side smoothed = %v, want %v", got, want)
	}
	r = rij - 1.0
	if got, want := PairEnergySmoothed(c, c, r, 0.5), PairEnergy(c, c, r+0.25); !closeTo(got, want, 1e-12) {
		t.Errorf("left side smoothed = %v, want %v", got, want)
	}
	// Smoothing never raises the energy.
	for r := 2.0; r < 8; r += 0.1 {
		if PairEnergySmoothed(c, c, r, 0.5) > PairEnergy(c, c, r)+1e-12 {
			t.Fatalf("smoothing raised energy at r=%v", r)
		}
	}
	// Zero smooth is the raw potential.
	if PairEnergySmoothed(c, c, 3.3, 0) != PairEnergy(c, c, 3.3) {
		t.Error("zero smooth changed potential")
	}
}

func TestMehlerSolmajerDielectric(t *testing.T) {
	// Near contact: low dielectric (screened vacuum-like).
	if e := dielectric(1.0); e < 1 || e > 10 {
		t.Errorf("ε(1Å) = %v, want small", e)
	}
	// Long range: approaches bulk water (~78).
	if e := dielectric(50); e < 60 || e > 79 {
		t.Errorf("ε(50Å) = %v, want near 78", e)
	}
	// Monotone increasing.
	prev := 0.0
	for r := 0.5; r < 30; r += 0.5 {
		e := dielectric(r)
		if e < prev {
			t.Fatalf("dielectric not monotone at r=%v", r)
		}
		prev = e
	}
}
