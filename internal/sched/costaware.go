package sched

import (
	"fmt"
	"math"

	"repro/internal/cloud"
)

// CostAwarePolicy sizes the fleet by money rather than speed,
// formalizing the paper's closing observation that "acquiring more
// than 32 VMs may not bring the expected benefit, particularly if
// financial costs are involved": among core counts that meet the
// deadline, pick the cheapest; if none can, pick the fastest.
type CostAwarePolicy struct {
	// DeadlineSeconds is the acceptable TET for the planned work.
	DeadlineSeconds float64
	// MaxCores bounds the search (the paper's experiments stop at 128).
	MaxCores int
	// MasterDelayPerVM mirrors the scheduler's planning overhead so
	// the estimate sees the same efficiency cliff the execution will.
	MasterDelayPerVM float64
}

// NewCostAwarePolicy returns a policy matching the calibrated
// scheduler's overhead model.
func NewCostAwarePolicy(deadlineSeconds float64) *CostAwarePolicy {
	return &CostAwarePolicy{
		DeadlineSeconds:  deadlineSeconds,
		MaxCores:         128,
		MasterDelayPerVM: NewGreedy().MasterDelayPerVM,
	}
}

// Plan is one evaluated fleet option.
type Plan struct {
	Cores         int
	EstimatedTET  float64
	EstimatedUSD  float64
	MeetsDeadline bool
}

// EstimateTET predicts the makespan of `totalWork` reference-core
// seconds spread over `activations` dispatch decisions on a fleet of
// the given size: the max of the compute bound and the master's
// serial dispatch bound, per the calibrated overhead model.
func (p *CostAwarePolicy) EstimateTET(totalWork float64, activations, cores int) float64 {
	if cores < 1 {
		return math.Inf(1)
	}
	nVMs := int(math.Ceil(float64(cores) / float64(cloud.M32XLarge.Cores)))
	dispatch := float64(activations) * p.MasterDelayPerVM * float64(nVMs)
	compute := totalWork / float64(cores)
	if dispatch > compute {
		return dispatch
	}
	return compute
}

// estimateUSD prices a fleet of `cores` running for `tet` seconds,
// with EC2's whole-hour rounding.
func estimateUSD(cores int, tet float64) float64 {
	hours := math.Ceil(tet / 3600)
	var usd float64
	remaining := cores
	for remaining >= cloud.M32XLarge.Cores {
		usd += hours * cloud.M32XLarge.HourlyUSD
		remaining -= cloud.M32XLarge.Cores
	}
	if remaining > 0 {
		usd += hours * cloud.M3XLarge.HourlyUSD
	}
	return usd
}

// Evaluate returns the plan table for doubling core counts up to
// MaxCores, in ascending core order.
func (p *CostAwarePolicy) Evaluate(totalWork float64, activations int) []Plan {
	var out []Plan
	max := p.MaxCores
	if max < 2 {
		max = 128
	}
	for cores := 2; cores <= max; cores *= 2 {
		tet := p.EstimateTET(totalWork, activations, cores)
		out = append(out, Plan{
			Cores:         cores,
			EstimatedTET:  tet,
			EstimatedUSD:  estimateUSD(cores, tet),
			MeetsDeadline: tet <= p.DeadlineSeconds,
		})
	}
	return out
}

// planLess orders plans lexicographically by (cost, TET).
func planLess(a, b *Plan) bool {
	//lint:ignore floatcmp lexicographic tie-break; near-equal costs make either plan acceptable
	if a.EstimatedUSD != b.EstimatedUSD {
		return a.EstimatedUSD < b.EstimatedUSD
	}
	return a.EstimatedTET < b.EstimatedTET
}

// Choose picks the cheapest plan that meets the deadline, or the
// fastest plan when none does.
func (p *CostAwarePolicy) Choose(totalWork float64, activations int) (Plan, error) {
	if totalWork <= 0 {
		return Plan{}, fmt.Errorf("sched: cost-aware planning needs positive work, got %v", totalWork)
	}
	plans := p.Evaluate(totalWork, activations)
	var best *Plan
	for i := range plans {
		pl := &plans[i]
		if !pl.MeetsDeadline {
			continue
		}
		if best == nil || planLess(pl, best) {
			best = pl
		}
	}
	if best != nil {
		return *best, nil
	}
	// No plan meets the deadline: fastest available.
	fastest := plans[0]
	for _, pl := range plans[1:] {
		if pl.EstimatedTET < fastest.EstimatedTET {
			fastest = pl
		}
	}
	return fastest, nil
}
