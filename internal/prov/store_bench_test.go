package prov

import (
	"fmt"
	"testing"
	"time"
)

// benchDB builds a provenance DB with n open (RUNNING) activations.
func benchDB(b *testing.B, n int) *DB {
	b.Helper()
	db, err := NewProvWfDB()
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2014, 3, 1, 8, 0, 0, 0, time.UTC)
	for i := 1; i <= n; i++ {
		if err := db.BeginActivation(int64(i), 1, 1, base, "vm-1", "cmd"); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// noCrossCheck turns the planner==reference oracle off for the
// benchmark body (TestMain enables it package-wide); production runs
// single-executor.
func noCrossCheck(b *testing.B) {
	b.Helper()
	old := CrossCheck
	CrossCheck = false
	b.Cleanup(func() { CrossCheck = old })
}

// BenchmarkCloseActivation measures the activation-close hot path at
// the paper's sweep scale (80k open activations): the indexed O(1)
// point update against the full-table-scan path the seed
// implementation used (DB.Update with a taskid predicate).
func BenchmarkCloseActivation(b *testing.B) {
	const n = 80_000
	end := time.Date(2014, 3, 1, 9, 0, 0, 0, time.UTC)
	b.Run("indexed", func(b *testing.B) {
		db := benchDB(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			taskid := int64(i%n + 1)
			if err := db.CloseActivation(taskid, StatusFinished, end, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		db := benchDB(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			taskid := int64(i%n + 1)
			if _, err := db.Update(TableActivation,
				func(row []Value) bool { return row[0] == taskid },
				func(row []Value) {
					row[3] = StatusFinished
					row[5] = end
					row[7] = int64(0)
				}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryPoint is an indexed single-row lookup; ReportAllocs
// pins the no-O(rows)-allocation property of the zero-copy snapshot.
func BenchmarkQueryPoint(b *testing.B) {
	noCrossCheck(b)
	db := benchDB(b, 80_000)
	sql := fmt.Sprintf("SELECT status, vmid FROM hactivation WHERE taskid = %d", 79_999)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkQueryAggregate scans and groups the whole table — the
// Figure-5 histogram shape. Allocations must stay O(groups), not
// O(rows).
func BenchmarkQueryAggregate(b *testing.B) {
	noCrossCheck(b)
	db := benchDB(b, 20_000)
	sql := "SELECT status, count(*) FROM hactivation GROUP BY status"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsert measures single-row ingest into an indexed table.
func BenchmarkInsert(b *testing.B) {
	db := benchDB(b, 0)
	base := time.Date(2014, 3, 1, 8, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.InsertActivation(int64(i+1), 1, 1, StatusFinished,
			base, base, "vm-1", 0, "cmd"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppenderIngest measures the engine-facing batched path: a
// Begin/Close pair per activation through the buffered appender.
func BenchmarkAppenderIngest(b *testing.B) {
	db := benchDB(b, 0)
	app := NewAppender(db, 0)
	base := time.Date(2014, 3, 1, 8, 0, 0, 0, time.UTC)
	end := base.Add(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		taskid := int64(i + 1)
		if err := app.BeginActivation(taskid, 1, 1, base, "vm-1", "cmd"); err != nil {
			b.Fatal(err)
		}
		if err := app.CloseActivation(taskid, StatusFinished, end, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := app.Flush(); err != nil {
		b.Fatal(err)
	}
}
