package grid

import (
	"fmt"
	"math"

	"repro/internal/chem"
)

// InBox reports whether p lies inside the grid volume.
func (m *Maps) InBox(p chem.Vec3) bool {
	o := m.Spec.Origin()
	d := p.Sub(o)
	return d.X >= 0 && d.Y >= 0 && d.Z >= 0 &&
		d.X <= float64(m.Spec.NPts[0]-1)*m.Spec.Spacing &&
		d.Y <= float64(m.Spec.NPts[1]-1)*m.Spec.Spacing &&
		d.Z <= float64(m.Spec.NPts[2]-1)*m.Spec.Spacing
}

// Field is one resolved map lattice: the map-name (and representation)
// lookup done once, so a hot loop — the batched AD4 scorer interpolates
// every ligand atom against three fields per pose — pays only the
// trilinear gather per call instead of a per-call map-key hash. The
// zero Field is invalid; obtain one from AffinityField /
// ElectrostaticField / DesolvationField.
type Field struct {
	m   *Maps
	f64 []float64
	f32 []float32
}

// At returns the trilinearly interpolated value at p, or
// OutOfBoxPenalty outside the grid. The arithmetic is identical for
// both representations (float32 corners are widened before the lerp),
// so Field.At and the Maps per-call accessors are bit-equal.
func (f Field) At(p chem.Vec3) float64 {
	if f.f32 != nil {
		return f.m.interpolate32(f.f32, p)
	}
	return f.m.interpolate(f.f64, p)
}

// AffinityField resolves the probe type's affinity lattice. Requesting
// a type without a map returns an error (a workflow wiring bug).
func (m *Maps) AffinityField(t chem.AtomType) (Field, error) {
	if m.prec == Float32 {
		sl, ok := m.affin32[t]
		if !ok {
			return Field{}, fmt.Errorf("grid: no %s map for receptor %s", t, m.Receptor)
		}
		return Field{m: m, f32: sl}, nil
	}
	sl, ok := m.affinity[t]
	if !ok {
		return Field{}, fmt.Errorf("grid: no %s map for receptor %s", t, m.Receptor)
	}
	return Field{m: m, f64: sl}, nil
}

// ElectrostaticField resolves the electrostatic lattice.
func (m *Maps) ElectrostaticField() Field {
	if m.prec == Float32 {
		return Field{m: m, f32: m.elec32}
	}
	return Field{m: m, f64: m.elec}
}

// DesolvationField resolves the desolvation lattice.
func (m *Maps) DesolvationField() Field {
	if m.prec == Float32 {
		return Field{m: m, f32: m.desolv32}
	}
	return Field{m: m, f64: m.desolv}
}

// AffinityAt returns the trilinearly interpolated affinity of the
// probe type at p, or OutOfBoxPenalty outside the grid. Requesting a
// type without a map returns an error (a workflow wiring bug).
func (m *Maps) AffinityAt(t chem.AtomType, p chem.Vec3) (float64, error) {
	f, err := m.AffinityField(t)
	if err != nil {
		return 0, err
	}
	return f.At(p), nil
}

// ElectrostaticAt returns the interpolated electrostatic potential
// (per unit charge) at p.
func (m *Maps) ElectrostaticAt(p chem.Vec3) float64 {
	return m.ElectrostaticField().At(p)
}

// DesolvationAt returns the interpolated desolvation energy at p.
func (m *Maps) DesolvationAt(p chem.Vec3) float64 {
	return m.DesolvationField().At(p)
}

// InterAccum accumulates one ligand atom's three weighted
// intermolecular terms across a batch of poses:
//
//	acc[p] += wv·affinity(pt) + wq·electrostatic(pt) + wdq·desolvation(pt)
//
// where pt is (xs[p·stride], ys[p·stride], zs[p·stride]) — the caller
// passes component slices pre-offset to the atom. Each term triple is
// evaluated exactly as InterTerms (one shared trilinear stencil,
// Field.At's lerp chain per lattice), and the three weighted products
// are added to acc[p] in the vdW/electrostatic/desolvation order of
// the scalar scorer, so accumulation is bit-identical to it. Hoisting
// the grid geometry and the representation dispatch out of the pose
// loop is the point: the per-pose body is stencil arithmetic and
// lattice loads only.
func (m *Maps) InterAccum(aff Field, xs, ys, zs []float64, stride int, wv, wq, wdq float64, acc []float64) {
	if m.prec == Float32 {
		interAccum(m, aff.f32, m.elec32, m.desolv32, xs, ys, zs, stride, wv, wq, wdq, acc)
		return
	}
	interAccum(m, aff.f64, m.elec, m.desolv, xs, ys, zs, stride, wv, wq, wdq, acc)
}

// InterAccumFast is the tolerance-path InterAccum: the same stencil,
// clamping and vdW/electrostatic/desolvation term order, but the grid
// coordinate is scaled by the reciprocal spacing instead of divided,
// and the lerp chains plus weighted accumulation run in float32 over
// the native lattice values, into a float32 accumulator. It differs
// from InterAccum by float32 rounding of the arithmetic only —
// relative ~1e-7 of the term magnitudes, including the out-of-box
// penalty — which callers carry inside their pinned tolerance
// envelope (the fast scorers' FastAbsTol/FastRelTol bound).
func (m *Maps) InterAccumFast(t chem.AtomType, xs, ys, zs []float64, stride int, wv, wq, wdq float64, acc []float32) {
	interAccumFast(m, m.fastTriple(t), xs, ys, zs, stride, wv, wq, wdq, acc)
}

func interAccumFast(m *Maps, aed []float32, xs, ys, zs []float64, stride int, wv, wq, wdq float64, acc []float32) {
	o := m.Spec.Origin()
	inv := 1 / m.Spec.Spacing
	nx, ny, nz := m.Spec.NPts[0], m.Spec.NPts[1], m.Spec.NPts[2]
	mx, my, mz := float64(nx-1), float64(ny-1), float64(nz-1)
	dy, dz := nx, nx*ny
	wvf, wqf, wdqf := float32(wv), float32(wq), float32(wdq)
	penalty := (wvf + wqf + wdqf) * float32(OutOfBoxPenalty)
	for p := range acc {
		a := p * stride
		fx := (xs[a] - o.X) * inv
		fy := (ys[a] - o.Y) * inv
		fz := (zs[a] - o.Z) * inv
		if fx < 0 || fy < 0 || fz < 0 || fx > mx || fy > my || fz > mz {
			acc[p] += penalty
			continue
		}
		ix := int(fx)
		iy := int(fy)
		iz := int(fz)
		if ix >= nx-1 {
			ix = nx - 2
		}
		if iy >= ny-1 {
			iy = ny - 2
		}
		if iz >= nz-1 {
			iz = nz - 2
		}
		tx := float32(fx - float64(ix))
		ty := float32(fy - float64(iy))
		tz := float32(fz - float64(iz))
		i00 := (iz*ny+iy)*nx + ix
		i10 := i00 + dy
		i01 := i00 + dz
		i11 := i01 + dy
		ux, uy, uz := 1-tx, 1-ty, 1-tz
		s := acc[p]
		// Interleaved [affinity, elec, desolv]: each corner pair's six
		// values arrive in one contiguous 24-byte read, so the three
		// lerp chains share four such reads instead of touching twelve
		// scattered corners. The chains and the term order match the
		// separate-lattice form exactly.
		q00 := aed[3*i00 : 3*i00+6]
		q10 := aed[3*i10 : 3*i10+6]
		q01 := aed[3*i01 : 3*i01+6]
		q11 := aed[3*i11 : 3*i11+6]
		a00 := q00[0]*ux + q00[3]*tx
		a10 := q10[0]*ux + q10[3]*tx
		a01 := q01[0]*ux + q01[3]*tx
		a11 := q11[0]*ux + q11[3]*tx
		s += wvf * ((a00*uy+a10*ty)*uz + (a01*uy+a11*ty)*tz)
		e00 := q00[1]*ux + q00[4]*tx
		e10 := q10[1]*ux + q10[4]*tx
		e01 := q01[1]*ux + q01[4]*tx
		e11 := q11[1]*ux + q11[4]*tx
		s += wqf * ((e00*uy+e10*ty)*uz + (e01*uy+e11*ty)*tz)
		d00 := q00[2]*ux + q00[5]*tx
		d10 := q10[2]*ux + q10[5]*tx
		d01 := q01[2]*ux + q01[5]*tx
		d11 := q11[2]*ux + q11[5]*tx
		s += wdqf * ((d00*uy+d10*ty)*uz + (d01*uy+d11*ty)*tz)
		acc[p] = s
	}
}

func interAccum[T float32 | float64](m *Maps, affSl, elecSl, desolvSl []T, xs, ys, zs []float64, stride int, wv, wq, wdq float64, acc []float64) {
	o := m.Spec.Origin()
	sp := m.Spec.Spacing
	nx, ny, nz := m.Spec.NPts[0], m.Spec.NPts[1], m.Spec.NPts[2]
	mx, my, mz := float64(nx-1), float64(ny-1), float64(nz-1)
	dy, dz := nx, nx*ny
	for p := range acc {
		a := p * stride
		fx := (xs[a] - o.X) / sp
		fy := (ys[a] - o.Y) / sp
		fz := (zs[a] - o.Z) / sp
		if fx < 0 || fy < 0 || fz < 0 || fx > mx || fy > my || fz > mz {
			s := acc[p]
			s += wv * OutOfBoxPenalty
			s += wq * OutOfBoxPenalty
			s += wdq * OutOfBoxPenalty
			acc[p] = s
			continue
		}
		ix := int(math.Floor(fx))
		iy := int(math.Floor(fy))
		iz := int(math.Floor(fz))
		if ix >= nx-1 {
			ix = nx - 2
		}
		if iy >= ny-1 {
			iy = ny - 2
		}
		if iz >= nz-1 {
			iz = nz - 2
		}
		tx := fx - float64(ix)
		ty := fy - float64(iy)
		tz := fz - float64(iz)
		// The lerp chain per lattice is interpolate's exactly: corner
		// index arithmetic and operation order match the at() closure
		// form — float32 corners are widened before the chain, as
		// interpolate32 does — so each term is bit-identical to
		// Field.At. Written out per lattice (a shared helper at this
		// size is beyond the inlining budget and a call per lattice
		// costs more than the duplication).
		i00 := (iz*ny+iy)*nx + ix
		i10 := i00 + dy
		i01 := i00 + dz
		i11 := i01 + dy
		ux, uy, uz := 1-tx, 1-ty, 1-tz
		s := acc[p]
		{
			c00 := float64(affSl[i00])*ux + float64(affSl[i00+1])*tx
			c10 := float64(affSl[i10])*ux + float64(affSl[i10+1])*tx
			c01 := float64(affSl[i01])*ux + float64(affSl[i01+1])*tx
			c11 := float64(affSl[i11])*ux + float64(affSl[i11+1])*tx
			s += wv * ((c00*uy+c10*ty)*uz + (c01*uy+c11*ty)*tz)
		}
		{
			c00 := float64(elecSl[i00])*ux + float64(elecSl[i00+1])*tx
			c10 := float64(elecSl[i10])*ux + float64(elecSl[i10+1])*tx
			c01 := float64(elecSl[i01])*ux + float64(elecSl[i01+1])*tx
			c11 := float64(elecSl[i11])*ux + float64(elecSl[i11+1])*tx
			s += wq * ((c00*uy+c10*ty)*uz + (c01*uy+c11*ty)*tz)
		}
		{
			c00 := float64(desolvSl[i00])*ux + float64(desolvSl[i00+1])*tx
			c10 := float64(desolvSl[i10])*ux + float64(desolvSl[i10+1])*tx
			c01 := float64(desolvSl[i01])*ux + float64(desolvSl[i01+1])*tx
			c11 := float64(desolvSl[i11])*ux + float64(desolvSl[i11+1])*tx
			s += wdq * ((c00*uy+c10*ty)*uz + (c01*uy+c11*ty)*tz)
		}
		acc[p] = s
	}
}

// interpolate performs trilinear interpolation on one map slice.
func (m *Maps) interpolate(sl []float64, p chem.Vec3) float64 {
	o := m.Spec.Origin()
	fx := (p.X - o.X) / m.Spec.Spacing
	fy := (p.Y - o.Y) / m.Spec.Spacing
	fz := (p.Z - o.Z) / m.Spec.Spacing
	nx, ny, nz := m.Spec.NPts[0], m.Spec.NPts[1], m.Spec.NPts[2]
	if fx < 0 || fy < 0 || fz < 0 ||
		fx > float64(nx-1) || fy > float64(ny-1) || fz > float64(nz-1) {
		return OutOfBoxPenalty
	}
	ix := int(math.Floor(fx))
	iy := int(math.Floor(fy))
	iz := int(math.Floor(fz))
	if ix >= nx-1 {
		ix = nx - 2
	}
	if iy >= ny-1 {
		iy = ny - 2
	}
	if iz >= nz-1 {
		iz = nz - 2
	}
	tx := fx - float64(ix)
	ty := fy - float64(iy)
	tz := fz - float64(iz)
	at := func(i, j, k int) float64 {
		return sl[(k*ny+j)*nx+i]
	}
	c00 := at(ix, iy, iz)*(1-tx) + at(ix+1, iy, iz)*tx
	c10 := at(ix, iy+1, iz)*(1-tx) + at(ix+1, iy+1, iz)*tx
	c01 := at(ix, iy, iz+1)*(1-tx) + at(ix+1, iy, iz+1)*tx
	c11 := at(ix, iy+1, iz+1)*(1-tx) + at(ix+1, iy+1, iz+1)*tx
	c0 := c00*(1-ty) + c10*ty
	c1 := c01*(1-ty) + c11*ty
	return c0*(1-tz) + c1*tz
}

// interpolate32 is interpolate over a float32 lattice: the eight
// corners are widened to float64 and the lerp arithmetic is identical,
// so the only difference from the float64 path is the stored corner
// precision.
func (m *Maps) interpolate32(sl []float32, p chem.Vec3) float64 {
	o := m.Spec.Origin()
	fx := (p.X - o.X) / m.Spec.Spacing
	fy := (p.Y - o.Y) / m.Spec.Spacing
	fz := (p.Z - o.Z) / m.Spec.Spacing
	nx, ny, nz := m.Spec.NPts[0], m.Spec.NPts[1], m.Spec.NPts[2]
	if fx < 0 || fy < 0 || fz < 0 ||
		fx > float64(nx-1) || fy > float64(ny-1) || fz > float64(nz-1) {
		return OutOfBoxPenalty
	}
	ix := int(math.Floor(fx))
	iy := int(math.Floor(fy))
	iz := int(math.Floor(fz))
	if ix >= nx-1 {
		ix = nx - 2
	}
	if iy >= ny-1 {
		iy = ny - 2
	}
	if iz >= nz-1 {
		iz = nz - 2
	}
	tx := fx - float64(ix)
	ty := fy - float64(iy)
	tz := fz - float64(iz)
	at := func(i, j, k int) float64 {
		return float64(sl[(k*ny+j)*nx+i])
	}
	c00 := at(ix, iy, iz)*(1-tx) + at(ix+1, iy, iz)*tx
	c10 := at(ix, iy+1, iz)*(1-tx) + at(ix+1, iy+1, iz)*tx
	c01 := at(ix, iy, iz+1)*(1-tx) + at(ix+1, iy, iz+1)*tx
	c11 := at(ix, iy+1, iz+1)*(1-tx) + at(ix+1, iy+1, iz+1)*tx
	c0 := c00*(1-ty) + c10*ty
	c1 := c01*(1-ty) + c11*ty
	return c0*(1-tz) + c1*tz
}
