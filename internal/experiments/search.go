// Search benchmarks: machine-readable timings of the conformational
// search rewrite — allocation-free workspace evaluation vs the old
// allocating path, and sequential vs pooled chain/run fan-out for
// both docking engines. cmd/dockbench serializes the report to
// BENCH_search.json so perf regressions are diffable across commits.
package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/dock"
	"repro/internal/dock/ad4"
	"repro/internal/dock/vina"
	"repro/internal/grid"
	"repro/internal/prep"
)

// SearchBench is one measured search configuration.
type SearchBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Workers is the explicit fan-out of Dock entries (0 for
	// per-candidate entries, which are single-threaded by nature).
	Workers int `json:"workers,omitempty"`
	// Speedup is NsPerOp of the matching baseline (allocating
	// evaluation, or sequential search) divided by this entry's
	// NsPerOp; only set on rewritten/parallel entries.
	Speedup float64 `json:"speedup_vs_baseline,omitempty"`
}

// SearchReport is the full search benchmark result set.
type SearchReport struct {
	Workload   string `json:"workload"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Note qualifies the parallel numbers on hosts where the fan-out
	// cannot show wall-clock gains (single-core containers).
	Note       string        `json:"note,omitempty"`
	Benchmarks []SearchBench `json:"benchmarks"`
}

// JSON renders the report for BENCH_search.json.
func (r *SearchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable table dockbench prints.
func (r *SearchReport) String() string {
	var sb strings.Builder
	sb.WriteString("SEARCH BENCHMARKS (workspace + parallel chains vs sequential)\n")
	fmt.Fprintf(&sb, "workload: %s, GOMAXPROCS=%d, NumCPU=%d\n", r.Workload, r.GoMaxProcs, r.NumCPU)
	if r.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Note)
	}
	fmt.Fprintf(&sb, "%-26s %8s %14s %12s %10s\n", "benchmark", "workers", "ns/op", "allocs/op", "speedup")
	for _, b := range r.Benchmarks {
		w := ""
		if b.Workers > 0 {
			w = fmt.Sprintf("%d", b.Workers)
		}
		sp := ""
		if b.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", b.Speedup)
		}
		fmt.Fprintf(&sb, "%-26s %8s %14.0f %12.1f %10s\n", b.Name, w, b.NsPerOp, b.AllocsPerOp, sp)
	}
	return sb.String()
}

// Search measures the conformational-search rewrite on the standard
// workload (receptor 2HHN vs ligand 0E6): per-candidate evaluation on
// the old allocating path vs the workspace path, then full Vina and
// AD4 dockings sequential vs fanned out. Quick mode shrinks iteration
// counts for smoke runs.
func (s *Suite) Search() (*SearchReport, error) {
	rec, _ := data.GenerateReceptor("2HHN")
	prec, err := prep.PrepareReceptor(rec)
	if err != nil {
		return nil, err
	}
	raw, _ := data.GenerateLigand("0E6")
	mol2, err := prep.ConvertSDFToMol2(raw)
	if err != nil {
		return nil, err
	}
	pl, err := prep.PrepareLigand(mol2)
	if err != nil {
		return nil, err
	}
	lig, err := dock.NewLigand(pl.Mol, pl.Tree)
	if err != nil {
		return nil, err
	}

	evalIters, dockIters, steps := 20000, 6, 8
	if s.Quick {
		evalIters, dockIters, steps = 500, 1, 3
	}
	parWorkers := runtime.GOMAXPROCS(0)
	if parWorkers < 4 {
		parWorkers = 4
	}

	rep := &SearchReport{
		Workload: fmt.Sprintf("receptor 2HHN (%d atoms), ligand 0E6 (%d torsions), exhaustiveness 8",
			prec.NumAtoms(), lig.NumTorsions()),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if runtime.NumCPU() < 2 {
		rep.Note = "single-CPU host: chain fan-out is correctness-only here; wall-clock speedup requires a multi-core run"
	}
	add := func(name string, workers int, baselineNs float64, iters int, fn func() error) (float64, error) {
		var innerErr error
		ns, allocs := measure(iters, func() {
			if err := fn(); err != nil {
				innerErr = err
			}
		})
		if innerErr != nil {
			return 0, fmt.Errorf("experiments: search %s: %w", name, innerErr)
		}
		b := SearchBench{Name: name, Workers: workers, NsPerOp: ns, AllocsPerOp: allocs}
		if baselineNs > 0 {
			b.Speedup = baselineNs / ns
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		return ns, nil
	}

	box := dock.Box{Center: chem.Vec3{}, Size: chem.V(26, 26, 26)}

	// Vina: per-candidate evaluation, allocating path vs workspace.
	vs, err := vina.NewScorer(prec, lig)
	if err != nil {
		return nil, err
	}
	evalRNG := rand.New(rand.NewSource(3))
	cur := dock.RandomPose(evalRNG, box, lig.NumTorsions())
	allocNs, err := add("vina_eval_alloc", 0, 0, evalIters, func() error {
		cand := dock.Perturb(evalRNG, cur, 1.0, 0.3)
		dock.ClampToBox(&cand, box)
		vs.Score(lig.Coords(cand))
		return nil
	})
	if err != nil {
		return nil, err
	}
	ws := dock.NewWorkspace(lig)
	cand := ws.Get()
	if _, err := add("vina_eval_workspace", 0, allocNs, evalIters, func() error {
		dock.PerturbInto(evalRNG, cand, cur, 1.0, 0.3)
		dock.ClampToBox(cand, box)
		vs.Score(ws.Coords(*cand))
		return nil
	}); err != nil {
		return nil, err
	}

	// Vina: full docking, sequential vs pooled chains.
	vinaCfg := prep.VinaConfig{
		Receptor: "2HHN.pdbqt", Ligand: "0E6.pdbqt",
		Center: box.Center, Size: box.Size,
		Exhaustiveness: 8, NumModes: 9, Seed: 42,
	}
	vinaSeqNs, err := add("vina_dock_sequential", 1, 0, dockIters, func() error {
		eng := &vina.Engine{Config: vinaCfg, StepsPerRestart: steps, Workers: 1}
		_, err := eng.Dock(vs, lig)
		return err
	})
	if err != nil {
		return nil, err
	}
	if _, err := add("vina_dock_parallel", parWorkers, vinaSeqNs, dockIters, func() error {
		eng := &vina.Engine{Config: vinaCfg, StepsPerRestart: steps, Workers: parWorkers}
		_, err := eng.Dock(vs, lig)
		return err
	}); err != nil {
		return nil, err
	}

	// AD4: per-candidate evaluation and full GA docking.
	npts := 20
	if s.Quick {
		npts = 12
	}
	spec := grid.Spec{Center: chem.Vec3{}, NPts: [3]int{npts, npts, npts}, Spacing: 1.4}
	maps, err := grid.Generate(prec, spec, pl.Mol.AtomTypes())
	if err != nil {
		return nil, err
	}
	as, err := ad4.NewScorer(maps, lig)
	if err != nil {
		return nil, err
	}
	ad4Box := dock.Box{
		Center: spec.Center,
		Size: chem.V(
			float64(spec.NPts[0]-1)*spec.Spacing,
			float64(spec.NPts[1]-1)*spec.Spacing,
			float64(spec.NPts[2]-1)*spec.Spacing),
	}
	ad4AllocNs, err := add("ad4_eval_alloc", 0, 0, evalIters, func() error {
		c := dock.Perturb(evalRNG, cur, 1.0, 0.3)
		dock.ClampToBox(&c, ad4Box)
		as.Score(lig.Coords(c))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if _, err := add("ad4_eval_workspace", 0, ad4AllocNs, evalIters, func() error {
		dock.PerturbInto(evalRNG, cand, cur, 1.0, 0.3)
		dock.ClampToBox(cand, ad4Box)
		as.Score(ws.Coords(*cand))
		return nil
	}); err != nil {
		return nil, err
	}

	params := prep.DefaultDPF("0E6.pdbqt", "2HHN.maps.fld", 42)
	params.Runs, params.PopSize, params.Gens, params.Evals = 8, 20, 6, 3000
	if s.Quick {
		params.Runs, params.PopSize, params.Gens, params.Evals = 2, 10, 3, 600
	}
	ad4SeqNs, err := add("ad4_dock_sequential", 1, 0, dockIters, func() error {
		eng := &ad4.Engine{Params: params, Box: ad4Box, Workers: 1}
		_, err := eng.Dock(as, lig)
		return err
	})
	if err != nil {
		return nil, err
	}
	if _, err := add("ad4_dock_parallel", parWorkers, ad4SeqNs, dockIters, func() error {
		eng := &ad4.Engine{Params: params, Box: ad4Box, Workers: parWorkers}
		_, err := eng.Dock(as, lig)
		return err
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

// SearchText is the ByName-facing wrapper returning the formatted
// table.
func (s *Suite) SearchText() (string, error) {
	rep, err := s.Search()
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}
