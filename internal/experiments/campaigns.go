// Campaign-service benchmarks: the resident multi-campaign runtime
// under concurrent load. One small campaign alone versus several
// submitted together through the Manager measures the cost of
// sharing the worker-token pool: aggregate wall-clock, per-campaign
// completion times and the fairness spread the per-campaign token
// accounting is supposed to keep tight. cmd/dockbench serializes the
// report to BENCH_campaigns.json.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/parallel"
)

// CampaignRun is one campaign's outcome inside a concurrency level.
type CampaignRun struct {
	Seed int64 `json:"seed"`
	// WallSecs is the wall-clock time from the common submission
	// instant to this campaign's completion.
	WallSecs float64 `json:"wall_secs"`
	// VirtualTET is the campaign's deterministic virtual makespan —
	// identical to a solo run of the same seed by construction.
	VirtualTET  float64 `json:"virtual_tet_secs"`
	Activations int     `json:"activations"`
}

// CampaignsBench is one concurrency level of the comparison.
type CampaignsBench struct {
	Concurrency   int     `json:"concurrency"`
	TotalWallSecs float64 `json:"total_wall_secs"`
	// FairnessSpread is max/min per-campaign wall-clock within the
	// level: 1.0 means every campaign finished together, large values
	// mean the pool starved some campaigns behind others.
	FairnessSpread float64 `json:"fairness_spread"`
	// PoolCapacity is the shared worker-token pool the campaigns'
	// per-campaign accounts divide fairly.
	PoolCapacity int           `json:"pool_capacity"`
	Runs         []CampaignRun `json:"runs"`
}

// CampaignsReport is the full concurrent-campaigns result set.
type CampaignsReport struct {
	Workload   string `json:"workload"`
	Pairs      int    `json:"pairs_per_campaign"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Note qualifies the numbers: wall-clock on a single-CPU host
	// time-shares everything, so the interesting signal is the
	// fairness spread, not the aggregate speedup.
	Note    string           `json:"note"`
	Entries []CampaignsBench `json:"entries"`
}

// JSON renders the report for BENCH_campaigns.json.
func (r *CampaignsReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable table dockbench prints.
func (r *CampaignsReport) String() string {
	var sb strings.Builder
	sb.WriteString("CAMPAIGN-SERVICE BENCHMARKS (concurrent campaigns through the Manager)\n")
	fmt.Fprintf(&sb, "workload: %s (%d pairs per campaign), GOMAXPROCS=%d, NumCPU=%d\n",
		r.Workload, r.Pairs, r.GoMaxProcs, r.NumCPU)
	fmt.Fprintf(&sb, "note: %s\n", r.Note)
	fmt.Fprintf(&sb, "%11s %10s %14s %8s\n",
		"concurrency", "wall (s)", "fairness", "pool")
	for _, b := range r.Entries {
		fmt.Fprintf(&sb, "%11d %10.2f %13.2fx %8d\n",
			b.Concurrency, b.TotalWallSecs, b.FairnessSpread, b.PoolCapacity)
		for _, run := range b.Runs {
			fmt.Fprintf(&sb, "%11s   seed %-6d wall %6.2fs  virtual TET %8.1fs  activations %d\n",
				"", run.Seed, run.WallSecs, run.VirtualTET, run.Activations)
		}
	}
	return sb.String()
}

func (s *Suite) campaignsSpec(seed int64) campaign.Spec {
	sp := campaign.Spec{
		Mode: "ad4", Receptors: 6, Ligands: 2, Cores: 8,
		Effort: "smoke", Seed: seed, DisableFailures: true,
	}
	if s.Quick {
		sp.Receptors, sp.Ligands = 3, 1
	}
	return sp
}

// campaignsLevel submits len(seeds) campaigns at once through a
// fresh Manager over a private token pool and waits for all of them,
// timing each from the common submission instant.
func (s *Suite) campaignsLevel(poolCap int, seeds []int64) (CampaignsBench, error) {
	bench := CampaignsBench{Concurrency: len(seeds), PoolCapacity: poolCap}
	m := campaign.NewManager(parallel.NewPool(poolCap), campaign.Limits{
		MaxRunning:          len(seeds),
		MaxRunningPerTenant: len(seeds),
		MaxQueuedPerTenant:  len(seeds),
	})
	ids := make([]int64, len(seeds))
	for i, seed := range seeds {
		id, err := m.Submit(s.campaignsSpec(seed))
		if err != nil {
			return bench, fmt.Errorf("experiments: campaigns submit seed=%d: %w", seed, err)
		}
		ids[i] = id
	}
	runs := make([]CampaignRun, len(seeds))
	errs := make([]error, len(seeds))
	start := time.Now()
	var wg sync.WaitGroup
	for i := range seeds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			camp, err := m.Wait(context.Background(), ids[i])
			if err != nil {
				errs[i] = err
				return
			}
			run := CampaignRun{Seed: seeds[i], WallSecs: time.Since(start).Seconds()}
			run.VirtualTET = camp.TET()
			for _, rep := range camp.Reports {
				run.Activations += rep.Activations
			}
			runs[i] = run
		}(i)
	}
	wg.Wait()
	bench.TotalWallSecs = time.Since(start).Seconds()
	for i, err := range errs {
		if err != nil {
			return bench, fmt.Errorf("experiments: campaigns seed=%d: %w", seeds[i], err)
		}
	}
	bench.Runs = runs
	minW, maxW := runs[0].WallSecs, runs[0].WallSecs
	for _, run := range runs[1:] {
		minW, maxW = min(minW, run.WallSecs), max(maxW, run.WallSecs)
	}
	if minW > 0 {
		bench.FairnessSpread = maxW / minW
	}
	return bench, nil
}

// Campaigns measures the campaign service under concurrent load: the
// same small campaign run alone and as four concurrent submissions
// with distinct seeds, all sharing one worker-token pool through
// per-campaign accounts. Virtual TETs are unchanged by concurrency
// (the determinism contract); the wall-clock columns show how the
// pool divides real execution among resident campaigns.
func (s *Suite) Campaigns() (*CampaignsReport, error) {
	spec := s.campaignsSpec(0)
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	rep := &CampaignsReport{
		Workload: fmt.Sprintf("SciDock-AD4 %d×%d smoke campaign, failures off",
			spec.Receptors, spec.Ligands),
		Pairs:      cfg.Dataset.NumPairs(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "wall-clock on the reference container is single-CPU: concurrent " +
			"campaigns time-share GOMAXPROCS=1, so total wall grows ~linearly " +
			"with concurrency and the signal here is the fairness spread " +
			"(per-campaign account fair share keeping completion times close), " +
			"not aggregate speedup. Virtual TETs are per-seed deterministic " +
			"and unaffected by co-residency",
	}
	const poolCap = 8
	for _, seeds := range [][]int64{
		{101},
		{101, 211, 307, 401},
	} {
		bench, err := s.campaignsLevel(poolCap, seeds)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, bench)
	}
	return rep, nil
}

// CampaignsText is the ByName-facing wrapper returning the formatted
// table.
func (s *Suite) CampaignsText() (string, error) {
	rep, err := s.Campaigns()
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}
