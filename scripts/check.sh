#!/bin/sh
# Tier-1+ correctness gate: build, vet, domain-aware static analysis
# (cmd/scilint), then the full test suite under the race detector.
# Run from anywhere inside the repo; exits non-zero on the first
# failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> scilint ./..."
go run ./cmd/scilint ./...

# The linter lints itself: the flow analyzers (CFG builder, dataflow
# engine, taint propagation) are exactly the kind of fixpoint code
# where a leaked lock or nondeterministic map range would be embarrassing.
echo "==> scilint self-lint (./cmd/... ./internal/lint/...)"
go run ./cmd/scilint ./cmd/... ./internal/lint/...

echo "==> go test -race ./..."
go test -race ./...

# Focused re-run of the precision contracts outside the cached suite:
# the 0-ULP batched-kinematics pin, the fast-path tolerance envelopes,
# and the screen-then-confirm docking golden.
echo "==> precision contract smoke (FastPath/TorsionsBatch/PrecisionTolerance)"
go test -run 'FastPath|TorsionsBatch|PrecisionTolerance' -count=1 \
	./internal/chem ./internal/dock/vina ./internal/dock/ad4

echo "==> kernel benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x \
	./internal/grid ./internal/dock \
	./internal/dock/tables ./internal/dock/vina ./internal/dock/ad4

echo "==> search benchmark smoke (dockbench -exp search -quick)"
go run ./cmd/dockbench -exp search -quick -benchout ''

echo "==> batched-scoring benchmark smoke, exact + tolerance cells (dockbench -exp kernels -quick)"
go run ./cmd/dockbench -exp kernels -quick -benchout ''

echo "==> pipeline runtime benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench BenchmarkPipelineRuntime -benchtime=1x .

echo "==> provenance store benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench . -benchtime=1x ./internal/prov

echo "==> provenance store benchmark smoke (dockbench -exp prov -quick)"
go run ./cmd/dockbench -exp prov -quick -benchout ''

echo "check: all gates passed"
