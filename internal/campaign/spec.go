package campaign

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dock"
)

// Spec is the JSON-friendly campaign description accepted by the
// service API. Zero values mean the one-shot CLI defaults, so a spec
// of `{}` submits exactly the campaign `scidock` runs with no flags;
// the guard booleans are inverted (DisableHgGuard/EnableFailures
// flipped to Disable*) for the same reason.
type Spec struct {
	// Tenant names the submitting tenant for admission control;
	// empty = "default".
	Tenant string `json:"tenant,omitempty"`
	// Mode is the docking mode: ad4 (default), vina or adaptive.
	Mode string `json:"mode,omitempty"`
	// Receptors/Ligands size the Table-2 dataset slice; 0 = the CLI
	// defaults (10 receptors × 2 ligands).
	Receptors int `json:"receptors,omitempty"`
	Ligands   int `json:"ligands,omitempty"`
	// Cores is the virtual worker-core count; 0 = 16.
	Cores int `json:"cores,omitempty"`
	// Effort is the docking effort preset: smoke, campaign (default)
	// or quick.
	Effort string `json:"effort,omitempty"`
	// Seed is the campaign seed; 0 = 2014 (the CLI default).
	Seed int64 `json:"seed,omitempty"`
	// Precision selects candidate scoring: exact (default) or
	// tolerance.
	Precision string `json:"precision,omitempty"`
	// DisableHgGuard turns off the §V.C Hg steering guard (on by
	// default, as in the CLI).
	DisableHgGuard bool `json:"disable_hg_guard,omitempty"`
	// DisableFailures turns off transient failure injection (on by
	// default, as in the CLI).
	DisableFailures bool `json:"disable_failures,omitempty"`
}

// TenantName returns the tenant, defaulted.
func (s Spec) TenantName() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

// withDefaults fills zero values with the CLI defaults.
func (s Spec) withDefaults() Spec {
	if s.Mode == "" {
		s.Mode = "ad4"
	}
	if s.Receptors == 0 {
		s.Receptors = 10
	}
	if s.Ligands == 0 {
		s.Ligands = 2
	}
	if s.Cores == 0 {
		s.Cores = 16
	}
	if s.Effort == "" {
		s.Effort = "campaign"
	}
	if s.Seed == 0 {
		s.Seed = 2014
	}
	if s.Precision == "" {
		s.Precision = "exact"
	}
	return s
}

// Config validates the spec and builds the core.Config it describes,
// including the dataset. The mapping is exactly the one-shot CLI's,
// so a spec and the equivalent flag set produce byte-identical
// campaigns.
func (s Spec) Config() (core.Config, error) {
	s = s.withDefaults()
	var cfg core.Config
	if s.Cores < 1 {
		return cfg, fmt.Errorf("campaign: cores %d must be positive", s.Cores)
	}
	ds, err := data.Small(s.Receptors, s.Ligands)
	if err != nil {
		return cfg, err
	}
	cfg = core.Config{
		Dataset:         ds,
		Cores:           s.Cores,
		Seed:            s.Seed,
		HgGuard:         !s.DisableHgGuard,
		DisableFailures: s.DisableFailures,
	}
	switch s.Mode {
	case "ad4":
		cfg.Mode = core.ModeAD4
	case "vina":
		cfg.Mode = core.ModeVina
	case "adaptive":
		cfg.Mode = core.ModeAdaptive
	default:
		return cfg, fmt.Errorf("campaign: unknown mode %q (valid: ad4, vina, adaptive)", s.Mode)
	}
	switch s.Effort {
	case "smoke":
		cfg.Effort = core.SmokeEffort()
	case "campaign":
		cfg.Effort = core.CampaignEffort()
	case "quick":
		cfg.Effort = core.QuickEffort()
	default:
		return cfg, fmt.Errorf("campaign: unknown effort %q (valid: smoke, campaign, quick)", s.Effort)
	}
	switch s.Precision {
	case "exact":
		cfg.ScorePrecision = dock.PrecisionExact
	case "tolerance":
		cfg.ScorePrecision = dock.PrecisionTolerance
	default:
		return cfg, fmt.Errorf("campaign: unknown precision %q (valid: exact, tolerance)", s.Precision)
	}
	return cfg, nil
}
