package grid

import (
	"math"

	"repro/internal/chem"
)

// GenerateReference is the serial analytic AutoGrid path: identical
// semantics to Generate, but every pair interaction is evaluated from
// the closed-form potentials (sqrt, exp and all) instead of the radial
// tables. It is the golden reference the equivalence tests pin the
// tables against, and the baseline the kernel benchmarks report
// speedups over. Production code should call Generate.
func GenerateReference(receptor *chem.Molecule, spec Spec, types []chem.AtomType) (*Maps, error) {
	m, probeTypes, err := newMaps(receptor, spec, types, Float64)
	if err != nil {
		return nil, err
	}
	cells := buildCellList(receptor, interactionCutoff)
	probes := make([]chem.TypeParams, 0, len(probeTypes))
	probeSlices := make([][]float64, 0, len(probeTypes))
	for _, t := range probeTypes {
		probes = append(probes, t.Params())
		probeSlices = append(probeSlices, m.affinity[t])
	}

	origin := spec.Origin()
	idx := 0
	for k := 0; k < spec.NPts[2]; k++ {
		for j := 0; j < spec.NPts[1]; j++ {
			for i := 0; i < spec.NPts[0]; i++ {
				p := origin.Add(chem.V(
					float64(i)*spec.Spacing,
					float64(j)*spec.Spacing,
					float64(k)*spec.Spacing,
				))
				var elec, desolv float64
				affin := make([]float64, len(probes))
				cells.forNeighbors(p, func(ai int) {
					a := &receptor.Atoms[ai]
					r2 := a.Pos.Dist2(p)
					if r2 > interactionCutoff*interactionCutoff {
						return
					}
					r := math.Sqrt(r2)
					if r < 0.5 {
						r = 0.5 // AutoGrid's rmin clamp
					}
					elec += electrostaticTerm(a.Charge, r)
					desolv += desolvationTerm(a, r)
					ap := receptorAtomType(a).Params()
					for pi := range probes {
						affin[pi] += PairEnergySmoothed(probes[pi], ap, r, smoothRadius)
					}
				})
				m.elec[idx] = clamp(elec)
				m.desolv[idx] = clamp(desolv)
				for pi := range probes {
					probeSlices[pi][idx] = clamp(affin[pi])
				}
				idx++
			}
		}
	}
	return m, nil
}
