package ad4

import (
	"repro/internal/chem"
	"repro/internal/dock"
)

// winSlack widens the window dead-pair threshold so floating-point
// rounding of the anchor-distance test can never contradict the
// real-arithmetic triangle-inequality argument; 1e-2 Å dwarfs every
// rounding term at Å-scale coordinates.
const winSlack = 1e-2

// windowIntraLive returns the window's live intramolecular pairs as
// indices into s.intraTbl: a pair is dead when its anchor separation
// exceeds intraCutoff + 2·bound — each atom of a WindowValid pose moves
// at most bound from its anchor position, so the pair distance shrinks
// by at most 2·bound and a dead pair stays beyond the cutoff for every
// valid pose, contributing nothing. Live pairs keep table order, so
// skipping the dead ones cannot change a valid pose's accumulation
// sequence. Cached on the batch per window. AD4's intermolecular term
// is a grid read and needs no window treatment; the intramolecular
// pair walk is what the window shares.
func (s *Scorer) windowIntraLive(b *dock.Batch, anchor []chem.Vec3, bound float64) []int32 {
	if live, ok := b.WindowPairs(s); ok {
		return live
	}
	lp := b.WindowPairScratch(s)
	thr := intraCutoff + 2*bound + winSlack
	thr2 := thr * thr
	for k := range s.intraTbl {
		pr := &s.intraTbl[k]
		if anchor[pr.i].Dist2(anchor[pr.j]) <= thr2 {
			*lp = append(*lp, int32(k))
		}
	}
	return *lp
}

// windowIntraLiveFast is windowIntraLive over the fast path's
// cross-unit pair list (indices into f.intraVar). Distinct cache
// owner: the exact and fast pair lists index different tables.
func (s *Scorer) windowIntraLiveFast(b *dock.Batch, f *fastState, anchor []chem.Vec3, bound float64) []int32 {
	if live, ok := b.WindowPairs(f); ok {
		return live
	}
	lp := b.WindowPairScratch(f)
	thr := intraCutoff + 2*bound + winSlack
	thr2 := thr * thr
	for k := range f.intraVar {
		pr := &f.intraVar[k]
		if anchor[pr.i].Dist2(anchor[pr.j]) <= thr2 {
			*lp = append(*lp, int32(k))
		}
	}
	return *lp
}
