package dock

import (
	"math/rand"
	"testing"

	"repro/internal/chem"
)

// clusteredRuns builds runs whose poses form two tight spatial groups
// plus one outlier.
func clusteredRuns(t *testing.T, lig *Ligand) []RunResult {
	t.Helper()
	nt := lig.NumTorsions()
	mk := func(run int, pos chem.Vec3, feb float64) RunResult {
		return RunResult{
			Run: run, FEB: feb,
			Pose: Pose{Translation: pos, Orientation: chem.QuatIdentity, Torsions: make([]float64, nt)},
		}
	}
	return []RunResult{
		mk(1, chem.V(0, 0, 0), -7.0),
		mk(2, chem.V(0.3, 0, 0), -6.5),   // same cluster as run 1
		mk(3, chem.V(0, 0.4, 0), -6.8),   // same cluster as run 1
		mk(4, chem.V(30, 0, 0), -5.0),    // second cluster
		mk(5, chem.V(30.2, 0, 0), -4.8),  // second cluster
		mk(6, chem.V(-40, 40, 10), -2.0), // outlier
	}
}

func TestClusterRunsGroups(t *testing.T) {
	lig := testLigand(t, "0E6")
	runs := clusteredRuns(t, lig)
	clusters, err := ClusterRuns(lig, runs, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
	// Sorted by best energy: first cluster holds runs 1-3.
	if len(clusters[0].Members) != 3 {
		t.Errorf("first cluster size = %d, want 3", len(clusters[0].Members))
	}
	if clusters[0].BestFEB != -7.0 {
		t.Errorf("first cluster best = %v", clusters[0].BestFEB)
	}
	// Representative is the lowest-energy member.
	if runs[clusters[0].Representative].Run != 1 {
		t.Errorf("representative run = %d, want 1", runs[clusters[0].Representative].Run)
	}
	if len(clusters[1].Members) != 2 || len(clusters[2].Members) != 1 {
		t.Errorf("cluster sizes = %d, %d", len(clusters[1].Members), len(clusters[2].Members))
	}
}

func TestAnnotateClusters(t *testing.T) {
	lig := testLigand(t, "042")
	runs := clusteredRuns(t, lig)
	clusters, err := ClusterRuns(lig, runs, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	sizes := AnnotateClusters(runs, clusters)
	want := []int{3, 3, 3, 2, 2, 1}
	for i, w := range want {
		if sizes[i] != w {
			t.Errorf("run %d cluster size = %d, want %d", i+1, sizes[i], w)
		}
	}
}

func TestLargestCluster(t *testing.T) {
	lig := testLigand(t, "074")
	runs := clusteredRuns(t, lig)
	clusters, _ := ClusterRuns(lig, runs, 2.0)
	best, err := LargestCluster(clusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Members) != 3 {
		t.Errorf("largest cluster size = %d", len(best.Members))
	}
	if _, err := LargestCluster(nil); err == nil {
		t.Error("empty clusters accepted")
	}
}

func TestClusterRunsEdgeCases(t *testing.T) {
	lig := testLigand(t, "0D6")
	if _, err := ClusterRuns(lig, clusteredRuns(t, lig), 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	got, err := ClusterRuns(lig, nil, 2)
	if err != nil || got != nil {
		t.Errorf("empty runs: %v, %v", got, err)
	}
	// Huge tolerance: everything in one cluster.
	one, err := ClusterRuns(lig, clusteredRuns(t, lig), 1e6)
	if err != nil || len(one) != 1 || len(one[0].Members) != 6 {
		t.Errorf("single-cluster case: %+v, %v", one, err)
	}
}

func TestToDLGWithClusters(t *testing.T) {
	lig := testLigand(t, "0E6")
	r := &Result{
		Program: "AutoDock 4.2.5.1", Receptor: "2HHN", Ligand: "0E6",
		Runs: clusteredRuns(t, lig),
	}
	d, err := r.ToDLGWithClusters(lig, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// Run order preserved, cluster sizes filled.
	if d.Runs[0].ClusterN != 3 || d.Runs[3].ClusterN != 2 || d.Runs[5].ClusterN != 1 {
		t.Errorf("cluster sizes = %+v", d.Runs)
	}
}

// Property: clustering partitions the runs (every run in exactly one
// cluster) at any tolerance.
func TestClusterPartitionProperty(t *testing.T) {
	lig := testLigand(t, "074")
	r := rand.New(rand.NewSource(31))
	nt := lig.NumTorsions()
	for trial := 0; trial < 20; trial++ {
		var runs []RunResult
		n := 3 + r.Intn(15)
		for i := 0; i < n; i++ {
			runs = append(runs, RunResult{
				Run: i + 1, FEB: r.Float64()*10 - 8,
				Pose: Pose{
					Translation: chem.V(r.Float64()*20, r.Float64()*20, r.Float64()*20),
					Orientation: chem.RandomQuat(r.Float64(), r.Float64(), r.Float64()),
					Torsions:    make([]float64, nt),
				},
			})
		}
		tol := 0.5 + r.Float64()*10
		clusters, err := ClusterRuns(lig, runs, tol)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]int{}
		for _, c := range clusters {
			for _, m := range c.Members {
				seen[m]++
			}
		}
		if len(seen) != n {
			t.Fatalf("trial %d: %d of %d runs clustered", trial, len(seen), n)
		}
		for m, k := range seen {
			if k != 1 {
				t.Fatalf("trial %d: run %d appears %d times", trial, m, k)
			}
		}
		// Clusters sorted by best energy.
		for i := 1; i < len(clusters); i++ {
			if clusters[i].BestFEB < clusters[i-1].BestFEB {
				t.Fatalf("trial %d: clusters not energy-sorted", trial)
			}
		}
	}
}
