package chem

import (
	"math"
	"math/rand"
	"testing"
)

// chainLike builds a heavy-atom chain with nAtoms carbons and a
// two-carbon branch, giving several genuinely rotatable bonds and a
// non-trivial rigid-unit structure.
func chainLike(nAtoms int) *Molecule {
	m := &Molecule{Name: "CHAIN"}
	for i := 0; i < nAtoms; i++ {
		// Zig-zag so axes are not collinear.
		m.Atoms = append(m.Atoms, Atom{Element: Carbon,
			Pos: V(1.5*float64(i), 0.4*float64(i%2), 0.1*float64(i%3))})
		if i > 0 {
			m.Bonds = append(m.Bonds, Bond{A: i - 1, B: i, Order: Single})
		}
	}
	// Branch off the middle atom.
	mid := nAtoms / 2
	b0 := len(m.Atoms)
	m.Atoms = append(m.Atoms,
		Atom{Element: Carbon, Pos: V(1.5*float64(mid), 1.8, 0.7)},
		Atom{Element: Carbon, Pos: V(1.5*float64(mid)+0.8, 3.0, 0.9)})
	m.Bonds = append(m.Bonds,
		Bond{A: mid, B: b0, Order: Single},
		Bond{A: b0, B: b0 + 1, Order: Single})
	return m
}

func randomPlacement(r *rand.Rand, nTors int) Placement {
	pl := Placement{
		Translation: V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5),
		Orientation: RandomQuat(r.Float64(), r.Float64(), r.Float64()),
	}
	for i := 0; i < nTors; i++ {
		a := (r.Float64()*2 - 1) * math.Pi
		if r.Intn(5) == 0 {
			a = 0 // exercise the zero-angle skip
		}
		pl.Angles = append(pl.Angles, a)
	}
	return pl
}

// coordsReference replicates dock.Ligand.CoordsInto's exact operation
// sequence on a Placement: the AoS path the batched kernel must match
// to 0 ULP.
func coordsReference(tree *TorsionTree, base []Vec3, pl Placement) []Vec3 {
	var coords []Vec3
	if tree.NumTorsions() == 0 {
		coords = append(coords, base...)
	} else {
		coords = tree.ApplyTorsionsInto(nil, base, pl.Angles)
		c := Centroid(coords)
		for i := range coords {
			coords[i] = coords[i].Sub(c)
		}
	}
	q := pl.Orientation.Normalize()
	for i := range coords {
		coords[i] = q.Rotate(coords[i]).Add(pl.Translation)
	}
	return coords
}

// TestApplyTorsionsBatchMatchesAoS pins the 0-ULP contract of the
// batched kinematics kernel against the per-pose AoS sequence, across
// the batch sizes the engines use, with torsioned and rigid trees.
func TestApplyTorsionsBatchMatchesAoS(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	mols := []*Molecule{chainLike(9), chainLike(14), butaneLike()}
	trees := make([]*TorsionTree, 0, len(mols)+1)
	bases := make([][]Vec3, 0, len(mols)+1)
	for _, m := range mols {
		tree, err := BuildTorsionTree(m)
		if err != nil {
			t.Fatal(err)
		}
		if tree.NumTorsions() == 0 {
			t.Fatalf("molecule %s has no torsions; fixture too weak", m.Name)
		}
		trees = append(trees, tree)
		bases = append(bases, m.Positions())
	}
	// Rigid tree: the centroid re-centre is skipped in the reference.
	trees = append(trees, &TorsionTree{Root: 0})
	bases = append(bases, mols[0].Positions())

	for ti, tree := range trees {
		base := bases[ti]
		stride := len(base)
		var ks KinScratch
		for _, n := range []int{0, 1, 7, 64} {
			poses := make([]Placement, n)
			for i := range poses {
				poses[i] = randomPlacement(r, tree.NumTorsions())
			}
			xs := make([]float64, n*stride)
			ys := make([]float64, n*stride)
			zs := make([]float64, n*stride)
			tree.ApplyTorsionsBatch(&ks, base, poses, xs, ys, zs)
			for p, pl := range poses {
				want := coordsReference(tree, base, pl)
				for i, w := range want {
					at := p*stride + i
					if xs[at] != w.X || ys[at] != w.Y || zs[at] != w.Z {
						t.Fatalf("tree %d batch %d pose %d atom %d: (%v,%v,%v) != %v",
							ti, n, p, i, xs[at], ys[at], zs[at], w)
					}
				}
			}
		}
	}
}

// TestApplyTorsionsBatchScratchReuse pins that one KinScratch serves
// interleaved (tree, base) owners: prepare re-runs when the tree or
// conformation size changes and the results stay exact.
func TestApplyTorsionsBatchScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	mA := chainLike(9)
	mB := chainLike(13)
	treeA, _ := BuildTorsionTree(mA)
	treeB, _ := BuildTorsionTree(mB)
	baseA, baseB := mA.Positions(), mB.Positions()
	var ks KinScratch
	for round := 0; round < 4; round++ {
		tree, base := treeA, baseA
		if round%2 == 1 {
			tree, base = treeB, baseB
		}
		poses := []Placement{randomPlacement(r, tree.NumTorsions())}
		xs := make([]float64, len(base))
		ys := make([]float64, len(base))
		zs := make([]float64, len(base))
		tree.ApplyTorsionsBatch(&ks, base, poses, xs, ys, zs)
		want := coordsReference(tree, base, poses[0])
		for i, w := range want {
			if xs[i] != w.X || ys[i] != w.Y || zs[i] != w.Z {
				t.Fatalf("round %d atom %d mismatch after scratch switch", round, i)
			}
		}
	}
}

// TestApplyTorsionsBatchWarmAllocs pins the zero-alloc contract of the
// warm kernel.
func TestApplyTorsionsBatchWarmAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := chainLike(12)
	tree, _ := BuildTorsionTree(m)
	base := m.Positions()
	const n = 16
	poses := make([]Placement, n)
	for i := range poses {
		poses[i] = randomPlacement(r, tree.NumTorsions())
	}
	xs := make([]float64, n*len(base))
	ys := make([]float64, n*len(base))
	zs := make([]float64, n*len(base))
	var ks KinScratch
	tree.ApplyTorsionsBatch(&ks, base, poses, xs, ys, zs) // warm
	allocs := testing.AllocsPerRun(50, func() {
		tree.ApplyTorsionsBatch(&ks, base, poses, xs, ys, zs)
	})
	if allocs != 0 {
		t.Fatalf("warm ApplyTorsionsBatch allocates %.1f/op, want 0", allocs)
	}
}

func TestApplyTorsionsBatchPanics(t *testing.T) {
	m := chainLike(9)
	tree, _ := BuildTorsionTree(m)
	base := m.Positions()
	var ks KinScratch
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	lane := make([]float64, len(base))
	mustPanic("angle count", func() {
		tree.ApplyTorsionsBatch(&ks, base, []Placement{{Orientation: QuatIdentity}}, lane, lane, lane)
	})
	good := Placement{Orientation: QuatIdentity, Angles: make([]float64, tree.NumTorsions())}
	mustPanic("lane length", func() {
		tree.ApplyTorsionsBatch(&ks, base, []Placement{good, good}, lane, lane, lane)
	})
}

// TestRigidUnitsInvariance pins the property the fast scorers rely on:
// pairwise distances inside one rigid unit are invariant under any
// torsion angles, and the partition is maximal enough to separate
// atoms across a rotatable bond.
func TestRigidUnitsInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	m := chainLike(11)
	tree, err := BuildTorsionTree(m)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Positions()
	unit := tree.RigidUnits(len(base))
	if len(unit) != len(base) {
		t.Fatalf("unit len %d, want %d", len(unit), len(base))
	}
	nUnits := 0
	for _, u := range unit {
		if int(u)+1 > nUnits {
			nUnits = int(u) + 1
		}
	}
	if nUnits < 2 {
		t.Fatalf("only %d rigid units for %d torsions", nUnits, tree.NumTorsions())
	}
	angles := make([]float64, tree.NumTorsions())
	for trial := 0; trial < 50; trial++ {
		for i := range angles {
			angles[i] = (r.Float64()*2 - 1) * math.Pi
		}
		rot := tree.ApplyTorsions(base, angles)
		crossChanged := false
		for i := 0; i < len(base); i++ {
			for j := i + 1; j < len(base); j++ {
				d0 := base[i].Dist(base[j])
				d1 := rot[i].Dist(rot[j])
				if unit[i] == unit[j] {
					if math.Abs(d0-d1) > 1e-9 {
						t.Fatalf("trial %d: same-unit pair %d-%d distance %v -> %v",
							trial, i, j, d0, d1)
					}
				} else if math.Abs(d0-d1) > 1e-9 {
					crossChanged = true
				}
			}
		}
		if !crossChanged {
			t.Fatalf("trial %d: no cross-unit distance changed; partition too coarse", trial)
		}
	}
	// Axis atoms of a torsion sit on both sides geometrically but must
	// belong to the non-moved unit (they do not rotate).
	for k, tor := range tree.Torsions {
		for _, idx := range tor.Moved {
			if idx == tor.Axis2 {
				continue
			}
			if unit[idx] == unit[tor.Axis1] {
				t.Fatalf("torsion %d: moved atom %d shares unit with axis1 %d", k, idx, tor.Axis1)
			}
		}
	}
}

func BenchmarkApplyTorsionsBatch16(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	m := chainLike(24)
	tree, _ := BuildTorsionTree(m)
	base := m.Positions()
	const n = 16
	poses := make([]Placement, n)
	for i := range poses {
		poses[i] = randomPlacement(r, tree.NumTorsions())
	}
	xs := make([]float64, n*len(base))
	ys := make([]float64, n*len(base))
	zs := make([]float64, n*len(base))
	var ks KinScratch
	tree.ApplyTorsionsBatch(&ks, base, poses, xs, ys, zs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.ApplyTorsionsBatch(&ks, base, poses, xs, ys, zs)
	}
}
