package dock

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chem"
)

func randomPoses(t testing.TB, lig *Ligand, n int) []Pose {
	t.Helper()
	r := rand.New(rand.NewSource(17))
	box := Box{Center: chem.Vec3{}, Size: chem.V(20, 20, 20)}
	poses := make([]Pose, n)
	for i := range poses {
		poses[i] = RandomPose(r, box, lig.NumTorsions())
	}
	return poses
}

func TestCoordsIntoMatchesCoords(t *testing.T) {
	for _, code := range []string{"0E6", "0D6"} {
		lig := testLigand(t, code)
		buf := make([]chem.Vec3, 0, lig.Mol.NumAtoms())
		for _, p := range randomPoses(t, lig, 20) {
			want := lig.Coords(p)
			got := lig.CoordsInto(p, buf)
			buf = got // reuse across iterations, as a search loop would
			if len(got) != len(want) {
				t.Fatalf("%s: len %d vs %d", code, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s atom %d: CoordsInto %v vs Coords %v", code, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPoseSetCopies(t *testing.T) {
	src := Pose{
		Translation: chem.V(1, 2, 3),
		Orientation: chem.QuatIdentity,
		Torsions:    []float64{0.1, -0.2, 0.3},
	}
	var dst Pose
	dst.Set(src)
	if dst.Translation != src.Translation || dst.Orientation != src.Orientation {
		t.Fatal("rigid genes not copied")
	}
	dst.Torsions[0] = 99
	if src.Torsions[0] != 0.1 {
		t.Fatal("Set aliased the source torsions")
	}
	// Reusing dst keeps its storage.
	before := &dst.Torsions[0]
	dst.Set(src)
	if &dst.Torsions[0] != before {
		t.Fatal("Set reallocated existing torsion storage")
	}
}

func TestPerturbIntoMatchesPerturb(t *testing.T) {
	lig := testLigand(t, "0E6")
	src := randomPoses(t, lig, 1)[0]
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	dst := Pose{Torsions: make([]float64, 0, lig.NumTorsions())}
	for i := 0; i < 10; i++ {
		want := Perturb(r1, src, 1.5, 0.4)
		PerturbInto(r2, &dst, src, 1.5, 0.4)
		if want.Translation != dst.Translation || want.Orientation != dst.Orientation {
			t.Fatalf("iter %d: rigid genes diverge", i)
		}
		for k := range want.Torsions {
			if want.Torsions[k] != dst.Torsions[k] {
				t.Fatalf("iter %d torsion %d: %v vs %v", i, k, want.Torsions[k], dst.Torsions[k])
			}
		}
	}
}

func TestRandomPoseIntoMatchesRandomPose(t *testing.T) {
	box := Box{Center: chem.V(1, -2, 3), Size: chem.V(18, 22, 26)}
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	dst := Pose{Torsions: make([]float64, 0, 5)}
	for i := 0; i < 10; i++ {
		want := RandomPose(r1, box, 5)
		RandomPoseInto(r2, &dst, box, 5)
		if want.Translation != dst.Translation || want.Orientation != dst.Orientation {
			t.Fatalf("iter %d: rigid genes diverge", i)
		}
		for k := range want.Torsions {
			if want.Torsions[k] != dst.Torsions[k] {
				t.Fatalf("iter %d torsion %d differs", i, k)
			}
		}
	}
}

func TestWorkspaceGetPutRecycles(t *testing.T) {
	lig := testLigand(t, "0E6")
	ws := NewWorkspace(lig)
	if ws.Ligand() != lig {
		t.Fatal("workspace lost its ligand")
	}
	p := ws.Get()
	if cap(p.Torsions) < lig.NumTorsions() {
		t.Fatalf("scratch pose capacity %d < %d torsions", cap(p.Torsions), lig.NumTorsions())
	}
	ws.Put(p)
	if q := ws.Get(); q != p {
		t.Fatal("Put pose not recycled by next Get")
	}
}

// countingScorer is an allocation-free stand-in for the engines'
// scorers, so the workspace contract can be pinned without grids.
type countingScorer struct{ n int }

func (c *countingScorer) Score(coords []chem.Vec3) float64 {
	c.n++
	var e float64
	for _, p := range coords {
		e += p.Dot(p)
	}
	return e
}

// TestWorkspaceEvalZeroAllocs pins the tentpole contract: one full
// candidate evaluation — clone the pose, perturb it, clamp, build
// coordinates, score — allocates nothing once the workspace is warm.
func TestWorkspaceEvalZeroAllocs(t *testing.T) {
	lig := testLigand(t, "0E6")
	ws := NewWorkspace(lig)
	box := Box{Center: chem.Vec3{}, Size: chem.V(22, 22, 22)}
	r := rand.New(rand.NewSource(3))
	sc := &countingScorer{}
	cur, cand := ws.Get(), ws.Get()
	RandomPoseInto(r, cur, box, lig.NumTorsions())
	sink := 0.0
	allocs := testing.AllocsPerRun(200, func() {
		PerturbInto(r, cand, *cur, 1.0, 0.3)
		ClampToBox(cand, box)
		sink += sc.Score(ws.Coords(*cand))
	})
	if allocs != 0 {
		t.Fatalf("candidate evaluation allocates %v objects/op, want 0", allocs)
	}
	if math.IsNaN(sink) {
		t.Fatal("scores degenerate")
	}
}

// TestRefineWorkspaceZeroAllocs pins the refinement path: with a
// caller-owned workspace, Refine's per-iteration work allocates
// nothing (only the returned result pose is fresh).
func TestRefineZeroAllocsPerCandidate(t *testing.T) {
	lig := testLigand(t, "0E6")
	ws := NewWorkspace(lig)
	box := Box{Center: chem.Vec3{}, Size: chem.V(22, 22, 22)}
	start := randomPoses(t, lig, 1)[0]
	sc := &countingScorer{}
	// Warm the workspace, then count allocations of an entire
	// refinement divided by its evaluations.
	if _, err := RefineWorkspace(sc, lig, box, start, 50, 9, ws); err != nil {
		t.Fatal(err)
	}
	sc.n = 0
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := RefineWorkspace(sc, lig, box, start, 50, 9, ws); err != nil {
			t.Fatal(err)
		}
	})
	// One Clone (2 allocs: pose header escape + torsion slice) per
	// refinement is the result copy; everything per-candidate is free.
	if perEval := allocs / 50; perEval > 0.2 {
		t.Fatalf("refine allocates %.1f objects per full run (%.2f/candidate), want O(1) for the result only",
			allocs, perEval)
	}
}

func BenchmarkWorkspaceEval(b *testing.B) {
	raw := testLigand(b, "0E6")
	ws := NewWorkspace(raw)
	box := Box{Center: chem.Vec3{}, Size: chem.V(22, 22, 22)}
	r := rand.New(rand.NewSource(3))
	sc := &countingScorer{}
	cur, cand := ws.Get(), ws.Get()
	RandomPoseInto(r, cur, box, raw.NumTorsions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PerturbInto(r, cand, *cur, 1.0, 0.3)
		ClampToBox(cand, box)
		_ = sc.Score(ws.Coords(*cand))
	}
}
