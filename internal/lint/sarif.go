package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output, the interchange format CI systems (GitHub code
// scanning, Azure DevOps, ...) ingest natively. The encoder emits one
// run with one rule per registered analyzer — every analyzer appears
// in tool.driver.rules even when it produced no results, so a SARIF
// consumer can distinguish "check ran clean" from "check not run" —
// and one result per diagnostic, linked to its rule by id and index.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string       `json:"id"`
	ShortDesc sarifMessage `json:"shortDescription"`
	Default   sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps the internal severity to SARIF's level vocabulary.
func sarifLevel(s Severity) string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// WriteSARIF encodes the diagnostics as an indented SARIF 2.1.0 log.
// Rules are emitted in the analyzers' registry order; results keep the
// diagnostics' order (Run already sorts by position). Diagnostics from
// analyzers outside the rule list are skipped — they cannot be linked.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		ruleIndex[a.Name] = i
		rules[i] = sarifRule{
			ID:        a.Name,
			ShortDesc: sarifMessage{Text: a.Doc},
			Default:   sarifConfig{Level: sarifLevel(a.Severity)},
		}
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			continue
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     sarifLevel(d.Severity),
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: filepath.ToSlash(d.Pos.Filename)},
				Region:   sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "scilint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
