package simfs

import (
	"strings"
	"sync"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	wt, err := fs.Write("/exp/a.txt", []byte("hello"))
	if err != nil || wt <= 0 {
		t.Fatalf("write: %v, latency %v", err, wt)
	}
	data, rt, err := fs.Read("/exp/a.txt")
	if err != nil || rt <= 0 {
		t.Fatalf("read: %v, latency %v", err, rt)
	}
	if string(data) != "hello" {
		t.Errorf("data = %q", data)
	}
	// Returned slice is a copy.
	data[0] = 'X'
	again, _, _ := fs.Read("/exp/a.txt")
	if string(again) != "hello" {
		t.Error("read returned aliased storage")
	}
}

func TestPathValidation(t *testing.T) {
	fs := New()
	if _, err := fs.Write("relative.txt", nil); err == nil {
		t.Error("relative path accepted")
	}
	if _, err := fs.Write("/a/../../etc", nil); err == nil {
		t.Error("escaping path accepted")
	}
	if _, err := fs.Write("/a//b/./c.txt", []byte("x")); err != nil {
		t.Errorf("messy but valid path rejected: %v", err)
	}
	if !fs.Exists("/a/b/c.txt") {
		t.Error("canonicalization broken")
	}
}

func TestStatRemoveExists(t *testing.T) {
	fs := New()
	fs.Write("/d/f.map", make([]byte, 1234))
	n, err := fs.Stat("/d/f.map")
	if err != nil || n != 1234 {
		t.Errorf("stat = %d, %v", n, err)
	}
	if _, err := fs.Stat("/missing"); err == nil {
		t.Error("stat of missing file accepted")
	}
	if err := fs.Remove("/d/f.map"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d/f.map") {
		t.Error("file survives removal")
	}
	if err := fs.Remove("/d/f.map"); err == nil {
		t.Error("double remove accepted")
	}
	if _, _, err := fs.Read("/d/f.map"); err == nil ||
		!strings.Contains(err.Error(), "no such file") {
		t.Errorf("read of removed file: %v", err)
	}
}

func TestList(t *testing.T) {
	fs := New()
	fs.Write("/exp/run1/a.dlg", []byte("1"))
	fs.Write("/exp/run1/b.dlg", []byte("2"))
	fs.Write("/exp/run2/c.dlg", []byte("3"))
	fs.Write("/other/x", []byte("4"))
	got, err := fs.List("/exp/run1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "/exp/run1/a.dlg" {
		t.Errorf("list = %v", got)
	}
	all, _ := fs.List("/")
	if len(all) != 4 {
		t.Errorf("root list = %v", all)
	}
	// Prefix must be a path component boundary.
	fs.Write("/exp/run10/z", []byte("5"))
	got, _ = fs.List("/exp/run1")
	if len(got) != 2 {
		t.Errorf("prefix boundary violated: %v", got)
	}
}

func TestCounters(t *testing.T) {
	fs := New()
	fs.Write("/a", make([]byte, 100))
	fs.Write("/b", make([]byte, 50))
	fs.Read("/a")
	ops, br, bw := fs.Stats()
	if ops != 3 || br != 100 || bw != 150 {
		t.Errorf("stats = %d %d %d", ops, br, bw)
	}
	if fs.TotalBytes() != 150 {
		t.Errorf("total = %d", fs.TotalBytes())
	}
}

func TestLatencyScalesWithSize(t *testing.T) {
	fs := New()
	small, _ := fs.Write("/s", make([]byte, 1))
	big, _ := fs.Write("/b", make([]byte, 100*1024*1024))
	if big <= small {
		t.Errorf("big write (%v) not slower than small (%v)", big, small)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				path := "/w/" + string(rune('a'+id)) + "/f.txt"
				fs.Write(path, []byte("data"))
				fs.Read(path)
				fs.List("/w")
			}
		}(i)
	}
	wg.Wait()
	if got, _ := fs.List("/w"); len(got) != 8 {
		t.Errorf("files after concurrent writes = %d", len(got))
	}
}
