package workflow

import (
	"strings"
	"testing"
)

func noop(in Tuple) (*ActivationResult, error) {
	return &ActivationResult{Outputs: []Tuple{in}}, nil
}

func chainWorkflow() *Workflow {
	return &Workflow{
		Tag: "W", Description: "test", ExecTag: "w", ExpDir: "/exp/",
		Activities: []*Activity{
			{Tag: "a", Op: Map, Run: noop},
			{Tag: "b", Op: Map, Depends: []string{"a"}, Run: noop},
			{Tag: "c", Op: Filter, Depends: []string{"b"}, Run: noop},
		},
	}
}

func TestTupleOps(t *testing.T) {
	tp := Tuple{"LIGAND": "0E6", "RECEPTOR": "2HHN"}
	c := tp.Clone()
	c["LIGAND"] = "042"
	if tp["LIGAND"] != "0E6" {
		t.Error("clone aliases storage")
	}
	m := tp.Merge(Tuple{"PROGRAM": "vina", "LIGAND": "074"})
	if m["PROGRAM"] != "vina" || m["LIGAND"] != "074" || tp["LIGAND"] != "0E6" {
		t.Errorf("merge = %v", m)
	}
	if _, err := tp.Get("MISSING"); err == nil || !strings.Contains(err.Error(), "MISSING") {
		t.Errorf("missing field: %v", err)
	}
	if v, err := tp.Get("LIGAND"); err != nil || v != "0E6" {
		t.Errorf("get = %v, %v", v, err)
	}
	if s := tp.String(); s != "LIGAND=0E6 RECEPTOR=2HHN" {
		t.Errorf("string = %q", s)
	}
}

func TestWorkflowValidate(t *testing.T) {
	if err := chainWorkflow().Validate(); err != nil {
		t.Errorf("valid workflow rejected: %v", err)
	}
	w := chainWorkflow()
	w.Activities[1].Depends = []string{"zz"}
	if err := w.Validate(); err == nil {
		t.Error("unknown dependency accepted")
	}
	w = chainWorkflow()
	w.Activities = append(w.Activities, &Activity{Tag: "a", Op: Map, Run: noop})
	if err := w.Validate(); err == nil {
		t.Error("duplicate tag accepted")
	}
	w = chainWorkflow()
	w.Activities[0].Run = nil
	if err := w.Validate(); err == nil {
		t.Error("missing Run accepted")
	}
	w = chainWorkflow()
	w.Activities[0].Depends = []string{"c"} // cycle a->c->b->a
	if err := w.Validate(); err == nil {
		t.Error("cycle accepted")
	}
	if err := (&Workflow{Tag: "x"}).Validate(); err == nil {
		t.Error("empty workflow accepted")
	}
	r := &Activity{Tag: "r", Op: Reduce, Run: noop}
	w = &Workflow{Tag: "w", Activities: []*Activity{r}}
	if err := w.Validate(); err == nil {
		t.Error("reduce without group key accepted")
	}
}

func TestTopoOrderAndStages(t *testing.T) {
	// Diamond: a -> (b, c) -> d
	w := &Workflow{
		Tag: "D",
		Activities: []*Activity{
			{Tag: "d", Op: Map, Depends: []string{"b", "c"}, Run: noop},
			{Tag: "b", Op: Map, Depends: []string{"a"}, Run: noop},
			{Tag: "c", Op: Map, Depends: []string{"a"}, Run: noop},
			{Tag: "a", Op: Map, Run: noop},
		},
	}
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, a := range order {
		pos[a.Tag] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Errorf("topo order wrong: %v", pos)
	}
	stages, err := w.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("stages = %d", len(stages))
	}
	if len(stages[1]) != 2 {
		t.Errorf("middle stage = %d activities", len(stages[1]))
	}
}

func TestCheckFanOut(t *testing.T) {
	mk := func(n int) *ActivationResult {
		r := &ActivationResult{}
		for i := 0; i < n; i++ {
			r.Outputs = append(r.Outputs, Tuple{})
		}
		return r
	}
	cases := []struct {
		op Operator
		n  int
		ok bool
	}{
		{Map, 1, true}, {Map, 0, false}, {Map, 2, false},
		{SplitMap, 1, true}, {SplitMap, 3, true}, {SplitMap, 0, false},
		{Filter, 0, true}, {Filter, 1, true}, {Filter, 2, false},
		{Reduce, 1, true}, {Reduce, 0, false},
	}
	for _, c := range cases {
		a := &Activity{Tag: "t", Op: c.op}
		err := a.CheckFanOut(mk(c.n))
		if (err == nil) != c.ok {
			t.Errorf("%s with %d outputs: err=%v", c.op, c.n, err)
		}
	}
}

func TestOperatorParse(t *testing.T) {
	for _, s := range []string{"MAP", "SPLIT_MAP", "FILTER", "REDUCE", ""} {
		if _, err := ParseOperator(s); err != nil {
			t.Errorf("ParseOperator(%q): %v", s, err)
		}
	}
	if _, err := ParseOperator("JOIN"); err == nil {
		t.Error("unknown operator accepted")
	}
	if Map.String() != "MAP" || SplitMap.String() != "SPLIT_MAP" {
		t.Error("operator names wrong")
	}
}

func TestInstantiate(t *testing.T) {
	tpl := "./babel -isdf %LIGAND%.sdf -omol2 %LIGAND%.mol2 -d %EXPDIR%"
	tup := Tuple{"LIGAND": "0E6", "EXPDIR": "/root/scidock"}
	cmd, err := Instantiate(tpl, tup)
	if err != nil {
		t.Fatal(err)
	}
	want := "./babel -isdf 0E6.sdf -omol2 0E6.mol2 -d /root/scidock"
	if cmd != want {
		t.Errorf("cmd = %q", cmd)
	}
	if _, err := Instantiate("%MISSING% %LIGAND%", tup); err == nil ||
		!strings.Contains(err.Error(), "MISSING") {
		t.Errorf("unbound tag: %v", err)
	}
	tags := TemplateTags(tpl)
	if len(tags) != 2 || tags[0] != "LIGAND" || tags[1] != "EXPDIR" {
		t.Errorf("tags = %v", tags)
	}
}
