package parallel

import (
	"sync"
	"testing"
)

func TestTryAcquireRelease(t *testing.T) {
	p := NewPool(4)
	if got := p.TryAcquire(3); got != 3 {
		t.Fatalf("TryAcquire(3) = %d, want 3", got)
	}
	if got := p.TryAcquire(3); got != 1 {
		t.Fatalf("TryAcquire(3) on depleted pool = %d, want 1", got)
	}
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire(1) on empty pool = %d, want 0", got)
	}
	p.Release(4)
	if got := p.InUse(); got != 0 {
		t.Fatalf("InUse after full release = %d", got)
	}
	if got := p.TryAcquire(-2); got != 0 {
		t.Fatalf("negative request granted %d tokens", got)
	}
	p.Release(0) // no-op
	p.Release(-1)
}

func TestReleaseOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	NewPool(2).Release(1)
}

func TestGrabDegradesToSequential(t *testing.T) {
	p := NewPool(3)
	w1, rel1 := p.Grab(8)
	if w1 != 4 {
		t.Fatalf("first Grab(8) = %d workers, want 4 (caller + 3 tokens)", w1)
	}
	// Nested fan-out while the outer level holds everything: runs
	// sequentially instead of oversubscribing.
	w2, rel2 := p.Grab(8)
	if w2 != 1 {
		t.Fatalf("nested Grab(8) = %d workers, want 1", w2)
	}
	rel2()
	rel1()
	rel1() // idempotent
	if got := p.InUse(); got != 0 {
		t.Fatalf("tokens leaked: InUse = %d", got)
	}
	// After release the budget is whole again.
	if w3, rel3 := p.Grab(2); w3 != 2 {
		t.Fatalf("Grab(2) after release = %d workers, want 2", w3)
	} else {
		rel3()
	}
}

func TestGrabSingleWorkerBypassesPool(t *testing.T) {
	p := NewPool(0)
	w, rel := p.Grab(1)
	if w != 1 {
		t.Fatalf("Grab(1) = %d", w)
	}
	rel()
	w, rel = p.Grab(6)
	if w != 1 {
		t.Fatalf("Grab(6) on zero-capacity pool = %d, want 1", w)
	}
	rel()
}

func TestNegativeCapacityClamps(t *testing.T) {
	p := NewPool(-5)
	if p.Cap() != 0 {
		t.Fatalf("Cap = %d, want 0", p.Cap())
	}
}

func TestGlobalPoolSized(t *testing.T) {
	if Tokens() == nil {
		t.Fatal("global pool missing")
	}
	if Tokens().Cap() < 0 {
		t.Fatalf("global capacity %d negative", Tokens().Cap())
	}
}

// TestConcurrentGrab hammers the pool from many goroutines under
// -race: the invariant is that outstanding tokens never exceed
// capacity and everything is returned at the end.
func TestConcurrentGrab(t *testing.T) {
	p := NewPool(5)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				w, rel := p.Grab(4)
				if w < 1 || w > 4 {
					t.Errorf("Grab(4) = %d workers", w)
				}
				rel()
			}
		}()
	}
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Fatalf("tokens leaked: InUse = %d", got)
	}
}
