// Package parallel provides the process-wide CPU token budget shared
// by every fan-out point in the pipeline: engine activation workers,
// grid.Generate slab pools and the per-pair conformational-search
// pools of the Vina and AD4 engines.
//
// The problem it solves is nested parallelism: the engine fans
// activations across GOMAXPROCS goroutines, and each activation may
// itself want to fan out its search chains or grid slabs. Without a
// shared budget the levels multiply (engine P × search E goroutines)
// and the process oversubscribes the machine, which slows everything
// down and wrecks the tail latency the paper's schedulers reason
// about. With the budget, inner fan-outs degrade gracefully: when the
// outer level already holds every token, Grab grants no extras and
// the inner loop simply runs sequentially on its own goroutine.
//
// The accounting convention is that every running goroutine already
// owns one implicit token — its right to execute — so a fan-out to n
// workers needs only n-1 extra tokens. The global pool therefore has
// capacity GOMAXPROCS-1: with every token granted, exactly GOMAXPROCS
// goroutines are doing CPU work. Acquisition never blocks (a blocking
// nested acquire could deadlock against the level that holds the
// tokens); callers take what is available and proceed.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a weighted CPU-token pool. The zero value is unusable; use
// NewPool or the process-global Tokens.
type Pool struct {
	mu       sync.Mutex
	cap      int
	out      int
	accounts int // open Accounts (fair-share divisor)
}

// NewPool builds a pool with the given capacity (extra workers beyond
// the callers themselves). Negative capacities clamp to zero.
func NewPool(capacity int) *Pool {
	if capacity < 0 {
		capacity = 0
	}
	return &Pool{cap: capacity}
}

// global is the process-wide budget, sized once at startup so that a
// fully granted pool plus the root goroutine equals GOMAXPROCS.
var global = NewPool(runtime.GOMAXPROCS(0) - 1)

// Tokens returns the process-global pool consumed by the engine, the
// grid slab workers and the search pools.
func Tokens() *Pool { return global }

// Cap returns the pool's total token capacity.
func (p *Pool) Cap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cap
}

// InUse returns the number of tokens currently granted.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out
}

// TryAcquire grants up to want tokens without blocking and returns
// how many were granted (possibly zero). Negative requests grant
// zero.
func (p *Pool) TryAcquire(want int) int {
	if want <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	free := p.cap - p.out
	if want > free {
		want = free
	}
	p.out += want
	return want
}

// Release returns n tokens to the pool. Releasing more than is
// outstanding is a caller accounting bug and panics.
func (p *Pool) Release(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.out {
		panic(fmt.Sprintf("parallel: release of %d tokens with %d outstanding", n, p.out))
	}
	p.out -= n
}

// Grab sizes a fan-out that would like want workers in total: the
// caller's own goroutine plus as many extra tokens as the pool can
// spare, never exceeding want. It returns the worker count to use
// (always ≥ 1, so exhaustion degrades to sequential execution rather
// than blocking) and a release function that must be called exactly
// once when the fan-out completes; release is idempotent so it is
// safe to defer.
func (p *Pool) Grab(want int) (workers int, release func()) {
	if want <= 1 {
		return 1, func() {}
	}
	extra := p.TryAcquire(want - 1)
	var once sync.Once
	return 1 + extra, func() {
		once.Do(func() { p.Release(extra) })
	}
}

// Occupancy reports the pool's capacity, the tokens currently granted
// and the number of open accounts — the numbers a campaign service
// surfaces in its status endpoint.
func (p *Pool) Occupancy() (capacity, inUse, accounts int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cap, p.out, p.accounts
}

// fairShareLocked is the per-account holding cap: with A open
// accounts and capacity C, each account may hold at most ceil(C/A)
// tokens, so no single campaign's fan-outs can monopolize the budget
// while others are active. Callers hold p.mu.
func (p *Pool) fairShareLocked() int {
	if p.accounts <= 1 {
		return p.cap
	}
	return (p.cap + p.accounts - 1) / p.accounts
}

// Account is one campaign's view of a shared Pool. Every token an
// account grabs is charged against both the pool and the account, and
// the account's outstanding tokens are capped at the pool's fair
// share (capacity / open accounts, rounded up). N concurrent
// campaigns therefore degrade fairly: a second campaign arriving
// mid-flight is guaranteed its share of future grants instead of
// finding the budget drained by whichever campaign fanned out first.
// Accounts never block and never grant below the caller's own
// goroutine, so exhaustion still degrades to sequential execution.
type Account struct {
	pool *Pool

	mu     sync.Mutex
	held   int
	closed bool
}

// NewAccount opens a per-campaign account on the pool. Close it when
// the campaign ends so the fair share of the remaining campaigns
// grows back.
func (p *Pool) NewAccount() *Account {
	p.mu.Lock()
	p.accounts++
	p.mu.Unlock()
	return &Account{pool: p}
}

// TryAcquire grants up to want tokens without blocking, limited by
// both the pool's free tokens and the account's fair share, and
// returns how many were granted (possibly zero).
func (a *Account) TryAcquire(want int) int {
	if want <= 0 {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0
	}
	p := a.pool
	p.mu.Lock()
	if shareLeft := p.fairShareLocked() - a.held; want > shareLeft {
		want = shareLeft
	}
	if free := p.cap - p.out; want > free {
		want = free
	}
	if want < 0 {
		want = 0
	}
	p.out += want
	p.mu.Unlock()
	a.held += want
	return want
}

// Release returns n of the account's tokens to the pool. Releasing
// more than the account holds is a caller accounting bug and panics.
func (a *Account) Release(n int) {
	if n <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.held {
		panic(fmt.Sprintf("parallel: account release of %d tokens with %d held", n, a.held))
	}
	a.held -= n
	a.pool.Release(n)
}

// Grab mirrors Pool.Grab through the account: worker count to use
// (always ≥ 1) plus an idempotent release function.
func (a *Account) Grab(want int) (workers int, release func()) {
	if want <= 1 {
		return 1, func() {}
	}
	extra := a.TryAcquire(want - 1)
	var once sync.Once
	return 1 + extra, func() {
		once.Do(func() { a.Release(extra) })
	}
}

// Held returns the account's outstanding tokens.
func (a *Account) Held() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.held
}

// Close unregisters the account. Any tokens still held are returned
// to the pool (a campaign's fan-outs release through their own
// release funcs before the campaign ends, so a nonzero remainder is
// defensive). Close is idempotent; a closed account grants nothing.
func (a *Account) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	if a.held > 0 {
		a.pool.Release(a.held)
		a.held = 0
	}
	p := a.pool
	p.mu.Lock()
	p.accounts--
	p.mu.Unlock()
}
