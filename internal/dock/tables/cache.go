package tables

import (
	"sync"

	"repro/internal/chem"
)

// kind discriminates the cached table families.
type kind uint8

const (
	kindAD4Smoothed kind = iota
	kindAD4Raw
	kindVina
	kindElec
	kindDesolv
)

// variant discriminates the node-storage representation of a cached
// table. The float64 and float32 map paths tabulate the same analytic
// form on the same two-segment geometry but store different node
// types; without the variant in the key a campaign mixing both
// representations in one process would be served a table of the wrong
// concrete type for the later representation to arrive.
type variant uint8

const (
	variantF64 variant = iota
	variantF32
)

// key identifies one table. Pair potentials are symmetric, so pair
// keys are normalized to a ≤ b before lookup.
type key struct {
	k    kind
	v    variant
	a, b chem.AtomType
}

// cache holds every built table for the process lifetime. Tables are
// pure functions of the force-field parameters, so the first builder
// to finish wins and every later caller shares the same node slice.
var cache sync.Map // key -> *Radial | *Radial32

func lookup[T any](k key, build func() T) T {
	if v, ok := cache.Load(k); ok {
		return v.(T)
	}
	v, _ := cache.LoadOrStore(k, build())
	return v.(T)
}

func pairKey(k kind, v variant, a, b chem.AtomType) key {
	if b < a {
		a, b = b, a
	}
	return key{k: k, v: v, a: a, b: b}
}

// AD4Smoothed returns the AutoGrid-smoothed AD4 dispersion/H-bond
// potential for a (probe, receptor) type pair, with the r ≥ RMin clamp
// baked in — exactly what map generation accumulates per lattice
// point.
func AD4Smoothed(probe, rec chem.AtomType) *Radial {
	pa, pb := probe.Params(), rec.Params()
	return lookup(pairKey(kindAD4Smoothed, variantF64, probe, rec), func() *Radial {
		return NewRadial(func(r float64) float64 {
			if r < RMin {
				r = RMin
			}
			return PairEnergySmoothed(pa, pb, r, SmoothRadius)
		})
	})
}

// AD4Smoothed32 is AD4Smoothed tabulated with float32 nodes — the
// table the float32 grid-map generation path accumulates from.
func AD4Smoothed32(probe, rec chem.AtomType) *Radial32 {
	pa, pb := probe.Params(), rec.Params()
	return lookup(pairKey(kindAD4Smoothed, variantF32, probe, rec), func() *Radial32 {
		return NewRadial32(func(r float64) float64 {
			if r < RMin {
				r = RMin
			}
			return PairEnergySmoothed(pa, pb, r, SmoothRadius)
		})
	})
}

// AD4Pair returns the unsmoothed AD4 pair potential with the r ≥ RMin
// clamp baked in — the form the AD4 intramolecular energy uses.
func AD4Pair(a, b chem.AtomType) *Radial {
	pa, pb := a.Params(), b.Params()
	return lookup(pairKey(kindAD4Raw, variantF64, a, b), func() *Radial {
		return NewRadial(func(r float64) float64 {
			if r < RMin {
				r = RMin
			}
			return PairEnergy(pa, pb, r)
		})
	})
}

// Vina returns the Vina pairwise term for a type pair. No distance
// clamp: the analytic form is finite everywhere, and sub-RMin queries
// only arise in deep clashes the optimizer rejects anyway.
func Vina(a, b chem.AtomType) *Radial {
	pa, pb := a.Params(), b.Params()
	return lookup(pairKey(kindVina, variantF64, a, b), func() *Radial {
		return NewRadial(func(r float64) float64 {
			return VinaPair(pa, pb, r)
		})
	})
}

// Electrostatic returns the unit-charge Mehler–Solmajer Coulomb table
// (multiply by the receptor atom's charge), r ≥ RMin clamp baked in.
func Electrostatic() *Radial {
	return lookup(key{k: kindElec, v: variantF64}, func() *Radial {
		return NewRadial(func(r float64) float64 {
			if r < RMin {
				r = RMin
			}
			return ElecScale(r)
		})
	})
}

// Desolvation returns the gaussian desolvation weight table (multiply
// by DesolvCoeff of the receptor atom), r ≥ RMin clamp baked in.
func Desolvation() *Radial {
	return lookup(key{k: kindDesolv, v: variantF64}, func() *Radial {
		return NewRadial(func(r float64) float64 {
			if r < RMin {
				r = RMin
			}
			return DesolvWeight(r)
		})
	})
}

// Electrostatic32 is Electrostatic with float32 nodes, for the
// float32 map generation path.
func Electrostatic32() *Radial32 {
	return lookup(key{k: kindElec, v: variantF32}, func() *Radial32 {
		return NewRadial32(func(r float64) float64 {
			if r < RMin {
				r = RMin
			}
			return ElecScale(r)
		})
	})
}

// Desolvation32 is Desolvation with float32 nodes, for the float32
// map generation path.
func Desolvation32() *Radial32 {
	return lookup(key{k: kindDesolv, v: variantF32}, func() *Radial32 {
		return NewRadial32(func(r float64) float64 {
			if r < RMin {
				r = RMin
			}
			return DesolvWeight(r)
		})
	})
}
