package prov

import (
	"sync"
	"time"
)

// defaultAppendLimit is the buffered-row cap before an automatic
// flush. Small enough that a crash mid-campaign loses at most one
// batch, large enough to amortize the per-table lock.
const defaultAppendLimit = 64

// Appender batches provenance inserts so the engine's per-placement
// writes (BeginActivation + CloseActivation + hfile + ddocking per
// activation) reach each table as one InsertBatch under a single lock
// acquisition instead of four lock round-trips. Rows are validated at
// append time (same error behavior as direct inserts) and flushed in
// insertion order at deterministic points — the buffer cap, before any
// OnStageComplete steering hook, and at end of run — so the final
// table contents are byte-identical to unbatched writes.
//
// A Begin/Close pair that both land in the same buffer window never
// touches the database's update path at all: CloseActivation rewrites
// the still-buffered RUNNING row in place. Closes arriving after the
// row flushed fall through to the indexed DB.CloseActivation.
type Appender struct {
	db    *DB
	limit int

	mu    sync.Mutex
	order []string             // tables in first-append order
	buf   map[string][][]Value // pending rows per table
	open  map[int64][]Value    // taskid → buffered RUNNING hactivation row
	n     int
}

// NewAppender wraps db in a buffered appender; limit <= 0 selects the
// default buffer cap.
func NewAppender(db *DB, limit int) *Appender {
	if limit <= 0 {
		limit = defaultAppendLimit
	}
	return &Appender{
		db:    db,
		limit: limit,
		buf:   make(map[string][][]Value),
		open:  make(map[int64][]Value),
	}
}

// add validates and buffers one row; the caller holds a.mu and must
// not retain the slice.
func (a *Appender) add(table string, row []Value) error {
	t, err := a.db.lookupTable(table)
	if err != nil {
		return err
	}
	if err := t.checkRow(table, row); err != nil {
		return err
	}
	if _, ok := a.buf[table]; !ok {
		a.order = append(a.order, table)
	}
	a.buf[table] = append(a.buf[table], row)
	a.n++
	return nil
}

// flushLocked drains every buffered table in first-append order.
func (a *Appender) flushLocked() error {
	for _, table := range a.order {
		rows := a.buf[table]
		if len(rows) == 0 {
			continue
		}
		if err := a.db.InsertBatch(table, rows); err != nil {
			return err
		}
		a.buf[table] = rows[:0]
	}
	clear(a.open)
	a.n = 0
	return nil
}

func (a *Appender) maybeFlushLocked() error {
	if a.n >= a.limit {
		return a.flushLocked()
	}
	return nil
}

// Flush publishes all buffered rows to the database.
func (a *Appender) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushLocked()
}

// Pending returns the number of buffered, not-yet-flushed rows.
func (a *Appender) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// InsertActivation buffers a terminal hactivation row (see
// DB.InsertActivation).
func (a *Appender) InsertActivation(taskid, actid, wkfid int64, status string, start, end time.Time, vmid string, failures int64, command string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.add(TableActivation, []Value{
		taskid, actid, wkfid, status, start, end, vmid, failures, command,
	}); err != nil {
		return err
	}
	return a.maybeFlushLocked()
}

// BeginActivation buffers a RUNNING hactivation row and remembers it
// by taskid so a CloseActivation arriving before the next flush can
// complete it in the buffer.
func (a *Appender) BeginActivation(taskid, actid, wkfid int64, start time.Time, vmid, command string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	row := []Value{taskid, actid, wkfid, StatusRunning, start, start, vmid, int64(0), command}
	if err := a.add(TableActivation, row); err != nil {
		return err
	}
	a.open[taskid] = row
	return a.maybeFlushLocked()
}

// CloseActivation completes an activation: in the buffer when its
// RUNNING row has not flushed yet, otherwise through the database's
// indexed point update.
func (a *Appender) CloseActivation(taskid int64, status string, end time.Time, failures int64) error {
	a.mu.Lock()
	if row, ok := a.open[taskid]; ok {
		row[3] = status
		row[5] = end
		row[7] = failures
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()
	return a.db.CloseActivation(taskid, status, end, failures)
}

// InsertFile buffers an hfile row (see DB.InsertFile).
func (a *Appender) InsertFile(fileid, taskid, actid, wkfid int64, fname string, fsize int64, fdir string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.add(TableFile, []Value{fileid, taskid, actid, wkfid, fname, fsize, fdir}); err != nil {
		return err
	}
	return a.maybeFlushLocked()
}

// InsertDocking buffers a ddocking extractor row (see
// DB.InsertDocking).
func (a *Appender) InsertDocking(taskid, wkfid int64, receptor, ligand, program string, feb, rmsd float64, nruns int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.add(TableDocking, []Value{taskid, wkfid, receptor, ligand, program, feb, rmsd, nruns}); err != nil {
		return err
	}
	return a.maybeFlushLocked()
}
