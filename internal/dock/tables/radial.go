// Package tables precomputes every radial interaction used by the
// docking kernels on r²-indexed lookup tables, the same trick the
// real AutoGrid and Vina use: the analytic pair potentials are
// exp/sqrt-heavy, far too slow to evaluate once per lattice point ×
// receptor atom (activity 5) or per Monte-Carlo step × atom pair
// (activity 8). Tabulating them keyed by squared distance removes both
// the transcendental calls and the unconditional sqrt from the inner
// loops, because cell lists and neighbour queries already produce r².
//
// The package owns the analytic forms (moved here from the grid and
// vina packages so both can share one source of truth without an
// import cycle) and a process-global cache of built tables, keyed by
// (kind, type pair). Tables are deterministic functions of the force
// field alone, so sharing them across scorers and goroutines is safe
// and keeps per-pair docking setup allocation-free after warm-up.
package tables

import "math"

// Table geometry. Each table has two uniform-in-r² segments: a fine
// core over [0, SplitR2) where the Lennard-Jones repulsive wall makes
// the potentials violently curved, and a coarse tail over
// [SplitR2, Cutoff²] where every potential is smooth. The split keeps
// interpolation within 1e-3 kcal/mol over the scored range (see
// DESIGN.md "Kernel architecture") while shrinking each table ~4× so
// the working set of a multi-table inner loop stays cache-resident —
// with a single uniform segment at core resolution the lookups are
// cache-miss bound and most of the table-path speedup evaporates.
//
// RMin²·invCore = 256 exactly, so the r ≥ RMin clamp baked into the
// AD4/electrostatic/desolvation tables lands on a table node and never
// puts a derivative kink inside an interpolation bin; SplitR2 itself
// is the shared boundary node of the two segments.
const (
	// Cutoff is the non-bonded interaction cutoff in Å shared by
	// AutoGrid map generation and both scoring functions.
	//unit: Å
	Cutoff = 8.0
	// SplitR2 is the r² boundary (Ų) between the fine core segment
	// and the coarse tail segment.
	//unit: Å2
	SplitR2 = 16.0
	// BinsCore is the number of r² bins covering [0, SplitR2):
	// Δr² = 2⁻¹⁰ Ų, fine enough for the r≈RMin repulsive core.
	BinsCore = 1 << 14
	// BinsTail is the number of r² bins covering [SplitR2, Cutoff²]:
	// Δr² ≈ 1.2e-2 Ų, ample for the smooth attractive tail.
	BinsTail = 1 << 12
	// RMin is AutoGrid's minimum interaction distance: pair terms are
	// evaluated at max(r, RMin), capping the singular repulsive core.
	//unit: Å
	RMin = 0.5
	// RMin2 is RMin² for callers that clamp in r² space.
	//unit: Å2
	RMin2 = RMin * RMin

	invCore = BinsCore / SplitR2                  // core bins per Ų
	invTail = BinsTail / (Cutoff*Cutoff - SplitR2) // tail bins per Ų
)

// Radial is one radial interaction tabulated on the two-segment
// r²-indexed grid over [0, Cutoff²], evaluated by linear interpolation
// in r². Queries at or beyond the cutoff return the last node (callers
// cutoff-check first; every tabulated potential is ~0 there).
type Radial struct {
	// vals holds BinsCore core nodes (vals[i] = f(√(i/invCore)) for
	// i < BinsCore), then the BinsTail+1 tail nodes starting with the
	// shared boundary node at r² = SplitR2.
	vals []float64
}

// NewRadial tabulates f — a function of the distance r in Å — on the
// package's two-segment r² grid.
func NewRadial(f func(r float64) float64) *Radial {
	t := &Radial{vals: make([]float64, BinsCore+BinsTail+1)}
	for i := 0; i < BinsCore; i++ {
		t.vals[i] = f(math.Sqrt(float64(i) / invCore))
	}
	for j := 0; j <= BinsTail; j++ {
		t.vals[BinsCore+j] = f(math.Sqrt(SplitR2 + float64(j)/invTail))
	}
	return t
}

// At2 returns the interpolated value at squared distance r2 ≥ 0.
//
//unit: r2=Å2
func (t *Radial) At2(r2 float64) float64 {
	x := r2 * invCore
	if r2 >= SplitR2 {
		x = BinsCore + (r2-SplitR2)*invTail
	}
	i := int(x)
	if i >= len(t.vals)-1 {
		return t.vals[len(t.vals)-1]
	}
	v := t.vals[i]
	return v + (x-float64(i))*(t.vals[i+1]-v)
}
