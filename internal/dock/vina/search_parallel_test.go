package vina

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dock"
)

// TestDockWorkersDeterministic pins the tentpole contract: chains have
// independent seeds and merge in chain order, so the result is
// byte-identical for every worker count.
func TestDockWorkersDeterministic(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(11)
	cfg.Exhaustiveness = 8
	var want string
	for _, workers := range []int{1, 2, 4, 8, 16} {
		eng := &Engine{Config: cfg, StepsPerRestart: 6, Workers: workers}
		res, err := eng.Dock(s, lig)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := fmt.Sprintf("%+v", res)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d result differs from sequential:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestConcurrentDockSharedScorer drives many goroutines through one
// shared Scorer (run under -race by scripts/check.sh): scorers are
// read-only after construction, so concurrent Dock calls — and the
// chain pools inside each — must not trip the race detector.
func TestConcurrentDockSharedScorer(t *testing.T) {
	rec, lig := setupPair(t, "1S4V", "042")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := testConfig(int64(100 + g))
			eng := &Engine{Config: cfg, StepsPerRestart: 4, Workers: 1 + g%3}
			res, err := eng.Dock(s, lig)
			if err == nil && len(res.Runs) == 0 {
				err = fmt.Errorf("goroutine %d: no modes", g)
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestLocalOptimizeZeroAllocs pins the workspace scoring path of the
// Metropolis loop: local optimization of a warm pose allocates
// nothing.
func TestLocalOptimizeZeroAllocs(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Config: testConfig(5)}
	box := dock.Box{Center: eng.Config.Center, Size: eng.Config.Size}
	ws := dock.NewWorkspace(lig)
	r := rand.New(rand.NewSource(5))
	cur := ws.Get()
	dock.RandomPoseInto(r, cur, box, lig.NumTorsions())
	eng.localOptimize(s, ws, box, cur, r) // warm the workspace free list
	allocs := testing.AllocsPerRun(20, func() {
		eng.localOptimize(s, ws, box, cur, r)
	})
	if allocs != 0 {
		t.Fatalf("localOptimize allocates %v objects/op, want 0", allocs)
	}
}

// BenchmarkLocalOptimize tracks the per-candidate evaluation cost of
// the search hot path; allocs/op must stay 0.
func BenchmarkLocalOptimize(b *testing.B) {
	rec, lig := setupPair(b, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		b.Fatal(err)
	}
	eng := &Engine{Config: testConfig(5)}
	box := dock.Box{Center: eng.Config.Center, Size: eng.Config.Size}
	ws := dock.NewWorkspace(lig)
	r := rand.New(rand.NewSource(5))
	cur := ws.Get()
	dock.RandomPoseInto(r, cur, box, lig.NumTorsions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.localOptimize(s, ws, box, cur, r)
	}
}

func BenchmarkDockSequential(b *testing.B) {
	benchDock(b, 1)
}

func BenchmarkDockParallel(b *testing.B) {
	benchDock(b, 4)
}

func benchDock(b *testing.B, workers int) {
	rec, lig := setupPair(b, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig(42)
	cfg.Exhaustiveness = 8
	eng := &Engine{Config: cfg, StepsPerRestart: 8, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Dock(s, lig); err != nil {
			b.Fatal(err)
		}
	}
}
