package lint

import (
	"go/ast"
	"go/types"
)

// DiscardErr flags assignments that throw an error value away through
// the blank identifier (`_ = f()`, `v, _ := f()`). A docking campaign
// that swallows an error at prepare or extract time records a
// plausible-looking but wrong provenance row, which poisons every
// downstream query; errors must be handled, propagated, or the
// discard annotated with //lint:ignore discarderr <reason>. Test
// files are exempt.
var DiscardErr = &Analyzer{
	Name:     "discarderr",
	Doc:      "flags blank-identifier discards of error values outside test files",
	Severity: Error,
	Run:      runDiscardErr,
}

func runDiscardErr(pass *Pass) {
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if errIface == nil {
		return
	}
	isErr := func(t types.Type) bool {
		return t != nil && types.Implements(t, errIface)
	}
	pass.Inspect(func(n ast.Node, _ []ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || pass.IsTestFile(as.Pos()) {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != "_" {
				continue
			}
			var t types.Type
			switch {
			case len(as.Rhs) == len(as.Lhs):
				t = pass.TypeOf(as.Rhs[i])
			case len(as.Rhs) == 1:
				// `_, ok := x.(T)` tests a type, it does not drop a
				// live error value; only multi-value calls count.
				if _, isAssert := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); isAssert {
					continue
				}
				tup, ok := pass.TypeOf(as.Rhs[0]).(*types.Tuple)
				if ok && i < tup.Len() {
					t = tup.At(i).Type()
				}
			}
			if isErr(t) {
				pass.Reportf(id.Pos(),
					"error value discarded with blank identifier; handle or propagate it, or annotate //lint:ignore discarderr <reason>")
			}
		}
	})
}
