package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cloud"
)

// Activation is one schedulable unit: an (activity, tuple) pair with
// its simulated execution attempts (failed tries then the success).
type Activation struct {
	ID       int64
	Tag      string
	Key      string    // stable identity, e.g. "autodock4|0E6_2HHN"
	Attempts []float64 // seconds on a reference core, per attempt
	IOTime   float64   // shared-FS staging time added once
	// Estimate is the scheduler's cost belief for ordering decisions.
	// SciCumulus estimates from provenance history (it cannot know
	// true durations in advance); zero means "use the true cost"
	// (oracle ordering, the ablation baseline).
	Estimate float64
}

// TotalCost returns the reference-core seconds across all attempts.
func (a Activation) TotalCost() float64 {
	var s float64
	for _, d := range a.Attempts {
		s += d
	}
	return s + a.IOTime
}

// PlanningCost is the weight the greedy scheduler orders by: the
// provenance estimate when present, the true cost otherwise.
func (a Activation) PlanningCost() float64 {
	if a.Estimate > 0 {
		return a.Estimate
	}
	return a.TotalCost()
}

// Placement is the scheduler's decision for one activation.
type Placement struct {
	Activation Activation
	VMID       string
	Core       int
	Start      float64 // virtual seconds
	End        float64
	Failures   int
}

// coreState tracks one worker core during planning.
type coreState struct {
	vm     *cloud.VM
	core   int
	freeAt float64
}

// Greedy is SciCumulus' native weighted-cost greedy scheduler: it
// dispatches the heaviest remaining activation to the core with the
// earliest effective availability. Dispatch decisions are serialized
// through the master node, whose per-decision planning time grows
// with the fleet size — the overhead the paper holds responsible for
// the efficiency drop between 32 and 128 cores (Figure 9).
type Greedy struct {
	// MasterDelayPerVM is the planning time (seconds) one dispatch
	// decision costs per VM in the fleet. The calibrated default
	// reproduces Figure 9's efficiency curve.
	MasterDelayPerVM float64
	// WorkerCap bounds the number of usable cores (the paper's
	// "2-core" runs lease a 4-core m3.xlarge but use 2 workers).
	WorkerCap int
}

// NewGreedy returns the calibrated scheduler. The per-VM master delay
// is fitted so the 10,000-pair sweep lands on the paper's Figure 7-9
// anchors (≈95% improvement at 32 cores, visible efficiency loss at
// 128).
func NewGreedy() *Greedy {
	return &Greedy{MasterDelayPerVM: 0.02}
}

// Schedule plans one stage: all activations are independent and may
// run concurrently. It returns placements and the stage makespan
// (virtual end time of the last activation, measured from startAt).
func (g *Greedy) Schedule(startAt float64, acts []Activation, vms []*cloud.VM) ([]Placement, float64, error) {
	if len(vms) == 0 {
		return nil, 0, fmt.Errorf("sched: no VMs available")
	}
	var cores []coreState
	for _, vm := range vms {
		ready := math.Max(startAt, vm.ReadyAt)
		for c := 0; c < vm.Type.Cores; c++ {
			if g.WorkerCap > 0 && len(cores) >= g.WorkerCap {
				break
			}
			cores = append(cores, coreState{vm: vm, core: c, freeAt: ready})
		}
	}
	if len(cores) == 0 {
		return nil, 0, fmt.Errorf("sched: fleet has no cores")
	}

	// Weighted greedy: longest (believed) processing time first.
	order := make([]int, len(acts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return acts[order[i]].PlanningCost() > acts[order[j]].PlanningCost()
	})

	masterFree := startAt
	masterDelay := g.MasterDelayPerVM * float64(len(vms))
	placements := make([]Placement, 0, len(acts))
	end := startAt
	for _, idx := range order {
		a := acts[idx]
		// The master plans this dispatch (serialized).
		dispatchAt := masterFree + masterDelay
		masterFree = dispatchAt
		// Earliest-available core.
		best := 0
		for c := 1; c < len(cores); c++ {
			if cores[c].freeAt < cores[best].freeAt {
				best = c
			}
		}
		start := math.Max(cores[best].freeAt, dispatchAt)
		dur := 0.0
		speed := cores[best].vm.Speed(start)
		for _, attempt := range a.Attempts {
			dur += attempt / speed
		}
		dur += a.IOTime
		p := Placement{
			Activation: a,
			VMID:       cores[best].vm.ID,
			Core:       cores[best].core,
			Start:      start,
			End:        start + dur,
			Failures:   len(a.Attempts) - 1,
		}
		cores[best].freeAt = p.End
		if p.End > end {
			end = p.End
		}
		placements = append(placements, p)
	}
	return placements, end - startAt, nil
}

// RoundRobin is the naive baseline scheduler used by the ablation
// benchmarks: activations are dealt to cores in arrival order with no
// cost weighting and no master serialization.
type RoundRobin struct {
	WorkerCap int
}

// Schedule implements the same contract as Greedy.Schedule.
func (rr *RoundRobin) Schedule(startAt float64, acts []Activation, vms []*cloud.VM) ([]Placement, float64, error) {
	if len(vms) == 0 {
		return nil, 0, fmt.Errorf("sched: no VMs available")
	}
	var cores []coreState
	for _, vm := range vms {
		ready := math.Max(startAt, vm.ReadyAt)
		for c := 0; c < vm.Type.Cores; c++ {
			if rr.WorkerCap > 0 && len(cores) >= rr.WorkerCap {
				break
			}
			cores = append(cores, coreState{vm: vm, core: c, freeAt: ready})
		}
	}
	if len(cores) == 0 {
		return nil, 0, fmt.Errorf("sched: fleet has no cores")
	}
	placements := make([]Placement, 0, len(acts))
	end := startAt
	for i, a := range acts {
		cs := &cores[i%len(cores)]
		start := cs.freeAt
		speed := cs.vm.Speed(start)
		dur := a.IOTime
		for _, attempt := range a.Attempts {
			dur += attempt / speed
		}
		p := Placement{
			Activation: a, VMID: cs.vm.ID, Core: cs.core,
			Start: start, End: start + dur, Failures: len(a.Attempts) - 1,
		}
		cs.freeAt = p.End
		if p.End > end {
			end = p.End
		}
		placements = append(placements, p)
	}
	return placements, end - startAt, nil
}

// Scheduler is the planning interface shared by Greedy and RoundRobin.
type Scheduler interface {
	Schedule(startAt float64, acts []Activation, vms []*cloud.VM) ([]Placement, float64, error)
}
