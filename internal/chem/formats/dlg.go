package formats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/chem"
)

// DLGRun is one docking run recorded in a DLG file: its rank, free
// energy of binding and RMSD from the reference pose.
type DLGRun struct {
	Run      int
	FEB      float64 // kcal/mol
	RMSD     float64 // Å
	ClusterN int     // conformations in this cluster
}

// DLG is the parsed content of an AutoDock docking log: the program
// banner, per-run results and the best pose block.
type DLG struct {
	Program  string // "AutoDock 4.2.5.1" or "AutoDock Vina 1.1.2"
	Receptor string
	Ligand   string
	Runs     []DLGRun
	Seed     int64
	// Docked holds the best run's ligand conformation in the receptor
	// frame, written as "DOCKED: ATOM" records (the block molecular
	// viewers read to render Figure-12-style complexes). Optional.
	Docked *chem.Molecule
}

// Best returns the lowest-FEB run, or false when the log holds no runs
// (a failed docking).
func (d *DLG) Best() (DLGRun, bool) {
	if len(d.Runs) == 0 {
		return DLGRun{}, false
	}
	best := d.Runs[0]
	for _, r := range d.Runs[1:] {
		if r.FEB < best.FEB {
			best = r
		}
	}
	return best, true
}

// WriteDLG emits a docking log in the AutoDock-style layout consumed
// by SciCumulus' extractor components (and by ParseDLG).
func WriteDLG(w io.Writer, d *DLG) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "DOCKED: PROGRAM %s\n", d.Program)
	fmt.Fprintf(bw, "DOCKED: RECEPTOR %s\n", d.Receptor)
	fmt.Fprintf(bw, "DOCKED: LIGAND %s\n", d.Ligand)
	fmt.Fprintf(bw, "DOCKED: SEED %d\n", d.Seed)
	fmt.Fprintln(bw, "________________________________________________________________")
	fmt.Fprintln(bw, "     CLUSTERING HISTOGRAM")
	fmt.Fprintln(bw, "Run | FEB (kcal/mol) | RMSD (A) | Cluster Size")
	for _, r := range d.Runs {
		fmt.Fprintf(bw, "RESULT %4d %12.4f %10.4f %6d\n", r.Run, r.FEB, r.RMSD, r.ClusterN)
	}
	if best, ok := d.Best(); ok {
		fmt.Fprintf(bw, "BEST: run=%d feb=%.4f rmsd=%.4f\n", best.Run, best.FEB, best.RMSD)
	}
	if d.Docked != nil {
		fmt.Fprintln(bw, "DOCKED: MODEL")
		for i, a := range d.Docked.Atoms {
			bw.WriteString("DOCKED: ")
			writePDBQTAtom(bw, i+1, a)
		}
		fmt.Fprintln(bw, "DOCKED: ENDMDL")
	}
	fmt.Fprintln(bw, "END OF DOCKING LOG")
	return bw.Flush()
}

// ParseDLG reads a docking log written by WriteDLG. SciCumulus'
// extractor activity uses this to populate domain provenance.
func ParseDLG(r io.Reader, name string) (*DLG, error) {
	d := &DLG{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "DOCKED: PROGRAM "):
			d.Program = strings.TrimPrefix(line, "DOCKED: PROGRAM ")
		case strings.HasPrefix(line, "DOCKED: RECEPTOR "):
			d.Receptor = strings.TrimPrefix(line, "DOCKED: RECEPTOR ")
		case strings.HasPrefix(line, "DOCKED: LIGAND "):
			d.Ligand = strings.TrimPrefix(line, "DOCKED: LIGAND ")
		case strings.HasPrefix(line, "DOCKED: SEED "):
			s, err := strconv.ParseInt(strings.TrimPrefix(line, "DOCKED: SEED "), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("formats: dlg %q line %d: bad seed: %w", name, lineNo, err)
			}
			d.Seed = s
		case strings.HasPrefix(line, "DOCKED: ATOM") || strings.HasPrefix(line, "DOCKED: HETATM"):
			a, err := parsePDBQTAtom(strings.TrimPrefix(line, "DOCKED: "))
			if err != nil {
				return nil, fmt.Errorf("formats: dlg %q line %d: %w", name, lineNo, err)
			}
			if d.Docked == nil {
				d.Docked = &chem.Molecule{Name: d.Ligand}
			}
			d.Docked.Atoms = append(d.Docked.Atoms, a)
		case strings.HasPrefix(line, "RESULT "):
			f := strings.Fields(line)
			if len(f) != 5 {
				return nil, fmt.Errorf("formats: dlg %q line %d: malformed RESULT", name, lineNo)
			}
			run, err1 := strconv.Atoi(f[1])
			feb, err2 := strconv.ParseFloat(f[2], 64)
			rmsd, err3 := strconv.ParseFloat(f[3], 64)
			cn, err4 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("formats: dlg %q line %d: malformed RESULT fields", name, lineNo)
			}
			d.Runs = append(d.Runs, DLGRun{Run: run, FEB: feb, RMSD: rmsd, ClusterN: cn})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("formats: dlg %q: %w", name, err)
	}
	if d.Program == "" {
		return nil, fmt.Errorf("formats: dlg %q: missing program banner", name)
	}
	return d, nil
}
