package grid

import (
	"math"

	"repro/internal/chem"
)

// cellList bins receptor atoms into cubic cells of edge = cutoff so a
// neighbourhood query only visits the 27 surrounding cells. This keeps
// map generation O(points × local atoms) instead of O(points × atoms).
type cellList struct {
	cell    float64
	min     chem.Vec3
	dims    [3]int
	buckets [][]int
	atoms   []chem.Vec3
}

func buildCellList(m *chem.Molecule, cutoff float64) *cellList {
	pts := m.Positions()
	min, max := chem.BoundingBox(pts)
	cl := &cellList{cell: cutoff, min: min, atoms: pts}
	span := max.Sub(min)
	cl.dims[0] = int(span.X/cutoff) + 1
	cl.dims[1] = int(span.Y/cutoff) + 1
	cl.dims[2] = int(span.Z/cutoff) + 1
	cl.buckets = make([][]int, cl.dims[0]*cl.dims[1]*cl.dims[2])
	for i, p := range pts {
		b := cl.bucketIndex(p)
		cl.buckets[b] = append(cl.buckets[b], i)
	}
	return cl
}

func (cl *cellList) coords(p chem.Vec3) (int, int, int) {
	cx := int(math.Floor((p.X - cl.min.X) / cl.cell))
	cy := int(math.Floor((p.Y - cl.min.Y) / cl.cell))
	cz := int(math.Floor((p.Z - cl.min.Z) / cl.cell))
	return cx, cy, cz
}

func (cl *cellList) bucketIndex(p chem.Vec3) int {
	cx, cy, cz := cl.coords(p)
	return cl.clampIndex(cx, cy, cz)
}

func (cl *cellList) clampIndex(cx, cy, cz int) int {
	if cx < 0 {
		cx = 0
	} else if cx >= cl.dims[0] {
		cx = cl.dims[0] - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= cl.dims[1] {
		cy = cl.dims[1] - 1
	}
	if cz < 0 {
		cz = 0
	} else if cz >= cl.dims[2] {
		cz = cl.dims[2] - 1
	}
	return (cz*cl.dims[1]+cy)*cl.dims[0] + cx
}

// forNeighbors invokes fn with the index of every atom in the 27 cells
// around p. Points far outside the receptor volume visit the clamped
// boundary cells, which is safe (distance check happens in the
// caller).
func (cl *cellList) forNeighbors(p chem.Vec3, fn func(atom int)) {
	cx, cy, cz := cl.coords(p)
	// Entirely out of range beyond one cell: nothing within cutoff.
	if cx < -1 || cx > cl.dims[0] || cy < -1 || cy > cl.dims[1] || cz < -1 || cz > cl.dims[2] {
		return
	}
	seen := -1 // dedupe consecutive clamped buckets
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y, z := cx+dx, cy+dy, cz+dz
				if x < 0 || x >= cl.dims[0] || y < 0 || y >= cl.dims[1] || z < 0 || z >= cl.dims[2] {
					continue
				}
				b := (z*cl.dims[1]+y)*cl.dims[0] + x
				if b == seen {
					continue
				}
				seen = b
				for _, ai := range cl.buckets[b] {
					fn(ai)
				}
			}
		}
	}
}
