package formats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/chem"
)

// ParseMol2 reads a Tripos Sybyl Mol2 file, the intermediate format
// produced by SciDock's first activity (Babel conversion).
func ParseMol2(r io.Reader, name string) (*chem.Molecule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	m := &chem.Molecule{Name: name}
	section := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "@<TRIPOS>") {
			section = strings.TrimPrefix(line, "@<TRIPOS>")
			continue
		}
		switch section {
		case "MOLECULE":
			if m.Name == "" {
				m.Name = strings.TrimSpace(line)
			}
			section = "MOLECULE-rest" // remaining header lines ignored
		case "ATOM":
			f := strings.Fields(line)
			if len(f) < 6 {
				return nil, fmt.Errorf("formats: mol2 %q line %d: short atom record", name, lineNo)
			}
			serial, err := strconv.Atoi(f[0])
			if err != nil {
				return nil, fmt.Errorf("formats: mol2 %q line %d: bad id: %w", name, lineNo, err)
			}
			x, err1 := strconv.ParseFloat(f[2], 64)
			y, err2 := strconv.ParseFloat(f[3], 64)
			z, err3 := strconv.ParseFloat(f[4], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("formats: mol2 %q line %d: bad coordinates", name, lineNo)
			}
			// SYBYL type like "C.3", "O.co2", "N.ar": element before dot.
			elem := f[5]
			if i := strings.IndexByte(elem, '.'); i >= 0 {
				elem = elem[:i]
			}
			a := chem.Atom{
				Serial:  serial,
				Name:    f[1],
				Element: chem.Element(elem).Normalize(),
				Pos:     chem.V(x, y, z),
				HetAtm:  true,
			}
			if len(f) >= 9 {
				if q, err := strconv.ParseFloat(f[8], 64); err == nil {
					a.Charge = q
				}
			}
			if len(f) >= 8 {
				a.Residue = strings.TrimRight(f[7], "0123456789")
			}
			m.Atoms = append(m.Atoms, a)
		case "BOND":
			f := strings.Fields(line)
			if len(f) < 4 {
				return nil, fmt.Errorf("formats: mol2 %q line %d: short bond record", name, lineNo)
			}
			a, err1 := strconv.Atoi(f[1])
			b, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("formats: mol2 %q line %d: bad bond endpoints", name, lineNo)
			}
			if a < 1 || a > len(m.Atoms) || b < 1 || b > len(m.Atoms) {
				return nil, fmt.Errorf("formats: mol2 %q line %d: bond endpoint out of range", name, lineNo)
			}
			m.Bonds = append(m.Bonds, chem.Bond{A: a - 1, B: b - 1, Order: mol2BondOrder(f[3])})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("formats: mol2 %q: %w", name, err)
	}
	if len(m.Atoms) == 0 {
		return nil, fmt.Errorf("formats: mol2 %q has no atoms", name)
	}
	return m, m.Validate()
}

func mol2BondOrder(s string) chem.BondOrder {
	switch s {
	case "1":
		return chem.Single
	case "2":
		return chem.Double
	case "3":
		return chem.Triple
	case "ar":
		return chem.Aromatic
	case "am":
		return chem.Single // amide written as single; prep freezes it
	default:
		return chem.Single
	}
}

func mol2BondString(o chem.BondOrder) string {
	switch o {
	case chem.Double:
		return "2"
	case chem.Triple:
		return "3"
	case chem.Aromatic:
		return "ar"
	default:
		return "1"
	}
}

// WriteMol2 emits a Tripos Mol2 file with SYBYL atom types derived
// from the element (refined typing happens later, in PDBQT).
func WriteMol2(w io.Writer, m *chem.Molecule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "@<TRIPOS>MOLECULE")
	fmt.Fprintln(bw, m.Name)
	fmt.Fprintf(bw, "%5d %5d %5d\n", len(m.Atoms), len(m.Bonds), 1)
	fmt.Fprintln(bw, "SMALL")
	fmt.Fprintln(bw, "GASTEIGER")
	fmt.Fprintln(bw, "@<TRIPOS>ATOM")
	for i, a := range m.Atoms {
		res := a.Residue
		if res == "" {
			res = "LIG"
		}
		fmt.Fprintf(bw, "%7d %-8s %9.4f %9.4f %9.4f %-5s %3d %-7s %9.4f\n",
			i+1, a.Name, a.Pos.X, a.Pos.Y, a.Pos.Z, sybylType(a), 1, res+"1", a.Charge)
	}
	fmt.Fprintln(bw, "@<TRIPOS>BOND")
	for i, b := range m.Bonds {
		fmt.Fprintf(bw, "%6d %5d %5d %-4s\n", i+1, b.A+1, b.B+1, mol2BondString(b.Order))
	}
	return bw.Flush()
}

func sybylType(a chem.Atom) string {
	switch a.Element.Normalize() {
	case chem.Carbon:
		return "C.3"
	case chem.Nitrogen:
		return "N.3"
	case chem.Oxygen:
		return "O.3"
	case chem.Sulfur:
		return "S.3"
	case chem.Hydrogen:
		return "H"
	default:
		return string(a.Element)
	}
}
