package sched

import (
	"math"

	"repro/internal/cloud"
)

// AdaptivePolicy reproduces SciCumulus' adaptive execution: between
// stages it resizes the virtual cluster based on the upcoming load
// profile, acquiring more VMs for compute-intensive stages (e.g.
// docking) and releasing them for light stages — the cloud-elasticity
// feature §IV.B highlights.
type AdaptivePolicy struct {
	// MinCores/MaxCores bound the fleet.
	MinCores int
	MaxCores int
	// TargetStageSeconds is the makespan the policy aims at when
	// sizing the fleet for a stage.
	TargetStageSeconds float64
}

// NewAdaptivePolicy returns a policy with the defaults used by the
// elastic example (fleet between 4 and 128 cores, one-hour stages).
func NewAdaptivePolicy() *AdaptivePolicy {
	return &AdaptivePolicy{MinCores: 4, MaxCores: 128, TargetStageSeconds: 3600}
}

// DesiredCores sizes the fleet for a stage with the given total work
// (reference-core seconds): enough cores to finish near the target
// makespan, clamped to the policy bounds and rounded up to a whole
// m3.xlarge.
func (p *AdaptivePolicy) DesiredCores(stageWork float64) int {
	if stageWork <= 0 {
		return p.MinCores
	}
	target := p.TargetStageSeconds
	if target <= 0 {
		target = 3600
	}
	cores := int(math.Ceil(stageWork / target))
	if cores < p.MinCores {
		cores = p.MinCores
	}
	if p.MaxCores > 0 && cores > p.MaxCores {
		cores = p.MaxCores
	}
	// Round up to a whole smallest instance.
	q := cloud.M3XLarge.Cores
	if rem := cores % q; rem != 0 {
		cores += q - rem
	}
	if p.MaxCores > 0 && cores > p.MaxCores {
		cores = p.MaxCores
	}
	return cores
}

// Resize adjusts the cluster to the desired core count: acquiring
// m3.2xlarge/m3.xlarge VMs to grow, releasing the most recently
// acquired VMs to shrink. It returns the resulting running fleet.
func (p *AdaptivePolicy) Resize(c *cloud.Cluster, desired int) ([]*cloud.VM, error) {
	running := c.RunningVMs()
	have := 0
	for _, vm := range running {
		have += vm.Type.Cores
	}
	switch {
	case have < desired:
		need := desired - have
		for need >= cloud.M32XLarge.Cores {
			c.Acquire(cloud.M32XLarge)
			need -= cloud.M32XLarge.Cores
		}
		for need > 0 {
			c.Acquire(cloud.M3XLarge)
			need -= cloud.M3XLarge.Cores
		}
	case have > desired:
		// Release newest-first until at or just above desired.
		vms := c.RunningVMs()
		for i := len(vms) - 1; i >= 0 && have-vms[i].Type.Cores >= desired; i-- {
			if err := c.Release(vms[i].ID); err != nil {
				return nil, err
			}
			have -= vms[i].Type.Cores
		}
	}
	return c.RunningVMs(), nil
}

// StageWork sums the total cost of a stage's activations.
func StageWork(acts []Activation) float64 {
	var w float64
	for _, a := range acts {
		w += a.TotalCost()
	}
	return w
}
