package chem

import "strings"

// Element is a chemical element symbol ("C", "N", "Hg", ...).
type Element string

// Elements that appear in the Peptidase_CA receptors and the
// CP-specific ligand set of the paper.
const (
	Hydrogen   Element = "H"
	Carbon     Element = "C"
	Nitrogen   Element = "N"
	Oxygen     Element = "O"
	Sulfur     Element = "S"
	Phosphorus Element = "P"
	Fluorine   Element = "F"
	Chlorine   Element = "Cl"
	Bromine    Element = "Br"
	Iodine     Element = "I"
	Zinc       Element = "Zn"
	Iron       Element = "Fe"
	Magnesium  Element = "Mg"
	Calcium    Element = "Ca"
	Mercury    Element = "Hg" // the looping-state culprit in §V.C
)

// ElementInfo holds per-element parameters used by preparation and
// scoring. Radii follow the AutoDock 4 parameter file (Rii/2) and
// standard covalent radii; masses are in Dalton.
type ElementInfo struct {
	Symbol        Element
	Number        int     // atomic number
	Mass          float64 // Da
	CovalentR     float64 // Å, for bond perception
	VdwR          float64 // Å, van der Waals radius (AD4 Rii/2)
	WellDepth     float64 // kcal/mol, AD4 epsii
	Electroneg    float64 // Pauling electronegativity (charge model)
	Metal         bool
	DockSupported bool // false for atoms the docking programs reject (e.g. Hg)
}

var elementTable = map[Element]ElementInfo{
	Hydrogen:   {Hydrogen, 1, 1.008, 0.31, 1.00, 0.020, 2.20, false, true},
	Carbon:     {Carbon, 6, 12.011, 0.76, 2.00, 0.150, 2.55, false, true},
	Nitrogen:   {Nitrogen, 7, 14.007, 0.71, 1.75, 0.160, 3.04, false, true},
	Oxygen:     {Oxygen, 8, 15.999, 0.66, 1.60, 0.200, 3.44, false, true},
	Sulfur:     {Sulfur, 16, 32.06, 1.05, 2.00, 0.200, 2.58, false, true},
	Phosphorus: {Phosphorus, 15, 30.974, 1.07, 2.10, 0.200, 2.19, false, true},
	Fluorine:   {Fluorine, 9, 18.998, 0.57, 1.54, 0.080, 3.98, false, true},
	Chlorine:   {Chlorine, 17, 35.45, 1.02, 2.04, 0.276, 3.16, false, true},
	Bromine:    {Bromine, 35, 79.904, 1.20, 2.17, 0.389, 2.96, false, true},
	Iodine:     {Iodine, 53, 126.904, 1.39, 2.36, 0.550, 2.66, false, true},
	Zinc:       {Zinc, 30, 65.38, 1.22, 0.74, 0.005, 1.65, true, true},
	Iron:       {Iron, 26, 55.845, 1.32, 0.65, 0.010, 1.83, true, true},
	Magnesium:  {Magnesium, 12, 24.305, 1.41, 0.65, 0.875, 1.31, true, true},
	Calcium:    {Calcium, 20, 40.078, 1.76, 0.99, 0.550, 1.00, true, true},
	Mercury:    {Mercury, 80, 200.59, 1.32, 1.55, 0.100, 2.00, true, false},
}

// Info returns parameters for the element, falling back to carbon-like
// defaults for unknown symbols (as the docking tools do for exotic
// atoms before rejecting them).
func (e Element) Info() ElementInfo {
	if info, ok := elementTable[e.normalize()]; ok {
		return info
	}
	info := elementTable[Carbon]
	info.Symbol = e
	info.DockSupported = false
	return info
}

// Known reports whether e is in the element table.
func (e Element) Known() bool {
	_, ok := elementTable[e.normalize()]
	return ok
}

func (e Element) normalize() Element {
	s := string(e)
	if s == "" {
		return e
	}
	s = strings.ToUpper(s[:1]) + strings.ToLower(s[1:])
	return Element(s)
}

// Normalize returns the canonical capitalization of the symbol
// ("CL" -> "Cl").
func (e Element) Normalize() Element { return e.normalize() }

// IsHeavy reports whether the element is not hydrogen.
func (e Element) IsHeavy() bool { return e.normalize() != Hydrogen }

// AtomType is an AutoDock 4 / Vina atom type. Grid maps are generated
// per atom type, and both scoring functions parameterize on them.
type AtomType string

// The AD4 atom-type alphabet used in this reproduction (subset of the
// full AD4.1 table sufficient for the Peptidase_CA workload).
const (
	TypeH  AtomType = "H"  // non-polar hydrogen (merged during prep)
	TypeHD AtomType = "HD" // polar hydrogen (H-bond donor)
	TypeC  AtomType = "C"  // aliphatic carbon
	TypeA  AtomType = "A"  // aromatic carbon
	TypeN  AtomType = "N"  // nitrogen, non-acceptor
	TypeNA AtomType = "NA" // nitrogen acceptor
	TypeOA AtomType = "OA" // oxygen acceptor
	TypeS  AtomType = "S"  // sulfur
	TypeSA AtomType = "SA" // sulfur acceptor
	TypeP  AtomType = "P"
	TypeF  AtomType = "F"
	TypeCl AtomType = "Cl"
	TypeBr AtomType = "Br"
	TypeI  AtomType = "I"
	TypeZn AtomType = "Zn"
	TypeFe AtomType = "Fe"
	TypeMg AtomType = "Mg"
	TypeCa AtomType = "Ca"
	TypeHg AtomType = "Hg" // unsupported: triggers preparation abort
)

// TypeParams holds the AD4 pairwise-potential parameters of an atom
// type (from the AD4.1 parameter file, abbreviated).
type TypeParams struct {
	Type      AtomType
	Rii       float64 // Å, sum of vdW radii for the i-i pair
	Epsii     float64 // kcal/mol, well depth
	SolVol    float64 // Å³, atomic solvation volume
	SolPar    float64 // atomic solvation parameter
	HBond     int     // 0 none, 1 donor-H, 2..5 acceptor classes
	Hydroph   bool    // hydrophobic for Vina's term
	Supported bool
}

var typeTable = map[AtomType]TypeParams{
	TypeH:  {TypeH, 2.00, 0.020, 0.0000, 0.00051, 0, false, true},
	TypeHD: {TypeHD, 2.00, 0.020, 0.0000, 0.00051, 1, false, true},
	TypeC:  {TypeC, 4.00, 0.150, 33.5103, -0.00143, 0, true, true},
	TypeA:  {TypeA, 4.00, 0.150, 33.5103, -0.00052, 0, true, true},
	TypeN:  {TypeN, 3.50, 0.160, 22.4493, -0.00162, 0, false, true},
	TypeNA: {TypeNA, 3.50, 0.160, 22.4493, -0.00162, 4, false, true},
	TypeOA: {TypeOA, 3.20, 0.200, 17.1573, -0.00251, 5, false, true},
	TypeS:  {TypeS, 4.00, 0.200, 33.5103, -0.00214, 0, false, true},
	TypeSA: {TypeSA, 4.00, 0.200, 33.5103, -0.00214, 5, false, true},
	TypeP:  {TypeP, 4.20, 0.200, 38.7924, -0.00110, 0, false, true},
	TypeF:  {TypeF, 3.09, 0.080, 15.4480, -0.00110, 0, true, true},
	TypeCl: {TypeCl, 4.09, 0.276, 35.8235, -0.00110, 0, true, true},
	TypeBr: {TypeBr, 4.33, 0.389, 42.5661, -0.00110, 0, true, true},
	TypeI:  {TypeI, 4.72, 0.550, 55.0585, -0.00110, 0, true, true},
	TypeZn: {TypeZn, 1.48, 0.005, 1.7000, -0.00110, 0, false, true},
	TypeFe: {TypeFe, 1.30, 0.010, 1.8400, -0.00110, 0, false, true},
	TypeMg: {TypeMg, 1.30, 0.875, 1.5600, -0.00110, 0, false, true},
	TypeCa: {TypeCa, 1.98, 0.550, 2.7700, -0.00110, 0, false, true},
	TypeHg: {TypeHg, 3.10, 0.100, 17.0000, -0.00110, 0, false, false},
}

// Params returns the AD4 parameters of an atom type. Unknown types get
// carbon-like defaults flagged unsupported, mirroring how the real
// tools stall on unparameterized atoms.
func (t AtomType) Params() TypeParams {
	if p, ok := typeTable[t]; ok {
		return p
	}
	p := typeTable[TypeC]
	p.Type = t
	p.Supported = false
	return p
}

// IsHBondDonorH reports whether the type is a polar hydrogen.
func (t AtomType) IsHBondDonorH() bool { return t.Params().HBond == 1 }

// IsHBondAcceptor reports whether the type accepts hydrogen bonds.
func (t AtomType) IsHBondAcceptor() bool { return t.Params().HBond >= 2 }

// IsHydrophobic reports whether Vina's hydrophobic term applies.
func (t AtomType) IsHydrophobic() bool { return t.Params().Hydroph }

// AllTypes returns every supported atom type in deterministic order,
// used when enumerating grid maps.
func AllTypes() []AtomType {
	return []AtomType{
		TypeH, TypeHD, TypeC, TypeA, TypeN, TypeNA, TypeOA,
		TypeS, TypeSA, TypeP, TypeF, TypeCl, TypeBr, TypeI,
		TypeZn, TypeFe, TypeMg, TypeCa,
	}
}

// TypeForElement returns the default AutoDock type for an element,
// before context-sensitive refinement (aromaticity, acceptor state,
// polar hydrogens) applied by the preparation step.
func TypeForElement(e Element) AtomType {
	switch e.normalize() {
	case Hydrogen:
		return TypeH
	case Carbon:
		return TypeC
	case Nitrogen:
		return TypeN
	case Oxygen:
		return TypeOA
	case Sulfur:
		return TypeS
	case Phosphorus:
		return TypeP
	case Fluorine:
		return TypeF
	case Chlorine:
		return TypeCl
	case Bromine:
		return TypeBr
	case Iodine:
		return TypeI
	case Zinc:
		return TypeZn
	case Iron:
		return TypeFe
	case Magnesium:
		return TypeMg
	case Calcium:
		return TypeCa
	case Mercury:
		return TypeHg
	default:
		return TypeC
	}
}
