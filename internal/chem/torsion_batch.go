package chem

import "fmt"

// Placement is the chem-level view of a docking pose: the rigid-body
// transform plus one angle per rotatable bond. It exists so the batched
// kinematics kernel can live next to the torsion tree without importing
// the dock package; dock.Batch stages appended poses as Placements and
// materializes them lane-wise in one ApplyTorsionsBatch call.
type Placement struct {
	Orientation Quat
	Translation Vec3
	Angles      []float64 // radians, one per rotatable bond
}

// KinScratch is the reusable per-owner scratch of ApplyTorsionsBatch:
// the torsion effect-sets pre-filtered of their axis atoms, the mobile
// atom set (the union of all effect-sets — every other atom is rigid
// under torsion application and keeps its base coordinates), and one
// AoS working conformation. Preparing it is O(atoms + moved) once per
// (tree, base) pair; warm calls allocate nothing.
//
// A KinScratch is single-owner scratch, like dock.Workspace.
type KinScratch struct {
	tree    *TorsionTree
	basePtr *Vec3     // identity of the base conformation scr mirrors
	movedf  [][]int32 // per torsion: Moved minus the Axis2 atom
	mobile  []int32   // ascending union of all movedf sets
	scr     []Vec3    // working conformation, immobile entries == base
	ready   bool
}

func (ks *KinScratch) prepare(t *TorsionTree, base []Vec3) {
	var bp *Vec3
	if len(base) > 0 {
		bp = &base[0]
	}
	if ks.ready && ks.tree == t && ks.basePtr == bp && len(ks.scr) == len(base) {
		return
	}
	ks.tree = t
	ks.basePtr = bp
	if cap(ks.movedf) < len(t.Torsions) {
		ks.movedf = make([][]int32, len(t.Torsions))
	}
	ks.movedf = ks.movedf[:len(t.Torsions)]
	isMobile := make([]bool, len(base))
	for k, tor := range t.Torsions {
		f := ks.movedf[k][:0]
		for _, idx := range tor.Moved {
			if idx == tor.Axis2 {
				continue // axis atom does not move
			}
			f = append(f, int32(idx))
			isMobile[idx] = true
		}
		ks.movedf[k] = f
	}
	ks.mobile = ks.mobile[:0]
	for i, m := range isMobile {
		if m {
			ks.mobile = append(ks.mobile, int32(i))
		}
	}
	// Full base copy once; per-pose resets only touch mobile entries,
	// so immobile entries stay bit-equal to base forever.
	ks.scr = append(ks.scr[:0], base...)
	ks.ready = true
}

// ApplyTorsionsBatch materializes a window of poses straight into SoA
// component lanes: for each pose it applies the torsion rotations to
// the base conformation, re-centres, and applies the rigid-body
// transform, storing atom i of pose p at xs[p*len(base)+i] (ys, zs
// alike). The floating-point operation sequence per pose replicates
// dock.Ligand.CoordsInto exactly — same torsion skip rule, same
// rotation op order, same sequential centroid — so the lane values are
// bit-identical (0-ULP) to the per-pose AoS path.
//
// Compared to staging each pose through an AoS buffer and copying, the
// batch kernel resets only the mobile atoms between poses (rigid
// fragments keep their base coordinates across the whole window) and
// fuses the re-centre + rotate + translate into the lane store.
//
// Each lane must have length len(poses)*len(base). len(base) must
// match the conformation the tree was built for, and the base contents
// must not change between calls that reuse the same scratch (the
// mobile-only reset assumes the immobile entries it cached stay
// valid); dock ligands' base conformations are immutable, so this
// holds by construction there.
//
//exact: bit-identical to the per-pose CoordsInto path
func (t *TorsionTree) ApplyTorsionsBatch(ks *KinScratch, base []Vec3, poses []Placement, xs, ys, zs []float64) {
	stride := len(base)
	if want := len(poses) * stride; len(xs) != want || len(ys) != want || len(zs) != want {
		panic(fmt.Sprintf("chem: ApplyTorsionsBatch lanes %d/%d/%d for %d poses of %d atoms",
			len(xs), len(ys), len(zs), len(poses), stride))
	}
	if len(t.Torsions) == 0 {
		// CoordsInto skips the re-centre when the ligand is rigid:
		// the transform applies to the base conformation directly.
		for p := range poses {
			pl := &poses[p]
			if len(pl.Angles) != 0 {
				panic(fmt.Sprintf("chem: %d torsion angles for %d torsions", len(pl.Angles), len(t.Torsions)))
			}
			q := pl.Orientation.Normalize()
			tr := pl.Translation
			at := p * stride
			for i, v := range base {
				w := q.Rotate(v).Add(tr)
				xs[at+i], ys[at+i], zs[at+i] = w.X, w.Y, w.Z
			}
		}
		return
	}
	ks.prepare(t, base)
	scr := ks.scr
	for p := range poses {
		pl := &poses[p]
		if len(pl.Angles) != len(t.Torsions) {
			panic(fmt.Sprintf("chem: %d torsion angles for %d torsions", len(pl.Angles), len(t.Torsions)))
		}
		// Reset only the atoms the previous pose may have moved.
		for _, i := range ks.mobile {
			scr[i] = base[i]
		}
		for k := range t.Torsions {
			ang := pl.Angles[k]
			if ang == 0 {
				continue
			}
			tor := &t.Torsions[k]
			a := scr[tor.Axis1]
			b := scr[tor.Axis2]
			q := AxisAngleQuat(b.Sub(a), ang)
			for _, idx := range ks.movedf[k] {
				scr[idx] = q.Rotate(scr[idx].Sub(b)).Add(b)
			}
		}
		// Sequential centroid, replicating chem.Centroid's op order.
		var c Vec3
		for _, v := range scr {
			c = c.Add(v)
		}
		c = c.Scale(1 / float64(stride))
		q := pl.Orientation.Normalize()
		tr := pl.Translation
		at := p * stride
		for i, v := range scr {
			w := q.Rotate(v.Sub(c)).Add(tr)
			xs[at+i], ys[at+i], zs[at+i] = w.X, w.Y, w.Z
		}
	}
}

// RigidUnits partitions the nAtoms atoms of the conformation into
// rigid units: two atoms share a unit exactly when every torsion
// either moves both or neither, so their pairwise distance is
// invariant under any torsion angles (and under the rigid-body
// transform). Unit 0 is the root fragment. The returned slice maps
// atom index → unit id, with ids dense in [0, numUnits).
//
// The tolerance-bounded fast scorers use this to fold intramolecular
// pairs inside one unit into a pose-independent constant evaluated
// once at the base geometry.
func (t *TorsionTree) RigidUnits(nAtoms int) []int32 {
	// Signature of an atom = the set of torsions whose effect-set
	// contains it (axis atoms excluded, matching the rotation rule).
	// Torsions are tree-ordered root-outward, so the signature of any
	// moved atom is a chain of nested effect-sets; hashing the chain
	// incrementally gives each distinct signature a distinct id.
	unit := make([]int32, nAtoms)
	type sig struct {
		parent int32 // unit id before this torsion was applied
		tor    int32
	}
	ids := map[sig]int32{}
	next := int32(1)
	for k, tor := range t.Torsions {
		for _, idx := range tor.Moved {
			if idx == tor.Axis2 {
				continue
			}
			s := sig{parent: unit[idx], tor: int32(k)}
			id, ok := ids[s]
			if !ok {
				id = next
				next++
				ids[s] = id
			}
			unit[idx] = id
		}
	}
	return unit
}
