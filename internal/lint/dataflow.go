// A small forward-dataflow fixpoint engine over the CFGs built by
// cfg.go. Analyzers describe their lattice through FlowProblem
// (entry fact, transfer, merge, equality) and get back the in-fact of
// every reachable block; a second, reporting pass then replays the
// transfer function with final facts to emit diagnostics (reporting
// during fixpoint iteration would duplicate findings).
package lint

// Fact is one lattice element. Transfer and Merge must treat facts as
// immutable: return fresh values instead of mutating their inputs, or
// the worklist's convergence test reads its own writes.
type Fact any

// FlowProblem defines one forward dataflow analysis.
type FlowProblem interface {
	// EntryFact is the fact on entry to the function.
	EntryFact() Fact
	// Transfer computes the out-fact of a block from its in-fact.
	Transfer(b *Block, in Fact) Fact
	// Merge joins two path facts at a control-flow confluence.
	Merge(a, b Fact) Fact
	// Equal reports whether two facts are the same lattice element;
	// the fixpoint terminates when every block's out-fact stabilizes.
	Equal(a, b Fact) bool
}

// maxVisitsPerBlock bounds fixpoint iteration as a defensive backstop
// for a non-converging Merge; well-formed finite lattices converge in
// a handful of passes.
const maxVisitsPerBlock = 64

// ForwardFlow runs the analysis to fixpoint and returns the in-fact of
// every reachable block. Unreachable blocks have no entry in the map.
func ForwardFlow(g *CFG, p FlowProblem) map[*Block]Fact {
	rpo := g.ReversePostorder()
	pos := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		pos[b] = i
	}

	in := make(map[*Block]Fact, len(rpo))
	out := make(map[*Block]Fact, len(rpo))
	visits := make(map[*Block]int, len(rpo))

	inQueue := make(map[*Block]bool, len(rpo))
	queue := append([]*Block(nil), rpo...)
	for _, b := range rpo {
		inQueue[b] = true
	}

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false

		var inF Fact
		have := false
		if b == g.Entry {
			inF = p.EntryFact()
			have = true
		}
		for _, pred := range b.Preds {
			o, ok := out[pred]
			if !ok {
				continue // predecessor not yet reached
			}
			if !have {
				inF, have = o, true
			} else {
				inF = p.Merge(inF, o)
			}
		}
		if !have {
			continue // block unreachable so far
		}
		in[b] = inF

		if visits[b]++; visits[b] > maxVisitsPerBlock {
			continue
		}
		o := p.Transfer(b, inF)
		if old, ok := out[b]; ok && p.Equal(old, o) {
			continue
		}
		out[b] = o
		for _, s := range b.Succs {
			if !inQueue[s] {
				inQueue[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in
}
