package ad4

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/chem"
	"repro/internal/dock"
	"repro/internal/parallel"
	"repro/internal/prep"
)

// ProgramName is the banner written into DLG files, matching the
// version the paper deployed.
const ProgramName = "AutoDock 4.2.5.1"

// Engine runs Lamarckian-GA dockings with the parameters of a DPF.
type Engine struct {
	Params prep.DPF
	Box    dock.Box
	// Workers bounds the GA-run fan-out: 0 sizes it from the
	// process-wide CPU token budget (internal/parallel), 1 forces
	// sequential runs, n > 1 uses exactly n workers. Output is
	// byte-identical for every value — runs have independent seeds
	// and land in run order.
	Workers int
	// MaxBatch controls offspring evaluation batching: 0 (the
	// default) accumulates a whole generation's offspring and scores
	// them in one ScoreBatch call (flushing early when a Lamarckian
	// local search needs a score), n > 0 caps each batch at n poses,
	// and n < 0 forces the per-pose reference path. Output is
	// byte-identical for every value (pinned by
	// TestDockMaxBatchDeterministic).
	MaxBatch int
	// Precision selects candidate evaluation: dock.PrecisionExact (the
	// default) scores everything through the bit-exact kernels;
	// dock.PrecisionTolerance screens Solis-Wets candidates — the bulk
	// of an LGA run's evaluations — with the fast kernel and confirms
	// survivors with the exact scorer. Population and offspring scores
	// stay exact in both modes (they persist into tournaments and
	// champion updates), so tolerance-mode trajectories — and hence
	// Dock output — are byte-identical to exact mode for every
	// MaxBatch value (pinned by TestDockPrecisionTolerance).
	Precision dock.Precision
}

// Dock executes Params.Runs independent LGA runs and collects the
// per-run best poses, energies and RMSDs (vs the ligand's input
// frame, AutoDock's DLG convention). Runs are fanned over a bounded
// worker pool; each run draws from its own seeded RNG
// (RandomSeed + run·7919) and fills its own slot, so the merged
// result is identical for any worker count.
func (e *Engine) Dock(s *Scorer, lig *dock.Ligand) (*dock.Result, error) {
	if e.Params.Runs <= 0 || e.Params.PopSize <= 1 {
		return nil, fmt.Errorf("ad4: invalid GA parameters (runs=%d pop=%d)",
			e.Params.Runs, e.Params.PopSize)
	}
	res := &dock.Result{
		Program:  ProgramName,
		Receptor: s.Maps.Receptor,
		Ligand:   lig.Mol.Name,
		Seed:     e.Params.RandomSeed,
	}
	nRuns := e.Params.Runs
	runs := make([]dock.RunResult, nRuns)
	errs := make([]error, nRuns)

	oneRun := func(run int, ws *dock.Workspace) {
		r := rand.New(rand.NewSource(e.Params.RandomSeed + int64(run)*7919))
		pose, feb := e.runLGA(r, s, lig, ws)
		rmsd, err := chem.RMSD(lig.Coords(pose), lig.Reference())
		if err != nil {
			errs[run-1] = fmt.Errorf("ad4: rmsd: %w", err)
			return
		}
		runs[run-1] = dock.RunResult{Run: run, Pose: pose, FEB: feb, RMSD: rmsd}
	}

	workers := e.Workers
	release := func() {}
	if workers <= 0 {
		workers, release = parallel.Tokens().Grab(nRuns)
	}
	if workers > nRuns {
		workers = nRuns
	}
	if workers <= 1 {
		ws := dock.NewWorkspace(lig)
		for run := 1; run <= nRuns; run++ {
			oneRun(run, ws)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := dock.NewWorkspace(lig)
				for {
					run := int(next.Add(1))
					if run > nRuns {
						return
					}
					oneRun(run, ws)
				}
			}()
		}
		wg.Wait()
	}
	release()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Runs = runs
	return res, nil
}

type individual struct {
	pose dock.Pose
	feb  float64
}

// runLGA is one Lamarckian GA run: generational GA with tournament
// selection, uniform pose crossover, Cauchy mutation and Solis-Wets
// local search whose result is written back into the genome
// (Lamarckian inheritance). The default path evaluates offspring
// through the SoA batch kernel; MaxBatch < 0 selects the per-pose
// reference loop the batched path is golden-tested against.
func (e *Engine) runLGA(r *rand.Rand, s *Scorer, lig *dock.Ligand, ws *dock.Workspace) (dock.Pose, float64) {
	if e.MaxBatch < 0 {
		return e.runLGASeq(r, s, lig, ws)
	}
	return e.runLGABatch(r, s, lig, ws)
}

// runLGABatch is runLGASeq restructured around the SoA batch kernel.
// The GA's evaluations consume no randomness, so deferring them
// cannot perturb the seeded stream: the initial population is drawn
// pose by pose and scored in one batch, and each generation's
// offspring are generated (tournament, crossover, mutation draws — all
// before any evaluation of that offspring in the reference order) and
// appended to the batch. The one draw the reference path takes after
// scoring an offspring — the Lamarckian local-search gate — is drawn
// eagerly at append time, which is stream-identical because the score
// between them draws nothing. The batch is flushed when full
// (MaxBatch poses; 0 = a whole generation) and on demand when a
// gated offspring needs its score for Solis-Wets, which then runs
// sequentially exactly as the reference path does. Champion updates
// are replayed in offspring order at generation end — nothing inside
// a generation reads the champion, so the running minimum is the
// same one the reference loop maintains online — making the whole
// trajectory, and hence the returned pose, bit-identical for every
// MaxBatch value.
func (e *Engine) runLGABatch(r *rand.Rand, s *Scorer, lig *dock.Ligand, ws *dock.Workspace) (dock.Pose, float64) {
	nt := lig.NumTorsions()
	pop := make([]individual, e.Params.PopSize)
	next := make([]individual, e.Params.PopSize)
	for i := range pop {
		pop[i].pose.Torsions = make([]float64, 0, nt)
		next[i].pose.Torsions = make([]float64, 0, nt)
	}
	maxB := e.MaxBatch
	if maxB <= 0 || maxB > len(pop) {
		maxB = len(pop)
	}
	b := ws.Batch()
	febs := ws.Floats(maxB)
	evals := 0

	for i := range pop {
		dock.RandomPoseInto(r, &pop[i].pose, e.Box, nt)
	}
	for base := 0; base < len(pop); base += maxB {
		end := base + maxB
		if end > len(pop) {
			end = len(pop)
		}
		b.Reset()
		for i := base; i < end; i++ {
			b.Append(pop[i].pose)
		}
		s.ScoreBatch(b, febs[:end-base])
		evals += end - base
		for i := base; i < end; i++ {
			pop[i].feb = febs[i-base]
		}
	}
	best := individual{pose: dock.Pose{Torsions: make([]float64, 0, nt)}, feb: math.Inf(1)}
	for i := range pop {
		if pop[i].feb < best.feb {
			best.pose.Set(pop[i].pose)
			best.feb = pop[i].feb
		}
	}

	pending := make([]int, 0, len(pop))
	for gen := 0; gen < e.Params.Gens && evals < e.Params.Evals; gen++ {
		next[0].pose.Set(best.pose)
		next[0].feb = best.feb
		b.Reset()
		pending = pending[:0]
		flush := func() {
			if b.Len() == 0 {
				return
			}
			s.ScoreBatch(b, febs[:b.Len()])
			evals += b.Len()
			for j, idx := range pending {
				next[idx].feb = febs[j]
			}
			b.Reset()
			pending = pending[:0]
		}
		for i := 1; i < len(pop); i++ {
			a := tournament(r, pop)
			bi := tournament(r, pop)
			child := &next[i].pose
			if r.Float64() < e.Params.CrossRate {
				crossoverInto(r, child, pop[a].pose, pop[bi].pose)
			} else {
				child.Set(pop[a].pose)
			}
			mutateInPlace(r, child, e.Params.MutRate, e.Box)
			// The reference path's next draw is the Lamarckian gate,
			// taken right after the (draw-free) evaluation.
			ls := r.Float64() < e.Params.LocalRate
			b.Append(*child)
			pending = append(pending, i)
			if ls {
				flush()
				next[i].feb = e.solisWetsWindowed(r, s, ws, child, next[i].feb, &evals)
			} else if b.Len() >= maxB {
				flush()
			}
		}
		flush()
		for i := 1; i < len(pop); i++ {
			if next[i].feb < best.feb {
				best.pose.Set(next[i].pose)
				best.feb = next[i].feb
			}
		}
		pop, next = next, pop
	}
	champ := ws.Get()
	defer ws.Put(champ)
	champ.Set(best.pose)
	feb := e.solisWetsWindowed(r, s, ws, champ, best.feb, new(int))
	if feb < best.feb {
		return champ.Clone(), feb
	}
	return best.pose, best.feb
}

// runLGASeq is the per-pose reference run the batched path must match
// byte-for-byte (Engine.MaxBatch < 0 selects it).
func (e *Engine) runLGASeq(r *rand.Rand, s *Scorer, lig *dock.Ligand, ws *dock.Workspace) (dock.Pose, float64) {
	nt := lig.NumTorsions()
	pop := make([]individual, e.Params.PopSize)
	next := make([]individual, e.Params.PopSize)
	for i := range pop {
		pop[i].pose.Torsions = make([]float64, 0, nt)
		next[i].pose.Torsions = make([]float64, 0, nt)
	}
	evals := 0
	score := func(p dock.Pose) float64 {
		evals++
		return s.Score(ws.Coords(p))
	}
	for i := range pop {
		dock.RandomPoseInto(r, &pop[i].pose, e.Box, nt)
		pop[i].feb = score(pop[i].pose)
	}
	best := individual{pose: dock.Pose{Torsions: make([]float64, 0, nt)}, feb: math.Inf(1)}
	for i := range pop {
		if pop[i].feb < best.feb {
			best.pose.Set(pop[i].pose)
			best.feb = pop[i].feb
		}
	}

	for gen := 0; gen < e.Params.Gens && evals < e.Params.Evals; gen++ {
		// Elitism: carry the best genome forward unchanged.
		next[0].pose.Set(best.pose)
		next[0].feb = best.feb
		for i := 1; i < len(pop); i++ {
			a := tournament(r, pop)
			b := tournament(r, pop)
			child := &next[i].pose
			if r.Float64() < e.Params.CrossRate {
				crossoverInto(r, child, pop[a].pose, pop[b].pose)
			} else {
				child.Set(pop[a].pose)
			}
			mutateInPlace(r, child, e.Params.MutRate, e.Box)
			feb := score(*child)
			// Lamarckian local search on a fraction of offspring.
			if r.Float64() < e.Params.LocalRate {
				feb = e.solisWets(r, s, ws, child, feb, &evals)
			}
			next[i].feb = feb
			if feb < best.feb {
				best.pose.Set(*child)
				best.feb = feb
			}
		}
		pop, next = next, pop
	}
	// Final local refinement of the champion.
	champ := ws.Get()
	defer ws.Put(champ)
	champ.Set(best.pose)
	feb := e.solisWets(r, s, ws, champ, best.feb, new(int))
	if feb < best.feb {
		return champ.Clone(), feb
	}
	return best.pose, best.feb
}

func tournament(r *rand.Rand, pop []individual) int {
	a := r.Intn(len(pop))
	b := r.Intn(len(pop))
	if pop[a].feb <= pop[b].feb {
		return a
	}
	return b
}

// crossoverInto mixes two parent poses gene-wise into dst: translation
// lerp, orientation slerp and per-torsion pick. The RNG draw order
// (mix fraction first, then one draw per torsion) matches the original
// allocating crossover, so seeded trajectories are unchanged.
func crossoverInto(r *rand.Rand, dst *dock.Pose, a, b dock.Pose) {
	t := r.Float64()
	dst.Set(a)
	dst.Translation = a.Translation.Lerp(b.Translation, t)
	dst.Orientation = a.Orientation.Slerp(b.Orientation, t)
	for i := range dst.Torsions {
		if r.Float64() < 0.5 {
			dst.Torsions[i] = b.Torsions[i]
		}
	}
}

// mutateInPlace applies Cauchy-distributed gene perturbations at the
// given per-gene rate, clamping the translation back into the box.
func mutateInPlace(r *rand.Rand, p *dock.Pose, rate float64, box dock.Box) {
	cauchy := func(scale float64) float64 {
		return scale * math.Tan(math.Pi*(r.Float64()-0.5))
	}
	if r.Float64() < rate*10 { // translation gene
		p.Translation = p.Translation.Add(chem.V(cauchy(1.0), cauchy(1.0), cauchy(1.0)))
	}
	if r.Float64() < rate*10 { // orientation gene
		axis := chem.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		p.Orientation = chem.AxisAngleQuat(axis, cauchy(0.3)).Mul(p.Orientation).Normalize()
	}
	for i := range p.Torsions {
		if r.Float64() < rate*10 {
			p.Torsions[i] = wrap(p.Torsions[i] + cauchy(0.3))
		}
	}
	dock.ClampToBox(p, box)
}

func wrap(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// solisWets is AutoDock's local search: adaptive random-direction
// descent. Successful steps expand the step size and leave a bias;
// failures try the opposite direction, then shrink. The pose is
// refined in place through the workspace — zero allocations per
// candidate — and the improved energy returned.
//
// Under dock.PrecisionTolerance each candidate is screened with the
// fast kernel first: beyond curFeb + FastMargin(curFeb) its exact
// score provably cannot improve, so the reject (and the step-size
// bookkeeping, which only sees the accept/reject bit) is identical to
// the exact path's without paying for an exact evaluation; survivors
// are exact-rescored and judged on the exact value. The eval counter
// ticks for screened candidates too, keeping generation gating
// bit-identical across modes.
func (e *Engine) solisWets(r *rand.Rand, s *Scorer, ws *dock.Workspace, p *dock.Pose, feb float64, evals *int) float64 {
	rho := 1.0
	const rhoMin = 0.01
	succ, fail := 0, 0
	tol := e.Precision == dock.PrecisionTolerance
	cur, cand := ws.Get(), ws.Get()
	defer ws.Put(cur)
	defer ws.Put(cand)
	cur.Set(*p)
	curFeb := feb
	for it := 0; it < e.Params.LocalIts && rho > rhoMin; it++ {
		dock.PerturbInto(r, cand, *cur, rho*0.5, rho*0.15)
		dock.ClampToBox(cand, e.Box)
		*evals++
		candFeb := math.Inf(1)
		if !tol || s.ScoreFast1(ws.Batch(), *cand) <= curFeb+FastMargin(curFeb) {
			candFeb = s.Score(ws.Coords(*cand))
		}
		if candFeb < curFeb {
			cur, cand = cand, cur
			curFeb = candFeb
			succ++
			fail = 0
		} else {
			fail++
			succ = 0
		}
		if succ >= 4 {
			rho *= 2
			succ = 0
		}
		if fail >= 4 {
			rho *= 0.5
			fail = 0
		}
	}
	p.Set(*cur)
	return curFeb
}

// solisWetsWindowed is solisWets restructured around speculative
// incumbent-anchored windows, byte-identical to it by construction
// (the batched LGA uses it; the reference path keeps solisWets, and
// TestDockMaxBatchDeterministic pins the two against each other).
//
// The restructuring rests on two facts about the sequential loop.
// First, every iteration consumes exactly PerturbDrawCount draws
// before anything else reads the RNG, so the draws for a run of
// future iterations can be taken up front without moving any draw
// relative to the stream. Second, rho and the incumbent can only
// change at an accept (succ bookkeeping, swap) or when fail reaches
// 4 (halving) — so across a window of w = min(4−fail, remaining
// iterations) candidates, as long as every one of them is rejected,
// all w are perturbations of the SAME incumbent at the SAME rho, and
// the halving (and any rho ≤ rhoMin exit) cannot fire before the
// window's last element. Rejection is the overwhelmingly common case
// in Solis-Wets, so the window usually speculates correctly.
//
// Each window therefore: draws w·PerturbDrawCount raws, materializes
// the w candidates from the incumbent, sets the batch window at the
// incumbent with a displacement bound computed from the ACTUAL draws
// (translation norm, rotation angle, per-torsion arcs — so the bound
// is tight for this window, not a worst case), and scores all w in
// one batched call — fast kernel under tolerance mode, exact
// otherwise — through the shared window gather/live-pair machinery.
// The results are then replayed in iteration order with the exact
// sequential bookkeeping. Until the first accept the speculation is
// valid: the batched score of candidate j is bit-identical to what
// the sequential loop would have computed (kernel pose-purity), so
// screens, accepts and evals tick identically. At the first accept
// the remaining candidates are stale — built from the wrong
// incumbent — so the replay falls back to rebuilding each remaining
// candidate from its pre-drawn raws against the CURRENT incumbent
// and rho, which is exactly the sequential iteration with its draws
// taken earlier. Within a window the loop guard cannot exit early
// (rho halves only at the window's last element and only doubles
// after accepts), so the draw count per window matches the
// sequential path exactly.
func (e *Engine) solisWetsWindowed(r *rand.Rand, s *Scorer, ws *dock.Workspace, p *dock.Pose, feb float64, evals *int) float64 {
	rho := 1.0
	const rhoMin = 0.01
	succ, fail := 0, 0
	tol := e.Precision == dock.PrecisionTolerance
	cur, cand := ws.Get(), ws.Get()
	defer ws.Put(cur)
	defer ws.Put(cand)
	cur.Set(*p)
	curFeb := feb
	nt := len(p.Torsions)
	nd := dock.PerturbDrawCount(nt)
	arcMax, arcMean := s.Lig.ArcRadii()
	b := ws.Batch()
	defer b.ClearWindow()
	var febs [4]float64
	for it := 0; it < e.Params.LocalIts && rho > rhoMin; {
		w := 4 - fail
		if rem := e.Params.LocalIts - it; w > rem {
			w = rem
		}
		raws := ws.Floats(w * nd)
		for j := 0; j < w; j++ {
			dock.PerturbDraws(r, raws[j*nd:(j+1)*nd])
		}
		dt, da := rho*0.5, rho*0.15
		radius := b.SetWindow(*cur)
		bound := 0.0
		for j := 0; j < w; j++ {
			raw := raws[j*nd : (j+1)*nd]
			dT := dt * math.Sqrt(raw[0]*raw[0]+raw[1]*raw[1]+raw[2]*raw[2])
			d := chem.DisplacementBound(dT, math.Abs(raw[6])*da, 0, radius, nil, nil)
			for k := 0; k < nt; k++ {
				d += math.Abs(raw[7+k]) * da * (arcMax[k] + arcMean[k])
			}
			if d > bound {
				bound = d
			}
		}
		b.SetWindowBound(bound)
		b.Reset()
		for j := 0; j < w; j++ {
			dock.PerturbApplyRaw(raws[j*nd:(j+1)*nd], cand, *cur, dt, da)
			// ClampToBox only pulls coordinates toward the in-box
			// incumbent, so it cannot push a pose past the bound.
			dock.ClampToBox(cand, e.Box)
			b.Append(*cand)
		}
		if tol {
			s.ScoreBatchFast(b, febs[:w])
		} else {
			s.ScoreBatch(b, febs[:w])
		}
		b.Reset()
		stale := false
		for j := 0; j < w; j++ {
			raw := raws[j*nd : (j+1)*nd]
			candFeb := math.Inf(1)
			if !stale {
				if !tol {
					candFeb = febs[j]
					if candFeb < curFeb {
						dock.PerturbApplyRaw(raw, cand, *cur, dt, da)
						dock.ClampToBox(cand, e.Box)
					}
				} else if febs[j] <= curFeb+FastMargin(curFeb) {
					dock.PerturbApplyRaw(raw, cand, *cur, dt, da)
					dock.ClampToBox(cand, e.Box)
					candFeb = s.Score(ws.Coords(*cand))
				}
			} else {
				dock.PerturbApplyRaw(raw, cand, *cur, rho*0.5, rho*0.15)
				dock.ClampToBox(cand, e.Box)
				if !tol || s.ScoreFast1(b, *cand) <= curFeb+FastMargin(curFeb) {
					candFeb = s.Score(ws.Coords(*cand))
				}
			}
			*evals++
			if candFeb < curFeb {
				cur, cand = cand, cur
				curFeb = candFeb
				succ++
				fail = 0
				stale = true
			} else {
				fail++
				succ = 0
			}
			if succ >= 4 {
				rho *= 2
				succ = 0
			}
			if fail >= 4 {
				rho *= 0.5
				fail = 0
			}
			it++
		}
	}
	p.Set(*cur)
	return curFeb
}
