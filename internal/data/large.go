package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/chem"
)

// LargeLigandCode and LargeReceptorCode name the synthetic
// L2-overflow benchmark pair: a production-sized, many-type flexible
// ligand and a wide-cavity receptor sized to wrap it. The pair is the
// second workload axis of `dockbench -exp kernels` — the reference
// pair's exact tables fit L2, so the fast kernels' table-traffic win
// only shows once the working set overflows; this pair is built to
// overflow it (≥14 AD4 types drive the Vina exact inter+intra table
// set into the megabytes).
const (
	LargeLigandCode   = "XL1"
	LargeReceptorCode = "9XLR"
)

// xlBuilder grows the large ligand atom by atom with a small seeded
// positional jitter, so the geometry is deterministic but free of
// exact symmetries.
type xlBuilder struct {
	m *chem.Molecule
	r *rand.Rand
}

func (b *xlBuilder) atom(e chem.Element, pos chem.Vec3) int {
	const jit = 0.05
	pos = pos.Add(chem.V(
		(b.r.Float64()-0.5)*jit,
		(b.r.Float64()-0.5)*jit,
		(b.r.Float64()-0.5)*jit))
	i := len(b.m.Atoms)
	b.m.Atoms = append(b.m.Atoms, chem.Atom{
		Serial:  i + 1,
		Name:    fmt.Sprintf("%s%d", e, i+1),
		Element: e,
		Pos:     pos,
		HetAtm:  true,
		Residue: b.m.Name,
	})
	return i
}

func (b *xlBuilder) bond(i, j int, o chem.BondOrder) {
	b.m.Bonds = append(b.m.Bonds, chem.Bond{A: i, B: j, Order: o})
}

// ring attaches a six-membered aromatic ring to parent (at pPos) along
// unit direction d, the ring plane spanned by d and v. hetAt ≥ 0 makes
// that ring slot a nitrogen (pyridine → AD4 type NA after prep).
// Returns the para atom's index and position, for biphenyl chaining
// and para substituents.
func (b *xlBuilder) ring(parent int, pPos, d, v chem.Vec3, hetAt int) (int, chem.Vec3) {
	const bondLen, ringR = 1.48, 1.40
	c := pPos.Add(d.Scale(bondLen + ringR))
	var idx [6]int
	for k := 0; k < 6; k++ {
		ang := math.Pi + float64(k)*math.Pi/3
		pos := c.Add(d.Scale(ringR * math.Cos(ang))).Add(v.Scale(ringR * math.Sin(ang)))
		e := chem.Carbon
		if k == hetAt {
			e = chem.Nitrogen
		}
		idx[k] = b.atom(e, pos)
	}
	for k := 0; k < 6; k++ {
		b.bond(idx[k], idx[(k+1)%6], chem.Aromatic)
	}
	b.bond(parent, idx[0], chem.Single)
	return idx[3], c.Add(d.Scale(ringR))
}

// GenerateLargeLigand deterministically builds the L2-overflow
// benchmark ligand: a 20-heavy-atom backbone (ether, thioether and
// amine stations) carrying eight aromatic stacks — two pyridines, four
// biphenyls, one terphenyl — decorated with every halogen, a phenol, an
// aniline, a thiol and a zinc-capped phosphate. After preparation it
// lands at ~120–130 docked atoms, 14 distinct AD4 atom types and ~34
// rotatable bonds, the regime where the exact radial-table working set
// overflows L2 and per-window kinematics dominate a naive scorer.
func GenerateLargeLigand() (*chem.Molecule, LigandInfo) {
	r := rand.New(rand.NewSource(Seed(LargeLigandCode) ^ 0x9e3779))
	b := &xlBuilder{m: &chem.Molecule{Name: LargeLigandCode}, r: r}
	xhat, yhat, zhat := chem.V(1, 0, 0), chem.V(0, 1, 0), chem.V(0, 0, 1)

	// Backbone: zigzag chain along x. Stations: 3 = ether oxygen (OA),
	// 8 = thioether sulfur (SA), 12 = amine nitrogen (N, keeps its H).
	const nChain = 20
	chain := make([]int, nChain)
	cpos := make([]chem.Vec3, nChain)
	for i := 0; i < nChain; i++ {
		e := chem.Carbon
		switch i {
		case 3:
			e = chem.Oxygen
		case 8:
			e = chem.Sulfur
		case 12:
			e = chem.Nitrogen
		}
		cpos[i] = chem.V(float64(i)*1.32, 0.38*float64(i%2), 0)
		chain[i] = b.atom(e, cpos[i])
		if i > 0 {
			b.bond(chain[i-1], chain[i], chem.Single)
		}
	}
	hn := b.atom(chem.Hydrogen, cpos[12].Add(zhat.Scale(1.02)))
	b.bond(chain[12], hn, chem.Single)
	// Thiol below the chain: S bonded to H types as S (vs the bare
	// thioether's SA).
	st := b.atom(chem.Sulfur, cpos[5].Add(zhat.Scale(-1.8)))
	b.bond(chain[5], st, chem.Single)
	hs := b.atom(chem.Hydrogen, cpos[5].Add(zhat.Scale(-1.8)).Add(xhat.Scale(1.34)))
	b.bond(st, hs, chem.Single)

	// Aromatic stacks off the even chain carbons, alternating sides so
	// same-side stacks sit ≥ 5.3 Å apart in x; every ring plane is y–z,
	// so a stack never grows toward its x neighbours. depth chains
	// rings para-to-para (biphenyl/terphenyl single bonds — rotatable),
	// sub/subH decorate the outermost para position.
	type ringSpec struct {
		at    int
		side  float64
		het   int
		depth int
		sub   chem.Element
		subH  int
	}
	specs := []ringSpec{
		{0, +1, -1, 2, chem.Fluorine, 0},
		{2, -1, 2, 1, chem.Chlorine, 0},
		{4, +1, -1, 2, chem.Oxygen, 1}, // phenol → OA + HD
		{6, -1, -1, 1, chem.Bromine, 0},
		{10, +1, 2, 3, chem.Iodine, 0}, // pyridine-rooted terphenyl
		{14, -1, -1, 2, chem.Nitrogen, 2}, // aniline → N + 2 HD
		{16, +1, -1, 2, chem.Fluorine, 0},
		{18, -1, -1, 1, chem.Chlorine, 0},
	}
	for _, sp := range specs {
		d := yhat.Scale(sp.side)
		parent, pPos := chain[sp.at], cpos[sp.at]
		het := sp.het
		for dep := 0; dep < sp.depth; dep++ {
			parent, pPos = b.ring(parent, pPos, d, zhat, het)
			het = -1 // only the innermost ring carries the nitrogen
		}
		if sp.sub != "" {
			sub := b.atom(sp.sub, pPos.Add(d.Scale(1.55)))
			b.bond(parent, sub, chem.Single)
			for h := 0; h < sp.subH; h++ {
				hp := pPos.Add(d.Scale(2.05)).Add(xhat.Scale(0.9 * float64(1-2*h)))
				b.bond(sub, b.atom(chem.Hydrogen, hp), chem.Single)
			}
		}
	}

	// Zinc-capped phosphate on the chain end: P + three oxygens, one
	// coordinating the Zn ion (types P, OA, Zn).
	p := b.atom(chem.Phosphorus, cpos[nChain-1].Add(xhat.Scale(1.8)))
	b.bond(chain[nChain-1], p, chem.Single)
	oDirs := []chem.Vec3{
		chem.V(0.55, 0.83, 0), chem.V(0.55, -0.42, 0.72), chem.V(0.55, -0.42, -0.72),
	}
	var ox [3]int
	for k, d := range oDirs {
		ox[k] = b.atom(chem.Oxygen, cpos[nChain-1].Add(xhat.Scale(1.8)).Add(d.Scale(1.58)))
		b.bond(p, ox[k], chem.Single)
	}
	zn := b.atom(chem.Zinc, cpos[nChain-1].Add(xhat.Scale(1.8)).
		Add(oDirs[0].Scale(1.58)).Add(yhat.Scale(1.9)))
	b.bond(ox[0], zn, chem.Single)

	b.m.Translate(b.m.Centroid().Neg())
	info := LigandInfo{
		Code:       LargeLigandCode,
		HeavyAtoms: b.m.HeavyAtomCount(),
	}
	return b.m, info
}

// GenerateLargeReceptor deterministically builds the wide-cavity
// receptor of the L2-overflow pair: ~850 pocket atoms on a spherical
// shell from radius 11 to 18 Å with the usual 60° entry channel. The
// large ligand (radius ~16 Å plus the sweep's ±5 Å translations)
// interpenetrates the shell, so peripheral ligand atoms see dense
// neighbour sets — the gather-heavy regime the window-shared gather
// targets — while clashed poses exercise the r⁻¹² wall exactly as
// production screens do.
func GenerateLargeReceptor() (*chem.Molecule, ReceptorInfo) {
	info := ReceptorInfo{
		Code:     LargeReceptorCode,
		Residues: 720,
		PocketR:  11.0,
		Class:    LargeReceptor,
	}
	r := rand.New(rand.NewSource(Seed(LargeReceptorCode) ^ 0x5ec7e7))
	m := &chem.Molecule{Name: LargeReceptorCode}
	const nAtoms = 850
	for i := 0; i < nAtoms; i++ {
		var dir chem.Vec3
		for {
			z := r.Float64()*2 - 1
			phi := r.Float64() * 2 * math.Pi
			s := math.Sqrt(1 - z*z)
			dir = chem.V(s*math.Cos(phi), s*math.Sin(phi), z)
			if dir.Z < 0.5 {
				break
			}
		}
		rad := info.PocketR + r.Float64()*7.0
		pos := dir.Scale(rad)
		elem, name, charge := receptorAtomIdentity(r, i)
		m.Atoms = append(m.Atoms, chem.Atom{
			Serial:  i + 1,
			Name:    name,
			Element: elem,
			Pos:     pos,
			Charge:  charge,
			Residue: residueName(r),
			ResSeq:  i/4 + 1,
			Chain:   "A",
		})
	}
	return m, info
}
