package dock

import "repro/internal/chem"

// Workspace is the per-worker scratch state of a conformational
// search: one reusable coordinate buffer plus a small free-list of
// scratch poses with ligand-sized torsion storage. Every candidate
// evaluation — materialize coordinates, score, keep or discard —
// runs with zero heap allocations once the workspace is warm, which
// is what lets the search pools of the Vina and AD4 engines spin
// thousands of evaluations per chain without pressuring the GC.
//
// A Workspace is NOT safe for concurrent use; each search worker owns
// its own. The coordinate slice returned by Coords aliases the
// workspace buffer and is overwritten by the next Coords call.
type Workspace struct {
	lig    *Ligand
	coords []chem.Vec3
	free   []*Pose
	batch  *Batch
	floats []float64
}

// NewWorkspace builds a workspace sized for the ligand's atom and
// torsion counts.
func NewWorkspace(lig *Ligand) *Workspace {
	return &Workspace{
		lig:    lig,
		coords: make([]chem.Vec3, 0, lig.Mol.NumAtoms()),
		free:   make([]*Pose, 0, 8),
	}
}

// Ligand returns the conformational model the workspace serves.
func (w *Workspace) Ligand() *Ligand { return w.lig }

// Coords materializes the pose into the workspace buffer and returns
// it. The slice is reused: it is only valid until the next Coords
// call on this workspace.
func (w *Workspace) Coords(p Pose) []chem.Vec3 {
	w.coords = w.lig.CoordsInto(p, w.coords)
	return w.coords
}

// Get hands out a scratch pose with ligand-sized torsion capacity,
// recycled through Put. Steady-state Get/Put cycles allocate nothing.
func (w *Workspace) Get() *Pose {
	if n := len(w.free); n > 0 {
		p := w.free[n-1]
		w.free = w.free[:n-1]
		return p
	}
	return &Pose{Torsions: make([]float64, 0, w.lig.NumTorsions())}
}

// Put returns a scratch pose to the free list.
func (w *Workspace) Put(p *Pose) { w.free = append(w.free, p) }

// Batch returns the workspace's SoA scoring batch, built lazily and
// reused across calls. Like the workspace itself it is single-owner
// scratch: the batched search loops fill it from free-list poses,
// score it in one ScoreBatch call, and Reset it for the next window.
func (w *Workspace) Batch() *Batch {
	if w.batch == nil {
		w.batch = NewBatch(w.lig, 16)
	}
	return w.batch
}

// Floats returns a reusable float64 scratch slice of length n (not
// zeroed) — the per-worker result buffer the batched search loops pass
// to ScoreBatch. It is distinct storage from Batch.Scratch, so the two
// never alias.
func (w *Workspace) Floats(n int) []float64 {
	if cap(w.floats) < n {
		w.floats = make([]float64, n)
	}
	return w.floats[:n]
}
