package formats

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/chem"
	"repro/internal/data"
	"repro/internal/prep"
)

// Property: every ligand of the Table 2 workload survives the full
// SciDock file flow — SDF → Mol2 → PDBQT — with coordinates, charges
// and torsion counts intact at each hop. This is the end-to-end
// parser/writer contract the workflow depends on.
func TestWorkloadLigandFileFlowProperty(t *testing.T) {
	for _, code := range data.LigandCodes {
		lig, _ := data.GenerateLigand(code)

		// SDF round trip.
		var sdf bytes.Buffer
		if err := WriteSDF(&sdf, lig); err != nil {
			t.Fatalf("%s: write sdf: %v", code, err)
		}
		fromSDF, err := ParseSDF(&sdf, code)
		if err != nil {
			t.Fatalf("%s: parse sdf: %v", code, err)
		}
		if fromSDF.NumAtoms() != lig.NumAtoms() || len(fromSDF.Bonds) != len(lig.Bonds) {
			t.Fatalf("%s: sdf round trip lost atoms/bonds", code)
		}
		for i := range lig.Atoms {
			if fromSDF.Atoms[i].Pos.Dist(lig.Atoms[i].Pos) > 5e-4 {
				t.Fatalf("%s: sdf atom %d drifted", code, i)
			}
		}

		// Babel conversion, then Mol2 round trip.
		mol2, err := prep.ConvertSDFToMol2(fromSDF)
		if err != nil {
			t.Fatalf("%s: babel: %v", code, err)
		}
		var m2 bytes.Buffer
		if err := WriteMol2(&m2, mol2); err != nil {
			t.Fatalf("%s: write mol2: %v", code, err)
		}
		fromMol2, err := ParseMol2(&m2, code)
		if err != nil {
			t.Fatalf("%s: parse mol2: %v", code, err)
		}
		if fromMol2.NumAtoms() != mol2.NumAtoms() {
			t.Fatalf("%s: mol2 round trip lost atoms", code)
		}
		for i := range mol2.Atoms {
			if math.Abs(fromMol2.Atoms[i].Charge-mol2.Atoms[i].Charge) > 5e-4 {
				t.Fatalf("%s: mol2 atom %d charge drifted", code, i)
			}
		}

		// Preparation, then PDBQT round trip.
		pl, err := prep.PrepareLigand(fromMol2)
		if err != nil {
			t.Fatalf("%s: prepare: %v", code, err)
		}
		var pq bytes.Buffer
		if err := WritePDBQTLigand(&pq, pl.Mol, pl.Tree); err != nil {
			t.Fatalf("%s: write pdbqt: %v", code, err)
		}
		fromPQ, err := ParsePDBQT(&pq, code)
		if err != nil {
			t.Fatalf("%s: parse pdbqt: %v", code, err)
		}
		if fromPQ.Mol.NumAtoms() != pl.Mol.NumAtoms() {
			t.Fatalf("%s: pdbqt round trip lost atoms (%d vs %d)",
				code, fromPQ.Mol.NumAtoms(), pl.Mol.NumAtoms())
		}
		if fromPQ.Tree.NumTorsions() != pl.Tree.NumTorsions() {
			t.Fatalf("%s: torsion count %d != %d",
				code, fromPQ.Tree.NumTorsions(), pl.Tree.NumTorsions())
		}
		// Charge conservation across the whole flow (PDBQT precision).
		if math.Abs(fromPQ.Mol.TotalCharge()-mol2.TotalCharge()) > 0.02 {
			t.Fatalf("%s: total charge drifted %v -> %v",
				code, mol2.TotalCharge(), fromPQ.Mol.TotalCharge())
		}
	}
}

// Property: every receptor of the workload survives PDB and PDBQT
// round trips.
func TestWorkloadReceptorFileFlowProperty(t *testing.T) {
	for _, code := range data.ReceptorCodes[:40] {
		rec, _ := data.GenerateReceptor(code)
		var pdb bytes.Buffer
		if err := WritePDB(&pdb, rec); err != nil {
			t.Fatalf("%s: write pdb: %v", code, err)
		}
		fromPDB, err := ParsePDB(&pdb, code)
		if err != nil {
			t.Fatalf("%s: parse pdb: %v", code, err)
		}
		if fromPDB.NumAtoms() != rec.NumAtoms() {
			t.Fatalf("%s: pdb round trip lost atoms", code)
		}
		for i := range rec.Atoms {
			if fromPDB.Atoms[i].Element != rec.Atoms[i].Element {
				t.Fatalf("%s: atom %d element %s -> %s", code, i,
					rec.Atoms[i].Element, fromPDB.Atoms[i].Element)
			}
		}
		if rec.Contains(chem.Mercury) != fromPDB.Contains(chem.Mercury) {
			t.Fatalf("%s: Hg flag lost in round trip", code)
		}
	}
}
