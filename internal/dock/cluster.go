package dock

import (
	"fmt"
	"sort"

	"repro/internal/chem"
)

// Cluster is one conformational cluster of docking runs: AutoDock
// groups runs whose poses fall within an RMSD tolerance of the
// cluster's lowest-energy member and reports the clustering histogram
// in the DLG.
type Cluster struct {
	// Representative is the index (into the clustered runs slice) of
	// the lowest-FEB member.
	Representative int
	// Members are run indices, representative first.
	Members []int
	// BestFEB is the representative's energy.
	BestFEB float64
}

// ClusterRuns performs AutoDock's conformational cluster analysis:
// runs are sorted by energy; each run joins the first existing
// cluster whose representative pose is within tol Å (all-atom RMSD),
// otherwise it seeds a new cluster. Clusters come back sorted by
// their best energy.
//
// This is the analysis behind the DLG "CLUSTERING HISTOGRAM" table
// the paper's extractors mine.
func ClusterRuns(lig *Ligand, runs []RunResult, tol float64) ([]Cluster, error) {
	if tol <= 0 {
		return nil, fmt.Errorf("dock: clustering tolerance %v must be positive", tol)
	}
	if len(runs) == 0 {
		return nil, nil
	}
	order := make([]int, len(runs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return runs[order[a]].FEB < runs[order[b]].FEB })

	coords := make([][]chem.Vec3, len(runs))
	coordsOf := func(i int) []chem.Vec3 {
		if coords[i] == nil {
			coords[i] = lig.Coords(runs[i].Pose)
		}
		return coords[i]
	}

	var clusters []Cluster
	for _, idx := range order {
		placed := false
		for ci := range clusters {
			rep := clusters[ci].Representative
			r, err := chem.RMSD(coordsOf(idx), coordsOf(rep))
			if err != nil {
				return nil, fmt.Errorf("dock: clustering: %w", err)
			}
			if r <= tol {
				clusters[ci].Members = append(clusters[ci].Members, idx)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, Cluster{
				Representative: idx,
				Members:        []int{idx},
				BestFEB:        runs[idx].FEB,
			})
		}
	}
	return clusters, nil
}

// AnnotateClusters rewrites each run's ClusterN-equivalent by storing
// the cluster sizes into a parallel slice (index-aligned with runs).
func AnnotateClusters(runs []RunResult, clusters []Cluster) []int {
	sizes := make([]int, len(runs))
	for _, c := range clusters {
		for _, m := range c.Members {
			sizes[m] = len(c.Members)
		}
	}
	return sizes
}

// LargestCluster returns the cluster with the most members (ties
// break to the lower-energy cluster, which comes first). AutoDock's
// recommended pose is usually the largest low-energy cluster's
// representative.
func LargestCluster(clusters []Cluster) (Cluster, error) {
	if len(clusters) == 0 {
		return Cluster{}, fmt.Errorf("dock: no clusters")
	}
	best := clusters[0]
	for _, c := range clusters[1:] {
		if len(c.Members) > len(best.Members) {
			best = c
		}
	}
	return best, nil
}
