// Package core is SciDock: the molecular docking-based virtual
// screening workflow of the paper (§IV), assembled from the substrate
// packages and executed by the SciCumulus-like engine. It exposes the
// campaign API the examples, benchmarks and CLI tools build on.
package core

import (
	"hash/fnv"
	"math"

	"repro/internal/chem"
)

// Empirical scoring functions are regression-fitted against
// experimental binding data (Morris 1998 for AD4, Trott & Olson 2010
// for Vina). Our synthetic Peptidase_CA pockets need their own affine
// fit so the reported kcal/mol land on the paper's Table 3 scales:
// AD4 FEB(-) averages in −4.9…−8.4, Vina in −4.5…−5.7, with Vina
// converging on more pairs (355 vs 287 per 1,000). The constants
// below are that fit; EXPERIMENTS.md records the resulting Table 3.
// FEB_reported = scale*raw_normalized + offset, per program. Fitted
// over the full 952-pair Table 3 sweep at CampaignEffort (see
// cmd/probe-style fit described in EXPERIMENTS.md): the thresholds
// reproduce 287 (AD4) and ~355 (Vina) favourable pairs with the
// paper's mean-FEB scales.
const (
	ad4FEBScale   = 7.7922
	ad4FEBOffset  = -0.9626
	vinaFEBScale  = 4.4885
	vinaFEBOffset = +15.0612
)

// calibrateAD4 maps a raw AD4 grid-score to the reported FEB.
func calibrateAD4(raw float64) float64 {
	return round2(ad4FEBScale*raw + ad4FEBOffset)
}

// calibrateVina maps a raw Vina affinity to the reported FEB.
func calibrateVina(raw float64) float64 {
	return round2(vinaFEBScale*raw + vinaFEBOffset)
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

// referenceHeavyAtoms anchors the ligand-efficiency normalization:
// raw intermolecular scores scale with ligand size, so the calibration
// regresses them to a 15-heavy-atom reference before the affine fit
// (empirical scoring functions fit per-atom contributions the same
// way).
const referenceHeavyAtoms = 15.0

func normalizeBySize(raw float64, heavyAtoms int) float64 {
	if heavyAtoms < 1 {
		heavyAtoms = 1
	}
	return raw * referenceHeavyAtoms / float64(heavyAtoms)
}

// ligandFrameOffset is the displacement of a ligand's deposited
// (input-file) coordinate frame from the receptor frame. Crystal
// structures deposit het groups wherever the asymmetric unit put
// them, so blind-docking DLG RMSDs — measured against the input frame
// — are dominated by this offset (the paper's AD4 RMSDs of 53-57 Å).
// Deterministic per ligand code.
func ligandFrameOffset(code string) chem.Vec3 {
	h := fnv.New64a()
	h.Write([]byte("frame|" + code))
	v := h.Sum64()
	// Direction from two hash-derived angles; magnitude 48-62 Å.
	theta := float64(v&0xffff) / 65535 * math.Pi
	phi := float64((v>>16)&0xffff) / 65535 * 2 * math.Pi
	mag := 48 + float64((v>>32)&0xff)/255*14
	return chem.V(
		mag*math.Sin(theta)*math.Cos(phi),
		mag*math.Sin(theta)*math.Sin(phi),
		mag*math.Cos(theta),
	)
}
