// Screening: a virtual-screening campaign in the paper's style — a
// receptor sweep for each of the four Table-3 ligands, adaptive
// program selection (small receptors → AutoDock 4, large → Vina),
// followed by the provenance-driven biological analysis of §V.D.
//
//	go run ./examples/screening
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/stats"
)

func main() {
	// 30 receptors × the 4 CP-specific ligands of Table 3.
	ds := data.Dataset{
		Receptors: data.ReceptorCodes[:30],
		Ligands:   data.Table3Ligands,
	}
	fmt.Printf("screening %d receptor-ligand pairs (adaptive AD4/Vina split)...\n", ds.NumPairs())

	camp, err := core.Run(core.Config{
		Mode:    core.ModeAdaptive,
		Dataset: ds,
		Cores:   32,
		Effort:  core.CampaignEffort(),
		Seed:    7,
		HgGuard: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, rep := range camp.Reports {
		fmt.Printf("workflow %d: TET %s, %d activations, %d failures recovered, %d aborted\n",
			rep.WorkflowID, stats.FormatDuration(rep.TET),
			rep.Activations, rep.Failures, rep.Aborted)
	}
	fmt.Printf("campaign TET %s, simulated EC2 bill $%.2f\n\n",
		stats.FormatDuration(camp.TET()), camp.Engine.Cluster.Cost())

	// Table-3-style per-ligand statistics.
	rows, err := core.Table3(camp.Engine.DB, ds.Ligands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatTable3(rows))

	// The scientist's follow-up queries (§V.D).
	fmt.Println("\nmost favourable interactions (drug-target candidates):")
	top, err := core.TopInteractions(camp.Engine.DB, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range top {
		fmt.Println("  " + t)
	}

	fmt.Println("\nwhich receptors bound every ligand favourably?")
	res, err := camp.Engine.DB.Query(`SELECT receptor, count(*), avg(feb)
FROM ddocking WHERE feb < 0
GROUP BY receptor
ORDER BY avg(feb) ASC
LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	// Compound-space coverage: the favourable vs complementary split
	// behind the paper's "cover diversity space of compounds"
	// argument.
	cov, err := analysis.CoverageReport(camp.Engine.DB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompound-space coverage:")
	fmt.Print(analysis.FormatCoverage(cov))

	hits, err := analysis.TopReceptors(camp.Engine.DB, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrug-target candidates (receptors by favourable-ligand count):")
	for i, h := range hits {
		fmt.Printf("  %d. %s — %d favourable ligands, best FEB %.1f kcal/mol\n",
			i+1, h.Receptor, h.Hits, h.BestFEB)
	}
}
