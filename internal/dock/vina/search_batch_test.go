package vina

import (
	"fmt"
	"testing"
)

// TestDockMaxBatchDeterministic pins the batched-local-optimizer
// contract: the full Dock output is byte-identical for every MaxBatch
// value — the per-pose reference path (-1), the full speculative
// window (0), and chunked windows down to single-pose batches.
func TestDockMaxBatchDeterministic(t *testing.T) {
	rec, lig := setupPair(t, "2HHN", "0E6")
	s, err := NewScorer(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(19)
	cfg.Exhaustiveness = 4
	var want string
	for _, maxBatch := range []int{-1, 0, 1, 2, 7, 64} {
		eng := &Engine{Config: cfg, StepsPerRestart: 6, Workers: 1, MaxBatch: maxBatch}
		res, err := eng.Dock(s, lig)
		if err != nil {
			t.Fatalf("maxBatch=%d: %v", maxBatch, err)
		}
		got := fmt.Sprintf("%+v", res)
		if maxBatch == -1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("maxBatch=%d result differs from sequential reference:\n%s\nvs\n%s", maxBatch, got, want)
		}
	}
}
